# Verification entry points. `make verify` is the PR gate: the tier-1
# suite (build, vet, test) plus a race-detector pass over the internal
# packages with GOMAXPROCS forced to 4, so the persistent parallel round
# engine and the incremental checkpoint store get real concurrency
# coverage even on single-CPU boxes (where the worker pool would
# otherwise stay disabled and races could hide), plus an explicit
# build/vet/test pass over examples/ so the public Scenario/Runner API
# cannot drift from its documented usage.

GO ?= go

.PHONY: verify tier1 race examples bench compare sweep

verify: tier1 race examples

tier1:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...

race:
	GOMAXPROCS=4 $(GO) test -race -count=1 ./internal/...

# The examples are the public API's living documentation; their example
# tests (external registration through the open registries) must keep
# passing.
examples:
	$(GO) build ./examples/...
	$(GO) vet ./examples/...
	$(GO) test -count=1 ./examples/...

# Amortized per-iteration cost and the budget-scaling sweep (PERF.md).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkMicro|BenchmarkScaling' -benchmem .

# Regenerate the experiment artefact and gate it against the previous
# PR's (fails on >10% wall-clock regression).
compare:
	$(GO) run ./cmd/mpicbench -quick -json BENCH_PR3.json -compare BENCH_PR2.json

# Exercise Runner.Sweep on a small n × scheme × rate grid.
sweep:
	$(GO) run ./cmd/mpicbench -sweep -sweep-n 4,6 -sweep-schemes A,B \
		-sweep-rates 0,0.001 -trials 2 -sweep-iterfactor 20
