# Verification entry points. `make verify` is the PR gate: the tier-1
# suite (build, vet, test) plus a race-detector pass over the internal
# packages with GOMAXPROCS forced to 4, so the persistent parallel round
# engine and the incremental checkpoint store get real concurrency
# coverage even on single-CPU boxes (where the worker pool would
# otherwise stay disabled and races could hide).

GO ?= go

.PHONY: verify tier1 race bench compare

verify: tier1 race

tier1:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...

race:
	GOMAXPROCS=4 $(GO) test -race -count=1 ./internal/...

# Amortized per-iteration cost and the budget-scaling sweep (PERF.md).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkMicro|BenchmarkScaling' -benchmem .

# Regenerate the experiment artefact and gate it against the previous
# PR's (fails on >10% wall-clock regression).
compare:
	$(GO) run ./cmd/mpicbench -quick -json BENCH_PR2.json -compare BENCH_PR1.json
