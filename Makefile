# Verification entry points. `make verify` is the PR gate: the tier-1
# suite (build, vet, test) plus a race-detector pass with GOMAXPROCS
# forced to 4, so the persistent parallel round engine, the incremental
# checkpoint store, the elastic core-budget scheduler, AND the streaming
# parallel grid engine (package mpic: Runner.RunGrid / Sweep workers
# sharing one arena) get real concurrency coverage even on single-CPU
# boxes (where the worker pools would otherwise stay at width 1 and
# races could hide), plus an explicit build/vet/test pass over examples/
# so the public Scenario/Runner API cannot drift from its documented
# usage, plus cross-GOARCH and purego builds so the arch-gated hash
# kernels cannot silently break platforms this box does not run.

GO ?= go

# Worker-pool width for `make sweep` (0 = GOMAXPROCS, 1 = sequential).
# Grid results are bit-identical at any setting.
SWEEP_PARALLEL ?= 0

# Incremental JSON checkpoint for `make sweep`: every completed cell is
# persisted, and re-running the same grid resumes instead of restarting.
SWEEP_CHECKPOINT ?= SWEEP.ckpt.json

.PHONY: verify tier1 race examples bench bench-epoch bench-kernel compare sweep cover chaos lint serve-e2e crossbuild

verify: tier1 lint race examples crossbuild

tier1:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...

race:
	GOMAXPROCS=4 $(GO) test -race -count=1 . ./internal/...

# The examples are the public API's living documentation (including
# examples/progress, the durable-session + progress-sink loop); their
# example tests (external registration through the open registries) must
# keep passing.
examples:
	$(GO) build ./examples/...
	$(GO) vet ./examples/...
	$(GO) test -count=1 ./examples/...

# Every GOARCH with a hand-written hash kernel, plus the purego escape
# hatch, must keep compiling and vetting no matter which box edits the
# dispatch layer. `go vet` assembles the .s files, so a broken NEON or
# AVX2 kernel fails here even though only one arch can *run* natively.
crossbuild:
	GOARCH=amd64 $(GO) build ./...
	GOARCH=arm64 $(GO) build ./...
	GOARCH=arm64 $(GO) vet ./internal/hashing/
	$(GO) build -tags purego ./...
	$(GO) vet -tags purego ./internal/hashing/
	$(GO) test -tags purego -count=1 ./internal/hashing/

# Static analysis beyond `go vet`: staticcheck when installed, with a
# loud fallback to a second vet pass so `make verify` never silently
# skips the lint gate on boxes without it.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ./..."; staticcheck ./...; \
	else \
		echo "staticcheck not installed; falling back to go vet"; \
		$(GO) vet ./...; \
	fi

# Statement coverage across every package. The recorded PR 5 baseline
# lives in PERF.md ("Coverage baseline"); compare against it before
# trusting a refactor that "didn't lose any tests".
cover:
	$(GO) test -cover ./...

# Amortized per-iteration cost and the budget-scaling sweep (PERF.md).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkMicro|BenchmarkScaling' -benchmem .

# The epoch-refresh R-axis sweep behind core.DefaultEpochRefresh: ns per
# iteration as the seed-refresh interval grows from every-iteration
# (≈ quadratic) to once-per-run (≈ the never-refreshed incremental
# path). PERF.md records the trajectory.
bench-epoch:
	$(GO) test -run '^$$' -bench 'BenchmarkEpochRefresh' -benchmem .

# The τ-row sweep kernels head to head (reference vs batched vs the
# arch vector path) across τ and transcript sizes — the PERF.md kernel
# micro table.
bench-kernel:
	$(GO) test -run '^$$' -bench 'BenchmarkKernelSweep' -benchmem ./internal/hashing/

# Regenerate the experiment artefact and gate it against the previous
# PR's (fails on >10% regression in wall clock or heap allocations).
# -repeat 3 stamps the artefact with median-of-three timings so a single
# preempted run cannot flap the gate (the PR 9 BENCH_PR8 regeneration).
compare:
	$(GO) run ./cmd/mpicbench -quick -repeat 3 -json BENCH_PR10.json -compare BENCH_PR9.json

# The grid service end to end: submit over HTTP, shard across workers,
# stream progress over SSE, survive a restart mid-grid, and release
# every lease on graceful shutdown — under the race detector.
serve-e2e:
	GOMAXPROCS=4 $(GO) test -race -count=1 -run 'TestService' -v ./internal/service/

# The chaos soaks under the race detector: the registry-cartesian grid as
# a durable parallel session with deterministic injected store faults,
# torn checkpoint writes, cell panics, and a mid-flight cancellation —
# plus the network soak, where every cell runs on the virtual-time
# engine under jitter, outages, stragglers, and a crash-restart. Both
# must stay bit-identical to a clean sequential run. The soaks run the
# library defaults, so since PR 9 every cell exercises the epoch-refresh
# hash path.
chaos:
	GOMAXPROCS=4 $(GO) test -race -count=1 -run 'TestChaos' -v .

# Exercise the streaming grid engine on a small n × scheme × rate grid;
# rows print as cells complete and land in the resumable checkpoint.
# Tune concurrency with SWEEP_PARALLEL=k.
sweep:
	$(GO) run ./cmd/mpicbench -sweep -parallel $(SWEEP_PARALLEL) \
		-sweep-checkpoint $(SWEEP_CHECKPOINT) \
		-sweep-n 4,6 -sweep-schemes A,B \
		-sweep-rates 0,0.001 -trials 2 -sweep-iterfactor 20
