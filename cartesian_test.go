package mpic

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

// TestRegistryCartesianGrid is the registry-driven fuzz pass: one tiny
// scenario per registered topology × workload × noise triple, executed
// as a single streaming grid. The per-name shim tests pin each seed
// entry in isolation; this test catches the cross-product regressions
// they miss (a workload whose builder chokes on a topology shape, a
// noise family whose wiring assumes a particular link set) — including
// entries registered by external packages, which share the registries
// in this test binary.
// cartesianCells builds one tiny cell per registered topology ×
// workload × noise triple — the shared work-list of the cartesian fuzz
// pass and the chaos soak. fixedSkipped counts the fixed-topology
// workload combinations the scenario layer would reject by contract.
func cartesianCells(t *testing.T) (cells []GridCell, labels []string, fixedSkipped int) {
	t.Helper()
	const n = 4
	for _, topoName := range TopologyNames() {
		if _, err := NewTopology(topoName, n); err != nil {
			// External families may legitimately reject this size; the
			// built-in seed entries may not (checked by the caller's size
			// floor).
			t.Logf("topology %q rejected n=%d: %v", topoName, n, err)
			continue
		}
		for _, wlName := range WorkloadNames() {
			def, err := workloads.lookup(wlName)
			if err != nil {
				t.Fatal(err)
			}
			if def.FixedTopology != "" && def.FixedTopology != topoName {
				// The scenario layer rejects the combination by contract
				// (pinned in TestCartesianFixedTopologyRejected).
				fixedSkipped++
				continue
			}
			for _, noiseName := range NoiseNames() {
				noise, err := Noise(noiseName, 0.003)
				if err != nil {
					t.Fatal(err)
				}
				cells = append(cells, GridCell{Scenario: Scenario{
					Topology:   Topology(topoName, n),
					Workload:   Workload(wlName, 20),
					Noise:      noise,
					Seed:       7,
					IterFactor: 6,
				}})
				labels = append(labels, topoName+"/"+wlName+"/"+noiseName)
			}
		}
	}
	return cells, labels, fixedSkipped
}

func TestRegistryCartesianGrid(t *testing.T) {
	cells, labels, fixedSkipped := cartesianCells(t)
	// The built-in registries alone span 6 topologies × (3 free + 3
	// fixed-topology) workloads × 4 noise models.
	if want := 6*3*4 + 3*4; len(cells) < want {
		t.Fatalf("cartesian grid has %d cells, want at least %d (built-ins)", len(cells), want)
	}
	if fixedSkipped == 0 {
		t.Error("no fixed-topology combinations skipped — registry constraint metadata lost")
	}

	// The fuzz grid runs as a durable session, interrupted halfway: the
	// first pass cancels once half the cells have streamed, the second
	// restores them from the store and executes only the rest — so every
	// registered topology × workload × noise triple crosses the
	// persistence path (fingerprinting, keyed restore, resume).
	store := NewFileGridStore(filepath.Join(t.TempDir(), "cartesian.json"))
	grid := Grid{Cells: cells, Store: store}
	runner := NewRunner()
	defer runner.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	streamed := 0
	err := runner.RunGrid(ctx, grid, func(GridCellResult) {
		streamed++
		if streamed == len(cells)/2 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted pass returned %v, want context.Canceled", err)
	}
	if streamed < len(cells)/2 || streamed >= len(cells) {
		t.Fatalf("interrupted pass streamed %d of %d cells", streamed, len(cells))
	}

	results, err := runner.CollectGrid(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	restored := 0
	for i, res := range results {
		if res.Restored {
			restored++
		}
		c := res.Cell
		if c.Trials != 1 || len(c.Iterations) != 1 || c.Iterations[0] < 1 {
			t.Errorf("%s: degenerate cell %+v", labels[i], c)
		}
		if c.MeanBlowup() <= 0 {
			t.Errorf("%s: no communication measured", labels[i])
		}
	}
	if restored != streamed {
		t.Errorf("resume restored %d cells, first pass persisted %d", restored, streamed)
	}
}

// TestCartesianFixedTopologyRejected pins the constraint the cartesian
// grid skips over: a fixed-topology workload on the wrong family errors
// loudly instead of running on a mislabeled graph.
func TestCartesianFixedTopologyRejected(t *testing.T) {
	_, err := RunScenario(context.Background(), Scenario{
		Topology: Line(4),
		Workload: PhaseKing(20),
		Seed:     1,
	})
	if err == nil || !strings.Contains(err.Error(), "runs only on") {
		t.Fatalf("phase-king over a line: got %v, want fixed-topology rejection", err)
	}
}
