package mpic_test

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"mpic"
	"mpic/internal/faults"
)

// flakyObserver panics on its first failLeft iterations-zero sightings —
// a minimal injected in-cell fault riding the same Observer hooks real
// scenarios use. One instance per cell; cell attempts run sequentially
// on one worker, but distinct cells run concurrently, so the counter is
// locked.
type flakyObserver struct {
	mu       sync.Mutex
	failLeft int
}

func (f *flakyObserver) IterationDone(st mpic.IterationStats) {
	if st.Iteration != 0 {
		return
	}
	f.mu.Lock()
	fail := f.failLeft > 0
	if fail {
		f.failLeft--
	}
	f.mu.Unlock()
	if fail {
		panic("flakyObserver: injected failure")
	}
}

// faultGrid builds a small grid whose cell at faultyIndex carries the
// given observer.
func faultGrid(t *testing.T, obs mpic.Observer, faultyIndex int) mpic.Grid {
	t.Helper()
	grid, err := mpic.Sweep{
		Base:   gridBase(),
		Rates:  []float64{0, 0.002, 0.004},
		Trials: 2,
	}.Grid()
	if err != nil {
		t.Fatal(err)
	}
	if obs != nil {
		sc := grid.Cells[faultyIndex].Scenario
		sc.Observers = append(append([]mpic.Observer(nil), sc.Observers...), obs)
		grid.Cells[faultyIndex].Scenario = sc
	}
	return grid
}

// TestGridRetryDeterministic is the retry-determinism pin: a cell that
// panics k < MaxAttempts times and then succeeds produces results
// bit-identical to a run where it never failed — retried attempts
// re-derive the same seeds, so fault recovery is invisible in the data.
func TestGridRetryDeterministic(t *testing.T) {
	runner := mpic.NewRunner()
	defer runner.Close()

	clean := faultGrid(t, nil, 0)
	want, err := runner.CollectGrid(context.Background(), clean)
	if err != nil {
		t.Fatal(err)
	}

	var slept []time.Duration
	flaky := faultGrid(t, &flakyObserver{failLeft: 2}, 1)
	flaky.Retry = mpic.RetryPolicy{
		MaxAttempts: 3, JitterSeed: 9,
		Sleep: func(d time.Duration) { slept = append(slept, d) },
	}
	flaky.Workers = 1 // the Sleep stub appends without a lock
	var events []string
	flaky.Progress = func(p mpic.GridProgress) {
		if p.Event == mpic.GridCellRetrying {
			events = append(events, fmt.Sprintf("retry cell=%d attempt=%d err=%t", p.Cell, p.Attempt, p.Err != nil))
		}
	}
	got, err := runner.CollectGrid(context.Background(), flaky)
	if err != nil {
		t.Fatalf("grid with k<max failures must succeed: %v", err)
	}
	for i := range want {
		if got[i].Err != nil {
			t.Fatalf("cell %d carries error %v after successful retries", i, got[i].Err)
		}
		wantAttempts := 1
		if i == 1 {
			wantAttempts = 3
		}
		if got[i].Attempts != wantAttempts {
			t.Errorf("cell %d Attempts = %d, want %d", i, got[i].Attempts, wantAttempts)
		}
		// Everything but the attempt counter must be bit-identical.
		g := got[i]
		g.Attempts = want[i].Attempts
		if !reflect.DeepEqual(g, want[i]) {
			t.Errorf("cell %d after retries differs from clean run:\n got %+v\nwant %+v", i, g, want[i])
		}
	}
	if wantEvents := []string{"retry cell=1 attempt=1 err=true", "retry cell=1 attempt=2 err=true"}; !reflect.DeepEqual(events, wantEvents) {
		t.Errorf("retry events = %v, want %v", events, wantEvents)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2 (one backoff per failed attempt)", len(slept))
	}
	for i, d := range slept {
		lo := 5 * time.Millisecond << uint(i) // default base 10ms, doubling, half-jitter floor
		if d < lo || d >= 2*lo {
			t.Errorf("backoff %d = %v, want in [%v, %v)", i, d, lo, 2*lo)
		}
	}

	// The backoff schedule itself is deterministic: replay and compare.
	var replay []time.Duration
	flaky2 := faultGrid(t, &flakyObserver{failLeft: 2}, 1)
	flaky2.Retry = mpic.RetryPolicy{
		MaxAttempts: 3, JitterSeed: 9,
		Sleep: func(d time.Duration) { replay = append(replay, d) },
	}
	flaky2.Workers = 1
	if _, err := runner.CollectGrid(context.Background(), flaky2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(slept, replay) {
		t.Errorf("backoff schedule not reproducible: %v vs %v", slept, replay)
	}
}

// TestGridPanicFailFast pins the default error mode: a cell panic is
// recovered into a typed *CellPanicError that aborts the grid — not a
// process crash, and not a silent skip.
func TestGridPanicFailFast(t *testing.T) {
	runner := mpic.NewRunner()
	defer runner.Close()
	grid := faultGrid(t, &flakyObserver{failLeft: 99}, 1)
	grid.Workers = 1
	_, err := runner.CollectGrid(context.Background(), grid)
	var cp *mpic.CellPanicError
	if !errors.As(err, &cp) {
		t.Fatalf("got %v, want *CellPanicError", err)
	}
	if cp.Cell != 1 || len(cp.Stack) == 0 {
		t.Errorf("panic error lost context: cell=%d stack=%d bytes", cp.Cell, len(cp.Stack))
	}
	if !strings.Contains(err.Error(), "panicked") {
		t.Errorf("error message %q does not say what happened", err)
	}
}

// TestGridQuarantine pins quarantine mode end to end: a poisoned cell
// exhausts its attempts, streams with Err set, is excluded from the
// session store, and the rest of the grid completes; the run returns a
// *GridFailure whose report inventories the failure; and a resumed
// session re-attempts only the quarantined cell — recovering the full
// grid bit-identically once the fault clears.
func TestGridQuarantine(t *testing.T) {
	runner := mpic.NewRunner()
	defer runner.Close()

	clean := faultGrid(t, nil, 0)
	want, err := runner.CollectGrid(context.Background(), clean)
	if err != nil {
		t.Fatal(err)
	}

	store := mpic.NewFileGridStore(filepath.Join(t.TempDir(), "q.json"))
	spec := "quarantine-test"
	grid := faultGrid(t, &flakyObserver{failLeft: 99}, 1)
	grid.Retry = mpic.RetryPolicy{MaxAttempts: 2, Sleep: func(time.Duration) {}}
	grid.OnCellError = mpic.QuarantineCells
	grid.Store = store
	grid.Spec = spec
	grid.Workers = 1
	var failedEvents int
	grid.Progress = func(p mpic.GridProgress) {
		if p.Event == mpic.GridCellFailed {
			failedEvents++
			if p.Cell != 1 || p.Err == nil || p.Attempt != 2 {
				t.Errorf("cell-failed event lost context: %+v", p)
			}
		}
	}
	var streamed []mpic.GridCellResult
	err = runner.RunGrid(context.Background(), grid, func(res mpic.GridCellResult) {
		streamed = append(streamed, res)
	})
	var gf *mpic.GridFailure
	if !errors.As(err, &gf) {
		t.Fatalf("got %v, want *GridFailure", err)
	}
	rep := gf.Report
	if rep.Cells != 3 || rep.Completed != 2 || len(rep.Failed) != 1 {
		t.Fatalf("report = %+v, want 2 of 3 completed, 1 failed", rep)
	}
	if f := rep.Failed[0]; f.Index != 1 || f.Err == nil || f.Attempts != 2 {
		t.Errorf("failed cell record lost context: %+v", f)
	}
	var cp *mpic.CellPanicError
	if !errors.As(err, &cp) {
		t.Errorf("GridFailure does not unwrap to the cell's panic: %v", err)
	}
	if failedEvents != 1 {
		t.Errorf("saw %d cell-failed events, want 1", failedEvents)
	}
	if len(streamed) != 3 {
		t.Fatalf("streamed %d cells, want all 3 (failed one included)", len(streamed))
	}
	for _, res := range streamed {
		if res.Index == 1 {
			if res.Err == nil || res.Cell.Trials != 0 {
				t.Errorf("quarantined cell streamed wrong: %+v", res)
			}
		} else if res.Err != nil {
			t.Errorf("healthy cell %d streamed with error %v", res.Index, res.Err)
		}
	}
	// The store holds exactly the healthy cells.
	saved, err := store.Load(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(saved) != 2 {
		t.Fatalf("store holds %d cells, want 2 (quarantined cell must not persist)", len(saved))
	}
	for _, e := range saved {
		if e.Index == 1 {
			t.Fatal("quarantined cell was persisted")
		}
	}

	// Fault cleared: the resumed session re-attempts only cell 1 and the
	// assembled grid matches the clean run bit for bit.
	resume := faultGrid(t, nil, 0)
	resume.Store = store
	resume.Spec = spec
	got, err := runner.CollectGrid(context.Background(), resume)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		g := got[i]
		g.Restored, g.Attempts = false, want[i].Attempts
		if !reflect.DeepEqual(g, want[i]) {
			t.Errorf("resumed cell %d differs from clean run:\n got %+v\nwant %+v", i, g, want[i])
		}
		if i != 1 && !got[i].Restored {
			t.Errorf("healthy cell %d was re-run instead of restored", i)
		}
	}
}

// TestGridFaultValidation pins the new spec errors: negative retry
// budgets and unknown error modes are rejected before anything runs.
func TestGridFaultValidation(t *testing.T) {
	runner := mpic.NewRunner()
	defer runner.Close()
	grid := faultGrid(t, nil, 0)
	grid.Retry.MaxAttempts = -1
	if _, err := runner.CollectGrid(context.Background(), grid); err == nil || !strings.Contains(err.Error(), "MaxAttempts") {
		t.Errorf("negative MaxAttempts: got %v", err)
	}
	grid = faultGrid(t, nil, 0)
	grid.Retry.BaseDelay = -time.Second
	if _, err := runner.CollectGrid(context.Background(), grid); err == nil || !strings.Contains(err.Error(), "non-negative") {
		t.Errorf("negative BaseDelay: got %v", err)
	}
	grid = faultGrid(t, nil, 0)
	grid.OnCellError = mpic.CellErrorMode(7)
	if _, err := runner.CollectGrid(context.Background(), grid); err == nil || !strings.Contains(err.Error(), "OnCellError") {
		t.Errorf("unknown error mode: got %v", err)
	}
}

// TestGridCancelNotRetried pins the cancellation carve-out: a cell that
// fails because the context was cancelled is not retried — the retry
// budget is for faults, not for outliving the caller.
func TestGridCancelNotRetried(t *testing.T) {
	runner := mpic.NewRunner()
	defer runner.Close()
	grid := faultGrid(t, nil, 0)
	attempts := 0
	grid.Retry = mpic.RetryPolicy{MaxAttempts: 5, Sleep: func(time.Duration) { attempts++ }}
	grid.Workers = 1
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := runner.CollectGrid(ctx, grid); err == nil {
		t.Fatal("cancelled grid reported success")
	}
	if attempts != 0 {
		t.Errorf("cancelled cell slept %d backoffs, want 0 (no retries after cancel)", attempts)
	}
}

// TestInjectedCellFaultsThroughEngine wires the faults package's cell
// plan through the public engine: an injected panic travels the same
// recovery path a real one would, and the typed panic value survives
// into the *CellPanicError.
func TestInjectedCellFaultsThroughEngine(t *testing.T) {
	runner := mpic.NewRunner()
	defer runner.Close()
	plan := faults.CellPlan{Seed: 5, PanicRate: 1, MaxPanics: 1}
	grid := faultGrid(t, plan.Observer(0), 0)
	grid.Cells = grid.Cells[:1]
	grid.Workers = 1
	_, err := runner.CollectGrid(context.Background(), grid)
	var cp *mpic.CellPanicError
	if !errors.As(err, &cp) {
		t.Fatalf("got %v, want *CellPanicError", err)
	}
	if _, ok := cp.Value.(faults.InjectedPanic); !ok {
		t.Errorf("panic value %T did not survive recovery", cp.Value)
	}
}
