package mpic

import (
	"context"
	"fmt"

	"mpic/internal/core"
)

// Runner executes scenarios while holding run-to-run state: a shared
// arena that recycles every link's hash block buffers, so batch drivers
// (sweeps, experiment tables, services replaying many scenarios) stop
// paying the per-run seed-materialization allocations. Results are
// bit-identical to one-shot runs.
//
// A Runner is safe for concurrent use; Close releases the pooled memory
// (using the Runner afterwards is still valid — it just re-warms).
type Runner struct {
	arena *core.Arena
}

// NewRunner returns a Runner with an empty arena.
func NewRunner() *Runner { return &Runner{arena: core.NewArena()} }

// Run executes one scenario. ctx cancels the run between iterations
// (ctx.Err() is returned and the partial run is discarded); pass
// context.Background() when cancellation is not needed. A nil Runner is
// valid and runs without an arena.
func (r *Runner) Run(ctx context.Context, sc Scenario) (*Result, error) {
	opts, err := sc.options()
	if err != nil {
		return nil, err
	}
	opts.Context = ctx
	if r != nil {
		opts.Arena = r.arena
	}
	return core.Run(opts)
}

// Close drops the Runner's pooled memory.
func (r *Runner) Close() {
	if r != nil {
		r.arena.Reset()
	}
}

// RunScenario executes one scenario without a reusable Runner — the
// one-shot typed entry point.
func RunScenario(ctx context.Context, sc Scenario) (*Result, error) {
	return (*Runner)(nil).Run(ctx, sc)
}

// Sweep describes a cartesian grid of scenarios: the base scenario is
// re-run at every combination of the N, Schemes, and Rates axes (an
// empty axis keeps the base value), with Trials seeds per cell.
type Sweep struct {
	// Base is the scenario template every cell starts from.
	Base Scenario
	// N resizes Base.Topology across these party counts (the topology
	// must be a named or builder family, not an explicit graph).
	N []int
	// Schemes substitutes these coding schemes.
	Schemes []Scheme
	// Rates substitutes these noise rates into Base.Noise (which must be
	// non-nil when the axis is used).
	Rates []float64
	// Trials is the number of seeds per cell (default 1); trial t runs at
	// Base.Seed + t·SeedStep.
	Trials int
	// SeedStep is the per-trial seed stride (default 1).
	SeedStep int64
}

// SweepCell aggregates the runs of one grid point.
type SweepCell struct {
	// N, Scheme and Rate identify the cell. Rate is meaningful only when
	// the sweep's Rates axis was used.
	N      int
	Scheme Scheme
	Rate   float64
	// Trials and Successes count runs and runs whose every party decoded
	// correctly.
	Trials    int
	Successes int
	// Blowups and Iterations hold the per-trial communication blowup and
	// executed iteration count, in trial order.
	Blowups    []float64
	Iterations []float64
	// Corruptions and Collisions total the adversary's landed corruptions
	// and the oracle-observed hash collisions across trials.
	Corruptions int64
	Collisions  int64
	// BrokenSeedLinks totals the link endpoints whose randomness exchange
	// failed across trials.
	BrokenSeedLinks int
	// WhiteBox totals the collision attacker's bookkeeping across trials
	// (zero unless Base.WhiteBoxRate was set).
	WhiteBox WhiteBoxStats
}

// SuccessRate is Successes/Trials.
func (c SweepCell) SuccessRate() float64 {
	if c.Trials == 0 {
		return 0
	}
	return float64(c.Successes) / float64(c.Trials)
}

// MeanBlowup averages the per-trial communication blowups.
func (c SweepCell) MeanBlowup() float64 { return mean(c.Blowups) }

// MeanIterations averages the per-trial executed iteration counts.
func (c SweepCell) MeanIterations() float64 { return mean(c.Iterations) }

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Sweep executes the grid cell by cell (axes nested N → Schemes → Rates,
// trials innermost) and returns one aggregated cell per grid point. The
// first run error aborts the sweep, as does ctx cancellation.
func (r *Runner) Sweep(ctx context.Context, sw Sweep) ([]SweepCell, error) {
	ns := sw.N
	if len(ns) == 0 {
		ns = []int{0} // sentinel: keep the base topology
	}
	schemes := sw.Schemes
	if len(schemes) == 0 {
		schemes = []Scheme{0} // sentinel: keep the base scheme
	}
	useRates := len(sw.Rates) > 0
	rates := sw.Rates
	if !useRates {
		rates = []float64{0}
	}
	if useRates && sw.Base.Noise == nil {
		return nil, fmt.Errorf("mpic: Sweep.Rates needs Base.Noise to vary")
	}
	trials := sw.Trials
	if trials < 1 {
		trials = 1
	}
	step := sw.SeedStep
	if step == 0 {
		step = 1
	}

	cells := make([]SweepCell, 0, len(ns)*len(schemes)*len(rates))
	for _, n := range ns {
		topo := sw.Base.Topology
		if n > 0 {
			var err error
			topo, err = topo.withN(n)
			if err != nil {
				return nil, err
			}
			if topo.isZero() {
				return nil, fmt.Errorf("mpic: Sweep.N cannot resize an implicit topology (set Base.Topology to a named family; workload-provided protocols are fixed-size)")
			}
		}
		for _, scheme := range schemes {
			for _, rate := range rates {
				sc := sw.Base
				sc.Topology = topo
				if scheme != 0 {
					sc.Scheme = scheme
				}
				if useRates {
					sc.Noise = sw.Base.Noise.WithRate(rate)
					if sc.Noise == nil {
						return nil, fmt.Errorf("mpic: noise %q cannot vary its rate (WithRate returned nil); register a rate-parameterized NoiseFamily to sweep it",
							sw.Base.Noise.NoiseName())
					}
				}
				cell := SweepCell{N: sw.Base.partyCount(topo), Scheme: sc.Scheme, Rate: rate}
				if cell.Scheme == 0 {
					cell.Scheme = AlgorithmA
				}
				for trial := 0; trial < trials; trial++ {
					sc.Seed = sw.Base.Seed + int64(trial)*step
					res, err := r.Run(ctx, sc)
					if err != nil {
						return nil, fmt.Errorf("sweep cell n=%d scheme=%v rate=%g trial=%d: %w",
							cell.N, cell.Scheme, rate, trial, err)
					}
					cell.Trials++
					if res.Success {
						cell.Successes++
					}
					cell.Blowups = append(cell.Blowups, res.Blowup)
					cell.Iterations = append(cell.Iterations, float64(res.Iterations))
					cell.Corruptions += res.Metrics.TotalCorruptions()
					cell.Collisions += res.Metrics.HashCollisions
					cell.BrokenSeedLinks += res.BrokenSeedLinks
					if res.WhiteBox != nil {
						cell.WhiteBox.Tried += res.WhiteBox.Tried
						cell.WhiteBox.Landed += res.WhiteBox.Landed
					}
				}
				cells = append(cells, cell)
			}
		}
	}
	return cells, nil
}
