package mpic

import (
	"context"
	"fmt"
	"sync/atomic"

	"mpic/internal/core"
	"mpic/internal/cores"
)

// Runner executes scenarios while holding run-to-run state: a shared
// arena that recycles every link's hash block buffers, so batch drivers
// (sweeps, experiment tables, services replaying many scenarios) stop
// paying the per-run seed-materialization allocations. Results are
// bit-identical to one-shot runs.
//
// A Runner is safe for concurrent use; Close releases the pooled memory
// (using the Runner afterwards is still valid — it just re-warms).
type Runner struct {
	arena *core.Arena
	// lastGridPool snapshots the most recent RunGrid's core-budget
	// occupancy counters when that grid finishes — internal
	// instrumentation behind the elastic-split measurements in PERF.md.
	lastGridPool atomic.Pointer[cores.Stats]
}

// NewRunner returns a Runner with an empty arena.
func NewRunner() *Runner { return &Runner{arena: core.NewArena()} }

// Run executes one scenario. ctx cancels the run between iterations
// (ctx.Err() is returned and the partial run is discarded); pass
// context.Background() when cancellation is not needed. A nil Runner is
// valid and runs without an arena.
func (r *Runner) Run(ctx context.Context, sc Scenario) (*Result, error) {
	return r.runScenario(ctx, sc, nil)
}

// runScenario is Run with the grid's shared core budget attached: grid
// workers pass the budget so a parallel scenario's round engine borrows
// only the cores the other cells are not using (the elastic worker
// split). A nil budget lets the run assume it owns the machine.
func (r *Runner) runScenario(ctx context.Context, sc Scenario, budget *cores.Budget) (*Result, error) {
	opts, err := sc.options()
	if err != nil {
		return nil, err
	}
	opts.Context = ctx
	opts.CoreBudget = budget
	if r != nil {
		opts.Arena = r.arena
	}
	return core.Run(opts)
}

// Close drops the Runner's pooled memory.
func (r *Runner) Close() {
	if r != nil {
		r.arena.Reset()
	}
}

// gridPoolStats returns the elastic core-budget occupancy of the most
// recently finished RunGrid (zero Stats before any grid, or on a nil
// Runner). Internal instrumentation for the measurement tests.
func (r *Runner) gridPoolStats() cores.Stats {
	if r == nil {
		return cores.Stats{}
	}
	if s := r.lastGridPool.Load(); s != nil {
		return *s
	}
	return cores.Stats{}
}

// RunScenario executes one scenario without a reusable Runner — the
// one-shot typed entry point.
func RunScenario(ctx context.Context, sc Scenario) (*Result, error) {
	return (*Runner)(nil).Run(ctx, sc)
}

// Sweep describes a cartesian grid of scenarios: the base scenario is
// re-run at every combination of the N, Schemes, Rates, and Delays axes
// (an empty axis keeps the base value), with Trials seeds per cell. A
// Sweep is a declarative front end to the grid engine — Grid expands it
// into cells, and Runner.Sweep executes it through Runner.RunGrid.
type Sweep struct {
	// Base is the scenario template every cell starts from.
	Base Scenario
	// N resizes Base.Topology across these party counts (the topology
	// must be a named or builder family, not an explicit graph).
	N []int
	// Schemes substitutes these coding schemes.
	Schemes []Scheme
	// Rates substitutes these noise rates into Base.Noise (which must be
	// non-nil when the axis is used).
	Rates []float64
	// Delays substitutes these flight-delay models into Base.Delay — the
	// coding-overhead-vs-latency-distribution axis. A nil entry means
	// the lockstep network, so {nil, JitterDelay(0.5)} sweeps
	// synchronous vs jittered on otherwise identical cells.
	Delays []DelaySpec
	// Trials is the number of seeds per cell (default 1); trial t runs at
	// Base.Seed + t·SeedStep.
	Trials int
	// SeedStep is the per-trial seed stride (default 1).
	SeedStep int64
	// Workers bounds how many cells execute concurrently (0 = GOMAXPROCS,
	// 1 = sequential). Cell results are bit-identical at any setting.
	Workers int
	// Retry is the per-cell retry policy the expanded grid runs under
	// (see Grid.Retry); the zero value runs each cell once.
	Retry RetryPolicy
}

// Grid expands the sweep's axes into engine cells, in the nested
// N → Schemes → Rates → Delays order Runner.Sweep has always reported,
// validating the axes up front (an unresizable topology or an un-ratable
// noise spec is rejected before anything runs).
func (sw Sweep) Grid() (Grid, error) {
	ns := sw.N
	if len(ns) == 0 {
		ns = []int{0} // sentinel: keep the base topology
	}
	schemes := sw.Schemes
	if len(schemes) == 0 {
		schemes = []Scheme{0} // sentinel: keep the base scheme
	}
	useRates := len(sw.Rates) > 0
	rates := sw.Rates
	if !useRates {
		rates = []float64{0}
	}
	if useRates && sw.Base.Noise == nil {
		return Grid{}, fmt.Errorf("mpic: Sweep.Rates needs Base.Noise to vary")
	}
	useDelays := len(sw.Delays) > 0
	delays := sw.Delays
	if !useDelays {
		delays = []DelaySpec{nil} // sentinel: keep the base delay
	}
	cells := make([]GridCell, 0, len(ns)*len(schemes)*len(rates)*len(delays))
	for _, n := range ns {
		topo := sw.Base.Topology
		if n > 0 {
			var err error
			topo, err = topo.withN(n)
			if err != nil {
				return Grid{}, err
			}
			if topo.isZero() {
				return Grid{}, fmt.Errorf("mpic: Sweep.N cannot resize an implicit topology (set Base.Topology to a named family; workload-provided protocols are fixed-size)")
			}
		}
		for _, scheme := range schemes {
			for _, rate := range rates {
				for _, delay := range delays {
					sc := sw.Base
					sc.Topology = topo
					if scheme != 0 {
						sc.Scheme = scheme
					}
					if useRates {
						sc.Noise = sw.Base.Noise.WithRate(rate)
						if sc.Noise == nil {
							return Grid{}, fmt.Errorf("mpic: noise %q cannot vary its rate (WithRate returned nil); register a rate-parameterized NoiseFamily to sweep it",
								sw.Base.Noise.NoiseName())
						}
					}
					if useDelays {
						sc.Delay = delay
					}
					key := GridKey{N: sw.Base.partyCount(topo), Scheme: sc.Scheme, Rate: rate, Delay: delayKeyName(sc.Delay)}
					if key.Scheme == 0 {
						key.Scheme = AlgorithmA
					}
					cells = append(cells, GridCell{
						Key:      key,
						Scenario: sc,
						Trials:   sw.Trials,
						SeedStep: sw.SeedStep,
					})
				}
			}
		}
	}
	return Grid{Cells: cells, Workers: sw.Workers, Retry: sw.Retry}, nil
}

// delayKeyName renders a delay spec's grid-key name; the empty string
// means the lockstep network.
func delayKeyName(d DelaySpec) string {
	if d == nil {
		return ""
	}
	return d.DelayName()
}

// SweepCell aggregates the runs of one grid point.
type SweepCell struct {
	// N, Scheme, Rate and Delay identify the cell. Rate is meaningful
	// only when the sweep's Rates axis was used; Delay is the delay
	// model's registered name ("" = lockstep).
	N      int
	Scheme Scheme
	Rate   float64
	Delay  string `json:",omitempty"`
	// Trials and Successes count runs and runs whose every party decoded
	// correctly.
	Trials    int
	Successes int
	// Blowups and Iterations hold the per-trial communication blowup and
	// executed iteration count, in trial order.
	Blowups    []float64
	Iterations []float64
	// Corruptions and Collisions total the adversary's landed corruptions
	// and the oracle-observed hash collisions across trials.
	Corruptions int64
	Collisions  int64
	// BrokenSeedLinks totals the link endpoints whose randomness exchange
	// failed across trials.
	BrokenSeedLinks int
	// WhiteBox totals the collision attacker's bookkeeping across trials
	// (zero unless Base.WhiteBoxRate was set).
	WhiteBox WhiteBoxStats
}

// Merge accumulates another cell's trials into c — the streaming
// consumers' aggregation primitive (e.g. folding per-seed grid cells
// into one total). The key fields (N, Scheme, Rate, Delay) are left untouched;
// merging cells with different keys is the caller's decision.
func (c *SweepCell) Merge(other SweepCell) {
	c.Trials += other.Trials
	c.Successes += other.Successes
	c.Blowups = append(c.Blowups, other.Blowups...)
	c.Iterations = append(c.Iterations, other.Iterations...)
	c.Corruptions += other.Corruptions
	c.Collisions += other.Collisions
	c.BrokenSeedLinks += other.BrokenSeedLinks
	c.WhiteBox.Tried += other.WhiteBox.Tried
	c.WhiteBox.Landed += other.WhiteBox.Landed
}

// SuccessRate is Successes/Trials.
func (c SweepCell) SuccessRate() float64 {
	if c.Trials == 0 {
		return 0
	}
	return float64(c.Successes) / float64(c.Trials)
}

// MeanBlowup averages the per-trial communication blowups.
func (c SweepCell) MeanBlowup() float64 { return mean(c.Blowups) }

// MeanIterations averages the per-trial executed iteration counts.
func (c SweepCell) MeanIterations() float64 { return mean(c.Iterations) }

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Sweep executes the grid through the streaming parallel engine (see
// Runner.RunGrid) and returns one aggregated cell per grid point, in the
// nested N → Schemes → Rates axis order. The first run error aborts the
// sweep, as does ctx cancellation.
//
// Streamed results are merged into the output by their explicit
// (n, scheme, rate) key — not by arrival order — so a parallel sweep, a
// shuffled grid, or a resumed run all assemble the same slice; cells
// with duplicate keys (e.g. a repeated N entry) fall back to definition
// order, which is well-defined because duplicate specs produce identical
// results.
func (r *Runner) Sweep(ctx context.Context, sw Sweep) ([]SweepCell, error) {
	grid, err := sw.Grid()
	if err != nil {
		return nil, err
	}
	out := make([]SweepCell, len(grid.Cells))
	slots := make(map[GridKey][]int, len(grid.Cells))
	for i, c := range grid.Cells {
		slots[c.Key] = append(slots[c.Key], i)
	}
	err = r.RunGrid(ctx, grid, func(res GridCellResult) {
		free := slots[res.Key]
		if len(free) == 0 {
			// The engine echoes the keys Grid() assigned, so every result
			// finds its slot; fall back to definition order rather than
			// panicking if that invariant is ever disturbed.
			out[res.Index] = res.Cell
			return
		}
		out[free[0]] = res.Cell
		slots[res.Key] = free[1:]
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
