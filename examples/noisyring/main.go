// Noisyring: a parity token circulates a ring while an adversary deletes
// a fixed batch of consecutive token bits on one unlucky link — exactly
// the concentrated attack that defeats repetition coding, whose majority
// vote cannot survive a whole block being wiped. Algorithm A's
// meeting-points rollback re-simulates the damaged chunks and the token
// arrives intact, at the cost of a few extra iterations.
//
// Both systems face the *same* adversary: delete the first 9 payload
// bits on link 2→3. The coded run goes through a Scenario with a
// CustomNoise spec wrapping the hand-rolled adversary.
//
// Run with:
//
//	go run ./examples/noisyring
package main

import (
	"context"
	"fmt"
	"log"

	"mpic"
)

func main() {
	const n = 8
	const deletions = 9

	runner := mpic.NewRunner()
	defer runner.Close()
	// Skip the randomness-exchange preamble so the salvo lands on real
	// simulation payload (the exchange's error-correcting code would
	// otherwise absorb it for free).
	codedAdv := mpic.NewFixedDeletions(2, 3, 496, deletions)
	coded, err := runner.Run(context.Background(), mpic.Scenario{
		Topology: mpic.Ring(n),
		Workload: mpic.TokenRing(64 /* 8 laps */),
		Scheme:   mpic.AlgorithmA,
		Noise:    mpic.CustomNoise("fixed-deletions", codedAdv),
		Seed:     3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("token ring, %d deletions concentrated on link 2->3:\n", deletions)
	fmt.Printf("  Algorithm A:        success=%v (%d corruptions landed, %d iterations, blowup %.1fx)\n",
		coded.Success, coded.Metrics.TotalCorruptions(), coded.Iterations, coded.Blowup)

	// The baselines run the same pre-built workload under fresh copies of
	// the same attack.
	g, err := mpic.NewTopology("ring", n)
	if err != nil {
		log.Fatal(err)
	}
	proto, err := mpic.NewWorkload("token-ring", g, 64, 3)
	if err != nil {
		log.Fatal(err)
	}
	fec, err := mpic.RunNaiveFECProtocol(proto, mpic.NewFixedDeletions(2, 3, 0, deletions), 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  naive 3x repetition: success=%v (blowup %.1fx) — three whole blocks lost\n",
		fec.Success, fec.Blowup)

	uncoded, err := mpic.RunUncodedProtocol(proto, mpic.NewFixedDeletions(2, 3, 0, deletions))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  uncoded:             success=%v\n", uncoded.Success)
}
