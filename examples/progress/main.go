// Progress: run a parameter grid as a durable, observable session.
//
// The grid engine (mpic.Runner.RunGrid) executes every cell of an
// n × rate grid; two options turn the batch into a session:
//
//   - Store (here an mpic.FileGridStore) persists each completed cell
//     the moment it finishes, so interrupting this program — Ctrl-C,
//     crash, reboot — and re-running it resumes from the finished cells
//     instead of restarting. Delete session.json to start over.
//   - Progress streams fine-grained events ("trial k of cell j,
//     iteration i") through a serialized callback; mpic.NewProgressLog
//     is the ready-made sink used here on stderr.
//
// Resumed and uninterrupted runs are bit-identical: every trial's seed
// is a pure function of its cell's spec, never of scheduling or resume
// state.
//
// Run with:
//
//	go run ./examples/progress
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"mpic"
)

func main() {
	grid, err := mpic.Sweep{
		Base: mpic.Scenario{
			Topology:   mpic.Line(4),
			Workload:   mpic.RandomTraffic(0),
			Scheme:     mpic.AlgorithmA,
			Noise:      mpic.RandomNoise(0),
			Seed:       7,
			IterFactor: 20,
		},
		N:      []int{4, 5},
		Rates:  []float64{0, 0.002},
		Trials: 2,
	}.Grid()
	if err != nil {
		log.Fatal(err)
	}
	grid.Store = mpic.NewFileGridStore("session.json")
	grid.Progress = mpic.NewProgressLog(os.Stderr)

	runner := mpic.NewRunner()
	defer runner.Close()
	restored := 0
	err = runner.RunGrid(context.Background(), grid, func(res mpic.GridCellResult) {
		marker := ""
		if res.Restored {
			restored++
			marker = "  (restored)"
		}
		fmt.Printf("n=%d rate=%g: %d/%d succeeded, blowup %.1fx%s\n",
			res.Key.N, res.Key.Rate, res.Cell.Successes, res.Cell.Trials,
			res.Cell.MeanBlowup(), marker)
	})
	if err != nil {
		log.Fatal(err)
	}
	if restored > 0 {
		fmt.Printf("%d of %d cells restored from session.json (delete it to re-run everything)\n",
			restored, len(grid.Cells))
	}
}
