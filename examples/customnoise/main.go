// Customnoise demonstrates the library's open registries: a third-party
// package registers its own topology family, workload, and noise model —
// using only the public API — and they become first-class citizens: the
// typed specs, the legacy string Config, and the command-line tools all
// accept the new names.
//
// The cast:
//
//   - topology "wheel":      a hub connected to every rim party, plus the
//     rim cycle — denser than a star, sparser than a clique.
//   - workload "echo":       party 0 streams its input to party 1 one bit
//     per round, and party 1 echoes each bit back.
//   - noise "every-kth":     deletes every k-th payload bit on one random
//     link, k derived from the configured rate.
//
// Run with:
//
//	go run ./examples/customnoise
package main

import (
	"context"
	"fmt"
	"log"

	"mpic"
)

// init registers the three extensions; after this, "wheel", "echo" and
// "every-kth" behave exactly like built-in names.
func init() {
	if err := mpic.RegisterTopology("wheel", buildWheel); err != nil {
		panic(err)
	}
	if err := mpic.RegisterWorkload("echo", mpic.WorkloadDef{Build: buildEcho}); err != nil {
		panic(err)
	}
	if err := mpic.RegisterNoise("every-kth", everyKth); err != nil {
		panic(err)
	}
}

// buildWheel is a TopologyBuilder: hub 0 plus the rim cycle 1..n-1.
func buildWheel(n int) (*mpic.Graph, error) {
	if n < 4 {
		return nil, fmt.Errorf("wheel needs n >= 4, got %d", n)
	}
	g := mpic.NewGraph(n)
	for i := 1; i < n; i++ {
		if err := g.AddEdge(0, mpic.Node(i)); err != nil {
			return nil, err
		}
		next := i%(n-1) + 1
		if err := g.AddEdge(mpic.Node(i), mpic.Node(next)); err != nil {
			return nil, err
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// echoBits is the payload length party 0 streams.
const echoBits = 16

// echoProto implements mpic.Protocol: 0 streams its value to 1 bit by
// bit, and 1 echoes each bit straight back, for rounds/2 exchanges.
type echoProto struct {
	g     *mpic.Graph
	sched *mpic.Schedule
	value uint16
}

// buildEcho is a WorkloadBuilder over any topology containing the edge
// 0–1 (every registered family does, including "wheel").
func buildEcho(g *mpic.Graph, rounds int, seed int64) (mpic.Protocol, error) {
	if !g.HasEdge(0, 1) {
		return nil, fmt.Errorf("echo workload needs the edge 0-1")
	}
	var rr [][]mpic.Transmission
	for r := 0; r < rounds; r++ {
		if r%2 == 0 {
			rr = append(rr, []mpic.Transmission{{From: 0, To: 1}})
		} else {
			rr = append(rr, []mpic.Transmission{{From: 1, To: 0}})
		}
	}
	return &echoProto{g: g, sched: mpic.NewSchedule(rr), value: uint16(seed*40503 + 977)}, nil
}

func (p *echoProto) Name() string             { return "echo" }
func (p *echoProto) Graph() *mpic.Graph       { return p.g }
func (p *echoProto) Schedule() *mpic.Schedule { return p.sched }
func (p *echoProto) Input(n mpic.Node) []byte {
	if n == 0 {
		return []byte{byte(p.value), byte(p.value >> 8)}
	}
	return nil
}

func (p *echoProto) SendBit(v mpic.View, r int, tx mpic.Transmission, seq int) byte {
	if tx.From == 0 {
		return byte(p.value >> uint(seq%echoBits) & 1)
	}
	// The echo: return the seq-th bit observed from party 0.
	return v.Observed(mpic.Link{From: 0, To: 1}, seq).Bit()
}

// Output: party 0 folds the echoed bits, party 1 folds what it heard;
// everyone else outputs nothing (they are topology, not participants).
func (p *echoProto) Output(v mpic.View) []byte {
	var from mpic.Link
	switch v.Self() {
	case 0:
		from = mpic.Link{From: 1, To: 0}
	case 1:
		from = mpic.Link{From: 0, To: 1}
	default:
		return nil
	}
	n := p.sched.CountOn(from)
	out := make([]byte, (n+7)/8)
	for i := 0; i < n; i++ {
		out[i/8] |= v.Observed(from, i).Bit() << uint(i%8)
	}
	return out
}

var _ mpic.Protocol = (*echoProto)(nil)

// periodicDropper deletes every k-th payload bit on one directed link.
type periodicDropper struct {
	target mpic.Link
	k      int
	seen   int
	used   int
}

func (d *periodicDropper) Corrupt(_ int, link mpic.Link, sent mpic.Symbol) mpic.Symbol {
	if link != d.target || sent == mpic.Silence {
		return sent
	}
	d.seen++
	if d.seen%d.k != 0 {
		return sent
	}
	d.used++
	return mpic.Silence
}

// everyKth is a NoiseFamily: rate µ maps to dropping every ⌈1/µ⌉-th
// payload bit on a uniformly random link.
func everyKth(rate float64) mpic.NoiseSpec {
	return mpic.NoiseFunc("every-kth", func(env mpic.NoiseEnv) (mpic.WiredNoise, error) {
		k := 1 << 20
		if rate > 0 {
			k = int(1/rate) + 1
		}
		links := env.Links()
		return mpic.WiredNoise{
			Adversary: &periodicDropper{target: links[env.Rng.Intn(len(links))], k: k},
		}, nil
	})
}

// run executes the all-custom scenario (split from main so the example's
// test can drive it).
func run() (*mpic.Result, error) {
	runner := mpic.NewRunner()
	defer runner.Close()
	return runner.Run(context.Background(), mpic.Scenario{
		Topology: mpic.Topology("wheel", 8),
		Workload: mpic.Workload("echo", 160),
		Scheme:   mpic.AlgorithmA,
		Noise:    mustNoise("every-kth", 0.005),
		Seed:     9,
	})
}

func mustNoise(name string, rate float64) mpic.NoiseSpec {
	spec, err := mpic.Noise(name, rate)
	if err != nil {
		panic(err)
	}
	return spec
}

func main() {
	res, err := run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("echo over a wheel of 8 under every-kth deletions (all third-party pieces):\n")
	fmt.Printf("  success=%v, %d corruptions survived, %d iterations, blowup %.1fx\n",
		res.Success, res.Metrics.TotalCorruptions(), res.Iterations, res.Blowup)
}
