package main

import (
	"testing"

	"mpic"
)

// TestExternalRegistration proves the acceptance property end to end: a
// topology, a workload, and a noise model registered from outside the
// mpic package run through the typed Scenario API...
func TestExternalRegistration(t *testing.T) {
	res, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("all-custom scenario failed: G*=%d/%d", res.GStar, res.NumChunks)
	}
	if res.Metrics.TotalCorruptions() == 0 {
		t.Error("every-kth noise never fired")
	}
}

// ...and through the legacy string Config, which parses the same
// registries.
func TestExternalNamesViaLegacyConfig(t *testing.T) {
	res, err := mpic.Run(mpic.Config{
		Topology:  "wheel",
		N:         8,
		Workload:  "echo",
		Noise:     "every-kth",
		NoiseRate: 0.005,
		Seed:      9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("legacy-config custom run failed: G*=%d/%d", res.GStar, res.NumChunks)
	}
}

// The registered names must be listed next to the built-ins.
func TestNamesListed(t *testing.T) {
	find := func(names []string, want string) bool {
		for _, n := range names {
			if n == want {
				return true
			}
		}
		return false
	}
	if !find(mpic.TopologyNames(), "wheel") {
		t.Error("wheel missing from TopologyNames")
	}
	if !find(mpic.WorkloadNames(), "echo") {
		t.Error("echo missing from WorkloadNames")
	}
	if !find(mpic.NoiseNames(), "every-kth") {
		t.Error("every-kth missing from NoiseNames")
	}
}
