// Quickstart: simulate a generic protocol over a noisy 6-party line with
// Algorithm A and check that every party still computes the right output.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mpic"
)

func main() {
	res, err := mpic.Run(mpic.Config{
		Topology:  "line",
		N:         6,
		Workload:  "random",
		Scheme:    mpic.AlgorithmA,
		Noise:     "random",
		NoiseRate: 0.002, // ≈ ε/m worth of insertions/deletions/flips
		Seed:      42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("success: %v\n", res.Success)
	fmt.Printf("protocol: %d chunks, %d bits\n", res.NumChunks, res.CCProtocol)
	fmt.Printf("coded run: %d bits (%.1fx), %d iterations, %d corruptions survived\n",
		res.Metrics.CC, res.Blowup, res.Iterations, res.Metrics.TotalCorruptions())
}
