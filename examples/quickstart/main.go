// Quickstart: simulate a generic protocol over a noisy 6-party line with
// Algorithm A and check that every party still computes the right output.
//
// A run is described by a typed Scenario — topology, workload, scheme,
// noise — and executed by a Runner (which can be reused across runs and
// cancelled through its context). The legacy string-keyed equivalent is
//
//	mpic.Run(mpic.Config{Topology: "line", N: 6, Workload: "random",
//	    Scheme: mpic.AlgorithmA, Noise: "random", NoiseRate: 0.002, Seed: 42})
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"mpic"
)

func main() {
	runner := mpic.NewRunner()
	defer runner.Close()
	res, err := runner.Run(context.Background(), mpic.Scenario{
		Topology: mpic.Line(6),
		Workload: mpic.RandomTraffic(0), // 0 rounds = the 30·n default
		Scheme:   mpic.AlgorithmA,
		Noise:    mpic.RandomNoise(0.002), // ≈ ε/m worth of insertions/deletions/flips
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("success: %v\n", res.Success)
	fmt.Printf("protocol: %d chunks, %d bits\n", res.NumChunks, res.CCProtocol)
	fmt.Printf("coded run: %d bits (%.1fx), %d iterations, %d corruptions survived\n",
		res.Metrics.CC, res.Blowup, res.Iterations, res.Metrics.TotalCorruptions())
}
