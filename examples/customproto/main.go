// Customproto shows the library's extension point: implementing the
// Protocol interface for your own distributed computation and running it
// through the coding schemes. The protocol here is a two-phase
// "max finder" on a star: leaves stream their 8-bit values to the hub,
// the hub streams the maximum back.
//
// Run with:
//
//	go run ./examples/customproto
package main

import (
	"context"
	"fmt"
	"log"

	"mpic"
)

const valueBits = 8

// maxFinder implements mpic.Protocol (= protocol.Protocol).
type maxFinder struct {
	g      *mpic.Graph
	sched  *mpic.Schedule
	inputs [][]byte
}

func newMaxFinder(n int, inputs [][]byte) *maxFinder {
	g := starGraph(n)
	var rounds [][]mpic.Transmission
	// Phase 1: every leaf streams its value to the hub, bit-serially,
	// all leaves in parallel.
	for b := 0; b < valueBits; b++ {
		var txs []mpic.Transmission
		for leaf := 1; leaf < n; leaf++ {
			txs = append(txs, mpic.Transmission{From: mpic.Node(leaf), To: 0})
		}
		rounds = append(rounds, txs)
	}
	// Phase 2: the hub streams the maximum back to every leaf.
	for b := 0; b < valueBits; b++ {
		var txs []mpic.Transmission
		for leaf := 1; leaf < n; leaf++ {
			txs = append(txs, mpic.Transmission{From: 0, To: mpic.Node(leaf)})
		}
		rounds = append(rounds, txs)
	}
	return &maxFinder{g: g, sched: mpic.NewSchedule(rounds), inputs: inputs}
}

func (p *maxFinder) Name() string             { return "max-finder" }
func (p *maxFinder) Graph() *mpic.Graph       { return p.g }
func (p *maxFinder) Schedule() *mpic.Schedule { return p.sched }
func (p *maxFinder) Input(n mpic.Node) []byte { return p.inputs[n] }

func value(in []byte) byte {
	if len(in) == 0 {
		return 0
	}
	return in[0]
}

// hubMax recomputes the maximum the hub has observed so far.
func (p *maxFinder) hubMax(v mpic.View) byte {
	max := value(v.Input())
	for leaf := 1; leaf < p.g.N(); leaf++ {
		var x byte
		for b := 0; b < valueBits; b++ {
			x |= v.Observed(mpic.Link{From: mpic.Node(leaf), To: 0}, b).Bit() << uint(b)
		}
		if x > max {
			max = x
		}
	}
	return max
}

func (p *maxFinder) SendBit(v mpic.View, r int, tx mpic.Transmission, seq int) byte {
	if r < valueBits {
		// Leaf streaming its own value, LSB first.
		return value(v.Input()) >> uint(seq) & 1
	}
	// Hub streaming the maximum.
	return p.hubMax(v) >> uint(seq) & 1
}

func (p *maxFinder) Output(v mpic.View) []byte {
	if v.Self() == 0 {
		return []byte{p.hubMax(v)}
	}
	var x byte
	for b := 0; b < valueBits; b++ {
		x |= v.Observed(mpic.Link{From: 0, To: v.Self()}, b).Bit() << uint(b)
	}
	return []byte{x}
}

// starGraph builds a star using only the public topology API.
func starGraph(n int) *mpic.Graph {
	g, err := mpic.NewTopology("star", n)
	if err != nil {
		panic(err)
	}
	return g
}

var _ mpic.Protocol = (*maxFinder)(nil)

func main() {
	const n = 6
	inputs := [][]byte{{17}, {203}, {44}, {91}, {155}, {68}}
	proto := newMaxFinder(n, inputs)

	// Star topologies are the JKL15 setting; run the custom protocol
	// through Algorithm A under the hand-rolled deletion noise. A
	// UseProtocol workload brings its own topology, so the scenario
	// leaves Topology empty.
	res, err := mpic.RunScenario(context.Background(), mpic.Scenario{
		Workload: mpic.UseProtocol(proto),
		Scheme:   mpic.AlgorithmA,
		Noise:    mpic.CustomNoise("every-400th", noise{}),
		Seed:     5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("max-finder on a star of %d, under hand-rolled deletion noise:\n", n)
	fmt.Printf("  success=%v, every party decided max=%d (true max 203)\n",
		res.Success, res.Outputs[1][0])
	fmt.Printf("  %d corruptions, %d iterations, blowup %.1fx\n",
		res.Metrics.TotalCorruptions(), res.Iterations, res.Blowup)
}

// noise is a tiny custom adversary: it deletes every 400th transmission
// network-wide — showing that Adversary is also an extension point.
type noise struct{}

var count int

func (noise) Corrupt(_ int, _ mpic.Link, sent mpic.Symbol) mpic.Symbol {
	if sent == mpic.Silence {
		return sent
	}
	count++
	if count%400 == 0 {
		return mpic.Silence
	}
	return sent
}
