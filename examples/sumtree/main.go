// Sumtree: parties on a tree aggregate the sum of their inputs — the
// classic convergecast/broadcast workload — while an adaptive
// (non-oblivious) adversary corrupts the channels. Algorithm B keeps the
// computation correct; an uncoded run of the same workload collapses
// under the same number of corruptions.
//
// Run with:
//
//	go run ./examples/sumtree
package main

import (
	"context"
	"fmt"
	"log"

	"mpic"
)

func main() {
	runner := mpic.NewRunner()
	defer runner.Close()
	res, err := runner.Run(context.Background(), mpic.Scenario{
		Topology: mpic.Tree(7),
		Workload: mpic.TreeSum(150),
		Scheme:   mpic.AlgorithmB,
		Noise:    mpic.Adaptive(0.0008), // ≈ ε/(m log m)
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}
	corruptions := int(res.Metrics.TotalCorruptions())
	fmt.Printf("Algorithm B vs adaptive adversary: success=%v (%d corruptions, blowup %.1fx)\n",
		res.Success, corruptions, res.Blowup)
	if len(res.Outputs) > 0 {
		var total uint64
		for j := 0; j < 8 && j < len(res.Outputs[0]); j++ {
			total |= uint64(res.Outputs[0][j]) << uint(8*j)
		}
		fmt.Printf("agreed sum of inputs: %d\n", total)
	}

	// The same workload, uncoded, against the same absolute number of
	// corruptions — placed where an adversary would put them: in the
	// final epoch's convergecast into the root (earlier epochs are
	// recomputed from scratch, so damage there heals itself).
	if corruptions == 0 {
		corruptions = 4
	}
	g, err := mpic.NewTopology("tree", 7)
	if err != nil {
		log.Fatal(err)
	}
	failures := 0
	const trials = 10
	for i := int64(0); i < trials; i++ {
		proto, err := mpic.NewWorkload("tree-sum", g, 150, i)
		if err != nil {
			log.Fatal(err)
		}
		ub, err := mpic.RunUncodedProtocol(proto, mpic.NewFixedDeletions(1, 0, 24 /* skip epochs 1-2 */, corruptions))
		if err != nil {
			log.Fatal(err)
		}
		if !ub.Success {
			failures++
		}
	}
	fmt.Printf("uncoded baseline under the same %d corruptions: %d/%d runs computed a wrong sum\n",
		corruptions, failures, trials)
}
