// Linewave reenacts the paper's Section 1.2 motivating story on the line
// topology: party 0 relays a bit down the line and the far-end parties
// chatter expensively. A single deletion near party 0 silently poisons
// everything downstream; the per-iteration potential trace shows the
// meeting points catching the divergence, the idle flag freezing the
// network, and the rewind wave restoring consistency — all within a
// couple of iterations, independent of the line length.
//
// Run with:
//
//	go run ./examples/linewave
package main

import (
	"fmt"
	"log"

	"mpic"
)

func main() {
	for _, n := range []int{5, 8, 11} {
		cfg := mpic.Config{
			N:              n,
			Workload:       "pipelined-line",
			WorkloadRounds: 12 * n,
			Scheme:         mpic.AlgorithmA,
			Noise:          "burst", // one link takes all the damage
			NoiseRate:      0.001,
			Seed:           1,
		}
		res, err := mpic.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("line n=%2d: success=%v chunks=%d iterations=%d (ideal %d) corruptions=%d\n",
			n, res.Success, res.NumChunks, res.Iterations, res.NumChunks,
			res.Metrics.TotalCorruptions())
		// Narrate the recovery using the oracle's potential snapshots.
		prevB := 0
		for _, snap := range res.Potential {
			switch {
			case snap.BStar > 0 && prevB == 0:
				fmt.Printf("   iter %3d: divergence appears (B*=%d, %d links in meeting points)\n",
					snap.Iteration, snap.BStar, snap.MeetingLinks)
			case snap.BStar == 0 && prevB > 0:
				fmt.Printf("   iter %3d: network re-synchronized (G*=%d)\n",
					snap.Iteration, snap.GStar)
			}
			prevB = snap.BStar
		}
	}
}
