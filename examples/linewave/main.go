// Linewave reenacts the paper's Section 1.2 motivating story on the line
// topology: party 0 relays a bit down the line and the far-end parties
// chatter expensively. A single deletion near party 0 silently poisons
// everything downstream; a live Observer attached to the scenario
// narrates the recovery as it happens — the meeting points catching the
// divergence, the idle flag freezing the network, and the rewind wave
// restoring consistency — all within a couple of iterations, independent
// of the line length.
//
// Run with:
//
//	go run ./examples/linewave
package main

import (
	"context"
	"fmt"
	"log"

	"mpic"
)

func main() {
	runner := mpic.NewRunner()
	defer runner.Close()
	for _, n := range []int{5, 8, 11} {
		// Narrate the recovery live from the oracle's potential snapshots.
		prevB := 0
		narrator := mpic.ObserverFunc(func(st mpic.IterationStats) {
			if st.Snapshot == nil {
				return
			}
			switch {
			case st.Snapshot.BStar > 0 && prevB == 0:
				fmt.Printf("   iter %3d: divergence appears (B*=%d, %d links in meeting points)\n",
					st.Iteration, st.Snapshot.BStar, st.Snapshot.MeetingLinks)
			case st.Snapshot.BStar == 0 && prevB > 0:
				fmt.Printf("   iter %3d: network re-synchronized (G*=%d)\n",
					st.Iteration, st.Snapshot.GStar)
			}
			prevB = st.Snapshot.BStar
		})
		res, err := runner.Run(context.Background(), mpic.Scenario{
			Topology:  mpic.Line(n),
			Workload:  mpic.PipelinedLine(12 * n),
			Scheme:    mpic.AlgorithmA,
			Noise:     mpic.BurstNoise(0.001), // one link takes all the damage
			Seed:      1,
			Observers: []mpic.Observer{narrator},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("line n=%2d: success=%v chunks=%d iterations=%d (ideal %d) corruptions=%d\n",
			n, res.Success, res.NumChunks, res.Iterations, res.NumChunks,
			res.Metrics.TotalCorruptions())
	}
}
