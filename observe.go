package mpic

import (
	"fmt"
	"io"

	"mpic/internal/core"
	"mpic/internal/potential"
)

// Observer receives a callback after every executed iteration of a run
// — the public successor of the old in-package test hook. Observers see
// live but read-only state; they cannot influence the run. Attach them
// through Scenario.Observers (or core's Options.Observers).
//
// An observer may additionally implement RunStartObserver (called once
// with the run's public phase layout before the randomness-exchange
// preamble) or RunEndObserver (called once with the final Result).
type Observer = core.Observer

// IterationStats is the per-iteration snapshot handed to observers: the
// iteration index, the live network accounting, and — when the oracle is
// on — the potential snapshot of the iteration.
type IterationStats = core.IterationStats

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc = core.ObserverFunc

// RunStartObserver is the optional run-start extension of Observer.
type RunStartObserver = core.RunStartObserver

// RunEndObserver is the optional run-end extension of Observer.
type RunEndObserver = core.RunEndObserver

// Snapshot is the oracle's per-iteration ground-truth view (agreed
// prefix, divergence, links in recovery, potential value).
type Snapshot = potential.Snapshot

// NewIterationLog returns a pluggable observer sink that writes one line
// per iteration to w: communication, corruptions, and — when the oracle
// is on — the agreed prefix G* and divergence B*.
func NewIterationLog(w io.Writer) Observer {
	return ObserverFunc(func(st IterationStats) {
		if st.Snapshot != nil {
			fmt.Fprintf(w, "iter %4d: cc=%d corruptions=%d G*=%d B*=%d mp=%d\n",
				st.Iteration, st.Metrics.CC, st.Metrics.TotalCorruptions(),
				st.Snapshot.GStar, st.Snapshot.BStar, st.Snapshot.MeetingLinks)
			return
		}
		fmt.Fprintf(w, "iter %4d: cc=%d corruptions=%d\n",
			st.Iteration, st.Metrics.CC, st.Metrics.TotalCorruptions())
	})
}

// NewProgressLog returns a pluggable sink for a grid's progress stream
// (Grid.Progress): one line per event, prefixed with the cell's position
// and identity, so very-slow single cells stay observable from the
// inside — "trial k of cell j, iteration i". Attach it with
//
//	grid.Progress = mpic.NewProgressLog(os.Stderr)
//
// Iteration lines are emitted for every executed iteration; wrap the
// returned func to subsample if that is too chatty for the grid at hand.
func NewProgressLog(w io.Writer) GridProgressFunc {
	return func(p GridProgress) {
		id := fmt.Sprintf("cell %d/%d [n=%d %s rate=%g]", p.Cell+1, p.Cells, p.Key.N, p.Key.Scheme, p.Key.Rate)
		switch p.Event {
		case GridCellRestored:
			fmt.Fprintf(w, "%s restored from checkpoint\n", id)
		case GridTrialStart:
			fmt.Fprintf(w, "%s trial %d/%d started (budget %d iterations)\n",
				id, p.Trial+1, p.Trials, p.Info.Iterations)
		case GridIteration:
			fmt.Fprintf(w, "%s trial %d/%d iter %d: cc=%d corruptions=%d\n",
				id, p.Trial+1, p.Trials, p.Iteration,
				p.Stats.Metrics.CC, p.Stats.Metrics.TotalCorruptions())
		case GridTrialDone:
			status := "SUCCESS"
			if !p.Result.Success {
				status = "FAILURE"
			}
			fmt.Fprintf(w, "%s trial %d/%d done: %s blowup=%.2f iterations=%d\n",
				id, p.Trial+1, p.Trials, status, p.Result.Blowup, p.Result.Iterations)
		case GridCellDone:
			fmt.Fprintf(w, "%s done (%d trials)\n", id, p.Trials)
		case GridCellRetrying:
			fmt.Fprintf(w, "%s attempt %d failed, retrying: %v\n", id, p.Attempt, p.Err)
		case GridCellFailed:
			fmt.Fprintf(w, "%s FAILED after %d attempt(s), quarantined: %v\n", id, p.Attempt, p.Err)
		}
	}
}

// arenaLog is the observer sink behind NewArenaLog.
type arenaLog struct {
	w io.Writer
}

// IterationDone implements Observer; the arena sink only cares about run
// boundaries.
func (arenaLog) IterationDone(IterationStats) {}

// RunDone implements RunEndObserver: one line of arena telemetry per run.
func (l arenaLog) RunDone(res *Result) {
	if res.Arena == nil {
		fmt.Fprintln(l.w, "arena: off")
		return
	}
	a := res.Arena
	total := a.Hits + a.Misses
	rate := 0.0
	if total > 0 {
		rate = float64(a.Hits) / float64(total)
	}
	fmt.Fprintf(l.w, "arena: hits=%d misses=%d hit-rate=%.2f words-reused=%d\n",
		a.Hits, a.Misses, rate, a.WordsReused)
}

// NewArenaLog returns an observer sink that writes one line of arena
// telemetry per run to w — the runner's buffer-pool hits, misses, and
// recycled words (see ArenaStats). Attach it to the scenarios of a sweep
// to watch the arena warm up, or to spot a topology whose buffer shapes
// keep missing the pool.
func NewArenaLog(w io.Writer) Observer {
	return arenaLog{w: w}
}
