package mpic

import (
	"fmt"
	"io"

	"mpic/internal/core"
	"mpic/internal/potential"
)

// Observer receives a callback after every executed iteration of a run
// — the public successor of the old in-package test hook. Observers see
// live but read-only state; they cannot influence the run. Attach them
// through Scenario.Observers (or core's Options.Observers).
//
// An observer may additionally implement RunStartObserver (called once
// with the run's public phase layout before the randomness-exchange
// preamble) or RunEndObserver (called once with the final Result).
type Observer = core.Observer

// IterationStats is the per-iteration snapshot handed to observers: the
// iteration index, the live network accounting, and — when the oracle is
// on — the potential snapshot of the iteration.
type IterationStats = core.IterationStats

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc = core.ObserverFunc

// RunStartObserver is the optional run-start extension of Observer.
type RunStartObserver = core.RunStartObserver

// RunEndObserver is the optional run-end extension of Observer.
type RunEndObserver = core.RunEndObserver

// Snapshot is the oracle's per-iteration ground-truth view (agreed
// prefix, divergence, links in recovery, potential value).
type Snapshot = potential.Snapshot

// NewIterationLog returns a pluggable observer sink that writes one line
// per iteration to w: communication, corruptions, and — when the oracle
// is on — the agreed prefix G* and divergence B*.
func NewIterationLog(w io.Writer) Observer {
	return ObserverFunc(func(st IterationStats) {
		if st.Snapshot != nil {
			fmt.Fprintf(w, "iter %4d: cc=%d corruptions=%d G*=%d B*=%d mp=%d\n",
				st.Iteration, st.Metrics.CC, st.Metrics.TotalCorruptions(),
				st.Snapshot.GStar, st.Snapshot.BStar, st.Snapshot.MeetingLinks)
			return
		}
		fmt.Fprintf(w, "iter %4d: cc=%d corruptions=%d\n",
			st.Iteration, st.Metrics.CC, st.Metrics.TotalCorruptions())
	})
}
