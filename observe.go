package mpic

import (
	"fmt"
	"io"
	"time"

	"mpic/internal/core"
	"mpic/internal/potential"
)

// Observer receives a callback after every executed iteration of a run
// — the public successor of the old in-package test hook. Observers see
// live but read-only state; they cannot influence the run. Attach them
// through Scenario.Observers (or core's Options.Observers).
//
// An observer may additionally implement RunStartObserver (called once
// with the run's public phase layout before the randomness-exchange
// preamble) or RunEndObserver (called once with the final Result).
type Observer = core.Observer

// IterationStats is the per-iteration snapshot handed to observers: the
// iteration index, the live network accounting, and — when the oracle is
// on — the potential snapshot of the iteration.
type IterationStats = core.IterationStats

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc = core.ObserverFunc

// RunStartObserver is the optional run-start extension of Observer.
type RunStartObserver = core.RunStartObserver

// RunEndObserver is the optional run-end extension of Observer.
type RunEndObserver = core.RunEndObserver

// Snapshot is the oracle's per-iteration ground-truth view (agreed
// prefix, divergence, links in recovery, potential value).
type Snapshot = potential.Snapshot

// NewIterationLog returns a pluggable observer sink that writes one line
// per iteration to w: communication, corruptions, and — when the oracle
// is on — the agreed prefix G* and divergence B*.
func NewIterationLog(w io.Writer) Observer {
	return ObserverFunc(func(st IterationStats) {
		if st.Snapshot != nil {
			fmt.Fprintf(w, "iter %4d: cc=%d corruptions=%d G*=%d B*=%d mp=%d\n",
				st.Iteration, st.Metrics.CC, st.Metrics.TotalCorruptions(),
				st.Snapshot.GStar, st.Snapshot.BStar, st.Snapshot.MeetingLinks)
			return
		}
		fmt.Fprintf(w, "iter %4d: cc=%d corruptions=%d\n",
			st.Iteration, st.Metrics.CC, st.Metrics.TotalCorruptions())
	})
}

// NewProgressLog returns a pluggable sink for a grid's progress stream
// (Grid.Progress): one line per event, prefixed with the cell's position
// and identity, so very-slow single cells stay observable from the
// inside — "trial k of cell j, iteration i". Attach it with
//
//	grid.Progress = mpic.NewProgressLog(os.Stderr)
//
// Iteration lines are emitted for every executed iteration; wrap the
// returned func to subsample if that is too chatty for the grid at hand.
func NewProgressLog(w io.Writer) GridProgressFunc {
	return func(p GridProgress) {
		switch p.Event {
		case GridIteration:
			fmt.Fprintf(w, "%s trial %d/%d iter %d: cc=%d corruptions=%d\n",
				progressID(p), p.Trial+1, p.Trials, p.Iteration,
				p.Stats.Metrics.CC, p.Stats.Metrics.TotalCorruptions())
		default:
			printProgressEvent(w, p, "")
		}
	}
}

// progressID renders a progress event's cell identity prefix.
func progressID(p GridProgress) string {
	id := fmt.Sprintf("cell %d/%d [n=%d %s rate=%g", p.Cell+1, p.Cells, p.Key.N, p.Key.Scheme, p.Key.Rate)
	if p.Key.Delay != "" {
		id += " delay=" + p.Key.Delay
	}
	return id + "]"
}

// printProgressEvent writes the one-line rendering of every non-iteration
// progress event, shared by the plain and the throttled sinks. suffix is
// appended to GridTrialStart lines (the throttled sink's sampling note).
func printProgressEvent(w io.Writer, p GridProgress, suffix string) {
	id := progressID(p)
	switch p.Event {
	case GridCellRestored:
		fmt.Fprintf(w, "%s restored from checkpoint\n", id)
	case GridTrialStart:
		fmt.Fprintf(w, "%s trial %d/%d started (budget %d iterations)%s\n",
			id, p.Trial+1, p.Trials, p.Info.Iterations, suffix)
	case GridTrialDone:
		status := "SUCCESS"
		if !p.Result.Success {
			status = "FAILURE"
		}
		net := ""
		if n := p.Result.Metrics.Net; n != nil {
			net = fmt.Sprintf(" makespan=%.1f late=%d", n.Makespan, n.LateSymbols)
		}
		fmt.Fprintf(w, "%s trial %d/%d done: %s blowup=%.2f iterations=%d%s\n",
			id, p.Trial+1, p.Trials, status, p.Result.Blowup, p.Result.Iterations, net)
	case GridCellDone:
		fmt.Fprintf(w, "%s done (%d trials)\n", id, p.Trials)
	case GridCellRetrying:
		fmt.Fprintf(w, "%s attempt %d failed, retrying: %v\n", id, p.Attempt, p.Err)
	case GridCellFailed:
		fmt.Fprintf(w, "%s FAILED after %d attempt(s), quarantined: %v\n", id, p.Attempt, p.Err)
	}
}

// throttledLog is the state behind NewThrottledProgressLog. Progress
// calls are serialized by the grid engine, so the maps need no lock.
type throttledLog struct {
	w     io.Writer
	every int
	now   func() time.Time
	// budget and start are keyed by (cell, trial); entries are dropped at
	// trial end so a long grid's map stays bounded by in-flight trials.
	budget map[[2]int]int
	start  map[[2]int]time.Time
}

// sampleEvery resolves the sink's sampling stride for a trial: the
// configured stride, or ~5% of the budget (at least 1) when auto.
func (l *throttledLog) sampleEvery(budget int) int {
	if l.every > 0 {
		return l.every
	}
	every := budget / 20
	if every < 1 {
		every = 1
	}
	return every
}

func (l *throttledLog) emit(p GridProgress) {
	key := [2]int{p.Cell, p.Trial}
	switch p.Event {
	case GridTrialStart:
		l.budget[key] = p.Info.Iterations
		l.start[key] = l.now()
		printProgressEvent(l.w, p, fmt.Sprintf(", sampling every %d", l.sampleEvery(p.Info.Iterations)))
	case GridIteration:
		budget := l.budget[key]
		every := l.sampleEvery(budget)
		done := p.Iteration + 1
		if done%every != 0 && done != budget {
			return
		}
		line := fmt.Sprintf("%s trial %d/%d iter %d: cc=%d corruptions=%d",
			progressID(p), p.Trial+1, p.Trials, p.Iteration,
			p.Stats.Metrics.CC, p.Stats.Metrics.TotalCorruptions())
		if budget > 0 {
			line += fmt.Sprintf(" %d%%", 100*done/budget)
			if start, ok := l.start[key]; ok && done < budget {
				elapsed := l.now().Sub(start)
				eta := time.Duration(float64(elapsed) * float64(budget-done) / float64(done))
				line += fmt.Sprintf(" eta=%s", eta.Round(time.Second))
			}
		}
		fmt.Fprintln(l.w, line)
	case GridTrialDone:
		delete(l.budget, key)
		delete(l.start, key)
		printProgressEvent(l.w, p, "")
	default:
		printProgressEvent(l.w, p, "")
	}
}

// NewThrottledProgressLog is NewProgressLog for grids whose trials run
// thousands of iterations (an n≥64 clique under -observe): it subsamples
// the iteration stream — every `every` iterations, or, when every ≤ 0,
// ~5% of each trial's budget — and annotates each sampled line with the
// percentage done and an ETA projected from RunInfo.Iterations, the
// run's iteration budget (with early stop the trial may finish sooner
// than the projection). All other events print exactly like
// NewProgressLog.
func NewThrottledProgressLog(w io.Writer, every int) GridProgressFunc {
	return newThrottledProgressLog(w, every, time.Now)
}

// newThrottledProgressLog lets tests inject the clock.
func newThrottledProgressLog(w io.Writer, every int, now func() time.Time) GridProgressFunc {
	l := &throttledLog{
		w: w, every: every, now: now,
		budget: make(map[[2]int]int),
		start:  make(map[[2]int]time.Time),
	}
	return l.emit
}

// arenaLog is the observer sink behind NewArenaLog.
type arenaLog struct {
	w io.Writer
}

// IterationDone implements Observer; the arena sink only cares about run
// boundaries.
func (arenaLog) IterationDone(IterationStats) {}

// RunDone implements RunEndObserver: one line of arena telemetry per run.
func (l arenaLog) RunDone(res *Result) {
	if res.Arena == nil {
		fmt.Fprintln(l.w, "arena: off")
		return
	}
	a := res.Arena
	total := a.Hits + a.Misses
	rate := 0.0
	if total > 0 {
		rate = float64(a.Hits) / float64(total)
	}
	fmt.Fprintf(l.w, "arena: hits=%d misses=%d hit-rate=%.2f words-reused=%d\n",
		a.Hits, a.Misses, rate, a.WordsReused)
}

// NewArenaLog returns an observer sink that writes one line of arena
// telemetry per run to w — the runner's buffer-pool hits, misses, and
// recycled words (see ArenaStats). Attach it to the scenarios of a sweep
// to watch the arena warm up, or to spot a topology whose buffer shapes
// keep missing the pool.
func NewArenaLog(w io.Writer) Observer {
	return arenaLog{w: w}
}
