package mpic_test

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"mpic"
)

// gridBase is the small scenario the engine tests grid over.
func gridBase() mpic.Scenario {
	return mpic.Scenario{
		Topology:   mpic.Line(4),
		Workload:   mpic.RandomTraffic(40),
		Noise:      mpic.RandomNoise(0),
		Seed:       3,
		IterFactor: 12,
	}
}

// TestGridParallelSequentialIdentical is the engine's determinism pin:
// the same grid executed sequentially (Workers=1) and on a worker pool
// (Workers=4) produces bit-identical cells, trial for trial — the
// property that makes parallel sweeps trustworthy and checkpointed runs
// mergeable.
func TestGridParallelSequentialIdentical(t *testing.T) {
	sw := mpic.Sweep{
		Base:     gridBase(),
		N:        []int{4, 5},
		Schemes:  []mpic.Scheme{mpic.AlgorithmA, mpic.Algorithm1},
		Rates:    []float64{0, 0.002},
		Trials:   2,
		SeedStep: 100,
	}
	runner := mpic.NewRunner()
	defer runner.Close()

	sw.Workers = 1
	seq, err := runner.Sweep(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}
	sw.Workers = 4
	par, err := runner.Sweep(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 8 || len(par) != len(seq) {
		t.Fatalf("got %d sequential and %d parallel cells, want 8", len(seq), len(par))
	}
	for i := range seq {
		if !reflect.DeepEqual(seq[i], par[i]) {
			t.Errorf("cell %d differs:\nsequential: %+v\nparallel:   %+v", i, seq[i], par[i])
		}
	}
}

// TestGridStreamsBeforeCompletion pins the engine's streaming contract:
// the sink receives completed cells while later cells have not even
// started — the property `mpicbench -sweep` relies on to print rows and
// write checkpoints as a long grid progresses.
func TestGridStreamsBeforeCompletion(t *testing.T) {
	var runsStarted atomic.Int64
	base := gridBase()
	base.Observers = []mpic.Observer{startCounter{&runsStarted}}
	grid, err := mpic.Sweep{Base: base, Rates: []float64{0, 0.001, 0.002}}.Grid()
	if err != nil {
		t.Fatal(err)
	}
	grid.Workers = 1

	type delivery struct {
		index   int
		started int64
	}
	var deliveries []delivery
	runner := mpic.NewRunner()
	defer runner.Close()
	err = runner.RunGrid(context.Background(), grid, func(res mpic.GridCellResult) {
		deliveries = append(deliveries, delivery{res.Index, runsStarted.Load()})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(deliveries) != 3 {
		t.Fatalf("sink saw %d cells, want 3", len(deliveries))
	}
	first := deliveries[0]
	if first.started >= 3 {
		t.Fatalf("first cell was delivered only after all %d runs had started — grid did not stream", first.started)
	}
	if first.started < 1 {
		t.Fatalf("first delivery before any run started (%d)", first.started)
	}
}

// startCounter counts RunStarted callbacks; safe for concurrent cells.
type startCounter struct{ n *atomic.Int64 }

func (s startCounter) IterationDone(mpic.IterationStats) {}
func (s startCounter) RunStarted(mpic.RunInfo)           { s.n.Add(1) }

// TestGridDuplicateKeys pins the keyed-merge fallback: cells with equal
// (n, scheme, rate) keys assemble in definition order.
func TestGridDuplicateKeys(t *testing.T) {
	runner := mpic.NewRunner()
	defer runner.Close()
	cells, err := runner.Sweep(context.Background(), mpic.Sweep{
		Base:    gridBase(),
		N:       []int{4, 4},
		Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(cells))
	}
	if !reflect.DeepEqual(cells[0], cells[1]) {
		t.Errorf("duplicate-key cells differ: %+v vs %+v", cells[0], cells[1])
	}
	if cells[0].Trials != 1 || cells[0].N != 4 {
		t.Errorf("unexpected duplicate-key cell: %+v", cells[0])
	}
}

// TestGridKeepResults pins the per-trial result retention and the
// derived key of a zero-Key cell.
func TestGridKeepResults(t *testing.T) {
	runner := mpic.NewRunner()
	defer runner.Close()
	results, err := runner.CollectGrid(context.Background(), mpic.Grid{
		Cells: []mpic.GridCell{
			{Scenario: gridBase(), Trials: 2, SeedStep: 11},
		},
		KeepResults: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := results[0]
	if res.Key.N != 4 || res.Key.Scheme != mpic.AlgorithmA || res.Key.Rate != 0 {
		t.Errorf("derived key = %+v, want n=4 scheme=A rate=0", res.Key)
	}
	if len(res.Results) != 2 {
		t.Fatalf("kept %d results, want 2", len(res.Results))
	}
	for i, r := range res.Results {
		if r == nil || r.Iterations == 0 {
			t.Errorf("trial %d result empty: %+v", i, r)
		}
		if float64(r.Iterations) != res.Cell.Iterations[i] {
			t.Errorf("trial %d: kept result iterations %d != aggregate %g", i, r.Iterations, res.Cell.Iterations[i])
		}
	}
	// Without KeepResults the per-trial results are dropped.
	slim, err := runner.CollectGrid(context.Background(), mpic.Grid{
		Cells: []mpic.GridCell{{Scenario: gridBase()}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if slim[0].Results != nil {
		t.Error("Results kept without KeepResults")
	}
}

// TestGridErrorAborts pins the failure contract: a failing cell aborts
// the grid with its error; already-completed cells stream first.
func TestGridErrorAborts(t *testing.T) {
	bad := gridBase()
	bad.Topology = mpic.Topology("no-such-family", 4)
	runner := mpic.NewRunner()
	defer runner.Close()
	streamed := 0
	err := runner.RunGrid(context.Background(), mpic.Grid{
		Cells: []mpic.GridCell{
			{Scenario: gridBase()},
			{Scenario: bad},
		},
		Workers: 1,
	}, func(mpic.GridCellResult) { streamed++ })
	if err == nil {
		t.Fatal("grid with an unknown topology family succeeded")
	}
	if streamed != 1 {
		t.Errorf("streamed %d cells before the failure, want 1", streamed)
	}
}

// TestGridCancellation pins context semantics: cancelling mid-grid
// returns context.Canceled and stops claiming cells.
func TestGridCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runner := mpic.NewRunner()
	defer runner.Close()
	grid, err := mpic.Sweep{Base: gridBase(), Rates: []float64{0, 0.001, 0.002, 0.003}}.Grid()
	if err != nil {
		t.Fatal(err)
	}
	grid.Workers = 1
	delivered := 0
	err = runner.RunGrid(ctx, grid, func(mpic.GridCellResult) {
		delivered++
		cancel()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if delivered != 1 {
		t.Errorf("delivered %d cells after cancellation, want 1", delivered)
	}
}

// TestGridCancelAfterLastCell pins the completed-grid contract: a
// cancellation that lands only after every cell has streamed (e.g. a
// sink using the context as an early-stop signal) must not make the
// caller discard a complete result set.
func TestGridCancelAfterLastCell(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runner := mpic.NewRunner()
	defer runner.Close()
	grid, err := mpic.Sweep{Base: gridBase(), Rates: []float64{0, 0.001}}.Grid()
	if err != nil {
		t.Fatal(err)
	}
	grid.Workers = 1
	delivered := 0
	err = runner.RunGrid(ctx, grid, func(mpic.GridCellResult) {
		delivered++
		if delivered == len(grid.Cells) {
			cancel()
		}
	})
	if err != nil {
		t.Fatalf("complete grid reported %v after post-completion cancel", err)
	}
	if delivered != 2 {
		t.Fatalf("delivered %d cells, want 2", delivered)
	}
}

// TestGridArenaTelemetry pins the arena counters: a second same-shaped
// grid through the same Runner draws its buffers from the pool (hits,
// words reused), and each run's delta is surfaced through Result.Arena.
func TestGridArenaTelemetry(t *testing.T) {
	runner := mpic.NewRunner()
	defer runner.Close()
	grid := mpic.Grid{
		Cells:       []mpic.GridCell{{Scenario: gridBase()}},
		KeepResults: true,
	}
	cold, err := runner.CollectGrid(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := runner.CollectGrid(context.Background(), grid)
	if err != nil {
		t.Fatal(err)
	}
	st := cold[0].Results[0].Arena
	if st == nil || st.Misses == 0 {
		t.Fatalf("cold run arena stats = %+v, want misses > 0", st)
	}
	if st.Hits != 0 {
		t.Errorf("cold run reused %d buffers from an empty arena", st.Hits)
	}
	wst := warm[0].Results[0].Arena
	if wst == nil || wst.Hits == 0 || wst.WordsReused == 0 {
		t.Fatalf("warm run arena stats = %+v, want hits and words reused > 0", wst)
	}
	// The incremental-hash path draws from the same pool (pooled
	// checkpoint stores): a warmed arena serves it without fresh misses
	// for the prefix-slot buffers.
	inc := gridBase()
	inc.IncrementalHash = true
	incGrid := mpic.Grid{Cells: []mpic.GridCell{{Scenario: inc}}, KeepResults: true}
	if _, err := runner.CollectGrid(context.Background(), incGrid); err != nil {
		t.Fatal(err)
	}
	incWarm, err := runner.CollectGrid(context.Background(), incGrid)
	if err != nil {
		t.Fatal(err)
	}
	ist := incWarm[0].Results[0].Arena
	if ist == nil || ist.Hits == 0 {
		t.Fatalf("warm incremental run arena stats = %+v, want hits > 0", ist)
	}
}
