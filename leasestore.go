package mpic

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// LeaseStore extends GridStore with the claim/renew/release protocol a
// sharded grid session runs on: N workers — goroutines, or separate OS
// processes sharing a session directory — lease pending cells, execute
// them, and persist each completed cell under its lease. Because every
// cell is a pure function of its spec and seed salt, the protocol needs
// no consensus: a lease is a performance hint (it keeps two workers from
// duplicating work), never a correctness requirement. A crashed worker's
// leases expire and its cells are re-claimed; if the dead worker's
// result and the reclaimer's both land, they are bit-identical and the
// duplicate is dropped. The merged grid therefore equals a sequential
// RunGrid byte for byte, whatever the interleaving.
//
// Load/Save keep their GridStore meaning over the merged session state,
// so the ordinary engine (Runner.RunGrid with Grid.Store) can restore —
// or finish — a sharded session directly.
type LeaseStore interface {
	GridStore

	// Claim leases up to limit pending cells of a grid with total cells
	// to the named worker for ttl, returning the claimed indices and the
	// number of cells still pending (not completed, not quarantined —
	// including the ones just claimed and cells leased to other
	// workers). Expired leases are pruned first, so a dead worker's
	// cells come back into rotation here. pending == 0 means the grid is
	// finished.
	Claim(spec, worker string, total, limit int, ttl time.Duration) (claimed []int, pending int, err error)

	// Renew extends every lease the worker holds by ttl from now.
	Renew(spec, worker string, ttl time.Duration) error

	// Release drops every lease the worker holds, returning unfinished
	// cells to the pending pool immediately — the graceful-shutdown
	// path, where crash recovery by expiry would work but would stall
	// other workers for a TTL.
	Release(spec, worker string) error

	// SaveCell merges one completed cell into the session and drops any
	// lease on it. A cell already present is dropped silently: two
	// workers that raced the same cell (a lease expired under a slow but
	// live worker) produced bit-identical results, and the first one in
	// wins nothing but the disk write.
	SaveCell(spec, worker string, cell StoredCell) error

	// MarkFailed records a cell quarantined after exhausting its retry
	// budget, so no worker claims it again this session. Failures
	// surface in Claim's pending arithmetic and in Failures.
	MarkFailed(spec, worker string, failure FailedCell) error

	// Failures returns the cells quarantined so far, in cell order.
	Failures(spec string) ([]FailedCell, error)
}

// Lease is one granted cell lease.
type Lease struct {
	// Cell is the leased cell's index in Grid.Cells.
	Cell int
	// Worker is the holder's self-chosen name.
	Worker string
	// Expires is when the lease lapses and the cell returns to the
	// pending pool.
	Expires time.Time
}

// FailedCell records one quarantined cell of a sharded session.
type FailedCell struct {
	// Cell is the failed cell's index in Grid.Cells.
	Cell int
	// Worker is the worker that exhausted the cell's retry budget.
	Worker string
	// Attempts is how many attempts were spent.
	Attempts int
	// Reason is the final attempt's error text.
	Reason string
}

// leaseFileVersion is the on-disk format version of the lease ledger.
const leaseFileVersion = 1

// leaseFileState is the on-disk JSON shape of the lease ledger — the
// same checksummed, fsync'd, atomically rotated discipline as the cell
// checkpoint, over the coordination state instead of the results.
type leaseFileState struct {
	Version  int
	Spec     string
	Checksum string
	Leases   []Lease      `json:",omitempty"`
	Failed   []FailedCell `json:",omitempty"`
}

// leaseChecksum computes the ledger's integrity checksum, tagged
// distinctly from the cell checkpoint so the two file kinds can never
// authenticate each other.
func leaseChecksum(version int, spec string, payloadJSON []byte) string {
	h := sha256.New()
	fmt.Fprintf(h, "mpic-leases-v%d %s\n", version, spec)
	h.Write(payloadJSON)
	return fmt.Sprintf("%x", h.Sum(nil))
}

// leasePayload renders the checksummed portion of the ledger. Empty
// slices normalize to nil so the payload is identical whether it was
// just filtered in memory (empty non-nil) or round-tripped through JSON
// omitempty (nil).
func leasePayload(leases []Lease, failed []FailedCell) ([]byte, error) {
	if len(leases) == 0 {
		leases = nil
	}
	if len(failed) == 0 {
		failed = nil
	}
	return json.Marshal(struct {
		Leases []Lease
		Failed []FailedCell
	}{leases, failed})
}

// DirLeaseStore is the LeaseStore used by the grid service and the
// sharded CLI paths: one session directory shared by every worker,
// holding
//
//	cells.json   — the merged completed cells (a FileGridStore, the
//	               ordinary checksummed v3 checkpoint format)
//	leases.json  — the lease/quarantine ledger (checksummed v1)
//	lock         — the flock sidecar serializing multi-file operations
//
// Every operation runs under an exclusive directory lock, so the
// read-merge-write cycles of concurrent workers — in this process or
// others — serialize instead of interleaving. The embedded cell store's
// own sidecar lock nests inside the directory lock in a fixed order, so
// the two can never deadlock.
type DirLeaseStore struct {
	dir   string
	cells *FileGridStore

	// Clock replaces time.Now for lease expiry decisions; nil means
	// time.Now. Tests inject a fake clock to step leases over their TTL
	// without sleeping.
	Clock func() time.Time

	mu sync.Mutex
}

// NewDirLeaseStore returns a lease store over the given session
// directory, created on first use.
func NewDirLeaseStore(dir string) *DirLeaseStore {
	return &DirLeaseStore{
		dir:   dir,
		cells: NewFileGridStore(filepath.Join(dir, "cells.json")),
	}
}

// Dir returns the session directory.
func (s *DirLeaseStore) Dir() string { return s.dir }

// CellsPath returns the merged cell checkpoint file inside the session
// directory — a plain FileGridStore file, readable by anything that
// reads grid checkpoints.
func (s *DirLeaseStore) CellsPath() string { return s.cells.Path() }

func (s *DirLeaseStore) now() time.Time {
	if s.Clock != nil {
		return s.Clock()
	}
	return time.Now()
}

// withLock runs fn under the process mutex and the directory flock.
func (s *DirLeaseStore) withLock(fn func() error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return err
	}
	unlock, err := flockPath(filepath.Join(s.dir, "lock"))
	if err != nil {
		return err
	}
	defer unlock()
	return fn()
}

// leasesPath returns the lease ledger file.
func (s *DirLeaseStore) leasesPath() string { return filepath.Join(s.dir, "leases.json") }

// readLeases reads and validates the lease ledger; a missing file is an
// empty ledger. Must run under the directory lock.
func (s *DirLeaseStore) readLeases(spec string) (*leaseFileState, error) {
	path := s.leasesPath()
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return &leaseFileState{Version: leaseFileVersion, Spec: spec}, nil
		}
		return nil, &CorruptCheckpointError{Path: path, Reason: err}
	}
	var st leaseFileState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, &CorruptCheckpointError{Path: path, Reason: err}
	}
	if st.Version != leaseFileVersion {
		return nil, fmt.Errorf("mpic: lease ledger %s has format version %d; this build reads version %d — delete the session directory to restart",
			path, st.Version, leaseFileVersion)
	}
	payload, err := leasePayload(st.Leases, st.Failed)
	if err != nil {
		return nil, &CorruptCheckpointError{Path: path, Reason: err}
	}
	if sum := leaseChecksum(st.Version, st.Spec, payload); sum != st.Checksum {
		return nil, &CorruptCheckpointError{Path: path,
			Reason: fmt.Errorf("lease ledger checksum mismatch (stored %.12s…, computed %.12s…)", st.Checksum, sum)}
	}
	if st.Spec != spec {
		return nil, fmt.Errorf("mpic: lease ledger %s belongs to a different grid (%q); delete the session directory or match the grid (%q)",
			path, st.Spec, spec)
	}
	return &st, nil
}

// writeLeases persists the ledger with the same crash discipline as the
// cell checkpoint: checksummed payload, fsync'd temp file, atomic
// rename, directory fsync. Must run under the directory lock.
func (s *DirLeaseStore) writeLeases(spec string, st *leaseFileState) error {
	st.Version = leaseFileVersion
	st.Spec = spec
	if len(st.Leases) == 0 {
		st.Leases = nil
	}
	if len(st.Failed) == 0 {
		st.Failed = nil
	}
	payload, err := leasePayload(st.Leases, st.Failed)
	if err != nil {
		return err
	}
	st.Checksum = leaseChecksum(st.Version, st.Spec, payload)
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	path := s.leasesPath()
	tmp := path + ".tmp"
	if err := writeFileSync(tmp, append(data, '\n')); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(s.dir)
}

// doneSet returns the indices of completed cells. Must run under the
// directory lock.
func (s *DirLeaseStore) doneSet(spec string) (map[int]bool, []StoredCell, error) {
	cells, err := s.cells.Load(spec)
	if err != nil {
		return nil, nil, err
	}
	done := make(map[int]bool, len(cells))
	for _, c := range cells {
		done[c.Index] = true
	}
	return done, cells, nil
}

// Load implements GridStore over the merged session state.
func (s *DirLeaseStore) Load(spec string) ([]StoredCell, error) {
	var cells []StoredCell
	err := s.withLock(func() error {
		var e error
		cells, e = s.cells.Load(spec)
		return e
	})
	if err != nil {
		return nil, err
	}
	return cells, nil
}

// Save implements GridStore by replacing the merged session state —
// the path the ordinary single-writer engine uses when it finishes a
// sharded session's stragglers.
func (s *DirLeaseStore) Save(spec string, cells []StoredCell) error {
	return s.withLock(func() error { return s.cells.Save(spec, cells) })
}

// Claim implements LeaseStore.
func (s *DirLeaseStore) Claim(spec, worker string, total, limit int, ttl time.Duration) (claimed []int, pending int, err error) {
	err = s.withLock(func() error {
		done, _, err := s.doneSet(spec)
		if err != nil {
			return err
		}
		st, err := s.readLeases(spec)
		if err != nil {
			return err
		}
		now := s.now()
		failed := make(map[int]bool, len(st.Failed))
		for _, f := range st.Failed {
			failed[f.Cell] = true
		}
		// Prune expired leases and leases on settled cells; note whether
		// anything changed so an idle poll doesn't rewrite (and fsync)
		// an unchanged ledger.
		active := st.Leases[:0]
		changed := false
		leased := make(map[int]bool)
		for _, l := range st.Leases {
			if done[l.Cell] || failed[l.Cell] || !l.Expires.After(now) {
				changed = true
				continue
			}
			active = append(active, l)
			leased[l.Cell] = true
		}
		for i := 0; i < total && len(claimed) < limit; i++ {
			if done[i] || failed[i] || leased[i] {
				continue
			}
			claimed = append(claimed, i)
			active = append(active, Lease{Cell: i, Worker: worker, Expires: now.Add(ttl)})
			changed = true
		}
		pending = total - len(done) - len(failed)
		st.Leases = active
		if !changed {
			return nil
		}
		return s.writeLeases(spec, st)
	})
	if err != nil {
		return nil, 0, err
	}
	return claimed, pending, nil
}

// Renew implements LeaseStore.
func (s *DirLeaseStore) Renew(spec, worker string, ttl time.Duration) error {
	return s.withLock(func() error {
		st, err := s.readLeases(spec)
		if err != nil {
			return err
		}
		expires := s.now().Add(ttl)
		changed := false
		for i := range st.Leases {
			if st.Leases[i].Worker == worker {
				st.Leases[i].Expires = expires
				changed = true
			}
		}
		if !changed {
			return nil
		}
		return s.writeLeases(spec, st)
	})
}

// Release implements LeaseStore.
func (s *DirLeaseStore) Release(spec, worker string) error {
	return s.withLock(func() error {
		st, err := s.readLeases(spec)
		if err != nil {
			return err
		}
		active := st.Leases[:0]
		changed := false
		for _, l := range st.Leases {
			if l.Worker == worker {
				changed = true
				continue
			}
			active = append(active, l)
		}
		if !changed {
			return nil
		}
		st.Leases = active
		return s.writeLeases(spec, st)
	})
}

// SaveCell implements LeaseStore.
func (s *DirLeaseStore) SaveCell(spec, worker string, cell StoredCell) error {
	return s.withLock(func() error {
		done, cells, err := s.doneSet(spec)
		if err != nil {
			return err
		}
		if !done[cell.Index] {
			if err := s.cells.Save(spec, append(cells, cell)); err != nil {
				return err
			}
		}
		// The cell is settled; drop every lease on it, whoever holds
		// one — a lease on a completed cell is pure staleness.
		st, err := s.readLeases(spec)
		if err != nil {
			return err
		}
		active := st.Leases[:0]
		changed := false
		for _, l := range st.Leases {
			if l.Cell == cell.Index {
				changed = true
				continue
			}
			active = append(active, l)
		}
		if !changed {
			return nil
		}
		st.Leases = active
		return s.writeLeases(spec, st)
	})
}

// MarkFailed implements LeaseStore.
func (s *DirLeaseStore) MarkFailed(spec, worker string, failure FailedCell) error {
	return s.withLock(func() error {
		done, _, err := s.doneSet(spec)
		if err != nil {
			return err
		}
		st, err := s.readLeases(spec)
		if err != nil {
			return err
		}
		if !done[failure.Cell] {
			already := false
			for _, f := range st.Failed {
				if f.Cell == failure.Cell {
					already = true
					break
				}
			}
			if !already {
				st.Failed = append(st.Failed, failure)
				sort.Slice(st.Failed, func(i, j int) bool { return st.Failed[i].Cell < st.Failed[j].Cell })
			}
		}
		active := st.Leases[:0]
		for _, l := range st.Leases {
			if l.Cell == failure.Cell {
				continue
			}
			active = append(active, l)
		}
		st.Leases = active
		return s.writeLeases(spec, st)
	})
}

// Failures implements LeaseStore.
func (s *DirLeaseStore) Failures(spec string) ([]FailedCell, error) {
	var failed []FailedCell
	err := s.withLock(func() error {
		st, err := s.readLeases(spec)
		if err != nil {
			return err
		}
		failed = st.Failed
		return nil
	})
	if err != nil {
		return nil, err
	}
	return failed, nil
}

// Leases returns the currently active (unexpired) leases, in cell
// order — introspection for status endpoints and tests, not part of the
// LeaseStore protocol.
func (s *DirLeaseStore) Leases(spec string) ([]Lease, error) {
	var leases []Lease
	err := s.withLock(func() error {
		st, err := s.readLeases(spec)
		if err != nil {
			return err
		}
		now := s.now()
		for _, l := range st.Leases {
			if l.Expires.After(now) {
				leases = append(leases, l)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(leases, func(i, j int) bool { return leases[i].Cell < leases[j].Cell })
	return leases, nil
}
