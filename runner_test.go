package mpic_test

import (
	"context"
	"errors"
	"testing"

	"mpic"
)

// TestSweepGrid pins the cartesian semantics: cell order, per-cell
// identity fields, trial counts, and the noiseless-success invariant.
func TestSweepGrid(t *testing.T) {
	runner := mpic.NewRunner()
	defer runner.Close()
	cells, err := runner.Sweep(context.Background(), mpic.Sweep{
		Base: mpic.Scenario{
			Topology:   mpic.Line(4),
			Workload:   mpic.RandomTraffic(40),
			Noise:      mpic.RandomNoise(0),
			Seed:       3,
			IterFactor: 15,
		},
		N:        []int{4, 5},
		Schemes:  []mpic.Scheme{mpic.AlgorithmA, mpic.Algorithm1},
		Rates:    []float64{0, 0.001},
		Trials:   2,
		SeedStep: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 8 {
		t.Fatalf("got %d cells, want 8", len(cells))
	}
	want := 0
	for _, n := range []int{4, 5} {
		for _, s := range []mpic.Scheme{mpic.AlgorithmA, mpic.Algorithm1} {
			for _, rate := range []float64{0, 0.001} {
				c := cells[want]
				want++
				if c.N != n || c.Scheme != s || c.Rate != rate {
					t.Fatalf("cell %d is (n=%d, %v, %g), want (n=%d, %v, %g)",
						want-1, c.N, c.Scheme, c.Rate, n, s, rate)
				}
				if c.Trials != 2 || len(c.Blowups) != 2 || len(c.Iterations) != 2 {
					t.Fatalf("cell %d has %d trials (%d blowups)", want-1, c.Trials, len(c.Blowups))
				}
				if rate == 0 && c.Successes != c.Trials {
					t.Errorf("noiseless cell %d not fully successful: %d/%d", want-1, c.Successes, c.Trials)
				}
				if rate == 0 && c.Corruptions != 0 {
					t.Errorf("noiseless cell %d recorded %d corruptions", want-1, c.Corruptions)
				}
				if c.MeanBlowup() <= 0 {
					t.Errorf("cell %d mean blowup %.2f", want-1, c.MeanBlowup())
				}
			}
		}
	}
}

// TestSweepValidation pins the grid error paths.
func TestSweepValidation(t *testing.T) {
	runner := mpic.NewRunner()
	defer runner.Close()
	// Rates without a base noise model.
	_, err := runner.Sweep(context.Background(), mpic.Sweep{
		Base:  mpic.Scenario{Topology: mpic.Line(4)},
		Rates: []float64{0.1},
	})
	if err == nil {
		t.Error("rate axis without Base.Noise accepted")
	}
	// An N axis cannot resize an explicit graph.
	g, err := mpic.NewTopology("line", 4)
	if err != nil {
		t.Fatal(err)
	}
	_, err = runner.Sweep(context.Background(), mpic.Sweep{
		Base: mpic.Scenario{Topology: mpic.GraphTopology(g)},
		N:    []int{4, 6},
	})
	if err == nil {
		t.Error("N axis over an explicit graph accepted")
	}
	// A rate axis over a noise spec whose rate is baked into a closure
	// must error loudly instead of running mislabeled cells.
	fixed := mpic.NoiseFunc("fixed", func(env mpic.NoiseEnv) (mpic.WiredNoise, error) {
		return mpic.WiredNoise{Adversary: mpic.NewFixedDeletions(0, 1, 0, 0)}, nil
	})
	_, err = runner.Sweep(context.Background(), mpic.Sweep{
		Base:  mpic.Scenario{Topology: mpic.Line(4), Noise: fixed},
		Rates: []float64{0.001, 0.01},
	})
	if err == nil {
		t.Error("rate axis over a closure-rated NoiseFunc accepted")
	}
}

// TestSweepProtocolWorkloadN pins SweepCell.N for scenarios whose
// topology is implicit in a pre-built protocol.
func TestSweepProtocolWorkloadN(t *testing.T) {
	g, err := mpic.NewTopology("ring", 5)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := mpic.NewWorkload("token-ring", g, 25, 1)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := mpic.NewRunner().Sweep(context.Background(), mpic.Sweep{
		Base: mpic.Scenario{Workload: mpic.UseProtocol(proto), Seed: 1, IterFactor: 15},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || cells[0].N != 5 {
		t.Fatalf("UseProtocol sweep cell reports N=%d, want 5", cells[0].N)
	}
}

// TestObserverLifecycle pins the Observer contract: RunStarted once,
// IterationDone exactly once per executed iteration with monotone
// communication, RunDone once with the final result.
func TestObserverLifecycle(t *testing.T) {
	ob := &recordingObserver{}
	res, err := mpic.RunScenario(context.Background(), mpic.Scenario{
		Topology:   mpic.Line(4),
		Workload:   mpic.RandomTraffic(40),
		Noise:      mpic.RandomNoise(0.002),
		Seed:       5,
		IterFactor: 15,
		Observers:  []mpic.Observer{ob},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ob.started != 1 {
		t.Errorf("RunStarted fired %d times, want 1", ob.started)
	}
	if ob.done != 1 || ob.final != res {
		t.Errorf("RunDone fired %d times (final==res: %v), want once with the result", ob.done, ob.final == res)
	}
	if len(ob.iters) != res.Iterations {
		t.Fatalf("observed %d iterations, result says %d", len(ob.iters), res.Iterations)
	}
	prevCC := int64(-1)
	for i, st := range ob.iters {
		if st.iteration != i {
			t.Fatalf("iteration %d reported as %d", i, st.iteration)
		}
		if st.cc < prevCC {
			t.Fatalf("communication went backwards at iteration %d: %d < %d", i, st.cc, prevCC)
		}
		prevCC = st.cc
		if !st.hadSnapshot {
			t.Fatalf("iteration %d missing oracle snapshot", i)
		}
	}
	if ob.links == 0 {
		t.Error("RunStarted info had no links")
	}
}

type iterRecord struct {
	iteration   int
	cc          int64
	hadSnapshot bool
}

type recordingObserver struct {
	started int
	links   int
	iters   []iterRecord
	done    int
	final   *mpic.Result
}

func (r *recordingObserver) RunStarted(info mpic.RunInfo) {
	r.started++
	r.links = len(info.Links)
}

func (r *recordingObserver) IterationDone(st mpic.IterationStats) {
	r.iters = append(r.iters, iterRecord{
		iteration:   st.Iteration,
		cc:          st.Metrics.CC,
		hadSnapshot: st.Snapshot != nil,
	})
}

func (r *recordingObserver) RunDone(res *mpic.Result) {
	r.done++
	r.final = res
}

// TestRunnerCancellation pins context semantics: an observer cancels the
// context after the first iteration, and the run returns ctx.Err()
// without a result.
func TestRunnerCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fired := 0
	res, err := mpic.NewRunner().Run(ctx, mpic.Scenario{
		Topology: mpic.Line(4),
		Workload: mpic.RandomTraffic(60),
		Seed:     3,
		Faithful: true, IterFactor: 50,
		Observers: []mpic.Observer{mpic.ObserverFunc(func(st mpic.IterationStats) {
			fired++
			cancel()
		})},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got (%v, %v), want context.Canceled", res, err)
	}
	if res != nil {
		t.Error("cancelled run returned a result")
	}
	if fired != 1 {
		t.Errorf("run continued for %d iterations after cancellation", fired)
	}
	// A pre-cancelled context never starts.
	dead, deadCancel := context.WithCancel(context.Background())
	deadCancel()
	if _, err := mpic.NewRunner().Run(dead, mpic.Scenario{Topology: mpic.Line(3), Seed: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled context: got %v", err)
	}
}
