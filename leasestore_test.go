package mpic_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"mpic"
)

// fakeClock is a manually stepped clock for lease-expiry tests: no
// sleeping, no wall-clock flakiness.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// TestLeaseClaimExclusive pins the partition property: two workers
// claiming from the same session never hold the same cell, and the
// pending count includes cells leased to either of them.
func TestLeaseClaimExclusive(t *testing.T) {
	store := mpic.NewDirLeaseStore(t.TempDir())
	clock := newFakeClock()
	store.Clock = clock.Now
	const spec, total = "claim-spec", 6

	a, pending, err := store.Claim(spec, "w-a", total, 4, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 4 || pending != total {
		t.Fatalf("worker a claimed %v (pending %d), want 4 cells of %d pending", a, pending, total)
	}
	b, pending, err := store.Claim(spec, "w-b", total, 4, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 2 || pending != total {
		t.Fatalf("worker b claimed %v (pending %d), want the 2 leftover cells", b, pending)
	}
	held := map[int]bool{}
	for _, i := range append(append([]int{}, a...), b...) {
		if held[i] {
			t.Fatalf("cell %d leased to both workers", i)
		}
		held[i] = true
	}
	// Everything is leased: a third worker gets nothing but the session
	// is still pending.
	c, pending, err := store.Claim(spec, "w-c", total, 4, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(c) != 0 || pending != total {
		t.Fatalf("worker c claimed %v (pending %d), want none of %d pending", c, pending, total)
	}
}

// TestLeaseExpiryReclaim pins the crash-recovery path: a worker claims a
// cell and dies (never renews, never releases); once the lease lapses
// the cell is re-leased to a live worker, whose completed result settles
// the session.
func TestLeaseExpiryReclaim(t *testing.T) {
	store := mpic.NewDirLeaseStore(t.TempDir())
	clock := newFakeClock()
	store.Clock = clock.Now
	const spec, total = "expiry-spec", 2
	ttl := 30 * time.Second

	dead, _, err := store.Claim(spec, "w-dead", total, 1, ttl)
	if err != nil {
		t.Fatal(err)
	}
	if len(dead) != 1 {
		t.Fatalf("dead worker claimed %v, want 1 cell", dead)
	}

	// While the lease is live, the survivor gets only the other cell —
	// claimed with a longer TTL, so advancing the clock expires only the
	// dead worker's lease.
	live, _, err := store.Claim(spec, "w-live", total, total, 10*ttl)
	if err != nil {
		t.Fatal(err)
	}
	if len(live) != 1 || live[0] == dead[0] {
		t.Fatalf("live worker claimed %v while %v was leased", live, dead)
	}

	// Past the TTL the dead worker's cell comes back into rotation.
	clock.Advance(ttl + time.Second)
	reclaimed, pending, err := store.Claim(spec, "w-live", total, total, ttl)
	if err != nil {
		t.Fatal(err)
	}
	if len(reclaimed) != 1 || reclaimed[0] != dead[0] {
		t.Fatalf("after expiry claimed %v, want the dead worker's cell %v", reclaimed, dead)
	}
	leases, err := store.Leases(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(leases) != 2 {
		t.Fatalf("active leases after reclaim: %+v, want both cells leased", leases)
	}
	for _, l := range leases {
		if l.Worker != "w-live" {
			t.Fatalf("lease %+v held by %q, want w-live", l, l.Worker)
		}
	}

	// Completing the cell drops the lease and the pending count.
	if err := store.SaveCell(spec, "w-live", mpic.StoredCell{Index: reclaimed[0]}); err != nil {
		t.Fatal(err)
	}
	_, pending, err = store.Claim(spec, "w-live", total, 0, ttl)
	if err != nil {
		t.Fatal(err)
	}
	if pending != total-1 {
		t.Fatalf("pending %d after one completion, want %d", pending, total-1)
	}
}

// TestLeaseRenewAndRelease pins the liveness half of the protocol:
// renewal pushes expiry out so a slow worker keeps its cells past the
// original TTL, and release returns them immediately.
func TestLeaseRenewAndRelease(t *testing.T) {
	store := mpic.NewDirLeaseStore(t.TempDir())
	clock := newFakeClock()
	store.Clock = clock.Now
	const spec, total = "renew-spec", 1
	ttl := 10 * time.Second

	if _, _, err := store.Claim(spec, "w-slow", total, 1, ttl); err != nil {
		t.Fatal(err)
	}
	clock.Advance(8 * time.Second)
	if err := store.Renew(spec, "w-slow", ttl); err != nil {
		t.Fatal(err)
	}
	clock.Advance(8 * time.Second) // past the original expiry, inside the renewed one
	got, _, err := store.Claim(spec, "w-thief", total, 1, ttl)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("renewed lease was stolen: %v", got)
	}
	if err := store.Release(spec, "w-slow"); err != nil {
		t.Fatal(err)
	}
	got, _, err = store.Claim(spec, "w-thief", total, 1, ttl)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("released cell not claimable: %v", got)
	}
}

// TestLeaseSaveCellDuplicateDropped pins the merge rule that makes lease
// expiry safe under a slow-but-alive worker: when two workers complete
// the same cell, the second result (bit-identical by determinism) is
// dropped, not appended.
func TestLeaseSaveCellDuplicateDropped(t *testing.T) {
	store := mpic.NewDirLeaseStore(t.TempDir())
	const spec = "dup-spec"
	cell := mpic.StoredCell{Index: 3, Cell: mpic.SweepCell{N: 4, Trials: 2, Successes: 2}}
	if err := store.SaveCell(spec, "w-a", cell); err != nil {
		t.Fatal(err)
	}
	if err := store.SaveCell(spec, "w-b", cell); err != nil {
		t.Fatal(err)
	}
	cells, err := store.Load(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 {
		t.Fatalf("duplicate completion persisted %d entries, want 1", len(cells))
	}
}

// TestLeaseLedgerSpecMismatch pins the same guard the cell checkpoint
// has: a ledger written under one grid refuses to serve another.
func TestLeaseLedgerSpecMismatch(t *testing.T) {
	store := mpic.NewDirLeaseStore(t.TempDir())
	if _, _, err := store.Claim("grid-one", "w", 2, 1, time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, _, err := store.Claim("grid-two", "w", 2, 1, time.Minute); err == nil ||
		!strings.Contains(err.Error(), "different grid") {
		t.Fatalf("ledger served a different grid: %v", err)
	}
}

// shardSweep is the grid the sharding determinism tests run: big enough
// to spread over several workers, cheap enough for unit tests.
func shardSweep() mpic.Sweep {
	return mpic.Sweep{
		Base:     gridBase(),
		N:        []int{4, 5},
		Schemes:  []mpic.Scheme{mpic.AlgorithmA, mpic.Algorithm1},
		Rates:    []float64{0, 0.002},
		Trials:   2,
		SeedStep: 100,
	}
}

// TestShardedGridDeterminism is the subsystem's core pin: N in-process
// workers leasing cells from a shared session directory produce a
// merged grid bit-identical to a sequential RunGrid — per-trial results
// included — and the ordinary engine restores the finished session
// without executing anything.
func TestShardedGridDeterminism(t *testing.T) {
	grid, err := shardSweep().Grid()
	if err != nil {
		t.Fatal(err)
	}
	grid.KeepResults = true
	runner := mpic.NewRunner()
	defer runner.Close()

	seqGrid := grid
	seqGrid.Workers = 1
	want, err := runner.CollectGrid(context.Background(), seqGrid)
	if err != nil {
		t.Fatal(err)
	}

	store := mpic.NewDirLeaseStore(t.TempDir())
	grid.Spec = "shard-determinism"
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for w := 0; w < len(errs); w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = runner.RunGridSharded(context.Background(), grid, store,
				mpic.ShardOptions{Worker: fmt.Sprintf("w%d", w), LeaseTTL: time.Minute}, nil)
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}

	restoreGrid := grid
	restoreGrid.Store = store
	got, err := runner.CollectGrid(context.Background(), restoreGrid)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("sharded session restored %d cells, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Restored {
			t.Errorf("cell %d was re-executed; the sharded session should have held it", i)
		}
		if !reflect.DeepEqual(got[i].Cell, want[i].Cell) {
			t.Errorf("cell %d diverged from sequential run:\n got %+v\nwant %+v", i, got[i].Cell, want[i].Cell)
		}
		if len(got[i].Results) != len(want[i].Results) {
			t.Fatalf("cell %d restored %d trials, want %d", i, len(got[i].Results), len(want[i].Results))
		}
		for j := range want[i].Results {
			if !reflect.DeepEqual(got[i].Results[j].Metrics, want[i].Results[j].Metrics) {
				t.Errorf("cell %d trial %d metrics diverged", i, j)
			}
		}
	}

	// The drained session holds no leases.
	leases, err := store.Leases("shard-determinism")
	if err != nil {
		t.Fatal(err)
	}
	if len(leases) != 0 {
		t.Errorf("finished session still holds leases: %+v", leases)
	}
}

// TestShardedQuarantine pins the failure semantics: a cell that
// exhausts its retry budget is quarantined in the shared ledger — no
// worker re-claims it, every worker's final error carries the
// session-wide report, and the healthy cells all complete.
func TestShardedQuarantine(t *testing.T) {
	base := gridBase()
	cells := []mpic.GridCell{
		{Scenario: base},
		{Scenario: func() mpic.Scenario {
			sc := base
			sc.Noise = mpic.NoiseFunc("always-fails", func(mpic.NoiseEnv) (mpic.WiredNoise, error) {
				return mpic.WiredNoise{}, errors.New("injected wiring failure")
			})
			return sc
		}()},
		{Scenario: func() mpic.Scenario { sc := base; sc.Seed = 11; return sc }()},
	}
	grid := mpic.Grid{
		Cells:       cells,
		Spec:        "shard-quarantine",
		OnCellError: mpic.QuarantineCells,
		Retry:       mpic.RetryPolicy{MaxAttempts: 2, Sleep: func(time.Duration) {}},
	}
	runner := mpic.NewRunner()
	defer runner.Close()
	store := mpic.NewDirLeaseStore(t.TempDir())

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for w := range errs {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = runner.RunGridSharded(context.Background(), grid, store,
				mpic.ShardOptions{Worker: fmt.Sprintf("w%d", w), LeaseTTL: time.Minute, Poll: 5 * time.Millisecond}, nil)
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		var gf *mpic.GridFailure
		if !errors.As(err, &gf) {
			t.Fatalf("worker %d returned %v, want *GridFailure", w, err)
		}
		if len(gf.Report.Failed) != 1 || gf.Report.Failed[0].Index != 1 {
			t.Fatalf("worker %d report: %+v, want cell 1 failed", w, gf.Report)
		}
		if gf.Report.Completed != 2 {
			t.Errorf("worker %d reports %d completed, want 2", w, gf.Report.Completed)
		}
		if gf.Report.Failed[0].Attempts != 2 {
			t.Errorf("failed cell spent %d attempts, want the full budget of 2", gf.Report.Failed[0].Attempts)
		}
	}
	failures, err := store.Failures("shard-quarantine")
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 1 || failures[0].Cell != 1 {
		t.Fatalf("ledger failures: %+v, want exactly cell 1", failures)
	}
}

// TestShardedRejectsDoubleStore pins the API guard: a sharded grid must
// not also carry a Grid.Store, and a nil lease store is refused.
func TestShardedRejectsDoubleStore(t *testing.T) {
	runner := mpic.NewRunner()
	defer runner.Close()
	grid := mpic.Grid{Cells: []mpic.GridCell{{Scenario: gridBase()}}}
	if err := runner.RunGridSharded(context.Background(), grid, nil, mpic.ShardOptions{}, nil); err == nil {
		t.Error("nil lease store accepted")
	}
	store := mpic.NewDirLeaseStore(t.TempDir())
	grid.Store = store
	if err := runner.RunGridSharded(context.Background(), grid, store, mpic.ShardOptions{}, nil); err == nil ||
		!strings.Contains(err.Error(), "Grid.Store") {
		t.Errorf("grid with its own store accepted: %v", err)
	}
}
