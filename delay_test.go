package mpic_test

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"mpic"
)

// TestLockstepDelayPinned is the compatibility pin of the virtual-time
// core: an explicit lockstep delay model is bit-identical to no delay
// model at all — both run the classic synchronous engine and neither
// grows NetStats.
func TestLockstepDelayPinned(t *testing.T) {
	run := func(d mpic.DelaySpec) *mpic.Result {
		runner := mpic.NewRunner()
		defer runner.Close()
		sc := gridBase()
		sc.Noise = mpic.RandomNoise(0.002)
		sc.Delay = d
		res, err := runner.Run(context.Background(), sc)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(nil)
	lock := run(mpic.LockstepDelay())
	if plain.Metrics.Net != nil || lock.Metrics.Net != nil {
		t.Fatal("lockstep runs must not grow NetStats")
	}
	a, b := *plain, *lock
	a.Arena, b.Arena = nil, nil
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("explicit lockstep delay diverged from no delay:\n%+v\n%+v", a, b)
	}
}

// timedSweep is the delay-axis grid the determinism tests run: three
// delay models (including explicit lockstep) with spikes and a straggler
// layered on every cell.
func timedSweep() mpic.Sweep {
	base := gridBase()
	base.Noise = mpic.RandomNoise(0.002)
	base.Faults = &mpic.NetFaults{SpikeRate: 0.05, Stragglers: 1}
	return mpic.Sweep{
		Base:     base,
		N:        []int{4, 5},
		Delays:   []mpic.DelaySpec{mpic.LockstepDelay(), mpic.JitterDelay(0.8), mpic.LognormalDelay(0.3)},
		Trials:   2,
		SeedStep: 100,
	}
}

// TestTimedGridDeterminism extends the engine's determinism pin to the
// virtual-time path: a grid with a delay axis and a network-fault
// schedule produces bit-identical cells at Workers=1 and Workers=4,
// including under delay spikes.
func TestTimedGridDeterminism(t *testing.T) {
	runner := mpic.NewRunner()
	defer runner.Close()
	sw := timedSweep()

	sw.Workers = 1
	seq, err := runner.Sweep(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}
	sw.Workers = 4
	par, err := runner.Sweep(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 6 || len(par) != len(seq) {
		t.Fatalf("got %d sequential and %d parallel cells, want 6", len(seq), len(par))
	}
	delaysSeen := map[string]bool{}
	for i := range seq {
		if !reflect.DeepEqual(seq[i], par[i]) {
			t.Errorf("cell %d differs:\nsequential: %+v\nparallel:   %+v", i, seq[i], par[i])
		}
		delaysSeen[seq[i].Delay] = true
	}
	for _, name := range []string{"unit", "jitter", "lognormal"} {
		if !delaysSeen[name] {
			t.Errorf("no cell carries delay axis value %q (saw %v)", name, delaysSeen)
		}
	}
}

// TestTimedGridKeepResults pins per-trial determinism on the timed path:
// with KeepResults, every trial's full Result — virtual-time NetStats
// included — is bit-identical across worker counts, and the non-lockstep
// cells actually carry network metrics.
func TestTimedGridKeepResults(t *testing.T) {
	collect := func(workers int) []mpic.GridCellResult {
		runner := mpic.NewRunner()
		defer runner.Close()
		grid, err := timedSweep().Grid()
		if err != nil {
			t.Fatal(err)
		}
		grid.Workers = workers
		grid.KeepResults = true
		results, err := runner.CollectGrid(context.Background(), grid)
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	seq, par := collect(1), collect(4)
	if len(seq) != len(par) {
		t.Fatalf("cell counts differ: %d vs %d", len(seq), len(par))
	}
	sawNet := false
	for i := range seq {
		a, b := seq[i], par[i]
		if a.Key != b.Key {
			t.Fatalf("cell %d keys differ: %+v vs %+v", i, a.Key, b.Key)
		}
		if !reflect.DeepEqual(a.Cell, b.Cell) {
			t.Errorf("cell %d aggregates differ", i)
		}
		if len(a.Results) != len(b.Results) || len(a.Results) == 0 {
			t.Fatalf("cell %d kept %d vs %d trial results", i, len(a.Results), len(b.Results))
		}
		for j := range a.Results {
			ra, rb := a.Results[j], b.Results[j]
			if !reflect.DeepEqual(ra.Metrics, rb.Metrics) {
				t.Errorf("cell %d trial %d metrics differ:\n%+v\n%+v", i, j, ra.Metrics, rb.Metrics)
			}
			if ra.Success != rb.Success || ra.Iterations != rb.Iterations || ra.Blowup != rb.Blowup {
				t.Errorf("cell %d trial %d outcome differs", i, j)
			}
			if a.Key.Delay != "unit" && a.Key.Delay != "" {
				if ra.Metrics.Net == nil {
					t.Errorf("cell %d (delay %q) trial %d has no NetStats", i, a.Key.Delay, j)
				} else {
					sawNet = true
					if ra.Metrics.Net.Makespan <= 0 {
						t.Errorf("cell %d trial %d makespan = %g", i, j, ra.Metrics.Net.Makespan)
					}
				}
			}
		}
	}
	if !sawNet {
		t.Fatal("no timed cell recorded NetStats")
	}
}

// TestTimedRunSurvivesFaults: a single run under a heavy fault schedule —
// outages, stragglers, and a crash-restart — completes and reports the
// faults as insdel noise plus virtual-time metrics.
func TestTimedRunSurvivesFaults(t *testing.T) {
	runner := mpic.NewRunner()
	defer runner.Close()
	sc := gridBase()
	sc.Delay = mpic.JitterDelay(0.5)
	sc.Faults = &mpic.NetFaults{OutageRate: 0.01, Stragglers: 1, Crashes: 1, CrashLen: 15}
	res, err := runner.Run(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	n := res.Metrics.Net
	if n == nil {
		t.Fatal("faulty timed run has no NetStats")
	}
	if n.Erasures == 0 {
		t.Error("crash + outages recorded no erasures")
	}
	if n.Makespan <= 0 || n.MaxP99() <= 0 {
		t.Errorf("degenerate virtual-time metrics: makespan=%g p99=%g", n.Makespan, n.MaxP99())
	}
	if len(n.Links) == 0 {
		t.Error("no per-link delay histograms")
	}
}

// TestParseDelayAndFaults covers the CLI string forms.
func TestParseDelayAndFaults(t *testing.T) {
	for _, s := range []string{"", "none"} {
		d, err := mpic.ParseDelay(s)
		if err != nil || d != nil {
			t.Errorf("ParseDelay(%q) = %v, %v; want nil, nil", s, d, err)
		}
		f, err := mpic.ParseNetFaults(s)
		if err != nil || f != nil {
			t.Errorf("ParseNetFaults(%q) = %v, %v; want nil, nil", s, f, err)
		}
	}
	d, err := mpic.ParseDelay("lognormal:0.3")
	if err != nil || d == nil || d.DelayName() != "lognormal" {
		t.Fatalf("ParseDelay(lognormal:0.3) = %v, %v", d, err)
	}
	if _, err := mpic.ParseDelay("lognormal:bogus"); err == nil {
		t.Error("malformed delay param accepted")
	}
	if _, err := mpic.ParseDelay("no-such-model"); err == nil {
		t.Error("unknown delay model accepted")
	}

	f, err := mpic.ParseNetFaults("outage=0.01,outage-len=4,spike=0.1,spike-delay=1.5,stragglers=2,straggler-delay=0.7,crashes=1,crash-len=20,seed=9")
	if err != nil {
		t.Fatal(err)
	}
	want := mpic.NetFaults{
		Seed: 9, OutageRate: 0.01, OutageLen: 4, SpikeRate: 0.1, SpikeDelay: 1.5,
		Stragglers: 2, StragglerDelay: 0.7, Crashes: 1, CrashLen: 20,
	}
	if *f != want {
		t.Fatalf("ParseNetFaults = %+v, want %+v", *f, want)
	}
	for _, bad := range []string{"outage", "outage=x", "nope=1", "outage=2"} {
		if _, err := mpic.ParseNetFaults(bad); err == nil {
			t.Errorf("ParseNetFaults(%q) accepted", bad)
		}
	}
}

// TestDelayRegistry: the fourth open registry behaves like the other
// three — seeded names present, sorted, external registration usable.
func TestDelayRegistry(t *testing.T) {
	names := mpic.DelayNames()
	for _, want := range []string{"unit", "lockstep", "jitter", "lognormal", "bands"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("seed delay %q missing from registry (have %v)", want, names)
		}
	}
	if !sortedStrings(names) {
		t.Errorf("DelayNames not sorted: %v", names)
	}
	mpic.RegisterDelay("test-slowstep", func(param float64) mpic.DelaySpec {
		return mpic.JitterDelay(param)
	})
	d, err := mpic.Delay("test-slowstep", 0.25)
	if err != nil || d == nil {
		t.Fatalf("externally registered delay unusable: %v", err)
	}
}

func sortedStrings(s []string) bool {
	for i := 1; i < len(s); i++ {
		if strings.Compare(s[i-1], s[i]) > 0 {
			return false
		}
	}
	return true
}
