//go:build !(darwin || dragonfly || freebsd || linux || netbsd || openbsd)

package mpic

import (
	"os"
	"time"
)

// lockStaleAfter bounds how long the fallback lock protocol trusts an
// existing lock file. Without flock(2) there is no kernel-held lease to
// expire when a holder dies, so a lock file older than this is presumed
// orphaned and broken.
const lockStaleAfter = 10 * time.Second

// flockPath is the portable fallback for platforms without flock(2): an
// O_EXCL create-spin on the lock file, refreshed by mtime, with stale
// locks (a holder that crashed before unlocking) broken after
// lockStaleAfter. Weaker than the flock build — a break races with a
// merely slow holder — but the sessions it guards are checksummed and
// conflict-checked, so the failure mode is a loud error, not silent
// corruption.
func flockPath(path string) (func() error, error) {
	for {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			f.Close()
			return func() error { return os.Remove(path) }, nil
		}
		if !os.IsExist(err) {
			return nil, err
		}
		if st, serr := os.Stat(path); serr == nil && time.Since(st.ModTime()) > lockStaleAfter {
			os.Remove(path) // presumed orphaned; next loop recreates it
			continue
		}
		time.Sleep(5 * time.Millisecond)
	}
}
