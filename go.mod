module mpic

go 1.21
