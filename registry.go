package mpic

import (
	"fmt"
	"sort"
	"sync"

	"mpic/internal/graph"
	"mpic/internal/protocol"
)

// The four open registries behind the scenario specs. The built-in
// topology families, workloads, noise models, and delay models are
// ordinary seed entries in these tables; external packages extend the
// library by registering their own under new names, after which the
// names work everywhere a built-in name does — typed specs (Topology,
// Workload, Noise, Delay), the legacy string Config, and the
// command-line tools.
//
// Registration is typically done from an init function:
//
//	func init() {
//	    if err := mpic.RegisterTopology("wheel", buildWheel); err != nil {
//	        panic(err)
//	    }
//	}
//
// All registry operations are safe for concurrent use.

// TopologyBuilder materializes a registered topology family at size n.
type TopologyBuilder func(n int) (*Graph, error)

// WorkloadBuilder materializes a registered workload over a topology.
// rounds is the requested workload scale (always positive — the scenario
// layer fills the 30·n default before calling) and seed derives the
// workload's inputs and randomness.
type WorkloadBuilder func(g *Graph, rounds int, seed int64) (Protocol, error)

// WorkloadDef describes a registered workload family.
type WorkloadDef struct {
	// Build materializes the workload.
	Build WorkloadBuilder
	// FixedTopology names the only topology family the workload runs on
	// ("" = any connected topology). Scenarios reject a conflicting
	// explicit topology and fill in an absent one.
	FixedTopology string
}

// NoiseFamily instantiates a registered noise model at a corruption rate
// (the paper's µ, as a fraction of total communication). A family may
// return nil for "no noise".
type NoiseFamily func(rate float64) NoiseSpec

// DelayFamily instantiates a registered delay model at its family
// parameter (jitter width, lognormal sigma, slow-band fraction — the
// knob each family exposes on a sweep axis; 0 means the family default).
// A family may return nil for "lockstep network".
type DelayFamily func(param float64) DelaySpec

type registry[T any] struct {
	mu   sync.RWMutex
	kind string
	m    map[string]T
}

func (r *registry[T]) register(name string, v T) error {
	if name == "" {
		return fmt.Errorf("mpic: empty %s name", r.kind)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.m == nil {
		r.m = make(map[string]T)
	}
	if _, dup := r.m[name]; dup {
		return fmt.Errorf("mpic: %s %q already registered", r.kind, name)
	}
	r.m[name] = v
	return nil
}

func (r *registry[T]) lookup(name string) (T, error) {
	r.mu.RLock()
	v, ok := r.m[name]
	r.mu.RUnlock()
	if !ok {
		var zero T
		return zero, fmt.Errorf("mpic: unknown %s %q (registered: %v)", r.kind, name, r.names())
	}
	return v, nil
}

func (r *registry[T]) names() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.m))
	for name := range r.m {
		out = append(out, name)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

var (
	topologies = &registry[TopologyBuilder]{kind: "topology"}
	workloads  = &registry[WorkloadDef]{kind: "workload"}
	noises     = &registry[NoiseFamily]{kind: "noise"}
	delays     = &registry[DelayFamily]{kind: "delay"}
)

// RegisterTopology adds a topology family under name. It fails on an
// empty or already-registered name.
func RegisterTopology(name string, build TopologyBuilder) error {
	if build == nil {
		return fmt.Errorf("mpic: topology %q has no builder", name)
	}
	return topologies.register(name, build)
}

// RegisterWorkload adds a workload family under name. It fails on an
// empty or already-registered name.
func RegisterWorkload(name string, def WorkloadDef) error {
	if def.Build == nil {
		return fmt.Errorf("mpic: workload %q has no builder", name)
	}
	return workloads.register(name, def)
}

// RegisterNoise adds a noise-model family under name. It fails on an
// empty or already-registered name.
func RegisterNoise(name string, family NoiseFamily) error {
	if family == nil {
		return fmt.Errorf("mpic: noise %q has no family", name)
	}
	return noises.register(name, family)
}

// RegisterDelay adds a delay-model family under name — the fourth open
// registry, next to topology/workload/noise. It fails on an empty or
// already-registered name.
func RegisterDelay(name string, family DelayFamily) error {
	if family == nil {
		return fmt.Errorf("mpic: delay %q has no family", name)
	}
	return delays.register(name, family)
}

// TopologyNames lists the registered topology families, sorted.
func TopologyNames() []string { return topologies.names() }

// WorkloadNames lists the registered workload families, sorted.
func WorkloadNames() []string { return workloads.names() }

// NoiseNames lists the registered noise models, sorted.
func NoiseNames() []string { return noises.names() }

// DelayNames lists the registered delay models, sorted.
func DelayNames() []string { return delays.names() }

// mustRegister panics on a seed-entry registration failure — a
// programming error in this package.
func mustRegister(err error) {
	if err != nil {
		panic(err)
	}
}

// The built-in topology families: thin registry entries over the graph
// generators that the old string switch dispatched to.
func init() {
	for _, name := range []string{"line", "ring", "star", "clique", "tree", "random"} {
		name := name
		mustRegister(RegisterTopology(name, func(n int) (*Graph, error) {
			return graph.ByName(name, n)
		}))
	}
}

// defaultInputs derives the standard per-party inputs the built-in
// workloads consume.
func defaultInputs(g *Graph, seed int64) [][]byte {
	return protocol.DefaultInputs(g.N(), 4, seed)
}

// The built-in workloads: the arms of the old NewWorkload switch, with
// the fixed-topology requirements of pipelined-line, token-ring, and
// phase-king made explicit.
func init() {
	mustRegister(RegisterWorkload("random", WorkloadDef{
		Build: func(g *Graph, rounds int, seed int64) (Protocol, error) {
			return protocol.NewRandom(g, rounds, 0.5, seed, defaultInputs(g, seed)), nil
		},
	}))
	mustRegister(RegisterWorkload("dense", WorkloadDef{
		Build: func(g *Graph, rounds int, seed int64) (Protocol, error) {
			return protocol.NewRandom(g, rounds, 1.0, seed, defaultInputs(g, seed)), nil
		},
	}))
	mustRegister(RegisterWorkload("phase-king", WorkloadDef{
		FixedTopology: "clique",
		Build: func(g *Graph, rounds int, seed int64) (Protocol, error) {
			phases := rounds / (2 * g.N())
			if phases < g.N() {
				phases = g.N()
			}
			return protocol.NewPhaseKing(g.N(), phases, defaultInputs(g, seed)), nil
		},
	}))
	mustRegister(RegisterWorkload("pipelined-line", WorkloadDef{
		FixedTopology: "line",
		Build: func(g *Graph, rounds int, seed int64) (Protocol, error) {
			blocks := rounds / (g.N() + 3)
			if blocks < 1 {
				blocks = 1
			}
			return protocol.NewPipelinedLine(g.N(), blocks, 4, defaultInputs(g, seed))
		},
	}))
	mustRegister(RegisterWorkload("tree-sum", WorkloadDef{
		Build: func(g *Graph, rounds int, seed int64) (Protocol, error) {
			epochs := rounds/(8*g.N()) + 1
			return protocol.NewTreeSum(g, epochs, 8, defaultInputs(g, seed)), nil
		},
	}))
	mustRegister(RegisterWorkload("token-ring", WorkloadDef{
		FixedTopology: "ring",
		Build: func(g *Graph, rounds int, seed int64) (Protocol, error) {
			laps := rounds / g.N()
			if laps < 1 {
				laps = 1
			}
			return protocol.NewTokenRing(g.N(), laps, defaultInputs(g, seed))
		},
	}))
}

// The built-in noise models: the arms of the old wireNoise switch.
func init() {
	mustRegister(RegisterNoise("none", func(rate float64) NoiseSpec { return nil }))
	mustRegister(RegisterNoise("random", func(rate float64) NoiseSpec { return RandomNoise(rate) }))
	mustRegister(RegisterNoise("burst", func(rate float64) NoiseSpec { return BurstNoise(rate) }))
	mustRegister(RegisterNoise("adaptive", func(rate float64) NoiseSpec { return Adaptive(rate) }))
}

// The built-in delay models. "unit" and "lockstep" are the same
// synchronous spec under both of its common names; the parameter is each
// family's single shape knob (0 = default).
func init() {
	lockstep := func(float64) DelaySpec { return LockstepDelay() }
	mustRegister(RegisterDelay("unit", lockstep))
	mustRegister(RegisterDelay("lockstep", lockstep))
	mustRegister(RegisterDelay("jitter", func(p float64) DelaySpec { return JitterDelay(p) }))
	mustRegister(RegisterDelay("lognormal", func(p float64) DelaySpec { return LognormalDelay(p) }))
	mustRegister(RegisterDelay("bands", func(p float64) DelaySpec { return BandedDelay(p) }))
}

// NewTopology builds one of the registered topology families — the
// string-keyed entry point the typed Topology spec supersedes.
func NewTopology(name string, n int) (*Graph, error) {
	build, err := topologies.lookup(name)
	if err != nil {
		return nil, err
	}
	return build(n)
}

// NewWorkload builds one of the registered workload protocols over g,
// defaulting rounds to 30·n — the string-keyed entry point the typed
// Workload spec supersedes.
func NewWorkload(name string, g *Graph, rounds int, seed int64) (Protocol, error) {
	if name == "" {
		name = "random"
	}
	def, err := workloads.lookup(name)
	if err != nil {
		return nil, err
	}
	if rounds <= 0 {
		rounds = 30 * g.N()
	}
	return def.Build(g, rounds, seed)
}
