package mpic

import (
	"strings"
	"testing"
	"time"

	"mpic/internal/core"
	"mpic/internal/trace"
)

// fakeClock is an injectable clock for the throttled sink: every read
// advances it by a fixed step, so ETA math is exact.
type fakeClock struct {
	t    time.Time
	step time.Duration
}

func (c *fakeClock) now() time.Time {
	c.t = c.t.Add(c.step)
	return c.t
}

// TestThrottledProgressLog pins the ETA sink's contract: iteration lines
// are subsampled at the configured stride (or ~5% of the budget when
// auto), annotated with percent-complete and an ETA projected from the
// trial's iteration budget, and every non-iteration event prints like
// NewProgressLog.
func TestThrottledProgressLog(t *testing.T) {
	var buf strings.Builder
	clock := &fakeClock{t: time.Unix(0, 0), step: time.Second}
	sink := newThrottledProgressLog(&buf, 10, clock.now)

	key := GridKey{N: 4, Scheme: core.AlgA, Rate: 0.002}
	base := GridProgress{Cell: 0, Cells: 1, Key: key, Trial: 0, Trials: 1}

	start := base
	start.Event = GridTrialStart
	start.Info = &RunInfo{Iterations: 40}
	sink(start)

	m := &trace.Metrics{}
	for i := 0; i < 40; i++ {
		p := base
		p.Event = GridIteration
		p.Iteration = i
		p.Stats = &IterationStats{Iteration: i, Metrics: m}
		sink(p)
	}
	done := base
	done.Event = GridTrialDone
	done.Result = &Result{
		Success: true, Blowup: 2.5, Iterations: 40,
		Metrics: &trace.Metrics{Net: &trace.NetStats{Makespan: 123.5, LateSymbols: 7}},
	}
	sink(done)

	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// 1 start + 4 sampled iterations (10, 20, 30, 40) + 1 done.
	if len(lines) != 6 {
		t.Fatalf("throttled sink wrote %d lines, want 6:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "started (budget 40 iterations), sampling every 10") {
		t.Errorf("start line = %q", lines[0])
	}
	// Iteration 9 is the 10th executed: 25% done. The clock ticks once at
	// trial start and once per sampled line, so elapsed at the first
	// sample is 1s for 10 iterations → ETA 3s for the remaining 30.
	if !strings.Contains(lines[1], "iter 9") || !strings.Contains(lines[1], "25%") || !strings.Contains(lines[1], "eta=3s") {
		t.Errorf("first sampled line = %q, want iter 9 at 25%% with eta=3s", lines[1])
	}
	if !strings.Contains(lines[4], "iter 39") || !strings.Contains(lines[4], "100%") || strings.Contains(lines[4], "eta=") {
		t.Errorf("final sampled line = %q, want iter 39 at 100%% with no ETA", lines[4])
	}
	// The trial-done line carries the virtual-time summary.
	if !strings.Contains(lines[5], "SUCCESS") || !strings.Contains(lines[5], "makespan=123.5 late=7") {
		t.Errorf("done line = %q, want makespan/late suffix", lines[5])
	}
}

// TestThrottledProgressLogAuto: with every ≤ 0 the stride is ~5% of the
// budget, and a tiny budget still prints at least every iteration.
func TestThrottledProgressLogAuto(t *testing.T) {
	var buf strings.Builder
	clock := &fakeClock{t: time.Unix(0, 0), step: time.Millisecond}
	sink := newThrottledProgressLog(&buf, 0, clock.now)

	base := GridProgress{Cells: 1, Trials: 1, Key: GridKey{N: 4, Scheme: core.AlgA}}
	start := base
	start.Event = GridTrialStart
	start.Info = &RunInfo{Iterations: 200}
	sink(start)
	m := &trace.Metrics{}
	for i := 0; i < 200; i++ {
		p := base
		p.Event = GridIteration
		p.Iteration = i
		p.Stats = &IterationStats{Metrics: m}
		sink(p)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// 1 start + 200/10 sampled.
	if len(lines) != 21 {
		t.Fatalf("auto stride wrote %d lines, want 21", len(lines))
	}

	// Budget below 20: stride clamps to 1, every iteration prints.
	buf.Reset()
	start.Info = &RunInfo{Iterations: 3}
	sink(start)
	for i := 0; i < 3; i++ {
		p := base
		p.Event = GridIteration
		p.Iteration = i
		p.Stats = &IterationStats{Metrics: m}
		sink(p)
	}
	lines = strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("tiny budget wrote %d lines, want 4", len(lines))
	}
}

// TestProgressLogNetSuffix: the plain sink's trial-done line gains the
// makespan/late suffix only when the result carries NetStats, and the
// cell prefix shows the delay axis when set.
func TestProgressLogNetSuffix(t *testing.T) {
	var buf strings.Builder
	sink := NewProgressLog(&buf)
	p := GridProgress{
		Event: GridTrialDone, Cells: 1, Trials: 1,
		Key:    GridKey{N: 4, Scheme: core.AlgA, Rate: 0.001, Delay: "lognormal"},
		Result: &Result{Success: true, Metrics: &trace.Metrics{}},
	}
	sink(p)
	if strings.Contains(buf.String(), "makespan=") {
		t.Errorf("lockstep done line grew a makespan: %q", buf.String())
	}
	if !strings.Contains(buf.String(), "delay=lognormal") {
		t.Errorf("cell prefix missing delay axis: %q", buf.String())
	}
	buf.Reset()
	p.Result.Metrics.Net = &trace.NetStats{Makespan: 9, LateSymbols: 1}
	sink(p)
	if !strings.Contains(buf.String(), "makespan=9.0 late=1") {
		t.Errorf("timed done line missing net suffix: %q", buf.String())
	}
}
