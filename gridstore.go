package mpic

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// StoredCell is one persisted cell of a durable grid session: the cell's
// identity and its completed aggregate. Per-trial Results are never
// persisted — a checkpoint stores what a resumed run needs to merge, not
// a run's full trajectory — so cells restored from a store carry a nil
// GridCellResult.Results even under Grid.KeepResults.
type StoredCell struct {
	// Index is the cell's position in Grid.Cells when it completed. On
	// resume it disambiguates duplicate keys: cells whose (n, scheme,
	// rate) key appears more than once in a grid reclaim their own entry
	// instead of the first key match.
	Index int
	// Key is the cell's (n, scheme, rate) identity — what resume matches
	// on, so a checkpoint merges correctly whatever order the engine
	// completed the cells in.
	Key GridKey
	// Cell is the completed aggregate.
	Cell SweepCell
}

// GridStore persists the completed cells of a grid session — the
// checkpoint interface behind Grid.Store. The engine calls Load once
// before anything runs and Save serially (never concurrently) after each
// completed cell, so implementations need no locking of their own.
//
// The spec string fingerprints the grid: a store must refuse to Load
// state written under a different spec (merging another grid's cells
// would silently mislabel results), and should persist the spec so that
// refusal is possible. Grid.Fingerprint is the engine's default spec;
// callers with richer identity (CLI flags, experiment names) set
// Grid.Spec instead.
type GridStore interface {
	// Load returns the cells previously persisted under spec, in the
	// order they were saved. An empty or absent store returns (nil, nil);
	// a store holding a different spec or an unreadable state returns an
	// error.
	Load(spec string) ([]StoredCell, error)
	// Save atomically replaces the persisted state with the given
	// completed cells. A failed Save aborts the grid — a durable session
	// that silently stops being durable is worse than a loud error.
	Save(spec string, cells []StoredCell) error
}

// fileGridStoreVersion is the on-disk checkpoint format version. It is
// bumped when the JSON shape changes incompatibly; FileGridStore rejects
// checkpoints from other versions instead of guessing at their layout
// (version 0 — the pre-session format once private to mpicbench — is
// rejected with the same message).
const fileGridStoreVersion = 1

// fileGridState is the on-disk JSON shape of FileGridStore.
type fileGridState struct {
	// Version is the checkpoint format version (fileGridStoreVersion).
	Version int
	// Spec fingerprints the grid the cells belong to.
	Spec string
	// Cells are the completed cells, in completion order.
	Cells []StoredCell
}

// FileGridStore is the GridStore used by both CLIs and the experiment
// harness: one JSON file per grid session, atomically rewritten (write
// to a temporary file, then rename) after every completed cell, so a
// crash mid-write never corrupts the resume state the file exists to
// provide. A missing file is an empty session; parent directories are
// created on first Save.
type FileGridStore struct {
	path string
}

// NewFileGridStore returns a store persisting to the given file path.
func NewFileGridStore(path string) *FileGridStore {
	return &FileGridStore{path: path}
}

// Path returns the file the store persists to.
func (s *FileGridStore) Path() string { return s.path }

// Load implements GridStore.
func (s *FileGridStore) Load(spec string) ([]StoredCell, error) {
	data, err := os.ReadFile(s.path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("mpic: reading checkpoint: %w", err)
	}
	var st fileGridState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("mpic: parsing checkpoint %s: %w", s.path, err)
	}
	if st.Version != fileGridStoreVersion {
		return nil, fmt.Errorf("mpic: checkpoint %s has format version %d; this build reads version %d — delete the file to restart the grid",
			s.path, st.Version, fileGridStoreVersion)
	}
	if st.Spec != spec {
		return nil, fmt.Errorf("mpic: checkpoint %s was written by a different grid (%q); delete it or match the grid (%q)",
			s.path, st.Spec, spec)
	}
	return st.Cells, nil
}

// Save implements GridStore.
func (s *FileGridStore) Save(spec string, cells []StoredCell) error {
	data, err := json.MarshalIndent(fileGridState{
		Version: fileGridStoreVersion,
		Spec:    spec,
		Cells:   cells,
	}, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(s.path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	tmp := s.path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, s.path)
}

// gridFingerprintVersion versions the Fingerprint preimage, separately
// from the on-disk checkpoint format: bumping it invalidates every
// default-spec session (restart, not rejection), so it changes only when
// the fingerprinted grid identity itself changes — never for a store's
// serialization tweak.
const gridFingerprintVersion = 1

// Fingerprint returns a stable identity string for the grid's resumable
// content — the default Grid.Spec of a durable session. It covers, per
// cell, the (n, scheme, rate) key, the trial layout (Trials, SeedStep),
// and the nameable parts of the scenario: topology family and size (or
// an explicit graph's hashed edge list), workload family and rounds, noise model
// and — for the built-in specs — its rate and window, plus the seed and
// execution flags. The string is filesystem-safe, so stores that keep
// one file per grid can use it as the file name.
//
// Two grids that differ only in ways a fingerprint cannot see — a Tune
// closure, a custom NoiseFunc's captured parameters, a custom workload
// builder's behavior — share a fingerprint; callers mixing such grids in
// one store must set Grid.Spec to something that tells them apart.
// (Within one grid this does not matter: resume matches cells by key and
// index, and the spec only guards against resuming a different grid.)
func (g Grid) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "mpic-grid-v%d cells=%d\n", gridFingerprintVersion, len(g.Cells))
	for _, c := range g.Cells {
		k := c.key()
		fmt.Fprintf(h, "key=%d/%d/%g trials=%d step=%d %s\n",
			k.N, k.Scheme, k.Rate, c.Trials, c.SeedStep, c.Scenario.fingerprint())
	}
	return fmt.Sprintf("g%d-%x", len(g.Cells), h.Sum(nil)[:8])
}

// fingerprint renders the scenario's stable, nameable identity for
// Grid.Fingerprint. Closures (Tune, custom builders) are outside its
// reach by design — see the Fingerprint doc.
func (sc Scenario) fingerprint() string {
	topo := "none"
	switch {
	case sc.Topology.Graph != nil:
		// An explicit graph is concrete data: hash its (deterministically
		// sorted) edge list, so two different graphs on the same node and
		// edge counts never share a fingerprint and a stale session is
		// rejected instead of silently restored.
		g := sc.Topology.Graph
		eh := sha256.New()
		for _, e := range g.Edges() {
			fmt.Fprintf(eh, "%d-%d;", e.U, e.V)
		}
		topo = fmt.Sprintf("graph(n=%d,m=%d,%x)", g.N(), g.M(), eh.Sum(nil)[:8])
	case sc.Topology.Build != nil:
		topo = fmt.Sprintf("custom(n=%d)", sc.Topology.N)
	case sc.Topology.Name != "":
		topo = fmt.Sprintf("%s(n=%d)", sc.Topology.Name, sc.Topology.N)
	}
	wl := sc.Workload.Name
	switch {
	case sc.Workload.Protocol != nil:
		wl = "custom-protocol"
	case sc.Workload.Build != nil:
		wl = "custom-build"
	case wl == "":
		wl = "random"
	}
	return fmt.Sprintf("topo=%s wl=%s/%d scheme=%d noise=%s seed=%d iters=%d faithful=%t inc=%t wb=%g",
		topo, wl, sc.Workload.Rounds, sc.Scheme, describeNoise(sc.Noise),
		sc.Seed, sc.IterFactor, sc.Faithful, sc.IncrementalHash, sc.WhiteBoxRate)
}

// describeNoise renders a noise spec for fingerprinting: the built-in
// specs expose their full parameterization, anything else its name.
func describeNoise(n NoiseSpec) string {
	switch s := n.(type) {
	case nil:
		return "none"
	case RandomNoiseSpec:
		return fmt.Sprintf("random(%g)", s.Rate)
	case BurstSpec:
		link := "rand"
		if s.Link != nil {
			link = fmt.Sprintf("%d>%d", s.Link.From, s.Link.To)
		}
		return fmt.Sprintf("burst(%g,link=%s,start=%d,len=%d)", s.Rate, link, s.Start, s.Length)
	case AdaptiveSpec:
		return fmt.Sprintf("adaptive(%g,per=%d)", s.Rate, s.PerChunk)
	default:
		return n.NoiseName()
	}
}
