package mpic

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"mpic/internal/trace"
)

// StoredCell is one persisted cell of a durable grid session: the cell's
// identity, its completed aggregate, and — for Grid.KeepResults sessions
// — the serializable core of every trial's Result, so trajectory
// consumers (rewind-wave, potential, rounds tables) resume through the
// store instead of re-running.
type StoredCell struct {
	// Index is the cell's position in Grid.Cells when it completed. On
	// resume it disambiguates duplicate keys: cells whose (n, scheme,
	// rate, delay) key appears more than once in a grid reclaim their own
	// entry instead of the first key match.
	Index int
	// Key is the cell's (n, scheme, rate, delay) identity — what resume
	// matches on, so a checkpoint merges correctly whatever order the
	// engine completed the cells in.
	Key GridKey
	// Cell is the completed aggregate.
	Cell SweepCell
	// Results holds the per-trial results of a KeepResults session, in
	// trial order; nil for plain (aggregate-only) sessions.
	Results []*StoredResult `json:",omitempty"`
}

// StoredResult is the serializable core of one trial's Result — every
// field a resumed trajectory consumer reads (metrics with the full
// virtual-time accounting, potential snapshots, white-box stats), minus
// the two a checkpoint cannot reasonably carry: Outputs (the parties'
// raw output bytes, redundant with Success/WrongParties) and Arena (a
// live pool's counters, meaningless across processes). Restored Results
// leave those two nil.
type StoredResult struct {
	Success         bool
	CCProtocol      int
	Blowup          float64
	NumChunks       int
	Iterations      int
	GStar           int
	BrokenSeedLinks int
	WrongParties    int
	Metrics         trace.Metrics
	Potential       []Snapshot     `json:",omitempty"`
	WhiteBox        *WhiteBoxStats `json:",omitempty"`
}

// storeResult converts a trial Result into its persisted form.
func storeResult(r *Result) *StoredResult {
	if r == nil {
		return nil
	}
	s := &StoredResult{
		Success:         r.Success,
		CCProtocol:      r.CCProtocol,
		Blowup:          r.Blowup,
		NumChunks:       r.NumChunks,
		Iterations:      r.Iterations,
		GStar:           r.GStar,
		BrokenSeedLinks: r.BrokenSeedLinks,
		WrongParties:    r.WrongParties,
		Potential:       r.Potential,
		WhiteBox:        r.WhiteBox,
	}
	if r.Metrics != nil {
		s.Metrics = *r.Metrics
	}
	return s
}

// result converts the persisted form back into a Result (Outputs and
// Arena stay nil; see StoredResult).
func (s *StoredResult) result() *Result {
	if s == nil {
		return nil
	}
	m := s.Metrics
	return &Result{
		Success:         s.Success,
		Metrics:         &m,
		CCProtocol:      s.CCProtocol,
		Blowup:          s.Blowup,
		NumChunks:       s.NumChunks,
		Iterations:      s.Iterations,
		GStar:           s.GStar,
		BrokenSeedLinks: s.BrokenSeedLinks,
		WrongParties:    s.WrongParties,
		Potential:       s.Potential,
		WhiteBox:        s.WhiteBox,
	}
}

// storeResults and restoreResults lift the conversions over a cell's
// trial slice.
func storeResults(rs []*Result) []*StoredResult {
	if len(rs) == 0 {
		return nil
	}
	out := make([]*StoredResult, len(rs))
	for i, r := range rs {
		out[i] = storeResult(r)
	}
	return out
}

func restoreResults(ss []*StoredResult) []*Result {
	if len(ss) == 0 {
		return nil
	}
	out := make([]*Result, len(ss))
	for i, s := range ss {
		out[i] = s.result()
	}
	return out
}

// GridStore persists the completed cells of a grid session — the
// checkpoint interface behind Grid.Store. The engine calls Load once
// before anything runs and Save serially (never concurrently) after each
// completed cell, so implementations need no locking of their own.
//
// The spec string fingerprints the grid: a store must refuse to Load
// state written under a different spec (merging another grid's cells
// would silently mislabel results), and should persist the spec so that
// refusal is possible. Grid.Fingerprint is the engine's default spec;
// callers with richer identity (CLI flags, experiment names) set
// Grid.Spec instead.
type GridStore interface {
	// Load returns the cells previously persisted under spec, in the
	// order they were saved. An empty or absent store returns (nil, nil);
	// a store holding a different spec or an unreadable state returns an
	// error.
	Load(spec string) ([]StoredCell, error)
	// Save atomically replaces the persisted state with the given
	// completed cells. A failed Save aborts the grid — a durable session
	// that silently stops being durable is worse than a loud error.
	Save(spec string, cells []StoredCell) error
}

// fileGridStoreVersion is the on-disk checkpoint format version. It is
// bumped when the JSON shape changes incompatibly; FileGridStore rejects
// checkpoints from other versions instead of guessing at their layout
// (version 0 — the pre-session format once private to mpicbench — is
// rejected with the same message; version 1 predates the payload
// checksum; version 2 predates the delay key field and per-trial
// Results, whose checksums this build could no longer reproduce).
const fileGridStoreVersion = 3

// fileGridState is the on-disk JSON shape of FileGridStore.
type fileGridState struct {
	// Version is the checkpoint format version (fileGridStoreVersion).
	Version int
	// Spec fingerprints the grid the cells belong to.
	Spec string
	// Checksum authenticates the payload: hex SHA-256 over the version,
	// the spec, and the compact JSON of Cells (see checkpointChecksum).
	// A file whose recomputed checksum disagrees — a torn write, a
	// bit-flip, a hand edit — is treated as corrupt, not as a different
	// grid.
	Checksum string
	// Cells are the completed cells, in completion order.
	Cells []StoredCell
}

// checkpointChecksum computes the integrity checksum of a checkpoint
// payload. It covers the version and spec too, so corruption anywhere in
// the file surfaces as a checksum mismatch (the corrupt-and-recover
// path) rather than being misread as a semantic rejection.
func checkpointChecksum(version int, spec string, cellsJSON []byte) string {
	h := sha256.New()
	fmt.Fprintf(h, "mpic-checkpoint-v%d %s\n", version, spec)
	h.Write(cellsJSON)
	return fmt.Sprintf("%x", h.Sum(nil))
}

// CorruptCheckpointError reports a checkpoint file that could not be
// read back: unreadable bytes, invalid JSON (e.g. a write torn mid-
// array), or a payload whose checksum does not match. FileGridStore
// recovers from its .bak backup when one is good; this error surfaces
// only when no good state is left, and Reason carries the underlying
// cause.
type CorruptCheckpointError struct {
	// Path is the corrupt file.
	Path string
	// Reason is the underlying parse/checksum/read failure.
	Reason error
}

// Error implements error.
func (e *CorruptCheckpointError) Error() string {
	return fmt.Sprintf("mpic: checkpoint %s is corrupt (%v); no usable backup — delete the file to restart the grid", e.Path, e.Reason)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *CorruptCheckpointError) Unwrap() error { return e.Reason }

// FileGridStore is the GridStore used by both CLIs and the experiment
// harness: one JSON file per grid session, atomically rewritten after
// every completed cell. Save is crash-proof: the temporary file is
// fsynced before the rename, the parent directory is fsynced after it
// (so neither the data nor the rename can be lost to a power cut behind
// a "successful" Save), the payload carries a SHA-256 checksum, and the
// previous state is kept as a verified-good .bak — Load falls back to it
// when the primary file is torn, corrupt, or missing mid-rotation, so a
// damaged session resumes from its last good state instead of aborting
// or silently restarting. A missing file (with no backup) is an empty
// session; parent directories are created on first Save.
//
// Concurrent access is coordinated, not assumed away: every Load and
// Save holds an exclusive advisory lock on a <path>.lock sidecar (so two
// processes sharing a session file serialize instead of interleaving
// renames), and Save detects a session rewritten behind this store's
// back — valid state on disk whose checksum is not the one this store
// last read or wrote — and fails loudly with *SessionConflictError
// instead of silently clobbering the other writer's cells. Multi-writer
// sharding goes through a LeaseStore (NewDirLeaseStore), which
// serializes whole read-modify-write merges; the conflict error is the
// backstop for uncoordinated writers.
type FileGridStore struct {
	path string
	// OnRecovery, when non-nil, is called when Load falls back to the
	// .bak backup, with the corruption that made the primary unusable —
	// the hook CLIs use to tell the user a damaged session was recovered
	// rather than resumed verbatim.
	OnRecovery func(reason error)

	// mu serializes Load/Save within the process; the .lock sidecar
	// serializes them across processes.
	mu sync.Mutex
	// lastChecksum is the checksum of the state this store last read or
	// wrote ("" before the first Load, or after loading an empty
	// session) — the optimistic-concurrency token Save compares against
	// the file on disk.
	lastChecksum string
}

// SessionConflictError reports a checkpoint rewritten behind a store's
// back: between this store's last read (or write) and this Save, another
// writer — a second process sharing the session file, or a second store
// in this one — replaced the state with valid state of its own.
// Proceeding would silently discard that writer's cells, so the Save
// fails loudly instead. Writers that mean to share a session must
// coordinate through a LeaseStore (NewDirLeaseStore), which serializes
// read-modify-write merges under a directory lock.
type SessionConflictError struct {
	// Path is the contested checkpoint file.
	Path string
	// StoredSpec is the spec of the state found on disk.
	StoredSpec string
}

// Error implements error.
func (e *SessionConflictError) Error() string {
	return fmt.Sprintf("mpic: checkpoint %s was rewritten by another writer (spec %q); concurrent sessions must share a lease store, not a bare file", e.Path, e.StoredSpec)
}

// NewFileGridStore returns a store persisting to the given file path.
func NewFileGridStore(path string) *FileGridStore {
	return &FileGridStore{path: path}
}

// Path returns the file the store persists to.
func (s *FileGridStore) Path() string { return s.path }

// BackupPath returns the last-good-state backup file Load recovers from.
func (s *FileGridStore) BackupPath() string { return s.path + ".bak" }

// readRaw reads and structurally validates one checkpoint file — JSON
// shape, format version, payload checksum — without judging its spec.
// Corruption (unreadable, unparsable, checksum mismatch) comes back as
// *CorruptCheckpointError; a version rejection is a semantic error that
// no backup can fix.
func readRaw(path string) (*fileGridState, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, err // sentinel for the caller's fallback logic
		}
		return nil, &CorruptCheckpointError{Path: path, Reason: err}
	}
	var st fileGridState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, &CorruptCheckpointError{Path: path, Reason: err}
	}
	if st.Version != fileGridStoreVersion {
		return nil, fmt.Errorf("mpic: checkpoint %s has format version %d; this build reads version %d — delete the file to restart the grid",
			path, st.Version, fileGridStoreVersion)
	}
	cellsJSON, err := json.Marshal(st.Cells)
	if err != nil {
		return nil, &CorruptCheckpointError{Path: path, Reason: err}
	}
	if sum := checkpointChecksum(st.Version, st.Spec, cellsJSON); sum != st.Checksum {
		return nil, &CorruptCheckpointError{Path: path,
			Reason: fmt.Errorf("payload checksum mismatch (stored %.12s…, computed %.12s…)", st.Checksum, sum)}
	}
	return &st, nil
}

// readState reads and fully validates one checkpoint file: everything
// readRaw checks, then the spec.
func readState(path, spec string) (*fileGridState, error) {
	st, err := readRaw(path)
	if err != nil {
		return nil, err
	}
	if st.Spec != spec {
		return nil, fmt.Errorf("mpic: checkpoint %s was written by a different grid (%q); delete it or match the grid (%q)",
			path, st.Spec, spec)
	}
	return st, nil
}

// Load implements GridStore, with last-good-state recovery: when the
// primary file is corrupt — or missing while a backup exists, the window
// a crash between Save's two renames leaves behind — the verified .bak
// is loaded instead and OnRecovery (if set) is told why. Semantic
// rejections (wrong format version, wrong spec) are returned as-is: a
// backup of the same session could not answer differently.
func (s *FileGridStore) Load(spec string) ([]StoredCell, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	unlock, err := lockSidecar(s.path)
	if err != nil {
		return nil, err
	}
	defer unlock()
	st, err := readState(s.path, spec)
	if err == nil {
		s.lastChecksum = st.Checksum
		return st.Cells, nil
	}
	var corrupt *CorruptCheckpointError
	missing := os.IsNotExist(err)
	if !missing && !errors.As(err, &corrupt) {
		return nil, err // version/spec rejection: loud, unrecoverable
	}
	bst, berr := readState(s.BackupPath(), spec)
	if berr == nil {
		if missing {
			err = fmt.Errorf("mpic: checkpoint %s missing (crash between Save renames?)", s.path)
		}
		if s.OnRecovery != nil {
			s.OnRecovery(err)
		}
		s.lastChecksum = bst.Checksum
		return bst.Cells, nil
	}
	if missing {
		// Neither file exists (or the backup is itself unusable for a
		// session that never had a primary): an empty session.
		if os.IsNotExist(berr) {
			s.lastChecksum = ""
			return nil, nil
		}
		return nil, berr
	}
	return nil, corrupt
}

// Save implements GridStore. The write path is ordered for crash
// durability: marshal with checksum, write and fsync a temporary file,
// rotate the current file — only after verifying it still parses, so the
// backup always holds the last GOOD state — to .bak, rename the
// temporary into place, and fsync the parent directory so both renames
// survive power loss. A crash at any point leaves either the old state,
// the new state, or a missing primary with a good backup — never a
// half-written file presented as truth.
//
// Before writing, Save re-reads the file under the lock: valid state
// whose checksum differs from what this store last read or wrote means
// another writer got there first, and the Save fails with
// *SessionConflictError rather than clobbering it. (Unreadable or torn
// state is NOT a conflict — overwriting corruption with good state is
// exactly the recovery path.)
func (s *FileGridStore) Save(spec string, cells []StoredCell) error {
	cellsJSON, err := json.Marshal(cells)
	if err != nil {
		return err
	}
	checksum := checkpointChecksum(fileGridStoreVersion, spec, cellsJSON)
	data, err := json.MarshalIndent(fileGridState{
		Version:  fileGridStoreVersion,
		Spec:     spec,
		Checksum: checksum,
		Cells:    cells,
	}, "", "  ")
	if err != nil {
		return err
	}
	dir := filepath.Dir(s.path)
	if dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	unlock, err := lockSidecar(s.path)
	if err != nil {
		return err
	}
	defer unlock()
	cur, curErr := readRaw(s.path)
	if curErr == nil && cur.Checksum != s.lastChecksum {
		return &SessionConflictError{Path: s.path, StoredSpec: cur.Spec}
	}
	tmp := s.path + ".tmp"
	if err := writeFileSync(tmp, append(data, '\n')); err != nil {
		return err
	}
	// Rotate the previous state to .bak only when it verifies: a torn
	// primary must not evict the good backup that is the recovery path.
	// (After the conflict check, valid current state is necessarily this
	// store's own last state.)
	if curErr == nil && cur.Spec == spec {
		if err := os.Rename(s.path, s.BackupPath()); err != nil {
			return err
		}
	}
	if err := os.Rename(tmp, s.path); err != nil {
		return err
	}
	if err := syncDir(dir); err != nil {
		return err
	}
	s.lastChecksum = checksum
	return nil
}

// lockSidecar locks the <path>.lock sidecar guarding a session file. A
// missing parent directory (a session that has never been saved) yields
// a no-op unlock: there is nothing on disk to contend for, and Save
// creates the directory before locking.
func lockSidecar(path string) (func() error, error) {
	unlock, err := flockPath(path + ".lock")
	if err != nil {
		if os.IsNotExist(err) {
			return func() error { return nil }, nil
		}
		return nil, err
	}
	return unlock, nil
}

// writeFileSync writes data to path and fsyncs it before closing — the
// half of crash durability that guarantees the bytes, not just the name,
// are on disk.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory, making renames inside it durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// RetryingGridStore decorates any GridStore with bounded retries under
// capped exponential backoff — the wrapper that keeps a transient I/O
// error (NFS hiccup, antivirus lock, overloaded disk) from aborting a
// durable session whose whole point is surviving interruptions.
//
// Corruption errors (*CorruptCheckpointError), session conflicts
// (*SessionConflictError), and semantic rejections are NOT retried-
// around by re-reading: a deterministic failure answers the same every
// time, so only the first error class — everything else — consumes
// attempts. The zero value of every knob picks a sane default.
type RetryingGridStore struct {
	// Inner is the decorated store.
	Inner GridStore
	// MaxAttempts is the total tries per operation (0 means 3).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt, doubling per
	// attempt (0 means 5ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (0 means 250ms).
	MaxDelay time.Duration
	// Sleep replaces the backoff sleep (tests use a recording stub); nil
	// means time.Sleep.
	Sleep func(time.Duration)
}

// NewRetryingGridStore wraps inner with the default retry budget.
func NewRetryingGridStore(inner GridStore) *RetryingGridStore {
	return &RetryingGridStore{Inner: inner}
}

// retry runs op up to MaxAttempts times with capped doubling backoff.
func (r *RetryingGridStore) retry(op func() error) error {
	attempts := r.MaxAttempts
	if attempts <= 0 {
		attempts = 3
	}
	delay := r.BaseDelay
	if delay <= 0 {
		delay = 5 * time.Millisecond
	}
	maxDelay := r.MaxDelay
	if maxDelay <= 0 {
		maxDelay = 250 * time.Millisecond
	}
	var err error
	for a := 1; ; a++ {
		err = op()
		var corrupt *CorruptCheckpointError
		var conflict *SessionConflictError
		if err == nil || a >= attempts || errors.As(err, &corrupt) || errors.As(err, &conflict) {
			return err
		}
		d := delay
		if d > maxDelay {
			d = maxDelay
		}
		if r.Sleep != nil {
			r.Sleep(d)
		} else {
			time.Sleep(d)
		}
		delay *= 2
	}
}

// Load implements GridStore with retries.
func (r *RetryingGridStore) Load(spec string) ([]StoredCell, error) {
	var cells []StoredCell
	err := r.retry(func() error {
		var e error
		cells, e = r.Inner.Load(spec)
		return e
	})
	if err != nil {
		return nil, err
	}
	return cells, nil
}

// Save implements GridStore with retries.
func (r *RetryingGridStore) Save(spec string, cells []StoredCell) error {
	return r.retry(func() error { return r.Inner.Save(spec, cells) })
}

// gridFingerprintVersion versions the Fingerprint preimage, separately
// from the on-disk checkpoint format: bumping it invalidates every
// default-spec session (restart, not rejection), so it changes only when
// the fingerprinted grid identity itself changes — never for a store's
// serialization tweak.
const gridFingerprintVersion = 1

// Fingerprint returns a stable identity string for the grid's resumable
// content — the default Grid.Spec of a durable session. It covers, per
// cell, the (n, scheme, rate) key, the trial layout (Trials, SeedStep),
// and the nameable parts of the scenario: topology family and size (or
// an explicit graph's hashed edge list), workload family and rounds, noise model
// and — for the built-in specs — its rate and window, plus the seed and
// execution flags. The string is filesystem-safe, so stores that keep
// one file per grid can use it as the file name.
//
// Two grids that differ only in ways a fingerprint cannot see — a Tune
// closure, a custom NoiseFunc's captured parameters, a custom workload
// builder's behavior — share a fingerprint; callers mixing such grids in
// one store must set Grid.Spec to something that tells them apart.
// (Within one grid this does not matter: resume matches cells by key and
// index, and the spec only guards against resuming a different grid.)
func (g Grid) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "mpic-grid-v%d cells=%d\n", gridFingerprintVersion, len(g.Cells))
	for _, c := range g.Cells {
		k := c.key()
		fmt.Fprintf(h, "key=%d/%d/%g trials=%d step=%d %s\n",
			k.N, k.Scheme, k.Rate, c.Trials, c.SeedStep, c.Scenario.fingerprint())
	}
	return fmt.Sprintf("g%d-%x", len(g.Cells), h.Sum(nil)[:8])
}

// fingerprint renders the scenario's stable, nameable identity for
// Grid.Fingerprint. Closures (Tune, custom builders) are outside its
// reach by design — see the Fingerprint doc.
func (sc Scenario) fingerprint() string {
	topo := "none"
	switch {
	case sc.Topology.Graph != nil:
		// An explicit graph is concrete data: hash its (deterministically
		// sorted) edge list, so two different graphs on the same node and
		// edge counts never share a fingerprint and a stale session is
		// rejected instead of silently restored.
		g := sc.Topology.Graph
		eh := sha256.New()
		for _, e := range g.Edges() {
			fmt.Fprintf(eh, "%d-%d;", e.U, e.V)
		}
		topo = fmt.Sprintf("graph(n=%d,m=%d,%x)", g.N(), g.M(), eh.Sum(nil)[:8])
	case sc.Topology.Build != nil:
		topo = fmt.Sprintf("custom(n=%d)", sc.Topology.N)
	case sc.Topology.Name != "":
		topo = fmt.Sprintf("%s(n=%d)", sc.Topology.Name, sc.Topology.N)
	}
	wl := sc.Workload.Name
	switch {
	case sc.Workload.Protocol != nil:
		wl = "custom-protocol"
	case sc.Workload.Build != nil:
		wl = "custom-build"
	case wl == "":
		wl = "random"
	}
	// Resolve the deprecated bool the way Params.Validate does, so the
	// two spellings of "incremental" share a fingerprint.
	mode := sc.HashMode
	if mode == HashEpoch && sc.IncrementalHash {
		mode = HashIncremental
	}
	fp := fmt.Sprintf("topo=%s wl=%s/%d scheme=%d noise=%s seed=%d iters=%d faithful=%t inc=%t wb=%g",
		topo, wl, sc.Workload.Rounds, sc.Scheme, describeNoise(sc.Noise),
		sc.Seed, sc.IterFactor, sc.Faithful, mode == HashIncremental, sc.WhiteBoxRate)
	// The network-model suffix appears only when a scenario actually sets
	// a delay or fault schedule, so every pre-virtual-time session keeps
	// its exact fingerprint and resumes unchanged.
	if sc.Delay != nil || sc.Faults != nil {
		fp += fmt.Sprintf(" delay=%s netfaults=%s", describeDelay(sc.Delay), describeFaults(sc.Faults))
	}
	// Epoch mode — the post-PR-9 default — gets its own suffix keyed on
	// the effective refresh interval. Explicit-legacy scenarios keep the
	// bare fingerprint (bit-identical results to the old default), and
	// sessions recorded under the old default resume only against
	// HashLegacy, never silently against the new seed discipline.
	if mode == HashEpoch {
		r := sc.EpochRefresh
		if r <= 0 {
			r = DefaultEpochRefresh
		}
		fp += fmt.Sprintf(" hashmode=epoch/%d", r)
	}
	return fp
}

// describeNoise renders a noise spec for fingerprinting: the built-in
// specs expose their full parameterization, anything else its name.
func describeNoise(n NoiseSpec) string {
	switch s := n.(type) {
	case nil:
		return "none"
	case RandomNoiseSpec:
		return fmt.Sprintf("random(%g)", s.Rate)
	case BurstSpec:
		link := "rand"
		if s.Link != nil {
			link = fmt.Sprintf("%d>%d", s.Link.From, s.Link.To)
		}
		return fmt.Sprintf("burst(%g,link=%s,start=%d,len=%d)", s.Rate, link, s.Start, s.Length)
	case AdaptiveSpec:
		return fmt.Sprintf("adaptive(%g,per=%d)", s.Rate, s.PerChunk)
	default:
		return n.NoiseName()
	}
}

// describeDelay renders a delay spec for fingerprinting: the built-in
// specs expose their full parameterization, anything else its name.
func describeDelay(d DelaySpec) string {
	switch s := d.(type) {
	case nil:
		return "none"
	case LockstepDelaySpec:
		return "unit"
	case JitterDelaySpec:
		return fmt.Sprintf("jitter(%g,%g)", s.Base, s.Jitter)
	case LognormalDelaySpec:
		return fmt.Sprintf("lognormal(%g,%g)", s.Median, s.Sigma)
	case BandedDelaySpec:
		return fmt.Sprintf("bands(%g)", s.SlowFraction)
	default:
		return d.DelayName()
	}
}

// describeFaults renders a fault schedule for fingerprinting.
func describeFaults(f *NetFaults) string {
	if f == nil {
		return "none"
	}
	return fmt.Sprintf("sched(seed=%d,outage=%g/%d,spike=%g/%g,strag=%d/%g,crash=%d/%d)",
		f.Seed, f.OutageRate, f.OutageLen, f.SpikeRate, f.SpikeDelay,
		f.Stragglers, f.StragglerDelay, f.Crashes, f.CrashLen)
}
