package mpic_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"mpic"
)

// sameResult asserts two runs produced identical observable outcomes.
func sameResult(t *testing.T, a, b *mpic.Result) {
	t.Helper()
	if a.Success != b.Success || a.Iterations != b.Iterations || a.GStar != b.GStar ||
		a.Metrics.CC != b.Metrics.CC || a.WrongParties != b.WrongParties ||
		a.Metrics.TotalCorruptions() != b.Metrics.TotalCorruptions() {
		t.Fatalf("results differ:\n a={succ:%v it:%d g*:%d cc:%d wrong:%d corr:%d}\n b={succ:%v it:%d g*:%d cc:%d wrong:%d corr:%d}",
			a.Success, a.Iterations, a.GStar, a.Metrics.CC, a.WrongParties, a.Metrics.TotalCorruptions(),
			b.Success, b.Iterations, b.GStar, b.Metrics.CC, b.WrongParties, b.Metrics.TotalCorruptions())
	}
	if len(a.Outputs) != len(b.Outputs) {
		t.Fatalf("output count differs: %d vs %d", len(a.Outputs), len(b.Outputs))
	}
	for i := range a.Outputs {
		if !bytes.Equal(a.Outputs[i], b.Outputs[i]) {
			t.Fatalf("party %d output differs", i)
		}
	}
}

// checkShim runs a legacy Config both through the shim (Run) and through
// Config.Scenario → Runner and asserts bit-identical results.
func checkShim(t *testing.T, runner *mpic.Runner, cfg mpic.Config) {
	t.Helper()
	legacy, err := mpic.Run(cfg)
	if err != nil {
		t.Fatalf("legacy run: %v", err)
	}
	sc, err := cfg.Scenario()
	if err != nil {
		t.Fatalf("Scenario(): %v", err)
	}
	typed, err := runner.Run(context.Background(), sc)
	if err != nil {
		t.Fatalf("typed run: %v", err)
	}
	sameResult(t, legacy, typed)
}

// TestShimEquivalenceTopologies routes every registered built-in topology
// name through both surfaces.
func TestShimEquivalenceTopologies(t *testing.T) {
	runner := mpic.NewRunner()
	defer runner.Close()
	for _, topo := range []string{"line", "ring", "star", "clique", "tree", "random"} {
		t.Run(topo, func(t *testing.T) {
			checkShim(t, runner, mpic.Config{
				Topology: topo, N: 4, Workload: "random",
				Noise: "random", NoiseRate: 0.001,
				Seed: 5, IterFactor: 15,
			})
		})
	}
}

// TestShimEquivalenceWorkloads routes every registered built-in workload
// name through both surfaces (topology left empty: the fixed-topology
// workloads must pick their own default either way).
func TestShimEquivalenceWorkloads(t *testing.T) {
	runner := mpic.NewRunner()
	defer runner.Close()
	for _, wl := range []string{"random", "dense", "phase-king", "pipelined-line", "tree-sum", "token-ring"} {
		t.Run(wl, func(t *testing.T) {
			checkShim(t, runner, mpic.Config{
				Workload: wl, N: 4, WorkloadRounds: 40,
				Seed: 7, IterFactor: 15,
			})
		})
	}
}

// TestShimEquivalenceNoises routes every registered built-in noise name
// through both surfaces, across the scheme whose randomness mode the
// noise stresses.
func TestShimEquivalenceNoises(t *testing.T) {
	runner := mpic.NewRunner()
	defer runner.Close()
	for _, tc := range []struct {
		noise  string
		scheme mpic.Scheme
		rate   float64
	}{
		{"none", mpic.Algorithm1, 0},
		{"random", mpic.AlgorithmA, 0.002},
		{"burst", mpic.AlgorithmA, 0.002},
		{"adaptive", mpic.AlgorithmB, 0.0005},
	} {
		t.Run(tc.noise, func(t *testing.T) {
			checkShim(t, runner, mpic.Config{
				Topology: "ring", N: 4, Scheme: tc.scheme,
				Noise: tc.noise, NoiseRate: tc.rate,
				Seed: 11, IterFactor: 20,
			})
		})
	}
}

// TestConfigFixedTopologyConflict pins the satellite fix: a fixed-
// topology workload rejects a conflicting explicit topology instead of
// silently overriding it, and accepts both the empty default and the
// matching explicit name.
func TestConfigFixedTopologyConflict(t *testing.T) {
	for _, tc := range []struct{ workload, fixed string }{
		{"pipelined-line", "line"},
		{"token-ring", "ring"},
		{"phase-king", "clique"},
	} {
		if _, err := mpic.Run(mpic.Config{Workload: tc.workload, Topology: "star", N: 4, IterFactor: 5}); err == nil {
			t.Errorf("%s: conflicting explicit topology accepted", tc.workload)
		} else if !strings.Contains(err.Error(), tc.fixed) {
			t.Errorf("%s: conflict error does not name the fixed topology %q: %v", tc.workload, tc.fixed, err)
		}
		matching, err := mpic.Run(mpic.Config{Workload: tc.workload, Topology: tc.fixed, N: 4, WorkloadRounds: 40, Seed: 3, IterFactor: 15})
		if err != nil {
			t.Fatalf("%s: matching explicit topology rejected: %v", tc.workload, err)
		}
		dflt, err := mpic.Run(mpic.Config{Workload: tc.workload, N: 4, WorkloadRounds: 40, Seed: 3, IterFactor: 15})
		if err != nil {
			t.Fatalf("%s: empty topology rejected: %v", tc.workload, err)
		}
		sameResult(t, matching, dflt)
	}
}

// TestBurstSpecDefaultsMatchLegacy pins the satellite fix: BurstNoise
// with no Link/Start/Length reproduces the legacy hard-coded behavior
// (random edge, window [0, 1<<30)), while the new fields take effect when
// set.
func TestBurstSpecDefaultsMatchLegacy(t *testing.T) {
	cfg := mpic.Config{Topology: "line", N: 5, Noise: "burst", NoiseRate: 0.003, Seed: 9, IterFactor: 20}
	legacy, err := mpic.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := cfg.Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sc.Noise.(mpic.BurstSpec); !ok {
		t.Fatalf("legacy burst parsed to %T, want mpic.BurstSpec", sc.Noise)
	}
	typed, err := mpic.RunScenario(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, legacy, typed)

	// Explicit window fields: a window starting after the run ends must
	// land no corruptions — proving Start/Length actually confine the
	// attack (the legacy spec always covered the whole run).
	sc.Noise = mpic.BurstSpec{Rate: 0.003, Link: &mpic.Link{From: 0, To: 1}, Start: 1 << 28, Length: 10}
	quiet, err := mpic.RunScenario(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if quiet.Metrics.TotalCorruptions() != 0 {
		t.Errorf("out-of-run burst window landed %d corruptions", quiet.Metrics.TotalCorruptions())
	}
	// A burst on a link outside the topology is a loud error, not a
	// silent no-op.
	sc.Noise = mpic.BurstSpec{Rate: 0.003, Link: &mpic.Link{From: 0, To: 4}}
	if _, err := mpic.RunScenario(context.Background(), sc); err == nil {
		t.Error("burst on a non-edge accepted")
	}
}

// TestRunnerReuseBitIdentical pins the arena: running the same scenario
// repeatedly through one Runner (buffer reuse) must match a fresh
// one-shot run exactly.
func TestRunnerReuseBitIdentical(t *testing.T) {
	sc := mpic.Scenario{
		Topology: mpic.Clique(4),
		Workload: mpic.RandomTraffic(60),
		Scheme:   mpic.AlgorithmA,
		Noise:    mpic.RandomNoise(0.002),
		Seed:     21, IterFactor: 20,
	}
	oneShot, err := mpic.RunScenario(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	runner := mpic.NewRunner()
	defer runner.Close()
	for i := 0; i < 3; i++ {
		reused, err := runner.Run(context.Background(), sc)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, oneShot, reused)
	}
}
