package mpic

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"mpic/internal/cores"
)

// TestGridElasticSplitIdentical pins the elastic worker split end to
// end: a grid of Parallel scenarios run sequentially (Workers=1, so the
// lone cell worker leaves most of the core budget spare for round
// pools) and at full width (Workers=GOMAXPROCS, so heavy rounds mostly
// find the budget saturated and run on their own core) must produce
// bit-identical cells — the budget moves wall clock, never results. The
// occupancy snapshots must show the round engines actually consulted
// the budget and returned every borrowed token.
func TestGridElasticSplitIdentical(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	sw := Sweep{
		Base: Scenario{
			Topology:   Line(5),
			Workload:   RandomTraffic(48),
			Noise:      RandomNoise(0.002),
			Seed:       11,
			IterFactor: 12,
			Parallel:   true,
		},
		N:       []int{4, 5, 6},
		Schemes: []Scheme{AlgorithmA, Algorithm1},
		Trials:  2,
	}

	runAt := func(workers int) ([]SweepCell, cores.Stats) {
		t.Helper()
		runner := NewRunner()
		defer runner.Close()
		sw := sw
		sw.Workers = workers
		cells, err := runner.Sweep(context.Background(), sw)
		if err != nil {
			t.Fatalf("Workers=%d: %v", workers, err)
		}
		return cells, runner.gridPoolStats()
	}

	seq, seqStats := runAt(1)
	par, parStats := runAt(4)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("elastic grid cells differ between Workers=1 and Workers=4:\n%+v\nvs\n%+v", seq, par)
	}
	for _, st := range []cores.Stats{seqStats, parStats} {
		if st.Total != 4 {
			t.Fatalf("budget sized %d, want GOMAXPROCS=4 (%+v)", st.Total, st)
		}
		if st.Borrows == 0 {
			t.Fatalf("no heavy round ever consulted the budget (%+v)", st)
		}
		if st.Held != 0 {
			t.Fatalf("%d tokens still out after the grid (%+v)", st.Held, st)
		}
	}
	// A lone cell worker leaves three spare cores: its heavy rounds must
	// actually receive helpers.
	if seqStats.Granted == 0 {
		t.Fatalf("Workers=1 grid got no helper cores (%+v)", seqStats)
	}
}

// BenchmarkGridElastic measures the two parallel engines sharing one
// core budget: a grid of Parallel scenarios at full worker width
// (Workers = GOMAXPROCS). Run with -cpu 1,4,8 for the PERF.md elastic
// table — at -cpu 1 the budget is a single token (every borrow denied,
// pure sequential), while wider settings split the machine between cell
// workers and round pools. The occ metric is helper cores granted per
// borrow attempt (0 = round pools starved, higher = spare cores really
// flowed to heavy rounds).
func BenchmarkGridElastic(b *testing.B) {
	sw := Sweep{
		Base: Scenario{
			Topology:   Line(5),
			Workload:   RandomTraffic(48),
			Noise:      RandomNoise(0.002),
			Seed:       11,
			IterFactor: 12,
			Parallel:   true,
		},
		N:       []int{4, 5, 6},
		Schemes: []Scheme{AlgorithmA, Algorithm1},
		Trials:  2,
	}
	runner := NewRunner()
	defer runner.Close()
	var borrows, granted int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runner.Sweep(context.Background(), sw); err != nil {
			b.Fatal(err)
		}
		st := runner.gridPoolStats()
		borrows += st.Borrows
		granted += st.Granted
	}
	b.StopTimer()
	if borrows > 0 {
		b.ReportMetric(float64(granted)/float64(borrows), "occ")
	}
}
