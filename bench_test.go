package mpic_test

// Benchmark harness: one benchmark per evaluation artefact of DESIGN.md
// §4 (the Table 1 regeneration and every figure-style experiment), plus
// micro-benchmarks of the substrates. The experiment benchmarks run the
// corresponding experiment in quick mode and report domain metrics
// (success rate, blowup) alongside time; `go run ./cmd/mpicbench` runs
// the full-size versions that EXPERIMENTS.md records.

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"path/filepath"
	"strconv"
	"testing"

	"mpic"

	"mpic/internal/adversary"
	"mpic/internal/core"
	"mpic/internal/ecc"
	"mpic/internal/experiments"
	"mpic/internal/graph"
	"mpic/internal/hashing"
	"mpic/internal/protocol"

	"mpic/internal/bitstring"
)

func benchExperiment(b *testing.B, name string) {
	b.Helper()
	cfg := experiments.Config{Trials: 2, Seed: 1, Quick: true}
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := experiments.Run(name, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates the paper's Table 1 (E-T1).
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkFigNoiseSweep is E-F1: success probability vs noise fraction.
func BenchmarkFigNoiseSweep(b *testing.B) { benchExperiment(b, "noise-sweep") }

// BenchmarkFigRateVsSize is E-F2: constant-rate evidence across sizes.
func BenchmarkFigRateVsSize(b *testing.B) { benchExperiment(b, "rate-size") }

// BenchmarkFigCCVsNoise is E-F3: communication vs noise budget.
func BenchmarkFigCCVsNoise(b *testing.B) { benchExperiment(b, "cc-noise") }

// BenchmarkFigRewindWave is E-F4: recovery latency vs line length.
func BenchmarkFigRewindWave(b *testing.B) { benchExperiment(b, "rewind-wave") }

// BenchmarkFigPotential is E-F5: per-iteration potential growth.
func BenchmarkFigPotential(b *testing.B) { benchExperiment(b, "potential") }

// BenchmarkFigCollisions is E-F6: hash collisions vs the ε|Π| envelope.
func BenchmarkFigCollisions(b *testing.B) { benchExperiment(b, "collisions") }

// BenchmarkFigAblation is E-F7: flag-passing / rewind ablations.
func BenchmarkFigAblation(b *testing.B) { benchExperiment(b, "ablation") }

// BenchmarkFigDeltaBias is E-F8: δ-biased vs PRF seed expansion.
func BenchmarkFigDeltaBias(b *testing.B) { benchExperiment(b, "delta-bias") }

// BenchmarkFigSeedAttack is E-F9: randomness-exchange attacks vs the ECC.
func BenchmarkFigSeedAttack(b *testing.B) { benchExperiment(b, "seed-attack") }

// BenchmarkFigRounds is E-F10: round-complexity blowup.
func BenchmarkFigRounds(b *testing.B) { benchExperiment(b, "rounds") }

// BenchmarkFigFullyUtilized is E-F11: the cost of the fully-utilized
// model conversion.
func BenchmarkFigFullyUtilized(b *testing.B) { benchExperiment(b, "fully-utilized") }

// BenchmarkFigCollisionAttack is E-F12: the §6.1 seed-aware collision
// attack vs hash length.
func BenchmarkFigCollisionAttack(b *testing.B) { benchExperiment(b, "collision-attack") }

// BenchmarkSchemeEndToEnd times one complete coded simulation per scheme
// on a moderately sized network, reporting the communication blowup.
func BenchmarkSchemeEndToEnd(b *testing.B) {
	for _, s := range []mpic.Scheme{mpic.Algorithm1, mpic.AlgorithmA, mpic.AlgorithmB, mpic.AlgorithmC} {
		b.Run(s.String(), func(b *testing.B) {
			var blowup float64
			for i := 0; i < b.N; i++ {
				res, err := mpic.Run(mpic.Config{
					Topology: "random", N: 8,
					Noise: "random", NoiseRate: 0.0005,
					Scheme: s, Seed: int64(i + 1), IterFactor: 50,
				})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Success {
					b.Fatalf("iteration %d failed", i)
				}
				blowup += res.Blowup
			}
			b.ReportMetric(blowup/float64(b.N), "blowup")
		})
	}
}

// BenchmarkScalingNetworkSize times Algorithm A end to end as the
// network grows (noiseless): the per-node simulation cost, with the
// sequential and worker-pool send executors side by side.
func BenchmarkScalingNetworkSize(b *testing.B) {
	for _, n := range []int{4, 8, 16, 32} {
		for _, parallel := range []bool{false, true} {
			name := "n=" + strconv.Itoa(n)
			if parallel {
				name += "/parallel"
			}
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res, err := mpic.Run(mpic.Config{Topology: "line", N: n, Seed: 1, IterFactor: 10, Parallel: parallel})
					if err != nil {
						b.Fatal(err)
					}
					if !res.Success {
						b.Fatal("run failed")
					}
				}
			})
		}
	}
}

// BenchmarkRunnerArena measures back-to-back scenario runs with and
// without the Runner's buffer arena: the reused variant must allocate
// measurably less (the per-link block caches are the dominant per-run
// allocation; see core.Arena).
func BenchmarkRunnerArena(b *testing.B) {
	sc := mpic.Scenario{
		Topology:   mpic.Clique(6),
		Workload:   mpic.RandomTraffic(120),
		Scheme:     mpic.AlgorithmA,
		Seed:       1,
		IterFactor: 10,
	}
	b.Run("oneshot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := mpic.RunScenario(context.Background(), sc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("runner", func(b *testing.B) {
		runner := mpic.NewRunner()
		defer runner.Close()
		if _, err := runner.Run(context.Background(), sc); err != nil {
			b.Fatal(err) // warm the arena outside the timed loop
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := runner.Run(context.Background(), sc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGridSession measures the overhead of the durable-session
// layers on a small grid: the bare engine, the same grid narrating every
// iteration through a discarding progress sink, and the same grid
// persisting every completed cell through a FileGridStore. Progress cost
// is dominated by the per-iteration callback + mutex; store cost by one
// atomic JSON rewrite per cell. Both are opt-in and must stay invisible
// when off — the `-compare` wall-clock gate enforces that end to end.
func BenchmarkGridSession(b *testing.B) {
	mkGrid := func() mpic.Grid {
		grid, err := mpic.Sweep{
			Base: mpic.Scenario{
				Topology:   mpic.Line(4),
				Workload:   mpic.RandomTraffic(40),
				Scheme:     mpic.AlgorithmA,
				Noise:      mpic.RandomNoise(0),
				Seed:       3,
				IterFactor: 12,
			},
			Rates:  []float64{0, 0.001},
			Trials: 2,
		}.Grid()
		if err != nil {
			b.Fatal(err)
		}
		return grid
	}
	run := func(b *testing.B, mut func(*mpic.Grid)) {
		runner := mpic.NewRunner()
		defer runner.Close()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			grid := mkGrid()
			mut(&grid)
			if err := runner.RunGrid(context.Background(), grid, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("bare", func(b *testing.B) {
		run(b, func(*mpic.Grid) {})
	})
	b.Run("progress", func(b *testing.B) {
		run(b, func(g *mpic.Grid) {
			g.Progress = func(mpic.GridProgress) {}
		})
	})
	b.Run("progresslog", func(b *testing.B) {
		run(b, func(g *mpic.Grid) {
			g.Progress = mpic.NewProgressLog(io.Discard)
		})
	})
	b.Run("store", func(b *testing.B) {
		dir := b.TempDir()
		n := 0
		run(b, func(g *mpic.Grid) {
			// A fresh file per iteration: resuming a finished session would
			// otherwise measure the restore path, not the persist path.
			n++
			g.Store = mpic.NewFileGridStore(filepath.Join(dir, fmt.Sprintf("s%d.json", n)))
		})
	})
}

// BenchmarkMicroInnerProductHash measures one τ=8 hash over a 4096-bit
// transcript prefix — the inner loop of every consistency check — through
// the materialized-seed kernel the protocol actually runs (seeds are
// produced once per block and swept many times as prefixes regrow).
func BenchmarkMicroInnerProductHash(b *testing.B) {
	h := hashing.NewInnerProductHash(8, 8192)
	c := hashing.NewBlockCache(h, hashing.NewPRFSource(1, 2), 8192/64)
	c.SetBlock(0)
	x := bitstring.NewBitVec(4096)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 4096; i++ {
		x.Append(byte(rng.Intn(2)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.HashPrefixCached(x, x.Len(), c)
	}
}

// BenchmarkMicroInnerProductHashReference measures the same hash through
// the per-word interface-dispatch reference evaluator (the pre-PR-1 code
// path, kept as the golden oracle).
func BenchmarkMicroInnerProductHashReference(b *testing.B) {
	h := hashing.NewInnerProductHash(8, 8192)
	src := hashing.NewPRFSource(1, 2)
	x := bitstring.NewBitVec(4096)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 4096; i++ {
		x.Append(byte(rng.Intn(2)))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.Hash(x, src, 0)
	}
}

// BenchmarkMicroAGHPWord measures δ-biased stream generation (one word).
func BenchmarkMicroAGHPWord(b *testing.B) {
	src := hashing.NewAGHPSource(0x12345, 0x6789a)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = src.Word(uint64(i % 1024))
	}
}

// BenchmarkMicroRSCodec measures one randomness-exchange codeword
// round trip with errors and erasures.
func BenchmarkMicroRSCodec(b *testing.B) {
	codec, err := ecc.NewBitCodec(128, 31, 11)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	msg := make([]byte, 128)
	for i := range msg {
		msg[i] = byte(rng.Intn(2))
	}
	enc, err := codec.EncodeBits(msg)
	if err != nil {
		b.Fatal(err)
	}
	erased := make([]bool, len(enc))
	recv := make([]byte, len(enc))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(recv, enc)
		for j := range erased {
			erased[j] = false
		}
		recv[i%len(recv)] ^= 1
		erased[(i*37)%len(erased)] = true
		if _, err := codec.DecodeBits(recv, erased); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicroReferenceRun measures the noiseless reference executor.
func BenchmarkMicroReferenceRun(b *testing.B) {
	g := graph.Line(8)
	proto := protocol.NewRandom(g, 200, 0.5, 1, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = protocol.RunReference(proto)
	}
}

// benchIterations runs full-budget noiseless simulations on a line of 6
// under the given hash mode (epochRefresh applies to core.HashEpoch only;
// 0 = default) and reports amortized ns/iteration — the number that
// exposes whether per-iteration cost grows with transcript length.
func benchIterations(b *testing.B, iterFactor int, mode core.HashMode, epochRefresh int) {
	b.Helper()
	g := graph.Line(6)
	proto := protocol.NewRandom(g, 300, 0.5, 1, nil)
	params := core.ParamsFor(core.Alg1, g)
	params.IterFactor = iterFactor
	params.EarlyStop = false
	params.Oracle = false
	params.HashMode = mode
	params.EpochRefresh = epochRefresh
	b.ReportAllocs()
	b.ResetTimer()
	iters := 0
	for i := 0; i < b.N; i++ {
		res, err := core.Run(core.Options{Protocol: proto, Params: params, Adversary: adversary.None{}})
		if err != nil {
			b.Fatal(err)
		}
		iters += res.Iterations
	}
	b.StopTimer()
	if iters > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(iters), "ns/iteration")
	}
}

// BenchmarkMicroIteration measures one full scheme iteration (all four
// phases) on a line of 6, amortized, on the default epoch-refresh path.
// The seed code capped the budget at 4·|Π| because per-iteration hashing
// swept the whole transcript (quadratic total work); PR 1's kernel win
// raised it to 8·|Π|; the PR 2 incremental checkpoints made the
// consistency check cost Θ(growth), so the benchmark runs 32·|Π| — and
// with PR 9 the default mode is the fast path, so this measures exactly
// what an out-of-the-box run pays.
func BenchmarkMicroIteration(b *testing.B) {
	benchIterations(b, 32, core.HashEpoch, 0)
}

// BenchmarkScalingBudget sweeps the iteration budget with the quadratic
// (per-iteration seed blocks, now the HashLegacy escape hatch), the
// never-refreshed incremental (PR 2), and the default epoch-refresh
// (PR 9) hash paths side by side. Quadratic ns/iteration grows linearly
// with IterFactor (mean transcript length is proportional to the
// budget); incremental stays flat; epoch must stay within 10% of
// incremental — the amortized Θ(|T|/R) refresh sweep is the entire
// fidelity premium of the default.
func BenchmarkScalingBudget(b *testing.B) {
	for _, itf := range []int{8, 16, 32} {
		for _, v := range []struct {
			name string
			mode core.HashMode
		}{
			{"quadratic", core.HashLegacy},
			{"incremental", core.HashIncremental},
			{"epoch", core.HashEpoch},
		} {
			b.Run("iterfactor="+strconv.Itoa(itf)+"/"+v.name, func(b *testing.B) {
				benchIterations(b, itf, v.mode, 0)
			})
		}
	}
}

// BenchmarkEpochRefresh sweeps the refresh interval R at a fixed 32·|Π|
// budget — the measurement behind core.DefaultEpochRefresh. Small R
// re-sweeps the transcript too often and converges on quadratic
// behavior; past the default the amortized refresh cost is already well
// under the growth sweep, so larger R buys fidelity loss (a collision
// persists up to R checks) with no measurable speed.
func BenchmarkEpochRefresh(b *testing.B) {
	for _, r := range []int{1, 4, 8, 32, 128, 256, 512, 1024, 4096} {
		b.Run("r="+strconv.Itoa(r), func(b *testing.B) {
			benchIterations(b, 32, core.HashEpoch, r)
		})
	}
}

// BenchmarkMicroNetworkTiming puts the lockstep engine and the
// virtual-time DES path side by side on the same scenario: the unit
// variant runs the classic synchronous loop, jitter runs the event heap
// with every symbol on time (pure DES overhead), and jitter-late pushes
// the jitter band past the deadline so the late-symbol machinery and
// insdel mapping engage too. The delta between unit and jitter is the
// cost of virtual time; PERF.md records the trajectory.
func BenchmarkMicroNetworkTiming(b *testing.B) {
	variants := []struct {
		name  string
		delay mpic.DelaySpec
	}{
		{"lockstep", nil},
		{"jitter-ontime", mpic.JitterDelay(0.5)},  // base 0.45 + 0.5 → never late
		{"jitter-late", mpic.JitterDelay(0.8)},    // tail crosses the deadline
		{"lognormal", mpic.LognormalDelay(0.25)},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			runner := mpic.NewRunner()
			defer runner.Close()
			sc := mpic.Scenario{
				Topology: mpic.Clique(6), Workload: mpic.RandomTraffic(60),
				Noise: mpic.RandomNoise(0.001), Scheme: mpic.AlgorithmA,
				IterFactor: 20, Delay: v.delay,
			}
			var iters int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sc.Seed = int64(i + 1)
				res, err := runner.Run(context.Background(), sc)
				if err != nil {
					b.Fatal(err)
				}
				iters += res.Iterations
			}
			b.StopTimer()
			if iters > 0 {
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(iters), "ns/iteration")
			}
		})
	}
}
