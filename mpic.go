// Package mpic is a Go implementation of the multiparty interactive
// coding schemes of Gelles, Kalai and Ramnarayan, "Efficient Multiparty
// Interactive Coding for Insertions, Deletions and Substitutions"
// (PODC 2019, arXiv:1901.09863).
//
// Given any noiseless multiparty protocol Π with a fixed speaking order
// over an arbitrary connected topology, the library produces a simulation
// of Π that tolerates adversarial insertion, deletion and substitution
// noise with only a constant-factor communication blowup:
//
//   - AlgorithmA tolerates an ε/m fraction of oblivious noise with no
//     pre-shared randomness (m = number of links),
//   - AlgorithmB tolerates ε/(m log m) fully adaptive noise,
//   - AlgorithmC tolerates ε/(m log log m) adaptive noise when the
//     parties pre-share a common random string,
//   - Algorithm1 is the CRS + oblivious-noise base scheme.
//
// The simplest entry point is Run with a Config:
//
//	res, err := mpic.Run(mpic.Config{
//	    Topology: "line", N: 6,
//	    Workload: "random", WorkloadRounds: 120,
//	    Scheme:   mpic.AlgorithmA,
//	    Noise:    "random", NoiseRate: 0.002,
//	})
//
// Advanced callers can assemble runs from the underlying pieces via
// NewWorkload and the re-exported option types.
package mpic

import (
	"fmt"
	"math/rand"

	"mpic/internal/adversary"
	"mpic/internal/baseline"
	"mpic/internal/bitstring"
	"mpic/internal/channel"
	"mpic/internal/core"
	"mpic/internal/graph"
	"mpic/internal/protocol"
)

// Scheme selects one of the paper's coding schemes.
type Scheme = core.Scheme

// The four schemes of the paper (see package doc).
const (
	Algorithm1 = core.Alg1
	AlgorithmA = core.AlgA
	AlgorithmB = core.AlgB
	AlgorithmC = core.AlgC
)

// Result is the outcome of a coded run: success against the noiseless
// reference, communication accounting, and oracle instrumentation.
type Result = core.Result

// Params exposes the full scheme parameterization for advanced use.
type Params = core.Params

// Protocol is a noiseless multiparty protocol with a fixed speaking
// order; implement it to simulate your own workloads. The aliases below
// re-export everything an implementation needs.
type Protocol = protocol.Protocol

// Protocol-authoring building blocks.
type (
	// Graph is a connected simple topology.
	Graph = graph.Graph
	// Node identifies a party.
	Node = graph.Node
	// Schedule is a fixed speaking order.
	Schedule = protocol.Schedule
	// Transmission is one scheduled bit: From sends to To.
	Transmission = protocol.Transmission
	// View is a party's observations (input + per-link symbols).
	View = protocol.View
	// Link is a directed link, used to address observations.
	Link = channel.Link
	// Symbol is a channel symbol: 0, 1, or Silence.
	Symbol = bitstring.Symbol
)

// Channel symbols.
const (
	// Sym0 is the bit 0.
	Sym0 = bitstring.Sym0
	// Sym1 is the bit 1.
	Sym1 = bitstring.Sym1
	// Silence is the "no message" symbol.
	Silence = bitstring.Silence
)

// NewSchedule builds a speaking order from per-round transmissions.
func NewSchedule(rounds [][]Transmission) *Schedule { return protocol.NewSchedule(rounds) }

// NewGraph returns an empty topology on n nodes; add links with AddEdge
// and finish with Validate.
func NewGraph(n int) *Graph { return graph.New(n) }

// BaselineResult is the outcome of an uncoded or naive-FEC run.
type BaselineResult = baseline.Result

// Config describes a run in terms of named building blocks.
type Config struct {
	// Topology is one of "line", "ring", "star", "clique", "tree",
	// "random".
	Topology string
	// N is the number of parties.
	N int
	// Workload is one of "random", "pipelined-line", "tree-sum",
	// "token-ring".
	Workload string
	// WorkloadRounds scales the workload (defaults to 30·N).
	WorkloadRounds int
	// Scheme selects the coding scheme (default AlgorithmA).
	Scheme Scheme
	// Noise is one of "none", "random", "burst", "adaptive".
	Noise string
	// NoiseRate is the corruption budget as a fraction of total
	// communication (the paper's µ).
	NoiseRate float64
	// Seed makes the run reproducible (inputs, noise, and randomness).
	Seed int64
	// IterFactor bounds iterations at IterFactor·|Π| (default 100, the
	// paper's constant).
	IterFactor int
	// Faithful disables the oracle's early stop, running all
	// IterFactor·|Π| iterations like the paper's protocol.
	Faithful bool
	// Parallel enables the concurrent network executor.
	Parallel bool
	// IncrementalHash routes the meeting-points prefix hashes through
	// rewind-aware incremental checkpoints: Θ(growth) hash work per
	// iteration instead of Θ(transcript), at the cost of rewind-stable
	// (rather than per-iteration fresh) prefix-hash seeds. See
	// core.Params.IncrementalHash for the fidelity trade-off.
	IncrementalHash bool
}

// NewTopology builds one of the named topology families.
func NewTopology(name string, n int) (*graph.Graph, error) {
	return graph.ByName(name, n)
}

// NewWorkload builds one of the named workload protocols over g.
func NewWorkload(name string, g *graph.Graph, rounds int, seed int64) (Protocol, error) {
	if rounds <= 0 {
		rounds = 30 * g.N()
	}
	inputs := protocol.DefaultInputs(g.N(), 4, seed)
	switch name {
	case "random", "":
		return protocol.NewRandom(g, rounds, 0.5, seed, inputs), nil
	case "dense":
		return protocol.NewRandom(g, rounds, 1.0, seed, inputs), nil
	case "phase-king":
		phases := rounds / (2 * g.N())
		if phases < g.N() {
			phases = g.N()
		}
		return protocol.NewPhaseKing(g.N(), phases, inputs), nil
	case "pipelined-line":
		blocks := rounds / (g.N() + 3)
		if blocks < 1 {
			blocks = 1
		}
		return protocol.NewPipelinedLine(g.N(), blocks, 4, inputs)
	case "tree-sum":
		epochs := rounds/(8*g.N()) + 1
		return protocol.NewTreeSum(g, epochs, 8, inputs), nil
	case "token-ring":
		laps := rounds / g.N()
		if laps < 1 {
			laps = 1
		}
		return protocol.NewTokenRing(g.N(), laps, inputs)
	default:
		return nil, fmt.Errorf("mpic: unknown workload %q", name)
	}
}

// build materializes a Config into runnable pieces.
func (cfg Config) build() (Protocol, core.Options, error) {
	if cfg.N == 0 {
		cfg.N = 6
	}
	if cfg.Topology == "" {
		cfg.Topology = "line"
	}
	if cfg.Scheme == 0 {
		cfg.Scheme = AlgorithmA
	}
	// Workloads with fixed topologies override the requested one.
	var g *graph.Graph
	var err error
	switch cfg.Workload {
	case "pipelined-line":
		g = graph.Line(cfg.N)
	case "token-ring":
		g, err = graph.ByName("ring", cfg.N)
	case "phase-king":
		g = graph.Clique(cfg.N)
	default:
		g, err = graph.ByName(cfg.Topology, cfg.N)
	}
	if err != nil {
		return nil, core.Options{}, err
	}
	proto, err := NewWorkload(cfg.Workload, g, cfg.WorkloadRounds, cfg.Seed)
	if err != nil {
		return nil, core.Options{}, err
	}
	params := core.ParamsFor(cfg.Scheme, g)
	params.CRSKey = cfg.Seed
	if cfg.IterFactor > 0 {
		params.IterFactor = cfg.IterFactor
	}
	if cfg.Faithful {
		params.EarlyStop = false
	}
	params.IncrementalHash = cfg.IncrementalHash
	opts := core.Options{
		Protocol: proto,
		Params:   params,
		Parallel: cfg.Parallel,
	}
	if err := cfg.wireNoise(g, &opts); err != nil {
		return nil, core.Options{}, err
	}
	return proto, opts, nil
}

func (cfg Config) wireNoise(g *graph.Graph, opts *core.Options) error {
	rng := rand.New(rand.NewSource(cfg.Seed*2654435761 + 1))
	switch cfg.Noise {
	case "none", "":
		opts.Adversary = adversary.None{}
	case "random":
		opts.Adversary = adversary.NewRandomRate(cfg.NoiseRate, rng)
	case "burst":
		edges := g.Edges()
		e := edges[rng.Intn(len(edges))]
		opts.Adversary = adversary.NewBurst(channel.Link{From: e.U, To: e.V}, 0, 1<<30, cfg.NoiseRate)
	case "adaptive":
		seed := rng.Int63()
		rate := cfg.NoiseRate
		opts.AdversaryFactory = func(info core.RunInfo) adversary.Adversary {
			return adversary.NewAdaptive(info.Links, info.PhaseOracle, 3, rate, rand.New(rand.NewSource(seed)))
		}
	default:
		return fmt.Errorf("mpic: unknown noise kind %q", cfg.Noise)
	}
	return nil
}

// Run executes the coded simulation described by cfg and verifies it
// against a noiseless reference execution of the same workload.
func Run(cfg Config) (*Result, error) {
	_, opts, err := cfg.build()
	if err != nil {
		return nil, err
	}
	return core.Run(opts)
}

// RunProtocol executes a coded simulation of a caller-provided protocol
// with explicit parameters — the advanced entry point.
func RunProtocol(p Protocol, params Params, adv Adversary, parallel bool) (*Result, error) {
	return core.Run(core.Options{Protocol: p, Params: params, Adversary: adv, Parallel: parallel})
}

// Adversary is the channel-noise interface (see the adversary
// subpackage's strategies).
type Adversary = adversary.Adversary

// ParamsFor returns the paper's parameterization of a scheme for a
// topology.
func ParamsFor(s Scheme, g *graph.Graph) Params { return core.ParamsFor(s, g) }

// RunUncoded executes the workload of cfg directly over the noisy
// network — the fragile baseline.
func RunUncoded(cfg Config) (*BaselineResult, error) {
	proto, opts, err := cfg.build()
	if err != nil {
		return nil, err
	}
	adv := opts.Adversary
	if opts.AdversaryFactory != nil {
		return nil, fmt.Errorf("mpic: baseline runs do not support adaptive noise")
	}
	return baseline.RunUncoded(proto, adv)
}

// RunNaiveFEC executes the workload with per-transmission repetition
// coding (an odd factor rep ≥ 1) — the feedback-free baseline.
func RunNaiveFEC(cfg Config, rep int) (*BaselineResult, error) {
	proto, opts, err := cfg.build()
	if err != nil {
		return nil, err
	}
	if opts.AdversaryFactory != nil {
		return nil, fmt.Errorf("mpic: baseline runs do not support adaptive noise")
	}
	return baseline.RunNaiveFEC(proto, opts.Adversary, rep)
}

// RunUncodedProtocol runs a caller-provided protocol uncoded under an
// explicit adversary.
func RunUncodedProtocol(p Protocol, adv Adversary) (*BaselineResult, error) {
	return baseline.RunUncoded(p, adv)
}

// RunNaiveFECProtocol runs a caller-provided protocol with repetition
// coding under an explicit adversary.
func RunNaiveFECProtocol(p Protocol, adv Adversary, rep int) (*BaselineResult, error) {
	return baseline.RunNaiveFEC(p, adv, rep)
}

// NewFixedDeletions builds an adversary that skips the first `skip`
// payload bits on the directed link from → to and then deletes the next
// count of them — a fixed absolute budget useful for comparing schemes
// of different total communication (skip lets the attack bypass, e.g.,
// the randomness-exchange preamble).
func NewFixedDeletions(from, to int, skip, count int) Adversary {
	a := adversary.NewFixedDeletions(channel.Link{From: graph.Node(from), To: graph.Node(to)}, count)
	a.Skip = skip
	return a
}
