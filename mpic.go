// Package mpic is a Go implementation of the multiparty interactive
// coding schemes of Gelles, Kalai and Ramnarayan, "Efficient Multiparty
// Interactive Coding for Insertions, Deletions and Substitutions"
// (PODC 2019, arXiv:1901.09863).
//
// Given any noiseless multiparty protocol Π with a fixed speaking order
// over an arbitrary connected topology, the library produces a simulation
// of Π that tolerates adversarial insertion, deletion and substitution
// noise with only a constant-factor communication blowup:
//
//   - AlgorithmA tolerates an ε/m fraction of oblivious noise with no
//     pre-shared randomness (m = number of links),
//   - AlgorithmB tolerates ε/(m log m) fully adaptive noise,
//   - AlgorithmC tolerates ε/(m log log m) adaptive noise when the
//     parties pre-share a common random string,
//   - Algorithm1 is the CRS + oblivious-noise base scheme.
//
// # Scenarios and the Runner
//
// A run is described by a typed, composable Scenario — which workload
// over which topology, protected by which scheme, under which noise —
// and executed by a Runner:
//
//	runner := mpic.NewRunner()
//	res, err := runner.Run(ctx, mpic.Scenario{
//	    Topology: mpic.Ring(8),
//	    Workload: mpic.TokenRing(64),
//	    Scheme:   mpic.AlgorithmA,
//	    Noise:    mpic.RandomNoise(0.002),
//	    Seed:     1,
//	})
//
// The Runner holds per-link hash buffers across runs (batch drivers stop
// paying per-run seed materialization), honors context cancellation, and
// batches cartesian parameter grids through Runner.Sweep. Per-iteration
// progress is observable by attaching an Observer to the scenario, and
// per-run arena telemetry through Result.Arena (or the NewArenaLog
// sink).
//
// # The grid engine
//
// Batch execution goes through one streaming, parallel core: a Grid is a
// list of GridCell scenario specs, and Runner.RunGrid executes them on a
// GOMAXPROCS-bounded worker pool, streaming each completed cell through
// a callback the moment it finishes — a long grid reports (and can be
// checkpointed) as it runs instead of at the end:
//
//	grid, _ := mpic.Sweep{Base: base, N: []int{8, 16}, Rates: rates}.Grid()
//	err := runner.RunGrid(ctx, grid, func(res mpic.GridCellResult) {
//	    fmt.Printf("n=%d rate=%g: %d/%d\n", res.Key.N, res.Key.Rate,
//	        res.Cell.Successes, res.Cell.Trials)
//	})
//
// Parallel execution is result-identical to sequential: every trial's
// seed is a pure function of its cell's spec (seed salting is per-cell
// and deterministic), so scheduling never leaks into results. Cells are
// keyed by (n, scheme, rate) — GridKey — which is how streamed,
// shuffled, and resumed runs merge. Runner.Sweep is the declarative
// wrapper over the engine (axes → cells, results in definition order);
// the experiment harness (internal/experiments) and both CLIs
// (mpicbench -sweep, mpicsim -trials) declare cells and let the engine
// execute them.
//
// # Durable sessions
//
// A grid becomes a durable, observable session through two Grid options.
// Setting Store to a GridStore (FileGridStore is the atomic-JSON
// implementation both CLIs and the experiment harness use) checkpoints
// the grid: the engine persists every completed cell the moment it
// finishes, and a re-run restores the persisted cells — streamed first,
// marked Restored — executing only the rest. Stores are keyed by a spec
// fingerprint (Grid.Spec, defaulting to Grid.Fingerprint), so a
// checkpoint written by a different grid is rejected rather than merged.
// Because every trial's seed is a pure function of its cell's spec, a
// resumed grid is bit-identical to an uninterrupted one.
//
// Setting Progress attaches the grid-level progress stream: serialized
// GridProgress events — trial starts, per-iteration ticks, trial
// results, cell completions and restores — built from the same Observer
// hooks single runs use, so very-slow single cells stay observable from
// the inside. NewProgressLog is the ready-made line-per-event sink:
//
//	grid.Store = mpic.NewFileGridStore("session.json")
//	grid.Progress = mpic.NewProgressLog(os.Stderr)
//	err := runner.RunGrid(ctx, grid, sink) // interrupt and re-run freely
//
// See examples/progress for the full loop.
//
// # Fault tolerance
//
// The grid engine contains cell failures instead of letting them take
// the batch down. A panic anywhere inside a cell — protocol code, a
// noise closure, an observer — is recovered into a typed
// *CellPanicError; Grid.Retry re-runs failed cells under capped
// exponential backoff with deterministic jitter, and because retried
// attempts re-derive the exact same trial seeds, a cell that fails
// transiently and then succeeds is bit-identical to one that succeeded
// first try. Grid.OnCellError selects what an unrecoverable cell does to
// the rest of the grid: FailFast (the default) aborts, QuarantineCells
// finishes the grid around it — failed cells stream with Err set, stay
// out of the session store (a resumed run re-attempts them), and the run
// returns a *GridFailure inventorying them:
//
//	grid.Retry = mpic.RetryPolicy{MaxAttempts: 3}
//	grid.OnCellError = mpic.QuarantineCells
//	err := runner.RunGrid(ctx, grid, sink)
//	var gf *mpic.GridFailure
//	if errors.As(err, &gf) { /* partial success; gf.Report says what failed */ }
//
// The storage layer is hardened the same way: FileGridStore fsyncs both
// the checkpoint bytes and the rename that publishes them, checksums the
// payload, and keeps the previous state as a verified-good .bak — a
// checkpoint torn by a crash is detected (never half-parsed as truth)
// and the session resumes from its last good state. RetryingGridStore
// wraps any GridStore with bounded retries for transient I/O errors.
// Both CLIs expose the machinery as -retries (and mpicbench's
// -fail-fast=false), with exit code 3 distinguishing a quarantined
// partial success from a hard failure. The deterministic fault injector
// behind the chaos suite lives in internal/faults.
//
// # Sharded sessions
//
// A LeaseStore extends GridStore with per-cell claim/renew/release
// leases, and Runner.RunGridSharded is one worker of a sharded session:
// N workers — goroutines sharing a DirLeaseStore, or separate processes
// sharing its directory — each claim pending cells, execute them on the
// same per-cell path as RunGrid, and persist results through the
// checksummed store. Leases carry a TTL, so a crashed worker's cells
// re-enter the pool when its leases expire; a lapsed lease at worst
// duplicates work, never corrupts it, because every cell is a pure
// function of spec + salt and duplicated results are bit-identical.
// The merged session equals a sequential RunGrid of the same grid, byte
// for byte. FileGridStore additionally detects concurrent writers that
// bypass the lease protocol: an flock sidecar serializes access, and a
// checkpoint rewritten behind a session's back surfaces as a
// *SessionConflictError instead of a silent lost update. cmd/mpicserve
// wraps the whole machinery in a long-lived HTTP service — grid specs
// in, Server-Sent progress events out, sessions durable across
// restarts (package internal/service).
//
// # Network model
//
// By default the network is the paper's synchronous model: every symbol
// sent in round r arrives exactly at the round boundary. Setting
// Scenario.Delay switches the run to a virtual-time discrete-event
// network: each symbol is assigned a flight delay by a DelayModel
// (unit/lockstep, fixed+jitter, lognormal, per-link latency bands — a
// fourth open registry, RegisterDelay), and a deadline synchronizer
// preserves the round abstraction. Round r spans virtual time [r, r+1);
// a symbol that misses its deadline is recorded as a deletion at the
// deadline and, when it finally lands in a silent slot, as an
// out-of-band insertion — timing faults are mapped onto the paper's
// insdel noise model, so the coding schemes absorb stragglers and
// latency spikes exactly as they absorb adversarial noise, with no
// change to the protocol layer.
//
// Scenario.Faults layers a deterministic network-fault schedule on top:
// link outage windows, transient delay spikes, straggler parties, and
// crash-stop/restart parties whose links fall silent for a window and
// then resume (the scheme repairs the gap like any other insdel burst).
// Every decision is a pure site-hashed function of the schedule's seed,
// so a faulty run replays bit-identically from its seeds at any worker
// count — the grid determinism guarantee extends unchanged to timed
// runs. Timed results carry virtual-time metrics in Result.Metrics.Net:
// makespan, late/dropped symbol counts, erasures, and per-link delay
// histograms with p50/p99 quantiles. Lockstep runs (Delay nil or
// LockstepDelay with no Faults) stay on the classic synchronous engine,
// bit-identical to earlier releases, with Metrics.Net nil.
//
//	res, _ := runner.Run(ctx, mpic.Scenario{
//	    Topology: mpic.Clique(8),
//	    Workload: mpic.RandomTraffic(120),
//	    Noise:    mpic.RandomNoise(0.002),
//	    Delay:    mpic.LognormalDelay(0.3),
//	    Faults:   &mpic.NetFaults{OutageRate: 0.01, Stragglers: 1, Crashes: 1},
//	})
//	fmt.Println(res.Metrics.Net.Makespan, res.Metrics.Net.MaxP99())
//
// Every named building block — topology family, workload, noise model,
// delay model — lives in an open registry (RegisterTopology,
// RegisterWorkload, RegisterNoise, RegisterDelay), so external packages
// plug in new ones without touching this module; see examples/customnoise.
//
// # Legacy string configuration
//
// The string-keyed Config surface predates scenarios and remains as a
// thin shim that parses through the same registries, bit-identical to
// earlier releases:
//
//	res, err := mpic.Run(mpic.Config{
//	    Topology: "line", N: 6,
//	    Workload: "random", WorkloadRounds: 120,
//	    Scheme:   mpic.AlgorithmA,
//	    Noise:    "random", NoiseRate: 0.002,
//	})
//
// Migration from legacy strings to typed specs:
//
//	Config field                 Scenario spec
//	------------------------     -------------------------------------
//	Topology: "line", N: 6       Topology: mpic.Line(6)
//	Topology: "ring", N: 8       Topology: mpic.Ring(8)
//	Topology: "star" ...         mpic.Star, mpic.Clique, mpic.Tree,
//	                             mpic.RandomTopology, mpic.Topology(name, n)
//	Workload: "random",          Workload: mpic.RandomTraffic(120)
//	  WorkloadRounds: 120
//	Workload: "token-ring"       Workload: mpic.TokenRing(rounds)
//	Workload: "dense" ...        mpic.DenseTraffic, mpic.PhaseKing,
//	                             mpic.PipelinedLine, mpic.TreeSum,
//	                             mpic.Workload(name, rounds)
//	Noise: "none"                Noise: nil
//	Noise: "random", NoiseRate   Noise: mpic.RandomNoise(rate)
//	Noise: "burst", NoiseRate    Noise: mpic.BurstNoise(rate) — with
//	                             optional Link/Start/Length fields
//	Noise: "adaptive", NoiseRate Noise: mpic.Adaptive(rate)
//	(custom protocol)            Workload: mpic.UseProtocol(p)
//	(custom adversary)           Noise: mpic.CustomNoise(name, adv)
//
// Advanced callers can still assemble runs from the underlying pieces
// via NewWorkload, RunProtocol, and the re-exported option types.
package mpic

import (
	"fmt"

	"mpic/internal/adversary"
	"mpic/internal/baseline"
	"mpic/internal/bitstring"
	"mpic/internal/channel"
	"mpic/internal/core"
	"mpic/internal/graph"
	"mpic/internal/protocol"
)

// Scheme selects one of the paper's coding schemes.
type Scheme = core.Scheme

// The four schemes of the paper (see package doc).
const (
	Algorithm1 = core.Alg1
	AlgorithmA = core.AlgA
	AlgorithmB = core.AlgB
	AlgorithmC = core.AlgC
)

// Result is the outcome of a coded run: success against the noiseless
// reference, communication accounting, and oracle instrumentation.
type Result = core.Result

// Params exposes the full scheme parameterization for advanced use.
type Params = core.Params

// HashMode selects the prefix-hash seed discipline of the meeting-points
// consistency checks; see the core constants for the trade-offs. The zero
// value is HashEpoch — the epoch-refresh fast path — so an unset field
// means the default mode.
type HashMode = core.HashMode

// The three hash modes: epoch-refresh (default — incremental cost, with
// the seed block re-derived every EpochRefresh iterations so collisions
// cannot persist), the paper-faithful per-iteration reseeding, and the
// never-refreshed incremental opt-in.
const (
	HashEpoch       = core.HashEpoch
	HashLegacy      = core.HashLegacy
	HashIncremental = core.HashIncremental
)

// DefaultEpochRefresh is the default refresh interval R of HashEpoch, in
// iterations (see PERF.md for the sweep behind the value).
const DefaultEpochRefresh = core.DefaultEpochRefresh

// HashModeConflictError reports a deprecated IncrementalHash bool set
// alongside a contradictory HashMode.
type HashModeConflictError = core.HashModeConflictError

// ParseHashMode maps the conventional mode names ("epoch", "legacy",
// "incremental"; empty selects the default) to a HashMode.
func ParseHashMode(s string) (HashMode, error) { return core.ParseHashMode(s) }

// WhiteBoxStats reports the Section 6.1 collision attacker's bookkeeping
// when Scenario.WhiteBoxRate (or core's Options.WhiteBoxRate) was set.
type WhiteBoxStats = core.WhiteBoxStats

// ArenaStats is the runner arena's buffer-pool telemetry — hits, misses,
// and words of recycled capacity. Result.Arena carries a per-run delta;
// NewArenaLog prints one per run.
type ArenaStats = core.ArenaStats

// Protocol is a noiseless multiparty protocol with a fixed speaking
// order; implement it to simulate your own workloads. The aliases below
// re-export everything an implementation needs.
type Protocol = protocol.Protocol

// Protocol-authoring building blocks.
type (
	// Graph is a connected simple topology.
	Graph = graph.Graph
	// Node identifies a party.
	Node = graph.Node
	// Schedule is a fixed speaking order.
	Schedule = protocol.Schedule
	// Transmission is one scheduled bit: From sends to To.
	Transmission = protocol.Transmission
	// View is a party's observations (input + per-link symbols).
	View = protocol.View
	// Link is a directed link, used to address observations.
	Link = channel.Link
	// Symbol is a channel symbol: 0, 1, or Silence.
	Symbol = bitstring.Symbol
)

// Channel symbols.
const (
	// Sym0 is the bit 0.
	Sym0 = bitstring.Sym0
	// Sym1 is the bit 1.
	Sym1 = bitstring.Sym1
	// Silence is the "no message" symbol.
	Silence = bitstring.Silence
)

// NewSchedule builds a speaking order from per-round transmissions.
func NewSchedule(rounds [][]Transmission) *Schedule { return protocol.NewSchedule(rounds) }

// NewGraph returns an empty topology on n nodes; add links with AddEdge
// and finish with Validate.
func NewGraph(n int) *Graph { return graph.New(n) }

// BaselineResult is the outcome of an uncoded or naive-FEC run.
type BaselineResult = baseline.Result

// RunProtocol executes a coded simulation of a caller-provided protocol
// with explicit parameters — the advanced entry point below Scenario.
func RunProtocol(p Protocol, params Params, adv Adversary, parallel bool) (*Result, error) {
	return core.Run(core.Options{Protocol: p, Params: params, Adversary: adv, Parallel: parallel})
}

// Adversary is the channel-noise interface (see the adversary
// subpackage's strategies).
type Adversary = adversary.Adversary

// ParamsFor returns the paper's parameterization of a scheme for a
// topology.
func ParamsFor(s Scheme, g *graph.Graph) Params { return core.ParamsFor(s, g) }

// ParseScheme maps the conventional short scheme names ("1", "A", "B",
// "C", case-insensitive) to Scheme values — the string bridge the
// command-line tools share.
func ParseScheme(s string) (Scheme, error) {
	switch s {
	case "1":
		return Algorithm1, nil
	case "A", "a":
		return AlgorithmA, nil
	case "B", "b":
		return AlgorithmB, nil
	case "C", "c":
		return AlgorithmC, nil
	default:
		return 0, fmt.Errorf("mpic: unknown scheme %q (want 1, A, B, or C)", s)
	}
}

// RunUncodedProtocol runs a caller-provided protocol uncoded under an
// explicit adversary.
func RunUncodedProtocol(p Protocol, adv Adversary) (*BaselineResult, error) {
	return baseline.RunUncoded(p, adv)
}

// RunNaiveFECProtocol runs a caller-provided protocol with repetition
// coding under an explicit adversary.
func RunNaiveFECProtocol(p Protocol, adv Adversary, rep int) (*BaselineResult, error) {
	return baseline.RunNaiveFEC(p, adv, rep)
}

// NewFixedDeletions builds an adversary that skips the first `skip`
// payload bits on the directed link from → to and then deletes the next
// count of them — a fixed absolute budget useful for comparing schemes
// of different total communication (skip lets the attack bypass, e.g.,
// the randomness-exchange preamble).
func NewFixedDeletions(from, to int, skip, count int) Adversary {
	a := adversary.NewFixedDeletions(channel.Link{From: graph.Node(from), To: graph.Node(to)}, count)
	a.Skip = skip
	return a
}
