package mpic_test

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"mpic"
)

// The external registrations below live at package test scope — outside
// package mpic — so they double as the "pluggable from outside the
// module" proof for the registry API (examples/customnoise is the
// compiled-example counterpart).
func init() {
	if err := mpic.RegisterTopology("test-double-line", func(n int) (*mpic.Graph, error) {
		// A line with an extra chord 0-2.
		g := mpic.NewGraph(n)
		for i := 0; i+1 < n; i++ {
			if err := g.AddEdge(mpic.Node(i), mpic.Node(i+1)); err != nil {
				return nil, err
			}
		}
		if n > 2 {
			if err := g.AddEdge(0, 2); err != nil {
				return nil, err
			}
		}
		if err := g.Validate(); err != nil {
			return nil, err
		}
		return g, nil
	}); err != nil {
		panic(err)
	}
	if err := mpic.RegisterWorkload("test-sparse", mpic.WorkloadDef{
		Build: func(g *mpic.Graph, rounds int, seed int64) (mpic.Protocol, error) {
			return mpic.NewWorkload("random", g, rounds/2, seed)
		},
	}); err != nil {
		panic(err)
	}
	if err := mpic.RegisterNoise("test-quiet", func(rate float64) mpic.NoiseSpec {
		return nil // registered name for "no noise at any rate"
	}); err != nil {
		panic(err)
	}
}

// TestRegistryDuplicateAndInvalid pins the registration error contract.
func TestRegistryDuplicateAndInvalid(t *testing.T) {
	if err := mpic.RegisterTopology("line", func(n int) (*mpic.Graph, error) { return nil, nil }); err == nil {
		t.Error("duplicate topology registration accepted")
	}
	if err := mpic.RegisterWorkload("random", mpic.WorkloadDef{Build: func(g *mpic.Graph, r int, s int64) (mpic.Protocol, error) { return nil, nil }}); err == nil {
		t.Error("duplicate workload registration accepted")
	}
	if err := mpic.RegisterNoise("random", func(rate float64) mpic.NoiseSpec { return nil }); err == nil {
		t.Error("duplicate noise registration accepted")
	}
	if err := mpic.RegisterTopology("", func(n int) (*mpic.Graph, error) { return nil, nil }); err == nil {
		t.Error("empty topology name accepted")
	}
	if err := mpic.RegisterTopology("no-builder", nil); err == nil {
		t.Error("nil topology builder accepted")
	}
	if err := mpic.RegisterWorkload("no-builder", mpic.WorkloadDef{}); err == nil {
		t.Error("workload without builder accepted")
	}
	if err := mpic.RegisterNoise("no-family", nil); err == nil {
		t.Error("nil noise family accepted")
	}
}

// TestRegistryUnknownNames pins the lookup error contract: unknown names
// fail with an error that lists what is registered.
func TestRegistryUnknownNames(t *testing.T) {
	if _, err := mpic.NewTopology("nope", 4); err == nil || !strings.Contains(err.Error(), "line") {
		t.Errorf("unknown topology error should list registered names, got %v", err)
	}
	g, err := mpic.NewTopology("line", 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mpic.NewWorkload("nope", g, 10, 1); err == nil || !strings.Contains(err.Error(), "random") {
		t.Errorf("unknown workload error should list registered names, got %v", err)
	}
	if _, err := mpic.Noise("nope", 0.1); err == nil || !strings.Contains(err.Error(), "burst") {
		t.Errorf("unknown noise error should list registered names, got %v", err)
	}
}

// TestRegistryNamesSorted pins the Names accessors.
func TestRegistryNamesSorted(t *testing.T) {
	for _, tc := range []struct {
		kind  string
		names []string
		want  string
	}{
		{"topology", mpic.TopologyNames(), "test-double-line"},
		{"workload", mpic.WorkloadNames(), "test-sparse"},
		{"noise", mpic.NoiseNames(), "test-quiet"},
	} {
		if !sort.StringsAreSorted(tc.names) {
			t.Errorf("%s names unsorted: %v", tc.kind, tc.names)
		}
		found := false
		for _, n := range tc.names {
			if n == tc.want {
				found = true
			}
		}
		if !found {
			t.Errorf("%s names missing external registration %q: %v", tc.kind, tc.want, tc.names)
		}
	}
}

// TestExternalRegistrationsRun drives the three test-scope registrations
// through both the typed and the legacy surface.
func TestExternalRegistrationsRun(t *testing.T) {
	res, err := mpic.Run(mpic.Config{
		Topology: "test-double-line", N: 5,
		Workload: "test-sparse", WorkloadRounds: 60,
		Noise: "test-quiet", NoiseRate: 0.5,
		Seed: 3, IterFactor: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("external-registration run failed: G*=%d/%d", res.GStar, res.NumChunks)
	}
	typed, err := mpic.RunScenario(context.Background(), mpic.Scenario{
		Topology: mpic.Topology("test-double-line", 5),
		Workload: mpic.Workload("test-sparse", 60),
		Seed:     3, IterFactor: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, res, typed)
}

// ExampleRegisterNoise shows third-party noise registration end to end.
func ExampleRegisterNoise() {
	err := mpic.RegisterNoise("example-drop-none", func(rate float64) mpic.NoiseSpec {
		return mpic.NoiseFunc("example-drop-none", func(env mpic.NoiseEnv) (mpic.WiredNoise, error) {
			return mpic.WiredNoise{Adversary: mpic.NewFixedDeletions(0, 1, 0, 0)}, nil
		})
	})
	if err != nil {
		fmt.Println("register:", err)
		return
	}
	res, runErr := mpic.Run(mpic.Config{
		Topology: "line", N: 4, Noise: "example-drop-none", Seed: 1, IterFactor: 10,
	})
	if runErr != nil {
		fmt.Println("run:", runErr)
		return
	}
	fmt.Println("success:", res.Success)
	// Output:
	// success: true
}
