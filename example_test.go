package mpic_test

import (
	"context"
	"fmt"

	"mpic"
)

// The primary entry point: a typed Scenario executed by a Runner. The
// Runner can be reused — it keeps per-link hash buffers warm across runs
// — and honors context cancellation.
func ExampleRunner_Run() {
	runner := mpic.NewRunner()
	defer runner.Close()
	res, err := runner.Run(context.Background(), mpic.Scenario{
		Topology: mpic.Ring(5),
		Workload: mpic.RandomTraffic(60),
		Scheme:   mpic.AlgorithmA,
		Noise:    mpic.RandomNoise(0.001),
		Seed:     1,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("success:", res.Success)
	// Output:
	// success: true
}

// Runner.Sweep batches a cartesian grid — here party counts × noise
// rates — and aggregates per-cell statistics.
func ExampleRunner_Sweep() {
	runner := mpic.NewRunner()
	defer runner.Close()
	cells, err := runner.Sweep(context.Background(), mpic.Sweep{
		Base: mpic.Scenario{
			Topology:   mpic.Line(4),
			Workload:   mpic.RandomTraffic(40),
			Noise:      mpic.RandomNoise(0),
			Seed:       2,
			IterFactor: 15,
		},
		N:      []int{4, 5},
		Rates:  []float64{0, 0.001},
		Trials: 2,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	noiseless := 0
	for _, c := range cells {
		if c.Rate == 0 && c.Successes == c.Trials {
			noiseless++
		}
	}
	fmt.Printf("cells: %d, noiseless cells fully successful: %d\n", len(cells), noiseless)
	// Output:
	// cells: 4, noiseless cells fully successful: 2
}

// The simplest use: protect a built-in workload over a noisy line with
// Algorithm A and check the run against the noiseless reference.
func ExampleRun() {
	res, err := mpic.Run(mpic.Config{
		Topology:  "line",
		N:         5,
		Workload:  "random",
		Scheme:    mpic.AlgorithmA,
		Noise:     "random",
		NoiseRate: 0.001,
		Seed:      1,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("success:", res.Success)
	// Output:
	// success: true
}

// Baselines run the same workload without interactive coding, for
// comparison tables.
func ExampleRunUncoded() {
	res, err := mpic.RunUncoded(mpic.Config{
		Topology: "ring",
		N:        4,
		Seed:     2,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("success: %v, blowup: %.0fx\n", res.Success, res.Blowup)
	// Output:
	// success: true, blowup: 1x
}

// Advanced use: explicit parameters and a custom adversary via
// RunProtocol.
func ExampleRunProtocol() {
	g, err := mpic.NewTopology("star", 5)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	proto, err := mpic.NewWorkload("random", g, 60, 3)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	params := mpic.ParamsFor(mpic.Algorithm1, g)
	params.CRSKey = 3
	// Delete 5 payload bits on the link 0→1.
	adv := mpic.NewFixedDeletions(0, 1, 10, 5)
	res, err := mpic.RunProtocol(proto, params, adv, false)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("success: %v after %d corruptions\n",
		res.Success, res.Metrics.TotalCorruptions())
	// Output:
	// success: true after 5 corruptions
}
