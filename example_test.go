package mpic_test

import (
	"fmt"

	"mpic"
)

// The simplest use: protect a built-in workload over a noisy line with
// Algorithm A and check the run against the noiseless reference.
func ExampleRun() {
	res, err := mpic.Run(mpic.Config{
		Topology:  "line",
		N:         5,
		Workload:  "random",
		Scheme:    mpic.AlgorithmA,
		Noise:     "random",
		NoiseRate: 0.001,
		Seed:      1,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("success:", res.Success)
	// Output:
	// success: true
}

// Baselines run the same workload without interactive coding, for
// comparison tables.
func ExampleRunUncoded() {
	res, err := mpic.RunUncoded(mpic.Config{
		Topology: "ring",
		N:        4,
		Seed:     2,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("success: %v, blowup: %.0fx\n", res.Success, res.Blowup)
	// Output:
	// success: true, blowup: 1x
}

// Advanced use: explicit parameters and a custom adversary via
// RunProtocol.
func ExampleRunProtocol() {
	g, err := mpic.NewTopology("star", 5)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	proto, err := mpic.NewWorkload("random", g, 60, 3)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	params := mpic.ParamsFor(mpic.Algorithm1, g)
	params.CRSKey = 3
	// Delete 5 payload bits on the link 0→1.
	adv := mpic.NewFixedDeletions(0, 1, 10, 5)
	res, err := mpic.RunProtocol(proto, params, adv, false)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("success: %v after %d corruptions\n",
		res.Success, res.Metrics.TotalCorruptions())
	// Output:
	// success: true after 5 corruptions
}
