package mpic

import (
	"fmt"

	"mpic/internal/baseline"
	"mpic/internal/core"
)

// Config describes a run in terms of registered building-block names —
// the legacy string-keyed surface, kept as a thin shim over Scenario.
// Every name is parsed through the same registries the typed specs use,
// and a Config run is bit-identical to the equivalent Scenario run (and
// to pre-Scenario releases, pinned by core's TestRunFixedSeedPinned).
// New code should build a Scenario directly.
type Config struct {
	// Topology is a registered topology family (TopologyNames lists
	// them; the built-ins are "line", "ring", "star", "clique", "tree",
	// "random"). Empty defaults to "line" — except for workloads that fix
	// their topology (see Workload), where empty selects that fixed
	// family and any other explicit value is an error.
	Topology string
	// N is the number of parties.
	N int
	// Workload is a registered workload (WorkloadNames lists them; the
	// built-ins are "random", "dense", "phase-king", "pipelined-line",
	// "tree-sum", "token-ring"). "pipelined-line", "token-ring" and
	// "phase-king" are fixed to the "line", "ring" and "clique"
	// topologies respectively.
	Workload string
	// WorkloadRounds scales the workload (defaults to 30·N).
	WorkloadRounds int
	// Scheme selects the coding scheme (default AlgorithmA).
	Scheme Scheme
	// Noise is a registered noise model (NoiseNames lists them; the
	// built-ins are "none", "random", "burst", "adaptive").
	Noise string
	// NoiseRate is the corruption budget as a fraction of total
	// communication (the paper's µ).
	NoiseRate float64
	// Seed makes the run reproducible (inputs, noise, and randomness).
	Seed int64
	// IterFactor bounds iterations at IterFactor·|Π| (default 100, the
	// paper's constant).
	IterFactor int
	// Faithful disables the oracle's early stop, running all
	// IterFactor·|Π| iterations like the paper's protocol.
	Faithful bool
	// Parallel enables the concurrent network executor.
	Parallel bool
	// HashMode selects the prefix-hash seed discipline by name: "epoch"
	// (or empty — the default epoch-refresh fast path), "legacy" (the
	// paper-faithful per-iteration reseeding), or "incremental" (the
	// never-refreshed checkpoint path). See core.Params.HashMode.
	HashMode string
	// EpochRefresh is the refresh interval R of the "epoch" mode in
	// iterations (0 selects the default; ignored by the other modes).
	EpochRefresh int
	// IncrementalHash routes the meeting-points prefix hashes through
	// rewind-aware incremental checkpoints: Θ(growth) hash work per
	// iteration instead of Θ(transcript), at the cost of rewind-stable
	// (rather than per-iteration fresh) prefix-hash seeds.
	//
	// Deprecated: set HashMode to "incremental" instead. On its own the
	// bool keeps working; combined with a contradictory HashMode it is a
	// HashModeConflictError.
	IncrementalHash bool
}

// Scenario parses the Config's names through the registries into the
// typed Scenario the legacy surface is a shim for. A workload with a
// fixed topology rejects a conflicting explicit Topology instead of
// silently overriding it.
func (cfg Config) Scenario() (Scenario, error) {
	n := cfg.N
	if n == 0 {
		n = 6
	}
	workloadName := cfg.Workload
	if workloadName == "" {
		workloadName = "random"
	}
	def, err := workloads.lookup(workloadName)
	if err != nil {
		return Scenario{}, err
	}
	topoName := cfg.Topology
	if def.FixedTopology != "" {
		if topoName != "" && topoName != def.FixedTopology {
			return Scenario{}, fmt.Errorf(
				"mpic: workload %q runs only on the %q topology, got explicit %q (leave Topology empty to accept the default)",
				workloadName, def.FixedTopology, topoName)
		}
		topoName = def.FixedTopology
	} else if topoName == "" {
		topoName = "line"
	}
	noise, err := Noise(cfg.Noise, cfg.NoiseRate)
	if err != nil {
		return Scenario{}, err
	}
	mode, err := ParseHashMode(cfg.HashMode)
	if err != nil {
		return Scenario{}, err
	}
	return Scenario{
		Topology:        Topology(topoName, n),
		Workload:        Workload(workloadName, cfg.WorkloadRounds),
		Scheme:          cfg.Scheme,
		Noise:           noise,
		Seed:            cfg.Seed,
		IterFactor:      cfg.IterFactor,
		Faithful:        cfg.Faithful,
		Parallel:        cfg.Parallel,
		HashMode:        mode,
		EpochRefresh:    cfg.EpochRefresh,
		IncrementalHash: cfg.IncrementalHash,
	}, nil
}

// Run executes the coded simulation described by cfg and verifies it
// against a noiseless reference execution of the same workload.
func Run(cfg Config) (*Result, error) {
	sc, err := cfg.Scenario()
	if err != nil {
		return nil, err
	}
	opts, err := sc.options()
	if err != nil {
		return nil, err
	}
	return core.Run(opts)
}

// RunUncoded executes the workload of cfg directly over the noisy
// network — the fragile baseline. Only the protocol and the oblivious
// adversary are materialized; no coding-scheme state is built.
func RunUncoded(cfg Config) (*BaselineResult, error) {
	sc, err := cfg.Scenario()
	if err != nil {
		return nil, err
	}
	proto, adv, err := sc.baseline()
	if err != nil {
		return nil, err
	}
	return baseline.RunUncoded(proto, adv)
}

// RunNaiveFEC executes the workload with per-transmission repetition
// coding (an odd factor rep ≥ 1) — the feedback-free baseline. Like
// RunUncoded it materializes only the protocol and the adversary.
func RunNaiveFEC(cfg Config, rep int) (*BaselineResult, error) {
	sc, err := cfg.Scenario()
	if err != nil {
		return nil, err
	}
	proto, adv, err := sc.baseline()
	if err != nil {
		return nil, err
	}
	return baseline.RunNaiveFEC(proto, adv, rep)
}
