package mpic

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"mpic/internal/cores"
)

// GridKey identifies one cell of a grid by its (n, scheme, rate, delay)
// coordinates — the explicit key streaming consumers and resumed runs
// merge on, instead of relying on cell order.
type GridKey struct {
	// N is the party count of the cell's topology.
	N int
	// Scheme is the coding scheme the cell runs.
	Scheme Scheme
	// Rate is the cell's noise rate; meaningful only for grids built over
	// a rate axis (zero otherwise).
	Rate float64
	// Delay is the cell's delay-model name; "" means the lockstep
	// network (so pre-delay grids keep their exact keys).
	Delay string `json:",omitempty"`
}

// GridCell is one executable point of a Grid: a complete scenario, the
// number of trial seeds to aggregate, and the key its aggregate is
// reported under.
//
// Seed derivation is the engine's determinism anchor: trial t of a cell
// runs at Scenario.Seed + t·SeedStep, a pure function of the cell's own
// spec. No shared counter, RNG, or scheduling state ever feeds a run, so
// executing the same grid sequentially, in parallel, shuffled, or across
// a checkpoint/resume boundary produces bit-identical cells. Builders
// that want per-cell seed diversity salt Scenario.Seed when they lay out
// the grid (deterministically, e.g. from the cell's coordinates) — never
// at execution time.
type GridCell struct {
	// Key identifies the cell's aggregate. Zero fields are filled in by
	// the engine from the scenario — N from the topology's party count,
	// Scheme from the scenario's scheme (AlgorithmA if that too is
	// unset); Rate keeps whatever the builder put there.
	Key GridKey
	// Scenario is the cell's base scenario; Seed is re-derived per trial.
	Scenario Scenario
	// Trials is the number of seeds to aggregate. Zero means 1 (the
	// documented default); a negative count is a spec error RunGrid
	// rejects before anything runs.
	Trials int
	// SeedStep is the per-trial seed stride (default 1).
	SeedStep int64
}

// Grid is a batch of scenario cells for the streaming parallel engine.
// Cells are independent by construction (see GridCell on seed
// derivation), which is what lets the engine hand them to a worker pool
// without changing any result.
type Grid struct {
	// Cells are the grid points, in definition order.
	Cells []GridCell
	// Workers bounds the number of cells executing concurrently; 0 means
	// GOMAXPROCS, 1 forces sequential execution. A negative count is a
	// spec error RunGrid rejects before anything runs. Results are
	// identical at any valid setting — only wall-clock and completion
	// order change.
	Workers int
	// KeepResults retains every trial's full *Result on the streamed
	// GridCellResult — for consumers that need per-run detail (potential
	// trajectories, round counts) beyond the SweepCell aggregate. Off by
	// default: a long grid's Results would otherwise pin every
	// transcript's metrics in memory. With a Store set, a KeepResults
	// grid also persists the serializable core of each trial's Result
	// (see StoredResult), so restored cells stream their Results back and
	// trajectory consumers resume without re-running — minus the fields a
	// checkpoint cannot carry (Outputs, Arena).
	KeepResults bool
	// Store, when non-nil, makes the grid a durable session: completed
	// cells already persisted under this grid's spec are restored (and
	// streamed, marked Restored) instead of re-run, and every cell the
	// engine completes is persisted the moment it finishes — so a
	// cancelled or crashed grid resumes from exactly the cells it got
	// through. Resumed and uninterrupted runs produce bit-identical
	// cells (see GridCell on seed derivation). A Load or Save error
	// aborts the grid.
	Store GridStore
	// Spec is the fingerprint the Store keys this grid's state under; a
	// store holding a different spec refuses to resume. Empty means
	// Fingerprint() — set it explicitly when the grid's identity lives
	// outside what a fingerprint can see (CLI flags, Tune closures,
	// custom builders).
	Spec string
	// Progress, when non-nil, receives the grid's fine-grained progress
	// stream: per-trial starts, per-iteration ticks, per-trial results,
	// cell completions, restores, retries, and failures. Progress calls
	// are serialized with each other (one at a time, happens-before
	// ordered) across all workers, so the callback may write to its own
	// shared state without locking — but they are NOT serialized with
	// GridSink calls: at Workers > 1 a progress event can fire while
	// another cell's sink delivery is in flight, so state shared between
	// the two callbacks needs its own lock. A slow callback stalls the
	// runs that feed it. See NewProgressLog for a ready-made sink.
	Progress GridProgressFunc
	// Retry is the per-cell retry policy. The zero value runs each cell
	// once; with MaxAttempts > 1 a failed cell (run error or recovered
	// panic) is re-run up to that many times under capped exponential
	// backoff with deterministic jitter. Retried attempts re-derive the
	// exact same trial seeds, so a cell that fails transiently and then
	// succeeds is bit-identical to one that succeeded first try.
	// Cancellation is never retried.
	Retry RetryPolicy
	// OnCellError selects what a cell failure (after retries) does to the
	// rest of the grid: FailFast (the default) cancels the grid and
	// returns the cell's error; QuarantineCells keeps going, streams the
	// failed cell with GridCellResult.Err set, and reports every
	// quarantined cell in the *GridFailure the run returns.
	OnCellError CellErrorMode
}

// CellErrorMode selects Grid.OnCellError behavior.
type CellErrorMode int

const (
	// FailFast cancels the grid on the first cell failure — the default,
	// and the right mode when any failure invalidates the whole batch.
	FailFast CellErrorMode = iota
	// QuarantineCells finishes the grid despite cell failures: failed
	// cells stream through the sink with Err set (and are NOT persisted
	// to the session store, so a resumed run re-attempts them), healthy
	// cells complete normally, and RunGrid returns a *GridFailure
	// reporting the quarantined cells.
	QuarantineCells
)

// RetryPolicy configures per-cell retries for RunGrid. All scheduling is
// deterministic: the backoff for (cell, attempt) is a pure function of
// the policy, so a retried grid is reproducible end to end.
type RetryPolicy struct {
	// MaxAttempts is the total number of times a cell may run; 0 or 1
	// means no retries. A negative count is a spec error RunGrid rejects
	// before anything runs.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt, doubling per
	// subsequent attempt (0 means 10ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (0 means 1s).
	MaxDelay time.Duration
	// JitterSeed feeds the deterministic jitter: the actual backoff is
	// uniform in [delay/2, delay), picked by (JitterSeed, cell, attempt).
	// Two runs with the same seed sleep identically.
	JitterSeed int64
	// Sleep replaces the backoff sleep (tests use a recording stub); nil
	// means time.Sleep.
	Sleep func(time.Duration)
}

// delay returns the deterministic jittered backoff after the given
// failed attempt (1-based) of the given cell: capped doubling of
// BaseDelay, then uniform in [d/2, d) so concurrent retries decorrelate
// without losing reproducibility.
func (p RetryPolicy) delay(cell, attempt int) time.Duration {
	d := p.BaseDelay
	if d <= 0 {
		d = 10 * time.Millisecond
	}
	maxDelay := p.MaxDelay
	if maxDelay <= 0 {
		maxDelay = time.Second
	}
	for i := 1; i < attempt && d < maxDelay; i++ {
		d *= 2
	}
	if d > maxDelay {
		d = maxDelay
	}
	return d/2 + time.Duration(jitterFrac(p.JitterSeed, cell, attempt)*float64(d/2))
}

// sleep pays one backoff through the policy's sleeper.
func (p RetryPolicy) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if p.Sleep != nil {
		p.Sleep(d)
		return
	}
	time.Sleep(d)
}

// jitterFrac maps (seed, cell, attempt) to a uniform [0,1) fraction via
// a splitmix64 finalizer — deterministic, and decorrelated across cells
// and attempts.
func jitterFrac(seed int64, cell, attempt int) float64 {
	x := uint64(seed) ^ uint64(cell)*0x9e3779b97f4a7c15 ^ uint64(attempt)*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(uint64(1)<<53)
}

// CellPanicError is a panic recovered inside a grid cell — from a
// protocol, an observer, or a Tune closure — converted into an ordinary
// cell error so one poisoned cell cannot take down the whole process.
// It participates in retries and quarantine like any other cell error.
type CellPanicError struct {
	// Cell is the cell's index in Grid.Cells; Key its identity.
	Cell int
	Key  GridKey
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

// Error implements error.
func (e *CellPanicError) Error() string {
	return fmt.Sprintf("mpic: grid cell %d (n=%d scheme=%v rate=%g) panicked: %v",
		e.Cell, e.Key.N, e.Key.Scheme, e.Key.Rate, e.Value)
}

// GridReport summarizes a finished grid run for quarantine-mode
// consumers: how much completed, and exactly which cells failed.
type GridReport struct {
	// Cells is the grid size.
	Cells int
	// Completed counts cells that finished successfully this run
	// (excluding restored ones).
	Completed int
	// Restored counts cells replayed from the session store.
	Restored int
	// Failed holds the quarantined cells in completion order, each with
	// Err and Attempts set. Failed cells are never persisted to the
	// session store, so a resumed run re-attempts them.
	Failed []GridCellResult
}

// GridFailure is the error RunGrid returns when a quarantine-mode grid
// finishes with failed cells: the grid ran to completion, the healthy
// cells are valid (and persisted, for durable sessions), and Report says
// what failed. Callers distinguish this partial success from a hard
// failure with errors.As.
type GridFailure struct {
	Report GridReport
}

// Error implements error.
func (e *GridFailure) Error() string {
	n := len(e.Report.Failed)
	first := e.Report.Failed[0]
	return fmt.Sprintf("mpic: grid finished with %d of %d cells failed (first: cell %d after %d attempt(s): %v)",
		n, e.Report.Cells, first.Index, first.Attempts, first.Err)
}

// Unwrap exposes the first failed cell's error to errors.Is/As.
func (e *GridFailure) Unwrap() error { return e.Report.Failed[0].Err }

// GridEvent identifies the kind of a GridProgress event.
type GridEvent int

const (
	// GridCellRestored: the cell was replayed from the session's Store
	// instead of executed (identity fields only).
	GridCellRestored GridEvent = iota
	// GridTrialStart: a trial is about to execute its first round; Info
	// carries the run's phase layout and iteration budget.
	GridTrialStart
	// GridIteration: the trial finished one iteration; Iteration is its
	// 0-based index and Stats the live per-iteration snapshot.
	GridIteration
	// GridTrialDone: the trial finished; Result is its outcome.
	GridTrialDone
	// GridCellDone: every trial of the cell finished (identity fields
	// only — the aggregate streams through the GridSink).
	GridCellDone
	// GridCellRetrying: an attempt of the cell failed and the engine is
	// about to back off and re-run it; Err is the attempt's error and
	// Attempt its 1-based number.
	GridCellRetrying
	// GridCellFailed: the cell exhausted its attempts under
	// Grid.OnCellError == QuarantineCells; Err is the final error and
	// Attempt the total attempts made.
	GridCellFailed
)

// String names the event for logs and tests.
func (e GridEvent) String() string {
	switch e {
	case GridCellRestored:
		return "cell-restored"
	case GridTrialStart:
		return "trial-start"
	case GridIteration:
		return "iteration"
	case GridTrialDone:
		return "trial-done"
	case GridCellDone:
		return "cell-done"
	case GridCellRetrying:
		return "cell-retrying"
	case GridCellFailed:
		return "cell-failed"
	default:
		return fmt.Sprintf("GridEvent(%d)", int(e))
	}
}

// GridProgress is one event of a grid's progress stream — "trial k of
// cell j, iteration i" — built from the run-level Observer hooks the
// engine threads through every trial it executes.
type GridProgress struct {
	// Event says what happened; the fields below it are valid per event
	// kind (see the GridEvent constants).
	Event GridEvent
	// Cell is the cell's index in Grid.Cells; Cells the grid size.
	Cell, Cells int
	// Key is the cell's (n, scheme, rate) identity.
	Key GridKey
	// Trial is the 0-based trial within the cell; Trials the cell's
	// trial count. Trial is meaningful for trial-scoped events only.
	Trial, Trials int
	// Iteration is the 0-based iteration index of a GridIteration event.
	Iteration int
	// Info is the run's phase layout for GridTrialStart events (nil
	// otherwise); Info.Iterations is the trial's iteration budget.
	Info *RunInfo
	// Stats is the live per-iteration snapshot of a GridIteration event
	// (nil otherwise). Like any Observer payload it is engine-owned and
	// read-only, valid only for the duration of the callback.
	Stats *IterationStats
	// Result is the trial's outcome for GridTrialDone events (nil
	// otherwise).
	Result *Result
	// Err is the cell's error for GridCellRetrying and GridCellFailed
	// events (nil otherwise).
	Err error
	// Attempt is the 1-based attempt number for GridCellRetrying (the
	// attempt that just failed) and GridCellFailed (total attempts made);
	// zero otherwise.
	Attempt int
}

// GridProgressFunc receives serialized progress events; see
// Grid.Progress.
type GridProgressFunc func(GridProgress)

// GridCellResult is one completed cell, streamed to the sink as soon as
// its trials finish — before the rest of the grid completes.
type GridCellResult struct {
	// Index is the cell's position in Grid.Cells (completion order is
	// nondeterministic under parallelism; Index and Key are not).
	Index int
	// Key is the cell's identity, echoed (or derived) from the spec.
	Key GridKey
	// Cell is the aggregate over the cell's trials.
	Cell SweepCell
	// Results holds the per-trial results when Grid.KeepResults is set,
	// in trial order; nil otherwise. Restored cells rebuild Results from
	// the session store when it persisted them (KeepResults sessions do;
	// restored results carry nil Outputs and Arena — see StoredResult).
	Results []*Result
	// Restored marks a cell replayed from the session's Store rather
	// than executed this run.
	Restored bool
	// Err is the cell's final error for quarantined cells (Grid.
	// OnCellError == QuarantineCells); nil for healthy cells. A cell with
	// Err set carries no aggregate and is not persisted.
	Err error
	// Attempts is how many times the cell ran (1 for first-try successes
	// and restored cells report 0); with retries enabled it counts the
	// attempts actually spent.
	Attempts int
}

// GridSink receives completed cells. The engine serializes calls (one
// sink invocation at a time, happens-before ordered), so a sink may
// write to shared state without its own locking; it must not block for
// long, since a blocked sink stalls the worker that completed the cell.
type GridSink func(GridCellResult)

// validate rejects spec errors before anything runs: the engine clamps
// documented zero values (Workers 0 → GOMAXPROCS, Trials 0 → 1) but a
// negative count is a bug in the caller's grid construction, not a
// request for a default.
func (g Grid) validate() error {
	if g.Workers < 0 {
		return fmt.Errorf("mpic: Grid.Workers is %d; negative worker counts are invalid (0 means GOMAXPROCS, 1 forces sequential)", g.Workers)
	}
	if g.Retry.MaxAttempts < 0 {
		return fmt.Errorf("mpic: Grid.Retry.MaxAttempts is %d; negative attempt counts are invalid (0 means run once)", g.Retry.MaxAttempts)
	}
	if g.Retry.BaseDelay < 0 || g.Retry.MaxDelay < 0 {
		return fmt.Errorf("mpic: Grid.Retry delays must be non-negative (BaseDelay %v, MaxDelay %v)", g.Retry.BaseDelay, g.Retry.MaxDelay)
	}
	if g.OnCellError != FailFast && g.OnCellError != QuarantineCells {
		return fmt.Errorf("mpic: Grid.OnCellError is %d; valid modes are FailFast (0) and QuarantineCells (1)", g.OnCellError)
	}
	for i, c := range g.Cells {
		if c.Trials < 0 {
			return fmt.Errorf("mpic: grid cell %d has Trials %d; negative trial counts are invalid (0 means 1)", i, c.Trials)
		}
	}
	return nil
}

// progressEmitter serializes progress events across workers.
type progressEmitter struct {
	mu sync.Mutex
	fn GridProgressFunc
}

func (p *progressEmitter) emit(ev GridProgress) {
	p.mu.Lock()
	// Unlock by defer: an injected or genuine panic unwinding out of a
	// run (through the observer that feeds this emitter) must not leave
	// the emitter locked, or the recovery path's own events would
	// deadlock.
	defer p.mu.Unlock()
	p.fn(ev)
}

// trialProgress forwards one trial's Observer callbacks into the grid's
// progress stream — the bridge from the run-level RunStart/Iteration/
// RunEnd hooks to serialized GridProgress events.
type trialProgress struct {
	emit func(GridProgress)
	base GridProgress // identity template: cell, key, trial
}

// RunStarted implements RunStartObserver.
func (t *trialProgress) RunStarted(info RunInfo) {
	ev := t.base
	ev.Event = GridTrialStart
	ev.Info = &info
	t.emit(ev)
}

// IterationDone implements Observer.
func (t *trialProgress) IterationDone(st IterationStats) {
	ev := t.base
	ev.Event = GridIteration
	ev.Iteration = st.Iteration
	ev.Stats = &st
	t.emit(ev)
}

// RunDone implements RunEndObserver.
func (t *trialProgress) RunDone(res *Result) {
	ev := t.base
	ev.Event = GridTrialDone
	ev.Result = res
	t.emit(ev)
}

// gridSession is the engine-side state of a durable grid: the resolved
// spec, the store, and every completed cell (restored and fresh) in the
// order they were persisted.
type gridSession struct {
	store    GridStore
	spec     string
	cells    []StoredCell
	restored []GridCellResult
}

// save persists the session's completed cells.
func (s *gridSession) save() error {
	if err := s.store.Save(s.spec, s.cells); err != nil {
		return fmt.Errorf("mpic: persisting grid checkpoint: %w", err)
	}
	return nil
}

// openSession loads the grid's persisted state and splits the cells into
// restored results and the indices still pending execution. Matching is
// two-pass: an entry whose recorded Index names a grid cell with the
// same key reclaims exactly that cell — so cells that share a key but
// differ in content (ablation variants, Tune sweeps, the cartesian fuzz
// grid) resume correctly whatever order the previous run completed them
// in. Entries without a usable index (a store written by another layout
// or a hand-edited file) fall back to key matching in definition order,
// which is the documented contract for identical duplicate keys.
func (g Grid) openSession() (*gridSession, []int, error) {
	spec := g.Spec
	if spec == "" {
		spec = g.Fingerprint()
	}
	saved, err := g.Store.Load(spec)
	if err != nil {
		return nil, nil, err
	}
	s := &gridSession{store: g.Store, spec: spec}
	byCell := make(map[int]StoredCell, len(saved))
	var keyed []StoredCell
	for _, e := range saved {
		_, taken := byCell[e.Index]
		if !taken && e.Index >= 0 && e.Index < len(g.Cells) && g.Cells[e.Index].key() == e.Key {
			byCell[e.Index] = e
			continue
		}
		keyed = append(keyed, e)
	}
	have := make(map[GridKey][]StoredCell, len(keyed))
	for _, e := range keyed {
		have[e.Key] = append(have[e.Key], e)
	}
	var pending []int
	for i, cell := range g.Cells {
		e, ok := byCell[i]
		if !ok {
			k := cell.key()
			entries := have[k]
			if len(entries) == 0 {
				pending = append(pending, i)
				continue
			}
			e = entries[0]
			have[k] = entries[1:]
		}
		e.Index = i
		s.cells = append(s.cells, e)
		res := GridCellResult{Index: i, Key: e.Key, Cell: e.Cell, Restored: true}
		if g.KeepResults {
			res.Results = restoreResults(e.Results)
		}
		s.restored = append(s.restored, res)
	}
	return s, pending, nil
}

// RunGrid executes every cell of the grid on a worker pool and streams
// each completed cell through sink (which may be nil). It returns after
// the whole grid finishes, the context is cancelled, or a cell fails —
// whichever comes first; on error, cells already streamed remain valid
// and the rest are abandoned.
//
// Cell failures are contained: a panic inside a cell is recovered into a
// *CellPanicError, Grid.Retry re-runs failed cells (bit-identically —
// attempts re-derive the same trial seeds) under deterministic backoff,
// and Grid.OnCellError == QuarantineCells finishes the grid around
// unrecoverable cells, returning their inventory as a *GridFailure.
//
// With Grid.Store set the grid is a durable session: previously
// completed cells are restored and streamed first (in definition order,
// marked Restored), only the rest execute, and each fresh completion is
// persisted before it streams — a cancelled grid's store holds exactly
// the cells that finished. With Grid.Progress set, fine-grained events
// narrate execution inside each cell.
//
// Parallel execution is result-identical to sequential: each cell's
// trials depend only on the cell spec (see GridCell), and the Runner's
// arena is safe for concurrent draws. Scenario state shared between
// cells — Observers, a Tune closure mutating captured state — must be
// safe for concurrent use when Workers > 1.
func (r *Runner) RunGrid(ctx context.Context, g Grid, sink GridSink) error {
	if err := g.validate(); err != nil {
		return err
	}
	if len(g.Cells) == 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}

	var prog *progressEmitter
	if g.Progress != nil {
		prog = &progressEmitter{fn: g.Progress}
	}

	// Durable session: restore persisted cells before anything runs.
	var sess *gridSession
	var pending []int
	if g.Store != nil {
		var err error
		sess, pending, err = g.openSession()
		if err != nil {
			return err
		}
		for _, res := range sess.restored {
			if prog != nil {
				cell := g.Cells[res.Index]
				trials := cell.Trials
				if trials < 1 {
					trials = 1
				}
				prog.emit(GridProgress{
					Event: GridCellRestored,
					Cell:  res.Index, Cells: len(g.Cells),
					Key: res.Key, Trials: trials,
				})
			}
			if sink != nil {
				sink(res)
			}
		}
	} else {
		pending = make([]int, len(g.Cells))
		for i := range pending {
			pending[i] = i
		}
	}
	if len(pending) == 0 {
		return nil
	}

	workers := g.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pending) {
		workers = len(pending)
	}

	// The elastic worker split: one core-budget token pool, sized at
	// GOMAXPROCS, arbitrates between the cell workers here and the
	// round-level send pools inside each run. Every live cell worker
	// holds one token; a cell that hits a heavy round borrows whatever is
	// spare (nothing, while the grid saturates the machine; everything,
	// once the tail of the grid leaves cores idle). Cell results are
	// bit-identical at any borrow outcome — the budget only moves wall
	// clock around.
	budget := cores.NewBudget(runtime.GOMAXPROCS(0))

	// Cancelling the derived context on the first error stops the other
	// workers at their next run boundary without racing the caller's ctx.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next      atomic.Int64 // next pending slot to claim
		mu        sync.Mutex   // serializes sink calls, session saves, firstErr
		firstErr  error
		completed int
		failed    []GridCellResult
		wg        sync.WaitGroup
	)
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			budget.Acquire(1)
			defer budget.Release(1)
			for {
				slot := int(next.Add(1))
				if slot >= len(pending) || ctx.Err() != nil {
					return
				}
				i := pending[slot]
				res, err := r.runGridCellRetrying(ctx, g, i, prog, budget)
				mu.Lock()
				if err != nil && g.OnCellError == QuarantineCells && ctx.Err() == nil {
					// Quarantine: record and stream the failure, keep the
					// grid going. The cell is NOT persisted — a resumed
					// session re-attempts it.
					res.Err = err
					res.Results = nil
					res.Cell = SweepCell{N: res.Key.N, Scheme: res.Key.Scheme, Rate: res.Key.Rate, Delay: res.Key.Delay}
					failed = append(failed, res)
					if prog != nil {
						prog.emit(GridProgress{
							Event: GridCellFailed,
							Cell:  res.Index, Cells: len(g.Cells),
							Key: res.Key, Err: err, Attempt: res.Attempts,
						})
					}
					if sink != nil {
						sink(res)
					}
					mu.Unlock()
					continue
				}
				if err == nil && sess != nil {
					sess.cells = append(sess.cells, StoredCell{
						Index: res.Index, Key: res.Key, Cell: res.Cell,
						Results: storeResults(res.Results),
					})
					err = sess.save()
				}
				if err != nil {
					if firstErr == nil {
						firstErr = err
						cancel()
					}
					mu.Unlock()
					return
				}
				completed++
				if prog != nil {
					prog.emit(GridProgress{
						Event: GridCellDone,
						Cell:  res.Index, Cells: len(g.Cells),
						Key: res.Key, Trials: res.Cell.Trials,
					})
				}
				if sink != nil {
					sink(res)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if r != nil {
		st := budget.Stats()
		r.lastGridPool.Store(&st)
	}
	if sess != nil && (firstErr != nil || ctx.Err() != nil) {
		// Flush on any interrupted exit — including cancellations that
		// surface as a wrapped run error in firstErr, and cell failures.
		// Every completed cell was persisted as it finished, so this
		// re-save is a no-op for FileGridStore; it exists to make the
		// session's contract ("the store holds exactly the completed
		// cells") hold even for a store that batches its writes. A flush
		// failure never masks the original error.
		if err := sess.save(); err != nil && firstErr == nil {
			return err
		}
	}
	if firstErr != nil {
		return firstErr
	}
	if completed+len(failed) == len(pending) {
		// Every cell ran and streamed; a cancellation that landed after
		// the last one must not make the caller discard a complete grid.
		if len(failed) > 0 {
			restored := 0
			if sess != nil {
				restored = len(sess.restored)
			}
			return &GridFailure{Report: GridReport{
				Cells:     len(g.Cells),
				Completed: completed,
				Restored:  restored,
				Failed:    failed,
			}}
		}
		return nil
	}
	return ctx.Err()
}

// runGridCellRetrying runs one cell under the grid's retry policy: each
// attempt re-derives the same trial seeds (so a retried success is
// bit-identical to a first-try success), recovered panics count as
// ordinary attempt failures, and cancellation is returned immediately
// rather than retried.
func (r *Runner) runGridCellRetrying(ctx context.Context, g Grid, i int, prog *progressEmitter, budget *cores.Budget) (GridCellResult, error) {
	attempts := g.Retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var res GridCellResult
	var err error
	for attempt := 1; ; attempt++ {
		res, err = r.runGridCellOnce(ctx, g.Cells[i], i, len(g.Cells), g.KeepResults, prog, budget)
		res.Attempts = attempt
		if err == nil || ctx.Err() != nil || attempt >= attempts {
			return res, err
		}
		if prog != nil {
			prog.emit(GridProgress{
				Event: GridCellRetrying,
				Cell:  i, Cells: len(g.Cells),
				Key: res.Key, Err: err, Attempt: attempt,
			})
		}
		g.Retry.sleep(g.Retry.delay(i, attempt))
	}
}

// runGridCellOnce is one attempt of one cell, with panic containment: a
// panic anywhere inside the cell's trials — protocol code, noise
// closures, observers — comes back as a *CellPanicError instead of
// crashing the pool, so the retry and quarantine machinery can treat it
// like any other cell failure.
func (r *Runner) runGridCellOnce(ctx context.Context, cell GridCell, index, total int, keep bool, prog *progressEmitter, budget *cores.Budget) (res GridCellResult, err error) {
	key := cell.key()
	defer func() {
		if p := recover(); p != nil {
			// A panic skipped runGridCell's return: rebuild the cell's
			// identity so the failure is reported against the right cell.
			res = GridCellResult{
				Index: index, Key: key,
				Cell: SweepCell{N: key.N, Scheme: key.Scheme, Rate: key.Rate, Delay: key.Delay},
			}
			err = &CellPanicError{Cell: index, Key: key, Value: p, Stack: debug.Stack()}
		}
	}()
	return r.runGridCell(ctx, cell, index, total, keep, prog, budget)
}

// CollectGrid is RunGrid buffered into a slice: it runs the grid and
// returns the completed cells in definition order. Use RunGrid directly
// when you want the cells as they finish.
func (r *Runner) CollectGrid(ctx context.Context, g Grid) ([]GridCellResult, error) {
	out := make([]GridCellResult, len(g.Cells))
	err := r.RunGrid(ctx, g, func(res GridCellResult) {
		out[res.Index] = res
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// key resolves the cell's identity, deriving unset fields from the
// scenario so a partial key never mislabels results (a key claiming
// AlgorithmA while the scenario ran AlgorithmB would poison every
// key-based merge downstream).
func (c GridCell) key() GridKey {
	k := c.Key
	if k.N == 0 {
		k.N = c.Scenario.partyCount(c.Scenario.Topology)
	}
	if k.Scheme == 0 {
		k.Scheme = c.Scenario.Scheme
	}
	if k.Scheme == 0 {
		k.Scheme = AlgorithmA
	}
	if k.Delay == "" {
		k.Delay = delayKeyName(c.Scenario.Delay)
	}
	return k
}

// runGridCell executes one cell's trials and aggregates them.
func (r *Runner) runGridCell(ctx context.Context, cell GridCell, index, total int, keep bool, prog *progressEmitter, budget *cores.Budget) (GridCellResult, error) {
	key := cell.key()
	trials := cell.Trials
	if trials < 1 {
		trials = 1
	}
	step := cell.SeedStep
	if step == 0 {
		step = 1
	}
	out := GridCellResult{
		Index: index,
		Key:   key,
		Cell:  SweepCell{N: key.N, Scheme: key.Scheme, Rate: key.Rate, Delay: key.Delay},
	}
	agg := &out.Cell
	for trial := 0; trial < trials; trial++ {
		sc := cell.Scenario
		sc.Seed = cell.Scenario.Seed + int64(trial)*step
		if prog != nil {
			// The progress observer rides the same Observer hooks user
			// scenarios attach through; appending to a copy keeps the
			// cell's own observer list untouched across trials.
			tp := &trialProgress{emit: prog.emit, base: GridProgress{
				Cell: index, Cells: total,
				Key:   key,
				Trial: trial, Trials: trials,
			}}
			sc.Observers = append(append([]Observer(nil), sc.Observers...), tp)
		}
		res, err := r.runScenario(ctx, sc, budget)
		if err != nil {
			return out, fmt.Errorf("grid cell n=%d scheme=%v rate=%g trial=%d: %w",
				key.N, key.Scheme, key.Rate, trial, err)
		}
		agg.Trials++
		if res.Success {
			agg.Successes++
		}
		agg.Blowups = append(agg.Blowups, res.Blowup)
		agg.Iterations = append(agg.Iterations, float64(res.Iterations))
		agg.Corruptions += res.Metrics.TotalCorruptions()
		agg.Collisions += res.Metrics.HashCollisions
		agg.BrokenSeedLinks += res.BrokenSeedLinks
		if res.WhiteBox != nil {
			agg.WhiteBox.Tried += res.WhiteBox.Tried
			agg.WhiteBox.Landed += res.WhiteBox.Landed
		}
		if keep {
			out.Results = append(out.Results, res)
		}
	}
	return out, nil
}
