package mpic

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// GridKey identifies one cell of a grid by its (n, scheme, rate)
// coordinates — the explicit key streaming consumers and resumed runs
// merge on, instead of relying on cell order.
type GridKey struct {
	// N is the party count of the cell's topology.
	N int
	// Scheme is the coding scheme the cell runs.
	Scheme Scheme
	// Rate is the cell's noise rate; meaningful only for grids built over
	// a rate axis (zero otherwise).
	Rate float64
}

// GridCell is one executable point of a Grid: a complete scenario, the
// number of trial seeds to aggregate, and the key its aggregate is
// reported under.
//
// Seed derivation is the engine's determinism anchor: trial t of a cell
// runs at Scenario.Seed + t·SeedStep, a pure function of the cell's own
// spec. No shared counter, RNG, or scheduling state ever feeds a run, so
// executing the same grid sequentially, in parallel, shuffled, or across
// a checkpoint/resume boundary produces bit-identical cells. Builders
// that want per-cell seed diversity salt Scenario.Seed when they lay out
// the grid (deterministically, e.g. from the cell's coordinates) — never
// at execution time.
type GridCell struct {
	// Key identifies the cell's aggregate. Zero fields are filled in by
	// the engine from the scenario — N from the topology's party count,
	// Scheme from the scenario's scheme (AlgorithmA if that too is
	// unset); Rate keeps whatever the builder put there.
	Key GridKey
	// Scenario is the cell's base scenario; Seed is re-derived per trial.
	Scenario Scenario
	// Trials is the number of seeds to aggregate (default 1).
	Trials int
	// SeedStep is the per-trial seed stride (default 1).
	SeedStep int64
}

// Grid is a batch of scenario cells for the streaming parallel engine.
// Cells are independent by construction (see GridCell on seed
// derivation), which is what lets the engine hand them to a worker pool
// without changing any result.
type Grid struct {
	// Cells are the grid points, in definition order.
	Cells []GridCell
	// Workers bounds the number of cells executing concurrently; 0 means
	// GOMAXPROCS, 1 forces sequential execution. Results are identical
	// either way — only wall-clock and completion order change.
	Workers int
	// KeepResults retains every trial's full *Result on the streamed
	// GridCellResult — for consumers that need per-run detail (potential
	// trajectories, round counts) beyond the SweepCell aggregate. Off by
	// default: a long grid's Results would otherwise pin every
	// transcript's metrics in memory.
	KeepResults bool
}

// GridCellResult is one completed cell, streamed to the sink as soon as
// its trials finish — before the rest of the grid completes.
type GridCellResult struct {
	// Index is the cell's position in Grid.Cells (completion order is
	// nondeterministic under parallelism; Index and Key are not).
	Index int
	// Key is the cell's identity, echoed (or derived) from the spec.
	Key GridKey
	// Cell is the aggregate over the cell's trials.
	Cell SweepCell
	// Results holds the per-trial results when Grid.KeepResults is set,
	// in trial order; nil otherwise.
	Results []*Result
}

// GridSink receives completed cells. The engine serializes calls (one
// sink invocation at a time, happens-before ordered), so a sink may
// write to shared state without its own locking; it must not block for
// long, since a blocked sink stalls the worker that completed the cell.
type GridSink func(GridCellResult)

// RunGrid executes every cell of the grid on a worker pool and streams
// each completed cell through sink (which may be nil). It returns after
// the whole grid finishes, the context is cancelled, or a cell fails —
// whichever comes first; on error, cells already streamed remain valid
// and the rest are abandoned.
//
// Parallel execution is result-identical to sequential: each cell's
// trials depend only on the cell spec (see GridCell), and the Runner's
// arena is safe for concurrent draws. Scenario state shared between
// cells — Observers, a Tune closure mutating captured state — must be
// safe for concurrent use when Workers > 1.
func (r *Runner) RunGrid(ctx context.Context, g Grid, sink GridSink) error {
	if len(g.Cells) == 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers := g.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(g.Cells) {
		workers = len(g.Cells)
	}

	// Cancelling the derived context on the first error stops the other
	// workers at their next run boundary without racing the caller's ctx.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next      atomic.Int64 // next cell index to claim
		mu        sync.Mutex   // serializes sink calls and firstErr
		firstErr  error
		completed int
		wg        sync.WaitGroup
	)
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(g.Cells) || ctx.Err() != nil {
					return
				}
				res, err := r.runGridCell(ctx, g.Cells[i], i, g.KeepResults)
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
						cancel()
					}
					mu.Unlock()
					return
				}
				completed++
				if sink != nil {
					sink(res)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if completed == len(g.Cells) {
		// Every cell ran and streamed; a cancellation that landed after
		// the last one must not make the caller discard a complete grid.
		return nil
	}
	return ctx.Err()
}

// CollectGrid is RunGrid buffered into a slice: it runs the grid and
// returns the completed cells in definition order. Use RunGrid directly
// when you want the cells as they finish.
func (r *Runner) CollectGrid(ctx context.Context, g Grid) ([]GridCellResult, error) {
	out := make([]GridCellResult, len(g.Cells))
	err := r.RunGrid(ctx, g, func(res GridCellResult) {
		out[res.Index] = res
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// key resolves the cell's identity, deriving unset fields from the
// scenario so a partial key never mislabels results (a key claiming
// AlgorithmA while the scenario ran AlgorithmB would poison every
// key-based merge downstream).
func (c GridCell) key() GridKey {
	k := c.Key
	if k.N == 0 {
		k.N = c.Scenario.partyCount(c.Scenario.Topology)
	}
	if k.Scheme == 0 {
		k.Scheme = c.Scenario.Scheme
	}
	if k.Scheme == 0 {
		k.Scheme = AlgorithmA
	}
	return k
}

// runGridCell executes one cell's trials and aggregates them.
func (r *Runner) runGridCell(ctx context.Context, cell GridCell, index int, keep bool) (GridCellResult, error) {
	key := cell.key()
	trials := cell.Trials
	if trials < 1 {
		trials = 1
	}
	step := cell.SeedStep
	if step == 0 {
		step = 1
	}
	out := GridCellResult{
		Index: index,
		Key:   key,
		Cell:  SweepCell{N: key.N, Scheme: key.Scheme, Rate: key.Rate},
	}
	agg := &out.Cell
	for trial := 0; trial < trials; trial++ {
		sc := cell.Scenario
		sc.Seed = cell.Scenario.Seed + int64(trial)*step
		res, err := r.Run(ctx, sc)
		if err != nil {
			return out, fmt.Errorf("grid cell n=%d scheme=%v rate=%g trial=%d: %w",
				key.N, key.Scheme, key.Rate, trial, err)
		}
		agg.Trials++
		if res.Success {
			agg.Successes++
		}
		agg.Blowups = append(agg.Blowups, res.Blowup)
		agg.Iterations = append(agg.Iterations, float64(res.Iterations))
		agg.Corruptions += res.Metrics.TotalCorruptions()
		agg.Collisions += res.Metrics.HashCollisions
		agg.BrokenSeedLinks += res.BrokenSeedLinks
		if res.WhiteBox != nil {
			agg.WhiteBox.Tried += res.WhiteBox.Tried
			agg.WhiteBox.Landed += res.WhiteBox.Landed
		}
		if keep {
			out.Results = append(out.Results, res)
		}
	}
	return out, nil
}
