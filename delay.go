package mpic

import (
	"fmt"
	"strconv"
	"strings"

	"mpic/internal/network"
)

// DelayModel assigns per-symbol flight delays on the virtual-time
// network; see internal/network's DelayModel for the contract (pure,
// positive, measured in round-periods).
type DelayModel = network.DelayModel

// NetFaults is a network-fault schedule: link outage windows, delay
// spikes, straggler parties, and crash-stop/restart parties, every
// decision a pure function of its seed. A nil *NetFaults means a
// fault-free network. The zero value of each knob is "off"; see the
// field docs on network.FaultSchedule.
type NetFaults = network.FaultSchedule

// DelayEnv is the deterministic context a DelaySpec is wired in.
type DelayEnv struct {
	// Graph is the scenario's topology.
	Graph *Graph
	// Seed is derived from the scenario seed; specs must route all their
	// randomness through it (via the site-hashed detrand primitives the
	// built-in models use) so runs replay bit-identically.
	Seed int64
}

// DelaySpec describes a flight-delay model abstractly; the scenario
// wires it to a concrete DelayModel at run time. A nil DelaySpec means
// the lockstep (unit-delay) network — the paper's synchronous model,
// executed on the classic engine path.
type DelaySpec interface {
	// DelayName identifies the model in errors, tables, and grid keys.
	DelayName() string
	// Wire materializes the delay model.
	Wire(env DelayEnv) (DelayModel, error)
}

// LockstepDelaySpec is the unit-delay model as an explicit spec: every
// symbol takes exactly one round. With no fault schedule it runs on the
// classic synchronous engine path, bit-identical to a nil DelaySpec;
// with faults it runs on the discrete-event path.
type LockstepDelaySpec struct{}

// LockstepDelay returns the unit-delay (lockstep) spec.
func LockstepDelay() LockstepDelaySpec { return LockstepDelaySpec{} }

// DelayName implements DelaySpec.
func (LockstepDelaySpec) DelayName() string { return "unit" }

// Wire implements DelaySpec.
func (LockstepDelaySpec) Wire(DelayEnv) (DelayModel, error) {
	return network.Unit{}, nil
}

// JitterDelaySpec is base delay plus uniform jitter per symbol.
type JitterDelaySpec struct {
	// Base is the minimum flight time in rounds (0 means 0.45).
	Base float64
	// Jitter is the uniform jitter width in rounds (0 means 0.5).
	Jitter float64
}

// JitterDelay returns the fixed+jitter delay spec; jitter ≤ 0 selects
// the 0.5 default. The default base 0.45 keeps most symbols on time
// while the jitter tail crosses deadlines.
func JitterDelay(jitter float64) JitterDelaySpec {
	return JitterDelaySpec{Jitter: jitter}
}

// DelayName implements DelaySpec.
func (JitterDelaySpec) DelayName() string { return "jitter" }

// Wire implements DelaySpec.
func (s JitterDelaySpec) Wire(env DelayEnv) (DelayModel, error) {
	base, jitter := s.Base, s.Jitter
	if base <= 0 {
		base = 0.45
	}
	if jitter <= 0 {
		jitter = 0.5
	}
	return network.FixedJitter{Base: base, Jitter: jitter, Seed: env.Seed}, nil
}

// LognormalDelaySpec draws flight times from a lognormal distribution —
// the standard wide-area latency model, with a heavy upper tail that
// produces occasional late symbols.
type LognormalDelaySpec struct {
	// Median is the median flight time in rounds (0 means 0.5).
	Median float64
	// Sigma is the log-scale spread (0 means 0.25).
	Sigma float64
}

// LognormalDelay returns the lognormal delay spec; sigma ≤ 0 selects the
// 0.25 default.
func LognormalDelay(sigma float64) LognormalDelaySpec {
	return LognormalDelaySpec{Sigma: sigma}
}

// DelayName implements DelaySpec.
func (LognormalDelaySpec) DelayName() string { return "lognormal" }

// Wire implements DelaySpec.
func (s LognormalDelaySpec) Wire(env DelayEnv) (DelayModel, error) {
	median, sigma := s.Median, s.Sigma
	if median <= 0 {
		median = 0.5
	}
	if sigma <= 0 {
		sigma = 0.25
	}
	return network.Lognormal{Median: median, Sigma: sigma, Seed: env.Seed}, nil
}

// BandedDelaySpec is the heterogeneous per-link model: each directed
// link is assigned once — deterministically from the seed — to a fast or
// a slow latency band, like LEO vs GEO paths in a satellite network.
type BandedDelaySpec struct {
	// SlowFraction is the probability a link lands in the slow band
	// (0 means 0.25).
	SlowFraction float64
}

// BandedDelay returns the two-band heterogeneous delay spec; frac ≤ 0
// selects the 0.25 default.
func BandedDelay(frac float64) BandedDelaySpec {
	return BandedDelaySpec{SlowFraction: frac}
}

// DelayName implements DelaySpec.
func (BandedDelaySpec) DelayName() string { return "bands" }

// Wire implements DelaySpec.
func (s BandedDelaySpec) Wire(env DelayEnv) (DelayModel, error) {
	slow := s.SlowFraction
	if slow <= 0 {
		slow = 0.25
	}
	if slow > 1 {
		return nil, fmt.Errorf("mpic: bands delay slow fraction %g outside [0,1]", slow)
	}
	return network.Bands{
		Bands: []network.Band{
			{Fraction: 1 - slow, Base: 0.25, Jitter: 0.15},
			{Fraction: slow, Base: 0.55, Jitter: 0.5},
		},
		Seed: env.Seed,
	}, nil
}

// Delay instantiates a registered delay model at the given parameter —
// the bridge from string-keyed configuration to a typed spec. The
// parameter's meaning is per-family (jitter width, lognormal sigma, slow
// fraction); 0 selects the family default.
func Delay(name string, param float64) (DelaySpec, error) {
	if name == "" || name == "none" {
		return nil, nil
	}
	family, err := delays.lookup(name)
	if err != nil {
		return nil, err
	}
	return family(param), nil
}

// ParseDelay parses the CLI syntax "name" or "name:param" into a delay
// spec; "", "none", "unit", and "lockstep" all mean the synchronous
// network ("unit"/"lockstep" as an explicit spec, the others as nil).
func ParseDelay(s string) (DelaySpec, error) {
	name, params, _ := strings.Cut(s, ":")
	param := 0.0
	if params != "" {
		var err error
		param, err = strconv.ParseFloat(params, 64)
		if err != nil {
			return nil, fmt.Errorf("mpic: delay %q: bad parameter %q", s, params)
		}
	}
	return Delay(strings.TrimSpace(name), param)
}

// ParseNetFaults parses the CLI syntax "key=value,..." into a fault
// schedule. Keys: outage (rate), outage-len (rounds), spike (rate),
// spike-delay (rounds), stragglers (count), straggler-delay (rounds),
// crashes (count), crash-len (rounds), seed. An empty string means no
// schedule (nil).
func ParseNetFaults(s string) (*NetFaults, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "none" {
		return nil, nil
	}
	nf := &NetFaults{}
	for _, kv := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("mpic: netfaults %q: expected key=value, got %q", s, kv)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		switch key {
		case "outage", "spike", "spike-delay", "straggler-delay":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("mpic: netfaults %s=%q: %v", key, val, err)
			}
			switch key {
			case "outage":
				nf.OutageRate = f
			case "spike":
				nf.SpikeRate = f
			case "spike-delay":
				nf.SpikeDelay = f
			case "straggler-delay":
				nf.StragglerDelay = f
			}
		case "outage-len", "stragglers", "crashes", "crash-len", "seed":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("mpic: netfaults %s=%q: %v", key, val, err)
			}
			switch key {
			case "outage-len":
				nf.OutageLen = int(n)
			case "stragglers":
				nf.Stragglers = int(n)
			case "crashes":
				nf.Crashes = int(n)
			case "crash-len":
				nf.CrashLen = int(n)
			case "seed":
				nf.Seed = n
			}
		default:
			return nil, fmt.Errorf("mpic: netfaults %q: unknown key %q (keys: outage, outage-len, spike, spike-delay, stragglers, straggler-delay, crashes, crash-len, seed)", s, key)
		}
	}
	if err := nf.Validate(); err != nil {
		return nil, err
	}
	return nf, nil
}
