package mpic_test

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"mpic"
)

// sessionGrid is the durable-session test grid: enough cells that a
// cancellation lands mid-flight.
func sessionGrid(t *testing.T) mpic.Grid {
	t.Helper()
	grid, err := mpic.Sweep{
		Base:     gridBase(),
		Rates:    []float64{0, 0.001, 0.002, 0.003, 0.004, 0.005},
		Trials:   2,
		SeedStep: 100,
	}.Grid()
	if err != nil {
		t.Fatal(err)
	}
	return grid
}

// readStore decodes a FileGridStore file for assertions.
func readStore(t *testing.T, path string) (spec string, cells []json.RawMessage) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var state struct {
		Version  int
		Spec     string
		Checksum string
		Cells    []json.RawMessage
	}
	if err := json.Unmarshal(data, &state); err != nil {
		t.Fatal(err)
	}
	if state.Version != 3 {
		t.Fatalf("store version = %d, want 3", state.Version)
	}
	if len(state.Checksum) != 64 {
		t.Fatalf("store checksum %q is not a hex SHA-256", state.Checksum)
	}
	return state.Spec, state.Cells
}

// TestGridCancelThenResume is the durable-session pin: cancel a parallel
// grid mid-flight, assert the store holds exactly the cells that
// completed, resume, and require the merged result bit-identical to an
// uninterrupted run.
func TestGridCancelThenResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "session.json")
	grid := sessionGrid(t)
	grid.Workers = 2
	grid.Store = mpic.NewFileGridStore(path)

	runner := mpic.NewRunner()
	defer runner.Close()

	// Uninterrupted reference, same runner, no store.
	ref := sessionGrid(t)
	ref.Workers = 2
	want, err := runner.CollectGrid(context.Background(), ref)
	if err != nil {
		t.Fatal(err)
	}

	// Cancel after the second completed cell streams.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	streamed := 0
	err = runner.RunGrid(ctx, grid, func(res mpic.GridCellResult) {
		if res.Restored {
			t.Error("fresh session streamed a restored cell")
		}
		streamed++
		if streamed == 2 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled grid returned %v, want context.Canceled", err)
	}
	if streamed >= len(grid.Cells) {
		t.Fatalf("all %d cells streamed before cancellation took effect", streamed)
	}

	// The store holds exactly the completed cells — no partials, nothing
	// from the cancelled in-flight runs.
	spec, saved := readStore(t, path)
	if spec != grid.Fingerprint() {
		t.Errorf("store spec = %q, want the grid fingerprint %q", spec, grid.Fingerprint())
	}
	if len(saved) != streamed {
		t.Fatalf("store holds %d cells, sink saw %d completions", len(saved), streamed)
	}

	// Resume: restored cells replay, the rest execute, and the merged
	// grid is bit-identical to the uninterrupted run.
	restored := 0
	got, err := runner.CollectGrid(context.Background(), mpic.Grid{
		Cells:   grid.Cells,
		Workers: 2,
		Store:   mpic.NewFileGridStore(path),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i].Restored {
			restored++
		}
		if !reflect.DeepEqual(got[i].Cell, want[i].Cell) {
			t.Errorf("cell %d differs after resume:\nresumed:       %+v\nuninterrupted: %+v", i, got[i].Cell, want[i].Cell)
		}
	}
	if restored != streamed {
		t.Errorf("resume restored %d cells, checkpoint held %d", restored, streamed)
	}

	// A third run restores everything and executes nothing.
	all, err := runner.CollectGrid(context.Background(), mpic.Grid{
		Cells: grid.Cells,
		Store: mpic.NewFileGridStore(path),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range all {
		if !all[i].Restored {
			t.Errorf("cell %d re-ran on a complete checkpoint", i)
		}
	}
}

// recordingStore counts Save calls and remembers the cell counts it was
// handed — a stand-in for a GridStore that batches its writes.
type recordingStore struct {
	saves []int
}

func (r *recordingStore) Load(string) ([]mpic.StoredCell, error) { return nil, nil }
func (r *recordingStore) Save(_ string, cells []mpic.StoredCell) error {
	r.saves = append(r.saves, len(cells))
	return nil
}

// TestGridFlushOnCancellation pins the session contract for pluggable
// stores: an interrupted grid — including a cancellation that surfaces
// as a wrapped run error from an in-flight cell — gets one final Save
// carrying every completed cell, so a batching store cannot lose the
// tail on Ctrl-C.
func TestGridFlushOnCancellation(t *testing.T) {
	grid := sessionGrid(t)
	grid.Workers = 2
	store := &recordingStore{}
	grid.Store = store

	runner := mpic.NewRunner()
	defer runner.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	delivered := 0
	err := runner.RunGrid(ctx, grid, func(mpic.GridCellResult) {
		delivered++
		if delivered == 2 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if len(store.saves) != delivered+1 {
		t.Fatalf("store saw %d saves for %d completed cells, want per-cell saves plus one flush", len(store.saves), delivered)
	}
	if last := store.saves[len(store.saves)-1]; last != delivered {
		t.Errorf("final flush carried %d cells, want all %d completed", last, delivered)
	}
}

// TestFileGridStoreContract pins the store's edges: a missing file is an
// empty session, a spec mismatch and an unknown format version are loud
// errors, and Save round-trips through Load.
func TestFileGridStoreContract(t *testing.T) {
	dir := t.TempDir()
	store := mpic.NewFileGridStore(filepath.Join(dir, "sub", "s.json"))
	if cells, err := store.Load("spec"); err != nil || cells != nil {
		t.Fatalf("missing file: got (%v, %v), want (nil, nil)", cells, err)
	}
	saved := []mpic.StoredCell{{
		Index: 3,
		Key:   mpic.GridKey{N: 4, Scheme: mpic.AlgorithmA, Rate: 0.5},
		Cell:  mpic.SweepCell{N: 4, Scheme: mpic.AlgorithmA, Rate: 0.5, Trials: 2, Successes: 1, Blowups: []float64{1.5, 2.5}},
	}}
	if err := store.Save("spec", saved); err != nil {
		t.Fatal(err)
	}
	got, err := store.Load("spec")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, saved) {
		t.Errorf("round-trip mismatch:\nsaved:  %+v\nloaded: %+v", saved, got)
	}
	if _, err := store.Load("other-spec"); err == nil || !strings.Contains(err.Error(), "different grid") {
		t.Errorf("spec mismatch: got %v", err)
	}
	legacy := filepath.Join(dir, "legacy.json")
	if err := os.WriteFile(legacy, []byte(`{"Spec":"spec","Cells":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := mpic.NewFileGridStore(legacy).Load("spec"); err == nil || !strings.Contains(err.Error(), "format version") {
		t.Errorf("versionless checkpoint: got %v", err)
	}
	v1 := filepath.Join(dir, "v1.json")
	if err := os.WriteFile(v1, []byte(`{"Version":1,"Spec":"spec","Cells":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := mpic.NewFileGridStore(v1).Load("spec"); err == nil || !strings.Contains(err.Error(), "format version") {
		t.Errorf("pre-checksum v1 checkpoint: got %v", err)
	}
}

// corruptTail truncates a store file mid-JSON — the shape a torn write
// leaves behind.
func corruptTail(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestFileGridStoreCorruptionRecovery pins the crash-durability
// contract: a session file truncated mid-JSON (or checksum-corrupted in
// place) recovers from the .bak last-good state with the OnRecovery hook
// told why; with no usable backup, Load returns a clear typed
// *CorruptCheckpointError instead of a bare JSON error; and the
// crash-between-renames window (primary missing, backup present) also
// recovers.
func TestFileGridStoreCorruptionRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.json")
	store := mpic.NewFileGridStore(path)
	gen := func(n int) []mpic.StoredCell {
		var cells []mpic.StoredCell
		for i := 0; i < n; i++ {
			cells = append(cells, mpic.StoredCell{Index: i, Key: mpic.GridKey{N: 4 + i}, Cell: mpic.SweepCell{N: 4 + i, Trials: 1}})
		}
		return cells
	}

	// No backup yet: a torn first save is a loud, typed corruption error.
	if err := store.Save("spec", gen(1)); err != nil {
		t.Fatal(err)
	}
	corruptTail(t, path)
	_, err := store.Load("spec")
	var corrupt *mpic.CorruptCheckpointError
	if !errors.As(err, &corrupt) {
		t.Fatalf("torn checkpoint without backup: got %v, want *CorruptCheckpointError", err)
	}
	if !strings.Contains(err.Error(), "delete the file") {
		t.Errorf("corruption error gives no recovery guidance: %v", err)
	}

	// Rebuild two generations so a .bak exists, then tear the primary:
	// Load must fall back to the last good state and report the recovery.
	if err := store.Save("spec", gen(1)); err != nil {
		t.Fatal(err)
	}
	if err := store.Save("spec", gen(2)); err != nil {
		t.Fatal(err)
	}
	corruptTail(t, path)
	var recovered error
	store.OnRecovery = func(reason error) { recovered = reason }
	cells, err := store.Load("spec")
	if err != nil {
		t.Fatalf("torn checkpoint with backup: %v", err)
	}
	if len(cells) != 1 || !reflect.DeepEqual(cells, gen(1)) {
		t.Fatalf("recovered %d cells %+v, want the last good state %+v", len(cells), cells, gen(1))
	}
	if recovered == nil || !errors.As(recovered, &corrupt) {
		t.Errorf("OnRecovery reason = %v, want the corruption", recovered)
	}

	// The next Save must not rotate the torn primary over the good
	// backup; after it, both primary and backup verify again.
	if err := store.Save("spec", gen(3)); err != nil {
		t.Fatal(err)
	}
	recovered = nil
	if cells, err = store.Load("spec"); err != nil || len(cells) != 3 {
		t.Fatalf("post-recovery save: got %d cells, %v", len(cells), err)
	}
	if recovered != nil {
		t.Errorf("clean load after recovery still reported %v", recovered)
	}

	// Crash window between Save's two renames: primary missing, backup
	// good — the session resumes from the backup instead of silently
	// restarting as "empty".
	if err := store.Save("spec", gen(4)); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	cells, err = store.Load("spec")
	if err != nil || len(cells) != 3 {
		t.Fatalf("missing-primary recovery: got %d cells, %v, want the 3-cell backup", len(cells), err)
	}
	if recovered == nil {
		t.Error("missing-primary recovery did not report through OnRecovery")
	}

	// In-place corruption that keeps the JSON valid: the checksum (which
	// also covers the spec) catches it.
	if err := store.Save("spec", gen(2)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	munged := strings.Replace(string(data), `"Trials": 1`, `"Trials": 9`, 1)
	if munged == string(data) {
		t.Fatal("test did not mutate the payload")
	}
	if err := os.WriteFile(path, []byte(munged), 0o644); err != nil {
		t.Fatal(err)
	}
	recovered = nil
	if cells, err = store.Load("spec"); err != nil {
		t.Fatalf("checksum recovery: %v", err)
	}
	if recovered == nil || !strings.Contains(recovered.Error(), "checksum") {
		t.Errorf("valid-JSON corruption not caught by the checksum: recovery reason %v", recovered)
	}
	for _, c := range cells {
		if c.Cell.Trials == 9 {
			t.Fatal("corrupted payload served as truth")
		}
	}
}

// flakyStore fails its first n operations with a transient error.
type flakyStore struct {
	inner     mpic.GridStore
	failNext  int
	saves     int
	loads     int
	lastError error
}

func (f *flakyStore) op() error {
	if f.failNext > 0 {
		f.failNext--
		f.lastError = errors.New("transient: device busy")
		return f.lastError
	}
	return nil
}

func (f *flakyStore) Load(spec string) ([]mpic.StoredCell, error) {
	f.loads++
	if err := f.op(); err != nil {
		return nil, err
	}
	return f.inner.Load(spec)
}

func (f *flakyStore) Save(spec string, cells []mpic.StoredCell) error {
	f.saves++
	if err := f.op(); err != nil {
		return err
	}
	return f.inner.Save(spec, cells)
}

// TestRetryingGridStore pins the retry wrapper: transient errors are
// absorbed within the attempt budget with capped doubling backoff,
// exhausted budgets surface the last error, and corruption is never
// retried (a deterministic failure answers the same every time).
func TestRetryingGridStore(t *testing.T) {
	dir := t.TempDir()
	inner := mpic.NewFileGridStore(filepath.Join(dir, "s.json"))
	flaky := &flakyStore{inner: inner, failNext: 2}
	var slept []time.Duration
	store := &mpic.RetryingGridStore{
		Inner: flaky, MaxAttempts: 3,
		BaseDelay: 4 * time.Millisecond, MaxDelay: 6 * time.Millisecond,
		Sleep: func(d time.Duration) { slept = append(slept, d) },
	}
	cells := []mpic.StoredCell{{Key: mpic.GridKey{N: 4}, Cell: mpic.SweepCell{N: 4, Trials: 1}}}
	if err := store.Save("spec", cells); err != nil {
		t.Fatalf("save within budget: %v", err)
	}
	if flaky.saves != 3 {
		t.Errorf("save attempts = %d, want 3", flaky.saves)
	}
	if want := []time.Duration{4 * time.Millisecond, 6 * time.Millisecond}; !reflect.DeepEqual(slept, want) {
		t.Errorf("backoff schedule = %v, want %v (doubling, capped)", slept, want)
	}
	if got, err := store.Load("spec"); err != nil || !reflect.DeepEqual(got, cells) {
		t.Fatalf("load round-trip: %v, %v", got, err)
	}

	// Budget exhausted: the last transient error surfaces.
	flaky.failNext = 5
	if err := store.Save("spec", cells); err == nil || !strings.Contains(err.Error(), "transient") {
		t.Errorf("exhausted budget: got %v", err)
	}

	// Corruption is not retried: one attempt, typed error through.
	corruptTail(t, inner.Path())
	os.Remove(inner.BackupPath())
	flaky.failNext = 0
	flaky.loads = 0
	_, err := store.Load("spec")
	var corrupt *mpic.CorruptCheckpointError
	if !errors.As(err, &corrupt) {
		t.Fatalf("corrupt load through retry wrapper: got %v", err)
	}
	if flaky.loads != 1 {
		t.Errorf("corruption consumed %d attempts, want 1 (not retryable)", flaky.loads)
	}
	// Defaults: zero-value knobs pick the documented budget.
	def := mpic.NewRetryingGridStore(flaky)
	if def.Inner == nil {
		t.Fatal("NewRetryingGridStore dropped the inner store")
	}
}

// TestGridValidation pins the spec-error contract: negative Workers and
// negative Trials are rejected before anything runs, while the zero
// values keep their documented clamps (GOMAXPROCS and 1).
func TestGridValidation(t *testing.T) {
	runner := mpic.NewRunner()
	defer runner.Close()
	ran := 0
	err := runner.RunGrid(context.Background(), mpic.Grid{
		Cells:   []mpic.GridCell{{Scenario: gridBase()}},
		Workers: -1,
	}, func(mpic.GridCellResult) { ran++ })
	if err == nil || !strings.Contains(err.Error(), "Workers") {
		t.Errorf("negative Workers: got %v", err)
	}
	err = runner.RunGrid(context.Background(), mpic.Grid{
		Cells: []mpic.GridCell{{Scenario: gridBase()}, {Scenario: gridBase(), Trials: -2}},
	}, func(mpic.GridCellResult) { ran++ })
	if err == nil || !strings.Contains(err.Error(), "cell 1") || !strings.Contains(err.Error(), "Trials") {
		t.Errorf("negative Trials: got %v", err)
	}
	if ran != 0 {
		t.Errorf("%d cells ran despite invalid specs", ran)
	}
	// Sweep surfaces the same validation through its Workers knob.
	if _, err := runner.Sweep(context.Background(), mpic.Sweep{Base: gridBase(), Workers: -3}); err == nil {
		t.Error("negative Sweep.Workers accepted")
	}
	// The documented clamps still hold: zero Workers and zero Trials run.
	cells, err := runner.CollectGrid(context.Background(), mpic.Grid{
		Cells: []mpic.GridCell{{Scenario: gridBase()}},
	})
	if err != nil || cells[0].Cell.Trials != 1 {
		t.Errorf("zero-value clamps broken: cells=%+v err=%v", cells, err)
	}
}

// TestGridProgressStream pins the fine-grained progress contract: every
// trial narrates start → iterations → done, events arrive while the
// grid is still executing (before later cells complete), and cell
// completions close each cell's stream.
func TestGridProgressStream(t *testing.T) {
	grid, err := mpic.Sweep{
		Base:   gridBase(),
		Rates:  []float64{0, 0.001},
		Trials: 2,
	}.Grid()
	if err != nil {
		t.Fatal(err)
	}
	grid.Workers = 1 // one goroutine: progress and sink order is total

	type step struct {
		event mpic.GridEvent
		cell  int
		trial int
		sink  bool
	}
	var steps []step
	grid.Progress = func(p mpic.GridProgress) {
		if p.Cells != len(grid.Cells) {
			t.Errorf("event %v reports %d cells, want %d", p.Event, p.Cells, len(grid.Cells))
		}
		switch p.Event {
		case mpic.GridTrialStart:
			if p.Info == nil || p.Info.Iterations <= 0 {
				t.Errorf("trial start without an iteration budget: %+v", p.Info)
			}
		case mpic.GridIteration:
			if p.Stats == nil || p.Stats.Iteration != p.Iteration {
				t.Errorf("iteration event stats mismatch: %+v", p)
			}
		case mpic.GridTrialDone:
			if p.Result == nil {
				t.Error("trial done without a result")
			}
		}
		steps = append(steps, step{event: p.Event, cell: p.Cell, trial: p.Trial})
	}
	runner := mpic.NewRunner()
	defer runner.Close()
	delivered := 0
	err = runner.RunGrid(context.Background(), grid, func(res mpic.GridCellResult) {
		steps = append(steps, step{cell: res.Index, sink: true})
		delivered++
	})
	if err != nil {
		t.Fatal(err)
	}
	if delivered != 2 {
		t.Fatalf("delivered %d cells, want 2", delivered)
	}

	// Progress is observed before grid completion: cell 0's iteration
	// events all precede cell 1's first event and the final delivery.
	firstOfCell1 := -1
	lastDelivery := -1
	iterationsCell0 := 0
	for i, s := range steps {
		if s.cell == 1 && firstOfCell1 < 0 {
			firstOfCell1 = i
		}
		if s.sink {
			lastDelivery = i
		}
		if !s.sink && s.cell == 0 && s.event == mpic.GridIteration {
			iterationsCell0++
			if firstOfCell1 >= 0 {
				t.Fatal("cell 0 iteration event after cell 1 started")
			}
		}
	}
	if iterationsCell0 == 0 {
		t.Fatal("no iteration events for cell 0")
	}
	if firstOfCell1 < 0 || firstOfCell1 >= lastDelivery {
		t.Fatalf("no progress observed before grid completion (cell 1 starts at %d, last delivery %d)", firstOfCell1, lastDelivery)
	}

	// Per trial: start, ≥1 iteration, done — in order; per cell a final
	// cell-done before the sink delivery.
	for cell := 0; cell < 2; cell++ {
		for trial := 0; trial < 2; trial++ {
			var kinds []mpic.GridEvent
			for _, s := range steps {
				if !s.sink && s.cell == cell && s.trial == trial && s.event != mpic.GridCellDone {
					kinds = append(kinds, s.event)
				}
			}
			if len(kinds) < 3 || kinds[0] != mpic.GridTrialStart || kinds[len(kinds)-1] != mpic.GridTrialDone {
				t.Errorf("cell %d trial %d event shape wrong: %v", cell, trial, kinds)
			}
			for _, k := range kinds[1 : len(kinds)-1] {
				if k != mpic.GridIteration {
					t.Errorf("cell %d trial %d interior event %v, want iteration", cell, trial, k)
				}
			}
		}
		cellDone := false
		for i, s := range steps {
			if !s.sink && s.cell == cell && s.event == mpic.GridCellDone {
				cellDone = true
				if i+1 >= len(steps) || !steps[i+1].sink || steps[i+1].cell != cell {
					t.Errorf("cell %d done event not immediately followed by its delivery", cell)
				}
			}
		}
		if !cellDone {
			t.Errorf("cell %d never emitted cell-done", cell)
		}
	}
}

// TestProgressLogAndRestoredEvents pins the ready-made sink's narration,
// including the restored-cell line on resume.
func TestProgressLogAndRestoredEvents(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.json")
	grid, err := mpic.Sweep{Base: gridBase(), Rates: []float64{0, 0.001}}.Grid()
	if err != nil {
		t.Fatal(err)
	}
	grid.Store = mpic.NewFileGridStore(path)
	var log strings.Builder
	grid.Progress = mpic.NewProgressLog(&log)

	runner := mpic.NewRunner()
	defer runner.Close()
	if err := runner.RunGrid(context.Background(), grid, nil); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"trial 1/1 started", "iter 0:", "trial 1/1 done: SUCCESS", "done (1 trials)"} {
		if !strings.Contains(log.String(), want) {
			t.Errorf("progress log missing %q:\n%s", want, log.String())
		}
	}
	log.Reset()
	if err := runner.RunGrid(context.Background(), grid, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(log.String(), "restored from checkpoint") {
		t.Errorf("resumed progress log missing restore lines:\n%s", log.String())
	}
	if strings.Contains(log.String(), "trial 1/1 started") {
		t.Errorf("fully restored session still executed trials:\n%s", log.String())
	}
}

// TestGridFingerprint pins the default spec's sensitivity: the same grid
// fingerprints identically across constructions, and every axis a
// checkpoint must not survive — seed, trials, noise rate, scheme —
// changes it.
func TestGridFingerprint(t *testing.T) {
	mk := func(mut func(*mpic.Sweep)) string {
		sw := mpic.Sweep{Base: gridBase(), Rates: []float64{0, 0.001}, Trials: 2}
		if mut != nil {
			mut(&sw)
		}
		grid, err := sw.Grid()
		if err != nil {
			t.Fatal(err)
		}
		return grid.Fingerprint()
	}
	base := mk(nil)
	if again := mk(nil); again != base {
		t.Errorf("same grid fingerprints differ: %q vs %q", base, again)
	}
	if strings.ContainsAny(base, "/\\ ") {
		t.Errorf("fingerprint %q is not filesystem-safe", base)
	}
	// Two structurally different explicit graphs with equal node and
	// edge counts (a path and a star, both n=4 m=3) must not share a
	// fingerprint — a stale session would otherwise silently resume.
	mkGraph := func(edges [][2]int) *mpic.Graph {
		g := mpic.NewGraph(4)
		for _, e := range edges {
			if err := g.AddEdge(mpic.Node(e[0]), mpic.Node(e[1])); err != nil {
				t.Fatal(err)
			}
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		return g
	}
	graphFP := func(g *mpic.Graph) string {
		sc := gridBase()
		sc.Topology = mpic.GraphTopology(g)
		return mpic.Grid{Cells: []mpic.GridCell{{Scenario: sc}}}.Fingerprint()
	}
	path := graphFP(mkGraph([][2]int{{0, 1}, {1, 2}, {2, 3}}))
	star := graphFP(mkGraph([][2]int{{0, 1}, {0, 2}, {0, 3}}))
	if path == star {
		t.Error("fingerprint blind to explicit-graph structure (path vs star, same n and m)")
	}
	if again := graphFP(mkGraph([][2]int{{0, 1}, {1, 2}, {2, 3}})); again != path {
		t.Errorf("same explicit graph fingerprints differ: %q vs %q", path, again)
	}
	for name, mut := range map[string]func(*mpic.Sweep){
		"seed":    func(sw *mpic.Sweep) { sw.Base.Seed++ },
		"trials":  func(sw *mpic.Sweep) { sw.Trials = 3 },
		"rates":   func(sw *mpic.Sweep) { sw.Rates = []float64{0, 0.002} },
		"scheme":  func(sw *mpic.Sweep) { sw.Schemes = []mpic.Scheme{mpic.AlgorithmB} },
		"n":       func(sw *mpic.Sweep) { sw.N = []int{5} },
		"budget":  func(sw *mpic.Sweep) { sw.Base.IterFactor = 99 },
		"noise":   func(sw *mpic.Sweep) { sw.Base.Noise = mpic.Adaptive(0) },
		"rounds":  func(sw *mpic.Sweep) { sw.Base.Workload = mpic.RandomTraffic(41) },
		"seedstp": func(sw *mpic.Sweep) { sw.SeedStep = 7 },
	} {
		if mk(mut) == base {
			t.Errorf("fingerprint blind to %s", name)
		}
	}
}

// TestKeepResultsPersistAndRestore pins satellite persistence: a
// KeepResults grid under a durable session stores every trial's Result
// (as StoredResult), and a resumed run streams them back bit-identical —
// metrics, potential trajectories, and virtual-time NetStats included —
// with only the documented omissions (Outputs, Arena) nil.
func TestKeepResultsPersistAndRestore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "keep.json")
	mk := func() mpic.Grid {
		base := gridBase()
		base.Noise = mpic.RandomNoise(0.002)
		base.Delay = mpic.JitterDelay(0.8)
		base.Faults = &mpic.NetFaults{SpikeRate: 0.05}
		grid, err := mpic.Sweep{
			Base:     base,
			Rates:    []float64{0, 0.002},
			Trials:   2,
			SeedStep: 100,
		}.Grid()
		if err != nil {
			t.Fatal(err)
		}
		grid.KeepResults = true
		grid.Store = mpic.NewFileGridStore(path)
		return grid
	}
	runner := mpic.NewRunner()
	defer runner.Close()

	fresh, err := runner.CollectGrid(context.Background(), mk())
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := runner.CollectGrid(context.Background(), mk())
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != len(fresh) {
		t.Fatalf("replay returned %d cells, want %d", len(replayed), len(fresh))
	}
	for i := range replayed {
		if !replayed[i].Restored {
			t.Fatalf("cell %d re-ran on a complete KeepResults checkpoint", i)
		}
		if len(replayed[i].Results) != len(fresh[i].Results) || len(replayed[i].Results) == 0 {
			t.Fatalf("cell %d restored %d trial results, want %d",
				i, len(replayed[i].Results), len(fresh[i].Results))
		}
		for j, got := range replayed[i].Results {
			want := fresh[i].Results[j]
			if got.Outputs != nil || got.Arena != nil {
				t.Errorf("cell %d trial %d: restored result carries Outputs/Arena", i, j)
			}
			if !reflect.DeepEqual(got.Metrics, want.Metrics) {
				t.Errorf("cell %d trial %d metrics differ after restore:\n%+v\n%+v",
					i, j, got.Metrics, want.Metrics)
			}
			if got.Metrics.Net == nil {
				t.Errorf("cell %d trial %d lost its NetStats in the store", i, j)
			}
			if !reflect.DeepEqual(got.Potential, want.Potential) {
				t.Errorf("cell %d trial %d potential trajectory differs after restore", i, j)
			}
			if got.Success != want.Success || got.Blowup != want.Blowup ||
				got.Iterations != want.Iterations || got.GStar != want.GStar ||
				got.NumChunks != want.NumChunks || got.CCProtocol != want.CCProtocol {
				t.Errorf("cell %d trial %d scalar fields differ after restore", i, j)
			}
		}
	}

	// A grid without KeepResults restores from the same file shape with
	// Results empty — the stored trials are simply not streamed back.
	plain := mk()
	plain.KeepResults = false
	noKeep, err := runner.CollectGrid(context.Background(), plain)
	if err != nil {
		t.Fatal(err)
	}
	for i := range noKeep {
		if len(noKeep[i].Results) != 0 {
			t.Errorf("cell %d streamed Results without KeepResults", i)
		}
	}
}

// TestFileGridStoreConflictDetected is the concurrent-access regression
// pin: two stores sharing one session file must not silently clobber
// each other. The second writer's Save fails loudly with a typed
// *SessionConflictError the moment the file no longer holds the state
// it last read — and the error is deterministic, so RetryingGridStore
// refuses to burn attempts on it.
func TestFileGridStoreConflictDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shared.json")
	a := mpic.NewFileGridStore(path)
	b := mpic.NewFileGridStore(path)
	const spec = "conflict-spec"
	cell := func(i int) mpic.StoredCell {
		return mpic.StoredCell{Index: i, Cell: mpic.SweepCell{N: 4, Trials: 1}}
	}

	if _, err := a.Load(spec); err != nil {
		t.Fatal(err)
	}
	if err := a.Save(spec, []mpic.StoredCell{cell(0)}); err != nil {
		t.Fatal(err)
	}
	// b reads a's state, then a moves on: b's next write would discard
	// cell 1.
	if _, err := b.Load(spec); err != nil {
		t.Fatal(err)
	}
	if err := a.Save(spec, []mpic.StoredCell{cell(0), cell(1)}); err != nil {
		t.Fatal(err)
	}
	err := b.Save(spec, []mpic.StoredCell{cell(0), cell(2)})
	var conflict *mpic.SessionConflictError
	if !errors.As(err, &conflict) {
		t.Fatalf("second writer's Save returned %v, want *SessionConflictError", err)
	}
	if conflict.Path != path || conflict.StoredSpec != spec {
		t.Errorf("conflict error carries %q/%q, want %q/%q", conflict.Path, conflict.StoredSpec, path, spec)
	}
	// The winner's state is untouched by the refused write.
	cells, err := a.Load(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 || cells[1].Index != 1 {
		t.Fatalf("refused write damaged the session: %+v", cells)
	}
	// b recovers by re-reading — Load refreshes its view of the state —
	// after which its merge-and-save goes through.
	merged, err := b.Load(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Save(spec, append(merged, cell(2))); err != nil {
		t.Fatalf("save after re-read: %v", err)
	}

	// A conflict is deterministic: the retrying decorator must return it
	// on the first attempt instead of retrying into the same answer.
	stale := mpic.NewFileGridStore(path)
	if _, err := stale.Load(spec); err != nil {
		t.Fatal(err)
	}
	if err := b.Save(spec, append(merged, cell(2), cell(3))); err != nil {
		t.Fatal(err)
	}
	slept := 0
	retrying := &mpic.RetryingGridStore{
		Inner: stale, MaxAttempts: 5,
		Sleep: func(time.Duration) { slept++ },
	}
	if err := retrying.Save(spec, []mpic.StoredCell{cell(9)}); !errors.As(err, &conflict) {
		t.Fatalf("retrying store returned %v, want *SessionConflictError", err)
	}
	if slept != 0 {
		t.Errorf("retrying store slept %d times over a deterministic conflict", slept)
	}
}

// TestFileGridStoreLockSerializesWriters pins the coordination half of
// concurrent-access safety: many goroutines hammering load-merge-save
// on separate store handles (the uncoordinated-two-process shape) never
// corrupt the file — every outcome is either a cleanly merged state or
// a loud conflict, and the file always parses.
func TestFileGridStoreLockSerializesWriters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hammer.json")
	const spec = "hammer-spec"
	var wg sync.WaitGroup
	conflicts := make([]int, 8)
	for w := 0; w < len(conflicts); w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			store := mpic.NewFileGridStore(path)
			for i := 0; i < 10; i++ {
				cells, err := store.Load(spec)
				if err != nil {
					t.Errorf("worker %d load: %v", w, err)
					return
				}
				err = store.Save(spec, append(cells, mpic.StoredCell{Index: w*100 + i}))
				var conflict *mpic.SessionConflictError
				if errors.As(err, &conflict) {
					conflicts[w]++
					continue
				}
				if err != nil {
					t.Errorf("worker %d save: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	final := mpic.NewFileGridStore(path)
	if _, err := final.Load(spec); err != nil {
		t.Fatalf("file corrupt after concurrent hammering: %v", err)
	}
}
