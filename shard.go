package mpic

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"mpic/internal/cores"
)

// ShardOptions configures one worker of a sharded grid session — one
// RunGridSharded call among the N that share a LeaseStore.
type ShardOptions struct {
	// Worker names this worker in the lease ledger. Workers sharing a
	// session must use distinct names; "" derives one from the process
	// id, which is unique across processes but NOT across goroutines —
	// in-process pools must name their shards.
	Worker string
	// LeaseTTL is how long a claimed cell stays leased without renewal;
	// it bounds how long a crashed worker's cells stay out of rotation.
	// 0 means 30s. A TTL shorter than a cell's runtime is safe — a
	// background renewer extends live leases, and even a lapsed lease
	// only risks duplicated (bit-identical) work, never wrong results.
	LeaseTTL time.Duration
	// Batch is how many cells to claim per round trip (0 means 1).
	// Larger batches amortize ledger writes at the cost of coarser
	// rebalancing when workers run at different speeds.
	Batch int
	// Poll is how long to wait before re-asking for work when every
	// pending cell is leased to someone else (0 means 200ms).
	Poll time.Duration
}

func (o ShardOptions) withDefaults() ShardOptions {
	if o.Worker == "" {
		o.Worker = fmt.Sprintf("worker-%d", os.Getpid())
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 30 * time.Second
	}
	if o.Batch < 1 {
		o.Batch = 1
	}
	if o.Poll <= 0 {
		o.Poll = 200 * time.Millisecond
	}
	return o
}

// RunGridSharded executes one worker's share of a grid whose cells are
// coordinated through a LeaseStore: claim pending cells, execute each on
// the same per-cell path as RunGrid (retry policy, panic containment,
// and quarantine semantics intact), persist each completed cell under
// its lease, and repeat until the session has no pending cells. Run N
// of these — goroutines sharing one store, or separate processes
// sharing a session directory — and the merged session is bit-identical
// to a sequential RunGrid of the same grid: cells are pure functions of
// spec + salt, the lease protocol only partitions them.
//
// The grid must not set Store — the lease store owns persistence, and a
// second store would double-write. Restored cells are not streamed
// (workers see only the cells they execute); read the finished session
// with RunGrid over Grid{..., Store: store}, which restores every cell
// and finishes any the shards left behind.
//
// Failure semantics match RunGrid: under FailFast the first cell error
// aborts this worker (others keep going — they share no engine state);
// under QuarantineCells the failure is recorded in the ledger so no
// worker re-claims the cell, and when the session drains with failures
// recorded, every worker returns a *GridFailure whose report carries
// the session-wide failed cells. On any return — including cancellation
// — the worker releases its leases; only a crash leaves leases to
// expire.
//
// Progress events are serialized within this worker only. A Progress
// callback shared by several in-process workers must synchronize its
// own state (the grid service's event hub does exactly that).
func (r *Runner) RunGridSharded(ctx context.Context, g Grid, store LeaseStore, opts ShardOptions, sink GridSink) error {
	if store == nil {
		return fmt.Errorf("mpic: RunGridSharded needs a LeaseStore")
	}
	if g.Store != nil {
		return fmt.Errorf("mpic: sharded grids must not set Grid.Store — the lease store owns persistence")
	}
	if err := g.validate(); err != nil {
		return err
	}
	if len(g.Cells) == 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	opts = opts.withDefaults()
	spec := g.Spec
	if spec == "" {
		spec = g.Fingerprint()
	}

	var prog *progressEmitter
	if g.Progress != nil {
		prog = &progressEmitter{fn: g.Progress}
	}

	// This worker runs one cell at a time, holding one core-budget token;
	// a cell's heavy rounds may borrow the rest of the machine (other
	// shard workers are separate processes with budgets of their own).
	budget := cores.NewBudget(runtime.GOMAXPROCS(0))
	budget.Acquire(1)
	defer budget.Release(1)

	// The renewer extends this worker's leases at a third of the TTL so
	// a slow cell never lapses under a live worker. Best-effort: a
	// failed renewal risks duplicated work, not wrong results.
	renewCtx, stopRenew := context.WithCancel(ctx)
	var renewWG sync.WaitGroup
	renewWG.Add(1)
	go func() {
		defer renewWG.Done()
		tick := time.NewTicker(opts.LeaseTTL / 3)
		defer tick.Stop()
		for {
			select {
			case <-renewCtx.Done():
				return
			case <-tick.C:
				_ = store.Renew(spec, opts.Worker, opts.LeaseTTL)
			}
		}
	}()
	defer func() {
		stopRenew()
		renewWG.Wait()
		// Graceful exit: hand unfinished claims back immediately instead
		// of making the other workers wait out the TTL.
		_ = store.Release(spec, opts.Worker)
	}()

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		claimed, pending, err := store.Claim(spec, opts.Worker, len(g.Cells), opts.Batch, opts.LeaseTTL)
		if err != nil {
			return err
		}
		if pending == 0 {
			break
		}
		if len(claimed) == 0 {
			// Everything pending is leased elsewhere; wait for leases to
			// resolve (complete, release, or expire) and ask again.
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(opts.Poll):
			}
			continue
		}
		for _, i := range claimed {
			res, err := r.runGridCellRetrying(ctx, g, i, prog, budget)
			if err != nil && g.OnCellError == QuarantineCells && ctx.Err() == nil {
				if mferr := store.MarkFailed(spec, opts.Worker, FailedCell{
					Cell: i, Worker: opts.Worker, Attempts: res.Attempts, Reason: err.Error(),
				}); mferr != nil {
					return mferr
				}
				if prog != nil {
					prog.emit(GridProgress{
						Event: GridCellFailed,
						Cell:  i, Cells: len(g.Cells),
						Key: res.Key, Err: err, Attempt: res.Attempts,
					})
				}
				if sink != nil {
					res.Err = err
					res.Results = nil
					res.Cell = SweepCell{N: res.Key.N, Scheme: res.Key.Scheme, Rate: res.Key.Rate, Delay: res.Key.Delay}
					sink(res)
				}
				continue
			}
			if err != nil {
				return err
			}
			if err := store.SaveCell(spec, opts.Worker, StoredCell{
				Index: res.Index, Key: res.Key, Cell: res.Cell,
				Results: storeResults(res.Results),
			}); err != nil {
				return err
			}
			if prog != nil {
				prog.emit(GridProgress{
					Event: GridCellDone,
					Cell:  res.Index, Cells: len(g.Cells),
					Key: res.Key, Trials: res.Cell.Trials,
				})
			}
			if sink != nil {
				sink(res)
			}
		}
	}

	// The session drained. Quarantined cells anywhere in the session —
	// this worker's or a peer's — surface exactly like RunGrid's partial
	// success.
	failed, err := store.Failures(spec)
	if err != nil {
		return err
	}
	if len(failed) > 0 {
		report := GridReport{Cells: len(g.Cells)}
		cells, err := store.Load(spec)
		if err != nil {
			return err
		}
		report.Completed = len(cells)
		for _, f := range failed {
			key := GridKey{}
			if f.Cell >= 0 && f.Cell < len(g.Cells) {
				key = g.Cells[f.Cell].key()
			}
			report.Failed = append(report.Failed, GridCellResult{
				Index: f.Cell, Key: key,
				Cell:     SweepCell{N: key.N, Scheme: key.Scheme, Rate: key.Rate, Delay: key.Delay},
				Err:      fmt.Errorf("%s", f.Reason),
				Attempts: f.Attempts,
			})
		}
		return &GridFailure{Report: report}
	}
	return nil
}
