// Package baseline implements the non-interactive-coding comparison
// points of the Table 1 regeneration: running Π uncoded over the noisy
// network, and a naive forward-error-correction scheme (per-transmission
// repetition) that handles random substitutions but has no feedback or
// rollback — behavioural stand-ins for what the paper's scheme improves
// on (tree-code approaches are computationally infeasible and therefore
// absent; see DESIGN.md §3.6).
package baseline

import (
	"bytes"
	"errors"

	"mpic/internal/adversary"
	"mpic/internal/bitstring"
	"mpic/internal/channel"
	"mpic/internal/graph"
	"mpic/internal/network"
	"mpic/internal/protocol"
	"mpic/internal/trace"
)

// Result reports a baseline run with the same top-level fields as a coded
// run, so experiment tables can mix them.
type Result struct {
	Success      bool
	Metrics      *trace.Metrics
	CCProtocol   int
	Blowup       float64
	WrongParties int
}

// uncodedParty executes Π's schedule directly: whatever arrives is taken
// at face value, Silence reads as 0.
type uncodedParty struct {
	id    graph.Node
	proto protocol.Protocol
	rep   int // repetition factor; 1 = uncoded
	view  *protocol.MapView
	seq   map[channel.Link]int
	// repetition decoding state
	votes map[channel.Link]int
	count map[channel.Link]int
}

func newUncodedParty(id graph.Node, proto protocol.Protocol, rep int) *uncodedParty {
	return &uncodedParty{
		id:    id,
		proto: proto,
		rep:   rep,
		view:  protocol.NewMapView(id, proto.Input(id)),
		seq:   make(map[channel.Link]int),
		votes: make(map[channel.Link]int),
		count: make(map[channel.Link]int),
	}
}

// ID implements network.Party.
func (p *uncodedParty) ID() graph.Node { return p.id }

// Send implements network.Party: round r of the real network carries
// repetition copy r%rep of Π round r/rep.
func (p *uncodedParty) Send(round int, to graph.Node) bitstring.Symbol {
	sched := p.proto.Schedule()
	pr := round / p.rep
	if pr >= sched.Rounds() {
		return bitstring.Silence
	}
	l := channel.Link{From: p.id, To: to}
	for _, tx := range sched.At(pr) {
		if tx.Link() == l {
			bit := p.proto.SendBit(p.view, pr, tx, p.seq[l]) & 1
			if round%p.rep == p.rep-1 {
				// Completed all copies: commit to own view on the last
				// copy (the commit round shared with the receiver).
				defer func() {
					p.view.Record(l, bitstring.SymbolFromBit(bit))
					p.seq[l]++
				}()
			}
			return bitstring.SymbolFromBit(bit)
		}
	}
	return bitstring.Silence
}

// Deliver implements network.Party: majority-decode the repetition block.
func (p *uncodedParty) Deliver(round int, from graph.Node, sym bitstring.Symbol) {
	sched := p.proto.Schedule()
	pr := round / p.rep
	if pr >= sched.Rounds() {
		return
	}
	l := channel.Link{From: from, To: p.id}
	scheduled := false
	for _, tx := range sched.At(pr) {
		if tx.Link() == l {
			scheduled = true
			break
		}
	}
	if !scheduled {
		return
	}
	if sym == bitstring.Sym1 {
		p.votes[l]++
	}
	if sym != bitstring.Silence {
		p.count[l]++
	}
	if round%p.rep == p.rep-1 {
		bit := byte(0)
		if 2*p.votes[l] > p.count[l] {
			bit = 1
		}
		p.view.Record(l, bitstring.SymbolFromBit(bit))
		p.seq[l]++
		p.votes[l] = 0
		p.count[l] = 0
	}
}

// RunUncoded executes Π directly over the noisy network (repetition = 1).
func RunUncoded(proto protocol.Protocol, adv adversary.Adversary) (*Result, error) {
	return runRepetition(proto, adv, 1)
}

// RunNaiveFEC executes Π with each transmission repeated rep times and
// majority-decoded — constant-factor redundancy with no feedback.
func RunNaiveFEC(proto protocol.Protocol, adv adversary.Adversary, rep int) (*Result, error) {
	if rep < 1 || rep%2 == 0 {
		return nil, errors.New("baseline: repetition factor must be odd and positive")
	}
	return runRepetition(proto, adv, rep)
}

func runRepetition(proto protocol.Protocol, adv adversary.Adversary, rep int) (*Result, error) {
	g := proto.Graph()
	parties := make([]network.Party, g.N())
	ups := make([]*uncodedParty, g.N())
	for i := 0; i < g.N(); i++ {
		ups[i] = newUncodedParty(graph.Node(i), proto, rep)
		parties[i] = ups[i]
	}
	metrics := &trace.Metrics{}
	eng, err := network.NewEngine(g, parties, adv, metrics)
	if err != nil {
		return nil, err
	}
	eng.RunRounds(0, proto.Schedule().Rounds()*rep)
	ref := protocol.RunReference(proto)
	res := &Result{
		Metrics:    metrics,
		CCProtocol: proto.Schedule().TotalBits(),
	}
	for i, up := range ups {
		if !bytes.Equal(proto.Output(up.view), ref.Outputs[i]) {
			res.WrongParties++
		}
	}
	res.Success = res.WrongParties == 0
	if res.CCProtocol > 0 {
		res.Blowup = float64(metrics.CC) / float64(res.CCProtocol)
	}
	return res, nil
}
