package baseline

import (
	"math/rand"
	"testing"

	"mpic/internal/adversary"
	"mpic/internal/channel"
	"mpic/internal/graph"
	"mpic/internal/protocol"
)

func TestUncodedNoiselessSucceeds(t *testing.T) {
	g := graph.Line(4)
	proto := protocol.NewRandom(g, 40, 0.5, 1, nil)
	res, err := RunUncoded(proto, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatal("uncoded noiseless run failed")
	}
	if res.Blowup != 1.0 {
		t.Errorf("uncoded blowup = %f, want 1.0", res.Blowup)
	}
}

func TestUncodedFailsUnderNoise(t *testing.T) {
	g := graph.Line(4)
	proto := protocol.NewRandom(g, 60, 0.5, 1, nil)
	failures := 0
	const trials = 10
	for i := 0; i < trials; i++ {
		adv := adversary.NewRandomRate(0.05, rand.New(rand.NewSource(int64(i))))
		res, err := RunUncoded(proto, adv)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Success {
			failures++
		}
	}
	if failures < trials/2 {
		t.Fatalf("uncoded failed only %d/%d under 5%% noise; expected fragility", failures, trials)
	}
}

func TestNaiveFECNoiseless(t *testing.T) {
	g := graph.Ring(4)
	proto := protocol.NewRandom(g, 40, 0.5, 2, nil)
	res, err := RunNaiveFEC(proto, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatal("naive FEC noiseless run failed")
	}
	if res.Blowup != 3.0 {
		t.Errorf("FEC blowup = %f, want 3.0", res.Blowup)
	}
}

func TestNaiveFECToleratesSparseSubstitutions(t *testing.T) {
	g := graph.Line(3)
	proto := protocol.NewRandom(g, 30, 0.5, 3, nil)
	// One isolated substitution: with 5x repetition the majority absorbs
	// it.
	pat := adversary.NewPattern()
	pat.Set(10, channel.Link{From: 0, To: 1}, 1)
	res, err := RunNaiveFEC(proto, pat, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatal("naive FEC failed on a single substitution")
	}
}

func TestNaiveFECFailsUnderBurst(t *testing.T) {
	g := graph.Line(4)
	proto := protocol.NewRandom(g, 60, 0.5, 4, nil)
	failures := 0
	const trials = 8
	for i := 0; i < trials; i++ {
		// A burst that waits until budget has accrued, then wipes out
		// whole repetition blocks on one link.
		adv := adversary.NewBurst(channel.Link{From: 1, To: 2}, 90, 10000, 0.05)
		res, err := RunNaiveFEC(proto, adv, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Success {
			failures++
		}
	}
	if failures == 0 {
		t.Fatal("naive FEC survived a concentrated burst; repetition should not")
	}
}

func TestNaiveFECRejectsEvenRepetition(t *testing.T) {
	g := graph.Line(3)
	proto := protocol.NewRandom(g, 10, 0.5, 5, nil)
	if _, err := RunNaiveFEC(proto, nil, 2); err == nil {
		t.Error("even repetition accepted")
	}
	if _, err := RunNaiveFEC(proto, nil, 0); err == nil {
		t.Error("zero repetition accepted")
	}
}
