package network

import (
	"math"
	"sort"
	"testing"

	"mpic/internal/adversary"
	"mpic/internal/bitstring"
	"mpic/internal/channel"
	"mpic/internal/graph"
)

// TestEventHeapPopOrder is the heap's property test: however events are
// pushed, they pop sorted by (time, seq). The push sequence is shuffled
// by a small deterministic LCG so the property is exercised across many
// orderings without real randomness.
func TestEventHeapPopOrder(t *testing.T) {
	lcg := uint64(0x2545F4914F6CDD1D)
	next := func(n int) int {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		return int((lcg >> 33) % uint64(n))
	}
	for trial := 0; trial < 50; trial++ {
		n := 1 + next(64)
		evs := make([]event, n)
		for i := range evs {
			// Coarse times force (time) ties that only seq can break.
			evs[i] = event{time: float64(next(8)), seq: uint64(i)}
		}
		for i := n - 1; i > 0; i-- {
			j := next(i + 1)
			evs[i], evs[j] = evs[j], evs[i]
		}
		var h eventHeap
		for _, ev := range evs {
			h.push(ev)
		}
		var popped []event
		for len(h) > 0 {
			popped = append(popped, h.pop())
		}
		if !sort.SliceIsSorted(popped, func(i, j int) bool {
			return eventLess(popped[i], popped[j])
		}) {
			t.Fatalf("trial %d: pop order not sorted by (time, seq): %+v", trial, popped)
		}
		for i := 1; i < len(popped); i++ {
			if popped[i-1].time == popped[i].time && popped[i-1].seq >= popped[i].seq {
				t.Fatalf("trial %d: tie not broken by seq", trial)
			}
		}
	}
}

// cliqueFns is a deterministic non-trivial send pattern over n parties.
func cliqueFns(n int) map[int]func(int, graph.Node) bitstring.Symbol {
	fns := make(map[int]func(int, graph.Node) bitstring.Symbol, n)
	for i := 0; i < n; i++ {
		id := i
		fns[i] = func(r int, to graph.Node) bitstring.Symbol {
			return bitstring.Symbol(uint8(r+id+int(to)) % 3)
		}
	}
	return fns
}

// TestTimedUnitMatchesLockstep is the engine-equivalence pin: the DES
// path under the unit delay model (forced on via forceTimed — SetTiming
// would normally keep the classic path) delivers exactly what the
// synchronous loop delivers, with identical metrics, plus the
// virtual-time extras (makespan = rounds, no late symbols).
func TestTimedUnitMatchesLockstep(t *testing.T) {
	g := graph.Clique(5)
	const rounds = 20
	pat := adversary.NewPattern()
	pat.Set(3, channel.Link{From: 0, To: 1}, 1)
	pat.Set(7, channel.Link{From: 2, To: 4}, 2)

	psA, epsA := mkParties(5, cliqueFns(5))
	engA, _ := NewEngine(g, psA, pat, nil)
	engA.RunRounds(0, rounds)

	psB, epsB := mkParties(5, cliqueFns(5))
	engB, _ := NewEngine(g, psB, pat, nil)
	engB.forceTimed = true
	engB.SetTiming(Unit{}, nil)
	if engB.timing == nil {
		t.Fatal("forceTimed engine did not take the DES path")
	}
	engB.RunRounds(0, rounds)

	mA, mB := engA.Metrics(), engB.Metrics()
	if mA.CC != mB.CC {
		t.Fatalf("CC differs: lockstep %d vs timed %d", mA.CC, mB.CC)
	}
	if mA.Corruptions != mB.Corruptions {
		t.Fatalf("corruptions differ: %v vs %v", mA.Corruptions, mB.Corruptions)
	}
	for i := range epsA {
		a, b := epsA[i].received, epsB[i].received
		if len(a) != len(b) {
			t.Fatalf("party %d received %d vs %d deliveries", i, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("party %d delivery %d differs: %+v vs %+v", i, j, a[j], b[j])
			}
		}
	}
	net := mB.Net
	if net == nil {
		t.Fatal("timed engine recorded no NetStats")
	}
	if net.Makespan != rounds {
		t.Fatalf("unit-model makespan = %g, want %d", net.Makespan, rounds)
	}
	if net.LateSymbols != 0 || net.LateDelivered != 0 || net.LateDropped != 0 || net.Erasures != 0 {
		t.Fatalf("unit model produced timing faults: %+v", net)
	}
	if mA.Net != nil {
		t.Fatal("lockstep engine grew NetStats")
	}
}

// scriptDelay lets a test hand-place arrival times.
type scriptDelay struct {
	d func(round int, link channel.Link) float64
}

func (s scriptDelay) Delay(round int, link channel.Link) float64 { return s.d(round, link) }
func (scriptDelay) Lockstep() bool                               { return false }

// TestDeadlineInsdelMapping pins the deadline synchronizer's noise
// mapping symbol by symbol: a late arrival is a deletion at its deadline
// and an insertion when it lands in a silent slot; a late arrival whose
// slot is occupied is dropped with only the deletion as its trace.
func TestDeadlineInsdelMapping(t *testing.T) {
	g := graph.Line(2)
	// Party 0 sends Sym1 in rounds 0 and 1, then goes quiet; party 1
	// never transmits.
	ps, eps := mkParties(2, map[int]func(int, graph.Node) bitstring.Symbol{
		0: func(r int, to graph.Node) bitstring.Symbol {
			if r <= 1 {
				return bitstring.Sym1
			}
			return bitstring.Silence
		},
	})
	// Round 0's symbol takes 1.5 rounds (late, lands inside round 1);
	// everything else is on time.
	eng, _ := NewEngine(g, ps, nil, nil)
	eng.SetTiming(scriptDelay{d: func(r int, l channel.Link) float64 {
		if r == 0 && l.From == 0 {
			return 1.5
		}
		return 0.5
	}}, nil)
	eng.RunRounds(0, 4)

	// Round 0: deletion (the symbol misses its deadline, party 1 sees
	// silence). Round 1: the on-time round-1 symbol owns the slot, so the
	// round-0 straggler is dropped.
	m := eng.Metrics()
	if m.Net.LateSymbols != 1 || m.Net.LateDropped != 1 || m.Net.LateDelivered != 0 {
		t.Fatalf("occupied-slot case: late=%d dropped=%d delivered=%d, want 1/1/0",
			m.Net.LateSymbols, m.Net.LateDropped, m.Net.LateDelivered)
	}
	if m.Corruptions[channel.KindDeletion] != 1 {
		t.Fatalf("deletions = %d, want 1", m.Corruptions[channel.KindDeletion])
	}
	var got []recorded
	for _, r := range eps[1].received {
		if r.from == 0 {
			got = append(got, r)
		}
	}
	want := []bitstring.Symbol{bitstring.Silence, bitstring.Sym1, bitstring.Silence, bitstring.Silence}
	for i, w := range want {
		if got[i].sym != w {
			t.Fatalf("party 1 round %d received %v, want %v (full: %+v)", i, got[i].sym, w, got)
		}
	}

	// Same script, but party 0 only sends in round 0: the straggler lands
	// in round 1's silent slot — an out-of-band insertion.
	ps2, eps2 := mkParties(2, map[int]func(int, graph.Node) bitstring.Symbol{
		0: func(r int, to graph.Node) bitstring.Symbol {
			if r == 0 {
				return bitstring.Sym1
			}
			return bitstring.Silence
		},
	})
	eng2, _ := NewEngine(g, ps2, nil, nil)
	eng2.SetTiming(scriptDelay{d: func(r int, l channel.Link) float64 {
		if r == 0 && l.From == 0 {
			return 1.5
		}
		return 0.5
	}}, nil)
	eng2.RunRounds(0, 4)
	m2 := eng2.Metrics()
	if m2.Net.LateSymbols != 1 || m2.Net.LateDelivered != 1 || m2.Net.LateDropped != 0 {
		t.Fatalf("silent-slot case: late=%d delivered=%d dropped=%d, want 1/1/0",
			m2.Net.LateSymbols, m2.Net.LateDelivered, m2.Net.LateDropped)
	}
	if m2.Corruptions[channel.KindDeletion] != 1 || m2.Corruptions[channel.KindInsertion] != 1 {
		t.Fatalf("corruptions = %v, want one deletion and one insertion", m2.Corruptions)
	}
	if eps2[1].received[0].sym != bitstring.Silence {
		t.Fatal("round 0 should deliver silence (deadline missed)")
	}
	var r1 []recorded
	for _, r := range eps2[1].received {
		if r.from == 0 && r.round == 1 {
			r1 = append(r1, r)
		}
	}
	if len(r1) != 1 || r1[0].sym != bitstring.Sym1 {
		t.Fatalf("round 1 delivery = %+v, want the late Sym1", r1)
	}
	// Makespan: the straggler landed at 1.5 but the run goes 4 rounds.
	if m2.Net.Makespan != 4 {
		t.Fatalf("makespan = %g, want 4", m2.Net.Makespan)
	}
}

// TestFaultScheduleDeterministicWiring: the straggler set and crash
// windows are pure functions of the seed — identical across Wire calls,
// different (with overwhelming probability) across seeds — and crash
// windows stay inside the middle half of the run.
func TestFaultScheduleDeterministicWiring(t *testing.T) {
	spec := FaultSchedule{Seed: 11, Stragglers: 2, Crashes: 2, CrashLen: 10}
	const n, rounds = 8, 200
	a, err := spec.Wire(n, rounds)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := spec.Wire(n, rounds)
	nStrag, nCrash := 0, 0
	for p := 0; p < n; p++ {
		node := graph.Node(p)
		if a.Straggler(node) != b.Straggler(node) {
			t.Fatalf("straggler set differs across identical Wire calls at party %d", p)
		}
		if a.crashStart[p] != b.crashStart[p] || a.crashEnd[p] != b.crashEnd[p] {
			t.Fatalf("crash window differs across identical Wire calls at party %d", p)
		}
		if a.Straggler(node) {
			nStrag++
		}
		if a.crashEnd[p] > a.crashStart[p] {
			nCrash++
			if a.crashStart[p] < rounds/4 || a.crashEnd[p] > rounds {
				t.Fatalf("party %d crash window [%d,%d) outside the middle of a %d-round run",
					p, a.crashStart[p], a.crashEnd[p], rounds)
			}
		}
	}
	if nStrag != 2 || nCrash != 2 {
		t.Fatalf("wired %d stragglers and %d crashes, want 2 and 2", nStrag, nCrash)
	}

	other := spec
	other.Seed = 12
	c, _ := other.Wire(n, rounds)
	same := true
	for p := 0; p < n; p++ {
		if a.Straggler(graph.Node(p)) != c.Straggler(graph.Node(p)) ||
			a.crashStart[p] != c.crashStart[p] {
			same = false
		}
	}
	if same {
		t.Fatal("seed 11 and 12 wired identical fault schedules")
	}

	// Per-round decisions replay too.
	l := channel.Link{From: 1, To: 2}
	for r := 0; r < rounds; r++ {
		if a.Erased(l, r) != b.Erased(l, r) || a.ExtraDelay(l, r) != b.ExtraDelay(l, r) {
			t.Fatalf("per-round fault decisions differ at round %d", r)
		}
	}
}

// TestCrashWindowSilence: during a party's crash window every symbol it
// sends or is sent is erased in transit (deletions), and after the
// window traffic resumes — crash-stop/restart, not abort.
func TestCrashWindowSilence(t *testing.T) {
	g := graph.Clique(4)
	const rounds = 100
	spec := FaultSchedule{Seed: 5, Crashes: 1, CrashLen: 12}
	wf, err := spec.Wire(4, rounds)
	if err != nil {
		t.Fatal(err)
	}
	crashed := -1
	for p := 0; p < 4; p++ {
		if wf.crashEnd[p] > wf.crashStart[p] {
			crashed = p
		}
	}
	if crashed < 0 {
		t.Fatal("no crash window wired")
	}

	ps, eps := mkParties(4, cliqueFns(4))
	eng, _ := NewEngine(g, ps, nil, nil)
	eng.SetTiming(Unit{}, wf)
	eng.RunRounds(0, rounds)

	inWindow := func(r int) bool { return r >= wf.crashStart[crashed] && r < wf.crashEnd[crashed] }
	for i, ep := range eps {
		for _, rec := range ep.received {
			if inWindow(rec.round) && (int(rec.from) == crashed || i == crashed) && rec.sym != bitstring.Silence {
				t.Fatalf("party %d received %v from %d in round %d inside the crash window",
					i, rec.sym, rec.from, rec.round)
			}
		}
	}
	// After restart the crashed party's symbols flow again: the send
	// pattern never emits silence on round+id+to ≡ 0 (mod 3) misses only
	// some slots, so just assert at least one non-silent delivery from the
	// crashed party after the window.
	resumed := false
	for i, ep := range eps {
		if i == crashed {
			continue
		}
		for _, rec := range ep.received {
			if int(rec.from) == crashed && rec.round >= wf.crashEnd[crashed] && rec.sym != bitstring.Silence {
				resumed = true
			}
		}
	}
	if !resumed {
		t.Fatal("crashed party never resumed sending after its window")
	}
	if eng.Metrics().Net.Erasures == 0 {
		t.Fatal("crash window recorded no erasures")
	}
}

// TestTimedDeterministicReplay: a faulty timed run is a pure function of
// its seeds — two engines with identical configuration produce identical
// deliveries and metrics, including under delay spikes and outages.
func TestTimedDeterministicReplay(t *testing.T) {
	g := graph.Clique(5)
	const rounds = 60
	spec := FaultSchedule{Seed: 9, OutageRate: 0.02, SpikeRate: 0.05, Stragglers: 1}
	run := func() (*Engine, []*echoParty) {
		wf, err := spec.Wire(5, rounds)
		if err != nil {
			t.Fatal(err)
		}
		ps, eps := mkParties(5, cliqueFns(5))
		eng, _ := NewEngine(g, ps, nil, nil)
		eng.SetTiming(FixedJitter{Base: 0.4, Jitter: 0.8, Seed: 77}, wf)
		eng.RunRounds(0, rounds)
		return eng, eps
	}
	engA, epsA := run()
	engB, epsB := run()
	mA, mB := engA.Metrics(), engB.Metrics()
	if mA.CC != mB.CC || mA.Corruptions != mB.Corruptions {
		t.Fatalf("metrics differ across replays: %+v vs %+v", mA, mB)
	}
	if mA.Net.Makespan != mB.Net.Makespan ||
		mA.Net.LateSymbols != mB.Net.LateSymbols ||
		mA.Net.LateDelivered != mB.Net.LateDelivered ||
		mA.Net.LateDropped != mB.Net.LateDropped ||
		mA.Net.Erasures != mB.Net.Erasures {
		t.Fatalf("NetStats differ across replays: %+v vs %+v", mA.Net, mB.Net)
	}
	for i := range epsA {
		a, b := epsA[i].received, epsB[i].received
		if len(a) != len(b) {
			t.Fatalf("party %d received %d vs %d deliveries", i, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("party %d delivery %d differs", i, j)
			}
		}
	}
	// The jittery faulty run should actually exercise the machinery.
	if mA.Net.LateSymbols == 0 {
		t.Fatal("jitter past the deadline produced no late symbols")
	}
	if mA.Net.MaxP99() <= 0 {
		t.Fatal("delay histogram recorded nothing")
	}
}

// TestDelayModelsShape sanity-checks the seed models' ranges: jitter in
// [Base, Base+Jitter), lognormal positive with median roughly Median,
// bands constant per link.
func TestDelayModelsShape(t *testing.T) {
	l := channel.Link{From: 0, To: 1}
	j := FixedJitter{Base: 0.3, Jitter: 0.4, Seed: 1}
	for r := 0; r < 200; r++ {
		d := j.Delay(r, l)
		if d < 0.3 || d >= 0.7 {
			t.Fatalf("jitter delay %g outside [0.3, 0.7)", d)
		}
	}
	ln := Lognormal{Median: 0.5, Sigma: 0.25, Seed: 1}
	below := 0
	for r := 0; r < 400; r++ {
		d := ln.Delay(r, l)
		if d <= 0 {
			t.Fatalf("lognormal delay %g not positive", d)
		}
		if d < 0.5 {
			below++
		}
	}
	if below < 120 || below > 280 {
		t.Fatalf("lognormal median off: %d/400 draws below the median", below)
	}
	b := Bands{Bands: []Band{{Fraction: 0.5, Base: 0.2, Jitter: 0}, {Fraction: 0.5, Base: 0.8, Jitter: 0}}, Seed: 3}
	for _, link := range []channel.Link{{From: 0, To: 1}, {From: 1, To: 0}, {From: 2, To: 3}} {
		d0 := b.Delay(0, link)
		for r := 1; r < 50; r++ {
			if b.Delay(r, link) != d0 {
				t.Fatalf("band assignment of link %v drifted across rounds", link)
			}
		}
		if d0 != 0.2 && d0 != 0.8 {
			t.Fatalf("band delay %g is neither band", d0)
		}
	}
	if math.Abs(Unit{}.Delay(0, l)-1.0) > 0 {
		t.Fatal("unit delay is not 1")
	}
}

// TestFaultScheduleValidate rejects malformed schedules.
func TestFaultScheduleValidate(t *testing.T) {
	bad := []FaultSchedule{
		{OutageRate: -0.1},
		{OutageRate: 1.5},
		{SpikeRate: 2},
		{OutageLen: -1},
		{SpikeDelay: -1},
		{Stragglers: -1},
		{Crashes: -2},
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("case %d: malformed schedule %+v accepted", i, f)
		}
	}
	good := FaultSchedule{OutageRate: 0.5, SpikeRate: 0.1, Stragglers: 1, Crashes: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
}
