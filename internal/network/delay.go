package network

import (
	"math"

	"mpic/internal/channel"
	"mpic/internal/detrand"
)

// DelayModel assigns every transmission a virtual-time flight delay,
// measured in round-periods: a symbol sent at the start of round r
// (virtual time r) arrives at r + Delay. The round's deadline is r+1, so
// a delay ≤ 1 is on time and a delay > 1 makes the symbol late — which
// the deadline synchronizer maps onto the paper's insdel noise model
// (a deletion at the deadline, an out-of-band insertion when it lands).
//
// Delay must be a pure function of its arguments and the model's own
// configuration (draw randomness through internal/detrand's site-hashed
// primitives, never a stateful RNG): the DES core relies on it for
// bit-identical replay from a seed at any worker count.
type DelayModel interface {
	// Delay returns the flight time, in rounds, of the symbol sent in
	// `round` on the directed link `link`. Must be positive.
	Delay(round int, link channel.Link) float64
	// Lockstep reports whether the model is the unit model (every delay
	// exactly 1.0). The engine runs lockstep models without a fault
	// schedule on the classic synchronous path, byte-identical to the
	// pre-virtual-time engine.
	Lockstep() bool
}

// delayOrd folds a (round, link) coordinate into the ordinal fed to the
// site-hashed fault primitives. The multipliers keep distinct
// coordinates from colliding before detrand.Roll's own mixing.
func delayOrd(round int, link channel.Link) uint64 {
	return uint64(round)*0x9e3779b97f4a7c15 ^ uint64(link.From)<<20 ^ uint64(link.To)
}

// linkOrd identifies a directed link alone (round-independent draws,
// e.g. a link's delay band).
func linkOrd(link channel.Link) uint64 {
	return uint64(link.From)<<32 | uint64(link.To)
}

// Unit is the lockstep delay model: every symbol takes exactly one round
// and arrives exactly at its deadline. It reproduces the paper's
// synchronous network.
type Unit struct{}

// Delay implements DelayModel.
func (Unit) Delay(int, channel.Link) float64 { return 1.0 }

// Lockstep implements DelayModel.
func (Unit) Lockstep() bool { return true }

// FixedJitter is base delay plus uniform jitter: each symbol's flight
// time is Base + Jitter·U where U is a seed-deterministic uniform [0,1)
// draw per (round, link). With Base+Jitter ≤ 1 no symbol is ever late;
// pushing the range past 1 makes the tail miss deadlines.
type FixedJitter struct {
	// Base is the minimum flight time in rounds.
	Base float64
	// Jitter is the width of the uniform jitter band in rounds.
	Jitter float64
	// Seed drives the per-symbol draws.
	Seed int64
}

// Delay implements DelayModel.
func (m FixedJitter) Delay(round int, link channel.Link) float64 {
	return m.Base + m.Jitter*detrand.Roll(m.Seed, "delay-jitter", delayOrd(round, link))
}

// Lockstep implements DelayModel.
func (m FixedJitter) Lockstep() bool { return false }

// Lognormal draws flight times from a lognormal distribution — the
// standard model of legitimate wide-area latency (cf. the
// satnet-simulator's LegitMu/LegitSigma): median Median, log-scale
// spread Sigma. The heavy upper tail produces occasional late symbols
// without any symbol ever being early-infinite: delays are clamped
// below at a small positive floor.
type Lognormal struct {
	// Median is the distribution's median flight time in rounds.
	Median float64
	// Sigma is the log-scale standard deviation.
	Sigma float64
	// Seed drives the per-symbol draws.
	Seed int64
}

// Delay implements DelayModel.
func (m Lognormal) Delay(round int, link channel.Link) float64 {
	ord := delayOrd(round, link)
	// Box–Muller from two independent site-hashed uniforms; u1 is kept
	// away from 0 so the log stays finite.
	u1 := detrand.Roll(m.Seed, "delay-ln-u1", ord)
	u2 := detrand.Roll(m.Seed, "delay-ln-u2", ord)
	if u1 < 1e-12 {
		u1 = 1e-12
	}
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	d := m.Median * math.Exp(m.Sigma*z)
	if d < 1e-3 {
		d = 1e-3
	}
	return d
}

// Lockstep implements DelayModel.
func (m Lognormal) Lockstep() bool { return false }

// Band is one latency class of the Bands model: flight times uniform in
// [Base, Base+Jitter).
type Band struct {
	// Fraction is the probability a directed link belongs to this band;
	// fractions should sum to 1 (the last band absorbs any remainder).
	Fraction float64
	// Base and Jitter shape the band's uniform delay, in rounds.
	Base, Jitter float64
}

// Bands is the heterogeneous per-link model (à la the satnet-simulator's
// SatellitePath classes — LEO-fast vs GEO-slow): each directed link is
// assigned one Band once, by a seed-deterministic draw, and all its
// symbols fly with that band's base+jitter delay.
type Bands struct {
	// Bands are the latency classes; must be non-empty.
	Bands []Band
	// Seed drives both the band assignment and the per-symbol jitter.
	Seed int64
}

// band returns the band a directed link is assigned to.
func (m Bands) band(link channel.Link) Band {
	u := detrand.Roll(m.Seed, "delay-band", linkOrd(link))
	acc := 0.0
	for _, b := range m.Bands {
		acc += b.Fraction
		if u < acc {
			return b
		}
	}
	return m.Bands[len(m.Bands)-1]
}

// Delay implements DelayModel.
func (m Bands) Delay(round int, link channel.Link) float64 {
	b := m.band(link)
	return b.Base + b.Jitter*detrand.Roll(m.Seed, "delay-band-jitter", delayOrd(round, link))
}

// Lockstep implements DelayModel.
func (m Bands) Lockstep() bool { return false }
