package network

import (
	"fmt"
	"sort"

	"mpic/internal/channel"
	"mpic/internal/detrand"
	"mpic/internal/graph"
)

// FaultSchedule declares network-level faults for a timed run. Every
// decision the schedule makes — is this link in an outage this round,
// does this symbol hit a delay spike, which parties straggle or crash —
// is a pure site-hashed function of Seed and the event's coordinates
// (internal/detrand's Roll/Pick), so a faulty run replays bit-identically
// from its seed at any worker count, exactly like channel noise does.
//
// The zero value of every knob is "off" (or a documented default for the
// shape parameters); a nil *FaultSchedule means no network faults.
type FaultSchedule struct {
	// Seed drives every decision below.
	Seed int64

	// OutageRate is the per-(directed link, round) probability that an
	// outage window opens there; while any window covers a round, every
	// symbol sent on the link is erased in transit (a deletion).
	OutageRate float64
	// OutageLen is each outage window's length in rounds (default 8).
	OutageLen int

	// SpikeRate is the per-(link, round) probability a symbol's flight
	// time gains SpikeDelay extra rounds — a transient latency spike.
	SpikeRate float64
	// SpikeDelay is the spike's extra delay in rounds (default 2).
	SpikeDelay float64

	// Stragglers is the number of straggler parties: every symbol they
	// send carries StragglerDelay extra rounds of flight time. The
	// parties are picked deterministically from Seed.
	Stragglers int
	// StragglerDelay is the stragglers' extra outgoing delay in rounds
	// (default 0.6 — enough to push unit-model symbols past deadlines).
	StragglerDelay float64

	// Crashes is the number of crash-stop/restart parties: each gets one
	// deterministic crash window during which it is silence on all its
	// links, both directions — its outgoing symbols and the symbols
	// addressed to it are erased in transit. The in-process party state
	// is untouched, so on restart the party resumes from its last state
	// and the coding scheme repairs the gap like any other insdel burst:
	// graceful degradation, not abort.
	Crashes int
	// CrashLen is each crash window's length in rounds (default 25).
	CrashLen int
}

// Validate rejects malformed schedules before anything runs.
func (f *FaultSchedule) Validate() error {
	if f.OutageRate < 0 || f.OutageRate > 1 {
		return fmt.Errorf("network: OutageRate %g outside [0,1]", f.OutageRate)
	}
	if f.SpikeRate < 0 || f.SpikeRate > 1 {
		return fmt.Errorf("network: SpikeRate %g outside [0,1]", f.SpikeRate)
	}
	if f.OutageLen < 0 || f.CrashLen < 0 {
		return fmt.Errorf("network: negative fault window (OutageLen %d, CrashLen %d)", f.OutageLen, f.CrashLen)
	}
	if f.SpikeDelay < 0 || f.StragglerDelay < 0 {
		return fmt.Errorf("network: negative extra delay (SpikeDelay %g, StragglerDelay %g)", f.SpikeDelay, f.StragglerDelay)
	}
	if f.Stragglers < 0 || f.Crashes < 0 {
		return fmt.Errorf("network: negative party counts (Stragglers %d, Crashes %d)", f.Stragglers, f.Crashes)
	}
	return nil
}

// WiredFaults is a FaultSchedule resolved against a concrete run: party
// count and total rounds are known, so the straggler set and the crash
// windows are materialized. All remaining per-round decisions stay pure
// functions of the seed.
type WiredFaults struct {
	spec           FaultSchedule
	outageLen      int
	spikeDelay     float64
	stragglerDelay float64
	straggler      []bool // per party
	crashStart     []int  // per party; crashEnd[p] ≤ crashStart[p] means no crash
	crashEnd       []int
}

// pickParties deterministically selects count distinct parties out of n:
// the count smallest under a seed-hashed ranking, so the choice is a
// pure function of (seed, site, n).
func pickParties(seed int64, site string, n, count int) []bool {
	chosen := make([]bool, n)
	if count <= 0 {
		return chosen
	}
	if count > n {
		count = n
	}
	type ranked struct {
		p    int
		rank float64
	}
	rs := make([]ranked, n)
	for p := 0; p < n; p++ {
		rs[p] = ranked{p: p, rank: detrand.Roll(seed, site, uint64(p))}
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].rank != rs[j].rank {
			return rs[i].rank < rs[j].rank
		}
		return rs[i].p < rs[j].p
	})
	for i := 0; i < count; i++ {
		chosen[rs[i].p] = true
	}
	return chosen
}

// Wire resolves the schedule for a run with n parties over totalRounds
// rounds. Crash windows land in the middle half of the run so the
// randomness-exchange preamble and the closing iterations stay clear of
// the blackout.
func (f *FaultSchedule) Wire(n, totalRounds int) (*WiredFaults, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	w := &WiredFaults{
		spec:           *f,
		outageLen:      f.OutageLen,
		spikeDelay:     f.SpikeDelay,
		stragglerDelay: f.StragglerDelay,
	}
	if w.outageLen <= 0 {
		w.outageLen = 8
	}
	if w.spikeDelay <= 0 {
		w.spikeDelay = 2.0
	}
	if w.stragglerDelay <= 0 {
		w.stragglerDelay = 0.6
	}
	w.straggler = pickParties(f.Seed, "net-straggler", n, f.Stragglers)
	w.crashStart = make([]int, n)
	w.crashEnd = make([]int, n)
	if f.Crashes > 0 {
		crashLen := f.CrashLen
		if crashLen <= 0 {
			crashLen = 25
		}
		if crashLen > totalRounds/2 {
			crashLen = totalRounds / 2
		}
		crashed := pickParties(f.Seed, "net-crash", n, f.Crashes)
		lo := totalRounds / 4
		span := totalRounds*3/4 - crashLen - lo
		if span < 1 {
			span = 1
		}
		for p := 0; p < n; p++ {
			if !crashed[p] || crashLen == 0 {
				continue
			}
			start := lo + detrand.Pick(f.Seed, "net-crash-start", uint64(p), span)
			w.crashStart[p] = start
			w.crashEnd[p] = start + crashLen
		}
	}
	return w, nil
}

// Crashed reports whether party p is inside its crash window at round r.
func (w *WiredFaults) Crashed(p graph.Node, r int) bool {
	i := int(p)
	return w.crashEnd[i] > w.crashStart[i] && r >= w.crashStart[i] && r < w.crashEnd[i]
}

// Straggler reports whether party p is a straggler.
func (w *WiredFaults) Straggler(p graph.Node) bool { return w.straggler[int(p)] }

// outage reports whether the directed link is covered by an outage
// window at round r: a window opens at any round r0 with probability
// OutageRate and covers [r0, r0+outageLen).
func (w *WiredFaults) outage(link channel.Link, r int) bool {
	if w.spec.OutageRate <= 0 {
		return false
	}
	for d := 0; d < w.outageLen && d <= r; d++ {
		if detrand.Roll(w.spec.Seed, "net-outage", delayOrd(r-d, link)) < w.spec.OutageRate {
			return true
		}
	}
	return false
}

// Erased reports whether a symbol sent on link in round r is lost in
// transit: the link is in an outage window, or either endpoint is
// crashed.
func (w *WiredFaults) Erased(link channel.Link, r int) bool {
	return w.outage(link, r) || w.Crashed(link.From, r) || w.Crashed(link.To, r)
}

// ExtraDelay returns the fault schedule's additive flight delay for a
// symbol sent on link in round r: a straggler sender's constant lag plus
// any transient spike.
func (w *WiredFaults) ExtraDelay(link channel.Link, r int) float64 {
	extra := 0.0
	if w.straggler[int(link.From)] {
		extra += w.stragglerDelay
	}
	if w.spec.SpikeRate > 0 &&
		detrand.Roll(w.spec.Seed, "net-spike", delayOrd(r, link)) < w.spec.SpikeRate {
		extra += w.spikeDelay
	}
	return extra
}
