package network

import (
	"runtime"
	"testing"

	"mpic/internal/adversary"
	"mpic/internal/bitstring"
	"mpic/internal/channel"
	"mpic/internal/graph"
	"mpic/internal/trace"
)

// echoParty emits a fixed per-round pattern and records everything it
// observes, for engine-behavior tests.
type echoParty struct {
	id       graph.Node
	sendFn   func(round int, to graph.Node) bitstring.Symbol
	received []recorded
	ends     []int
}

type recorded struct {
	round int
	from  graph.Node
	sym   bitstring.Symbol
}

func (p *echoParty) ID() graph.Node { return p.id }

func (p *echoParty) Send(round int, to graph.Node) bitstring.Symbol {
	if p.sendFn == nil {
		return bitstring.Silence
	}
	return p.sendFn(round, to)
}

func (p *echoParty) Deliver(round int, from graph.Node, sym bitstring.Symbol) {
	p.received = append(p.received, recorded{round: round, from: from, sym: sym})
}

func (p *echoParty) EndRound(round int) { p.ends = append(p.ends, round) }

func mkParties(n int, fns map[int]func(int, graph.Node) bitstring.Symbol) ([]Party, []*echoParty) {
	eps := make([]*echoParty, n)
	ps := make([]Party, n)
	for i := 0; i < n; i++ {
		eps[i] = &echoParty{id: graph.Node(i), sendFn: fns[i]}
		ps[i] = eps[i]
	}
	return ps, eps
}

func TestEngineDeliversSymbols(t *testing.T) {
	g := graph.Line(3)
	ps, eps := mkParties(3, map[int]func(int, graph.Node) bitstring.Symbol{
		0: func(r int, to graph.Node) bitstring.Symbol { return bitstring.Sym1 },
	})
	eng, err := NewEngine(g, ps, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	eng.RunRounds(0, 2)
	// Party 1 must have received Sym1 from 0 and Silence from 2, both
	// rounds.
	var from0, from2 int
	for _, r := range eps[1].received {
		switch {
		case r.from == 0 && r.sym == bitstring.Sym1:
			from0++
		case r.from == 2 && r.sym == bitstring.Silence:
			from2++
		}
	}
	if from0 != 2 || from2 != 2 {
		t.Fatalf("party 1 received from0=%d from2=%d, want 2/2", from0, from2)
	}
	// CC: party 0 transmits on 1 link × 2 rounds.
	if eng.Metrics().CC != 2 {
		t.Fatalf("CC = %d, want 2", eng.Metrics().CC)
	}
}

func TestEngineEndRoundHook(t *testing.T) {
	g := graph.Line(2)
	ps, eps := mkParties(2, nil)
	eng, _ := NewEngine(g, ps, nil, nil)
	eng.RunRounds(0, 3)
	want := []int{0, 1, 2}
	for _, p := range eps {
		if len(p.ends) != 3 {
			t.Fatalf("EndRound called %d times, want 3", len(p.ends))
		}
		for i, r := range p.ends {
			if r != want[i] {
				t.Fatalf("EndRound rounds = %v", p.ends)
			}
		}
	}
}

func TestEngineValidation(t *testing.T) {
	g := graph.Line(3)
	ps, _ := mkParties(2, nil)
	if _, err := NewEngine(g, ps, nil, nil); err == nil {
		t.Error("party/node count mismatch accepted")
	}
	bad := []Party{&echoParty{id: 1}, &echoParty{id: 0}, &echoParty{id: 2}}
	if _, err := NewEngine(g, bad, nil, nil); err == nil {
		t.Error("misindexed parties accepted")
	}
}

func TestEngineAdversaryConsultedOnSilentSlots(t *testing.T) {
	g := graph.Line(2)
	ps, eps := mkParties(2, nil) // nobody transmits
	// Insert a bit on every slot of link 0→1.
	pat := adversary.NewPattern()
	for r := 0; r < 3; r++ {
		pat.Set(r, channel.Link{From: 0, To: 1}, 2) // Silence+2 = Sym1
	}
	eng, _ := NewEngine(g, ps, pat, nil)
	eng.RunRounds(0, 3)
	got := 0
	for _, rec := range eps[1].received {
		if rec.from == 0 && rec.sym == bitstring.Sym1 {
			got++
		}
	}
	if got != 3 {
		t.Fatalf("insertions delivered %d, want 3", got)
	}
	m := eng.Metrics()
	if m.Corruptions[channel.KindInsertion] != 3 {
		t.Fatalf("insertion count = %d, want 3", m.Corruptions[channel.KindInsertion])
	}
	if m.CC != 0 {
		t.Fatalf("CC = %d, want 0 (insertions are not party transmissions)", m.CC)
	}
}

func TestEngineCorruptionClassification(t *testing.T) {
	g := graph.Line(2)
	ps, _ := mkParties(2, map[int]func(int, graph.Node) bitstring.Symbol{
		0: func(r int, to graph.Node) bitstring.Symbol { return bitstring.Sym0 },
	})
	pat := adversary.NewPattern()
	pat.Set(0, channel.Link{From: 0, To: 1}, 1) // 0 → 1: substitution
	pat.Set(1, channel.Link{From: 0, To: 1}, 2) // 0 → *: deletion
	eng, _ := NewEngine(g, ps, pat, nil)
	eng.RunRounds(0, 2)
	m := eng.Metrics()
	if m.Corruptions[channel.KindSubstitution] != 1 {
		t.Errorf("substitutions = %d, want 1", m.Corruptions[channel.KindSubstitution])
	}
	if m.Corruptions[channel.KindDeletion] != 1 {
		t.Errorf("deletions = %d, want 1", m.Corruptions[channel.KindDeletion])
	}
}

func TestEnginePhaseAttribution(t *testing.T) {
	g := graph.Line(2)
	ps, _ := mkParties(2, map[int]func(int, graph.Node) bitstring.Symbol{
		0: func(r int, to graph.Node) bitstring.Symbol { return bitstring.Sym1 },
		1: func(r int, to graph.Node) bitstring.Symbol { return bitstring.Sym1 },
	})
	eng, _ := NewEngine(g, ps, nil, nil)
	eng.SetPhaseFn(func(round int) trace.Phase {
		if round < 2 {
			return trace.PhaseSimulation
		}
		return trace.PhaseRewind
	})
	eng.RunRounds(0, 3)
	m := eng.Metrics()
	if m.CCPhase[trace.PhaseSimulation] != 4 || m.CCPhase[trace.PhaseRewind] != 2 {
		t.Fatalf("phase CC = sim %d / rewind %d, want 4/2",
			m.CCPhase[trace.PhaseSimulation], m.CCPhase[trace.PhaseRewind])
	}
}

// TestParallelMatchesSequential: the concurrent send executor must produce
// identical results.
func TestParallelMatchesSequential(t *testing.T) {
	g := graph.Clique(5)
	mk := func() ([]Party, []*echoParty) {
		return mkParties(5, map[int]func(int, graph.Node) bitstring.Symbol{
			0: func(r int, to graph.Node) bitstring.Symbol {
				return bitstring.Symbol(uint8(r+int(to)) % 3)
			},
			2: func(r int, to graph.Node) bitstring.Symbol { return bitstring.Sym0 },
			4: func(r int, to graph.Node) bitstring.Symbol {
				if r%2 == 0 {
					return bitstring.Sym1
				}
				return bitstring.Silence
			},
		})
	}
	psA, epsA := mk()
	engA, _ := NewEngine(g, psA, nil, nil)
	engA.RunRounds(0, 10)

	forceMultiProc(t)
	psB, epsB := mk()
	engB, _ := NewEngine(g, psB, nil, nil)
	engB.Parallel = true
	engB.RunRounds(0, 10)
	defer engB.Close()

	if engA.Metrics().CC != engB.Metrics().CC {
		t.Fatalf("CC differs: %d vs %d", engA.Metrics().CC, engB.Metrics().CC)
	}
	for i := range epsA {
		a, b := epsA[i].received, epsB[i].received
		if len(a) != len(b) {
			t.Fatalf("party %d received %d vs %d", i, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("party %d delivery %d differs: %+v vs %+v", i, j, a[j], b[j])
			}
		}
	}
}

func TestLinksDeterministicOrder(t *testing.T) {
	g := graph.Ring(4)
	ps, _ := mkParties(4, nil)
	eng, _ := NewEngine(g, ps, nil, nil)
	links := eng.Links()
	if len(links) != 8 {
		t.Fatalf("links = %d, want 8", len(links))
	}
	for i := 1; i < len(links); i++ {
		p, c := links[i-1], links[i]
		if p.From > c.From || (p.From == c.From && p.To >= c.To) {
			t.Fatal("links not sorted")
		}
	}
}

// forceMultiProc raises GOMAXPROCS so the pool engages even on a
// single-CPU machine (the engine refuses to parallelize at GOMAXPROCS=1).
func forceMultiProc(t *testing.T) {
	t.Helper()
	old := runtime.GOMAXPROCS(4)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// TestWorkerPoolAcrossRuns exercises the persistent pool over many rounds
// and multiple RunRounds calls (the pool outlives each call), including
// the Deliver/EndRound interleaving. Run with -race: the test's value is
// largely the happens-before edges it forces the pool to prove.
func TestWorkerPoolAcrossRuns(t *testing.T) {
	forceMultiProc(t)
	g := graph.Clique(9)
	n := g.N()
	fns := make(map[int]func(int, graph.Node) bitstring.Symbol, n)
	for i := 0; i < n; i++ {
		id := i
		fns[i] = func(r int, to graph.Node) bitstring.Symbol {
			return bitstring.Symbol(uint8(r+id+int(to)) % 3)
		}
	}
	psA, epsA := mkParties(n, fns)
	engA, _ := NewEngine(g, psA, nil, nil)
	engA.RunRounds(0, 60)

	psB, epsB := mkParties(n, fns)
	engB, _ := NewEngine(g, psB, nil, nil)
	engB.Parallel = true
	for r := 0; r < 60; r += 20 {
		engB.RunRounds(r, r+20)
	}
	engB.Close()
	engB.Close() // idempotent

	// A hinted engine mixes pooled and sequential rounds in one run.
	psC, epsC := mkParties(n, fns)
	engC, _ := NewEngine(g, psC, nil, nil)
	engC.Parallel = true
	engC.SetParallelHint(func(round int) bool { return round%3 == 0 })
	engC.RunRounds(0, 60)
	engC.Close()

	for i := range epsA {
		for name, other := range map[string][]recorded{"pooled": epsB[i].received, "hinted": epsC[i].received} {
			a := epsA[i].received
			if len(a) != len(other) {
				t.Fatalf("party %d received %d vs %d deliveries (%s)", i, len(a), len(other), name)
			}
			for j := range a {
				if a[j] != other[j] {
					t.Fatalf("party %d delivery %d differs (%s): %+v vs %+v", i, j, name, a[j], other[j])
				}
			}
		}
	}
}

// TestWorkerPoolSingleParty: the pool must not be engaged (or must behave)
// when only one party sends; exercise the len(ranges)<=1 guard via a
// two-node graph where the engine still has two ranges, and a degenerate
// RunRounds(0,0).
func TestWorkerPoolEdgeCases(t *testing.T) {
	forceMultiProc(t)
	g := graph.Line(2)
	ps, _ := mkParties(2, nil)
	eng, _ := NewEngine(g, ps, nil, nil)
	eng.Parallel = true
	eng.RunRounds(0, 0) // no rounds: pool never starts
	eng.Close()         // Close without pool is a no-op
	eng2ps, _ := mkParties(2, nil)
	eng2, _ := NewEngine(g, eng2ps, nil, nil)
	eng2.Parallel = true
	eng2.RunRounds(0, 5)
	eng2.Close()
}
