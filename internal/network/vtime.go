package network

import (
	"mpic/internal/bitstring"
	"mpic/internal/channel"
	"mpic/internal/trace"
)

// event is one in-flight symbol: pushed when sent, popped when its virtual
// arrival time is reached. Events are ordered by (time, seq); seq is
// assigned monotonically at push, so ties in arrival time resolve in push
// order — which is itself deterministic (rounds ascend, links in the
// engine's sorted order within a round). The pop order is therefore a pure
// function of the run's seeds, independent of GOMAXPROCS or worker count.
type event struct {
	time  float64          // virtual arrival time, in round-periods
	seq   uint64           // push order, tie-breaker
	li    int              // index into Engine.links
	sym   bitstring.Symbol // the wire symbol (post-adversary)
	round int              // the round the symbol was sent in
}

func eventLess(a, b event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

// eventHeap is a binary min-heap over (time, seq).
type eventHeap []event

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	s := *h
	for i := len(s) - 1; i > 0; {
		p := (i - 1) / 2
		if !eventLess(s[i], s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	for i := 0; ; {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && eventLess(s[c+1], s[c]) {
			c++
		}
		if !eventLess(s[c], s[i]) {
			break
		}
		s[i], s[c] = s[c], s[i]
		i = c
	}
	return top
}

// timedState is the virtual-time machinery of a timed engine: the delay
// model, the (optional) fault schedule, the in-flight event heap, and the
// per-round delivery slots of the deadline synchronizer.
type timedState struct {
	model  DelayModel
	faults *WiredFaults
	heap   eventHeap
	seq    uint64
	slots  []bitstring.Symbol // per link, rebuilt every round
	late   []event            // scratch: late arrivals popped this round
	stats  *trace.NetStats
}

// SetTiming puts the engine under a virtual-time delay model and an
// optional network-fault schedule. A nil model means Unit (lockstep).
// Lockstep models with no fault schedule keep the classic synchronous
// path — byte-identical to the pre-virtual-time engine, Metrics.Net nil —
// because under unit delay every symbol arrives exactly at its deadline
// and the DES reduces to the lockstep loop. Call before the first round.
func (e *Engine) SetTiming(model DelayModel, wf *WiredFaults) {
	if model == nil {
		model = Unit{}
	}
	if model.Lockstep() && wf == nil && !e.forceTimed {
		e.timing = nil
		return
	}
	stats := &trace.NetStats{Links: make([]trace.LinkDelay, len(e.links))}
	for i, l := range e.links {
		stats.Links[i] = trace.LinkDelay{From: int(l.From), To: int(l.To)}
	}
	e.timing = &timedState{
		model:  model,
		faults: wf,
		slots:  make([]bitstring.Symbol, len(e.links)),
		stats:  stats,
	}
	e.metrics.Net = stats
}

// stepTimed is one round of the virtual-time engine. The round abstraction
// is preserved by a deadline synchronizer: round r spans virtual time
// [r, r+1), its deadline is r+1, and parties step in lockstep on round
// boundaries regardless of what the network does in between.
//
// Send and adversary accounting are identical to the synchronous path:
// every party's Send is collected first, then the adversary is consulted
// on every directed link in deterministic order. What changes is
// delivery: each wire symbol is assigned a flight delay and scheduled on
// the event heap, and only the events whose arrival time is ≤ the
// deadline are delivered this round.
//
// Timing faults map onto the paper's insdel noise model:
//
//   - a symbol erased in transit (outage, crashed endpoint) is a deletion;
//   - a symbol whose arrival misses its deadline is recorded as a deletion
//     at the deadline — its receiver observes silence where a symbol was
//     due — and stays in flight;
//   - when a late symbol finally lands, it fills its link's slot in the
//     arrival round if that slot is silent, recorded as an out-of-band
//     insertion (the receiver observes a symbol it cannot attribute to the
//     current round); if the slot is occupied or the receiver is crashed,
//     the symbol is dropped — the deadline deletion is its only trace.
//
// Note one behavioral difference from the synchronous path: here all of a
// round's adversary corruptions happen before any delivery, whereas the
// lockstep loop interleaves Corrupt and Deliver per link. Protocol
// parties cannot observe the difference (they see only Deliver), but a
// white-box adversary that reads party state can — which is one more
// reason lockstep-no-fault runs stay on the classic path.
func (e *Engine) stepTimed(round int) {
	t := e.timing
	phase := trace.Phase(-1)
	if e.phaseFn != nil {
		phase = e.phaseFn(round)
	}
	e.collectSends(round)

	deadline := float64(round + 1)
	for i, l := range e.links {
		sent := e.sendBuf[i]
		if sent != bitstring.Silence {
			e.metrics.AddTransmission(phase)
		}
		recv := e.adv.Corrupt(round, l, sent)
		if k := channel.Classify(sent, recv); k != channel.KindNone {
			e.metrics.AddCorruption(k)
		}
		if recv == bitstring.Silence {
			continue // nothing on the wire
		}
		if t.faults != nil && t.faults.Erased(l, round) {
			// Lost in transit: the receiver sees silence — a deletion.
			e.metrics.AddCorruption(channel.KindDeletion)
			t.stats.Erasures++
			continue
		}
		d := t.model.Delay(round, l)
		if t.faults != nil {
			d += t.faults.ExtraDelay(l, round)
		}
		if d <= 0 {
			d = 1e-3
		}
		t.stats.Links[i].Hist.Observe(d)
		arrival := float64(round) + d
		if arrival > deadline {
			// Misses its deadline: deletion now, insertion when it lands.
			e.metrics.AddCorruption(channel.KindDeletion)
			t.stats.LateSymbols++
		}
		t.seq++
		t.heap.push(event{time: arrival, seq: t.seq, li: i, sym: recv, round: round})
	}

	// Deadline synchronizer: drain every event due by the deadline.
	// On-time symbols (sent this round) claim their link's slot; late
	// stragglers from earlier rounds are buffered and, in pop order, fill
	// whatever slots are still silent.
	for i := range t.slots {
		t.slots[i] = bitstring.Silence
	}
	t.late = t.late[:0]
	for len(t.heap) > 0 && t.heap[0].time <= deadline {
		ev := t.heap.pop()
		if ev.time > t.stats.Makespan {
			t.stats.Makespan = ev.time
		}
		if ev.round == round {
			t.slots[ev.li] = ev.sym
		} else {
			t.late = append(t.late, ev)
		}
	}
	for _, ev := range t.late {
		l := e.links[ev.li]
		if t.slots[ev.li] != bitstring.Silence ||
			(t.faults != nil && t.faults.Crashed(l.To, round)) {
			t.stats.LateDropped++
			continue
		}
		t.slots[ev.li] = ev.sym
		e.metrics.AddCorruption(channel.KindInsertion)
		t.stats.LateDelivered++
	}
	if deadline > t.stats.Makespan {
		t.stats.Makespan = deadline
	}

	for i, l := range e.links {
		e.parties[l.To].Deliver(round, l.From, t.slots[i])
	}
	for _, p := range e.parties {
		if re, ok := p.(RoundEnder); ok {
			re.EndRound(round)
		}
	}
}
