// Package network is the round engine of Section 2.1: in each round any
// subset of parties may transmit one symbol per incident link per
// direction; the adversary is consulted on every directed link every
// round (so it can insert into silent slots); deliveries happen at the
// end of the round, so information travels at one hop per round.
//
// The engine has two execution paths. The classic synchronous path is
// the paper's lockstep model — every symbol takes exactly one round. The
// virtual-time path (SetTiming; see vtime.go) runs the same rounds over
// a discrete-event core with per-symbol flight delays (DelayModel) and a
// network-fault schedule (FaultSchedule): a deadline synchronizer maps
// timing faults — late symbols, link outages, stragglers, crashed
// parties — onto the paper's insdel noise model, so the protocol and the
// coding scheme are untouched semantically. Both paths are bit-exactly
// deterministic from their seeds at any GOMAXPROCS.
package network

import (
	"fmt"
	"runtime"
	"sort"
	"sync/atomic"

	"mpic/internal/adversary"
	"mpic/internal/bitstring"
	"mpic/internal/channel"
	"mpic/internal/cores"
	"mpic/internal/graph"
	"mpic/internal/trace"
)

// Party is one protocol participant driven by the engine.
//
// Within a round the engine first collects Send for every outgoing
// directed link of every party, then applies channel noise, then calls
// Deliver for every incoming directed link of every party (Silence when
// nothing arrived). Implementations must not assume any ordering between
// parties within a round.
type Party interface {
	// ID returns the node this party occupies.
	ID() graph.Node
	// Send returns the symbol to transmit to neighbor `to` this round;
	// Silence means the party stays quiet on that link.
	Send(round int, to graph.Node) bitstring.Symbol
	// Deliver hands the party what it observed from neighbor `from` this
	// round (Silence when no symbol arrived).
	Deliver(round int, from graph.Node, sym bitstring.Symbol)
}

// RoundEnder is an optional Party extension: EndRound is invoked after all
// of a round's deliveries, letting phase-structured parties finalize state
// exactly at phase boundaries.
type RoundEnder interface {
	EndRound(round int)
}

// Engine runs parties over a noisy network.
type Engine struct {
	g       *graph.Graph
	parties []Party
	adv     adversary.Adversary
	metrics *trace.Metrics
	links   []channel.Link // all directed links, deterministic order
	phaseFn func(round int) trace.Phase
	// Parallel computes the Send phase concurrently on a persistent
	// worker pool (started lazily, one pool per engine). Results are
	// identical to sequential execution because parties are independent
	// within a round. Call Close when done with a parallel engine to
	// release the workers. On a single-CPU process (GOMAXPROCS=1) the
	// flag is a no-op: the pool cannot win there, so the engine stays
	// sequential.
	Parallel bool

	sendBuf []bitstring.Symbol
	// ranges partitions links by sending party: links[r.start:r.end] all
	// originate at parties[r.from]. Precomputed once; both executors use
	// it, and pool workers write disjoint sendBuf regions because of it.
	ranges  []sendRange
	pool    *sendPool
	maxProc int // GOMAXPROCS snapshot taken at construction
	// timing, when non-nil, switches the engine onto the virtual-time
	// discrete-event path (see vtime.go). Installed by SetTiming; nil
	// engines run the classic synchronous loop.
	timing *timedState
	// forceTimed makes SetTiming install the DES path even for lockstep
	// models with no faults — test-only, to prove DES-under-unit-delay
	// is equivalent to the synchronous loop.
	forceTimed bool
	// parallelHint, when set, marks the rounds worth parallelizing. Most
	// rounds of the coding scheme move one symbol per link and are
	// dominated by the pool's synchronization; the caller (which knows the
	// phase layout) can restrict the pool to the rounds that concentrate
	// real compute, e.g. the consistency-check round that rehashes every
	// transcript. Unhinted parallel engines use the pool on every round.
	parallelHint func(round int) bool
	// budget, when non-nil, is the shared core-budget token pool this
	// engine borrows helper cores from (the elastic worker split: grid
	// cell workers hold tokens, and whatever is spare flows to heavy
	// rounds here). A nil budget means the engine owns the machine and
	// uses up to GOMAXPROCS workers as before.
	budget *cores.Budget
}

// sendRange is one party's contiguous run of outgoing directed links.
type sendRange struct {
	from       graph.Node
	start, end int
}

// NewEngine wires parties (one per node, indexed by ID) to graph g with
// the given adversary. The metrics sink may be shared with the caller.
func NewEngine(g *graph.Graph, parties []Party, adv adversary.Adversary, metrics *trace.Metrics) (*Engine, error) {
	if len(parties) != g.N() {
		return nil, fmt.Errorf("network: %d parties for %d nodes", len(parties), g.N())
	}
	for i, p := range parties {
		if p.ID() != graph.Node(i) {
			return nil, fmt.Errorf("network: party %d has ID %d", i, p.ID())
		}
	}
	if adv == nil {
		adv = adversary.None{}
	}
	if metrics == nil {
		metrics = &trace.Metrics{}
	}
	var links []channel.Link
	for _, e := range g.Edges() {
		links = append(links, channel.Link{From: e.U, To: e.V}, channel.Link{From: e.V, To: e.U})
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].From != links[j].From {
			return links[i].From < links[j].From
		}
		return links[i].To < links[j].To
	})
	e := &Engine{
		g:       g,
		parties: parties,
		adv:     adv,
		metrics: metrics,
		links:   links,
		sendBuf: make([]bitstring.Symbol, len(links)),
	}
	for start := 0; start < len(links); {
		end := start
		for end < len(links) && links[end].From == links[start].From {
			end++
		}
		e.ranges = append(e.ranges, sendRange{from: links[start].From, start: start, end: end})
		start = end
	}
	e.maxProc = runtime.GOMAXPROCS(0)
	if ca, ok := adv.(adversary.ContextAware); ok {
		ca.SetContext(e)
	}
	return e, nil
}

// CC implements adversary.Context.
func (e *Engine) CC() int64 { return e.metrics.CC }

// Metrics returns the engine's accounting sink.
func (e *Engine) Metrics() *trace.Metrics { return e.metrics }

// Links returns all directed links in deterministic order.
func (e *Engine) Links() []channel.Link {
	out := make([]channel.Link, len(e.links))
	copy(out, e.links)
	return out
}

// SetPhaseFn installs the round → phase attribution used for per-phase CC
// accounting.
func (e *Engine) SetPhaseFn(fn func(round int) trace.Phase) { e.phaseFn = fn }

// SetParallelHint restricts the parallel executor to rounds fn marks as
// heavy; see the Parallel field. Pass nil to parallelize every round.
func (e *Engine) SetParallelHint(fn func(round int) bool) { e.parallelHint = fn }

// SetCoreBudget points the parallel executor at a shared core-budget
// token pool. For every heavy round the engine borrows whatever helper
// cores are spare (possibly none — the round then runs sequentially on
// the caller's core, which holds its own token) and returns them when
// the round's sends are collected. Results are bit-identical at any
// borrow outcome. Pass nil (the default) to let the engine assume it
// owns the machine.
func (e *Engine) SetCoreBudget(b *cores.Budget) { e.budget = b }

// maxHelpers is the most helper workers a heavy round can use beyond the
// caller's own goroutine: one per additional core, capped by the number
// of work units (per-party send ranges).
func (e *Engine) maxHelpers() int {
	w := e.maxProc
	if w > len(e.ranges) {
		w = len(e.ranges)
	}
	return w - 1
}

// RunRounds executes rounds [from, to).
func (e *Engine) RunRounds(from, to int) {
	for r := from; r < to; r++ {
		e.step(r)
	}
	if to > e.metrics.Rounds {
		e.metrics.Rounds = to
	}
}

// collectSends runs one round's Send phase (sequential or pooled) into
// sendBuf. Both the synchronous and the virtual-time paths use it.
func (e *Engine) collectSends(round int) {
	if e.Parallel && len(e.ranges) > 1 && e.maxProc > 1 &&
		(e.parallelHint == nil || e.parallelHint(round)) {
		helpers := e.maxHelpers()
		if e.budget != nil {
			// Elastic split: take only what the grid's other workers are
			// not using, for the duration of this round's Send phase.
			helpers = e.budget.TryAcquire(helpers)
		}
		if helpers > 0 {
			if e.pool == nil {
				e.pool = newSendPool(e)
			}
			e.pool.collect(round, helpers)
			if e.budget != nil {
				e.budget.Release(helpers)
			}
			return
		}
		// Every core is busy elsewhere: run the heavy round on our own
		// core (the token we already hold) rather than oversubscribing.
	}
	for i, l := range e.links {
		e.sendBuf[i] = e.parties[l.From].Send(round, l.To)
	}
}

func (e *Engine) step(round int) {
	if e.timing != nil {
		e.stepTimed(round)
		return
	}
	phase := trace.Phase(-1)
	if e.phaseFn != nil {
		phase = e.phaseFn(round)
	}
	// Collect phase: every party decides its outgoing symbols based on
	// deliveries from strictly earlier rounds.
	e.collectSends(round)
	// Noise + delivery phase.
	for i, l := range e.links {
		sent := e.sendBuf[i]
		if sent != bitstring.Silence {
			e.metrics.AddTransmission(phase)
		}
		recv := e.adv.Corrupt(round, l, sent)
		if k := channel.Classify(sent, recv); k != channel.KindNone {
			e.metrics.AddCorruption(k)
		}
		e.parties[l.To].Deliver(round, l.From, recv)
	}
	for _, p := range e.parties {
		if re, ok := p.(RoundEnder); ok {
			re.EndRound(round)
		}
	}
}

// Close releases the engine's worker pool, if one was started. The engine
// must not be stepped afterwards. Close is idempotent and safe on engines
// that never went parallel.
func (e *Engine) Close() {
	if e.pool != nil {
		close(e.pool.start)
		e.pool = nil
	}
}

// sendPool is the persistent parallel Send executor: a fixed set of
// helper workers that survives across rounds, replacing the
// goroutine-per-party-per-round pattern whose spawn cost swamped the
// per-round work at larger n. Parties are handed out via an atomic
// counter, so a slow party (deep in a rewind, say) does not serialize the
// round behind a static partition. The caller's goroutine always
// participates in the claim loop — its core is spoken for either way —
// and each round wakes only as many helpers as collect is told to use,
// which is how the elastic core budget throttles the pool round by
// round without tearing it down.
type sendPool struct {
	e       *Engine
	workers int // helper goroutines spawned (the caller is one more)
	next    atomic.Int64
	start   chan int      // round broadcast: one send per woken helper
	done    chan struct{} // one receive per woken helper per round
}

func newSendPool(e *Engine) *sendPool {
	w := e.maxHelpers()
	p := &sendPool{e: e, workers: w, start: make(chan int), done: make(chan struct{}, w)}
	for i := 0; i < w; i++ {
		go p.worker()
	}
	return p
}

// run claims send ranges until the round's work list is drained; both
// helpers and the collecting caller execute it.
func (p *sendPool) run(round int) {
	for {
		i := int(p.next.Add(1)) - 1
		if i >= len(p.e.ranges) {
			return
		}
		r := p.e.ranges[i]
		party := p.e.parties[r.from]
		for k := r.start; k < r.end; k++ {
			p.e.sendBuf[k] = party.Send(round, p.e.links[k].To)
		}
	}
}

func (p *sendPool) worker() {
	for round := range p.start {
		p.run(round)
		p.done <- struct{}{}
	}
}

// collect runs one round's Send phase on the pool — the caller plus up
// to helpers woken workers — and returns when every party's symbols are
// in sendBuf. The Store/send pair orders the counter reset before any
// helper starts, and the done receives order all helper sendBuf writes
// before the caller reads them.
func (p *sendPool) collect(round, helpers int) {
	if helpers > p.workers {
		helpers = p.workers
	}
	p.next.Store(0)
	for i := 0; i < helpers; i++ {
		p.start <- round
	}
	p.run(round)
	for i := 0; i < helpers; i++ {
		<-p.done
	}
}
