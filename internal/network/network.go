// Package network is the synchronous round engine of Section 2.1: in each
// round any subset of parties may transmit one symbol per incident link
// per direction; the adversary is consulted on every directed link every
// round (so it can insert into silent slots); deliveries happen at the end
// of the round, so information travels at one hop per round.
package network

import (
	"fmt"
	"sort"
	"sync"

	"mpic/internal/adversary"
	"mpic/internal/bitstring"
	"mpic/internal/channel"
	"mpic/internal/graph"
	"mpic/internal/trace"
)

// Party is one protocol participant driven by the engine.
//
// Within a round the engine first collects Send for every outgoing
// directed link of every party, then applies channel noise, then calls
// Deliver for every incoming directed link of every party (Silence when
// nothing arrived). Implementations must not assume any ordering between
// parties within a round.
type Party interface {
	// ID returns the node this party occupies.
	ID() graph.Node
	// Send returns the symbol to transmit to neighbor `to` this round;
	// Silence means the party stays quiet on that link.
	Send(round int, to graph.Node) bitstring.Symbol
	// Deliver hands the party what it observed from neighbor `from` this
	// round (Silence when no symbol arrived).
	Deliver(round int, from graph.Node, sym bitstring.Symbol)
}

// RoundEnder is an optional Party extension: EndRound is invoked after all
// of a round's deliveries, letting phase-structured parties finalize state
// exactly at phase boundaries.
type RoundEnder interface {
	EndRound(round int)
}

// Engine runs parties over a noisy network.
type Engine struct {
	g       *graph.Graph
	parties []Party
	adv     adversary.Adversary
	metrics *trace.Metrics
	links   []channel.Link // all directed links, deterministic order
	phaseFn func(round int) trace.Phase
	// Parallel computes the Send phase concurrently (one goroutine per
	// party). Results are identical to sequential execution because
	// parties are independent within a round.
	Parallel bool

	sendBuf []bitstring.Symbol
}

// NewEngine wires parties (one per node, indexed by ID) to graph g with
// the given adversary. The metrics sink may be shared with the caller.
func NewEngine(g *graph.Graph, parties []Party, adv adversary.Adversary, metrics *trace.Metrics) (*Engine, error) {
	if len(parties) != g.N() {
		return nil, fmt.Errorf("network: %d parties for %d nodes", len(parties), g.N())
	}
	for i, p := range parties {
		if p.ID() != graph.Node(i) {
			return nil, fmt.Errorf("network: party %d has ID %d", i, p.ID())
		}
	}
	if adv == nil {
		adv = adversary.None{}
	}
	if metrics == nil {
		metrics = &trace.Metrics{}
	}
	var links []channel.Link
	for _, e := range g.Edges() {
		links = append(links, channel.Link{From: e.U, To: e.V}, channel.Link{From: e.V, To: e.U})
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].From != links[j].From {
			return links[i].From < links[j].From
		}
		return links[i].To < links[j].To
	})
	e := &Engine{
		g:       g,
		parties: parties,
		adv:     adv,
		metrics: metrics,
		links:   links,
		sendBuf: make([]bitstring.Symbol, len(links)),
	}
	if ca, ok := adv.(adversary.ContextAware); ok {
		ca.SetContext(e)
	}
	return e, nil
}

// CC implements adversary.Context.
func (e *Engine) CC() int64 { return e.metrics.CC }

// Metrics returns the engine's accounting sink.
func (e *Engine) Metrics() *trace.Metrics { return e.metrics }

// Links returns all directed links in deterministic order.
func (e *Engine) Links() []channel.Link {
	out := make([]channel.Link, len(e.links))
	copy(out, e.links)
	return out
}

// SetPhaseFn installs the round → phase attribution used for per-phase CC
// accounting.
func (e *Engine) SetPhaseFn(fn func(round int) trace.Phase) { e.phaseFn = fn }

// RunRounds executes rounds [from, to).
func (e *Engine) RunRounds(from, to int) {
	for r := from; r < to; r++ {
		e.step(r)
	}
	if to > e.metrics.Rounds {
		e.metrics.Rounds = to
	}
}

func (e *Engine) step(round int) {
	phase := trace.Phase(-1)
	if e.phaseFn != nil {
		phase = e.phaseFn(round)
	}
	// Collect phase: every party decides its outgoing symbols based on
	// deliveries from strictly earlier rounds.
	if e.Parallel {
		e.collectParallel(round)
	} else {
		for i, l := range e.links {
			e.sendBuf[i] = e.parties[l.From].Send(round, l.To)
		}
	}
	// Noise + delivery phase.
	for i, l := range e.links {
		sent := e.sendBuf[i]
		if sent != bitstring.Silence {
			e.metrics.AddTransmission(phase)
		}
		recv := e.adv.Corrupt(round, l, sent)
		if k := channel.Classify(sent, recv); k != channel.KindNone {
			e.metrics.AddCorruption(k)
		}
		e.parties[l.To].Deliver(round, l.From, recv)
	}
	for _, p := range e.parties {
		if re, ok := p.(RoundEnder); ok {
			re.EndRound(round)
		}
	}
}

// collectParallel gathers sends with one goroutine per party. Each party's
// outgoing links are contiguous in e.links (sorted by From), so goroutines
// write disjoint regions of sendBuf.
func (e *Engine) collectParallel(round int) {
	// Compute per-party link ranges once.
	var wg sync.WaitGroup
	start := 0
	for start < len(e.links) {
		from := e.links[start].From
		end := start
		for end < len(e.links) && e.links[end].From == from {
			end++
		}
		wg.Add(1)
		go func(s, t int, p Party) {
			defer wg.Done()
			for i := s; i < t; i++ {
				e.sendBuf[i] = p.Send(round, e.links[i].To)
			}
		}(start, end, e.parties[from])
		start = end
	}
	wg.Wait()
}
