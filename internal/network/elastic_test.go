package network

import (
	"testing"

	"mpic/internal/bitstring"
	"mpic/internal/cores"
	"mpic/internal/graph"
)

// elasticParties builds a clique of parties with varied send patterns so
// the elastic engines have real per-round work to divide.
func elasticParties(n int) ([]Party, []*echoParty) {
	fns := map[int]func(int, graph.Node) bitstring.Symbol{}
	for i := 0; i < n; i++ {
		i := i
		fns[i] = func(r int, to graph.Node) bitstring.Symbol {
			if (r+i+int(to))%4 == 0 {
				return bitstring.Silence
			}
			return bitstring.Symbol(uint8(r+i*3+int(to)) % 3)
		}
	}
	return mkParties(n, fns)
}

// TestElasticBudgetMatchesSequential pins the elastic worker split's
// determinism contract: a parallel engine borrowing from a core budget —
// whether the budget is saturated (every heavy round denied, sequential
// fallback on the caller's core), has spares (pooled rounds), or is
// absent — delivers bit-identical symbols to the plain sequential
// engine.
func TestElasticBudgetMatchesSequential(t *testing.T) {
	const n, rounds = 6, 12
	forceMultiProc(t)

	psA, epsA := elasticParties(n)
	engA, _ := NewEngine(graph.Clique(n), psA, nil, nil)
	engA.RunRounds(0, rounds)

	// Saturated budget: every token held elsewhere, all borrows denied.
	psB, epsB := elasticParties(n)
	engB, _ := NewEngine(graph.Clique(n), psB, nil, nil)
	engB.Parallel = true
	full := cores.NewBudget(4)
	full.Acquire(4)
	engB.SetCoreBudget(full)
	engB.RunRounds(0, rounds)
	engB.Close()
	if st := full.Stats(); st.Borrows == 0 || st.Denied != st.Borrows || st.Granted != 0 {
		t.Fatalf("saturated budget stats %+v: want every borrow denied", st)
	}

	// Budget with spares: heavy rounds run pooled, tokens flow back.
	psC, epsC := elasticParties(n)
	engC, _ := NewEngine(graph.Clique(n), psC, nil, nil)
	engC.Parallel = true
	spare := cores.NewBudget(4)
	spare.Acquire(1) // the caller's own core
	engC.SetCoreBudget(spare)
	engC.RunRounds(0, rounds)
	engC.Close()
	st := spare.Stats()
	if st.Granted == 0 {
		t.Fatalf("spare budget stats %+v: want helper cores granted", st)
	}
	if st.Held != 1 {
		t.Fatalf("spare budget holds %d tokens after the run, want 1 (all borrows released)", st.Held)
	}

	for i := range epsA {
		for name, eps := range map[string][]*echoParty{"saturated": epsB, "spare": epsC} {
			a, b := epsA[i].received, eps[i].received
			if len(a) != len(b) {
				t.Fatalf("%s: party %d received %d vs %d deliveries", name, i, len(a), len(b))
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("%s: party %d delivery %d differs: %+v vs %+v", name, i, j, a[j], b[j])
				}
			}
		}
	}
}

// TestElasticBudgetPartialGrant pins the borrow cap: with only one spare
// token, a heavy round gets exactly one helper even though the machine
// (and the work list) could use more.
func TestElasticBudgetPartialGrant(t *testing.T) {
	forceMultiProc(t)
	ps, _ := elasticParties(6)
	eng, _ := NewEngine(graph.Clique(6), ps, nil, nil)
	eng.Parallel = true
	b := cores.NewBudget(2)
	b.Acquire(1)
	eng.SetCoreBudget(b)
	eng.RunRounds(0, 8)
	eng.Close()
	st := b.Stats()
	if st.Borrows == 0 || st.Granted != st.Borrows {
		t.Fatalf("stats %+v: want exactly one helper granted per heavy round", st)
	}
	if st.Held != 1 {
		t.Fatalf("budget holds %d tokens after the run, want 1", st.Held)
	}
}
