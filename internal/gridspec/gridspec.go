// Package gridspec is the one parser for scenario and grid
// specifications shared by the CLIs (cmd/mpicsim, cmd/mpicbench) and
// the grid service (cmd/mpicserve). Each spec is a flat struct of
// strings and scalars — the shape of a flag set and of a JSON request
// body alike — resolved through the library's four open registries
// (topology / workload / noise / delay), so the same field values parse
// identically whether they arrive on a command line or over HTTP.
package gridspec

import (
	"fmt"
	"strconv"
	"strings"

	"mpic"
)

// Scenario is a single-run specification — the scenario-shaping flags
// of mpicsim, by their flag names.
type Scenario struct {
	Topology        string  `json:"topology,omitempty"`
	N               int     `json:"n,omitempty"`
	Workload        string  `json:"workload,omitempty"`
	Rounds          int     `json:"rounds,omitempty"`
	Scheme          string  `json:"scheme,omitempty"`
	Noise           string  `json:"noise,omitempty"`
	Rate            float64 `json:"rate,omitempty"`
	Seed            int64   `json:"seed,omitempty"`
	IterFactor      int     `json:"iterfactor,omitempty"`
	Faithful        bool    `json:"faithful,omitempty"`
	Parallel        bool    `json:"parallel,omitempty"`
	HashMode        string  `json:"hashmode,omitempty"`
	EpochRefresh    int     `json:"epochRefresh,omitempty"`
	IncrementalHash bool    `json:"incrementalHash,omitempty"`
	Delay           string  `json:"delay,omitempty"`
	NetFaults       string  `json:"netfaults,omitempty"`
}

// Build resolves the specification into a runnable mpic.Scenario
// through the legacy Config shim (so empty topology falls back to the
// workload's own default) plus the delay and net-fault parsers.
func (s Scenario) Build() (mpic.Scenario, error) {
	var sch mpic.Scheme
	if s.Scheme != "" {
		var err error
		if sch, err = mpic.ParseScheme(s.Scheme); err != nil {
			return mpic.Scenario{}, err
		}
	}
	sc, err := mpic.Config{
		Topology:        s.Topology,
		N:               s.N,
		Workload:        s.Workload,
		WorkloadRounds:  s.Rounds,
		Scheme:          sch,
		Noise:           s.Noise,
		NoiseRate:       s.Rate,
		Seed:            s.Seed,
		IterFactor:      s.IterFactor,
		Faithful:        s.Faithful,
		Parallel:        s.Parallel,
		HashMode:        s.HashMode,
		EpochRefresh:    s.EpochRefresh,
		IncrementalHash: s.IncrementalHash,
	}.Scenario()
	if err != nil {
		return mpic.Scenario{}, err
	}
	if sc.Delay, err = mpic.ParseDelay(s.Delay); err != nil {
		return mpic.Scenario{}, err
	}
	if sc.Faults, err = mpic.ParseNetFaults(s.NetFaults); err != nil {
		return mpic.Scenario{}, err
	}
	return sc, nil
}

// defaultSeedStep is the per-trial seed stride grids run at unless the
// spec overrides it — the same prime mpicbench sweeps have always used.
const defaultSeedStep = 7907

// Grid is a cartesian grid specification — the sweep-shaping flags of
// `mpicbench -sweep`, by their flag names, with list-valued axes as
// comma-separated strings. The JSON tags make the struct double as the
// grid service's request body.
type Grid struct {
	Topology   string `json:"topology,omitempty"`
	Workload   string `json:"workload,omitempty"`
	Rounds     int    `json:"rounds,omitempty"`
	Noise      string `json:"noise,omitempty"`
	N          string `json:"n,omitempty"`
	Schemes    string `json:"schemes,omitempty"`
	Rates      string `json:"rates,omitempty"`
	Delay      string `json:"delay,omitempty"`
	NetFaults  string `json:"netfaults,omitempty"`
	Trials     int    `json:"trials,omitempty"`
	Seed       int64  `json:"seed,omitempty"`
	IterFactor int    `json:"iterfactor,omitempty"`
	// HashMode pins the sweep's prefix-hash seed discipline ("epoch",
	// "legacy", "incremental"); empty means the library default. Set
	// fields join the Spec fingerprint, so checkpoints from before the
	// fields existed keep theirs.
	HashMode     string `json:"hashmode,omitempty"`
	EpochRefresh int    `json:"epochRefresh,omitempty"`
	// SeedStep overrides the per-trial seed stride; 0 means the default
	// (7907). Non-default strides join the Spec fingerprint.
	SeedStep int64 `json:"seedstep,omitempty"`
}

// Normalize fills the fields a service submission may omit with the
// same defaults the mpicbench flag set declares, so an HTTP body and a
// bare `-sweep` invocation describe the same grid.
func (g Grid) Normalize() Grid {
	if g.Workload == "" {
		g.Workload = "random"
	}
	if g.Noise == "" {
		g.Noise = "random"
	}
	if g.N == "" {
		g.N = "4,6"
	}
	if g.Schemes == "" {
		g.Schemes = "A"
	}
	if g.Rates == "" {
		g.Rates = "0.001"
	}
	if g.Trials == 0 {
		g.Trials = 10
	}
	if g.Seed == 0 {
		g.Seed = 1
	}
	if g.IterFactor == 0 {
		g.IterFactor = 30
	}
	return g
}

// Spec fingerprints the grid-defining fields; a checkpoint written
// under a different spec must not be merged into this grid. The network
// timing fields join the spec only when set — and SeedStep only when it
// deviates from the default — so checkpoints from before those fields
// existed keep their fingerprints.
func (g Grid) Spec() string {
	s := fmt.Sprintf("topology=%s workload=%s rounds=%d noise=%s n=%s schemes=%s rates=%s trials=%d seed=%d iterfactor=%d",
		g.Topology, g.Workload, g.Rounds, g.Noise, g.N, g.Schemes, g.Rates, g.Trials, g.Seed, g.IterFactor)
	if g.Delay != "" || g.NetFaults != "" {
		s += fmt.Sprintf(" delay=%s netfaults=%s", g.Delay, g.NetFaults)
	}
	if g.SeedStep != 0 && g.SeedStep != defaultSeedStep {
		s += fmt.Sprintf(" seedstep=%d", g.SeedStep)
	}
	if g.HashMode != "" {
		s += fmt.Sprintf(" hashmode=%s", g.HashMode)
	}
	if g.EpochRefresh != 0 {
		s += fmt.Sprintf(" epochrefresh=%d", g.EpochRefresh)
	}
	return s
}

// Sweep resolves the specification into an mpic.Sweep. The noise-rate
// axis applies only when the scenario has a noise model at all; callers
// that want to reject a useless rate axis loudly (mpicbench does, for
// an explicit -sweep-rates flag) check sw.Base.Noise themselves.
func (g Grid) Sweep() (mpic.Sweep, error) {
	ns, err := ParseInts(g.N)
	if err != nil {
		return mpic.Sweep{}, fmt.Errorf("n: %w", err)
	}
	if len(ns) == 0 {
		return mpic.Sweep{}, fmt.Errorf("n: at least one party count is required")
	}
	var rates []float64
	if g.Rates != "" {
		if rates, err = ParseFloats(g.Rates); err != nil {
			return mpic.Sweep{}, fmt.Errorf("rates: %w", err)
		}
	}
	var schemes []mpic.Scheme
	if g.Schemes != "" {
		if schemes, err = ParseSchemes(g.Schemes); err != nil {
			return mpic.Sweep{}, fmt.Errorf("schemes: %w", err)
		}
	}
	// Resolve the names exactly like mpicsim does — through the legacy
	// Config shim — so an empty topology falls back to the workload's
	// own default (fixed-topology workloads included).
	base, err := mpic.Config{
		Topology: g.Topology,
		N:        ns[0],
		Workload: g.Workload, WorkloadRounds: g.Rounds,
		Noise:        g.Noise,
		Seed:         g.Seed,
		IterFactor:   g.IterFactor,
		HashMode:     g.HashMode,
		EpochRefresh: g.EpochRefresh,
	}.Scenario()
	if err != nil {
		return mpic.Sweep{}, err
	}
	if base.Faults, err = mpic.ParseNetFaults(g.NetFaults); err != nil {
		return mpic.Sweep{}, err
	}
	var delays []mpic.DelaySpec
	if g.Delay != "" {
		for _, part := range strings.Split(g.Delay, ",") {
			d, err := mpic.ParseDelay(strings.TrimSpace(part))
			if err != nil {
				return mpic.Sweep{}, fmt.Errorf("delay: %w", err)
			}
			if d == nil {
				d = mpic.LockstepDelay()
			}
			delays = append(delays, d)
		}
	}
	step := g.SeedStep
	if step == 0 {
		step = defaultSeedStep
	}
	sw := mpic.Sweep{
		Base:     base,
		N:        ns,
		Schemes:  schemes,
		Delays:   delays,
		Trials:   g.Trials,
		SeedStep: step,
	}
	if base.Noise != nil {
		sw.Rates = rates
	}
	return sw, nil
}

// Build resolves the specification all the way to an mpic.Grid with its
// Spec set — ready for the engine or the lease-sharded worker loop.
func (g Grid) Build() (mpic.Grid, error) {
	sw, err := g.Sweep()
	if err != nil {
		return mpic.Grid{}, err
	}
	grid, err := sw.Grid()
	if err != nil {
		return mpic.Grid{}, err
	}
	grid.Spec = g.Spec()
	return grid, nil
}

// ParseInts parses a comma-separated integer list.
func ParseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseFloats parses a comma-separated float list.
func ParseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseSchemes parses a comma-separated scheme list (1|A|B|C).
func ParseSchemes(s string) ([]mpic.Scheme, error) {
	var out []mpic.Scheme
	for _, part := range strings.Split(s, ",") {
		sch, err := mpic.ParseScheme(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, sch)
	}
	return out, nil
}
