package gridspec

import (
	"strings"
	"testing"

	"mpic"
)

func TestScenarioBuild(t *testing.T) {
	sc, err := Scenario{
		N: 4, Workload: "random", Scheme: "A",
		Noise: "random", Rate: 0.002, Seed: 7, IterFactor: 20,
		Delay: "lognormal:0.3", NetFaults: "outage=0.01,stragglers=1",
	}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if sc.Topology.N != 4 || sc.Scheme != mpic.AlgorithmA || sc.Noise == nil {
		t.Fatalf("scenario not resolved: %+v", sc)
	}
	if sc.Delay == nil || sc.Faults == nil {
		t.Fatalf("network timing fields not resolved: delay=%v faults=%+v", sc.Delay, sc.Faults)
	}
	if sc.Seed != 7 {
		t.Fatalf("seed = %d, want 7", sc.Seed)
	}
}

func TestScenarioBuildErrors(t *testing.T) {
	for name, s := range map[string]Scenario{
		"bad scheme":    {N: 4, Scheme: "Z"},
		"bad noise":     {N: 4, Noise: "no-such-noise"},
		"bad delay":     {N: 4, Delay: "no-such-delay"},
		"bad netfaults": {N: 4, NetFaults: "outage=not-a-number"},
	} {
		if _, err := s.Build(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestGridSpecFingerprint pins the checkpoint fingerprint byte for byte
// against the historical mpicbench format: an old sweep checkpoint must
// still match the spec this package computes for the same flags.
func TestGridSpecFingerprint(t *testing.T) {
	g := Grid{
		Workload: "random", Noise: "random",
		N: "4,6", Schemes: "A,B", Rates: "0,0.002",
		Trials: 2, Seed: 1, IterFactor: 10,
	}
	want := "topology= workload=random rounds=0 noise=random n=4,6 schemes=A,B rates=0,0.002 trials=2 seed=1 iterfactor=10"
	if got := g.Spec(); got != want {
		t.Fatalf("spec = %q, want %q", got, want)
	}
	g.Delay = "jitter:0.5"
	if got := g.Spec(); got != want+" delay=jitter:0.5 netfaults=" {
		t.Fatalf("spec with delay = %q", got)
	}
	// The default stride stays out of the fingerprint (back-compat with
	// checkpoints written before the field existed); only an override
	// joins it.
	g.Delay = ""
	g.SeedStep = 7907
	if got := g.Spec(); got != want {
		t.Fatalf("default seedstep changed the spec: %q", got)
	}
	g.SeedStep = 100
	if got := g.Spec(); got != want+" seedstep=100" {
		t.Fatalf("spec with seedstep = %q", got)
	}
}

func TestGridSweepAxes(t *testing.T) {
	sw, err := Grid{
		Workload: "random", Noise: "random",
		N: "4,6", Schemes: "A,B", Rates: "0,0.002",
		Delay: "unit,jitter:0.5", Trials: 3, Seed: 1, IterFactor: 10,
	}.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.N) != 2 || len(sw.Schemes) != 2 || len(sw.Rates) != 2 || len(sw.Delays) != 2 {
		t.Fatalf("axes = n:%d schemes:%d rates:%d delays:%d, want 2 each",
			len(sw.N), len(sw.Schemes), len(sw.Rates), len(sw.Delays))
	}
	if sw.SeedStep != 7907 {
		t.Fatalf("default seed step = %d, want 7907", sw.SeedStep)
	}
	// Rates only apply when there is a noise model to take them.
	sw, err = Grid{Workload: "random", Noise: "none", N: "4", Rates: "0.001", Trials: 1, IterFactor: 10}.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if sw.Rates != nil {
		t.Fatalf("noiseless sweep kept a rate axis: %v", sw.Rates)
	}
}

func TestGridBuild(t *testing.T) {
	g := Grid{Workload: "random", Noise: "random", N: "4", Schemes: "A",
		Rates: "0,0.001", Trials: 1, Seed: 1, IterFactor: 10}
	grid, err := g.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(grid.Cells) != 2 {
		t.Fatalf("grid has %d cells, want 2", len(grid.Cells))
	}
	if grid.Spec != g.Spec() {
		t.Fatalf("grid spec %q != fingerprint %q", grid.Spec, g.Spec())
	}
}

func TestGridSweepErrors(t *testing.T) {
	for name, g := range map[string]Grid{
		"empty n":    {Workload: "random", Trials: 1},
		"bad n":      {N: "4,x", Workload: "random", Trials: 1},
		"bad rates":  {N: "4", Rates: "0,x", Workload: "random", Trials: 1},
		"bad scheme": {N: "4", Schemes: "Z", Workload: "random", Trials: 1},
		"bad delay":  {N: "4", Delay: "no-such-delay", Workload: "random", Trials: 1},
	} {
		if _, err := g.Sweep(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestGridNormalizeDefaults(t *testing.T) {
	g := Grid{}.Normalize()
	if g.Workload != "random" || g.Noise != "random" || g.N != "4,6" ||
		g.Schemes != "A" || g.Rates != "0.001" || g.Trials != 10 ||
		g.Seed != 1 || g.IterFactor != 30 {
		t.Fatalf("defaults = %+v", g)
	}
	// Normalize never overrides an explicit value.
	g = Grid{N: "8", Trials: 2}.Normalize()
	if g.N != "8" || g.Trials != 2 {
		t.Fatalf("explicit values overridden: %+v", g)
	}
	if _, err := g.Build(); err != nil {
		t.Fatalf("normalized default grid does not build: %v", err)
	}
}

func TestParseHelpers(t *testing.T) {
	if ns, err := ParseInts(" 4, 6 "); err != nil || len(ns) != 2 || ns[0] != 4 || ns[1] != 6 {
		t.Fatalf("ParseInts = %v, %v", ns, err)
	}
	if _, err := ParseInts("4,x"); err == nil {
		t.Error("bad int accepted")
	}
	if fs, err := ParseFloats("0, 0.002"); err != nil || len(fs) != 2 || fs[1] != 0.002 {
		t.Fatalf("ParseFloats = %v, %v", fs, err)
	}
	if sch, err := ParseSchemes("A,1"); err != nil || len(sch) != 2 || sch[0] != mpic.AlgorithmA {
		t.Fatalf("ParseSchemes = %v, %v", sch, err)
	}
	if _, err := ParseSchemes("A,Z"); err == nil {
		t.Error("bad scheme accepted")
	}
	if _, err := (Grid{N: "", Workload: "random"}).Sweep(); err == nil || !strings.Contains(err.Error(), "n:") {
		t.Error("empty n accepted")
	}
}
