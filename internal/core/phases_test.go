package core

import (
	"testing"

	"mpic/internal/adversary"
	"mpic/internal/bitstring"
	"mpic/internal/channel"
	"mpic/internal/graph"
	"mpic/internal/trace"
)

// phaseAttack corrupts slots of one phase on one link during the first
// `iters` iterations: mode "insert" injects Sym1 into silence, "delete"
// removes bits, "flip" substitutes them. Budget capped at `cap` events.
type phaseAttack struct {
	oracle adversary.PhaseOracle
	target channel.Link
	phase  trace.Phase
	iters  int
	mode   string
	cap    int
	used   int
}

func (a *phaseAttack) Corrupt(round int, link channel.Link, sent bitstring.Symbol) bitstring.Symbol {
	if a.used >= a.cap || link != a.target {
		return sent
	}
	ph, iter := a.oracle(round)
	if ph != int(a.phase) || iter >= a.iters {
		return sent
	}
	switch a.mode {
	case "insert":
		if sent != bitstring.Silence {
			return sent
		}
		a.used++
		return bitstring.Sym1
	case "delete":
		if sent == bitstring.Silence {
			return sent
		}
		a.used++
		return bitstring.Silence
	default: // flip
		if sent == bitstring.Silence {
			return sent
		}
		a.used++
		return sent.Add(1)
	}
}

func runWithPhaseAttack(t *testing.T, g *graph.Graph, target channel.Link, phase trace.Phase, mode string, cap int) (*Result, *phaseAttack) {
	t.Helper()
	var atk *phaseAttack
	res, err := Run(Options{
		Protocol: quickProto(g, 21),
		Params:   quickParams(Alg1, g, 21),
		AdversaryFactory: func(info RunInfo) adversary.Adversary {
			atk = &phaseAttack{oracle: info.PhaseOracle, target: target, phase: phase, iters: 3, mode: mode, cap: cap}
			return atk
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, atk
}

// TestForgedBotSymbol: inserting a symbol into the ⊥ round makes the
// receiver believe its neighbor opted out; the per-link transcript
// lengths diverge and the rewind/meeting-points machinery must repair it.
func TestForgedBotSymbol(t *testing.T) {
	g := graph.Line(4)
	res, atk := runWithPhaseAttack(t, g, channel.Link{From: 1, To: 2}, trace.PhaseSimulation, "insert", 2)
	if atk.used == 0 {
		t.Fatal("vacuous: no ⊥ forged")
	}
	if !res.Success {
		t.Fatalf("forged ⊥ broke the run: G*=%d/%d", res.GStar, res.NumChunks)
	}
	if res.Iterations <= res.NumChunks {
		t.Error("forged ⊥ cost no extra iterations; expected at least one repair")
	}
}

// TestDeletedFlagIdlesNetwork: deleting the downward flag makes the
// subtree read "stop" (conservative default) and idle one iteration —
// costly but safe.
func TestDeletedFlagIdlesNetwork(t *testing.T) {
	g := graph.Line(4)
	// Link 0→1 carries the root's downward flag.
	res, atk := runWithPhaseAttack(t, g, channel.Link{From: 0, To: 1}, trace.PhaseFlagPassing, "delete", 2)
	if atk.used == 0 {
		t.Fatal("vacuous: no flag deleted")
	}
	if !res.Success {
		t.Fatalf("deleted flags broke the run: G*=%d/%d", res.GStar, res.NumChunks)
	}
}

// TestFlippedMeetingPointHashes: corrupting consistency-check hashes
// causes false mismatches (the pair enters meeting points needlessly) but
// never corrupts state — the run completes correctly.
func TestFlippedMeetingPointHashes(t *testing.T) {
	g := graph.Line(4)
	res, atk := runWithPhaseAttack(t, g, channel.Link{From: 1, To: 2}, trace.PhaseMeetingPoints, "flip", 6)
	if atk.used == 0 {
		t.Fatal("vacuous: no hash bit flipped")
	}
	if !res.Success {
		t.Fatalf("flipped hashes broke the run: G*=%d/%d", res.GStar, res.NumChunks)
	}
}

// TestForgedRewind: injecting a rewind request makes the receiver
// truncate a healthy chunk; the chunk is re-simulated next iteration.
func TestForgedRewind(t *testing.T) {
	g := graph.Line(4)
	res, atk := runWithPhaseAttack(t, g, channel.Link{From: 2, To: 1}, trace.PhaseRewind, "insert", 2)
	if atk.used == 0 {
		t.Fatal("vacuous: no rewind forged")
	}
	if !res.Success {
		t.Fatalf("forged rewinds broke the run: G*=%d/%d", res.GStar, res.NumChunks)
	}
	if res.Iterations <= res.NumChunks {
		t.Error("forged rewinds cost no extra iterations; truncation should need re-simulation")
	}
}

// TestSimulationFlipDetected: a substituted payload bit inside a chunk
// must be caught by the next consistency check (with τ=8 the miss
// probability per check is 1/256) and rolled back.
func TestSimulationFlipDetected(t *testing.T) {
	g := graph.Line(4)
	res, atk := runWithPhaseAttack(t, g, channel.Link{From: 0, To: 1}, trace.PhaseSimulation, "flip", 1)
	if atk.used == 0 {
		t.Fatal("vacuous: no payload bit flipped")
	}
	if !res.Success {
		t.Fatalf("single payload flip broke the run: G*=%d/%d", res.GStar, res.NumChunks)
	}
	if res.Metrics.TotalCorruptions() != 1 {
		t.Fatalf("accounting: %d corruptions recorded, want 1", res.Metrics.TotalCorruptions())
	}
}

// TestAttacksEveryPhaseEveryLink: sweep a small corruption over every
// phase on every link of a ring; the scheme must survive all of them.
func TestAttacksEveryPhaseEveryLink(t *testing.T) {
	g := graph.Ring(4)
	phases := []trace.Phase{trace.PhaseMeetingPoints, trace.PhaseFlagPassing, trace.PhaseSimulation, trace.PhaseRewind}
	for _, e := range g.Edges() {
		for _, ph := range phases {
			for _, mode := range []string{"flip", "delete", "insert"} {
				res, _ := runWithPhaseAttack(t, g, channel.Link{From: e.U, To: e.V}, ph, mode, 2)
				if !res.Success {
					t.Errorf("link %v phase %v mode %s: run failed (G*=%d/%d)",
						e, ph, mode, res.GStar, res.NumChunks)
				}
			}
		}
	}
}
