package core

import (
	"testing"

	"mpic/internal/trace"
)

func mkLayout() *layout {
	return &layout{
		exchangeRounds: 10,
		mpRounds:       24,
		flagRounds:     6,
		simRounds:      31,
		rewindRounds:   5,
		iters:          3,
	}
}

func TestLayoutTotals(t *testing.T) {
	l := mkLayout()
	if got := l.iterRounds(); got != 66 {
		t.Errorf("iterRounds = %d, want 66", got)
	}
	if got := l.totalRounds(); got != 10+3*66 {
		t.Errorf("totalRounds = %d, want %d", got, 10+3*66)
	}
	if got := l.iterStart(2); got != 10+2*66 {
		t.Errorf("iterStart(2) = %d, want %d", got, 10+2*66)
	}
}

func TestLayoutPhaseAt(t *testing.T) {
	l := mkLayout()
	tests := []struct {
		round    int
		wantIter int
		wantPh   trace.Phase
		wantRel  int
	}{
		{0, 0, trace.PhaseExchange, 0},
		{9, 0, trace.PhaseExchange, 9},
		{10, 0, trace.PhaseMeetingPoints, 0},
		{33, 0, trace.PhaseMeetingPoints, 23},
		{34, 0, trace.PhaseFlagPassing, 0},
		{39, 0, trace.PhaseFlagPassing, 5},
		{40, 0, trace.PhaseSimulation, 0},
		{70, 0, trace.PhaseSimulation, 30},
		{71, 0, trace.PhaseRewind, 0},
		{75, 0, trace.PhaseRewind, 4},
		{76, 1, trace.PhaseMeetingPoints, 0},
		{10 + 2*66, 2, trace.PhaseMeetingPoints, 0},
	}
	for _, tt := range tests {
		iter, ph, rel := l.phaseAt(tt.round)
		if iter != tt.wantIter || ph != tt.wantPh || rel != tt.wantRel {
			t.Errorf("phaseAt(%d) = (%d,%v,%d), want (%d,%v,%d)",
				tt.round, iter, ph, rel, tt.wantIter, tt.wantPh, tt.wantRel)
		}
	}
}

func TestLayoutPhaseEnd(t *testing.T) {
	l := mkLayout()
	boundaries := map[int]trace.Phase{
		9:  trace.PhaseExchange,
		33: trace.PhaseMeetingPoints,
		39: trace.PhaseFlagPassing,
		70: trace.PhaseSimulation,
		75: trace.PhaseRewind,
	}
	for r := 0; r < l.totalRounds(); r++ {
		_, ph, last := l.phaseEnd(r)
		rel := (r - l.exchangeRounds) % l.iterRounds()
		if r < l.exchangeRounds {
			rel = r
		}
		_ = rel
		wantPh, isBoundary := boundaries[r]
		if r > 75 {
			// Later iterations repeat the same boundary offsets.
			off := (r - 10) % 66
			isBoundary = off == 23 || off == 29 || off == 60 || off == 65
		}
		if isBoundary != last {
			t.Fatalf("phaseEnd(%d): last=%v, want %v (phase %v)", r, last, isBoundary, ph)
		}
		if isBoundary && r <= 75 && ph != wantPh {
			t.Fatalf("phaseEnd(%d): phase %v, want %v", r, ph, wantPh)
		}
	}
}

// TestLayoutPhaseCoverage: every round of an iteration belongs to exactly
// one phase, phases come in order, and relative offsets reset at phase
// boundaries.
func TestLayoutPhaseCoverage(t *testing.T) {
	l := mkLayout()
	counts := map[trace.Phase]int{}
	for r := l.exchangeRounds; r < l.exchangeRounds+l.iterRounds(); r++ {
		_, ph, rel := l.phaseAt(r)
		if rel != counts[ph] {
			t.Fatalf("round %d: rel %d, want %d for %v", r, rel, counts[ph], ph)
		}
		counts[ph]++
	}
	if counts[trace.PhaseMeetingPoints] != l.mpRounds ||
		counts[trace.PhaseFlagPassing] != l.flagRounds ||
		counts[trace.PhaseSimulation] != l.simRounds ||
		counts[trace.PhaseRewind] != l.rewindRounds {
		t.Fatalf("phase round counts wrong: %v", counts)
	}
}

func TestLayoutNoFlagNoRewind(t *testing.T) {
	l := &layout{mpRounds: 6, simRounds: 4, iters: 2}
	// With flag and rewind ablated, simulation follows meeting points
	// directly.
	_, ph, rel := l.phaseAt(6)
	if ph != trace.PhaseSimulation || rel != 0 {
		t.Fatalf("phaseAt(6) = (%v,%d), want simulation start", ph, rel)
	}
	// The last simulation round ends the iteration.
	_, ph, last := l.phaseEnd(9)
	if ph != trace.PhaseSimulation || !last {
		t.Fatal("simulation end not detected with ablated phases")
	}
	_, ph, _ = l.phaseAt(10)
	if ph != trace.PhaseMeetingPoints {
		t.Fatal("second iteration should start at meeting points")
	}
}
