package core

import (
	"mpic/internal/bitstring"
)

// chunkIndexBits is the width used to encode a chunk's number into the
// hashed transcript. Appending the chunk number makes transcripts of
// different lengths hash differently despite the inner-product hash's
// h(x) = h(x◦0) padding behavior (footnote 11).
const chunkIndexBits = 32

// ChunkRecord is one simulated chunk as observed by one endpoint of a
// link: for slots where the endpoint was the sender, the bit it sent; for
// receiver slots, the (possibly corrupted, possibly Silence) symbol it
// received.
type ChunkRecord struct {
	// Index is the chunk number (1-based; dummy chunks continue the
	// numbering past |Π|).
	Index int
	// Syms holds the observed symbol per slot, in the chunk's slot order.
	Syms []bitstring.Symbol
}

// Transcript is one endpoint's record of a link: the paper's T_{u,v}. It
// maintains the invariant chunks[i].Index == i+1 and caches the binary
// encoding hashed by the consistency checks.
type Transcript struct {
	chunks []ChunkRecord
	bits   *bitstring.BitVec
	offs   []int // offs[i] = encoded bit length of the first i chunks
}

// NewTranscript returns an empty transcript.
func NewTranscript() *Transcript {
	return &Transcript{bits: bitstring.NewBitVec(0), offs: []int{0}}
}

// Len returns |T| in chunks.
func (t *Transcript) Len() int { return len(t.chunks) }

// Chunk returns the i-th (0-based) chunk record.
func (t *Transcript) Chunk(i int) *ChunkRecord { return &t.chunks[i] }

// Append adds a chunk record. The record's index must continue the
// sequence; the engine always simulates chunk |T|+1.
func (t *Transcript) Append(rec ChunkRecord) {
	t.chunks = append(t.chunks, rec)
	t.bits.AppendUint(uint64(rec.Index), chunkIndexBits)
	for _, s := range rec.Syms {
		t.bits.AppendSymbol(s)
	}
	t.offs = append(t.offs, t.bits.Len())
}

// TruncateTo rolls the transcript back to n chunks. Out-of-range
// arguments clamp rather than panic: n < 0 truncates to empty (rewind
// waves can legitimately ask for "one less than nothing" on an empty
// link) and n >= Len() is a no-op. Truncation propagates structurally to
// the cached bit encoding — any attached watermark (the incremental hash
// checkpoints) observes the rollback through bitstring.BitVec, with no
// further notification from this type.
func (t *Transcript) TruncateTo(n int) {
	if n < 0 {
		n = 0
	}
	if n >= len(t.chunks) {
		return
	}
	t.chunks = t.chunks[:n]
	t.offs = t.offs[:n+1]
	t.bits.Truncate(t.offs[n])
}

// PrefixBits returns the encoded bit length of the first n chunks.
// Out-of-range arguments clamp: n < 0 reads as 0 (empty prefix) and
// n > Len() reads as Len() — meeting points computed from a counter that
// outruns a freshly truncated transcript must still hash a well-defined
// prefix.
func (t *Transcript) PrefixBits(n int) int {
	if n < 0 {
		n = 0
	}
	if n >= len(t.offs) {
		n = len(t.offs) - 1
	}
	return t.offs[n]
}

// Bits exposes the cached encoding for hashing.
func (t *Transcript) Bits() *bitstring.BitVec { return t.bits }

// CommonPrefixChunks returns the number of leading chunks on which two
// transcripts agree exactly — the oracle's G_{u,v} (Section 4.1).
func CommonPrefixChunks(a, b *Transcript) int {
	n := a.Len()
	if b.Len() < n {
		n = b.Len()
	}
	for i := 0; i < n; i++ {
		if !chunkEqual(&a.chunks[i], &b.chunks[i]) {
			return i
		}
	}
	return n
}

func chunkEqual(a, b *ChunkRecord) bool {
	if a.Index != b.Index || len(a.Syms) != len(b.Syms) {
		return false
	}
	for i := range a.Syms {
		if a.Syms[i] != b.Syms[i] {
			return false
		}
	}
	return true
}

// Equal reports whether two transcripts agree entirely.
func (t *Transcript) Equal(o *Transcript) bool {
	return t.Len() == o.Len() && CommonPrefixChunks(t, o) == t.Len()
}
