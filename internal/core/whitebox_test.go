package core

import (
	"testing"

	"mpic/internal/graph"
)

// TestWhiteBoxHitRateTracksTau: the collision attacker's hit rate must
// scale like 2·2^-τ (two candidate corruptions, each colliding with
// probability 2^-τ under fresh seeds) — the quantitative heart of the
// Section 6.1 argument.
func TestWhiteBoxHitRateTracksTau(t *testing.T) {
	g := graph.Line(4)
	rates := map[int]float64{}
	for _, tau := range []int{2, 8} {
		tried, landed := 0, 0
		for trial := int64(0); trial < 6; trial++ {
			params := quickParams(Alg1, g, trial)
			params.HashBits = tau
			res, err := Run(Options{
				Protocol:     quickProto(g, trial),
				Params:       params,
				WhiteBoxRate: 0.05,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.WhiteBox == nil {
				t.Fatal("WhiteBox stats missing")
			}
			tried += res.WhiteBox.Tried
			landed += res.WhiteBox.Landed
		}
		if tried == 0 {
			t.Fatalf("τ=%d: attacker inspected nothing", tau)
		}
		rates[tau] = float64(landed) / float64(tried)
	}
	// τ=2 expects ~0.44 (1-(1-1/4)^2 plus near-collisions); τ=8 expects
	// ~0.008. Demand an order of magnitude between them.
	if rates[2] < 0.2 {
		t.Errorf("τ=2 hit rate %.4f, expected around 0.4", rates[2])
	}
	if rates[8] > 0.05 {
		t.Errorf("τ=8 hit rate %.4f, expected below 0.05", rates[8])
	}
	if rates[2] < 10*rates[8] {
		t.Errorf("hit rates τ=2:%.4f τ=8:%.4f do not separate by ~2^6", rates[2], rates[8])
	}
}

// TestWhiteBoxLandedCorruptionsAreUndetected: every landed corruption
// must survive the immediately following consistency check — that is the
// attacker's firing condition. We verify it indirectly: with the oracle
// on, each landed corruption produces at least one undetected-mismatch
// iteration (a counted hash collision).
func TestWhiteBoxLandedCorruptionsAreUndetected(t *testing.T) {
	g := graph.Line(4)
	params := quickParams(Alg1, g, 3)
	params.HashBits = 3 // generous collision rate so the test is fast
	res, err := Run(Options{Protocol: quickProto(g, 3), Params: params, WhiteBoxRate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if res.WhiteBox.Landed == 0 {
		t.Skip("attacker found no collision this seed; covered by the rate test")
	}
	if res.Metrics.HashCollisions == 0 {
		t.Fatalf("%d landed corruptions but oracle saw no undetected mismatch", res.WhiteBox.Landed)
	}
}

// TestWhiteBoxRespectsBudget: the attacker's corruptions stay within its
// rate budget.
func TestWhiteBoxRespectsBudget(t *testing.T) {
	g := graph.Line(4)
	params := quickParams(Alg1, g, 4)
	params.HashBits = 2
	res, err := Run(Options{Protocol: quickProto(g, 4), Params: params, WhiteBoxRate: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	allowance := 0.01*float64(res.Metrics.CC) + 1
	if float64(res.Metrics.TotalCorruptions()) > allowance {
		t.Fatalf("attacker spent %d corruptions with allowance %.0f",
			res.Metrics.TotalCorruptions(), allowance)
	}
}
