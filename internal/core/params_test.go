package core

import (
	"testing"

	"mpic/internal/graph"
)

func TestParamsForSchemes(t *testing.T) {
	g := graph.Clique(8) // m = 28, log2ceil = 5
	tests := []struct {
		scheme    Scheme
		wantChunk int
		wantHash  int
		wantRand  RandMode
	}{
		{Alg1, 5 * 28, 8, RandCRS},
		{AlgA, 5 * 28, 8, RandExchange},
		{AlgB, 5 * 28 * 5, 10, RandExchange},
		{AlgC, 5 * 28 * 3, 8, RandCRS},
	}
	for _, tt := range tests {
		t.Run(tt.scheme.String(), func(t *testing.T) {
			p := ParamsFor(tt.scheme, g)
			if p.ChunkBits != tt.wantChunk {
				t.Errorf("ChunkBits = %d, want %d", p.ChunkBits, tt.wantChunk)
			}
			if p.HashBits != tt.wantHash {
				t.Errorf("HashBits = %d, want %d", p.HashBits, tt.wantHash)
			}
			if p.Randomness != tt.wantRand {
				t.Errorf("Randomness = %v, want %v", p.Randomness, tt.wantRand)
			}
			if err := p.Validate(); err != nil {
				t.Errorf("preset does not validate: %v", err)
			}
		})
	}
}

func TestParamsForScaling(t *testing.T) {
	// Algorithm B's chunk and hash sizes must grow with log m.
	small := ParamsFor(AlgB, graph.Line(4))    // m=3
	large := ParamsFor(AlgB, graph.Clique(20)) // m=190, log=8
	if large.ChunkBits <= small.ChunkBits {
		t.Error("AlgB ChunkBits does not grow with m log m")
	}
	if large.HashBits <= small.HashBits {
		t.Error("AlgB HashBits does not grow with log m")
	}
	// Algorithm A's hash stays constant.
	if ParamsFor(AlgA, graph.Clique(20)).HashBits != ParamsFor(AlgA, graph.Line(4)).HashBits {
		t.Error("AlgA HashBits should be constant")
	}
}

func TestParamsValidate(t *testing.T) {
	p := Params{ChunkBits: 10, HashBits: 8}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.IterFactor != 100 || p.Randomness != RandCRS || p.SeedKind != SeedPRF {
		t.Error("defaults not filled")
	}
	if p.RSBlockN != 31 || p.RSBlockK != 11 {
		t.Error("RS defaults not filled")
	}

	bad := []Params{
		{ChunkBits: 0, HashBits: 8},
		{ChunkBits: 10, HashBits: 0},
		{ChunkBits: 10, HashBits: 65},
		{ChunkBits: 10, HashBits: 8, RSBlockN: 5, RSBlockK: 9},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d validated", i)
		}
	}
}

func TestSchemeString(t *testing.T) {
	for s, want := range map[Scheme]string{
		Alg1: "Algorithm1", AlgA: "AlgorithmA", AlgB: "AlgorithmB",
		AlgC: "AlgorithmC", Scheme(0): "unknown",
	} {
		if s.String() != want {
			t.Errorf("Scheme(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestLog2Ceil(t *testing.T) {
	tests := []struct{ n, want int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1024, 10},
	}
	for _, tt := range tests {
		if got := Log2Ceil(tt.n); got != tt.want {
			t.Errorf("Log2Ceil(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}
