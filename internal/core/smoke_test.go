package core

import (
	"testing"

	"mpic/internal/graph"
	"mpic/internal/protocol"
)

// TestSmokeNoiselessAlg1 runs the complete pipeline once, noiselessly.
func TestSmokeNoiselessAlg1(t *testing.T) {
	g := graph.Line(4)
	proto := protocol.NewRandom(g, 60, 0.5, 1, nil)
	params := ParamsFor(Alg1, g)
	params.IterFactor = 10
	res, err := Run(Options{Protocol: proto, Params: params})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("noiseless run failed: G*=%d/%d chunks, wrong=%d, iters=%d",
			res.GStar, res.NumChunks, res.WrongParties, res.Iterations)
	}
	t.Logf("chunks=%d iters=%d CC(Π)=%d CC=%d blowup=%.2f",
		res.NumChunks, res.Iterations, res.CCProtocol, res.Metrics.CC, res.Blowup)
}
