package core

import "mpic/internal/trace"

// layout fixes the round counts of every phase. All phase lengths are
// known a priori to every party (Section 3.1: "each phase consists of a
// fixed number of rounds ... there is never ambiguity as to which phase is
// being executed").
type layout struct {
	exchangeRounds int // randomness exchange preamble (0 in CRS mode)
	mpRounds       int // meeting points: 3τ bit-serial hash rounds
	flagRounds     int // flag passing: 2·d(T) − 2 over the BFS tree
	simRounds      int // simulation: 1 (⊥ round) + longest chunk span
	rewindRounds   int // rewind: n rounds (one network crossing)
	iters          int
}

func (l *layout) iterRounds() int {
	return l.mpRounds + l.flagRounds + l.simRounds + l.rewindRounds
}

// totalRounds is the fixed length of the whole noise-resilient protocol.
func (l *layout) totalRounds() int {
	return l.exchangeRounds + l.iters*l.iterRounds()
}

// iterStart returns the first round of iteration it (0-based).
func (l *layout) iterStart(it int) int {
	return l.exchangeRounds + it*l.iterRounds()
}

// phaseAt decomposes an absolute round into (iteration, phase, offset
// within phase). Rounds before the first iteration are the exchange.
func (l *layout) phaseAt(round int) (iter int, ph trace.Phase, rel int) {
	if round < l.exchangeRounds {
		return 0, trace.PhaseExchange, round
	}
	r := round - l.exchangeRounds
	iter = r / l.iterRounds()
	rel = r % l.iterRounds()
	switch {
	case rel < l.mpRounds:
		return iter, trace.PhaseMeetingPoints, rel
	case rel < l.mpRounds+l.flagRounds:
		return iter, trace.PhaseFlagPassing, rel - l.mpRounds
	case rel < l.mpRounds+l.flagRounds+l.simRounds:
		return iter, trace.PhaseSimulation, rel - l.mpRounds - l.flagRounds
	default:
		return iter, trace.PhaseRewind, rel - l.mpRounds - l.flagRounds - l.simRounds
	}
}

// lastOf reports whether phase offset rel is the final round of phase ph.
// round disambiguates the exchange preamble, whose rel counts absolute
// rounds. Callers that already hold a phaseAt decomposition (the party's
// per-round memo) use this directly instead of re-dividing via phaseEnd.
func (l *layout) lastOf(ph trace.Phase, rel, round int) bool {
	switch ph {
	case trace.PhaseExchange:
		return round == l.exchangeRounds-1
	case trace.PhaseMeetingPoints:
		return rel == l.mpRounds-1
	case trace.PhaseFlagPassing:
		return rel == l.flagRounds-1
	case trace.PhaseSimulation:
		return rel == l.simRounds-1
	default:
		return rel == l.rewindRounds-1
	}
}

// phaseEnd reports whether round is the final round of the given phase in
// its iteration.
func (l *layout) phaseEnd(round int) (iter int, ph trace.Phase, last bool) {
	iter, ph, rel := l.phaseAt(round)
	return iter, ph, l.lastOf(ph, rel, round)
}
