package core

import (
	"mpic/internal/adversary"
	"mpic/internal/bitstring"
	"mpic/internal/channel"
	"mpic/internal/hashing"
	"mpic/internal/trace"
)

// whiteBoxAttacker is the seed-aware collision attack of Section 6.1: a
// non-oblivious adversary that knows the hash seeds ahead of time (it saw
// the CRS, or watched the randomness exchange) and corrupts a simulated
// chunk only when it can verify that the damaged transcripts will still
// hash equal at the next consistency check — so the corruption survives
// undetected and the parties keep building on a divergent history.
//
// The paper's defense is exactly the hash length: with τ-bit outputs a
// candidate corruption collides with probability 2^-τ, so constant τ
// (Algorithm 1/A) gives the attacker steady ammunition while
// τ = Θ(log m) (Algorithm B) starves it. Experiment E-F12 measures this.
//
// Implementation: the attacker targets the final slot of a chunk on a
// link (at that moment both endpoints' records of the chunk are fully
// determined), tries both possible corrupted symbols, and fires only if
// one of them makes the two endpoints' full-transcript hashes collide
// under the next iteration's seed block.
type whiteBoxAttacker struct {
	e       *env
	parties []*party
	budget  *adversary.Budget
	// Tried counts candidate slots inspected; Landed counts corruptions
	// fired with a guaranteed collision.
	Tried, Landed int
}

var _ adversary.Adversary = (*whiteBoxAttacker)(nil)
var _ adversary.ContextAware = (*whiteBoxAttacker)(nil)

func newWhiteBoxAttacker(e *env, parties []*party, rate float64) *whiteBoxAttacker {
	return &whiteBoxAttacker{
		e:       e,
		parties: parties,
		budget:  &adversary.Budget{Rate: rate, Floor: 1},
	}
}

// SetContext implements adversary.ContextAware.
func (w *whiteBoxAttacker) SetContext(ctx adversary.Context) { w.budget.SetContext(ctx) }

// Corrupt implements adversary.Adversary.
func (w *whiteBoxAttacker) Corrupt(round int, link channel.Link, sent bitstring.Symbol) bitstring.Symbol {
	if sent == bitstring.Silence {
		return sent
	}
	iter, ph, rel := w.e.lay.phaseAt(round)
	if ph != trace.PhaseSimulation || rel == 0 {
		return sent
	}
	u := w.parties[link.From]
	ls, ok := u.links[link.To]
	if !ok || ls.simChunk == 0 || len(ls.slots) == 0 {
		return sent
	}
	// Only the chunk's final slot leaves both endpoint records fully
	// determined at corruption time.
	last := ls.slots[len(ls.slots)-1]
	if last.RelRound != rel-1 || last.Tx.From != link.From {
		return sent
	}
	v := w.parties[link.To]
	lsv, ok := v.links[link.From]
	if !ok || lsv.simChunk != ls.simChunk {
		return sent
	}
	// The next check compares full transcripts only when both endpoints
	// enter it fresh (k = 0 → 1).
	if ls.mp.K != 0 || lsv.mp.K != 0 {
		return sent
	}
	if w.budget.Available() < 1 {
		return sent
	}
	w.Tried++
	lastIdx := len(ls.slots) - 1
	hu := w.futureHash(ls, ls.pending, lastIdx, sent, iter+1)
	for e := uint8(1); e <= 2; e++ {
		recv := sent.Add(e)
		hv := w.futureHash(lsv, lsv.pending, lastIdx, recv, iter+1)
		if hu == hv {
			w.budget.TrySpend()
			w.Landed++
			return recv
		}
	}
	return sent
}

// futureHash predicts the endpoint's full-transcript hash at the next
// meeting-points check, with the chunk's final slot holding sym. The seed
// block mirrors the parties' configuration: the per-iteration block
// (HashLegacy), the rewind-stable one (HashIncremental — which makes the
// attacker's life easier still: a found collision keeps paying across
// iterations), or the block of the epoch the check lands in (HashEpoch —
// a found collision pays only until the next refresh).
func (w *whiteBoxAttacker) futureHash(ls *linkState, pending []bitstring.Symbol, lastIdx int, sym bitstring.Symbol, iter int) uint64 {
	bits := ls.T.Bits().Clone()
	bits.AppendUint(uint64(ls.simChunk), chunkIndexBits)
	for i, s := range pending {
		if i == lastIdx {
			s = sym
		}
		bits.AppendSymbol(s)
	}
	var off uint64
	switch w.e.params.HashMode {
	case HashIncremental:
		off = w.e.seedLay.StableOffset(hashing.SlotMP1)
	case HashEpoch:
		off = w.e.seedLay.EpochOffset(hashing.SlotMP1, iter/w.e.epochR())
	default:
		off = w.e.seedLay.Offset(iter, hashing.SlotMP1)
	}
	return w.e.hash.Hash(bits, ls.src, off)
}
