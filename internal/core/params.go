// Package core implements the paper's coding schemes: the four-phase
// noise-resilient simulation of Algorithm 1 and its three instantiations —
// Algorithm A (no CRS, oblivious noise, ε/m resilience), Algorithm B
// (no CRS, non-oblivious noise, ε/(m log m)), and Algorithm C (CRS,
// non-oblivious noise, ε/(m log log m)).
package core

import (
	"fmt"
	"math"

	"mpic/internal/graph"
)

// Scheme selects one of the paper's coding schemes.
type Scheme int

const (
	// Alg1 is Algorithm 1: pre-shared CRS, oblivious adversary, K = m.
	Alg1 Scheme = iota + 1
	// AlgA is Algorithm A: randomness exchange instead of a CRS,
	// oblivious adversary, K = m.
	AlgA
	// AlgB is Algorithm B: randomness exchange, non-oblivious adversary,
	// K = m·log m and Θ(log m)-bit hashes.
	AlgB
	// AlgC is Algorithm C: pre-shared CRS, non-oblivious adversary,
	// K = m·log log m (Appendix B).
	AlgC
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case Alg1:
		return "Algorithm1"
	case AlgA:
		return "AlgorithmA"
	case AlgB:
		return "AlgorithmB"
	case AlgC:
		return "AlgorithmC"
	default:
		return "unknown"
	}
}

// RandMode says where hash seeds come from.
type RandMode int

const (
	// RandCRS gives every link a shared seed stream derived from a common
	// random string the adversary never sees (Algorithm 1 / C).
	RandCRS RandMode = iota + 1
	// RandExchange makes each pair of parties exchange a short seed over
	// the noisy link, protected by the error-correcting code
	// (Algorithm 5; used by Algorithms A and B).
	RandExchange
)

// SeedKind selects how the short per-link seed expands into the long seed
// stream.
type SeedKind int

const (
	// SeedPRF expands by strong integer mixing — the fast default,
	// standing in for a uniform stream (see DESIGN.md §3.7).
	SeedPRF SeedKind = iota + 1
	// SeedAGHP expands through the δ-biased AGHP powering construction of
	// Lemma 2.5 — the paper-faithful choice, used in the δ-bias
	// experiments.
	SeedAGHP
)

// HashMode selects how the two per-link transcript-prefix hashes of the
// meeting-points check draw their seeds.
type HashMode int

const (
	// HashEpoch — the zero value, and the default — routes the prefix
	// hashes through rewind-aware incremental checkpoints
	// (hashing.Checkpointed) whose seed block is re-derived every
	// EpochRefresh iterations. Per-iteration hash cost is Θ(transcript
	// growth) plus an amortized Θ(|T|/R) refresh sweep, and a colliding
	// prefix pair persists for at most R consecutive checks — the union
	// bound of Lemma 2.3 degrades by a factor ≤ R (equivalently, τ+log₂R
	// output bits restore it; see the hashing package doc).
	HashEpoch HashMode = iota
	// HashLegacy draws fresh prefix-hash seeds every iteration and
	// re-sweeps the whole transcript at every check — the paper-faithful
	// Θ(|T|) path, bit-identical to the original engine for a fixed
	// CRSKey. The escape hatch when exact reproducibility against old
	// recorded runs matters more than wall-clock.
	HashLegacy
	// HashIncremental is the PR 2 opt-in path: incremental checkpoints
	// over one rewind-stable seed block that is never refreshed. Fastest,
	// but a colliding pair persists for the rest of the run, so the
	// per-check independence of Lemma 2.3 is lost entirely — raise
	// HashBits when using this at scale.
	HashIncremental
)

// String implements fmt.Stringer.
func (m HashMode) String() string {
	switch m {
	case HashEpoch:
		return "epoch"
	case HashLegacy:
		return "legacy"
	case HashIncremental:
		return "incremental"
	default:
		return "unknown"
	}
}

// ParseHashMode maps the conventional mode names to a HashMode: "epoch"
// (or empty — the default), "legacy", and "incremental". Names are the
// String() spellings, so parse∘print round-trips.
func ParseHashMode(s string) (HashMode, error) {
	switch s {
	case "", "epoch":
		return HashEpoch, nil
	case "legacy":
		return HashLegacy, nil
	case "incremental":
		return HashIncremental, nil
	default:
		return 0, fmt.Errorf("core: unknown hash mode %q (want epoch, legacy, or incremental)", s)
	}
}

// DefaultEpochRefresh is the default seed-refresh interval R in
// iterations, picked from the R-axis benchmark sweep in PERF.md: 256 is
// the smallest R whose amortized Θ(|T|/R) refresh sweep stays within 10%
// of the never-refreshed incremental path at the 32·|Π| budget (R=128
// costs 25%, R=32 costs 47%). The fidelity price is log₂256 = 8 bits of
// the Lemma 2.3 union bound — as large as Alg1/A's default HashBits, so
// at default τ the refresh is a persistence *cap* (a colliding pair
// self-heals within ≤ R checks instead of surviving the run, which is
// what turns HashIncremental's permanent-failure pathology into bounded
// extra iterations) rather than a restored union bound. Callers that
// want the bound back set EpochRefresh ≤ 2^(HashBits-3) (e.g. R=32 at
// τ=8 costs 1/8 of a corrupted check per collision) or raise HashBits by
// log₂R; Algorithm B's τ = Θ(log m) absorbs the default R at realistic
// sizes. See the hashing package doc for the full derivation.
const DefaultEpochRefresh = 256

// HashModeConflictError reports Params that set the deprecated
// IncrementalHash bool alongside a HashMode that contradicts it. The two
// knobs are never silently reconciled: callers that say "legacy" and
// "incremental" at once get this error, loudly.
type HashModeConflictError struct {
	// Mode is the explicit HashMode that contradicted IncrementalHash.
	Mode HashMode
}

// Error implements error.
func (e *HashModeConflictError) Error() string {
	return fmt.Sprintf("core: Params.HashMode=%v conflicts with deprecated Params.IncrementalHash=true; set exactly one", e.Mode)
}

// Params fully determines a coding-scheme instance. Zero values are
// filled with defaults by Validate.
type Params struct {
	// ChunkBits is the communication budget per chunk (the paper's 5K).
	ChunkBits int
	// HashBits is the hash output length τ.
	HashBits int
	// IterFactor bounds iterations at IterFactor·|Π| (the paper runs
	// exactly 100·|Π|).
	IterFactor int
	// Randomness selects CRS vs randomness exchange.
	Randomness RandMode
	// SeedKind selects the seed-stream expansion.
	SeedKind SeedKind
	// RSBlockN and RSBlockK parameterize the randomness-exchange code.
	RSBlockN, RSBlockK int
	// CRSKey seeds the common random string (CRS modes) and the parties'
	// private randomness; runs with equal keys are reproducible.
	CRSKey int64
	// EarlyStop lets the harness halt once the oracle sees a fully
	// consistent network that has simulated all of Π. The paper-faithful
	// mode (false) always runs IterFactor·|Π| iterations.
	EarlyStop bool
	// Oracle enables ground-truth instrumentation (hash-collision
	// detection, potential snapshots). Costs time, changes nothing
	// observable to the parties.
	Oracle bool
	// DisableFlagPassing ablates the flag-passing phase (experiment E-F7).
	DisableFlagPassing bool
	// DisableRewind ablates the rewind phase (experiment E-F7).
	DisableRewind bool
	// HashMode selects the prefix-hash seed discipline. The zero value is
	// HashEpoch — incremental checkpoints with the seed block refreshed
	// every EpochRefresh iterations — which is the default for every run:
	// Θ(growth) per-iteration hash cost with collision persistence
	// bounded to R checks. HashLegacy restores the paper's
	// fresh-seeds-every-iteration Θ(|T|) path, bit-identical to previous
	// releases for a fixed CRSKey; HashIncremental is the never-refreshed
	// PR 2 opt-in. See the HashMode constants for the full trade-off.
	HashMode HashMode
	// EpochRefresh is the seed-refresh interval R (iterations) for
	// HashEpoch; 0 selects DefaultEpochRefresh. Smaller R tightens the
	// union bound (a collision persists ≤ R checks) at a higher amortized
	// Θ(|T|/R) re-sweep cost; the R-axis table in PERF.md quantifies the
	// trade-off. Ignored by the other modes.
	EpochRefresh int
	// IncrementalHash is the deprecated PR 2 bool for what is now
	// HashMode == HashIncremental. Setting it with HashMode left at the
	// zero value still selects the never-refreshed incremental path
	// (Validate normalizes HashMode to HashIncremental), so existing
	// callers keep their exact behavior; setting it alongside
	// HashMode == HashLegacy is a contradiction and Validate rejects it
	// with a *HashModeConflictError. New code should set HashMode only.
	//
	// Deprecated: set HashMode instead.
	IncrementalHash bool
}

// Log2Ceil returns ⌈log₂ n⌉ for n ≥ 1 (0 for n ≤ 1). Exposed because the
// experiment harness reports noise levels in terms of m, log m, and
// log log m.
func Log2Ceil(n int) int {
	if n <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(n))))
}

func log2Ceil(n int) int { return Log2Ceil(n) }

// ParamsFor returns the paper's parameterization of the given scheme on
// topology g.
func ParamsFor(s Scheme, g *graph.Graph) Params {
	m := g.M()
	if m < 1 {
		m = 1
	}
	p := Params{
		IterFactor: 100,
		RSBlockN:   31,
		RSBlockK:   11,
		EarlyStop:  true,
		Oracle:     true,
	}
	logm := log2Ceil(m)
	if logm < 1 {
		logm = 1
	}
	loglogm := log2Ceil(logm + 1)
	if loglogm < 1 {
		loglogm = 1
	}
	switch s {
	case Alg1:
		p.ChunkBits = 5 * m
		p.HashBits = 8
		p.Randomness = RandCRS
		p.SeedKind = SeedPRF
	case AlgA:
		p.ChunkBits = 5 * m
		p.HashBits = 8
		p.Randomness = RandExchange
		p.SeedKind = SeedPRF
	case AlgB:
		p.ChunkBits = 5 * m * logm
		p.HashBits = maxInt(8, 2*logm)
		p.Randomness = RandExchange
		p.SeedKind = SeedPRF
	case AlgC:
		p.ChunkBits = 5 * m * loglogm
		p.HashBits = maxInt(8, 2*loglogm)
		p.Randomness = RandCRS
		p.SeedKind = SeedPRF
	}
	return p
}

// Validate fills defaults and rejects inconsistent parameters.
func (p *Params) Validate() error {
	if p.ChunkBits <= 0 {
		return fmt.Errorf("core: ChunkBits must be positive, got %d", p.ChunkBits)
	}
	if p.HashBits <= 0 || p.HashBits > 64 {
		return fmt.Errorf("core: HashBits must be in 1..64, got %d", p.HashBits)
	}
	if p.IterFactor <= 0 {
		p.IterFactor = 100
	}
	if p.Randomness == 0 {
		p.Randomness = RandCRS
	}
	if p.SeedKind == 0 {
		p.SeedKind = SeedPRF
	}
	if p.RSBlockN == 0 {
		p.RSBlockN, p.RSBlockK = 31, 11
	}
	if p.RSBlockK <= 0 || p.RSBlockK >= p.RSBlockN || p.RSBlockN > 255 {
		return fmt.Errorf("core: invalid RS block (%d,%d)", p.RSBlockN, p.RSBlockK)
	}
	if p.HashMode < HashEpoch || p.HashMode > HashIncremental {
		return fmt.Errorf("core: invalid HashMode %d", int(p.HashMode))
	}
	if p.IncrementalHash {
		switch p.HashMode {
		case HashEpoch:
			// The deprecated bool on an otherwise-zero HashMode keeps its
			// PR 2 meaning: the never-refreshed incremental path.
			p.HashMode = HashIncremental
		case HashIncremental:
			// Redundant but consistent.
		default:
			return &HashModeConflictError{Mode: p.HashMode}
		}
	}
	// Keep the deprecated bool coherent for any remaining readers.
	p.IncrementalHash = p.HashMode == HashIncremental
	if p.EpochRefresh < 0 {
		return fmt.Errorf("core: EpochRefresh must be non-negative, got %d", p.EpochRefresh)
	}
	if p.EpochRefresh == 0 {
		p.EpochRefresh = DefaultEpochRefresh
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
