// Package core implements the paper's coding schemes: the four-phase
// noise-resilient simulation of Algorithm 1 and its three instantiations —
// Algorithm A (no CRS, oblivious noise, ε/m resilience), Algorithm B
// (no CRS, non-oblivious noise, ε/(m log m)), and Algorithm C (CRS,
// non-oblivious noise, ε/(m log log m)).
package core

import (
	"fmt"
	"math"

	"mpic/internal/graph"
)

// Scheme selects one of the paper's coding schemes.
type Scheme int

const (
	// Alg1 is Algorithm 1: pre-shared CRS, oblivious adversary, K = m.
	Alg1 Scheme = iota + 1
	// AlgA is Algorithm A: randomness exchange instead of a CRS,
	// oblivious adversary, K = m.
	AlgA
	// AlgB is Algorithm B: randomness exchange, non-oblivious adversary,
	// K = m·log m and Θ(log m)-bit hashes.
	AlgB
	// AlgC is Algorithm C: pre-shared CRS, non-oblivious adversary,
	// K = m·log log m (Appendix B).
	AlgC
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case Alg1:
		return "Algorithm1"
	case AlgA:
		return "AlgorithmA"
	case AlgB:
		return "AlgorithmB"
	case AlgC:
		return "AlgorithmC"
	default:
		return "unknown"
	}
}

// RandMode says where hash seeds come from.
type RandMode int

const (
	// RandCRS gives every link a shared seed stream derived from a common
	// random string the adversary never sees (Algorithm 1 / C).
	RandCRS RandMode = iota + 1
	// RandExchange makes each pair of parties exchange a short seed over
	// the noisy link, protected by the error-correcting code
	// (Algorithm 5; used by Algorithms A and B).
	RandExchange
)

// SeedKind selects how the short per-link seed expands into the long seed
// stream.
type SeedKind int

const (
	// SeedPRF expands by strong integer mixing — the fast default,
	// standing in for a uniform stream (see DESIGN.md §3.7).
	SeedPRF SeedKind = iota + 1
	// SeedAGHP expands through the δ-biased AGHP powering construction of
	// Lemma 2.5 — the paper-faithful choice, used in the δ-bias
	// experiments.
	SeedAGHP
)

// Params fully determines a coding-scheme instance. Zero values are
// filled with defaults by Validate.
type Params struct {
	// ChunkBits is the communication budget per chunk (the paper's 5K).
	ChunkBits int
	// HashBits is the hash output length τ.
	HashBits int
	// IterFactor bounds iterations at IterFactor·|Π| (the paper runs
	// exactly 100·|Π|).
	IterFactor int
	// Randomness selects CRS vs randomness exchange.
	Randomness RandMode
	// SeedKind selects the seed-stream expansion.
	SeedKind SeedKind
	// RSBlockN and RSBlockK parameterize the randomness-exchange code.
	RSBlockN, RSBlockK int
	// CRSKey seeds the common random string (CRS modes) and the parties'
	// private randomness; runs with equal keys are reproducible.
	CRSKey int64
	// EarlyStop lets the harness halt once the oracle sees a fully
	// consistent network that has simulated all of Π. The paper-faithful
	// mode (false) always runs IterFactor·|Π| iterations.
	EarlyStop bool
	// Oracle enables ground-truth instrumentation (hash-collision
	// detection, potential snapshots). Costs time, changes nothing
	// observable to the parties.
	Oracle bool
	// DisableFlagPassing ablates the flag-passing phase (experiment E-F7).
	DisableFlagPassing bool
	// DisableRewind ablates the rewind phase (experiment E-F7).
	DisableRewind bool
	// IncrementalHash routes the two per-link transcript-prefix hashes of
	// the meeting-points check through rewind-aware incremental
	// checkpoints (hashing.Checkpointed): the prefix slots draw their
	// seeds from a rewind-stable region of the stream
	// (SeedLayout.StableOffset) that does not change between iterations,
	// so per-iteration hash cost is Θ(transcript growth since the last
	// checkpoint) instead of Θ(|T|) — the difference between quadratic
	// and linear total hash work over an iteration budget. The counter
	// hash keeps per-iteration fresh seeds.
	//
	// Trade-off: the paper draws fresh prefix-hash seeds every iteration,
	// making hash collisions between divergent transcripts independent
	// across checks; with stable seeds a colliding pair of prefixes
	// collides at every check until one side's prefix changes. The
	// meeting-points counters still force progress (rollbacks move mp1/mp2,
	// changing the compared prefixes), but the per-iteration collision
	// independence used by the union bound of Lemma 2.3 is weakened —
	// raise HashBits when enabling this at scale. Off by default: the
	// default configuration remains paper-faithful and bit-identical to
	// previous releases for a fixed CRSKey.
	IncrementalHash bool
}

// Log2Ceil returns ⌈log₂ n⌉ for n ≥ 1 (0 for n ≤ 1). Exposed because the
// experiment harness reports noise levels in terms of m, log m, and
// log log m.
func Log2Ceil(n int) int {
	if n <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(n))))
}

func log2Ceil(n int) int { return Log2Ceil(n) }

// ParamsFor returns the paper's parameterization of the given scheme on
// topology g.
func ParamsFor(s Scheme, g *graph.Graph) Params {
	m := g.M()
	if m < 1 {
		m = 1
	}
	p := Params{
		IterFactor: 100,
		RSBlockN:   31,
		RSBlockK:   11,
		EarlyStop:  true,
		Oracle:     true,
	}
	logm := log2Ceil(m)
	if logm < 1 {
		logm = 1
	}
	loglogm := log2Ceil(logm + 1)
	if loglogm < 1 {
		loglogm = 1
	}
	switch s {
	case Alg1:
		p.ChunkBits = 5 * m
		p.HashBits = 8
		p.Randomness = RandCRS
		p.SeedKind = SeedPRF
	case AlgA:
		p.ChunkBits = 5 * m
		p.HashBits = 8
		p.Randomness = RandExchange
		p.SeedKind = SeedPRF
	case AlgB:
		p.ChunkBits = 5 * m * logm
		p.HashBits = maxInt(8, 2*logm)
		p.Randomness = RandExchange
		p.SeedKind = SeedPRF
	case AlgC:
		p.ChunkBits = 5 * m * loglogm
		p.HashBits = maxInt(8, 2*loglogm)
		p.Randomness = RandCRS
		p.SeedKind = SeedPRF
	}
	return p
}

// Validate fills defaults and rejects inconsistent parameters.
func (p *Params) Validate() error {
	if p.ChunkBits <= 0 {
		return fmt.Errorf("core: ChunkBits must be positive, got %d", p.ChunkBits)
	}
	if p.HashBits <= 0 || p.HashBits > 64 {
		return fmt.Errorf("core: HashBits must be in 1..64, got %d", p.HashBits)
	}
	if p.IterFactor <= 0 {
		p.IterFactor = 100
	}
	if p.Randomness == 0 {
		p.Randomness = RandCRS
	}
	if p.SeedKind == 0 {
		p.SeedKind = SeedPRF
	}
	if p.RSBlockN == 0 {
		p.RSBlockN, p.RSBlockK = 31, 11
	}
	if p.RSBlockK <= 0 || p.RSBlockK >= p.RSBlockN || p.RSBlockN > 255 {
		return fmt.Errorf("core: invalid RS block (%d,%d)", p.RSBlockN, p.RSBlockK)
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
