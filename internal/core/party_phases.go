package core

import (
	"mpic/internal/bitstring"
	"mpic/internal/channel"
	"mpic/internal/graph"
	"mpic/internal/protocol"
)

// flagBit encodes continue=1 / stop=0.
func flagBit(b bool) bitstring.Symbol {
	if b {
		return bitstring.Sym1
	}
	return bitstring.Sym0
}

// flagSend implements the party's transmissions in Algorithm 3: the
// upward convergecast of aggregated flags followed by the downward
// broadcast of the network verdict. All rounds are fixed by the node's
// level in the BFS tree.
func (p *party) flagSend(rel int, to graph.Node) bitstring.Symbol {
	t := p.env.tree
	d := t.Depth
	lvl := t.Level[p.id]
	if p.id != t.Root && to == t.Parent[p.id] && rel == d-lvl {
		return flagBit(p.flagAgg)
	}
	if rel == (d-1)+(lvl-1) && p.isChild(to) {
		if p.id == t.Root {
			// The root's verdict is the global AND (line 8 of
			// Algorithm 3: own status ∧ all children's flags).
			p.netCorrect = p.flagAgg
		}
		return flagBit(p.netCorrect)
	}
	return bitstring.Silence
}

// isChild reports whether v is one of p's children in the spanning tree.
func (p *party) isChild(v graph.Node) bool {
	return v != p.id && p.env.tree.Parent[v] == p.id
}

// flagDeliver folds received flags at exactly the rounds the schedule
// expects them; symbols at other rounds (insertions) are ignored, and a
// missing flag (deletion) reads as "stop" — the conservative default.
func (p *party) flagDeliver(rel int, from graph.Node, sym bitstring.Symbol) {
	t := p.env.tree
	d := t.Depth
	lvl := t.Level[p.id]
	if p.isChild(from) && rel == d-lvl-1 {
		p.flagAgg = p.flagAgg && sym == bitstring.Sym1
		return
	}
	if p.id != t.Root && from == t.Parent[p.id] && rel == d+lvl-3 {
		p.netCorrect = sym == bitstring.Sym1 && p.status
	}
}

// simSend handles the simulation phase: the ⊥ round (rel 0), then the
// chunk's scheduled transmissions.
func (p *party) simSend(rel int, ls *linkState) bitstring.Symbol {
	if rel == 0 {
		if !p.netCorrect {
			return bitstring.Sym1 // ⊥: not participating this iteration
		}
		return bitstring.Silence
	}
	if ls.simChunk == 0 {
		return bitstring.Silence
	}
	idx := ls.spec.SlotAt(ls.edge, rel-1, p.id)
	if idx < 0 {
		return bitstring.Silence
	}
	bit := p.contentBit(ls, idx)
	ls.pending[idx] = bitstring.SymbolFromBit(bit)
	return ls.pending[idx]
}

// contentBit computes the bit for one outgoing slot: the underlying
// protocol's next message given this party's current (believed) view, or
// zero inside dummy padding chunks.
func (p *party) contentBit(ls *linkState, idx int) byte {
	if p.env.chunking.IsDummy(ls.simChunk) {
		return 0
	}
	slot := ls.slots[idx]
	r := ls.spec.StartRound + slot.RelRound
	return p.env.proto.SendBit(codedView{p: p}, r, slot.Tx, slot.Seq) & 1
}

// simDeliver records incoming simulation symbols into the pending chunk
// buffer; symbols on unscheduled slots are ignored (Section 3.2:
// "insertions and deletions at other rounds are ignored").
func (p *party) simDeliver(rel int, ls *linkState, sym bitstring.Symbol) {
	if rel == 0 {
		if sym != bitstring.Silence {
			ls.skip = true
		}
		return
	}
	if ls.simChunk == 0 {
		return
	}
	idx := ls.spec.SlotAt(ls.edge, rel-1, ls.peer)
	if idx >= 0 {
		ls.pending[idx] = sym
	}
}

// beginSimulation sets up per-link chunk state once the ⊥ round has been
// observed: the party simulates chunk |T_{u,v}|+1 with every neighbor
// that did not opt out (Algorithm 1 line 17).
func (p *party) beginSimulation() {
	if !p.netCorrect {
		return
	}
	for _, ls := range p.links {
		if ls.skip {
			continue
		}
		ls.simChunk = ls.T.Len() + 1
		ls.spec = p.env.chunking.Spec(ls.simChunk)
		ls.slots = ls.spec.LinkSlots[ls.edge]
		ls.pending = make([]bitstring.Symbol, len(ls.slots))
		for i := range ls.pending {
			ls.pending[i] = bitstring.Silence
		}
	}
}

// finishSimulation commits the pending buffers as new transcript chunks.
func (p *party) finishSimulation() {
	for _, ls := range p.links {
		if ls.simChunk == 0 {
			continue
		}
		ls.T.Append(ChunkRecord{Index: ls.simChunk, Syms: ls.pending})
		ls.simChunk = 0
		ls.spec = nil
		ls.slots = nil
		ls.pending = nil
	}
}

// finishExchange decodes the received seed codewords and instantiates the
// per-link seed streams (Algorithm 5). A link whose codeword cannot be
// decoded is marked broken: its endpoints will disagree on every hash —
// the E \ E' case of Section 5.
func (p *party) finishExchange() {
	for _, ls := range p.links {
		if ls.exchSend != nil {
			continue // sender already holds its source
		}
		for len(ls.exchRecv) < p.env.codec.CodewordBits() {
			ls.exchRecv = append(ls.exchRecv, 0)
			ls.exchErased = append(ls.exchErased, true)
		}
		seed, err := p.env.codec.DecodeBits(ls.exchRecv, ls.exchErased)
		if err != nil {
			ls.seedBroken = true
			// Deterministic garbage: fold whatever arrived. The link's
			// hashes will disagree with the peer's, which the scheme must
			// survive (it costs the adversary Θ(|Π|) errors to get here).
			var a, b uint64
			for i, bit := range ls.exchRecv {
				if bit != 0 {
					if i%2 == 0 {
						a ^= 1 << uint(i%64)
					} else {
						b ^= 1 << uint(i%64)
					}
				}
			}
			p.env.bindSource(ls, p.env.newSource(a^0xdead, b^0xbeef))
			continue
		}
		a, b := seedToWords(seed)
		p.env.bindSource(ls, p.env.newSource(a, b))
	}
}

// codedView adapts a party's believed transcripts to protocol.View so the
// underlying protocol's message functions can be re-evaluated during
// simulation (including re-simulation after rewinds).
type codedView struct {
	p *party
}

var _ protocol.View = codedView{}

// Self implements protocol.View.
func (v codedView) Self() graph.Node { return v.p.id }

// Input implements protocol.View.
func (v codedView) Input() []byte { return v.p.env.proto.Input(v.p.id) }

// Observed implements protocol.View.
func (v codedView) Observed(l channel.Link, seq int) bitstring.Symbol {
	loc, ok := v.p.env.chunking.Locate(l, seq)
	if !ok {
		return bitstring.Silence
	}
	var peer graph.Node
	switch {
	case l.From == v.p.id:
		peer = l.To
	case l.To == v.p.id:
		peer = l.From
	default:
		return bitstring.Silence
	}
	ls, ok := v.p.links[peer]
	if !ok {
		return bitstring.Silence
	}
	if loc.Chunk <= ls.T.Len() {
		rec := ls.T.Chunk(loc.Chunk - 1)
		if loc.Pos < len(rec.Syms) {
			return rec.Syms[loc.Pos]
		}
		return bitstring.Silence
	}
	if ls.simChunk == loc.Chunk && loc.Pos < len(ls.pending) {
		return ls.pending[loc.Pos]
	}
	return bitstring.Silence
}
