package core

import (
	"math/rand"

	"mpic/internal/bitstring"
	"mpic/internal/ecc"
	"mpic/internal/graph"
	"mpic/internal/hashing"
	"mpic/internal/meeting"
	"mpic/internal/network"
	"mpic/internal/protocol"
	"mpic/internal/trace"
)

// env bundles everything shared (read-only) by all parties of a run.
type env struct {
	params    Params
	g         *graph.Graph
	proto     protocol.Protocol
	chunking  *protocol.Chunking
	tree      *graph.SpanningTree
	lay       *layout
	hash      *hashing.InnerProductHash
	seedLay   *hashing.SeedLayout
	numChunks int // |Π| in chunks
	codec     *ecc.BitCodec
	crsK0     uint64
	crsK1     uint64
	// arena, when non-nil, recycles the block-cache buffers across runs.
	arena *Arena
	// seedHintWords pre-sizes the per-link prefix-hash seed caches: the
	// row-prefix length (in words) a run's transcripts are expected to
	// reach, derived from the chunking when the layout is built.
	seedHintWords int
}

// linkState is one endpoint's per-link state: the pairwise transcript, the
// meeting-points counters, the shared seed stream, and the scratch buffers
// of the current phase.
type linkState struct {
	peer graph.Node
	edge graph.Edge
	// ord is the link's position in the party's neighbor order; per-link
	// scratch that must not allocate per round (the rewind plan) is
	// indexed by it.
	ord int
	T   *Transcript
	mp  *meeting.State
	src hashing.SeedSource
	// ck, c1, c2 are the materialized seed blocks for the current
	// iteration's three hash slots (counter, mp1 prefix, mp2 prefix); they
	// are re-pointed by prepareIteration and feed the allocation-free
	// kernel.
	ck, c1, c2 *hashing.BlockCache
	// p1, p2 replace c1, c2 in the checkpointed modes (HashEpoch /
	// HashIncremental): rewind-aware checkpointed hashers over the stable
	// seed region, whose cost per evaluation is proportional to
	// transcript growth, not length. Under HashEpoch, prepareIteration
	// rebases them onto a fresh seed block every EpochRefresh iterations.
	p1, p2 *hashing.Checkpointed
	// h is the link's meeting.Hasher, boxed once at source binding so the
	// per-iteration hash calls do not re-box the interface value.
	h    meeting.Hasher
	iter int // iteration whose seeds the hasher uses

	alreadyRewound bool

	// Meeting-points phase buffers: 3τ bits each way, plus the unpacked
	// form of the outgoing message (Step reuses it as the endpoint's side
	// of the comparison instead of re-hashing).
	mpOut  []byte
	mpRecv []byte
	mpOwn  meeting.Message

	// Simulation phase state.
	skip     bool // received ⊥ this iteration
	simChunk int  // chunk index being simulated; 0 = none
	spec     *protocol.ChunkSpec
	slots    []protocol.Slot
	pending  []bitstring.Symbol

	// Randomness-exchange state.
	exchSend   []byte // codeword bits (sender side)
	exchRecv   []byte
	exchErased []bool
	seedBroken bool
}

// hasher adapts a linkState to meeting.Hasher using the per-iteration
// seed blocks both endpoints share.
type hasher struct {
	env *env
	ls  *linkState
}

// HashK implements meeting.Hasher via the allocation-free cached kernel;
// prepareIteration points the block caches at the current iteration's
// seed blocks before any hash is evaluated.
func (h hasher) HashK(k int) uint64 {
	return h.env.hash.HashWordCached(uint64(k), meeting.KWidth, h.ls.ck)
}

// HashPrefix implements meeting.Hasher. In the checkpointed modes the
// evaluation resumes from the checkpointed accumulators; under
// HashLegacy it sweeps the materialized per-iteration seed block.
func (h hasher) HashPrefix(chunks int, slot int) uint64 {
	if h.ls.p1 != nil {
		p := h.ls.p1
		if slot == 2 {
			p = h.ls.p2
		}
		return p.HashPrefix(h.ls.T.PrefixBits(chunks))
	}
	c := h.ls.c1
	if slot == 2 {
		c = h.ls.c2
	}
	return h.env.hash.HashPrefixCached(h.ls.T.Bits(), h.ls.T.PrefixBits(chunks), c)
}

// party is one node's implementation of the coding scheme: a state
// machine over the fixed phase layout, driven by the network engine.
type party struct {
	env       *env
	id        graph.Node
	neighbors []graph.Node
	links     map[graph.Node]*linkState

	status     bool // the party's own continue/idle flag
	flagAgg    bool // AND of own status and children's upward flags
	netCorrect bool

	preparedIter int // iteration whose MP messages are prepared (-1 none)

	rewindRound int // round whose rewind decisions are already planned
	// rewindPlan[ord] says whether a rewind symbol is pending for the
	// link at neighbor ordinal ord. A reusable slice rather than a map:
	// planRewinds runs every rewind round of every iteration, and
	// per-round map churn showed up as steady-state allocation.
	rewindPlan []bool

	// Memoized phase decomposition of the last round seen: Send, Deliver
	// and EndRound each decompose the same round once per link, and the
	// layout division showed up in profiles. Private to the party, so the
	// parallel executor (one worker per party at a time) stays race-free.
	phRound int
	phIter  int
	phPh    trace.Phase
	phRel   int

	rng *rand.Rand // private randomness (seed sampling)
}

// phaseAt is the memoizing wrapper over layout.phaseAt.
func (p *party) phaseAt(round int) (int, trace.Phase, int) {
	if p.phRound != round {
		p.phIter, p.phPh, p.phRel = p.env.lay.phaseAt(round)
		p.phRound = round
	}
	return p.phIter, p.phPh, p.phRel
}

var _ network.Party = (*party)(nil)
var _ network.RoundEnder = (*party)(nil)

func newParty(e *env, id graph.Node) *party {
	p := &party{
		env:          e,
		id:           id,
		neighbors:    e.g.Neighbors(id),
		links:        make(map[graph.Node]*linkState),
		status:       true,
		netCorrect:   true,
		preparedIter: -1,
		rewindRound:  -1,
		phRound:      -1,
		rewindPlan:   make([]bool, len(e.g.Neighbors(id))),
		rng:          rand.New(rand.NewSource(e.params.CRSKey ^ (0x5851f42d4c957f2d * int64(id+1)))),
	}
	for i, v := range p.neighbors {
		ls := &linkState{
			peer: v,
			edge: graph.Edge{U: id, V: v}.Canonical(),
			ord:  i,
			T:    NewTranscript(),
			mp:   meeting.NewState(),
		}
		p.links[v] = ls
	}
	p.initSeeds()
	return p
}

// initSeeds prepares the per-link randomness. In CRS mode both endpoints
// derive the same stream from the common key immediately; in exchange
// mode the sender samples a short seed and encodes it, and sources are
// built when the exchange phase completes.
func (p *party) initSeeds() {
	// Iterate links in neighbor order, not map order: exchange-mode
	// senders draw their seeds from p.rng, and ranging over the map made
	// the link→seed assignment (and so the whole run) vary between
	// processes despite a fixed CRSKey.
	for _, v := range p.neighbors {
		ls := p.links[v]
		if p.env.params.Randomness == RandCRS {
			a, b := crsLinkSeed(p.env.crsK0, p.env.crsK1, ls.edge)
			p.env.bindSource(ls, p.env.newSource(a, b))
			continue
		}
		if p.isExchangeSender(ls) {
			seed := make([]byte, seedBits)
			for i := range seed {
				seed[i] = byte(p.rng.Intn(2))
			}
			enc, err := p.env.codec.EncodeBits(seed)
			if err != nil {
				// The codec is sized for seedBits at construction; an
				// error here is a programming bug, not a runtime state.
				panic(err)
			}
			ls.exchSend = enc
			a, b := seedToWords(seed)
			p.env.bindSource(ls, p.env.newSource(a, b))
		} else {
			ls.exchRecv = make([]byte, 0, p.env.codec.CodewordBits())
			ls.exchErased = make([]bool, 0, p.env.codec.CodewordBits())
		}
	}
}

// epochR returns the effective seed-refresh interval for HashEpoch,
// tolerating manually built test envs that never ran Params.Validate.
func (e *env) epochR() int {
	if r := e.params.EpochRefresh; r > 0 {
		return r
	}
	return DefaultEpochRefresh
}

// bindSource installs a link's seed stream and builds its per-slot hash
// state over it, pre-sized from the layout so steady-state hashing
// allocates nothing: per-iteration block caches for the counter slot and
// — depending on Params.HashMode — either per-iteration caches
// (HashLegacy) or checkpointed hashers over the stable seed region for
// the two prefix slots (HashEpoch starts in epoch 0, whose block
// coincides with StableOffset; prepareIteration rebases it every
// EpochRefresh iterations). Exchange-mode receivers bind late
// (finishExchange); everyone else binds at construction.
func (e *env) bindSource(ls *linkState, src hashing.SeedSource) {
	ls.src = src
	var pool *hashing.BufferPool
	if e.arena != nil {
		pool = &e.arena.pool
	}
	ls.ck = hashing.NewBlockCacheIn(pool, e.hash, src, 1)
	if e.params.HashMode != HashLegacy {
		bits := ls.T.Bits()
		ls.p1 = hashing.NewCheckpointedIn(pool, e.hash, src, e.seedLay.EpochOffset(hashing.SlotMP1, 0), bits, e.seedHintWords, 0)
		ls.p2 = hashing.NewCheckpointedIn(pool, e.hash, src, e.seedLay.EpochOffset(hashing.SlotMP2, 0), bits, e.seedHintWords, 0)
	} else {
		ls.c1 = hashing.NewBlockCacheIn(pool, e.hash, src, e.seedHintWords)
		ls.c2 = hashing.NewBlockCacheIn(pool, e.hash, src, e.seedHintWords)
	}
	ls.h = hasher{env: e, ls: ls}
}

// seedBits is the short uniform seed length exchanged per link: two
// GF(2^64) elements for the AGHP generator (or a 128-bit PRF key).
const seedBits = 128

// isExchangeSender fixes the arbitrary total order of Algorithm 5: the
// lower node id samples and transmits the seed.
func (p *party) isExchangeSender(ls *linkState) bool { return p.id < ls.peer }

// crsLinkSeed derives a per-link 128-bit seed from the common random
// string; both endpoints compute the same value.
func crsLinkSeed(k0, k1 uint64, e graph.Edge) (uint64, uint64) {
	salt := uint64(e.U)*0x1000003 + uint64(e.V) + 1
	mix := func(x uint64) uint64 {
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		return x ^ (x >> 31)
	}
	return mix(k0 ^ salt), mix(k1 ^ (salt * 0x9e3779b97f4a7c15))
}

func (e *env) newSource(a, b uint64) hashing.SeedSource {
	if e.params.SeedKind == SeedAGHP {
		return hashing.NewAGHPSource(a, b)
	}
	return hashing.NewPRFSource(a, b)
}

func seedToWords(bits []byte) (uint64, uint64) {
	var a, b uint64
	for i := 0; i < 64 && i < len(bits); i++ {
		a |= uint64(bits[i]&1) << uint(i)
	}
	for i := 64; i < 128 && i < len(bits); i++ {
		b |= uint64(bits[i]&1) << uint(i-64)
	}
	return a, b
}

// ID implements network.Party.
func (p *party) ID() graph.Node { return p.id }

// Send implements network.Party.
func (p *party) Send(round int, to graph.Node) bitstring.Symbol {
	iter, ph, rel := p.phaseAt(round)
	ls := p.links[to]
	switch ph {
	case trace.PhaseExchange:
		if ls.exchSend != nil && rel < len(ls.exchSend) {
			return bitstring.SymbolFromBit(ls.exchSend[rel])
		}
		return bitstring.Silence
	case trace.PhaseMeetingPoints:
		if p.preparedIter != iter {
			p.prepareIteration(iter)
		}
		return bitstring.SymbolFromBit(ls.mpOut[rel])
	case trace.PhaseFlagPassing:
		return p.flagSend(rel, to)
	case trace.PhaseSimulation:
		return p.simSend(rel, ls)
	default: // rewind
		p.planRewinds(round)
		if p.rewindPlan[ls.ord] {
			p.rewindPlan[ls.ord] = false
			return bitstring.Sym1
		}
		return bitstring.Silence
	}
}

// Deliver implements network.Party.
func (p *party) Deliver(round int, from graph.Node, sym bitstring.Symbol) {
	_, ph, rel := p.phaseAt(round)
	ls := p.links[from]
	switch ph {
	case trace.PhaseExchange:
		if ls.exchRecv != nil && rel < p.env.codec.CodewordBits() {
			ls.exchRecv = append(ls.exchRecv, sym.Bit())
			ls.exchErased = append(ls.exchErased, sym == bitstring.Silence)
		}
	case trace.PhaseMeetingPoints:
		ls.mpRecv[rel] = sym.Bit()
	case trace.PhaseFlagPassing:
		p.flagDeliver(rel, from, sym)
	case trace.PhaseSimulation:
		p.simDeliver(rel, ls, sym)
	default: // rewind
		if sym == bitstring.Silence {
			return
		}
		if ls.mp.Status != meeting.StatusMeetingPoints && !ls.alreadyRewound {
			ls.T.TruncateTo(ls.T.Len() - 1)
			ls.alreadyRewound = true
		}
	}
}

// EndRound implements network.RoundEnder: phase-boundary finalization.
func (p *party) EndRound(round int) {
	iter, ph, rel := p.phaseAt(round)
	if !p.env.lay.lastOf(ph, rel, round) {
		// The ⊥ round inside the simulation phase also needs
		// finalization: chunk simulation state is set up only once all
		// ⊥ symbols of the round have been seen.
		if ph == trace.PhaseSimulation && rel == 0 {
			p.beginSimulation()
		}
		return
	}
	switch ph {
	case trace.PhaseExchange:
		p.finishExchange()
	case trace.PhaseMeetingPoints:
		p.finishMeetingPoints()
		if p.env.lay.flagRounds == 0 {
			// Flag passing ablated (or trivial tree): a party trusts its
			// own status only.
			p.netCorrect = p.status
		}
		if p.env.lay.simRounds == 1 {
			// Degenerate: no chunk rounds (cannot happen with a real
			// protocol, but keep the machine total).
			p.beginSimulation()
		}
	case trace.PhaseFlagPassing:
		// netCorrect was fixed during delivery; nothing to finalize.
	case trace.PhaseSimulation:
		p.finishSimulation()
	default: // rewind: end of the iteration
		_ = iter
	}
}

// prepareIteration computes the meeting-points messages for iteration it
// and resets the per-iteration link scratch state. The mpOut/mpRecv
// buffers and the seed block caches are reused across iterations, so in
// steady state this performs zero allocations; mpRecv needs no clearing
// because the engine delivers exactly one symbol per slot of the phase,
// overwriting all 3τ positions.
func (p *party) prepareIteration(it int) {
	p.preparedIter = it
	tau := p.env.params.HashBits
	for _, ls := range p.links {
		ls.iter = it
		ls.alreadyRewound = false
		ls.skip = false
		ls.ck.SetBlock(p.env.seedLay.Offset(it, hashing.SlotK))
		if ls.p1 == nil {
			// Per-iteration prefix seeds: re-point the caches at this
			// iteration's blocks.
			ls.c1.SetBlock(p.env.seedLay.Offset(it, hashing.SlotMP1))
			ls.c2.SetBlock(p.env.seedLay.Offset(it, hashing.SlotMP2))
		} else if p.env.params.HashMode == HashEpoch {
			// Epoch refresh: rebase the checkpointed hashers onto the
			// current epoch's seed block. SetBlock is a no-op within an
			// epoch; at a boundary it discards the checkpoints, and the
			// next evaluation re-sweeps the whole prefix against the fresh
			// block — amortized Θ(|T|/R) per iteration.
			epoch := it / p.env.epochR()
			ls.p1.SetBlock(p.env.seedLay.EpochOffset(hashing.SlotMP1, epoch))
			ls.p2.SetBlock(p.env.seedLay.EpochOffset(hashing.SlotMP2, epoch))
		}
		// HashIncremental needs no per-iteration step — its seed block is
		// rewind-stable for the whole run and invalidation is driven by
		// the transcript itself.
		msg := ls.mp.Outgoing(ls.h, ls.T.Len())
		ls.mpOwn = msg
		if ls.mpOut == nil {
			ls.mpOut = make([]byte, 3*tau)
			ls.mpRecv = make([]byte, 3*tau)
		}
		packHashesInto(ls.mpOut, msg, tau)
	}
}

// packHashesInto serializes (HK, H1, H2) into 3τ bits, LSB-first per
// field, reusing the caller's buffer (len must be 3τ).
func packHashesInto(dst []byte, m meeting.Message, tau int) {
	k := 0
	for _, h := range [3]uint64{m.HK, m.H1, m.H2} {
		for j := 0; j < tau; j++ {
			dst[k] = byte(h >> uint(j) & 1)
			k++
		}
	}
}

// unpackHashes reverses packHashes.
func unpackHashes(bits []byte, tau int) meeting.Message {
	get := func(k int) uint64 {
		var h uint64
		for j := 0; j < tau; j++ {
			h |= uint64(bits[k*tau+j]&1) << uint(j)
		}
		return h
	}
	return meeting.Message{HK: get(0), H1: get(1), H2: get(2)}
}

// finishMeetingPoints runs one meeting-points step per link and then
// recomputes the party's own flag (Algorithm 1 lines 3–13).
func (p *party) finishMeetingPoints() {
	tau := p.env.params.HashBits
	for _, ls := range p.links {
		msg := unpackHashes(ls.mpRecv, tau)
		act := ls.mp.Step(ls.mpOwn, ls.T.Len(), msg)
		if act.TruncateTo >= 0 {
			ls.T.TruncateTo(act.TruncateTo)
		}
	}
	minChunk := p.minChunk()
	p.status = true
	for _, ls := range p.links {
		if ls.mp.Status == meeting.StatusMeetingPoints || ls.T.Len() > minChunk {
			p.status = false
			break
		}
	}
	p.flagAgg = p.status
}

func (p *party) minChunk() int {
	min := -1
	for _, ls := range p.links {
		if min < 0 || ls.T.Len() < min {
			min = ls.T.Len()
		}
	}
	if min < 0 {
		min = 0
	}
	return min
}

// planRewinds makes this round's rewind decisions once (Algorithm 1 lines
// 25–32): send a rewind on every link that is ahead of the party's
// current minimum, outside meeting-points recovery, at most once per
// iteration per link. minChunk is recomputed from the live transcript
// lengths so the rewind wave of Claim 4.7 propagates one hop per round.
func (p *party) planRewinds(round int) {
	if p.rewindRound == round || p.env.params.DisableRewind {
		return
	}
	p.rewindRound = round
	minChunk := p.minChunk()
	for _, v := range p.neighbors {
		ls := p.links[v]
		if ls.mp.Status == meeting.StatusMeetingPoints || ls.alreadyRewound {
			continue
		}
		if ls.T.Len() > minChunk {
			ls.T.TruncateTo(ls.T.Len() - 1)
			ls.alreadyRewound = true
			p.rewindPlan[ls.ord] = true
		}
	}
}
