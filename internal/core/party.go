package core

import (
	"math/rand"

	"mpic/internal/bitstring"
	"mpic/internal/ecc"
	"mpic/internal/graph"
	"mpic/internal/hashing"
	"mpic/internal/meeting"
	"mpic/internal/network"
	"mpic/internal/protocol"
	"mpic/internal/trace"
)

// env bundles everything shared (read-only) by all parties of a run.
type env struct {
	params    Params
	g         *graph.Graph
	proto     protocol.Protocol
	chunking  *protocol.Chunking
	tree      *graph.SpanningTree
	lay       *layout
	hash      *hashing.InnerProductHash
	seedLay   *hashing.SeedLayout
	numChunks int // |Π| in chunks
	codec     *ecc.BitCodec
	crsK0     uint64
	crsK1     uint64
}

// linkState is one endpoint's per-link state: the pairwise transcript, the
// meeting-points counters, the shared seed stream, and the scratch buffers
// of the current phase.
type linkState struct {
	peer graph.Node
	edge graph.Edge
	T    *Transcript
	mp   *meeting.State
	src  hashing.SeedSource
	iter int // iteration whose seeds the hasher uses

	alreadyRewound bool

	// Meeting-points phase buffers: 3τ bits each way.
	mpOut  []byte
	mpRecv []byte

	// Simulation phase state.
	skip     bool // received ⊥ this iteration
	simChunk int  // chunk index being simulated; 0 = none
	spec     *protocol.ChunkSpec
	slots    []protocol.Slot
	pending  []bitstring.Symbol

	// Randomness-exchange state.
	exchSend   []byte // codeword bits (sender side)
	exchRecv   []byte
	exchErased []bool
	seedBroken bool
}

// hasher adapts a linkState to meeting.Hasher using the per-iteration
// seed blocks both endpoints share.
type hasher struct {
	env *env
	ls  *linkState
}

// HashK implements meeting.Hasher.
func (h hasher) HashK(k int) uint64 {
	off := h.env.seedLay.Offset(h.ls.iter, hashing.SlotK)
	return h.env.hash.HashUint(uint64(k), meeting.KWidth, h.ls.src, off)
}

// HashPrefix implements meeting.Hasher.
func (h hasher) HashPrefix(chunks int, slot int) uint64 {
	s := hashing.SlotMP1
	if slot == 2 {
		s = hashing.SlotMP2
	}
	off := h.env.seedLay.Offset(h.ls.iter, s)
	return h.env.hash.HashPrefix(h.ls.T.Bits(), h.ls.T.PrefixBits(chunks), h.ls.src, off)
}

// party is one node's implementation of the coding scheme: a state
// machine over the fixed phase layout, driven by the network engine.
type party struct {
	env       *env
	id        graph.Node
	neighbors []graph.Node
	links     map[graph.Node]*linkState

	status     bool // the party's own continue/idle flag
	flagAgg    bool // AND of own status and children's upward flags
	netCorrect bool

	preparedIter int // iteration whose MP messages are prepared (-1 none)

	rewindRound int // round whose rewind decisions are already planned
	rewindPlan  map[graph.Node]bool

	rng *rand.Rand // private randomness (seed sampling)
}

var _ network.Party = (*party)(nil)
var _ network.RoundEnder = (*party)(nil)

func newParty(e *env, id graph.Node) *party {
	p := &party{
		env:          e,
		id:           id,
		neighbors:    e.g.Neighbors(id),
		links:        make(map[graph.Node]*linkState),
		status:       true,
		netCorrect:   true,
		preparedIter: -1,
		rewindRound:  -1,
		rewindPlan:   make(map[graph.Node]bool),
		rng:          rand.New(rand.NewSource(e.params.CRSKey ^ (0x5851f42d4c957f2d * int64(id+1)))),
	}
	for _, v := range p.neighbors {
		ls := &linkState{
			peer: v,
			edge: graph.Edge{U: id, V: v}.Canonical(),
			T:    NewTranscript(),
			mp:   meeting.NewState(),
		}
		p.links[v] = ls
	}
	p.initSeeds()
	return p
}

// initSeeds prepares the per-link randomness. In CRS mode both endpoints
// derive the same stream from the common key immediately; in exchange
// mode the sender samples a short seed and encodes it, and sources are
// built when the exchange phase completes.
func (p *party) initSeeds() {
	for _, ls := range p.links {
		if p.env.params.Randomness == RandCRS {
			a, b := crsLinkSeed(p.env.crsK0, p.env.crsK1, ls.edge)
			ls.src = p.env.newSource(a, b)
			continue
		}
		if p.isExchangeSender(ls) {
			seed := make([]byte, seedBits)
			for i := range seed {
				seed[i] = byte(p.rng.Intn(2))
			}
			enc, err := p.env.codec.EncodeBits(seed)
			if err != nil {
				// The codec is sized for seedBits at construction; an
				// error here is a programming bug, not a runtime state.
				panic(err)
			}
			ls.exchSend = enc
			a, b := seedToWords(seed)
			ls.src = p.env.newSource(a, b)
		} else {
			ls.exchRecv = make([]byte, 0, p.env.codec.CodewordBits())
			ls.exchErased = make([]bool, 0, p.env.codec.CodewordBits())
		}
	}
}

// seedBits is the short uniform seed length exchanged per link: two
// GF(2^64) elements for the AGHP generator (or a 128-bit PRF key).
const seedBits = 128

// isExchangeSender fixes the arbitrary total order of Algorithm 5: the
// lower node id samples and transmits the seed.
func (p *party) isExchangeSender(ls *linkState) bool { return p.id < ls.peer }

// crsLinkSeed derives a per-link 128-bit seed from the common random
// string; both endpoints compute the same value.
func crsLinkSeed(k0, k1 uint64, e graph.Edge) (uint64, uint64) {
	salt := uint64(e.U)*0x1000003 + uint64(e.V) + 1
	mix := func(x uint64) uint64 {
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		return x ^ (x >> 31)
	}
	return mix(k0 ^ salt), mix(k1 ^ (salt * 0x9e3779b97f4a7c15))
}

func (e *env) newSource(a, b uint64) hashing.SeedSource {
	if e.params.SeedKind == SeedAGHP {
		return hashing.NewAGHPSource(a, b)
	}
	return hashing.NewPRFSource(a, b)
}

func seedToWords(bits []byte) (uint64, uint64) {
	var a, b uint64
	for i := 0; i < 64 && i < len(bits); i++ {
		a |= uint64(bits[i]&1) << uint(i)
	}
	for i := 64; i < 128 && i < len(bits); i++ {
		b |= uint64(bits[i]&1) << uint(i-64)
	}
	return a, b
}

// ID implements network.Party.
func (p *party) ID() graph.Node { return p.id }

// Send implements network.Party.
func (p *party) Send(round int, to graph.Node) bitstring.Symbol {
	iter, ph, rel := p.env.lay.phaseAt(round)
	ls := p.links[to]
	switch ph {
	case trace.PhaseExchange:
		if ls.exchSend != nil && rel < len(ls.exchSend) {
			return bitstring.SymbolFromBit(ls.exchSend[rel])
		}
		return bitstring.Silence
	case trace.PhaseMeetingPoints:
		if p.preparedIter != iter {
			p.prepareIteration(iter)
		}
		return bitstring.SymbolFromBit(ls.mpOut[rel])
	case trace.PhaseFlagPassing:
		return p.flagSend(rel, to)
	case trace.PhaseSimulation:
		return p.simSend(rel, ls)
	default: // rewind
		p.planRewinds(round)
		if p.rewindPlan[to] {
			p.rewindPlan[to] = false
			return bitstring.Sym1
		}
		return bitstring.Silence
	}
}

// Deliver implements network.Party.
func (p *party) Deliver(round int, from graph.Node, sym bitstring.Symbol) {
	_, ph, rel := p.env.lay.phaseAt(round)
	ls := p.links[from]
	switch ph {
	case trace.PhaseExchange:
		if ls.exchRecv != nil && rel < p.env.codec.CodewordBits() {
			ls.exchRecv = append(ls.exchRecv, sym.Bit())
			ls.exchErased = append(ls.exchErased, sym == bitstring.Silence)
		}
	case trace.PhaseMeetingPoints:
		ls.mpRecv[rel] = sym.Bit()
	case trace.PhaseFlagPassing:
		p.flagDeliver(rel, from, sym)
	case trace.PhaseSimulation:
		p.simDeliver(rel, ls, sym)
	default: // rewind
		if sym == bitstring.Silence {
			return
		}
		if ls.mp.Status != meeting.StatusMeetingPoints && !ls.alreadyRewound {
			ls.T.TruncateTo(ls.T.Len() - 1)
			ls.alreadyRewound = true
		}
	}
}

// EndRound implements network.RoundEnder: phase-boundary finalization.
func (p *party) EndRound(round int) {
	iter, ph, last := p.env.lay.phaseEnd(round)
	if !last {
		// The ⊥ round inside the simulation phase also needs
		// finalization: chunk simulation state is set up only once all
		// ⊥ symbols of the round have been seen.
		if _, ph2, rel := p.env.lay.phaseAt(round); ph2 == trace.PhaseSimulation && rel == 0 {
			p.beginSimulation()
		}
		return
	}
	switch ph {
	case trace.PhaseExchange:
		p.finishExchange()
	case trace.PhaseMeetingPoints:
		p.finishMeetingPoints()
		if p.env.lay.flagRounds == 0 {
			// Flag passing ablated (or trivial tree): a party trusts its
			// own status only.
			p.netCorrect = p.status
		}
		if p.env.lay.simRounds == 1 {
			// Degenerate: no chunk rounds (cannot happen with a real
			// protocol, but keep the machine total).
			p.beginSimulation()
		}
	case trace.PhaseFlagPassing:
		// netCorrect was fixed during delivery; nothing to finalize.
	case trace.PhaseSimulation:
		p.finishSimulation()
	default: // rewind: end of the iteration
		_ = iter
	}
}

// prepareIteration computes the meeting-points messages for iteration it
// and resets the per-iteration link scratch state.
func (p *party) prepareIteration(it int) {
	p.preparedIter = it
	tau := p.env.params.HashBits
	for _, ls := range p.links {
		ls.iter = it
		ls.alreadyRewound = false
		ls.skip = false
		msg := ls.mp.Outgoing(hasher{env: p.env, ls: ls}, ls.T.Len())
		ls.mpOut = packHashes(msg, tau)
		ls.mpRecv = make([]byte, 3*tau)
	}
}

// packHashes serializes (HK, H1, H2) into 3τ bits, LSB-first per field.
func packHashes(m meeting.Message, tau int) []byte {
	out := make([]byte, 0, 3*tau)
	for _, h := range []uint64{m.HK, m.H1, m.H2} {
		for j := 0; j < tau; j++ {
			out = append(out, byte(h>>uint(j)&1))
		}
	}
	return out
}

// unpackHashes reverses packHashes.
func unpackHashes(bits []byte, tau int) meeting.Message {
	get := func(k int) uint64 {
		var h uint64
		for j := 0; j < tau; j++ {
			h |= uint64(bits[k*tau+j]&1) << uint(j)
		}
		return h
	}
	return meeting.Message{HK: get(0), H1: get(1), H2: get(2)}
}

// finishMeetingPoints runs one meeting-points step per link and then
// recomputes the party's own flag (Algorithm 1 lines 3–13).
func (p *party) finishMeetingPoints() {
	tau := p.env.params.HashBits
	for _, ls := range p.links {
		msg := unpackHashes(ls.mpRecv, tau)
		act := ls.mp.Step(hasher{env: p.env, ls: ls}, ls.T.Len(), msg)
		if act.TruncateTo >= 0 {
			ls.T.TruncateTo(act.TruncateTo)
		}
	}
	minChunk := p.minChunk()
	p.status = true
	for _, ls := range p.links {
		if ls.mp.Status == meeting.StatusMeetingPoints || ls.T.Len() > minChunk {
			p.status = false
			break
		}
	}
	p.flagAgg = p.status
}

func (p *party) minChunk() int {
	min := -1
	for _, ls := range p.links {
		if min < 0 || ls.T.Len() < min {
			min = ls.T.Len()
		}
	}
	if min < 0 {
		min = 0
	}
	return min
}

// planRewinds makes this round's rewind decisions once (Algorithm 1 lines
// 25–32): send a rewind on every link that is ahead of the party's
// current minimum, outside meeting-points recovery, at most once per
// iteration per link. minChunk is recomputed from the live transcript
// lengths so the rewind wave of Claim 4.7 propagates one hop per round.
func (p *party) planRewinds(round int) {
	if p.rewindRound == round || p.env.params.DisableRewind {
		return
	}
	p.rewindRound = round
	minChunk := p.minChunk()
	for _, v := range p.neighbors {
		ls := p.links[v]
		if ls.mp.Status == meeting.StatusMeetingPoints || ls.alreadyRewound {
			continue
		}
		if ls.T.Len() > minChunk {
			ls.T.TruncateTo(ls.T.Len() - 1)
			ls.alreadyRewound = true
			p.rewindPlan[v] = true
		}
	}
}
