package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mpic/internal/bitstring"
)

func mkChunk(index int, syms ...bitstring.Symbol) ChunkRecord {
	return ChunkRecord{Index: index, Syms: syms}
}

func TestTranscriptAppendLen(t *testing.T) {
	tr := NewTranscript()
	if tr.Len() != 0 {
		t.Fatal("new transcript not empty")
	}
	tr.Append(mkChunk(1, bitstring.Sym0, bitstring.Sym1))
	tr.Append(mkChunk(2, bitstring.Silence))
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	if tr.Chunk(0).Index != 1 || tr.Chunk(1).Index != 2 {
		t.Error("chunk indices wrong")
	}
	// Encoded bits: 32 (index) + 2 per symbol.
	if got := tr.PrefixBits(1); got != 32+4 {
		t.Errorf("PrefixBits(1) = %d, want 36", got)
	}
	if got := tr.PrefixBits(2); got != 36+32+2 {
		t.Errorf("PrefixBits(2) = %d, want 70", got)
	}
	if tr.Bits().Len() != 70 {
		t.Errorf("Bits().Len() = %d, want 70", tr.Bits().Len())
	}
}

func TestTranscriptPrefixBitsClamps(t *testing.T) {
	tr := NewTranscript()
	tr.Append(mkChunk(1, bitstring.Sym0))
	if tr.PrefixBits(-1) != 0 {
		t.Error("negative prefix not clamped to 0")
	}
	if tr.PrefixBits(99) != tr.Bits().Len() {
		t.Error("oversized prefix not clamped to full length")
	}
}

func TestTranscriptTruncate(t *testing.T) {
	tr := NewTranscript()
	for i := 1; i <= 5; i++ {
		tr.Append(mkChunk(i, bitstring.Sym1, bitstring.Sym0, bitstring.Silence))
	}
	bitsAt3 := tr.PrefixBits(3)
	tr.TruncateTo(3)
	if tr.Len() != 3 {
		t.Fatalf("Len after truncate = %d, want 3", tr.Len())
	}
	if tr.Bits().Len() != bitsAt3 {
		t.Fatalf("bits after truncate = %d, want %d", tr.Bits().Len(), bitsAt3)
	}
	// Truncate to larger and to negative are no-op / clamp.
	tr.TruncateTo(10)
	if tr.Len() != 3 {
		t.Error("truncate to larger changed length")
	}
	tr.TruncateTo(-1)
	if tr.Len() != 0 {
		t.Error("truncate to negative did not clamp to 0")
	}
}

func TestTranscriptAppendAfterTruncate(t *testing.T) {
	tr := NewTranscript()
	tr.Append(mkChunk(1, bitstring.Sym1))
	tr.Append(mkChunk(2, bitstring.Sym0))
	tr.TruncateTo(1)
	tr.Append(mkChunk(2, bitstring.Sym1)) // re-simulated with new content
	other := NewTranscript()
	other.Append(mkChunk(1, bitstring.Sym1))
	other.Append(mkChunk(2, bitstring.Sym1))
	if !tr.Equal(other) {
		t.Fatal("transcript after truncate+append differs from fresh build")
	}
}

func TestCommonPrefixChunks(t *testing.T) {
	a := NewTranscript()
	b := NewTranscript()
	for i := 1; i <= 4; i++ {
		a.Append(mkChunk(i, bitstring.Sym0))
	}
	for i := 1; i <= 3; i++ {
		b.Append(mkChunk(i, bitstring.Sym0))
	}
	if got := CommonPrefixChunks(a, b); got != 3 {
		t.Errorf("prefix of strict-prefix pair = %d, want 3", got)
	}
	b.Append(mkChunk(4, bitstring.Sym1)) // diverging content
	if got := CommonPrefixChunks(a, b); got != 3 {
		t.Errorf("prefix with divergent chunk 4 = %d, want 3", got)
	}
	empty := NewTranscript()
	if CommonPrefixChunks(a, empty) != 0 {
		t.Error("prefix with empty transcript != 0")
	}
}

func TestChunkEqualVariants(t *testing.T) {
	a := mkChunk(1, bitstring.Sym0, bitstring.Sym1)
	if !chunkEqual(&a, &a) {
		t.Error("chunk not equal to itself")
	}
	b := mkChunk(2, bitstring.Sym0, bitstring.Sym1)
	if chunkEqual(&a, &b) {
		t.Error("different indices compare equal")
	}
	c := mkChunk(1, bitstring.Sym0)
	if chunkEqual(&a, &c) {
		t.Error("different lengths compare equal")
	}
	d := mkChunk(1, bitstring.Sym0, bitstring.Silence)
	if chunkEqual(&a, &d) {
		t.Error("different symbols compare equal")
	}
}

// Property: the cached bit encoding always matches a from-scratch
// rebuild, through arbitrary append/truncate sequences.
func TestTranscriptBitsConsistencyProperty(t *testing.T) {
	f := func(seed int64, opsRaw []byte) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := NewTranscript()
		var chunks []ChunkRecord
		for _, op := range opsRaw {
			if op%3 == 0 && len(chunks) > 0 {
				cut := rng.Intn(len(chunks) + 1)
				tr.TruncateTo(cut)
				chunks = chunks[:cut]
			} else {
				syms := make([]bitstring.Symbol, rng.Intn(4)+1)
				for i := range syms {
					syms[i] = bitstring.Symbol(rng.Intn(3))
				}
				rec := ChunkRecord{Index: len(chunks) + 1, Syms: syms}
				tr.Append(rec)
				chunks = append(chunks, rec)
			}
		}
		rebuilt := NewTranscript()
		for _, rec := range chunks {
			rebuilt.Append(rec)
		}
		return tr.Equal(rebuilt) && tr.Bits().Equal(rebuilt.Bits())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestTranscriptHashDistinguishesLengths: the chunk-index encoding makes
// prefixes of different chunk counts hash differently despite the
// zero-padding property (footnote 11's requirement).
func TestTranscriptLengthsEncodeDifferently(t *testing.T) {
	a := NewTranscript()
	a.Append(mkChunk(1, bitstring.Sym0, bitstring.Sym0))
	b := NewTranscript()
	b.Append(mkChunk(1, bitstring.Sym0, bitstring.Sym0))
	b.Append(mkChunk(2, bitstring.Sym0, bitstring.Sym0))
	// b's encoding must not be a's encoding followed by zeros: the chunk
	// index 2 contributes a nonzero bit.
	aBits := a.Bits()
	bBits := b.Bits()
	diff := false
	for i := aBits.Len(); i < bBits.Len(); i++ {
		if bBits.Get(i) != 0 {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("longer transcript encodes as zero-padded shorter one: hashes would collide")
	}
}
