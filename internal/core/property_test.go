package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mpic/internal/adversary"
	"mpic/internal/graph"
	"mpic/internal/protocol"
)

// TestEndToEndProperty is the library's headline property: over random
// connected topologies, random sparse workloads, and random light
// oblivious noise, the coded simulation reproduces the noiseless
// reference outputs.
func TestEndToEndProperty(t *testing.T) {
	f := func(seed int64, nRaw, extraRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%5 + 3       // 3..7 parties
		extra := int(extraRaw) % n // extra edges beyond the tree
		g := graph.RandomConnected(n, extra, rng)
		proto := protocol.NewRandom(g, 10*n, 0.4, seed, nil)
		params := ParamsFor(AlgA, g)
		params.CRSKey = seed
		params.IterFactor = 40
		adv := adversary.NewRandomRate(0.002/float64(g.M()), rand.New(rand.NewSource(seed^0x5f5f)))
		res, err := Run(Options{Protocol: proto, Params: params, Adversary: adv})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if !res.Success {
			t.Logf("seed %d n=%d m=%d: failed with %d corruptions, G*=%d/%d",
				seed, n, g.M(), res.Metrics.TotalCorruptions(), res.GStar, res.NumChunks)
		}
		return res.Success
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestInvariantGStarNeverExceedsTranscripts: across noisy runs the
// oracle's G* is consistent (it never exceeds any endpoint's transcript
// length) and success always implies G* >= |Π|.
func TestInvariantSuccessImpliesAgreement(t *testing.T) {
	f := func(seed int64, noiseRaw uint8) bool {
		g := graph.Ring(4)
		noise := float64(noiseRaw%50) / 10000.0
		proto := protocol.NewRandom(g, 40, 0.5, seed, nil)
		params := ParamsFor(Alg1, g)
		params.CRSKey = seed
		params.IterFactor = 20
		adv := adversary.NewRandomRate(noise, rand.New(rand.NewSource(seed)))
		res, err := Run(Options{Protocol: proto, Params: params, Adversary: adv})
		if err != nil {
			return false
		}
		if res.Success && res.GStar < res.NumChunks {
			t.Logf("seed %d: success with G*=%d < %d", seed, res.GStar, res.NumChunks)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestChunkingPropertyRandomSchedules: chunk covers and locates every
// transmission for arbitrary workload shapes.
func TestChunkingPropertyRandomSchedules(t *testing.T) {
	f := func(seed int64, nRaw, densityRaw uint8) bool {
		n := int(nRaw)%5 + 3
		density := float64(densityRaw%90+10) / 100.0
		g := graph.Ring(n)
		proto := protocol.NewRandom(g, 30, density, seed, nil)
		chunkBits := 5 * g.M()
		ch := protocol.NewChunking(proto, chunkBits)
		total := 0
		for _, spec := range ch.Specs {
			total += spec.Bits
		}
		if total != proto.Schedule().TotalBits() {
			return false
		}
		// Every transmission must be locatable and rounds must nest.
		seq := map[int]int{} // crude per-link counters keyed by hash
		_ = seq
		count := 0
		for r := 0; r < proto.Schedule().Rounds(); r++ {
			count += len(proto.Schedule().At(r))
		}
		located := 0
		for _, spec := range ch.Specs {
			for _, slots := range spec.LinkSlots {
				located += len(slots)
			}
		}
		return located == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
