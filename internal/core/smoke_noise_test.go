package core

import (
	"math/rand"
	"testing"

	"mpic/internal/adversary"
	"mpic/internal/graph"
	"mpic/internal/protocol"
)

// TestSmokeNoisyAlgA runs Algorithm A against random oblivious noise at
// its nominal ε/m budget.
func TestSmokeNoisyAlgA(t *testing.T) {
	g := graph.Line(4)
	m := g.M()
	proto := protocol.NewRandom(g, 60, 0.5, 1, nil)
	params := ParamsFor(AlgA, g)
	params.IterFactor = 40
	ok := 0
	const trials = 5
	for trial := 0; trial < trials; trial++ {
		params.CRSKey = int64(trial)
		adv := adversary.NewRandomRate(0.01/float64(m), rand.New(rand.NewSource(int64(trial))))
		res, err := Run(Options{Protocol: proto, Params: params, Adversary: adv})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("trial %d: success=%v iters=%d corruptions=%d collisions=%d blowup=%.2f G*=%d/%d",
			trial, res.Success, res.Iterations, res.Metrics.TotalCorruptions(),
			res.Metrics.HashCollisions, res.Blowup, res.GStar, res.NumChunks)
		if res.Success {
			ok++
		}
	}
	if ok < trials-1 {
		t.Fatalf("only %d/%d noisy runs succeeded", ok, trials)
	}
}
