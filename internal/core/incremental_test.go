package core

import (
	"errors"
	"math/rand"
	"testing"

	"mpic/internal/adversary"
	"mpic/internal/bitstring"
	"mpic/internal/graph"
	"mpic/internal/hashing"
	"mpic/internal/protocol"
)

// inspectFunc adapts a function to the in-package party-inspection
// observer hook (the successor of the removed testAfterIter field): it is
// a no-op public Observer whose inspectParties extension receives the
// live parties after every iteration.
type inspectFunc func(it int, parties []*party)

func (inspectFunc) IterationDone(IterationStats)              {}
func (f inspectFunc) inspectParties(it int, parties []*party) { f(it, parties) }

// testEnvIncremental mirrors testEnv with the never-refreshed
// incremental prefix-hash path enabled.
func testEnvIncremental(t *testing.T, g *graph.Graph) *env {
	t.Helper()
	e := testEnv(t, g)
	e.params.HashMode = HashIncremental
	e.params.IncrementalHash = true
	return e
}

// testEnvEpoch mirrors testEnv with the epoch-refresh path at refresh
// interval r.
func testEnvEpoch(t *testing.T, g *graph.Graph, r int) *env {
	t.Helper()
	e := testEnv(t, g)
	e.params.HashMode = HashEpoch
	e.params.IncrementalHash = false
	e.params.EpochRefresh = r
	return e
}

// TestRunFixedSeedPinned pins the observable outcome of fixed-seed runs
// across four configurations (CRS, exchange, adaptive noise, white-box
// collision attack). The values were captured from the PR 1 code before
// the incremental-hash subsystem landed: HashLegacy must keep producing
// them bit-for-bit, proving the legacy escape hatch really is the seed
// engine — now that the repo default is epoch refresh, these pins are
// what keeps old recorded runs reproducible on demand. A fifth subtest
// pins the epoch default itself: a given (seed, R) replays bit-identically
// under the sequential and the parallel executor.
func TestRunFixedSeedPinned(t *testing.T) {
	type pin struct {
		succ          bool
		iters, gstar  int
		cc            int64
		wrong         int
		tried, landed int // whitebox only (-1 = not applicable)
	}
	check := func(t *testing.T, res *Result, want pin) {
		t.Helper()
		got := pin{res.Success, res.Iterations, res.GStar, res.Metrics.CC, res.WrongParties, -1, -1}
		if res.WhiteBox != nil {
			got.tried, got.landed = res.WhiteBox.Tried, res.WhiteBox.Landed
		}
		if got != want {
			t.Fatalf("fixed-seed run drifted:\n got %+v\nwant %+v", got, want)
		}
	}
	t.Run("alg1", func(t *testing.T) {
		g := graph.Ring(6)
		proto := protocol.NewRandom(g, 120, 0.5, 3, nil)
		params := ParamsFor(Alg1, g)
		params.IterFactor = 4
		params.EarlyStop = false
		params.CRSKey = 42
		params.HashMode = HashLegacy
		res, err := Run(Options{Protocol: proto, Params: params,
			Adversary: adversary.NewRandomRate(0.002, rand.New(rand.NewSource(11)))})
		if err != nil {
			t.Fatal(err)
		}
		check(t, res, pin{true, 104, 57, 32787, 0, -1, -1})
	})
	t.Run("algA", func(t *testing.T) {
		g := graph.Line(5)
		proto := protocol.NewRandom(g, 100, 0.5, 9, nil)
		params := ParamsFor(AlgA, g)
		params.IterFactor = 6
		params.CRSKey = 7
		params.HashMode = HashLegacy
		res, err := Run(Options{Protocol: proto, Params: params,
			Adversary: adversary.NewRandomRate(0.004, rand.New(rand.NewSource(5)))})
		if err != nil {
			t.Fatal(err)
		}
		check(t, res, pin{false, 138, 6, 31127, 5, -1, -1})
	})
	t.Run("algB", func(t *testing.T) {
		g := graph.Ring(4)
		proto := protocol.NewRandom(g, 80, 0.5, 2, nil)
		params := ParamsFor(AlgB, g)
		params.IterFactor = 5
		params.CRSKey = 3
		params.HashMode = HashLegacy
		res, err := Run(Options{Protocol: proto, Params: params,
			AdversaryFactory: func(info RunInfo) adversary.Adversary {
				return adversary.NewAdaptive(info.Links, info.PhaseOracle, 4, 0.003, rand.New(rand.NewSource(17)))
			}})
		if err != nil {
			t.Fatal(err)
		}
		check(t, res, pin{true, 9, 9, 4108, 0, -1, -1})
	})
	t.Run("whitebox", func(t *testing.T) {
		g := graph.Line(4)
		proto := protocol.NewRandom(g, 80, 0.5, 4, nil)
		params := ParamsFor(Alg1, g)
		params.IterFactor = 6
		params.HashBits = 4
		params.CRSKey = 13
		params.HashMode = HashLegacy
		res, err := Run(Options{Protocol: proto, Params: params, WhiteBoxRate: 0.01})
		if err != nil {
			t.Fatal(err)
		}
		check(t, res, pin{false, 120, 7, 10566, 4, 147, 20})
	})
	t.Run("epoch", func(t *testing.T) {
		// The default mode's own pin: a fixed (seed, R) replays
		// bit-identically, sequential or parallel. R = 32 puts three
		// refreshes inside the 104-iteration run, so the pin covers the
		// rebase machinery, not just the within-epoch incremental path —
		// and on this seed the within-epoch-only run (any R > 104,
		// including the default) actually fails on a persistent
		// collision, which is exactly the pathology refreshing exists to
		// cap. Values captured when epoch refresh became the default.
		run := func(parallel bool) *Result {
			g := graph.Ring(6)
			proto := protocol.NewRandom(g, 120, 0.5, 3, nil)
			params := ParamsFor(Alg1, g)
			params.IterFactor = 4
			params.EarlyStop = false
			params.CRSKey = 42
			params.EpochRefresh = 32
			res, err := Run(Options{Protocol: proto, Params: params, Parallel: parallel,
				Adversary: adversary.NewRandomRate(0.002, rand.New(rand.NewSource(11)))})
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		seq, par := run(false), run(true)
		want := pin{true, 104, 49, 32833, 0, -1, -1}
		check(t, seq, want)
		check(t, par, want)
		for i := range seq.Outputs {
			if string(seq.Outputs[i]) != string(par.Outputs[i]) {
				t.Fatalf("party %d output differs between sequential and parallel epoch runs", i)
			}
		}
	})
}

// TestIncrementalMatchesDefaultNoiseless: without noise, transcripts
// never diverge, every consistency check compares identical prefixes
// under identical seed blocks, and the hash values themselves never steer
// control flow — so every hash mode (the epoch default, the
// never-refreshed incremental opt-in, and the deprecated bool spelling of
// it) must reproduce the legacy mode's observable results exactly, for
// CRS and exchange randomness.
func TestIncrementalMatchesDefaultNoiseless(t *testing.T) {
	for _, scheme := range []Scheme{Alg1, AlgA} {
		g := graph.Ring(5)
		proto := protocol.NewRandom(g, 150, 0.5, 6, nil)
		run := func(mut func(*Params)) *Result {
			params := ParamsFor(scheme, g)
			params.IterFactor = 4
			params.CRSKey = 99
			mut(&params)
			res, err := Run(Options{Protocol: proto, Params: params, Adversary: adversary.None{}})
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		def := run(func(p *Params) { p.HashMode = HashLegacy })
		for _, alt := range []struct {
			name string
			mut  func(*Params)
		}{
			{"epoch-default", func(p *Params) {}},
			{"epoch-r4", func(p *Params) { p.EpochRefresh = 4 }},
			{"incremental", func(p *Params) { p.HashMode = HashIncremental }},
			{"incremental-bool", func(p *Params) { p.IncrementalHash = true }},
		} {
			inc := run(alt.mut)
			if def.Success != inc.Success || def.Iterations != inc.Iterations ||
				def.Metrics.CC != inc.Metrics.CC || def.GStar != inc.GStar {
				t.Fatalf("%v/%s: mode diverges noiselessly: def={succ:%v it:%d cc:%d g*:%d} got={succ:%v it:%d cc:%d g*:%d}",
					scheme, alt.name, def.Success, def.Iterations, def.Metrics.CC, def.GStar,
					inc.Success, inc.Iterations, inc.Metrics.CC, inc.GStar)
			}
			for i := range def.Outputs {
				if string(def.Outputs[i]) != string(inc.Outputs[i]) {
					t.Fatalf("%v/%s: party %d output differs between modes", scheme, alt.name, i)
				}
			}
		}
	}
}

// TestHashModeConflict pins the loud-failure contract: the deprecated
// IncrementalHash bool set alongside a contradictory HashMode is a typed
// error, never a silent preference; set consistently it keeps working.
func TestHashModeConflict(t *testing.T) {
	p := Params{ChunkBits: 10, HashBits: 8, HashMode: HashLegacy, IncrementalHash: true}
	err := p.Validate()
	var conflict *HashModeConflictError
	if !errors.As(err, &conflict) {
		t.Fatalf("Validate() = %v, want *HashModeConflictError", err)
	}
	if conflict.Mode != HashLegacy {
		t.Fatalf("conflict reports mode %v, want legacy", conflict.Mode)
	}
	// The conflict must also surface through Run, not just direct Validate.
	g := graph.Line(3)
	bad := quickParams(Alg1, g, 1)
	bad.HashMode = HashLegacy
	bad.IncrementalHash = true
	if _, err := Run(Options{Protocol: quickProto(g, 1), Params: bad}); !errors.As(err, &conflict) {
		t.Fatalf("Run() = %v, want *HashModeConflictError", err)
	}
	// Consistent spellings normalize instead of erroring.
	for _, p := range []Params{
		{ChunkBits: 10, HashBits: 8, IncrementalHash: true},
		{ChunkBits: 10, HashBits: 8, HashMode: HashIncremental, IncrementalHash: true},
	} {
		if err := p.Validate(); err != nil {
			t.Fatalf("consistent params rejected: %v", err)
		}
		if p.HashMode != HashIncremental || !p.IncrementalHash {
			t.Fatalf("normalization broken: mode=%v bool=%v", p.HashMode, p.IncrementalHash)
		}
	}
	// Invalid EpochRefresh is rejected.
	neg := Params{ChunkBits: 10, HashBits: 8, EpochRefresh: -1}
	if err := neg.Validate(); err == nil {
		t.Fatal("negative EpochRefresh accepted")
	}
}

// TestHasherIncrementalMatchesReference is the party-level golden test
// for the incremental path: through real link state, across iterations,
// appends and truncations, the checkpointed hasher must produce exactly
// what the reference evaluator produces on the stable seed blocks.
func TestHasherIncrementalMatchesReference(t *testing.T) {
	g := graph.Line(3)
	e := testEnvIncremental(t, g)
	p := newParty(e, 1)
	rng := rand.New(rand.NewSource(4))
	appendChunk := func(ls *linkState, i int) {
		ls.T.Append(ChunkRecord{Index: i, Syms: []bitstring.Symbol{
			bitstring.Symbol(rng.Intn(3)), bitstring.Symbol(rng.Intn(3))}})
	}
	for _, ls := range p.links {
		for i := 1; i <= 12; i++ {
			appendChunk(ls, i)
		}
	}
	for it := 0; it < 5; it++ {
		p.prepareIteration(it)
		for _, ls := range p.links {
			// Rewind mid-iteration sequence, then regrow — the pattern
			// that invalidates and rebuilds checkpoints.
			if it == 2 {
				ls.T.TruncateTo(ls.T.Len() - 5)
			}
			if it == 3 {
				for i, target := ls.T.Len()+1, ls.T.Len()+4; i <= target; i++ {
					appendChunk(ls, i)
				}
			}
			for chunks := 0; chunks <= ls.T.Len(); chunks += 3 {
				for slot := 1; slot <= 2; slot++ {
					s := hashing.SlotMP1
					if slot == 2 {
						s = hashing.SlotMP2
					}
					want := e.hash.HashPrefix(ls.T.Bits(), ls.T.PrefixBits(chunks), ls.src, e.seedLay.StableOffset(s))
					if got := ls.h.HashPrefix(chunks, slot); got != want {
						t.Fatalf("it=%d chunks=%d slot=%d: incremental %#x != reference %#x", it, chunks, slot, got, want)
					}
				}
			}
		}
	}
}

// TestHasherEpochMatchesReference is the party-level golden test for the
// epoch-refresh path: across iterations spanning several refresh
// boundaries (R=2 here, so every other prepareIteration rebases the
// checkpoint store onto a fresh seed block), interleaved with the same
// truncate/regrow churn as the incremental variant, the checkpointed
// hasher must produce exactly what the reference evaluator produces on
// the live epoch's seed block.
func TestHasherEpochMatchesReference(t *testing.T) {
	g := graph.Line(3)
	e := testEnvEpoch(t, g, 2)
	p := newParty(e, 1)
	rng := rand.New(rand.NewSource(4))
	appendChunk := func(ls *linkState, i int) {
		ls.T.Append(ChunkRecord{Index: i, Syms: []bitstring.Symbol{
			bitstring.Symbol(rng.Intn(3)), bitstring.Symbol(rng.Intn(3))}})
	}
	for _, ls := range p.links {
		for i := 1; i <= 12; i++ {
			appendChunk(ls, i)
		}
	}
	for it := 0; it < 7; it++ {
		p.prepareIteration(it)
		epoch := it / e.epochR()
		for _, ls := range p.links {
			// Rewind mid-sequence, then regrow — once straddling a refresh
			// boundary (it=2 is the first rebase with R=2) and once inside
			// an epoch, so invalidation composes with rebasing both ways.
			if it == 2 || it == 5 {
				ls.T.TruncateTo(ls.T.Len() - 5)
			}
			if it == 3 || it == 6 {
				for i, target := ls.T.Len()+1, ls.T.Len()+4; i <= target; i++ {
					appendChunk(ls, i)
				}
			}
			for chunks := 0; chunks <= ls.T.Len(); chunks += 3 {
				for slot := 1; slot <= 2; slot++ {
					s := hashing.SlotMP1
					if slot == 2 {
						s = hashing.SlotMP2
					}
					want := e.hash.HashPrefix(ls.T.Bits(), ls.T.PrefixBits(chunks), ls.src, e.seedLay.EpochOffset(s, epoch))
					if got := ls.h.HashPrefix(chunks, slot); got != want {
						t.Fatalf("it=%d epoch=%d chunks=%d slot=%d: epoch-mode %#x != reference %#x", it, epoch, chunks, slot, got, want)
					}
				}
			}
		}
	}
}

// TestRewindHammerSchemes runs the truncation-forcing adversary against
// schemes A and B under every hash mode: the runs must complete, account
// their corruptions, and — because the hammer's whole point is forcing
// deep rollbacks — actually truncate transcripts. In the checkpointed
// modes, an after-iteration whitebox invariant re-checks every link's
// prefix hashes against the reference evaluator on the mode's own seed
// block (the stable block, or the live epoch's block), so checkpoint
// invalidation AND epoch rebasing are exercised by a live rewind storm,
// not just by unit fuzz. The hammer's poison/quiet cycle is depth+quiet
// = 4 iterations, so the epoch cases at R=4 put a truncation burst at a
// fixed phase of every refresh interval — including bursts landing
// exactly on the refresh iteration — and R=1 refreshes under every
// single truncation.
func TestRewindHammerSchemes(t *testing.T) {
	for _, tc := range []struct {
		name   string
		scheme Scheme
		mode   HashMode
		r      int
	}{
		{"algA/legacy", AlgA, HashLegacy, 0},
		{"algA/incremental", AlgA, HashIncremental, 0},
		{"algA/epoch-r1", AlgA, HashEpoch, 1},
		{"algA/epoch-r4", AlgA, HashEpoch, 4},
		{"algB/legacy", AlgB, HashLegacy, 0},
		{"algB/incremental", AlgB, HashIncremental, 0},
		{"algB/epoch-r4", AlgB, HashEpoch, 4},
	} {
		g := graph.Line(4)
		proto := protocol.NewRandom(g, 120, 0.5, 8, nil)
		params := ParamsFor(tc.scheme, g)
		params.IterFactor = 8
		params.EarlyStop = false
		params.CRSKey = 21
		params.HashMode = tc.mode
		params.EpochRefresh = tc.r
		refOffset := func(p *party, s hashing.Slot, it int) (uint64, bool) {
			switch tc.mode {
			case HashIncremental:
				return p.env.seedLay.StableOffset(s), true
			case HashEpoch:
				return p.env.seedLay.EpochOffset(s, it/p.env.epochR()), true
			default:
				return 0, false
			}
		}
		var hammer *adversary.RewindHammer
		truncations := 0
		lastLen := map[[2]graph.Node]int{}
		opts := Options{
			Protocol: proto,
			Params:   params,
			AdversaryFactory: func(info RunInfo) adversary.Adversary {
				hammer = adversary.NewRewindHammer(info.Links, info.PhaseOracle, 3, 0.01, 3, 1)
				return hammer
			},
			Observers: []Observer{inspectFunc(func(it int, parties []*party) {
				for _, p := range parties {
					for _, ls := range p.links {
						key := [2]graph.Node{p.id, ls.peer}
						if ls.T.Len() < lastLen[key] {
							truncations++
						}
						lastLen[key] = ls.T.Len()
						for _, chunks := range []int{0, ls.T.Len() / 2, ls.T.Len()} {
							for slot := 1; slot <= 2; slot++ {
								s := hashing.SlotMP1
								if slot == 2 {
									s = hashing.SlotMP2
								}
								off, ok := refOffset(p, s, it)
								if !ok {
									continue
								}
								want := p.env.hash.HashPrefix(ls.T.Bits(), ls.T.PrefixBits(chunks), ls.src, off)
								if got := ls.h.HashPrefix(chunks, slot); got != want {
									t.Fatalf("%s it=%d link %d→%d chunks=%d slot=%d: %#x != reference %#x",
										tc.name, it, p.id, ls.peer, chunks, slot, got, want)
								}
							}
						}
					}
				}
			})},
		}
		res, err := Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Iterations == 0 {
			t.Fatalf("%s: no iterations executed", tc.name)
		}
		if hammer.Corruptions() == 0 {
			t.Fatalf("%s: hammer never fired", tc.name)
		}
		if truncations == 0 {
			t.Fatalf("%s: hammer forced no truncations", tc.name)
		}
	}
}

// TestPrepareIterationIncrementalAllocs extends the steady-state
// allocation pin to the incremental path: preparing iterations —
// including the append/truncate churn that moves the checkpoint frontier
// — must not allocate once warm.
func TestPrepareIterationIncrementalAllocs(t *testing.T) {
	g := graph.Line(3)
	e := testEnvIncremental(t, g)
	p := newParty(e, 1)
	for _, ls := range p.links {
		for i := 1; i <= 30; i++ {
			ls.T.Append(ChunkRecord{Index: i, Syms: []bitstring.Symbol{bitstring.Sym1, bitstring.Sym0, bitstring.Silence}})
		}
	}
	p.prepareIteration(0)
	p.prepareIteration(1)
	allocs := testing.AllocsPerRun(100, func() {
		for _, ls := range p.links {
			ls.T.TruncateTo(29)
		}
		p.prepareIteration(2)
		p.prepareIteration(3)
	})
	if allocs != 0 {
		t.Fatalf("incremental prepareIteration allocates %.1f times in steady state, want 0", allocs)
	}
}

// TestPrepareIterationEpochAllocs pins the same steady-state contract on
// the default epoch path with R=2, so the measured loop crosses a refresh
// boundary on every prepareIteration pair: the epoch rebase (SetBlock on
// a fresh seed block plus full checkpoint rebuild) must recycle the
// warmed buffers, not allocate.
func TestPrepareIterationEpochAllocs(t *testing.T) {
	g := graph.Line(3)
	e := testEnvEpoch(t, g, 2)
	p := newParty(e, 1)
	for _, ls := range p.links {
		for i := 1; i <= 30; i++ {
			ls.T.Append(ChunkRecord{Index: i, Syms: []bitstring.Symbol{bitstring.Sym1, bitstring.Sym0, bitstring.Silence}})
		}
	}
	p.prepareIteration(0)
	p.prepareIteration(1)
	it := 2
	allocs := testing.AllocsPerRun(100, func() {
		for _, ls := range p.links {
			ls.T.TruncateTo(29)
		}
		p.prepareIteration(it)
		p.prepareIteration(it + 1)
		it += 2
	})
	if allocs != 0 {
		t.Fatalf("epoch prepareIteration allocates %.1f times in steady state, want 0", allocs)
	}
}

// TestTranscriptClamps pins the documented out-of-range behavior of
// TruncateTo and PrefixBits (previously implicit; only the underlying
// bitstring.Truncate panic had coverage).
func TestTranscriptClamps(t *testing.T) {
	tr := NewTranscript()
	for i := 1; i <= 3; i++ {
		tr.Append(ChunkRecord{Index: i, Syms: []bitstring.Symbol{bitstring.Sym1}})
	}
	full := tr.Bits().Len()
	if got := tr.PrefixBits(-5); got != 0 {
		t.Fatalf("PrefixBits(-5) = %d, want 0", got)
	}
	if got := tr.PrefixBits(99); got != full {
		t.Fatalf("PrefixBits(99) = %d, want %d (clamped to Len)", got, full)
	}
	tr.TruncateTo(99) // no-op
	if tr.Len() != 3 || tr.Bits().Len() != full {
		t.Fatal("TruncateTo beyond Len mutated the transcript")
	}
	tr.TruncateTo(-1) // clamps to empty
	if tr.Len() != 0 || tr.Bits().Len() != 0 {
		t.Fatalf("TruncateTo(-1): len=%d bits=%d, want empty", tr.Len(), tr.Bits().Len())
	}
	tr.Append(ChunkRecord{Index: 1, Syms: []bitstring.Symbol{bitstring.Sym0}})
	if tr.Len() != 1 {
		t.Fatal("append after clamped truncation broken")
	}
}

// TestPlanRewindsUsesOrdinalSlice covers the rewind-planning path after
// the map→slice change: planning marks exactly the links ahead of the
// minimum, Send-style consumption clears them, and steady-state planning
// allocates nothing.
func TestPlanRewindsUsesOrdinalSlice(t *testing.T) {
	g := graph.Line(3)
	e := testEnv(t, g)
	p := newParty(e, 1)
	// Put one link ahead of the other.
	long := p.links[graph.Node(0)]
	for i := 1; i <= 4; i++ {
		long.T.Append(ChunkRecord{Index: i, Syms: []bitstring.Symbol{bitstring.Sym1}})
	}
	p.prepareIteration(0)
	p.planRewinds(100)
	if !p.rewindPlan[long.ord] {
		t.Fatal("rewind not planned for the link ahead of the minimum")
	}
	if p.rewindPlan[p.links[graph.Node(2)].ord] {
		t.Fatal("rewind planned for a link at the minimum")
	}
	if long.T.Len() != 3 {
		t.Fatalf("planned rewind did not truncate: len=%d, want 3", long.T.Len())
	}
	p.rewindPlan[long.ord] = false
	// Steady state: repeated planning rounds (lengths equalize, then
	// no-ops) must not allocate.
	round := 101
	allocs := testing.AllocsPerRun(100, func() {
		p.prepareIteration(1)
		p.planRewinds(round)
		round++
		p.prepareIteration(2)
		p.planRewinds(round)
		round++
	})
	if allocs != 0 {
		t.Fatalf("rewind planning allocates %.1f times in steady state, want 0", allocs)
	}
}
