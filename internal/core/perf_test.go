package core

import (
	"math/rand"
	"testing"

	"mpic/internal/adversary"
	"mpic/internal/bitstring"
	"mpic/internal/graph"
	"mpic/internal/hashing"
	"mpic/internal/protocol"
)

// testEnv builds the minimal env a party needs for the meeting-points hash
// path, mirroring Run's construction.
func testEnv(t *testing.T, g *graph.Graph) *env {
	t.Helper()
	// HashLegacy: these whitebox tests compare the hasher against the
	// per-iteration reference offsets; the checkpointed modes have their
	// own envs (testEnvIncremental / testEnvEpoch).
	p := Params{ChunkBits: 10, HashBits: 8, IterFactor: 4, CRSKey: 7, HashMode: HashLegacy}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	e := &env{
		params: p,
		g:      g,
		crsK0:  uint64(p.CRSKey)*0x9e3779b97f4a7c15 + 0x853c49e6748fea9b,
		crsK1:  uint64(p.CRSKey)*0xda942042e4dd58b5 + 0xd1342543de82ef95,
	}
	maxChunkBits := chunkIndexBits + 2*5
	e.hash = hashing.NewInnerProductHash(p.HashBits, 64*maxChunkBits)
	e.seedLay = hashing.NewSeedLayout(e.hash)
	e.seedHintWords = (40*maxChunkBits + 63) / 64
	return e
}

// TestPrepareIterationSteadyStateAllocs pins the zero-allocation contract
// of the per-iteration consistency-check setup: once the scratch buffers
// and seed caches are warm, preparing further iterations (including the
// SetBlock invalidation between them) allocates nothing.
func TestPrepareIterationSteadyStateAllocs(t *testing.T) {
	g := graph.Line(3)
	e := testEnv(t, g)
	p := newParty(e, 1)
	// Give the transcripts some length so prefix hashing sweeps real words.
	for _, ls := range p.links {
		for i := 1; i <= 30; i++ {
			ls.T.Append(ChunkRecord{Index: i, Syms: []bitstring.Symbol{bitstring.Sym1, bitstring.Sym0, bitstring.Silence}})
		}
	}
	p.prepareIteration(0)
	p.prepareIteration(1)
	allocs := testing.AllocsPerRun(100, func() {
		p.prepareIteration(2)
		p.prepareIteration(3)
	})
	if allocs != 0 {
		t.Fatalf("prepareIteration allocates %.1f times in steady state, want 0", allocs)
	}
}

// TestHasherMatchesReferenceEvaluators: the party's cached hasher must
// produce exactly what the reference interface-dispatch evaluators produce
// for the same layout offsets — the end-to-end form of the kernel golden
// test, through real party state.
func TestHasherMatchesReferenceEvaluators(t *testing.T) {
	g := graph.Line(3)
	e := testEnv(t, g)
	p := newParty(e, 1)
	for _, ls := range p.links {
		for i := 1; i <= 17; i++ {
			ls.T.Append(ChunkRecord{Index: i, Syms: []bitstring.Symbol{bitstring.Sym0, bitstring.Sym1}})
		}
	}
	for it := 0; it < 3; it++ {
		p.prepareIteration(it)
		for _, ls := range p.links {
			h := hasher{env: e, ls: ls}
			for k := 1; k <= 4; k++ {
				want := e.hash.HashUint(uint64(k), 32, ls.src, e.seedLay.Offset(it, hashing.SlotK))
				if got := h.HashK(k); got != want {
					t.Fatalf("it=%d HashK(%d) = %#x, want %#x", it, k, got, want)
				}
			}
			for chunks := 0; chunks <= ls.T.Len(); chunks += 5 {
				for slot := 1; slot <= 2; slot++ {
					s := hashing.SlotMP1
					if slot == 2 {
						s = hashing.SlotMP2
					}
					want := e.hash.HashPrefix(ls.T.Bits(), ls.T.PrefixBits(chunks), ls.src, e.seedLay.Offset(it, s))
					if got := h.HashPrefix(chunks, slot); got != want {
						t.Fatalf("it=%d HashPrefix(%d,%d) = %#x, want %#x", it, chunks, slot, got, want)
					}
				}
			}
		}
	}
}

// TestRunParallelMatchesSequential: the persistent worker pool must leave
// every observable run outcome identical to the sequential executor.
func TestRunParallelMatchesSequential(t *testing.T) {
	g := graph.Ring(6)
	run := func(parallel bool) *Result {
		proto := protocol.NewRandom(g, 120, 0.5, 3, nil)
		params := ParamsFor(Alg1, g)
		params.IterFactor = 3
		params.EarlyStop = false
		res, err := Run(Options{
			Protocol:  proto,
			Params:    params,
			Adversary: adversary.NewRandomRate(0.002, rand.New(rand.NewSource(11))),
			Parallel:  parallel,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(false)
	par := run(true)
	if seq.Success != par.Success || seq.Iterations != par.Iterations ||
		seq.Metrics.CC != par.Metrics.CC || seq.GStar != par.GStar {
		t.Fatalf("parallel run diverges: seq={succ:%v it:%d cc:%d g*:%d} par={succ:%v it:%d cc:%d g*:%d}",
			seq.Success, seq.Iterations, seq.Metrics.CC, seq.GStar,
			par.Success, par.Iterations, par.Metrics.CC, par.GStar)
	}
	if len(seq.Outputs) != len(par.Outputs) {
		t.Fatal("output count differs")
	}
	for i := range seq.Outputs {
		if string(seq.Outputs[i]) != string(par.Outputs[i]) {
			t.Fatalf("party %d output differs between sequential and parallel runs", i)
		}
	}
}

// TestRunReproducibleAcrossProcesses guards the CRSKey promise ("runs
// with equal keys are reproducible"): two exchange-mode runs with the same
// seed must agree exactly. The seed code drew per-link randomness while
// ranging over the links map, so the link→seed assignment — and every
// downstream metric — varied between executions.
func TestRunReproducibleAcrossProcesses(t *testing.T) {
	g := graph.Ring(8)
	run := func() *Result {
		proto := protocol.NewRandom(g, 100, 0.5, 9, nil)
		params := ParamsFor(AlgA, g)
		params.IterFactor = 3
		res, err := Run(Options{
			Protocol:  proto,
			Params:    params,
			Adversary: adversary.NewRandomRate(0.0005, rand.New(rand.NewSource(3))),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Metrics.CC != b.Metrics.CC || a.Iterations != b.Iterations || a.Success != b.Success {
		t.Fatalf("same-seed runs diverge: cc %d vs %d, iters %d vs %d",
			a.Metrics.CC, b.Metrics.CC, a.Iterations, b.Iterations)
	}
}
