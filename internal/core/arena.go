package core

import "mpic/internal/hashing"

// Arena recycles the per-link hash state buffers across runs. One run of
// a scheme allocates three seed block caches per link endpoint — the two
// prefix blocks alone are seedHint·τ words each — and drops them all at
// the end; a driver executing many runs (Runner.Sweep, the experiment
// harness) pays that allocation churn for every cell. Passing the same
// Arena through Options.Arena makes each run draw its block buffers from
// the previous runs' and hand them back on exit, so steady-state sweeps
// stop allocating in the seed-materialization path (the ROADMAP's
// "amortize seed materialization across links").
//
// An Arena is safe for concurrent use by multiple runs; results are
// bit-identical with and without one (recycled buffers are fully
// re-materialized before any read). The incremental-hash path
// (Params.IncrementalHash) keeps its checkpointed stores private to the
// run and does not draw from the arena.
type Arena struct {
	pool hashing.BufferPool
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// Reset drops all pooled memory.
func (a *Arena) Reset() {
	if a != nil {
		a.pool.Reset()
	}
}

// release hands a party's per-link hash buffers back to the arena.
func (a *Arena) release(p *party) {
	for _, ls := range p.links {
		ls.ck.Release(&a.pool)
		ls.c1.Release(&a.pool)
		ls.c2.Release(&a.pool)
		ls.ck, ls.c1, ls.c2 = nil, nil, nil
	}
}
