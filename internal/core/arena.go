package core

import "mpic/internal/hashing"

// Arena recycles the per-link hash state buffers across runs. One run of
// a scheme allocates three seed block caches per link endpoint — the two
// prefix blocks alone are seedHint·τ words each — and drops them all at
// the end; a driver executing many runs (Runner.Sweep, the grid engine,
// the experiment harness) pays that allocation churn for every cell.
// Passing the same Arena through Options.Arena makes each run draw its
// block buffers from the previous runs' and hand them back on exit, so
// steady-state sweeps stop allocating in the seed-materialization path
// (the ROADMAP's "amortize seed materialization across links"). The
// incremental-hash path (Params.IncrementalHash) draws from the same
// pool: the checkpointed stores' seed rows and accumulator snapshots are
// recycled alongside the plain block caches.
//
// An Arena is safe for concurrent use by multiple runs — the grid engine
// drives one arena from its whole worker pool — and results are
// bit-identical with and without one (recycled buffers are fully
// re-materialized before any read). Stats exposes the pool's cumulative
// hit/miss/reuse counters for tuning.
type Arena struct {
	pool hashing.BufferPool
}

// ArenaStats is a snapshot of an arena's buffer-pool traffic: how many
// buffer requests were served from recycled memory (Hits) versus fresh
// allocations (Misses), and the total recycled capacity in 64-bit words
// (WordsReused). A warmed-up arena serving same-shaped runs should show
// a hit rate near 1; persistent misses mean the pool bound or the
// best-fit scan needs tuning for the topology being swept (the n≥64
// clique question the ROADMAP poses).
type ArenaStats = hashing.PoolStats

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// Reset drops all pooled memory and clears the traffic counters.
func (a *Arena) Reset() {
	if a != nil {
		a.pool.Reset()
	}
}

// Stats returns the arena's cumulative pool counters. It is safe to call
// concurrently with runs; per-run deltas are surfaced through
// Result.Arena.
func (a *Arena) Stats() ArenaStats {
	if a == nil {
		return ArenaStats{}
	}
	return a.pool.Stats()
}

// release hands a party's per-link hash buffers back to the arena.
func (a *Arena) release(p *party) {
	for _, ls := range p.links {
		ls.ck.Release(&a.pool)
		ls.c1.Release(&a.pool)
		ls.c2.Release(&a.pool)
		ls.p1.Release(&a.pool)
		ls.p2.Release(&a.pool)
		ls.ck, ls.c1, ls.c2 = nil, nil, nil
		ls.p1, ls.p2 = nil, nil
	}
}
