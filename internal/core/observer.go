package core

import (
	"mpic/internal/potential"
	"mpic/internal/trace"
)

// IterationStats is the per-iteration snapshot handed to observers.
type IterationStats struct {
	// Iteration is the 0-based index of the iteration that just finished.
	Iteration int
	// Metrics is the run's live network accounting. It is shared with the
	// engine: observers must treat it as read-only.
	Metrics *trace.Metrics
	// Snapshot is the oracle's potential snapshot for this iteration, nil
	// when Params.Oracle is off.
	Snapshot *potential.Snapshot
}

// Observer receives a callback after every executed iteration of a run.
// Observers see the execution; they must not influence it — the engine
// hands them live but read-only state. Attach observers through
// Options.Observers.
//
// An observer may additionally implement RunStartObserver or
// RunEndObserver for run-lifecycle callbacks.
type Observer interface {
	IterationDone(st IterationStats)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(st IterationStats)

// IterationDone implements Observer.
func (f ObserverFunc) IterationDone(st IterationStats) { f(st) }

// RunStartObserver is an optional Observer extension: RunStarted fires
// once before the randomness-exchange preamble, with the public phase
// layout of the run.
type RunStartObserver interface {
	RunStarted(info RunInfo)
}

// RunEndObserver is an optional Observer extension: RunDone fires once
// with the final result, after outputs are collected.
type RunEndObserver interface {
	RunDone(res *Result)
}

// partyInspector is the in-package test hook that replaced the old
// testAfterIter field: an observer additionally implementing it gets the
// live parties after every iteration. Unexported on purpose — the
// whitebox invariant checks (incremental-vs-reference hash agreement
// under rewind storms) need party internals no public observer should
// see.
type partyInspector interface {
	inspectParties(it int, parties []*party)
}

// notifyIteration dispatches the per-iteration callbacks.
func notifyIteration(obs []Observer, st IterationStats, parties []*party) {
	for _, o := range obs {
		if pi, ok := o.(partyInspector); ok {
			pi.inspectParties(st.Iteration, parties)
		}
		o.IterationDone(st)
	}
}
