package core

import (
	"math/rand"
	"testing"

	"mpic/internal/adversary"
	"mpic/internal/bitstring"
	"mpic/internal/channel"
	"mpic/internal/graph"
	"mpic/internal/protocol"
	"mpic/internal/trace"
)

func quickProto(g *graph.Graph, seed int64) protocol.Protocol {
	return protocol.NewRandom(g, 15*g.N(), 0.5, seed, nil)
}

func quickParams(s Scheme, g *graph.Graph, seed int64) Params {
	p := ParamsFor(s, g)
	p.CRSKey = seed
	p.IterFactor = 30
	return p
}

func TestRunValidation(t *testing.T) {
	g := graph.Line(3)
	if _, err := Run(Options{}); err == nil {
		t.Error("nil protocol accepted")
	}
	p := quickParams(Alg1, g, 1)
	p.ChunkBits = 0
	if _, err := Run(Options{Protocol: quickProto(g, 1), Params: p}); err == nil {
		t.Error("invalid params accepted")
	}
	single := graph.Line(1)
	sp := protocol.NewRandom(graph.Line(2), 10, 0.5, 1, nil)
	_ = single
	_ = sp
	// Schedule on the wrong graph must be rejected.
	bad := Options{Protocol: quickProto(graph.Line(4), 1), Params: quickParams(Alg1, graph.Line(4), 1)}
	bad.Params.ChunkBits = 1 << 30 // one giant chunk is fine; just exercise validation path
	if _, err := Run(bad); err != nil {
		t.Errorf("oversized chunk budget should still run: %v", err)
	}
}

// TestAllSchemesAllTopologiesNoiseless: the core integration matrix.
func TestAllSchemesAllTopologiesNoiseless(t *testing.T) {
	topologies := []struct {
		name string
		g    *graph.Graph
	}{
		{"line", graph.Line(4)},
		{"ring", graph.Ring(4)},
		{"star", graph.Star(5)},
		{"clique", graph.Clique(4)},
		{"tree", graph.BalancedTree(7, 2)},
	}
	for _, s := range []Scheme{Alg1, AlgA, AlgB, AlgC} {
		for _, topo := range topologies {
			t.Run(s.String()+"/"+topo.name, func(t *testing.T) {
				res, err := Run(Options{
					Protocol: quickProto(topo.g, 5),
					Params:   quickParams(s, topo.g, 5),
				})
				if err != nil {
					t.Fatal(err)
				}
				if !res.Success {
					t.Fatalf("failed: G*=%d/%d wrong=%d", res.GStar, res.NumChunks, res.WrongParties)
				}
				if res.GStar < res.NumChunks {
					t.Errorf("success but G*=%d < |Π|=%d", res.GStar, res.NumChunks)
				}
				if res.Metrics.HashCollisions != 0 {
					t.Errorf("noiseless run reported %d hash collisions", res.Metrics.HashCollisions)
				}
			})
		}
	}
}

// TestNoiselessIsOptimal: without noise, every iteration simulates one
// chunk — the scheme takes exactly |Π| iterations.
func TestNoiselessIsOptimal(t *testing.T) {
	g := graph.Line(5)
	res, err := Run(Options{Protocol: quickProto(g, 2), Params: quickParams(AlgA, g, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != res.NumChunks {
		t.Fatalf("noiseless run took %d iterations for %d chunks", res.Iterations, res.NumChunks)
	}
}

// TestDeterminism: identical options produce bit-identical outcomes.
func TestDeterminism(t *testing.T) {
	g := graph.Ring(5)
	mk := func() *Result {
		adv := adversary.NewRandomRate(0.002, rand.New(rand.NewSource(9)))
		res, err := Run(Options{
			Protocol:  quickProto(g, 9),
			Params:    quickParams(AlgA, g, 9),
			Adversary: adv,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := mk(), mk()
	if a.Metrics.CC != b.Metrics.CC || a.Iterations != b.Iterations ||
		a.Success != b.Success || a.GStar != b.GStar ||
		a.Metrics.TotalCorruptions() != b.Metrics.TotalCorruptions() {
		t.Fatalf("runs diverged: CC %d/%d iters %d/%d", a.Metrics.CC, b.Metrics.CC, a.Iterations, b.Iterations)
	}
}

// TestLemma42NoiselessPotential: in noiseless runs, φ increases by
// exactly K per iteration (all links extend G by one chunk; every other
// term stays zero).
func TestLemma42NoiselessPotential(t *testing.T) {
	g := graph.Line(4)
	res, err := Run(Options{Protocol: quickProto(g, 3), Params: quickParams(Alg1, g, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Potential) < 2 {
		t.Fatal("no potential snapshots")
	}
	k := float64(quickParams(Alg1, g, 3).ChunkBits) / 5
	for i := 1; i < len(res.Potential); i++ {
		d := res.Potential[i].Phi - res.Potential[i-1].Phi
		if d < k-1e-9 {
			t.Fatalf("iteration %d: Δφ = %.2f < K = %.0f", i, d, k)
		}
	}
	// B* stays zero throughout a noiseless run.
	for _, snap := range res.Potential {
		if snap.BStar != 0 {
			t.Fatalf("noiseless iteration %d has B* = %d", snap.Iteration, snap.BStar)
		}
	}
}

// TestSingleDeletionRecovery: one deleted simulation bit costs O(1)
// iterations, at every line length (Claim 4.7's consequence). The O(1)
// bound needs the per-iteration collision independence of fresh seeds,
// so this pins the paper-faithful HashLegacy mode; the epoch-refresh
// companion below pins the relaxed bound of the default mode.
func TestSingleDeletionRecovery(t *testing.T) {
	for _, n := range []int{4, 7} {
		g := graph.Line(n)
		proto := quickProto(g, 4)
		params := quickParams(AlgA, g, 4)
		params.HashMode = HashLegacy
		clean, err := Run(Options{Protocol: proto, Params: params})
		if err != nil {
			t.Fatal(err)
		}
		noisy, err := Run(Options{
			Protocol: proto,
			Params:   params,
			AdversaryFactory: func(info RunInfo) adversary.Adversary {
				return &oneSimDeletion{oracle: info.PhaseOracle, target: channel.Link{From: 0, To: 1}}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !noisy.Success {
			t.Fatalf("n=%d: failed after one deletion", n)
		}
		extra := noisy.Iterations - clean.Iterations
		if extra > 6 {
			t.Errorf("n=%d: one deletion cost %d extra iterations", n, extra)
		}
	}
}

// TestSingleDeletionRecoveryEpochBounded pins the epoch mode's relaxed
// recovery guarantee: under epoch refresh, a prefix-hash collision can
// persist at most R consecutive checks (the seed block is re-derived at
// the next epoch boundary), so one deletion costs O(R) extra iterations
// — never unbounded. This seed actually hits a persistent collision at
// n=7 (32 undetected-collision iterations — exactly one epoch at the
// pinned R — before the refresh clears it), making it a live regression
// test for the refresh mechanism: HashIncremental never recovers on the
// same input, and the persistence cap scales with R, which is why the
// test pins R = 32 rather than the perf-tuned default (this scenario's
// tight iteration budget ends before a default-sized epoch would).
func TestSingleDeletionRecoveryEpochBounded(t *testing.T) {
	const r = 32
	for _, n := range []int{4, 7} {
		g := graph.Line(n)
		proto := quickProto(g, 4)
		params := quickParams(AlgA, g, 4)
		params.EpochRefresh = r
		clean, err := Run(Options{Protocol: proto, Params: params})
		if err != nil {
			t.Fatal(err)
		}
		noisy, err := Run(Options{
			Protocol: proto,
			Params:   params,
			AdversaryFactory: func(info RunInfo) adversary.Adversary {
				return &oneSimDeletion{oracle: info.PhaseOracle, target: channel.Link{From: 0, To: 1}}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !noisy.Success {
			t.Fatalf("n=%d: failed after one deletion under epoch refresh", n)
		}
		// A collision taints at most R checks; clearing the divergence it
		// built costs a further O(R) of rewinding. 4R covers both with
		// slack for the collision landing mid-epoch.
		extra := noisy.Iterations - clean.Iterations
		if limit := 4 * r; extra > limit {
			t.Errorf("n=%d: one deletion cost %d extra iterations, want <= %d (collision persistence must be epoch-bounded)", n, extra, limit)
		}
	}
}

type oneSimDeletion struct {
	oracle adversary.PhaseOracle
	target channel.Link
	done   bool
}

func (d *oneSimDeletion) Corrupt(round int, link channel.Link, sent bitstring.Symbol) bitstring.Symbol {
	if d.done || link != d.target || sent == bitstring.Silence {
		return sent
	}
	if ph, _ := d.oracle(round); ph != int(trace.PhaseSimulation) {
		return sent
	}
	d.done = true
	return bitstring.Silence
}

// TestSeedAttackThreshold: below the ECC's distance the exchange
// survives; wiping the whole codeword breaks exactly the attacked link.
func TestSeedAttackThreshold(t *testing.T) {
	g := graph.Line(4)
	target := channel.Link{From: 0, To: 1}

	light := adversary.NewSeedAttacker([]channel.Link{target}, 1<<20, 0.001, rand.New(rand.NewSource(1)))
	res, err := Run(Options{Protocol: quickProto(g, 6), Params: quickParams(AlgA, g, 6), Adversary: light})
	if err != nil {
		t.Fatal(err)
	}
	if res.BrokenSeedLinks != 0 {
		t.Errorf("light seed attack broke %d links", res.BrokenSeedLinks)
	}
	if !res.Success {
		t.Error("light seed attack caused failure")
	}

	heavy := adversary.NewSeedAttacker([]channel.Link{target}, 1<<20, 10.0, rand.New(rand.NewSource(1)))
	res, err = Run(Options{Protocol: quickProto(g, 6), Params: quickParams(AlgA, g, 6), Adversary: heavy})
	if err != nil {
		t.Fatal(err)
	}
	if res.BrokenSeedLinks == 0 {
		t.Error("unbounded seed attack broke no link")
	}
}

// TestAblationsStillWorkNoiseless: removing flag passing or rewind must
// not break noiseless runs (they only matter under noise).
func TestAblationsStillWorkNoiseless(t *testing.T) {
	g := graph.Line(4)
	for _, mod := range []func(*Params){
		func(p *Params) { p.DisableFlagPassing = true },
		func(p *Params) { p.DisableRewind = true },
		func(p *Params) { p.DisableFlagPassing = true; p.DisableRewind = true },
	} {
		params := quickParams(AlgA, g, 7)
		mod(&params)
		res, err := Run(Options{Protocol: quickProto(g, 7), Params: params})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Success {
			t.Errorf("noiseless ablated run failed (flag=%v rewind=%v)",
				params.DisableFlagPassing, params.DisableRewind)
		}
	}
}

// TestBurstOnOneLinkRecovers: a banked salvo of deletions on one link is
// repaired by the meeting-points mechanism.
func TestBurstOnOneLinkRecovers(t *testing.T) {
	g := graph.Ring(4)
	proto := quickProto(g, 8)
	params := quickParams(Alg1, g, 8) // CRS: no exchange to shield the salvo
	adv := adversary.NewFixedDeletions(channel.Link{From: 1, To: 2}, 12)
	adv.Skip = 30 // past the first meeting-points hashes
	res, err := Run(Options{Protocol: proto, Params: params, Adversary: adv})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("salvo of 12 deletions not recovered: G*=%d/%d", res.GStar, res.NumChunks)
	}
	if adv.Corruptions() == 0 {
		t.Fatal("test vacuous: no deletion landed")
	}
}

// TestAdaptiveAdversaryAgainstB: Algorithm B holds up against the
// adaptive attacker at its nominal budget.
func TestAdaptiveAdversaryAgainstB(t *testing.T) {
	g := graph.Line(4)
	res, err := Run(Options{
		Protocol: quickProto(g, 10),
		Params:   quickParams(AlgB, g, 10),
		AdversaryFactory: func(info RunInfo) adversary.Adversary {
			return adversary.NewAdaptive(info.Links, info.PhaseOracle,
				int(trace.PhaseSimulation), 0.001, rand.New(rand.NewSource(10)))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("AlgB failed vs adaptive: G*=%d/%d", res.GStar, res.NumChunks)
	}
}

// TestFaithfulModeMatchesPaperIterationCount: without early stop the run
// executes exactly IterFactor·|Π| iterations.
func TestFaithfulModeMatchesPaperIterationCount(t *testing.T) {
	g := graph.Line(3)
	params := quickParams(Alg1, g, 11)
	params.IterFactor = 3
	params.EarlyStop = false
	res, err := Run(Options{Protocol: quickProto(g, 11), Params: params})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 3*res.NumChunks {
		t.Fatalf("faithful run: %d iterations, want %d", res.Iterations, 3*res.NumChunks)
	}
	if !res.Success {
		t.Error("faithful run failed")
	}
}

// TestCCPhaseAccounting: every transmitted bit is attributed to a phase,
// and the simulation phase dominates (constant-rate structure).
func TestCCPhaseAccounting(t *testing.T) {
	g := graph.Line(4)
	res, err := Run(Options{Protocol: quickProto(g, 12), Params: quickParams(AlgA, g, 12)})
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for ph := trace.Phase(0); ph < trace.NumPhases; ph++ {
		sum += res.Metrics.CCPhase[ph]
	}
	if sum != res.Metrics.CC {
		t.Fatalf("phase CC sums to %d, total is %d", sum, res.Metrics.CC)
	}
	if res.Metrics.CCPhase[trace.PhaseExchange] == 0 {
		t.Error("exchange phase transmitted nothing under AlgA")
	}
	if res.Metrics.CCPhase[trace.PhaseSimulation] == 0 {
		t.Error("simulation phase transmitted nothing")
	}
}

// TestOutputsMatchReferenceExactly: on success, outputs are byte-for-byte
// the noiseless reference outputs for every workload type.
func TestOutputsMatchReferenceExactly(t *testing.T) {
	g := graph.Ring(4)
	ring, err := protocol.NewTokenRing(4, 5, protocol.DefaultInputs(4, 4, 13))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Options{Protocol: ring, Params: quickParams(AlgA, g, 13)})
	if err != nil {
		t.Fatal(err)
	}
	ref := protocol.RunReference(ring)
	if !res.Success {
		t.Fatal("run failed")
	}
	for i := range ref.Outputs {
		if string(res.Outputs[i]) != string(ref.Outputs[i]) {
			t.Fatalf("party %d output differs from reference", i)
		}
	}
}

// TestParallelEngineIdentical: the concurrent send executor yields
// bit-identical runs for the full scheme.
func TestParallelEngineIdentical(t *testing.T) {
	g := graph.Clique(4)
	proto := quickProto(g, 14)
	params := quickParams(AlgB, g, 14)
	seq, err := Run(Options{Protocol: proto, Params: params})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(Options{Protocol: proto, Params: params, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Metrics.CC != par.Metrics.CC || seq.Iterations != par.Iterations || seq.GStar != par.GStar {
		t.Fatal("parallel execution diverged from sequential")
	}
}

// TestHeavyNoiseFailsGracefully: way past the tolerance the run fails,
// but must terminate within the iteration budget and report honestly.
func TestHeavyNoiseFailsGracefully(t *testing.T) {
	g := graph.Line(3)
	params := quickParams(AlgA, g, 15)
	params.IterFactor = 5
	adv := adversary.NewRandomRate(0.2, rand.New(rand.NewSource(15)))
	res, err := Run(Options{Protocol: quickProto(g, 15), Params: params, Adversary: adv})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 5*res.NumChunks {
		t.Fatalf("exceeded iteration budget: %d > %d", res.Iterations, 5*res.NumChunks)
	}
	if res.Success && res.GStar < res.NumChunks {
		t.Error("claimed success with G* < |Π|")
	}
}

// TestTwoPartySpecialization: the multiparty scheme degenerates cleanly
// to the classic two-party interactive-coding setting (a single link).
func TestTwoPartySpecialization(t *testing.T) {
	g := graph.Line(2)
	proto := protocol.NewRandom(g, 60, 0.8, 19, nil)
	for _, s := range []Scheme{Alg1, AlgA} {
		params := quickParams(s, g, 19)
		res, err := Run(Options{Protocol: proto, Params: params})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Success {
			t.Fatalf("%v two-party noiseless run failed", s)
		}
		// And under a single deletion.
		adv := adversary.NewFixedDeletions(channel.Link{From: 0, To: 1}, 1)
		adv.Skip = 40
		res, err = Run(Options{Protocol: proto, Params: params, Adversary: adv})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Success {
			t.Fatalf("%v two-party run with one deletion failed", s)
		}
	}
}

// TestFixingAdversary: the stronger oblivious adversary of Remark 1 that
// pre-fixes channel outputs (rather than additive offsets) is also
// survived; the analysis of Sections 4 and 5 covers it (Remark 1).
func TestFixingAdversary(t *testing.T) {
	g := graph.Line(4)
	proto := quickProto(g, 23)
	params := quickParams(Alg1, g, 23)
	fix := adversary.NewFixingPattern()
	// Fix a scattering of slots across the run's early rounds: some will
	// hit real transmissions (substitutions/deletions), some silent slots
	// (insertions), some will coincide with what was sent (free).
	for r := 50; r < 400; r += 17 {
		fix.Fix(r, channel.Link{From: 1, To: 2}, bitstring.Symbol(uint8(r)%3))
	}
	res, err := Run(Options{Protocol: proto, Params: params, Adversary: fix})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("fixing adversary broke the run: G*=%d/%d, %d corruptions",
			res.GStar, res.NumChunks, res.Metrics.TotalCorruptions())
	}
}
