package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"

	"mpic/internal/adversary"
	"mpic/internal/channel"
	"mpic/internal/cores"
	"mpic/internal/ecc"
	"mpic/internal/graph"
	"mpic/internal/hashing"
	"mpic/internal/meeting"
	"mpic/internal/network"
	"mpic/internal/potential"
	"mpic/internal/protocol"
	"mpic/internal/trace"
)

// RunInfo is handed to adversary factories so adaptive (non-oblivious)
// attackers can key their behavior to the public phase layout.
type RunInfo struct {
	// Links lists all directed links.
	Links []channel.Link
	// ExchangeRounds is the length of the randomness-exchange preamble.
	ExchangeRounds int
	// TotalRounds is the fixed length of the whole protocol.
	TotalRounds int
	// Iterations is the run's iteration budget (IterFactor·|Π|; with
	// early stop the run may execute fewer) — what a progress consumer
	// divides by to report "iteration i of N".
	Iterations int
	// PhaseOracle maps a round to (phase, iteration); phases use the
	// trace.Phase numbering.
	PhaseOracle adversary.PhaseOracle
}

// Options configures one run of a coding scheme.
type Options struct {
	// Protocol is the noiseless Π to simulate.
	Protocol protocol.Protocol
	// Params are the scheme parameters (see ParamsFor).
	Params Params
	// Adversary injects channel noise; nil means noiseless.
	Adversary adversary.Adversary
	// AdversaryFactory, if set, builds the adversary after the phase
	// layout is known (non-oblivious attackers); it overrides Adversary.
	AdversaryFactory func(info RunInfo) adversary.Adversary
	// WhiteBoxRate, if positive, overrides both adversary fields with the
	// seed-aware collision attacker of Section 6.1 at the given
	// corruption rate — the strongest non-oblivious attack implemented.
	WhiteBoxRate float64
	// Parallel enables the concurrent send executor.
	Parallel bool
	// Delay, if non-nil and not lockstep (or if NetFaults is set), runs
	// the network on the virtual-time discrete-event path with the given
	// flight-delay model; Metrics.Net then reports the timing story. Nil
	// or lockstep with no faults keeps the classic synchronous engine.
	Delay network.DelayModel
	// NetFaults, if non-nil, is the network-fault schedule (outages,
	// spikes, stragglers, crash-restarts) wired over the run's party
	// count and round budget.
	NetFaults *network.FaultSchedule
	// Observers receive per-iteration callbacks (and, when they implement
	// the optional extensions, run start/end callbacks). Observers watch;
	// they cannot influence the run.
	Observers []Observer
	// Context, if non-nil, cancels the run between iterations: Run
	// returns ctx.Err() and no Result. Cancellation granularity is one
	// iteration — a round in flight always completes.
	Context context.Context
	// Arena, if non-nil, supplies recycled per-link hash buffers and gets
	// them back when the run ends (see Arena).
	Arena *Arena
	// CoreBudget, if non-nil, is the shared core-budget token pool the
	// run's parallel send executor borrows helper cores from (the elastic
	// worker split: a grid sizes one budget at GOMAXPROCS, each cell
	// worker holds a token, and spare tokens flow to whichever cell hits
	// a heavy round). Only consulted when Parallel is set; results are
	// bit-identical at any borrow outcome. Nil lets a parallel run assume
	// it owns the machine.
	CoreBudget *cores.Budget
}

// WhiteBoxStats reports the collision attacker's bookkeeping.
type WhiteBoxStats struct {
	// Tried counts chunk-final slots the attacker inspected.
	Tried int
	// Landed counts corruptions fired with a guaranteed hash collision.
	Landed int
}

// Result reports one run.
type Result struct {
	// Success means every party's output equals the noiseless reference.
	Success bool
	// Metrics is the network accounting.
	Metrics *trace.Metrics
	// CCProtocol is CC(Π) in bits.
	CCProtocol int
	// Blowup is Metrics.CC / CCProtocol.
	Blowup float64
	// NumChunks is |Π| in chunks.
	NumChunks int
	// Iterations actually executed (≤ IterFactor·|Π| with early stop).
	Iterations int
	// GStar is the network-wide agreed prefix at the end, in chunks.
	GStar int
	// BrokenSeedLinks counts links whose randomness exchange failed.
	BrokenSeedLinks int
	// WrongParties counts parties whose output differs from the
	// reference.
	WrongParties int
	// Potential holds per-iteration snapshots when the oracle is on.
	Potential []potential.Snapshot
	// Outputs are the parties' final outputs.
	Outputs [][]byte
	// WhiteBox reports the collision attacker's statistics when
	// WhiteBoxRate was set.
	WhiteBox *WhiteBoxStats
	// Arena reports this run's draw on the shared arena's buffer pool
	// (nil when the run had no arena). The counters are the arena-wide
	// delta between run start and end: exact when runs use the arena one
	// at a time, and an interleaved attribution when a parallel grid
	// shares the arena — use Arena.Stats for exact aggregates there.
	Arena *ArenaStats
}

// Run executes the coding scheme on a noisy network and checks the
// outcome against a noiseless reference execution.
func Run(opts Options) (*Result, error) {
	if opts.Protocol == nil {
		return nil, errors.New("core: no protocol")
	}
	p := opts.Params
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := opts.Protocol.Graph()
	if g.N() < 2 {
		return nil, errors.New("core: need at least two parties")
	}
	sched := opts.Protocol.Schedule()
	if sched.TotalBits() == 0 {
		return nil, errors.New("core: protocol has no communication")
	}
	if err := sched.Validate(g); err != nil {
		return nil, err
	}

	chunking := protocol.NewChunking(opts.Protocol, p.ChunkBits)
	numChunks := chunking.NumChunks()
	iters := p.IterFactor * numChunks
	if iters < 1 {
		iters = 1
	}

	e := &env{
		params:    p,
		g:         g,
		proto:     opts.Protocol,
		chunking:  chunking,
		tree:      g.BFSTree(0),
		arena:     opts.Arena,
		numChunks: numChunks,
		crsK0:     uint64(p.CRSKey)*0x9e3779b97f4a7c15 + 0x853c49e6748fea9b,
		crsK1:     uint64(p.CRSKey)*0xda942042e4dd58b5 + 0xd1342543de82ef95,
	}

	// Hash input sizing: the longest transcript any link can reach is one
	// chunk per iteration.
	maxChunkBits := chunkIndexBits + 2*chunking.MaxSlotsPerLink
	maxLen := (iters + 1) * maxChunkBits
	e.hash = hashing.NewInnerProductHash(p.HashBits, maxLen)
	e.seedLay = hashing.NewSeedLayout(e.hash)
	if p.HashMode != HashLegacy && !e.seedLay.RegionsDisjoint(iters) {
		// The stable seed region starts at word 2^34 ≈ 1.7×10^10 (see
		// hashing.stableBase for the sizing rationale); realistic budgets
		// consume 10^8–10^9 per-iteration seed words, so only
		// far-beyond-configured runs can get here.
		return nil, fmt.Errorf("core: iteration budget %d overruns the stable seed region", iters)
	}
	if p.HashMode == HashEpoch {
		epochs := (iters-1)/e.epochR() + 1
		if !e.seedLay.EpochsFit(epochs) {
			return nil, fmt.Errorf("core: %d refresh epochs overrun the epoch seed region (iters=%d, EpochRefresh=%d); raise EpochRefresh or select HashIncremental/HashLegacy", epochs, iters, p.EpochRefresh)
		}
	}
	// Pre-size the per-link seed caches for the transcript lengths runs
	// actually reach — |Π| chunks plus slack for dummy chunks — so the
	// hash path settles into zero steady-state allocation quickly without
	// reserving the (iters+1)-chunk worst case per link.
	e.seedHintWords = ((numChunks+2)*maxChunkBits + 63) / 64

	lay := &layout{
		mpRounds:     3 * p.HashBits,
		simRounds:    1 + chunking.MaxChunkRounds,
		rewindRounds: g.N(),
		iters:        iters,
	}
	if e.tree.Depth >= 2 && !p.DisableFlagPassing {
		lay.flagRounds = 2*e.tree.Depth - 2
	}
	if p.DisableRewind {
		lay.rewindRounds = 0
	}
	if p.Randomness == RandExchange {
		codec, err := ecc.NewBitCodec(seedBits, p.RSBlockN, p.RSBlockK)
		if err != nil {
			return nil, fmt.Errorf("core: exchange codec: %w", err)
		}
		e.codec = codec
		lay.exchangeRounds = codec.CodewordBits()
	}
	e.lay = lay

	var arenaStart ArenaStats
	if opts.Arena != nil {
		// Party construction below is where the run draws its pooled
		// buffers; snapshot first so Result.Arena is the run's own delta.
		arenaStart = opts.Arena.Stats()
	}
	parties := make([]network.Party, g.N())
	coreParties := make([]*party, g.N())
	for i := 0; i < g.N(); i++ {
		cp := newParty(e, graph.Node(i))
		coreParties[i] = cp
		parties[i] = cp
	}
	if opts.Arena != nil {
		defer func() {
			for _, cp := range coreParties {
				opts.Arena.release(cp)
			}
		}()
	}

	makeInfo := func() RunInfo {
		info := RunInfo{
			ExchangeRounds: lay.exchangeRounds,
			TotalRounds:    lay.totalRounds(),
			Iterations:     lay.iters,
			PhaseOracle: func(round int) (int, int) {
				it, ph, _ := lay.phaseAt(round)
				return int(ph), it
			},
		}
		var links []channel.Link
		for _, edge := range g.Edges() {
			links = append(links,
				channel.Link{From: edge.U, To: edge.V},
				channel.Link{From: edge.V, To: edge.U})
		}
		info.Links = links
		return info
	}

	metrics := &trace.Metrics{}
	adv := opts.Adversary
	if opts.AdversaryFactory != nil {
		adv = opts.AdversaryFactory(makeInfo())
	}
	var whitebox *whiteBoxAttacker
	if opts.WhiteBoxRate > 0 {
		whitebox = newWhiteBoxAttacker(e, coreParties, opts.WhiteBoxRate)
		adv = whitebox
	}
	eng, err := network.NewEngine(g, parties, adv, metrics)
	if err != nil {
		return nil, err
	}
	eng.Parallel = opts.Parallel
	if opts.CoreBudget != nil {
		eng.SetCoreBudget(opts.CoreBudget)
	}
	defer eng.Close()
	if opts.Delay != nil || opts.NetFaults != nil {
		var wired *network.WiredFaults
		if opts.NetFaults != nil {
			wired, err = opts.NetFaults.Wire(g.N(), lay.totalRounds())
			if err != nil {
				return nil, err
			}
		}
		eng.SetTiming(opts.Delay, wired)
	}
	eng.SetPhaseFn(func(round int) trace.Phase {
		_, ph, _ := lay.phaseAt(round)
		return ph
	})
	// Almost every round moves one symbol per link; the compute of an
	// iteration concentrates in the first meeting-points round, where each
	// party rehashes its transcripts (prepareIteration). Point the
	// parallel executor at exactly those rounds so pool synchronization is
	// paid only where the fan-out wins.
	eng.SetParallelHint(func(round int) bool {
		_, ph, rel := lay.phaseAt(round)
		return ph == trace.PhaseMeetingPoints && rel == 0
	})

	ref := protocol.RunReference(opts.Protocol)

	res := &Result{
		Metrics:    metrics,
		CCProtocol: sched.TotalBits(),
		NumChunks:  numChunks,
	}

	for _, o := range opts.Observers {
		if so, ok := o.(RunStartObserver); ok {
			so.RunStarted(makeInfo())
		}
	}
	if err := cancelled(opts.Context); err != nil {
		return nil, err
	}

	eng.RunRounds(0, lay.exchangeRounds)
	oracle := newOracle(e, coreParties, metrics)
	executed := 0
	for it := 0; it < iters; it++ {
		if err := cancelled(opts.Context); err != nil {
			return nil, err
		}
		start := lay.iterStart(it)
		eng.RunRounds(start, start+lay.iterRounds())
		executed++
		metrics.Iterations = executed
		var snap *potential.Snapshot
		if p.Oracle {
			s := oracle.observe(it)
			res.Potential = append(res.Potential, s)
			snap = &res.Potential[len(res.Potential)-1]
		}
		notifyIteration(opts.Observers, IterationStats{Iteration: it, Metrics: metrics, Snapshot: snap}, coreParties)
		if p.Oracle && p.EarlyStop && oracle.done() {
			break
		}
	}
	res.Iterations = executed

	// Collect outcomes.
	res.GStar = oracle.gStar()
	for _, cp := range coreParties {
		for _, ls := range cp.links {
			if ls.seedBroken {
				res.BrokenSeedLinks++
			}
		}
	}
	res.Outputs = make([][]byte, g.N())
	for i, cp := range coreParties {
		res.Outputs[i] = opts.Protocol.Output(codedView{p: cp})
		if !bytes.Equal(res.Outputs[i], ref.Outputs[i]) {
			res.WrongParties++
		}
	}
	res.Success = res.WrongParties == 0
	if res.CCProtocol > 0 {
		res.Blowup = float64(metrics.CC) / float64(res.CCProtocol)
	}
	if whitebox != nil {
		res.WhiteBox = &WhiteBoxStats{Tried: whitebox.Tried, Landed: whitebox.Landed}
	}
	if opts.Arena != nil {
		delta := opts.Arena.Stats().Sub(arenaStart)
		res.Arena = &delta
	}
	for _, o := range opts.Observers {
		if eo, ok := o.(RunEndObserver); ok {
			eo.RunDone(res)
		}
	}
	return res, nil
}

// cancelled reports a context's cancellation as its error, tolerating a
// nil context.
func cancelled(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// oracle is engine-side ground-truth instrumentation. It never feeds
// information back to the parties.
type oracle struct {
	e       *env
	parties []*party
	metrics *trace.Metrics
	edges   []graph.Edge
	lastOK  bool
}

func newOracle(e *env, parties []*party, metrics *trace.Metrics) *oracle {
	return &oracle{e: e, parties: parties, metrics: metrics, edges: e.g.Edges()}
}

// edgeState gathers both endpoints' view of one link.
func (o *oracle) edgeState(edge graph.Edge) potential.EdgeState {
	lu := o.parties[edge.U].links[edge.V]
	lv := o.parties[edge.V].links[edge.U]
	return potential.EdgeState{
		LenU:   lu.T.Len(),
		LenV:   lv.T.Len(),
		Common: CommonPrefixChunks(lu.T, lv.T),
		InMPU:  lu.mp.Status == meeting.StatusMeetingPoints,
		InMPV:  lv.mp.Status == meeting.StatusMeetingPoints,
		KU:     lu.mp.K,
		KV:     lv.mp.K,
	}
}

// observe snapshots the network at an iteration boundary: it detects
// undetected mismatches (evidence of hash collisions — the transcripts
// differ yet neither endpoint is searching) and computes the potential.
func (o *oracle) observe(iter int) potential.Snapshot {
	states := make([]potential.EdgeState, len(o.edges))
	ok := true
	for i, edge := range o.edges {
		st := o.edgeState(edge)
		states[i] = st
		if st.B() > 0 {
			ok = false
			if !st.InMPU && !st.InMPV {
				o.metrics.HashCollisions++
			}
		}
		if st.LenU < o.e.numChunks || st.LenV < o.e.numChunks {
			ok = false
		}
		o.metrics.HashComparisons += 3
	}
	o.lastOK = ok
	k := o.e.params.ChunkBits / 5
	ehc := o.metrics.TotalCorruptions() + o.metrics.HashCollisions
	return potential.Compute(iter, states, k, len(o.edges), ehc)
}

// done reports whether the network is fully synchronized with all of Π
// simulated — the oracle's early-stop condition.
func (o *oracle) done() bool { return o.lastOK }

// gStar returns the final network-wide agreed prefix.
func (o *oracle) gStar() int {
	g := -1
	for _, edge := range o.edges {
		st := o.edgeState(edge)
		if g < 0 || st.Common < g {
			g = st.Common
		}
	}
	if g < 0 {
		g = 0
	}
	return g
}
