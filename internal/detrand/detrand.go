// Package detrand holds the deterministic, site-hashed randomness
// primitives shared by every seed-driven decision maker in the repo —
// the fault injector (internal/faults), the virtual-time delay models
// and the network-fault schedule (internal/network). Each draw is a pure
// function of (seed, site label, ordinal): no global state, no time, no
// math/rand, so any consumer replays bit-identically from its seed at
// any worker count.
//
// The package sits below everything (it imports only hash/fnv), which is
// what lets both internal/network and internal/faults draw from the same
// primitives without an import cycle through internal/core.
package detrand

import "hash/fnv"

// Mix is the splitmix64 finalizer: a cheap, high-quality bijection that
// turns structured coordinates into uniform-looking 64-bit values.
func Mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Key folds a seed, a site label, and an operation ordinal into one
// 64-bit coordinate. The site label namespaces decision streams so,
// e.g., save-error and torn-write decisions at the same ordinal are
// independent.
func Key(seed int64, site string, n uint64) uint64 {
	h := fnv.New64a()
	h.Write([]byte(site))
	return Mix(Mix(uint64(seed)^h.Sum64()) ^ n)
}

// Roll returns a uniform value in [0, 1), deterministic in
// (seed, site, n). A fault with probability p fires iff
// Roll(seed, site, n) < p.
func Roll(seed int64, site string, n uint64) float64 {
	return float64(Key(seed, site, n)>>11) / float64(uint64(1)<<53)
}

// Pick returns a uniform value in [0, max), deterministic in
// (seed, site, n). max must be positive.
func Pick(seed int64, site string, n uint64, max int) int {
	return int(Key(seed, site, n) % uint64(max))
}
