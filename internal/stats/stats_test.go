package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 || s.Median != 2.5 {
		t.Fatalf("summary = %+v", s)
	}
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.Std-want) > 1e-12 {
		t.Errorf("Std = %f, want %f", s.Std, want)
	}
}

func TestSummarizeOddMedian(t *testing.T) {
	s := Summarize([]float64{5, 1, 3})
	if s.Median != 3 {
		t.Errorf("Median = %f, want 3", s.Median)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Error("empty sample")
	}
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Std != 0 || s.CI95() != 0 || s.Median != 7 {
		t.Errorf("single sample: %+v", s)
	}
}

func TestRate(t *testing.T) {
	if Rate(3, 4) != 0.75 || Rate(0, 0) != 0 {
		t.Error("Rate wrong")
	}
}

// Property: Min <= Median <= Max and Min <= Mean <= Max.
func TestSummaryOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 1e6))
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.Median+1e-9 && s.Median <= s.Max+1e-9 &&
			s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummaryString(t *testing.T) {
	if got := Summarize([]float64{1, 1}).String(); got == "" {
		t.Error("empty String()")
	}
}
