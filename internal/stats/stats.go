// Package stats provides the small aggregation helpers the experiment
// harness uses to summarize repeated randomized runs.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of float64 observations.
type Summary struct {
	N      int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary; an empty sample yields the zero value.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// CI95 returns the half-width of the normal-approximation 95% confidence
// interval for the mean.
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.Std / math.Sqrt(float64(s.N))
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("%.3f ± %.3f (n=%d)", s.Mean, s.CI95(), s.N)
}

// Rate returns successes/total as a float, guarding division by zero.
func Rate(successes, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(successes) / float64(total)
}
