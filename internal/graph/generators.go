package graph

import (
	"fmt"
	"math/rand"
)

// Line returns the path topology 0-1-2-...-n-1, the paper's running
// example (Section 1.2).
func Line(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		mustAdd(g, Node(i), Node(i+1))
	}
	mustValidate(g)
	return g
}

// Ring returns the cycle topology on n >= 3 nodes.
func Ring(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		mustAdd(g, Node(i), Node((i+1)%n))
	}
	mustValidate(g)
	return g
}

// Star returns the star topology with node 0 as center (the JKL15 setting).
func Star(n int) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		mustAdd(g, 0, Node(i))
	}
	mustValidate(g)
	return g
}

// Clique returns the complete graph on n nodes (the ABE+16 setting).
func Clique(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			mustAdd(g, Node(i), Node(j))
		}
	}
	mustValidate(g)
	return g
}

// Grid returns the rows x cols grid graph.
func Grid(rows, cols int) *Graph {
	g := New(rows * cols)
	id := func(r, c int) Node { return Node(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				mustAdd(g, id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				mustAdd(g, id(r, c), id(r+1, c))
			}
		}
	}
	mustValidate(g)
	return g
}

// BalancedTree returns the complete arity-ary tree on n nodes, numbered in
// BFS order from the root 0.
func BalancedTree(n, arity int) *Graph {
	g := New(n)
	for i := 1; i < n; i++ {
		parent := (i - 1) / arity
		mustAdd(g, Node(parent), Node(i))
	}
	mustValidate(g)
	return g
}

// RandomConnected returns a random connected graph: a uniform random
// spanning tree (random attachment) plus extra uniformly random non-tree
// edges. Deterministic for a given rng state.
func RandomConnected(n, extraEdges int, rng *rand.Rand) *Graph {
	g := New(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		// Attach perm[i] to a uniformly random earlier node: random tree.
		j := rng.Intn(i)
		mustAdd(g, Node(perm[i]), Node(perm[j]))
	}
	maxExtra := n*(n-1)/2 - (n - 1)
	if extraEdges > maxExtra {
		extraEdges = maxExtra
	}
	for added := 0; added < extraEdges; {
		u := Node(rng.Intn(n))
		v := Node(rng.Intn(n))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		mustAdd(g, u, v)
		added++
	}
	mustValidate(g)
	return g
}

// ByName builds one of the named topology families used by the experiment
// harness: "line", "ring", "star", "clique", "tree" (binary), or
// "random" (tree + n/2 extra edges, seeded from size).
func ByName(name string, n int) (*Graph, error) {
	switch name {
	case "line":
		return Line(n), nil
	case "ring":
		if n < 3 {
			return nil, fmt.Errorf("graph: ring needs n >= 3, got %d", n)
		}
		return Ring(n), nil
	case "star":
		return Star(n), nil
	case "clique":
		return Clique(n), nil
	case "tree":
		return BalancedTree(n, 2), nil
	case "random":
		return RandomConnected(n, n/2, rand.New(rand.NewSource(int64(n)*7919))), nil
	default:
		return nil, fmt.Errorf("graph: unknown topology %q", name)
	}
}

func mustAdd(g *Graph, u, v Node) {
	if err := g.AddEdge(u, v); err != nil {
		// Generators control their inputs; a failure here is a programming
		// error in this package.
		panic(err)
	}
}

func mustValidate(g *Graph) {
	if err := g.Validate(); err != nil {
		panic(err)
	}
}
