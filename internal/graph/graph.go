// Package graph provides the network topologies the coding schemes run
// over: connected simple undirected graphs G = (V, E) where every node is a
// party and every edge is a bidirectional communication link (paper,
// Section 2.1).
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Node identifies a party; nodes are numbered 0..n-1.
type Node int

// Edge is an undirected link between two parties, stored with U < V.
type Edge struct {
	U, V Node
}

// Canonical returns the edge with endpoints ordered so that U < V.
func (e Edge) Canonical() Edge {
	if e.U > e.V {
		return Edge{U: e.V, V: e.U}
	}
	return e
}

// Graph is a connected simple undirected graph. Build one with New and
// AddEdge, then call Validate (or use a generator from this package).
type Graph struct {
	n     int
	adj   [][]Node
	edges []Edge
	seen  map[Edge]bool
}

// New returns an empty graph on n nodes.
func New(n int) *Graph {
	return &Graph{
		n:    n,
		adj:  make([][]Node, n),
		seen: make(map[Edge]bool),
	}
}

// N returns the number of parties.
func (g *Graph) N() int { return g.n }

// M returns the number of links.
func (g *Graph) M() int { return len(g.edges) }

// AddEdge inserts the undirected link (u, v). Self-loops and duplicates are
// rejected.
func (g *Graph) AddEdge(u, v Node) error {
	if u == v {
		return fmt.Errorf("graph: self-loop at node %d", u)
	}
	if u < 0 || int(u) >= g.n || v < 0 || int(v) >= g.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.n)
	}
	e := Edge{U: u, V: v}.Canonical()
	if g.seen[e] {
		return fmt.Errorf("graph: duplicate edge (%d,%d)", e.U, e.V)
	}
	g.seen[e] = true
	g.edges = append(g.edges, e)
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	return nil
}

// HasEdge reports whether (u, v) is a link.
func (g *Graph) HasEdge(u, v Node) bool {
	return g.seen[Edge{U: u, V: v}.Canonical()]
}

// Neighbors returns the neighborhood N(v) in ascending order. The returned
// slice is owned by the graph; callers must not modify it.
func (g *Graph) Neighbors(v Node) []Node {
	return g.adj[v]
}

// Degree returns |N(v)|.
func (g *Graph) Degree(v Node) int { return len(g.adj[v]) }

// MaxDegree returns the maximum degree over all nodes.
func (g *Graph) MaxDegree() int {
	d := 0
	for v := 0; v < g.n; v++ {
		if len(g.adj[v]) > d {
			d = len(g.adj[v])
		}
	}
	return d
}

// Edges returns all links with U < V, sorted lexicographically. The slice
// is a copy and safe to modify.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// sortAdj orders adjacency lists ascending so traversals are deterministic.
func (g *Graph) sortAdj() {
	for v := range g.adj {
		sort.Slice(g.adj[v], func(i, j int) bool { return g.adj[v][i] < g.adj[v][j] })
	}
}

// Validate checks the graph is non-empty, simple and connected, and
// normalizes adjacency order.
func (g *Graph) Validate() error {
	if g.n == 0 {
		return errors.New("graph: no nodes")
	}
	g.sortAdj()
	if g.n == 1 {
		return nil
	}
	visited := g.bfsOrder(0)
	if len(visited) != g.n {
		return fmt.Errorf("graph: not connected (%d of %d nodes reachable)", len(visited), g.n)
	}
	return nil
}

// bfsOrder returns nodes in BFS order from root.
func (g *Graph) bfsOrder(root Node) []Node {
	seen := make([]bool, g.n)
	queue := []Node{root}
	seen[root] = true
	var order []Node
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, w := range g.adj[u] {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return order
}

// Diameter returns the graph diameter via BFS from every node. Intended
// for the moderate sizes used in simulation.
func (g *Graph) Diameter() int {
	d := 0
	for v := 0; v < g.n; v++ {
		dist := g.bfsDist(Node(v))
		for _, x := range dist {
			if x > d {
				d = x
			}
		}
	}
	return d
}

func (g *Graph) bfsDist(root Node) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[root] = 0
	queue := []Node{root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range g.adj[u] {
			if dist[w] < 0 {
				dist[w] = dist[u] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}
