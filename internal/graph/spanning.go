package graph

// SpanningTree is a BFS spanning tree rooted at Root, used by the
// flag-passing phase (paper, Algorithm 3). Levels follow the paper's
// convention: ℓ(root) = 1 and ℓ(v) = ℓ(parent(v)) + 1; the depth d(T) is
// the maximum level.
type SpanningTree struct {
	Root     Node
	Parent   []Node   // Parent[v] is v's parent; Parent[Root] = Root
	Children [][]Node // Children[v] in ascending order
	Level    []int    // Level[v] = ℓ(v), 1-based
	Depth    int      // d(T) = max level
}

// BFSTree builds the breadth-first spanning tree from root. The graph must
// be validated (connected) first.
func (g *Graph) BFSTree(root Node) *SpanningTree {
	g.sortAdj()
	t := &SpanningTree{
		Root:     root,
		Parent:   make([]Node, g.n),
		Children: make([][]Node, g.n),
		Level:    make([]int, g.n),
	}
	t.Parent[root] = root
	t.Level[root] = 1
	t.Depth = 1
	queue := []Node{root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range g.adj[u] {
			if t.Level[w] == 0 && w != root {
				t.Level[w] = t.Level[u] + 1
				t.Parent[w] = u
				t.Children[u] = append(t.Children[u], w)
				if t.Level[w] > t.Depth {
					t.Depth = t.Level[w]
				}
				queue = append(queue, w)
			}
		}
	}
	return t
}

// IsLeaf reports whether v has no children in the tree.
func (t *SpanningTree) IsLeaf(v Node) bool { return len(t.Children[v]) == 0 }
