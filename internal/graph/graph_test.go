package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGenerators(t *testing.T) {
	tests := []struct {
		name     string
		g        *Graph
		wantN    int
		wantM    int
		wantDiam int
	}{
		{"line 5", Line(5), 5, 4, 4},
		{"ring 6", Ring(6), 6, 6, 3},
		{"star 7", Star(7), 7, 6, 2},
		{"clique 5", Clique(5), 5, 10, 1},
		{"grid 3x4", Grid(3, 4), 12, 17, 5},
		{"tree 7/2", BalancedTree(7, 2), 7, 6, 4},
		{"single", Line(1), 1, 0, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g.N(); got != tt.wantN {
				t.Errorf("N() = %d, want %d", got, tt.wantN)
			}
			if got := tt.g.M(); got != tt.wantM {
				t.Errorf("M() = %d, want %d", got, tt.wantM)
			}
			if got := tt.g.Diameter(); got != tt.wantDiam {
				t.Errorf("Diameter() = %d, want %d", got, tt.wantDiam)
			}
		})
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 0); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddEdge(0, 3); err == nil {
		t.Error("out-of-range node accepted")
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if err := g.AddEdge(1, 0); err == nil {
		t.Error("duplicate (reversed) edge accepted")
	}
}

func TestValidateDisconnected(t *testing.T) {
	g := New(4)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err == nil {
		t.Error("disconnected graph validated")
	}
	if err := New(0).Validate(); err == nil {
		t.Error("empty graph validated")
	}
}

func TestNeighborsSortedAndDegrees(t *testing.T) {
	g := Star(5)
	nb := g.Neighbors(0)
	for i := 1; i < len(nb); i++ {
		if nb[i-1] >= nb[i] {
			t.Fatal("neighbors not sorted ascending")
		}
	}
	if g.Degree(0) != 4 || g.Degree(1) != 1 {
		t.Error("degrees wrong for star")
	}
	if g.MaxDegree() != 4 {
		t.Errorf("MaxDegree() = %d, want 4", g.MaxDegree())
	}
}

func TestHasEdge(t *testing.T) {
	g := Line(3)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("HasEdge false for existing edge")
	}
	if g.HasEdge(0, 2) {
		t.Error("HasEdge true for missing edge")
	}
}

func TestEdgesSortedCanonical(t *testing.T) {
	g := Ring(5)
	es := g.Edges()
	if len(es) != 5 {
		t.Fatalf("len(Edges()) = %d, want 5", len(es))
	}
	for i, e := range es {
		if e.U >= e.V {
			t.Errorf("edge %d not canonical: %+v", i, e)
		}
		if i > 0 {
			p := es[i-1]
			if p.U > e.U || (p.U == e.U && p.V >= e.V) {
				t.Error("edges not sorted")
			}
		}
	}
}

func TestBFSTreeLine(t *testing.T) {
	g := Line(5)
	tr := g.BFSTree(0)
	if tr.Depth != 5 {
		t.Errorf("Depth = %d, want 5", tr.Depth)
	}
	for v := 1; v < 5; v++ {
		if tr.Parent[v] != Node(v-1) {
			t.Errorf("Parent[%d] = %d, want %d", v, tr.Parent[v], v-1)
		}
		if tr.Level[v] != v+1 {
			t.Errorf("Level[%d] = %d, want %d", v, tr.Level[v], v+1)
		}
	}
	if !tr.IsLeaf(4) || tr.IsLeaf(2) {
		t.Error("IsLeaf wrong")
	}
}

func TestBFSTreeStarCenterRoot(t *testing.T) {
	g := Star(6)
	tr := g.BFSTree(0)
	if tr.Depth != 2 {
		t.Errorf("Depth = %d, want 2", tr.Depth)
	}
	if len(tr.Children[0]) != 5 {
		t.Errorf("root children = %d, want 5", len(tr.Children[0]))
	}
}

// Property: BFS trees of random connected graphs are true spanning trees.
func TestBFSTreeProperty(t *testing.T) {
	f := func(seed int64, nRaw, extraRaw uint8) bool {
		n := int(nRaw)%30 + 2
		extra := int(extraRaw) % n
		rng := rand.New(rand.NewSource(seed))
		g := RandomConnected(n, extra, rng)
		tr := g.BFSTree(0)
		// Every non-root node has a parent it is adjacent to, with level
		// one greater than the parent's.
		count := 1
		for v := 1; v < n; v++ {
			p := tr.Parent[v]
			if !g.HasEdge(Node(v), p) {
				return false
			}
			if tr.Level[v] != tr.Level[p]+1 {
				return false
			}
			count++
		}
		// Children lists partition non-root nodes.
		childCount := 0
		for v := 0; v < n; v++ {
			childCount += len(tr.Children[v])
		}
		return count == n && childCount == n-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRandomConnectedEdgeCount(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := RandomConnected(10, 5, rng)
	if g.M() != 14 {
		t.Errorf("M() = %d, want 14 (9 tree + 5 extra)", g.M())
	}
	// Extra edges capped at the complete graph.
	rng = rand.New(rand.NewSource(42))
	g = RandomConnected(4, 100, rng)
	if g.M() != 6 {
		t.Errorf("M() = %d, want 6 (clique)", g.M())
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"line", "ring", "star", "clique", "tree", "random"} {
		g, err := ByName(name, 8)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if g.N() != 8 {
			t.Errorf("ByName(%q).N() = %d, want 8", name, g.N())
		}
	}
	if _, err := ByName("mobius", 8); err == nil {
		t.Error("unknown topology accepted")
	}
	if _, err := ByName("ring", 2); err == nil {
		t.Error("ring of 2 accepted")
	}
}
