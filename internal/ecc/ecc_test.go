package ecc

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGF256Tables(t *testing.T) {
	g := newGF256()
	if g.exp[0] != 1 {
		t.Error("α^0 != 1")
	}
	if g.mul(0, 5) != 0 || g.mul(5, 0) != 0 {
		t.Error("0 not absorbing")
	}
	for a := 1; a < 256; a++ {
		if g.mul(byte(a), g.inv(byte(a))) != 1 {
			t.Fatalf("a * a^-1 != 1 for a=%d", a)
		}
		if g.div(byte(a), byte(a)) != 1 {
			t.Fatalf("a/a != 1 for a=%d", a)
		}
	}
}

func TestGF256MulProperties(t *testing.T) {
	g := newGF256()
	f := func(a, b, c byte) bool {
		if g.mul(a, b) != g.mul(b, a) {
			return false
		}
		if g.mul(g.mul(a, b), c) != g.mul(a, g.mul(b, c)) {
			return false
		}
		return g.mul(a, b^c) == g.mul(a, b)^g.mul(a, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGF256Pow(t *testing.T) {
	g := newGF256()
	if g.pow(2, 255) != 1 {
		t.Error("α^255 != 1")
	}
	if g.pow(2, -1) != g.inv(2) {
		t.Error("negative exponent wrong")
	}
	if g.pow(0, 0) != 1 || g.pow(0, 5) != 0 {
		t.Error("0 powers wrong")
	}
}

func TestGF256DivPanics(t *testing.T) {
	g := newGF256()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic dividing by zero")
		}
	}()
	g.div(1, 0)
}

func TestRSParams(t *testing.T) {
	if _, err := NewRS(10, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewRS(10, 10); err == nil {
		t.Error("k=n accepted")
	}
	if _, err := NewRS(256, 100); err == nil {
		t.Error("n>255 accepted")
	}
}

func TestRSEncodeNoErrorRoundtrip(t *testing.T) {
	rs, err := NewRS(15, 9)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}
	cw, err := rs.Encode(msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cw) != 15 {
		t.Fatalf("codeword length %d, want 15", len(cw))
	}
	got, err := rs.Decode(cw, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range msg {
		if got[i] != msg[i] {
			t.Fatalf("decoded[%d] = %d, want %d", i, got[i], msg[i])
		}
	}
}

func TestRSEncodeLengthCheck(t *testing.T) {
	rs, _ := NewRS(15, 9)
	if _, err := rs.Encode(make([]byte, 8)); err == nil {
		t.Error("short message accepted")
	}
	if _, err := rs.Decode(make([]byte, 14), nil); err == nil {
		t.Error("short received word accepted")
	}
	if _, err := rs.Decode(make([]byte, 15), []int{20}); err == nil {
		t.Error("out-of-range erasure accepted")
	}
}

func TestRSCorrectsErrors(t *testing.T) {
	rs, _ := NewRS(15, 9) // corrects up to 3 errors
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		msg := randBytes(rng, 9)
		cw, _ := rs.Encode(msg)
		nerr := rng.Intn(4) // 0..3
		corrupted := corrupt(rng, cw, nerr)
		got, err := rs.Decode(corrupted, nil)
		if err != nil {
			t.Fatalf("trial %d: decode failed with %d errors: %v", trial, nerr, err)
		}
		if !bytesEq(got, msg) {
			t.Fatalf("trial %d: wrong decode with %d errors", trial, nerr)
		}
	}
}

func TestRSCorrectsErasures(t *testing.T) {
	rs, _ := NewRS(15, 9) // corrects up to 6 erasures
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		msg := randBytes(rng, 9)
		cw, _ := rs.Encode(msg)
		nera := rng.Intn(7) // 0..6
		word := make([]byte, len(cw))
		copy(word, cw)
		perm := rng.Perm(len(cw))
		var erasures []int
		for _, p := range perm[:nera] {
			word[p] = byte(rng.Intn(256)) // garbage; decoder must ignore
			erasures = append(erasures, p)
		}
		got, err := rs.Decode(word, erasures)
		if err != nil {
			t.Fatalf("trial %d: decode failed with %d erasures: %v", trial, nera, err)
		}
		if !bytesEq(got, msg) {
			t.Fatalf("trial %d: wrong decode with %d erasures", trial, nera)
		}
	}
}

func TestRSCorrectsMixed(t *testing.T) {
	rs, _ := NewRS(31, 19) // n-k = 12: 2e + f <= 12
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		msg := randBytes(rng, 19)
		cw, _ := rs.Encode(msg)
		e := rng.Intn(4)        // 0..3 errors
		f := rng.Intn(13 - 2*e) // erasures within budget
		word := make([]byte, len(cw))
		copy(word, cw)
		perm := rng.Perm(len(cw))
		var erasures []int
		for _, p := range perm[:f] {
			word[p] ^= byte(1 + rng.Intn(255))
			erasures = append(erasures, p)
		}
		for _, p := range perm[f : f+e] {
			word[p] ^= byte(1 + rng.Intn(255))
		}
		got, err := rs.Decode(word, erasures)
		if err != nil {
			t.Fatalf("trial %d: decode failed with e=%d f=%d: %v", trial, e, f, err)
		}
		if !bytesEq(got, msg) {
			t.Fatalf("trial %d: wrong decode with e=%d f=%d", trial, e, f)
		}
	}
}

func TestRSRejectsBeyondCapacity(t *testing.T) {
	rs, _ := NewRS(15, 9)
	rng := rand.New(rand.NewSource(4))
	rejectedOrWrong := 0
	const trials = 100
	for trial := 0; trial < trials; trial++ {
		msg := randBytes(rng, 9)
		cw, _ := rs.Encode(msg)
		corrupted := corrupt(rng, cw, 5) // capacity is 3
		got, err := rs.Decode(corrupted, nil)
		if err != nil || !bytesEq(got, msg) {
			rejectedOrWrong++
		}
	}
	if rejectedOrWrong < trials*9/10 {
		t.Errorf("only %d/%d overloaded words failed to decode to the original; decoder claims impossible corrections", rejectedOrWrong, trials)
	}
	// Too many erasures must be rejected outright.
	if _, err := rs.Decode(make([]byte, 15), []int{0, 1, 2, 3, 4, 5, 6}); !errors.Is(err, ErrUncorrectable) {
		t.Errorf("7 erasures: got %v, want ErrUncorrectable", err)
	}
}

// Property: decode(encode(m) + e errors) == m whenever 2e <= n-k.
func TestRSProperty(t *testing.T) {
	rs, _ := NewRS(20, 12)
	f := func(seed int64, eRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		msg := randBytes(rng, 12)
		cw, err := rs.Encode(msg)
		if err != nil {
			return false
		}
		e := int(eRaw) % 5 // 0..4 (capacity 4)
		corrupted := corrupt(rng, cw, e)
		got, err := rs.Decode(corrupted, nil)
		return err == nil && bytesEq(got, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestBitCodecRoundtrip(t *testing.T) {
	c, err := NewBitCodec(128, 31, 19)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	msg := randBits(rng, 128)
	enc, err := c.EncodeBits(msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != c.CodewordBits() {
		t.Fatalf("encoded %d bits, want %d", len(enc), c.CodewordBits())
	}
	got, err := c.DecodeBits(enc, make([]bool, len(enc)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytesEq(got, msg) {
		t.Fatal("clean roundtrip failed")
	}
}

func TestBitCodecCorrectsBitErrorsAndErasures(t *testing.T) {
	c, err := NewBitCodec(64, 31, 19)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 50; trial++ {
		msg := randBits(rng, 64)
		enc, _ := c.EncodeBits(msg)
		erased := make([]bool, len(enc))
		// Flip bits inside up to 3 symbols and erase bits of up to 4 more:
		// 2*3 + 4 <= 12 symbol budget per block.
		symPerm := rng.Perm(31)
		for _, s := range symPerm[:3] {
			enc[s*8+rng.Intn(8)] ^= 1
		}
		for _, s := range symPerm[3:7] {
			b := s*8 + rng.Intn(8)
			erased[b] = true
			enc[b] = byte(rng.Intn(2))
		}
		got, err := c.DecodeBits(enc, erased)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !bytesEq(got, msg) {
			t.Fatalf("trial %d: wrong decode", trial)
		}
	}
}

func TestBitCodecMultiBlock(t *testing.T) {
	c, err := NewBitCodec(400, 15, 9) // 50 bytes -> 6 blocks
	if err != nil {
		t.Fatal(err)
	}
	if c.blocks != 6 {
		t.Fatalf("blocks = %d, want 6", c.blocks)
	}
	rng := rand.New(rand.NewSource(7))
	msg := randBits(rng, 400)
	enc, _ := c.EncodeBits(msg)
	// One error per block.
	for b := 0; b < 6; b++ {
		enc[b*15*8+rng.Intn(15*8)] ^= 1
	}
	got, err := c.DecodeBits(enc, make([]bool, len(enc)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytesEq(got, msg) {
		t.Fatal("multi-block decode failed")
	}
}

func TestBitCodecInputValidation(t *testing.T) {
	c, _ := NewBitCodec(64, 15, 9)
	if _, err := c.EncodeBits(make([]byte, 63)); err == nil {
		t.Error("wrong-length message accepted")
	}
	if _, err := c.DecodeBits(make([]byte, 3), make([]bool, 3)); err == nil {
		t.Error("wrong-length received accepted")
	}
	if _, err := NewBitCodec(64, 9, 15); err == nil {
		t.Error("k>n accepted")
	}
}

func randBytes(rng *rand.Rand, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(rng.Intn(256))
	}
	return out
}

func randBits(rng *rand.Rand, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(rng.Intn(2))
	}
	return out
}

func corrupt(rng *rand.Rand, cw []byte, n int) []byte {
	out := make([]byte, len(cw))
	copy(out, cw)
	for _, p := range rng.Perm(len(cw))[:n] {
		out[p] ^= byte(1 + rng.Intn(255))
	}
	return out
}

func bytesEq(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
