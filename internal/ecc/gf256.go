// Package ecc implements the constant-rate, constant-distance
// error-correcting code of Theorem 2.1 used by the randomness-exchange
// subprotocol (Algorithm 5): a systematic Reed–Solomon code over GF(256)
// with errors-and-erasures decoding. Deletions on the fully-utilized
// exchange rounds surface as erasures and substitutions as symbol errors,
// exactly the situation footnote 9 of the paper describes.
package ecc

// gf256 carries the log/antilog tables for GF(2^8) with the standard
// primitive polynomial x^8+x^4+x^3+x^2+1 (0x11d).
type gf256 struct {
	exp [512]byte
	log [256]int
}

func newGF256() *gf256 {
	g := &gf256{}
	x := 1
	for i := 0; i < 255; i++ {
		g.exp[i] = byte(x)
		g.log[x] = i
		x <<= 1
		if x&0x100 != 0 {
			x ^= 0x11d
		}
	}
	for i := 255; i < 512; i++ {
		g.exp[i] = g.exp[i-255]
	}
	return g
}

func (g *gf256) mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return g.exp[g.log[a]+g.log[b]]
}

func (g *gf256) div(a, b byte) byte {
	if b == 0 {
		panic("ecc: division by zero in GF(256)")
	}
	if a == 0 {
		return 0
	}
	return g.exp[g.log[a]+255-g.log[b]]
}

func (g *gf256) inv(a byte) byte {
	if a == 0 {
		panic("ecc: inverse of zero in GF(256)")
	}
	return g.exp[255-g.log[a]]
}

func (g *gf256) pow(a byte, n int) byte {
	if a == 0 {
		if n == 0 {
			return 1
		}
		return 0
	}
	e := (g.log[a] * n) % 255
	if e < 0 {
		e += 255
	}
	return g.exp[e]
}

// polyEval evaluates a polynomial (coefficients high-to-low degree) at x.
func (g *gf256) polyEval(p []byte, x byte) byte {
	var y byte
	for _, c := range p {
		y = g.mul(y, x) ^ c
	}
	return y
}

// polyMul multiplies two polynomials (high-to-low degree).
func (g *gf256) polyMul(a, b []byte) []byte {
	out := make([]byte, len(a)+len(b)-1)
	for i, ca := range a {
		if ca == 0 {
			continue
		}
		for j, cb := range b {
			out[i+j] ^= g.mul(ca, cb)
		}
	}
	return out
}
