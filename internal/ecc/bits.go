package ecc

import "fmt"

// BitCodec encodes a fixed-size bit string for transmission over a binary
// channel with substitutions and deletions, as the randomness exchange
// needs: bits are packed into bytes, encoded with (possibly several) RS
// blocks, and sent bit-serially. On receive, a byte any of whose bits was
// deleted is marked as an erasure.
type BitCodec struct {
	msgBits  int
	msgBytes int
	blocks   int
	rs       *RS
}

// NewBitCodec returns a codec for messages of exactly msgBits bits with
// the given RS block parameters (n symbols per block, k data symbols).
func NewBitCodec(msgBits, n, k int) (*BitCodec, error) {
	rs, err := NewRS(n, k)
	if err != nil {
		return nil, err
	}
	msgBytes := (msgBits + 7) / 8
	blocks := (msgBytes + k - 1) / k
	if blocks == 0 {
		blocks = 1
	}
	return &BitCodec{msgBits: msgBits, msgBytes: msgBytes, blocks: blocks, rs: rs}, nil
}

// CodewordBits returns the fixed number of channel bits one message costs.
func (c *BitCodec) CodewordBits() int { return c.blocks * c.rs.N * 8 }

// EncodeBits encodes msg (exactly msgBits 0/1 bytes) to CodewordBits()
// channel bits.
func (c *BitCodec) EncodeBits(msg []byte) ([]byte, error) {
	if len(msg) != c.msgBits {
		return nil, fmt.Errorf("ecc: message has %d bits, want %d", len(msg), c.msgBits)
	}
	packed := make([]byte, c.blocks*c.rs.K)
	for i, b := range msg {
		if b != 0 {
			packed[i/8] |= 1 << uint(i%8)
		}
	}
	out := make([]byte, 0, c.CodewordBits())
	for blk := 0; blk < c.blocks; blk++ {
		cw, err := c.rs.Encode(packed[blk*c.rs.K : (blk+1)*c.rs.K])
		if err != nil {
			return nil, err
		}
		for _, sym := range cw {
			for j := 0; j < 8; j++ {
				out = append(out, sym>>uint(j)&1)
			}
		}
	}
	return out, nil
}

// DecodeBits reconstructs the message from received channel bits. erased
// marks bit positions whose symbol was deleted in transit (the content of
// those positions in recv is ignored). Both slices must have length
// CodewordBits().
func (c *BitCodec) DecodeBits(recv []byte, erased []bool) ([]byte, error) {
	want := c.CodewordBits()
	if len(recv) != want || len(erased) != want {
		return nil, fmt.Errorf("ecc: received %d bits (%d erasure flags), want %d", len(recv), len(erased), want)
	}
	msg := make([]byte, 0, c.msgBits)
	packed := make([]byte, 0, c.blocks*c.rs.K)
	for blk := 0; blk < c.blocks; blk++ {
		word := make([]byte, c.rs.N)
		var erasures []int
		for s := 0; s < c.rs.N; s++ {
			base := (blk*c.rs.N + s) * 8
			var sym byte
			bad := false
			for j := 0; j < 8; j++ {
				if erased[base+j] {
					bad = true
				}
				if recv[base+j] != 0 {
					sym |= 1 << uint(j)
				}
			}
			word[s] = sym
			if bad {
				erasures = append(erasures, s)
			}
		}
		data, err := c.rs.Decode(word, erasures)
		if err != nil {
			return nil, err
		}
		packed = append(packed, data...)
	}
	for i := 0; i < c.msgBits; i++ {
		msg = append(msg, packed[i/8]>>uint(i%8)&1)
	}
	return msg, nil
}
