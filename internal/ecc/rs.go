package ecc

import (
	"errors"
	"fmt"
)

// ErrUncorrectable is returned when the received word has more
// errors/erasures than the code can correct (2·errors + erasures > n−k).
var ErrUncorrectable = errors.New("ecc: too many errors/erasures to correct")

// RS is a systematic Reed–Solomon code over GF(256) with block length N
// and dimension K symbols; it corrects e errors and f erasures whenever
// 2e + f <= N − K.
type RS struct {
	N, K int
	gf   *gf256
	gen  []byte // generator polynomial, high-to-low degree
}

// NewRS constructs an RS(n, k) codec. Requires 0 < k < n <= 255.
func NewRS(n, k int) (*RS, error) {
	if k <= 0 || k >= n || n > 255 {
		return nil, fmt.Errorf("ecc: invalid RS parameters n=%d k=%d", n, k)
	}
	gf := newGF256()
	// gen(x) = Π_{i=0}^{n-k-1} (x - α^i)
	gen := []byte{1}
	for i := 0; i < n-k; i++ {
		gen = gf.polyMul(gen, []byte{1, gf.exp[i]})
	}
	return &RS{N: n, K: k, gf: gf, gen: gen}, nil
}

// Encode produces the systematic codeword for msg (len K): the message
// followed by N−K parity symbols.
func (c *RS) Encode(msg []byte) ([]byte, error) {
	if len(msg) != c.K {
		return nil, fmt.Errorf("ecc: message length %d, want %d", len(msg), c.K)
	}
	// Polynomial long division of msg·x^(n-k) by gen; remainder is parity.
	rem := make([]byte, len(c.gen)-1)
	for _, m := range msg {
		factor := m ^ rem[0]
		copy(rem, rem[1:])
		rem[len(rem)-1] = 0
		if factor != 0 {
			for i := 1; i < len(c.gen); i++ {
				rem[i-1] ^= c.gf.mul(c.gen[i], factor)
			}
		}
	}
	out := make([]byte, 0, c.N)
	out = append(out, msg...)
	out = append(out, rem...)
	return out, nil
}

// Decode corrects recv in place (recv has length N; erasures lists the
// positions known to be unreliable) and returns the K message symbols.
// The content of erased positions in recv is ignored.
func (c *RS) Decode(recv []byte, erasures []int) ([]byte, error) {
	if len(recv) != c.N {
		return nil, fmt.Errorf("ecc: received length %d, want %d", len(recv), c.N)
	}
	word := make([]byte, c.N)
	copy(word, recv)
	for _, p := range erasures {
		if p < 0 || p >= c.N {
			return nil, fmt.Errorf("ecc: erasure position %d out of range", p)
		}
		word[p] = 0
	}
	gf := c.gf
	nk := c.N - c.K
	if len(erasures) > nk {
		return nil, ErrUncorrectable
	}

	// Syndromes S_i = word(α^i), i = 0..n-k-1 (word as a polynomial with
	// word[0] the highest-degree coefficient).
	synd := make([]byte, nk)
	allZero := true
	for i := 0; i < nk; i++ {
		synd[i] = gf.polyEval(word, gf.exp[i])
		if synd[i] != 0 {
			allZero = false
		}
	}
	if allZero {
		return word[:c.K], nil
	}

	// Erasure locator Γ(x) = Π (1 - X_j x), X_j = α^(position exponent).
	// Positions are indexed so that position p corresponds to power
	// n-1-p (word[0] is the coefficient of x^(n-1)).
	gamma := []byte{1}
	for _, p := range erasures {
		xj := gf.pow(2, c.N-1-p)
		gamma = gf.polyMul(gamma, []byte{gf.mul(xj, 1), 1}) // (X_j x + 1), low-to-high? see note
	}
	// Note: we keep locator polynomials in LOW-to-high degree order from
	// here on; gamma above was built accordingly: polyMul treats slices as
	// high-to-low, so flip once.
	gamma = reverse(gamma)

	// Forney syndromes: Ξ(x) = S(x)·Γ(x) mod x^(n-k), with S low-to-high.
	xi := polyMulLow(gf, synd, gamma, nk)

	f := len(erasures)
	// Berlekamp–Massey on Forney syndromes for the error locator λ(x).
	lambda, err := c.berlekampMassey(xi, f)
	if err != nil {
		return nil, err
	}

	// Combined locator ψ(x) = λ(x)·Γ(x), low-to-high.
	psi := polyMulLow(gf, lambda, gamma, c.N+1)

	// Chien search: roots of ψ give error/erasure locations.
	var positions []int
	for p := 0; p < c.N; p++ {
		xInv := gf.pow(2, -(c.N - 1 - p)) // α^-(power of position p)
		if evalLow(gf, psi, xInv) == 0 {
			positions = append(positions, p)
		}
	}
	if len(positions) != len(psi)-1 {
		// Locator degree does not match the number of roots found: the
		// error pattern exceeds the code's capability.
		return nil, ErrUncorrectable
	}

	// Forney algorithm for magnitudes: Ω(x) = S(x)·ψ(x) mod x^(n-k).
	omega := polyMulLow(gf, synd, psi, nk)
	psiDeriv := formalDerivative(psi)
	for _, p := range positions {
		x := gf.pow(2, c.N-1-p)
		xInv := gf.inv(x)
		denom := evalLow(gf, psiDeriv, xInv)
		if denom == 0 {
			return nil, ErrUncorrectable
		}
		num := evalLow(gf, omega, xInv)
		// Forney with b = 0 syndromes: e_j = X_j · Ω(X_j⁻¹) / ψ'(X_j⁻¹).
		mag := gf.mul(x, gf.div(num, denom))
		word[p] ^= mag
	}

	// Verify: recompute syndromes.
	for i := 0; i < nk; i++ {
		if gf.polyEval(word, gf.exp[i]) != 0 {
			return nil, ErrUncorrectable
		}
	}
	return word[:c.K], nil
}

// berlekampMassey finds the error-locator polynomial (low-to-high degree)
// from the Forney syndromes, given f known erasures.
func (c *RS) berlekampMassey(synd []byte, f int) ([]byte, error) {
	gf := c.gf
	nk := c.N - c.K
	lambda := []byte{1}
	b := []byte{1}
	l := 0
	m := 1
	bb := byte(1)
	for i := 0; i < nk-f; i++ {
		n := i + f
		var delta byte
		for j := 0; j <= l && j < len(lambda); j++ {
			if n-j < len(synd) && n-j >= 0 {
				delta ^= gf.mul(lambda[j], synd[n-j])
			}
		}
		if delta == 0 {
			m++
			continue
		}
		if 2*l <= i {
			t := make([]byte, len(lambda))
			copy(t, lambda)
			coef := gf.div(delta, bb)
			lambda = polyAddShift(gf, lambda, b, coef, m)
			l = i + 1 - l
			b = t
			bb = delta
			m = 1
		} else {
			coef := gf.div(delta, bb)
			lambda = polyAddShift(gf, lambda, b, coef, m)
			m++
		}
	}
	if l > (nk-f)/2 {
		return nil, ErrUncorrectable
	}
	return lambda, nil
}

// polyAddShift returns a(x) + coef·x^shift·b(x), low-to-high degree.
func polyAddShift(gf *gf256, a, b []byte, coef byte, shift int) []byte {
	n := len(a)
	if len(b)+shift > n {
		n = len(b) + shift
	}
	out := make([]byte, n)
	copy(out, a)
	for i, c := range b {
		out[i+shift] ^= gf.mul(c, coef)
	}
	return trimHigh(out)
}

// polyMulLow multiplies two low-to-high polynomials, truncating to maxLen
// coefficients.
func polyMulLow(gf *gf256, a, b []byte, maxLen int) []byte {
	out := make([]byte, min(len(a)+len(b)-1, maxLen))
	for i, ca := range a {
		if ca == 0 {
			continue
		}
		for j, cb := range b {
			if i+j >= maxLen {
				break
			}
			out[i+j] ^= gf.mul(ca, cb)
		}
	}
	return trimHigh(out)
}

// evalLow evaluates a low-to-high polynomial at x.
func evalLow(gf *gf256, p []byte, x byte) byte {
	var y byte
	for i := len(p) - 1; i >= 0; i-- {
		y = gf.mul(y, x) ^ p[i]
	}
	return y
}

// formalDerivative returns p'(x) for low-to-high p over GF(2^8): odd-power
// coefficients survive.
func formalDerivative(p []byte) []byte {
	if len(p) <= 1 {
		return []byte{0}
	}
	out := make([]byte, len(p)-1)
	for i := 1; i < len(p); i++ {
		if i%2 == 1 {
			out[i-1] = p[i]
		}
	}
	return trimHigh(out)
}

func trimHigh(p []byte) []byte {
	n := len(p)
	for n > 1 && p[n-1] == 0 {
		n--
	}
	return p[:n]
}

func reverse(p []byte) []byte {
	out := make([]byte, len(p))
	for i, c := range p {
		out[len(p)-1-i] = c
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
