package adversary

import (
	"math/rand"

	"mpic/internal/bitstring"
	"mpic/internal/channel"
)

// RandomRate corrupts each real transmission independently with
// probability Rate, and injects into each silent slot with probability
// Rate·InsertBias. Its coin flips are drawn from a private generator that
// is independent of the parties' randomness, so it is oblivious in the
// sense required by the analysis of Section 4.4 (the error pattern does
// not depend on the hash seeds).
type RandomRate struct {
	Rate       float64
	InsertBias float64 // fraction of Rate applied to silent slots
	Rng        *rand.Rand
	budget     *Budget
}

// NewRandomRate returns a RandomRate adversary with an online rate budget
// so the realized noise fraction stays at or below rate.
func NewRandomRate(rate float64, rng *rand.Rand) *RandomRate {
	return &RandomRate{
		Rate:       rate,
		InsertBias: 0.1,
		Rng:        rng,
		budget:     &Budget{Rate: rate, Floor: 1},
	}
}

// SetContext implements ContextAware.
func (a *RandomRate) SetContext(ctx Context) { a.budget.SetContext(ctx) }

// Corruptions returns how many slots were corrupted.
func (a *RandomRate) Corruptions() int { return a.budget.Used() }

// Corrupt implements Adversary.
func (a *RandomRate) Corrupt(_ int, _ channel.Link, sent bitstring.Symbol) bitstring.Symbol {
	p := a.Rate
	if sent == bitstring.Silence {
		p *= a.InsertBias
	}
	if a.Rng.Float64() >= p {
		return sent
	}
	if !a.budget.TrySpend() {
		return sent
	}
	return sent.Add(uint8(1 + a.Rng.Intn(2)))
}

// Burst concentrates all corruption on one directed link during a round
// window, subject to a rate budget. It models the worst-case "all noise
// on one link" attacks the per-link meeting-points analysis worries
// about. Oblivious: the target and window are fixed up front.
//
// MinSalvo makes the burst bank its allowance and only open fire once it
// can afford that many consecutive corruptions — the pattern that defeats
// repetition coding, whose blocks survive any single lost copy.
type Burst struct {
	Target   channel.Link
	From, To int // round window [From, To)
	MinSalvo int
	budget   *Budget
	inSalvo  bool
}

// NewBurst returns a burst adversary on target during [from, to) with the
// given corruption rate budget.
func NewBurst(target channel.Link, from, to int, rate float64) *Burst {
	return &Burst{Target: target, From: from, To: to, MinSalvo: 1, budget: &Budget{Rate: rate, Floor: 1}}
}

// SetContext implements ContextAware.
func (a *Burst) SetContext(ctx Context) { a.budget.SetContext(ctx) }

// Corruptions returns how many slots were corrupted.
func (a *Burst) Corruptions() int { return a.budget.Used() }

// Corrupt implements Adversary. The burst deletes every real transmission
// on its target while budget lasts; silent slots are left alone so no
// budget is wasted — the adversary banks allowance (rate × CC accrues
// whether or not it spends) and dumps it inside the window.
func (a *Burst) Corrupt(round int, link channel.Link, sent bitstring.Symbol) bitstring.Symbol {
	if link != a.Target || round < a.From || round >= a.To || sent == bitstring.Silence {
		return sent
	}
	if !a.inSalvo {
		if a.budget.Available() < float64(a.MinSalvo) {
			return sent
		}
		a.inSalvo = true
	}
	if !a.budget.TrySpend() {
		a.inSalvo = false
		return sent
	}
	return bitstring.Silence
}

// PhaseOracle lets a non-oblivious adversary know which phase of the
// coding scheme a round belongs to. The scheme engine provides it; this
// is information a real adaptive adversary has, since the phase layout is
// public and deterministic.
type PhaseOracle func(round int) (phase int, iteration int)

// Adaptive is a non-oblivious adversary: it watches the execution (via
// Context and a PhaseOracle) and targets simulation-phase transmissions
// on a rotating link, which maximizes undetected chunk damage per spent
// corruption. Used to stress Algorithms B and C.
type Adaptive struct {
	Links     []channel.Link
	Oracle    PhaseOracle
	SimPhase  int // the phase index that identifies simulation rounds
	PerChunk  int // corruptions it tries to land per targeted chunk
	budget    *Budget
	rng       *rand.Rand
	curIter   int
	curLink   int
	spentIter int
}

// NewAdaptive builds an adaptive attacker over the given directed links.
func NewAdaptive(links []channel.Link, oracle PhaseOracle, simPhase int, rate float64, rng *rand.Rand) *Adaptive {
	return &Adaptive{
		Links:    links,
		Oracle:   oracle,
		SimPhase: simPhase,
		PerChunk: 1,
		budget:   &Budget{Rate: rate, Floor: 1},
		rng:      rng,
		curIter:  -1,
	}
}

// SetContext implements ContextAware.
func (a *Adaptive) SetContext(ctx Context) { a.budget.SetContext(ctx) }

// Corruptions returns how many slots were corrupted.
func (a *Adaptive) Corruptions() int { return a.budget.Used() }

// Corrupt implements Adversary.
func (a *Adaptive) Corrupt(round int, link channel.Link, sent bitstring.Symbol) bitstring.Symbol {
	if a.Oracle == nil || len(a.Links) == 0 {
		return sent
	}
	phase, iter := a.Oracle(round)
	if phase != a.SimPhase {
		return sent
	}
	if iter != a.curIter {
		// New iteration: rotate to a new target link and replenish the
		// per-iteration attack allotment.
		a.curIter = iter
		a.curLink = (a.curLink + 1) % len(a.Links)
		a.spentIter = 0
	}
	if link != a.Links[a.curLink] || a.spentIter >= a.PerChunk {
		return sent
	}
	// Corrupt only real payload bits: flipping a live bit inside the
	// simulated chunk silently poisons the transcript.
	if sent == bitstring.Silence {
		return sent
	}
	if !a.budget.TrySpend() {
		return sent
	}
	a.spentIter++
	return sent.Add(1)
}

// RewindHammer manufactures deep truncations, the workload that stresses
// rewind handling and any state caches keyed to transcript prefixes (the
// incremental hash checkpoints). It alternates two windows per target
// link: a poison window of Depth consecutive iterations during which it
// corrupts simulation payload on the link every iteration — so both
// endpoints keep extending transcripts whose suffixes have quietly
// diverged — followed by a quiet window in which the meeting-points
// checks notice the divergence and unwind it. Each poison window buys a
// truncation roughly Depth chunks deep; rotating the target spreads the
// hammering over every link. Like Adaptive it is non-oblivious in the
// weak sense of consulting the public phase layout.
type RewindHammer struct {
	Links    []channel.Link
	Oracle   PhaseOracle
	SimPhase int // phase index identifying simulation rounds
	Depth    int // poison window, iterations
	Quiet    int // quiet window, iterations
	PerIter  int // corruptions per poisoned iteration
	budget   *Budget
	curIter  int
	spent    int
}

// NewRewindHammer builds a hammer over the given directed links that
// poisons depth consecutive iterations, then stays quiet for quiet
// iterations, under a rate corruption budget.
func NewRewindHammer(links []channel.Link, oracle PhaseOracle, simPhase int, rate float64, depth, quiet int) *RewindHammer {
	if depth < 1 {
		depth = 1
	}
	if quiet < 1 {
		quiet = 1
	}
	return &RewindHammer{
		Links:    links,
		Oracle:   oracle,
		SimPhase: simPhase,
		Depth:    depth,
		Quiet:    quiet,
		PerIter:  1,
		budget:   &Budget{Rate: rate, Floor: depth},
		curIter:  -1,
	}
}

// SetContext implements ContextAware.
func (a *RewindHammer) SetContext(ctx Context) { a.budget.SetContext(ctx) }

// Corruptions returns how many slots were corrupted.
func (a *RewindHammer) Corruptions() int { return a.budget.Used() }

// Corrupt implements Adversary.
func (a *RewindHammer) Corrupt(round int, link channel.Link, sent bitstring.Symbol) bitstring.Symbol {
	if a.Oracle == nil || len(a.Links) == 0 {
		return sent
	}
	phase, iter := a.Oracle(round)
	if phase != a.SimPhase {
		return sent
	}
	if iter != a.curIter {
		a.curIter = iter
		a.spent = 0
	}
	cycle := a.Depth + a.Quiet
	if iter%cycle >= a.Depth {
		return sent // quiet window: let the rewind wave run
	}
	target := a.Links[(iter/cycle)%len(a.Links)]
	if link != target || a.spent >= a.PerIter || sent == bitstring.Silence {
		return sent
	}
	if !a.budget.TrySpend() {
		return sent
	}
	a.spent++
	return sent.Add(uint8(1 + iter%2))
}

// FixedDeletions deletes Count consecutive payload bits on one directed
// link (after letting Skip payload bits through) and then stops — an
// attack with a known absolute budget, used for apples-to-apples
// comparisons between schemes whose total communication differs.
type FixedDeletions struct {
	Target channel.Link
	Count  int
	Skip   int
	seen   int
	used   int
}

// NewFixedDeletions returns the fixed-budget deleter.
func NewFixedDeletions(target channel.Link, count int) *FixedDeletions {
	return &FixedDeletions{Target: target, Count: count}
}

// Corruptions returns how many deletions have been applied.
func (a *FixedDeletions) Corruptions() int { return a.used }

// Corrupt implements Adversary.
func (a *FixedDeletions) Corrupt(_ int, link channel.Link, sent bitstring.Symbol) bitstring.Symbol {
	if link != a.Target || sent == bitstring.Silence {
		return sent
	}
	a.seen++
	if a.seen <= a.Skip || a.used >= a.Count {
		return sent
	}
	a.used++
	return bitstring.Silence
}

// SeedAttacker targets the randomness-exchange preamble: it corrupts
// transmissions on the chosen links during rounds [0, window), trying to
// break the seed agreement the rest of the protocol relies on
// (Claim 5.16 shows the ECC makes this unaffordable).
type SeedAttacker struct {
	Targets []channel.Link
	Window  int
	budget  *Budget
	rng     *rand.Rand
}

// NewSeedAttacker returns a seed attacker over the first window rounds.
func NewSeedAttacker(targets []channel.Link, window int, rate float64, rng *rand.Rand) *SeedAttacker {
	return &SeedAttacker{Targets: targets, Window: window, budget: &Budget{Rate: rate, Floor: 1}, rng: rng}
}

// SetContext implements ContextAware.
func (a *SeedAttacker) SetContext(ctx Context) { a.budget.SetContext(ctx) }

// Corruptions returns how many slots were corrupted.
func (a *SeedAttacker) Corruptions() int { return a.budget.Used() }

// Corrupt implements Adversary.
func (a *SeedAttacker) Corrupt(round int, link channel.Link, sent bitstring.Symbol) bitstring.Symbol {
	if round >= a.Window {
		return sent
	}
	targeted := false
	for _, t := range a.Targets {
		if link == t {
			targeted = true
			break
		}
	}
	if !targeted || sent == bitstring.Silence {
		return sent
	}
	if !a.budget.TrySpend() {
		return sent
	}
	return sent.Add(uint8(1 + a.rng.Intn(2)))
}
