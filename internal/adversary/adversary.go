// Package adversary implements the noise models of Section 2.1: oblivious
// additive adversaries whose noise pattern is fixed independently of the
// parties' randomness, and non-oblivious adversaries that adapt to the
// observed execution. Every strategy is consulted for every
// (round, directed link) pair — including silent slots, which is what
// makes insertions possible.
package adversary

import (
	"math/rand"

	"mpic/internal/bitstring"
	"mpic/internal/channel"
)

// Adversary decides, for each transmission slot, what the receiver gets.
type Adversary interface {
	// Corrupt returns the symbol delivered for the slot (round, link) on
	// which sent was transmitted (Silence when the sender stayed quiet).
	Corrupt(round int, link channel.Link, sent bitstring.Symbol) bitstring.Symbol
}

// Context exposes the live execution state that budgeted and adaptive
// (non-oblivious) strategies may consult. Oblivious strategies ignore it.
type Context interface {
	// CC returns the cumulative number of party transmissions so far.
	CC() int64
}

// ContextAware is implemented by strategies that need a Context; the
// network engine wires it before the run starts.
type ContextAware interface {
	SetContext(ctx Context)
}

// None is the noiseless channel.
type None struct{}

// Corrupt implements Adversary.
func (None) Corrupt(_ int, _ channel.Link, sent bitstring.Symbol) bitstring.Symbol {
	return sent
}

// PatternKey addresses one slot of an oblivious noise pattern.
type PatternKey struct {
	Round int
	Link  channel.Link
}

// Pattern is the paper's oblivious additive adversary: a fixed map from
// slots to additive noise values e ∈ {1,2}; delivery is sent + e mod 3.
// The pattern is chosen before the run and never looks at the execution.
type Pattern struct {
	noise map[PatternKey]uint8
}

// NewPattern returns an empty (noiseless) pattern.
func NewPattern() *Pattern {
	return &Pattern{noise: make(map[PatternKey]uint8)}
}

// Set fixes the additive noise e ∈ {1,2} for a slot.
func (p *Pattern) Set(round int, link channel.Link, e uint8) {
	if e%3 == 0 {
		delete(p.noise, PatternKey{Round: round, Link: link})
		return
	}
	p.noise[PatternKey{Round: round, Link: link}] = e % 3
}

// Len returns the number of corrupted slots in the pattern.
func (p *Pattern) Len() int { return len(p.noise) }

// Corrupt implements Adversary.
func (p *Pattern) Corrupt(round int, link channel.Link, sent bitstring.Symbol) bitstring.Symbol {
	if e, ok := p.noise[PatternKey{Round: round, Link: link}]; ok {
		return sent.Add(e)
	}
	return sent
}

// FixingPattern is the stronger oblivious adversary of Remark 1: instead
// of adding noise, it fixes the channel's *output* symbol for chosen
// slots in advance. A fixed output that happens to equal what the party
// sent does not count as a corruption (the engine classifies corruptions
// by comparing sent and delivered), matching the remark's accounting
// subtlety.
type FixingPattern struct {
	out map[PatternKey]bitstring.Symbol
}

// NewFixingPattern returns an empty fixing pattern.
func NewFixingPattern() *FixingPattern {
	return &FixingPattern{out: make(map[PatternKey]bitstring.Symbol)}
}

// Fix pins the delivered symbol for a slot.
func (p *FixingPattern) Fix(round int, link channel.Link, sym bitstring.Symbol) {
	p.out[PatternKey{Round: round, Link: link}] = sym
}

// Len returns the number of fixed slots.
func (p *FixingPattern) Len() int { return len(p.out) }

// Corrupt implements Adversary.
func (p *FixingPattern) Corrupt(round int, link channel.Link, sent bitstring.Symbol) bitstring.Symbol {
	if sym, ok := p.out[PatternKey{Round: round, Link: link}]; ok {
		return sym
	}
	return sent
}

// RandomPattern fixes n corrupted slots uniformly over rounds [0, maxRound)
// and the given directed links, with uniformly random additive values.
// This is an oblivious additive adversary in the strict sense of the
// paper: the whole pattern is fixed before the execution.
func RandomPattern(rng *rand.Rand, n, maxRound int, links []channel.Link) *Pattern {
	p := NewPattern()
	if maxRound <= 0 || len(links) == 0 {
		return p
	}
	for p.Len() < n && p.Len() < maxRound*len(links) {
		k := PatternKey{
			Round: rng.Intn(maxRound),
			Link:  links[rng.Intn(len(links))],
		}
		if _, dup := p.noise[k]; dup {
			continue
		}
		p.noise[k] = uint8(1 + rng.Intn(2))
	}
	return p
}

// Budget enforces a corruption allowance. The paper bounds the adversary
// by a fraction µ of the instance's total communication; since CC grows
// during the run, the rate budget is enforced online against the current
// CC (plus an absolute floor so tiny runs can be attacked at all).
type Budget struct {
	// Rate is the allowed corruptions per unit of communication (µ).
	Rate float64
	// Floor is an absolute minimum allowance independent of CC.
	Floor int
	ctx   Context
	used  int
}

// SetContext implements ContextAware.
func (b *Budget) SetContext(ctx Context) { b.ctx = ctx }

// Used returns the number of corruptions spent.
func (b *Budget) Used() int { return b.used }

// TrySpend consumes one unit of budget if available.
func (b *Budget) TrySpend() bool {
	if b.Available() < 1 {
		return false
	}
	b.used++
	return true
}

// Available returns how many corruptions the budget currently allows
// beyond those already spent. The allowance accrues with CC whether or
// not it is spent, so an adversary can bank budget and strike in a salvo.
func (b *Budget) Available() float64 {
	allowance := float64(b.Floor)
	if b.ctx != nil {
		allowance += b.Rate * float64(b.ctx.CC())
	}
	return allowance - float64(b.used)
}
