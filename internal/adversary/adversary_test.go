package adversary

import (
	"math/rand"
	"testing"

	"mpic/internal/bitstring"
	"mpic/internal/channel"
)

type fakeCtx struct{ cc int64 }

func (f *fakeCtx) CC() int64 { return f.cc }

func TestNoneIsIdentity(t *testing.T) {
	var a None
	for s := bitstring.Symbol(0); s < 3; s++ {
		if a.Corrupt(0, channel.Link{}, s) != s {
			t.Fatal("None altered a symbol")
		}
	}
}

func TestPatternSetAndCorrupt(t *testing.T) {
	p := NewPattern()
	l := channel.Link{From: 0, To: 1}
	p.Set(5, l, 1)
	if got := p.Corrupt(5, l, bitstring.Sym0); got != bitstring.Sym1 {
		t.Errorf("corrupt(0)+1 = %v, want 1", got)
	}
	if got := p.Corrupt(4, l, bitstring.Sym0); got != bitstring.Sym0 {
		t.Error("uncorrupted slot altered")
	}
	if got := p.Corrupt(5, l.Reverse(), bitstring.Sym0); got != bitstring.Sym0 {
		t.Error("reverse link altered")
	}
	p.Set(5, l, 0) // zero removes
	if p.Len() != 0 {
		t.Error("Set(0) did not remove the slot")
	}
}

func TestRandomPatternBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	links := []channel.Link{{From: 0, To: 1}, {From: 1, To: 0}}
	p := RandomPattern(rng, 10, 100, links)
	if p.Len() != 10 {
		t.Errorf("pattern has %d corruptions, want 10", p.Len())
	}
	// Saturation: cannot exceed slots.
	p = RandomPattern(rng, 1000, 3, links)
	if p.Len() != 6 {
		t.Errorf("saturated pattern has %d, want 6", p.Len())
	}
	// Degenerate inputs.
	if RandomPattern(rng, 5, 0, links).Len() != 0 {
		t.Error("zero-round pattern nonempty")
	}
	if RandomPattern(rng, 5, 5, nil).Len() != 0 {
		t.Error("zero-link pattern nonempty")
	}
}

func TestBudgetEnforcesRate(t *testing.T) {
	b := &Budget{Rate: 0.1, Floor: 0}
	ctx := &fakeCtx{cc: 100}
	b.SetContext(ctx)
	spent := 0
	for i := 0; i < 100; i++ {
		if b.TrySpend() {
			spent++
		}
	}
	if spent != 10 {
		t.Errorf("spent %d with CC=100 rate=0.1, want 10", spent)
	}
	ctx.cc = 200
	if !b.TrySpend() {
		t.Error("budget not replenished when CC grows")
	}
}

func TestBudgetFloor(t *testing.T) {
	b := &Budget{Rate: 0, Floor: 2}
	if !b.TrySpend() || !b.TrySpend() {
		t.Fatal("floor allowance not granted")
	}
	if b.TrySpend() {
		t.Fatal("floor exceeded")
	}
	if b.Used() != 2 {
		t.Errorf("Used() = %d, want 2", b.Used())
	}
}

func TestRandomRateRespectsBudget(t *testing.T) {
	a := NewRandomRate(0.5, rand.New(rand.NewSource(2)))
	ctx := &fakeCtx{cc: 0}
	a.SetContext(ctx)
	l := channel.Link{From: 0, To: 1}
	corruptions := 0
	for i := 0; i < 1000; i++ {
		ctx.cc++
		if a.Corrupt(i, l, bitstring.Sym0) != bitstring.Sym0 {
			corruptions++
		}
	}
	if corruptions == 0 {
		t.Fatal("no corruption at 50% rate")
	}
	if float64(corruptions) > 0.5*float64(ctx.cc)+1 {
		t.Fatalf("%d corruptions exceed budget %f", corruptions, 0.5*float64(ctx.cc))
	}
	if a.Corruptions() != corruptions {
		t.Errorf("Corruptions() = %d, observed %d", a.Corruptions(), corruptions)
	}
}

func TestRandomRateInsertBias(t *testing.T) {
	a := NewRandomRate(1.0, rand.New(rand.NewSource(3)))
	a.InsertBias = 0
	ctx := &fakeCtx{cc: 1 << 30}
	a.SetContext(ctx)
	for i := 0; i < 100; i++ {
		if a.Corrupt(i, channel.Link{}, bitstring.Silence) != bitstring.Silence {
			t.Fatal("insertion with zero InsertBias")
		}
	}
}

func TestBurstTargetsWindowAndLink(t *testing.T) {
	target := channel.Link{From: 1, To: 2}
	a := NewBurst(target, 10, 20, 1.0)
	ctx := &fakeCtx{cc: 1 << 20}
	a.SetContext(ctx)
	if a.Corrupt(5, target, bitstring.Sym1) != bitstring.Sym1 {
		t.Error("corrupted outside window")
	}
	if a.Corrupt(15, channel.Link{From: 0, To: 1}, bitstring.Sym1) != bitstring.Sym1 {
		t.Error("corrupted wrong link")
	}
	if got := a.Corrupt(15, target, bitstring.Sym1); got != bitstring.Silence {
		t.Errorf("bit not deleted in window: %v", got)
	}
	if got := a.Corrupt(16, target, bitstring.Silence); got != bitstring.Silence {
		t.Errorf("burst wasted budget on a silent slot: %v", got)
	}
}

func TestAdaptiveOnlyHitsSimulationPhase(t *testing.T) {
	links := []channel.Link{{From: 0, To: 1}, {From: 1, To: 0}}
	oracle := func(round int) (int, int) {
		if round%10 < 5 {
			return 3, round / 10 // phase 3 = simulation
		}
		return 1, round / 10
	}
	a := NewAdaptive(links, oracle, 3, 1.0, rand.New(rand.NewSource(4)))
	ctx := &fakeCtx{cc: 1 << 20}
	a.SetContext(ctx)
	// Non-simulation rounds untouched.
	for r := 5; r < 10; r++ {
		for _, l := range links {
			if a.Corrupt(r, l, bitstring.Sym1) != bitstring.Sym1 {
				t.Fatal("adaptive corrupted outside simulation phase")
			}
		}
	}
	// Simulation rounds: corrupts on its current target, at most PerChunk
	// per iteration.
	hits := 0
	for it := 0; it < 6; it++ {
		for r := it * 10; r < it*10+5; r++ {
			for _, l := range links {
				if a.Corrupt(r, l, bitstring.Sym1) != bitstring.Sym1 {
					hits++
				}
			}
		}
	}
	if hits == 0 {
		t.Fatal("adaptive never corrupted simulation rounds")
	}
	if hits > 6 {
		t.Fatalf("adaptive corrupted %d times over 6 iterations with PerChunk=1", hits)
	}
	// Silence is never turned into a bit by this strategy.
	if a.Corrupt(60, links[0], bitstring.Silence) != bitstring.Silence {
		t.Error("adaptive inserted into silence")
	}
}

func TestFixedDeletions(t *testing.T) {
	target := channel.Link{From: 0, To: 1}
	a := NewFixedDeletions(target, 2)
	a.Skip = 1
	// First payload bit passes (skip), next two deleted, rest pass.
	if a.Corrupt(0, target, bitstring.Sym1) != bitstring.Sym1 {
		t.Error("skip not honored")
	}
	if a.Corrupt(1, target, bitstring.Sym0) != bitstring.Silence {
		t.Error("first deletion missing")
	}
	if a.Corrupt(2, target, bitstring.Sym1) != bitstring.Silence {
		t.Error("second deletion missing")
	}
	if a.Corrupt(3, target, bitstring.Sym1) != bitstring.Sym1 {
		t.Error("budget exceeded")
	}
	if a.Corruptions() != 2 {
		t.Errorf("Corruptions() = %d, want 2", a.Corruptions())
	}
	// Other links and silence never touched or counted against skip.
	if a.Corrupt(4, target.Reverse(), bitstring.Sym1) != bitstring.Sym1 {
		t.Error("wrong link corrupted")
	}
	if a.Corrupt(5, target, bitstring.Silence) != bitstring.Silence {
		t.Error("silence corrupted")
	}
}

func TestCorruptionsAccessors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := NewBurst(channel.Link{From: 0, To: 1}, 0, 10, 1)
	ctx := &fakeCtx{cc: 100}
	b.SetContext(ctx)
	b.Corrupt(1, channel.Link{From: 0, To: 1}, bitstring.Sym1)
	if b.Corruptions() != 1 {
		t.Error("burst corruption not counted")
	}
	ad := NewAdaptive(nil, nil, 3, 1, rng)
	if ad.Corruptions() != 0 {
		t.Error("fresh adaptive has corruptions")
	}
	sa := NewSeedAttacker(nil, 10, 1, rng)
	if sa.Corruptions() != 0 {
		t.Error("fresh seed attacker has corruptions")
	}
}

func TestSeedAttackerWindow(t *testing.T) {
	target := channel.Link{From: 0, To: 1}
	a := NewSeedAttacker([]channel.Link{target}, 50, 1.0, rand.New(rand.NewSource(5)))
	ctx := &fakeCtx{cc: 1 << 20}
	a.SetContext(ctx)
	if a.Corrupt(10, target, bitstring.Sym0) == bitstring.Sym0 {
		t.Error("seed attacker idle inside window")
	}
	if a.Corrupt(60, target, bitstring.Sym0) != bitstring.Sym0 {
		t.Error("seed attacker active outside window")
	}
	if a.Corrupt(10, target.Reverse(), bitstring.Sym0) != bitstring.Sym0 {
		t.Error("seed attacker hit untargeted link")
	}
}

func TestFixingPattern(t *testing.T) {
	p := NewFixingPattern()
	l := channel.Link{From: 0, To: 1}
	p.Fix(3, l, bitstring.Sym1)
	p.Fix(4, l, bitstring.Silence)
	if p.Len() != 2 {
		t.Fatalf("Len = %d, want 2", p.Len())
	}
	// Fixed output overrides whatever was sent.
	if p.Corrupt(3, l, bitstring.Sym0) != bitstring.Sym1 {
		t.Error("fixed output not delivered")
	}
	// Fixing to the sent value is a no-op corruption (Remark 1).
	if p.Corrupt(3, l, bitstring.Sym1) != bitstring.Sym1 {
		t.Error("fixing to sent value changed the symbol")
	}
	// Fixing to Silence deletes; fixing a silent slot inserts.
	if p.Corrupt(4, l, bitstring.Sym0) != bitstring.Silence {
		t.Error("fixed deletion missing")
	}
	if p.Corrupt(3, l, bitstring.Silence) != bitstring.Sym1 {
		t.Error("fixed insertion missing")
	}
	// Unfixed slots pass through.
	if p.Corrupt(9, l, bitstring.Sym0) != bitstring.Sym0 {
		t.Error("unfixed slot corrupted")
	}
}
