// Package faults is a deterministic, seed-driven fault injector for the
// grid engine's robustness tests: every failure decision — should this
// Save error, should this cell panic, how long should this stall be — is
// a pure function of a seed and the operation's coordinates, so a chaos
// run is reproducible bit for bit from its seed, exactly like the
// library's adversarial channel noise is reproducible from a scenario
// seed. No global state, no time, no math/rand.
//
// The package deliberately does not import the root mpic package: the
// store decorator is generic over the cell type (FaultyStore), which
// keeps faults importable from in-package tests of mpic itself (where an
// mpic import would be a cycle) as well as from external test packages.
//
// Three injection surfaces cover the host failure modes the engine must
// tolerate:
//
//   - FaultyStore decorates any Load/Save checkpoint store with injected
//     I/O errors, latency, and torn writes (a Save that reports success
//     but leaves corrupt bytes behind, via the Tear hook).
//   - CellPlan builds per-cell observer hooks that make worker cells
//     panic or stall mid-run on a deterministic schedule.
//   - Plan-free primitives (Roll, Pick) for tests that schedule their
//     own faults.
package faults

import "hash/fnv"

// mix is the splitmix64 finalizer: a cheap, high-quality bijection that
// turns structured coordinates into uniform-looking 64-bit values.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// key folds a seed, a site label, and an operation ordinal into one
// 64-bit coordinate. The site label namespaces decision streams so,
// e.g., save-error and torn-write decisions at the same ordinal are
// independent.
func key(seed int64, site string, n uint64) uint64 {
	h := fnv.New64a()
	h.Write([]byte(site))
	return mix(mix(uint64(seed)^h.Sum64()) ^ n)
}

// Roll returns a uniform value in [0, 1), deterministic in
// (seed, site, n). A fault with probability p fires iff
// Roll(seed, site, n) < p.
func Roll(seed int64, site string, n uint64) float64 {
	return float64(key(seed, site, n)>>11) / float64(uint64(1)<<53)
}

// Pick returns a uniform value in [0, max), deterministic in
// (seed, site, n). max must be positive.
func Pick(seed int64, site string, n uint64, max int) int {
	return int(key(seed, site, n) % uint64(max))
}
