// Package faults is a deterministic, seed-driven fault injector for the
// grid engine's robustness tests: every failure decision — should this
// Save error, should this cell panic, how long should this stall be — is
// a pure function of a seed and the operation's coordinates, so a chaos
// run is reproducible bit for bit from its seed, exactly like the
// library's adversarial channel noise is reproducible from a scenario
// seed. No global state, no time, no math/rand.
//
// The package deliberately does not import the root mpic package: the
// store decorator is generic over the cell type (FaultyStore), which
// keeps faults importable from in-package tests of mpic itself (where an
// mpic import would be a cycle) as well as from external test packages.
//
// Three injection surfaces cover the host failure modes the engine must
// tolerate:
//
//   - FaultyStore decorates any Load/Save checkpoint store with injected
//     I/O errors, latency, and torn writes (a Save that reports success
//     but leaves corrupt bytes behind, via the Tear hook).
//   - CellPlan builds per-cell observer hooks that make worker cells
//     panic or stall mid-run on a deterministic schedule.
//   - Plan-free primitives (Roll, Pick) for tests that schedule their
//     own faults.
package faults

import "mpic/internal/detrand"

// Roll returns a uniform value in [0, 1), deterministic in
// (seed, site, n). A fault with probability p fires iff
// Roll(seed, site, n) < p. It is internal/detrand's Roll, re-exported so
// chaos tests keep a single import.
func Roll(seed int64, site string, n uint64) float64 {
	return detrand.Roll(seed, site, n)
}

// Pick returns a uniform value in [0, max), deterministic in
// (seed, site, n). max must be positive.
func Pick(seed int64, site string, n uint64, max int) int {
	return detrand.Pick(seed, site, n, max)
}
