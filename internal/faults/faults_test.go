package faults

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"mpic/internal/core"
)

// TestRollDeterministic pins the injector's determinism and independence
// contracts: same coordinates, same decision; different seeds, sites, or
// ordinals decorrelate.
func TestRollDeterministic(t *testing.T) {
	if Roll(7, "save-error", 3) != Roll(7, "save-error", 3) {
		t.Fatal("Roll is not deterministic")
	}
	same := 0
	const n = 1000
	for i := uint64(0); i < n; i++ {
		if Roll(7, "save-error", i) == Roll(8, "save-error", i) {
			same++
		}
		if Roll(7, "save-error", i) == Roll(7, "load-error", i) {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions across seeds/sites in %d rolls", same, n)
	}
	// Rolls are in [0,1) and roughly uniform.
	sum := 0.0
	for i := uint64(0); i < n; i++ {
		v := Roll(7, "uniformity", i)
		if v < 0 || v >= 1 {
			t.Fatalf("Roll out of range: %g", v)
		}
		sum += v
	}
	if mean := sum / n; mean < 0.45 || mean > 0.55 {
		t.Errorf("Roll mean over %d draws = %g, want ≈0.5", n, mean)
	}
	for i := uint64(0); i < 100; i++ {
		if v := Pick(7, "pick", i, 5); v < 0 || v >= 5 {
			t.Fatalf("Pick out of range: %d", v)
		}
	}
}

// memStore is a trivial in-memory Store for decoration tests.
type memStore struct {
	cells []int
	saves int
	torn  bool
}

func (m *memStore) Load(string) ([]int, error) { return m.cells, nil }
func (m *memStore) Save(_ string, cells []int) error {
	m.saves++
	m.cells = append([]int(nil), cells...)
	m.torn = false
	return nil
}

// TestFaultyStoreSchedule pins the decorator's semantics: injected
// errors fire before the inner write, torn writes after a successful one
// (still reporting success), latency is counted, and the whole schedule
// replays identically from the seed.
func TestFaultyStoreSchedule(t *testing.T) {
	run := func() (StoreStats, []string) {
		inner := &memStore{}
		var slept []time.Duration
		fs := NewFaultyStore[int](inner, StoreFaults{
			Seed:          42,
			SaveErrorRate: 0.3,
			LoadErrorRate: 0.3,
			TornRate:      0.3,
			Latency:       time.Millisecond,
			LatencyRate:   0.3,
		})
		fs.Tear = func() error { inner.torn = true; return nil }
		fs.Sleep = func(d time.Duration) { slept = append(slept, d) }
		var trace []string
		for i := 0; i < 50; i++ {
			savesBefore := inner.saves
			err := fs.Save("s", []int{i})
			var inj *InjectedError
			switch {
			case errors.As(err, &inj):
				if inj.Op != "save" {
					t.Fatalf("save returned %v", inj)
				}
				if inner.saves != savesBefore {
					t.Fatal("injected save error still reached the inner store")
				}
				trace = append(trace, "err")
			case err != nil:
				t.Fatal(err)
			case inner.torn:
				trace = append(trace, "torn")
			default:
				trace = append(trace, "ok")
			}
			if _, err := fs.Load("s"); err != nil {
				if !errors.As(err, &inj) || inj.Op != "load" {
					t.Fatalf("load returned %v", err)
				}
				trace = append(trace, "load-err")
			}
		}
		st := fs.Stats()
		if int(st.Delays) != len(slept) {
			t.Fatalf("stats count %d delays, sleep hook saw %d", st.Delays, len(slept))
		}
		return st, trace
	}
	st, trace := run()
	if st.SaveErrors == 0 || st.LoadErrors == 0 || st.Tears == 0 || st.Delays == 0 {
		t.Fatalf("schedule at rate 0.3 over 50 ops injected nothing in some stream: %+v", st)
	}
	if st2, trace2 := run(); st2 != st || fmt.Sprint(trace2) != fmt.Sprint(trace) {
		t.Errorf("fault schedule is not reproducible from its seed:\n%+v vs %+v", st, st2)
	}
}

// TestCellPlanSchedule pins the per-cell agent: afflicted cells panic on
// exactly their scheduled number of leading attempts and then run clean,
// and the schedule is a pure function of (seed, cell).
func TestCellPlanSchedule(t *testing.T) {
	plan := CellPlan{Seed: 11, PanicRate: 0.5, MaxPanics: 2}
	afflicted, clean := 0, 0
	for cell := 0; cell < 40; cell++ {
		want := plan.Panics(cell)
		if want != plan.Panics(cell) {
			t.Fatal("Panics is not deterministic")
		}
		if want == 0 {
			clean++
		} else {
			afflicted++
		}
		if want > 2 {
			t.Fatalf("cell %d scheduled %d panics, above MaxPanics", cell, want)
		}
		agent := plan.Observer(cell)
		panics := 0
		// Each "attempt" runs iterations 0..panicIterSpread; a scheduled
		// panic fires once per attempt until the budget is spent.
		for attempt := 0; attempt < want+3; attempt++ {
			func() {
				defer func() {
					if p := recover(); p != nil {
						ip, ok := p.(InjectedPanic)
						if !ok || ip.Cell != cell {
							t.Fatalf("unexpected panic value %v", p)
						}
						panics++
					}
				}()
				for it := 0; it < panicIterSpread; it++ {
					agent.IterationDone(core.IterationStats{Iteration: it})
				}
			}()
		}
		if panics != want {
			t.Errorf("cell %d panicked %d times, scheduled %d", cell, panics, want)
		}
	}
	if afflicted == 0 || clean == 0 {
		t.Fatalf("degenerate schedule: %d afflicted, %d clean", afflicted, clean)
	}
}

// TestCellPlanStall pins the stall hook: stalls go through the sleep
// stub and do not consume the panic budget.
func TestCellPlanStall(t *testing.T) {
	stalls := 0
	plan := CellPlan{Seed: 3, StallRate: 1, Stall: time.Millisecond,
		Sleep: func(time.Duration) { stalls++ }}
	agent := plan.Observer(0)
	for it := 0; it < panicIterSpread; it++ {
		agent.IterationDone(core.IterationStats{Iteration: it})
	}
	if stalls != 1 {
		t.Fatalf("one pass stalled %d times, want 1", stalls)
	}
}
