package faults

import (
	"fmt"
	"time"

	"mpic/internal/core"
)

// panicIterSpread bounds the iteration at which an injected panic fires
// (0-based). Kept small so even tiny test cells reach it.
const panicIterSpread = 3

// CellPlan schedules deterministic in-cell faults: for each afflicted
// cell, a number of leading attempts that panic mid-run (exercising the
// engine's panic recovery and retry), and optional stalls (exercising
// deadline and cancellation paths). Which cells are afflicted, how many
// attempts fail, and at which iteration are all pure functions of
// (Seed, cell index) — a chaos grid replays identically from its seed.
type CellPlan struct {
	// Seed drives every decision.
	Seed int64
	// PanicRate is the fraction of cells that get a panic schedule.
	PanicRate float64
	// MaxPanics bounds how many leading attempts of an afflicted cell
	// panic (the schedule picks 1..MaxPanics). Keep it below the grid's
	// retry budget so every cell eventually succeeds.
	MaxPanics int
	// StallRate is the fraction of cells that stall for Stall once per
	// attempt.
	StallRate float64
	// Stall is the injected stall duration.
	Stall time.Duration
	// Sleep replaces time.Sleep for stalls (tests use a recording stub);
	// nil means time.Sleep.
	Sleep func(time.Duration)
}

// InjectedPanic is the value an injected cell panic carries, so panic
// recovery tests can tell scheduled faults from real bugs.
type InjectedPanic struct {
	// Cell is the afflicted cell's index.
	Cell int
	// Iteration is the 0-based iteration the panic fired at.
	Iteration int
}

// String renders the panic value for logs and recovered-error messages.
func (p InjectedPanic) String() string {
	return fmt.Sprintf("faults: injected panic in cell %d (iteration %d)", p.Cell, p.Iteration)
}

// Panics returns how many leading attempts of the given cell the plan
// makes panic (0 for unafflicted cells) — what a test needs to assert
// the retry budget was exercised as scheduled.
func (p CellPlan) Panics(cell int) int {
	if p.MaxPanics <= 0 || Roll(p.Seed, "cell-panic", uint64(cell)) >= p.PanicRate {
		return 0
	}
	return 1 + Pick(p.Seed, "cell-panic-count", uint64(cell), p.MaxPanics)
}

// Observer builds the fault agent for one cell, to be appended to that
// cell's scenario observers. The agent is stateful (it counts the panics
// it has already thrown, so retried attempts eventually run clean):
// build one agent per cell and never share it across cells. Within a
// cell, attempts and trials execute sequentially on one worker, so the
// agent needs no locking.
func (p CellPlan) Observer(cell int) core.Observer {
	a := &cellAgent{
		cell:       cell,
		panicsLeft: p.Panics(cell),
		panicIter:  Pick(p.Seed, "cell-panic-iter", uint64(cell), panicIterSpread),
		sleep:      p.Sleep,
	}
	if p.Stall > 0 && Roll(p.Seed, "cell-stall", uint64(cell)) < p.StallRate {
		a.stall = p.Stall
		a.stallIter = Pick(p.Seed, "cell-stall-iter", uint64(cell), panicIterSpread)
	}
	return a
}

// cellAgent injects one cell's scheduled faults through the engine's
// ordinary Observer hooks — the same attachment surface user scenarios
// use, so the injected failures travel the exact code paths a real
// in-run fault would.
type cellAgent struct {
	cell       int
	panicsLeft int
	panicIter  int
	stall      time.Duration
	stallIter  int
	sleep      func(time.Duration)
}

// IterationDone implements core.Observer: stall first (a stalled cell
// can still be cancelled), then panic while the fault budget lasts.
func (a *cellAgent) IterationDone(st core.IterationStats) {
	if a.stall > 0 && st.Iteration == a.stallIter {
		if a.sleep != nil {
			a.sleep(a.stall)
		} else {
			time.Sleep(a.stall)
		}
	}
	if a.panicsLeft > 0 && st.Iteration == a.panicIter {
		a.panicsLeft--
		panic(InjectedPanic{Cell: a.cell, Iteration: st.Iteration})
	}
}
