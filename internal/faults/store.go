package faults

import (
	"fmt"
	"sync"
	"time"
)

// Store is the minimal persistence contract FaultyStore decorates —
// structurally identical to mpic.GridStore with the cell type abstracted
// away, so *mpic.FileGridStore (and any other GridStore) satisfies
// Store[mpic.StoredCell] without this package importing mpic.
type Store[C any] interface {
	Load(spec string) ([]C, error)
	Save(spec string, cells []C) error
}

// InjectedError is the error a FaultyStore returns for an injected I/O
// failure. It is a distinct type so tests can tell injected faults from
// real ones.
type InjectedError struct {
	// Op is the operation that failed ("save" or "load").
	Op string
	// Seq is the operation's 0-based ordinal within its op stream.
	Seq uint64
}

// Error implements error.
func (e *InjectedError) Error() string {
	return fmt.Sprintf("faults: injected %s error (op #%d)", e.Op, e.Seq)
}

// StoreFaults parameterizes a FaultyStore's fault schedule. All
// decisions are deterministic in (Seed, op kind, op ordinal).
type StoreFaults struct {
	// Seed drives every decision.
	Seed int64
	// SaveErrorRate and LoadErrorRate are the probabilities that a Save
	// or Load fails with an InjectedError before touching the inner
	// store.
	SaveErrorRate, LoadErrorRate float64
	// TornRate is the probability that a Save, after the inner store
	// reports success, invokes Tear — simulating a write the caller
	// believes durable that in fact left corrupt bytes behind.
	TornRate float64
	// Latency is the injected delay and LatencyRate the probability a
	// Save or Load pays it.
	Latency     time.Duration
	LatencyRate float64
}

// StoreStats counts the faults a FaultyStore actually injected.
type StoreStats struct {
	// Saves and Loads count operations that reached the decision point.
	Saves, Loads uint64
	// SaveErrors and LoadErrors count injected failures.
	SaveErrors, LoadErrors uint64
	// Tears counts torn writes (Tear invocations).
	Tears uint64
	// Delays counts injected latency hits.
	Delays uint64
}

// FaultyStore decorates an inner Store with the failure modes of
// StoreFaults. It is safe for concurrent use (operation ordinals are
// assigned under a lock); note that under concurrency the assignment of
// ordinals to operations follows scheduling, so per-operation outcomes
// are deterministic given an operation order, not across reorderings —
// the engine serializes its Save calls, which is the case that matters.
type FaultyStore[C any] struct {
	// Inner is the decorated store.
	Inner Store[C]
	// Faults is the fault schedule.
	Faults StoreFaults
	// Tear, when non-nil, corrupts the persisted state of the inner
	// store (e.g. truncate the checkpoint file mid-JSON). Invoked for
	// torn-write faults after a successful inner Save; the Save still
	// reports success, exactly like a real torn write.
	Tear func() error
	// Sleep replaces time.Sleep for injected latency (tests use a
	// recording stub); nil means time.Sleep.
	Sleep func(time.Duration)

	mu    sync.Mutex
	stats StoreStats
}

// NewFaultyStore decorates inner with the given fault schedule.
func NewFaultyStore[C any](inner Store[C], f StoreFaults) *FaultyStore[C] {
	return &FaultyStore[C]{Inner: inner, Faults: f}
}

// Stats returns a snapshot of the injected-fault counters.
func (s *FaultyStore[C]) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Load implements Store, injecting latency and errors per the schedule.
func (s *FaultyStore[C]) Load(spec string) ([]C, error) {
	s.mu.Lock()
	seq := s.stats.Loads
	s.stats.Loads++
	fail := Roll(s.Faults.Seed, "load-error", seq) < s.Faults.LoadErrorRate
	slow := Roll(s.Faults.Seed, "load-latency", seq) < s.Faults.LatencyRate
	if fail {
		s.stats.LoadErrors++
	}
	if slow {
		s.stats.Delays++
	}
	s.mu.Unlock()
	if slow {
		s.sleep(s.Faults.Latency)
	}
	if fail {
		return nil, &InjectedError{Op: "load", Seq: seq}
	}
	return s.Inner.Load(spec)
}

// Save implements Store: an injected error fires before the inner write
// (the caller sees a failed, side-effect-free Save); a torn write fires
// after a successful inner write and still reports success.
func (s *FaultyStore[C]) Save(spec string, cells []C) error {
	s.mu.Lock()
	seq := s.stats.Saves
	s.stats.Saves++
	fail := Roll(s.Faults.Seed, "save-error", seq) < s.Faults.SaveErrorRate
	slow := Roll(s.Faults.Seed, "save-latency", seq) < s.Faults.LatencyRate
	torn := !fail && s.Tear != nil && Roll(s.Faults.Seed, "torn-write", seq) < s.Faults.TornRate
	if fail {
		s.stats.SaveErrors++
	}
	if slow {
		s.stats.Delays++
	}
	s.mu.Unlock()
	if slow {
		s.sleep(s.Faults.Latency)
	}
	if fail {
		return &InjectedError{Op: "save", Seq: seq}
	}
	if err := s.Inner.Save(spec, cells); err != nil {
		return err
	}
	if torn {
		s.mu.Lock()
		s.stats.Tears++
		s.mu.Unlock()
		if err := s.Tear(); err != nil {
			return fmt.Errorf("faults: tearing store state: %w", err)
		}
	}
	return nil
}

func (s *FaultyStore[C]) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if s.Sleep != nil {
		s.Sleep(d)
		return
	}
	time.Sleep(d)
}
