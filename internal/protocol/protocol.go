// Package protocol models the noiseless protocols Π the coding schemes
// simulate: synchronous protocols over a network G with a fixed,
// input-independent order of speaking (Section 2.1). Only message
// *content* may depend on inputs and observed history.
package protocol

import (
	"fmt"
	"sort"

	"mpic/internal/bitstring"
	"mpic/internal/channel"
	"mpic/internal/graph"
)

// Transmission is one scheduled symbol: From sends one bit to To.
type Transmission struct {
	From, To graph.Node
}

// Link returns the directed link the transmission uses.
func (t Transmission) Link() channel.Link { return channel.Link{From: t.From, To: t.To} }

// Schedule is the fixed speaking order of a protocol: for every round, the
// set of directed transmissions that occur. It is known to all parties
// and independent of inputs — the standing assumption of the paper.
type Schedule struct {
	rounds   [][]Transmission
	txRounds map[channel.Link][]int // per directed link: rounds of its transmissions, ascending
	total    int
}

// NewSchedule builds a schedule from per-round transmissions. Within each
// round, transmissions are normalized to a deterministic order.
func NewSchedule(rounds [][]Transmission) *Schedule {
	s := &Schedule{
		rounds:   rounds,
		txRounds: make(map[channel.Link][]int),
	}
	for r, txs := range rounds {
		sort.Slice(txs, func(i, j int) bool {
			if txs[i].From != txs[j].From {
				return txs[i].From < txs[j].From
			}
			return txs[i].To < txs[j].To
		})
		for _, tx := range txs {
			l := tx.Link()
			s.txRounds[l] = append(s.txRounds[l], r)
			s.total++
		}
	}
	return s
}

// Rounds returns the number of rounds.
func (s *Schedule) Rounds() int { return len(s.rounds) }

// At returns the transmissions of round r (owned by the schedule).
func (s *Schedule) At(r int) []Transmission { return s.rounds[r] }

// TotalBits returns the communication complexity CC(Π) in bits.
func (s *Schedule) TotalBits() int { return s.total }

// CountOn returns the total number of transmissions on a directed link.
func (s *Schedule) CountOn(l channel.Link) int { return len(s.txRounds[l]) }

// CountBefore returns how many transmissions occur on directed link l in
// rounds strictly before r — i.e. the sequence number the next
// transmission on l would get.
func (s *Schedule) CountBefore(l channel.Link, r int) int {
	rs := s.txRounds[l]
	return sort.SearchInts(rs, r)
}

// Validate checks every transmission uses an existing link of g.
func (s *Schedule) Validate(g *graph.Graph) error {
	for r, txs := range s.rounds {
		for _, tx := range txs {
			if !g.HasEdge(tx.From, tx.To) {
				return fmt.Errorf("protocol: round %d transmission %v uses a non-edge", r, tx)
			}
		}
	}
	return nil
}

// View is what one party has observed: its input plus, for each incident
// directed link, the symbols of that link's transmissions so far. A party
// sees its own sent bits on outgoing links and the (possibly corrupted)
// received symbols on incoming links; positions not yet observed read as
// Silence.
type View interface {
	// Self returns the observing party.
	Self() graph.Node
	// Input returns the party's private input.
	Input() []byte
	// Observed returns the symbol recorded for the seq-th transmission on
	// directed link l, or Silence if it is unknown. l must be incident to
	// Self.
	Observed(l channel.Link, seq int) bitstring.Symbol
}

// Protocol is a noiseless multiparty protocol with a fixed speaking order.
//
// SendBit must be a deterministic function of the view restricted to
// observations from rounds strictly before r — that is what lets the
// coding schemes re-simulate a chunk after a rewind.
type Protocol interface {
	// Name identifies the workload in reports.
	Name() string
	// Graph returns the topology Π runs over.
	Graph() *graph.Graph
	// Schedule returns the fixed speaking order.
	Schedule() *Schedule
	// Input returns party p's input.
	Input(p graph.Node) []byte
	// SendBit computes the bit tx.From sends for the seq-th transmission
	// on tx's link, occurring at round r.
	SendBit(v View, r int, tx Transmission, seq int) byte
	// Output computes the party's final output from its view.
	Output(v View) []byte
}
