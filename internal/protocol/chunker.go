package protocol

import (
	"mpic/internal/channel"
	"mpic/internal/graph"
)

// Slot is one transmission position on an undirected link within a chunk:
// the unit of transcript storage. Both endpoints enumerate the slots of a
// link in identical (schedule) order, so their transcripts are comparable
// position by position.
type Slot struct {
	// RelRound is the round offset from the chunk's start.
	RelRound int
	// Tx is the directed transmission occupying the slot.
	Tx Transmission
	// Seq is the per-directed-link sequence number of the transmission.
	Seq int
}

// ChunkSpec describes one chunk: a maximal run of consecutive rounds whose
// total communication does not exceed the chunk budget (Section 3.2).
type ChunkSpec struct {
	// Index is the 1-based chunk number (chunk numbers start at 1 so a
	// transcript containing any chunk differs from the empty string even
	// after zero-padding; see footnote 11).
	Index int
	// StartRound and EndRound delimit the Π rounds covered: [Start, End).
	StartRound, EndRound int
	// Bits is the total communication in the chunk.
	Bits int
	// LinkSlots lists each undirected link's slots in schedule order.
	LinkSlots map[graph.Edge][]Slot
	// roundIdx maps, per edge and relative round, the slot indices in each
	// direction: [0] is U→V (canonical), [1] is V→U; -1 means no slot.
	roundIdx map[graph.Edge]map[int][2]int
}

// buildRoundIndex populates roundIdx; called once at construction so the
// spec is safe for concurrent readers afterwards.
func (c *ChunkSpec) buildRoundIndex() {
	c.roundIdx = make(map[graph.Edge]map[int][2]int, len(c.LinkSlots))
	for e, slots := range c.LinkSlots {
		byRound := make(map[int][2]int)
		for i, s := range slots {
			entry, ok := byRound[s.RelRound]
			if !ok {
				entry = [2]int{-1, -1}
			}
			dir := 0
			if s.Tx.From == e.V {
				dir = 1
			}
			entry[dir] = i
			byRound[s.RelRound] = entry
		}
		c.roundIdx[e] = byRound
	}
}

// SlotAt returns the index into LinkSlots[e] of the transmission at
// relative round rel going from `from`, or -1 if none is scheduled.
func (c *ChunkSpec) SlotAt(e graph.Edge, rel int, from graph.Node) int {
	byRound, ok := c.roundIdx[e]
	if !ok {
		return -1
	}
	entry, ok := byRound[rel]
	if !ok {
		return -1
	}
	if from == e.U {
		return entry[0]
	}
	return entry[1]
}

// Rounds returns the number of Π rounds the chunk spans.
func (c *ChunkSpec) Rounds() int { return c.EndRound - c.StartRound }

// SeqLoc locates a transmission inside the chunked transcript space.
type SeqLoc struct {
	// Chunk is the 1-based chunk index.
	Chunk int
	// Pos is the slot position within the chunk's LinkSlots entry for the
	// transmission's undirected link.
	Pos int
}

// Chunking partitions a schedule into chunks of at most chunkBits bits,
// greedily packing whole rounds (the paper packs rounds until the next
// round would overflow the 5K budget).
type Chunking struct {
	// Sched is the underlying schedule.
	Sched *Schedule
	// ChunkBits is the per-chunk communication budget (the paper's 5K).
	ChunkBits int
	// Specs holds the real chunks; Specs[i] has Index i+1.
	Specs []*ChunkSpec
	// MaxChunkRounds is the longest chunk's round span, which fixes the
	// simulation phase length.
	MaxChunkRounds int
	// MaxSlotsPerLink is the largest number of slots any link has in any
	// chunk (including the dummy chunk), used to size hash inputs.
	MaxSlotsPerLink int

	g     *graph.Graph
	dummy *ChunkSpec
	locs  map[channel.Link][]SeqLoc
}

// NewChunking chunks the schedule of p into chunks of at most chunkBits
// bits each. chunkBits must be at least the largest single round's
// communication or that round becomes a chunk by itself.
func NewChunking(p Protocol, chunkBits int) *Chunking {
	sched := p.Schedule()
	g := p.Graph()
	c := &Chunking{
		Sched:     sched,
		ChunkBits: chunkBits,
		g:         g,
		locs:      make(map[channel.Link][]SeqLoc),
	}
	seq := make(map[channel.Link]int)
	var cur *ChunkSpec
	flush := func(end int) {
		if cur == nil {
			return
		}
		cur.EndRound = end
		c.Specs = append(c.Specs, cur)
		if cur.Rounds() > c.MaxChunkRounds {
			c.MaxChunkRounds = cur.Rounds()
		}
		for _, slots := range cur.LinkSlots {
			if len(slots) > c.MaxSlotsPerLink {
				c.MaxSlotsPerLink = len(slots)
			}
		}
		cur = nil
	}
	for r := 0; r < sched.Rounds(); r++ {
		bits := len(sched.At(r))
		if cur != nil && cur.Bits+bits > chunkBits {
			flush(r)
		}
		if cur == nil {
			cur = &ChunkSpec{
				Index:      len(c.Specs) + 1,
				StartRound: r,
				LinkSlots:  make(map[graph.Edge][]Slot),
			}
		}
		for _, tx := range sched.At(r) {
			l := tx.Link()
			e := graph.Edge{U: tx.From, V: tx.To}.Canonical()
			slot := Slot{RelRound: r - cur.StartRound, Tx: tx, Seq: seq[l]}
			c.locs[l] = append(c.locs[l], SeqLoc{Chunk: cur.Index, Pos: len(cur.LinkSlots[e])})
			cur.LinkSlots[e] = append(cur.LinkSlots[e], slot)
			seq[l]++
			cur.Bits++
		}
	}
	flush(sched.Rounds())
	for _, spec := range c.Specs {
		spec.buildRoundIndex()
	}

	// Dummy padding chunk (Section 3.2): one round in which every link
	// carries one bit in each direction, content fixed to zero. Used for
	// chunk indices past |Π| so the simulation can keep making progress
	// while stragglers catch up.
	dummy := &ChunkSpec{StartRound: 0, EndRound: 1, LinkSlots: make(map[graph.Edge][]Slot)}
	for _, e := range g.Edges() {
		dummy.LinkSlots[e] = []Slot{
			{RelRound: 0, Tx: Transmission{From: e.U, To: e.V}},
			{RelRound: 0, Tx: Transmission{From: e.V, To: e.U}},
		}
		dummy.Bits += 2
	}
	dummy.buildRoundIndex()
	c.dummy = dummy
	if c.MaxSlotsPerLink < 2 {
		c.MaxSlotsPerLink = 2
	}
	if c.MaxChunkRounds < 1 {
		c.MaxChunkRounds = 1
	}
	return c
}

// NumChunks returns |Π| in chunks (the real chunks, excluding padding).
func (c *Chunking) NumChunks() int { return len(c.Specs) }

// Spec returns the chunk spec for 1-based index i; indices past the real
// protocol return the dummy padding chunk (with Index set accordingly).
func (c *Chunking) Spec(i int) *ChunkSpec {
	if i >= 1 && i <= len(c.Specs) {
		return c.Specs[i-1]
	}
	d := *c.dummy
	d.Index = i
	return &d
}

// IsDummy reports whether chunk index i is padding.
func (c *Chunking) IsDummy(i int) bool { return i < 1 || i > len(c.Specs) }

// Locate maps a directed transmission (link, seq) to its chunk and slot
// position; ok is false if seq is out of range.
func (c *Chunking) Locate(l channel.Link, seq int) (SeqLoc, bool) {
	locs := c.locs[l]
	if seq < 0 || seq >= len(locs) {
		return SeqLoc{}, false
	}
	return locs[seq], true
}
