package protocol

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"

	"mpic/internal/channel"
	"mpic/internal/graph"
)

// prfBit derives a deterministic pseudo-random bit from its arguments; it
// gives workloads input-dependent but reproducible content.
func prfBit(parts ...uint64) byte {
	h := fnv.New64a()
	var buf [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(buf[:], p)
		h.Write(buf[:])
	}
	return byte(h.Sum64() & 1)
}

func inputDigest(in []byte) uint64 {
	h := fnv.New64a()
	h.Write(in)
	return h.Sum64()
}

// foldView digests every observation a party holds on its incident links,
// in schedule order; workloads use it as their output function so that a
// single corrupted surviving bit anywhere flips the output.
func foldView(v View, sched *Schedule, g *graph.Graph) []byte {
	h := fnv.New64a()
	h.Write(v.Input())
	var buf [8]byte
	self := v.Self()
	for _, w := range g.Neighbors(self) {
		for _, l := range []channel.Link{{From: self, To: w}, {From: w, To: self}} {
			n := sched.CountOn(l)
			for seq := 0; seq < n; seq++ {
				binary.LittleEndian.PutUint64(buf[:], uint64(v.Observed(l, seq)))
				h.Write(buf[:1])
			}
		}
	}
	out := make([]byte, 8)
	binary.LittleEndian.PutUint64(out, h.Sum64())
	return out
}

// lastObservedBit returns the most recent bit the party observed on
// directed link l strictly before round r (0 if none).
func lastObservedBit(v View, sched *Schedule, l channel.Link, r int) byte {
	seq := sched.CountBefore(l, r)
	if seq == 0 {
		return 0
	}
	return v.Observed(l, seq-1).Bit()
}

// Random is a generic worst-case workload: a pseudo-random sparse
// speaking schedule over an arbitrary topology, with content that chains
// each sent bit to the sender's latest observations, so any surviving
// corruption cascades into every later transmission of that party.
type Random struct {
	g      *graph.Graph
	sched  *Schedule
	inputs [][]byte
}

var _ Protocol = (*Random)(nil)

// NewRandom builds a Random workload with the given number of Π rounds
// and per-(round, directed link) speaking density in (0,1].
func NewRandom(g *graph.Graph, rounds int, density float64, seed int64, inputs [][]byte) *Random {
	rng := rand.New(rand.NewSource(seed))
	var links []channel.Link
	for _, e := range g.Edges() {
		links = append(links, channel.Link{From: e.U, To: e.V}, channel.Link{From: e.V, To: e.U})
	}
	sch := make([][]Transmission, rounds)
	for r := 0; r < rounds; r++ {
		for _, l := range links {
			if rng.Float64() < density {
				sch[r] = append(sch[r], Transmission{From: l.From, To: l.To})
			}
		}
		if len(sch[r]) == 0 {
			l := links[rng.Intn(len(links))]
			sch[r] = append(sch[r], Transmission{From: l.From, To: l.To})
		}
	}
	return &Random{g: g, sched: NewSchedule(sch), inputs: padInputs(inputs, g.N())}
}

// Name implements Protocol.
func (p *Random) Name() string { return "random" }

// Graph implements Protocol.
func (p *Random) Graph() *graph.Graph { return p.g }

// Schedule implements Protocol.
func (p *Random) Schedule() *Schedule { return p.sched }

// Input implements Protocol.
func (p *Random) Input(n graph.Node) []byte { return p.inputs[n] }

// SendBit implements Protocol: a PRF of (input, position) XOR the latest
// bit observed from the receiving party, which chains transcripts across
// the link in both directions.
func (p *Random) SendBit(v View, r int, tx Transmission, seq int) byte {
	prev := lastObservedBit(v, p.sched, channel.Link{From: tx.To, To: tx.From}, r)
	return prfBit(inputDigest(v.Input()), uint64(tx.To), uint64(seq)) ^ prev
}

// Output implements Protocol.
func (p *Random) Output(v View) []byte { return foldView(v, p.sched, p.g) }

// PipelinedLine is the paper's Section 1.2 motivating workload on the
// line topology: each block relays a bit from party 0 down the line, then
// the two far-end parties chatter back and forth. An early corruption
// makes all the expensive far-end chatter worthless — the scenario that
// motivates the flag-passing phase.
type PipelinedLine struct {
	g       *graph.Graph
	sched   *Schedule
	inputs  [][]byte
	blocks  int
	chatter int
}

var _ Protocol = (*PipelinedLine)(nil)

// NewPipelinedLine builds the workload with the given number of blocks
// and chatter messages per block.
func NewPipelinedLine(n, blocks, chatter int, inputs [][]byte) (*PipelinedLine, error) {
	if n < 3 {
		return nil, fmt.Errorf("protocol: pipelined line needs n >= 3, got %d", n)
	}
	g := graph.Line(n)
	var sch [][]Transmission
	for b := 0; b < blocks; b++ {
		for i := 0; i+1 < n; i++ {
			sch = append(sch, []Transmission{{From: graph.Node(i), To: graph.Node(i + 1)}})
		}
		for c := 0; c < chatter; c++ {
			if c%2 == 0 {
				sch = append(sch, []Transmission{{From: graph.Node(n - 1), To: graph.Node(n - 2)}})
			} else {
				sch = append(sch, []Transmission{{From: graph.Node(n - 2), To: graph.Node(n - 1)}})
			}
		}
	}
	return &PipelinedLine{
		g:       g,
		sched:   NewSchedule(sch),
		inputs:  padInputs(inputs, n),
		blocks:  blocks,
		chatter: chatter,
	}, nil
}

// Name implements Protocol.
func (p *PipelinedLine) Name() string { return "pipelined-line" }

// Graph implements Protocol.
func (p *PipelinedLine) Graph() *graph.Graph { return p.g }

// Schedule implements Protocol.
func (p *PipelinedLine) Schedule() *Schedule { return p.sched }

// Input implements Protocol.
func (p *PipelinedLine) Input(n graph.Node) []byte { return p.inputs[n] }

// SendBit implements Protocol. Each block spans (n-1) relay rounds then
// `chatter` chatter rounds, so the round position within the block
// determines the transmission's role.
func (p *PipelinedLine) SendBit(v View, r int, tx Transmission, seq int) byte {
	n := p.g.N()
	pos := r % ((n - 1) + p.chatter)
	self := v.Self()
	own := prfBit(inputDigest(v.Input()), uint64(seq), uint64(tx.To))
	if pos < n-1 {
		// Relay transmission i → i+1: XOR own input bit into what arrived
		// from the left (party 0 originates).
		if self == 0 {
			return own
		}
		fromLeft := lastObservedBit(v, p.sched, channel.Link{From: self - 1, To: self}, r)
		return fromLeft ^ own
	}
	// Far-end chatter: echo the latest bit seen from the peer, XOR a
	// per-step input bit.
	fromPeer := lastObservedBit(v, p.sched, channel.Link{From: tx.To, To: self}, r)
	return fromPeer ^ own
}

// Output implements Protocol.
func (p *PipelinedLine) Output(v View) []byte { return foldView(v, p.sched, p.g) }

// TreeSum computes the sum of all parties' integer inputs by repeated
// convergecast + broadcast epochs over a BFS spanning tree: the classic
// global-aggregation workload.
type TreeSum struct {
	g      *graph.Graph
	tree   *graph.SpanningTree
	sched  *Schedule
	inputs [][]byte
	epochs int
	width  int // accumulator bit width
}

var _ Protocol = (*TreeSum)(nil)

// NewTreeSum builds the workload: epochs rounds of summation of valueBits
// inputs over the BFS tree of g rooted at node 0.
func NewTreeSum(g *graph.Graph, epochs, valueBits int, inputs [][]byte) *TreeSum {
	tree := g.BFSTree(0)
	width := valueBits + bitsFor(g.N()) + 1
	var sch [][]Transmission
	for e := 0; e < epochs; e++ {
		// Convergecast: levels deepest-first; all nodes of a level send
		// their width-bit subtree sums in parallel, bit-serially.
		for lvl := tree.Depth; lvl >= 2; lvl-- {
			for b := 0; b < width; b++ {
				var txs []Transmission
				for v := 0; v < g.N(); v++ {
					if tree.Level[v] == lvl {
						txs = append(txs, Transmission{From: graph.Node(v), To: tree.Parent[v]})
					}
				}
				if len(txs) > 0 {
					sch = append(sch, txs)
				}
			}
		}
		// Broadcast: levels top-down.
		for lvl := 1; lvl < tree.Depth; lvl++ {
			for b := 0; b < width; b++ {
				var txs []Transmission
				for v := 0; v < g.N(); v++ {
					if tree.Level[v] == lvl {
						for _, c := range tree.Children[v] {
							txs = append(txs, Transmission{From: graph.Node(v), To: c})
						}
					}
				}
				if len(txs) > 0 {
					sch = append(sch, txs)
				}
			}
		}
	}
	return &TreeSum{
		g:      g,
		tree:   tree,
		sched:  NewSchedule(sch),
		inputs: padInputs(inputs, g.N()),
		epochs: epochs,
		width:  width,
	}
}

// Name implements Protocol.
func (p *TreeSum) Name() string { return "tree-sum" }

// Graph implements Protocol.
func (p *TreeSum) Graph() *graph.Graph { return p.g }

// Schedule implements Protocol.
func (p *TreeSum) Schedule() *Schedule { return p.sched }

// Input implements Protocol.
func (p *TreeSum) Input(n graph.Node) []byte { return p.inputs[n] }

// value decodes a party's input as an integer, bounded by valueBits.
func (p *TreeSum) value(in []byte) uint64 {
	var x uint64
	for i := 0; i < len(in) && i < 4; i++ {
		x |= uint64(in[i]) << uint(8*i)
	}
	return x % (1 << uint(p.width-bitsFor(p.g.N())-1))
}

// subtreeSum computes the sum of v's subtree in the given epoch from the
// child values the party has observed.
func (p *TreeSum) subtreeSum(v View, epoch int) uint64 {
	self := v.Self()
	sum := p.value(v.Input())
	for _, c := range p.tree.Children[self] {
		sum += p.readValue(v, channel.Link{From: c, To: self}, epoch)
	}
	return sum & ((1 << uint(p.width)) - 1)
}

// readValue decodes the width-bit value transmitted on l during epoch.
func (p *TreeSum) readValue(v View, l channel.Link, epoch int) uint64 {
	var x uint64
	for b := 0; b < p.width; b++ {
		x |= uint64(v.Observed(l, epoch*p.width+b).Bit()) << uint(b)
	}
	return x
}

// SendBit implements Protocol.
func (p *TreeSum) SendBit(v View, _ int, tx Transmission, seq int) byte {
	epoch := seq / p.width
	b := seq % p.width
	self := v.Self()
	if tx.To == p.tree.Parent[self] {
		return byte(p.subtreeSum(v, epoch) >> uint(b) & 1)
	}
	// Downward: root originates the total, others forward their parent's
	// broadcast.
	if self == p.tree.Root {
		return byte(p.subtreeSum(v, epoch) >> uint(b) & 1)
	}
	parentLink := channel.Link{From: p.tree.Parent[self], To: self}
	return v.Observed(parentLink, epoch*p.width+b).Bit()
}

// Output implements Protocol: the total from the final epoch (parties
// learn it from their parent's broadcast; the root computes it).
func (p *TreeSum) Output(v View) []byte {
	self := v.Self()
	last := p.epochs - 1
	var total uint64
	if self == p.tree.Root {
		total = p.subtreeSum(v, last)
	} else {
		total = p.readValue(v, channel.Link{From: p.tree.Parent[self], To: self}, last)
	}
	out := make([]byte, 8)
	binary.LittleEndian.PutUint64(out, total)
	return out
}

// TokenRing circulates a parity token around a ring for a number of laps;
// each hop XORs the holder's input parity into the token.
type TokenRing struct {
	g      *graph.Graph
	sched  *Schedule
	inputs [][]byte
}

var _ Protocol = (*TokenRing)(nil)

// NewTokenRing builds the workload on a ring of n >= 3 parties.
func NewTokenRing(n, laps int, inputs [][]byte) (*TokenRing, error) {
	if n < 3 {
		return nil, fmt.Errorf("protocol: token ring needs n >= 3, got %d", n)
	}
	g := graph.Ring(n)
	var sch [][]Transmission
	for r := 0; r < n*laps; r++ {
		from := graph.Node(r % n)
		to := graph.Node((r + 1) % n)
		sch = append(sch, []Transmission{{From: from, To: to}})
	}
	return &TokenRing{g: g, sched: NewSchedule(sch), inputs: padInputs(inputs, n)}, nil
}

// Name implements Protocol.
func (p *TokenRing) Name() string { return "token-ring" }

// Graph implements Protocol.
func (p *TokenRing) Graph() *graph.Graph { return p.g }

// Schedule implements Protocol.
func (p *TokenRing) Schedule() *Schedule { return p.sched }

// Input implements Protocol.
func (p *TokenRing) Input(n graph.Node) []byte { return p.inputs[n] }

// parityOf returns the parity of the party's input bytes.
func parityOf(in []byte) byte {
	var x byte
	for _, b := range in {
		x ^= b
	}
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	return x & 1
}

// SendBit implements Protocol.
func (p *TokenRing) SendBit(v View, r int, tx Transmission, _ int) byte {
	self := v.Self()
	n := p.g.N()
	prevNode := graph.Node((int(self) + n - 1) % n)
	token := lastObservedBit(v, p.sched, channel.Link{From: prevNode, To: self}, r)
	return token ^ parityOf(v.Input())
}

// Output implements Protocol.
func (p *TokenRing) Output(v View) []byte { return foldView(v, p.sched, p.g) }

// padInputs normalizes the input slice to n entries, deriving missing
// ones deterministically so workloads always have defined inputs.
func padInputs(inputs [][]byte, n int) [][]byte {
	out := make([][]byte, n)
	for i := 0; i < n; i++ {
		if i < len(inputs) && len(inputs[i]) > 0 {
			out[i] = inputs[i]
		} else {
			out[i] = []byte{byte(37*i + 11), byte(i)}
		}
	}
	return out
}

func bitsFor(n int) int {
	b := 0
	for v := n; v > 0; v >>= 1 {
		b++
	}
	return b
}

// DefaultInputs derives n deterministic pseudo-random inputs of the given
// byte length from a seed; experiments use it for reproducible workloads.
func DefaultInputs(n, bytes int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]byte, n)
	for i := range out {
		out[i] = make([]byte, bytes)
		rng.Read(out[i])
	}
	return out
}
