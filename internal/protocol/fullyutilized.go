package protocol

import (
	"mpic/internal/bitstring"
	"mpic/internal/channel"
	"mpic/internal/graph"
)

// FullyUtilized converts a protocol to the fully-utilized model used by
// RS94/HS16/ABE+16: every directed link carries a symbol every round.
// Rounds keep their original content on scheduled transmissions and send
// 0 everywhere else.
//
// The paper's Section 1 observes that this conversion can inflate the
// communication complexity by a factor of up to m, which is exactly why
// its schemes work in the relaxed (non-fully-utilized) model; experiment
// E-F11 measures the inflation. In the fully-utilized model insertions
// and deletions also collapse to substitutions and erasures, because a
// missing symbol at a round where one is always expected is evidence of
// noise.
type FullyUtilized struct {
	inner Protocol
	sched *Schedule
}

var _ Protocol = (*FullyUtilized)(nil)

// NewFullyUtilized wraps inner so that all links speak every round.
func NewFullyUtilized(inner Protocol) *FullyUtilized {
	g := inner.Graph()
	var all []Transmission
	for _, e := range g.Edges() {
		all = append(all,
			Transmission{From: e.U, To: e.V},
			Transmission{From: e.V, To: e.U})
	}
	rounds := make([][]Transmission, inner.Schedule().Rounds())
	for r := range rounds {
		txs := make([]Transmission, len(all))
		copy(txs, all)
		rounds[r] = txs
	}
	return &FullyUtilized{inner: inner, sched: NewSchedule(rounds)}
}

// Name implements Protocol.
func (p *FullyUtilized) Name() string { return p.inner.Name() + "+fully-utilized" }

// Graph implements Protocol.
func (p *FullyUtilized) Graph() *graph.Graph { return p.inner.Graph() }

// Schedule implements Protocol.
func (p *FullyUtilized) Schedule() *Schedule { return p.sched }

// Input implements Protocol.
func (p *FullyUtilized) Input(n graph.Node) []byte { return p.inner.Input(n) }

// innerSeq maps a fully-utilized transmission back to the inner
// protocol's sequence number on the same link, if the inner protocol
// scheduled one at this round.
func (p *FullyUtilized) innerTx(r int, tx Transmission) (int, bool) {
	for _, itx := range p.inner.Schedule().At(r) {
		if itx == tx {
			return p.inner.Schedule().CountBefore(tx.Link(), r), true
		}
	}
	return 0, false
}

// SendBit implements Protocol: scheduled inner transmissions keep their
// content; padding slots carry 0.
func (p *FullyUtilized) SendBit(v View, r int, tx Transmission, _ int) byte {
	if seq, ok := p.innerTx(r, tx); ok {
		return p.inner.SendBit(fuView{outer: v, p: p}, r, tx, seq)
	}
	return 0
}

// Output implements Protocol: the inner protocol's output over the
// projected view.
func (p *FullyUtilized) Output(v View) []byte {
	return p.inner.Output(fuView{outer: v, p: p})
}

// fuView projects a fully-utilized view back onto the inner protocol's
// sparse sequence numbering: inner seq i on link l lives at the
// fully-utilized seq equal to the round of the inner transmission (one
// slot per round per link in the fully-utilized schedule).
type fuView struct {
	outer View
	p     *FullyUtilized
}

var _ View = fuView{}

// Self implements View.
func (v fuView) Self() graph.Node { return v.outer.Self() }

// Input implements View.
func (v fuView) Input() []byte { return v.outer.Input() }

// Observed implements View.
func (v fuView) Observed(l channel.Link, seq int) bitstring.Symbol {
	rounds := v.p.inner.Schedule().txRounds[l]
	if seq < 0 || seq >= len(rounds) {
		return bitstring.Silence
	}
	// In the fully-utilized schedule, link l transmits exactly once per
	// round, so the outer sequence number equals the round number.
	return v.outer.Observed(l, rounds[seq])
}
