package protocol

import (
	"bytes"
	"testing"

	"mpic/internal/channel"
	"mpic/internal/graph"
)

func TestScheduleBasics(t *testing.T) {
	s := NewSchedule([][]Transmission{
		{{From: 0, To: 1}, {From: 1, To: 0}},
		{},
		{{From: 0, To: 1}},
	})
	if s.Rounds() != 3 {
		t.Errorf("Rounds() = %d, want 3", s.Rounds())
	}
	if s.TotalBits() != 3 {
		t.Errorf("TotalBits() = %d, want 3", s.TotalBits())
	}
	l := channel.Link{From: 0, To: 1}
	if s.CountOn(l) != 2 {
		t.Errorf("CountOn = %d, want 2", s.CountOn(l))
	}
	if s.CountBefore(l, 0) != 0 || s.CountBefore(l, 1) != 1 || s.CountBefore(l, 3) != 2 {
		t.Error("CountBefore wrong")
	}
}

func TestScheduleValidate(t *testing.T) {
	g := graph.Line(3)
	ok := NewSchedule([][]Transmission{{{From: 0, To: 1}}})
	if err := ok.Validate(g); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
	bad := NewSchedule([][]Transmission{{{From: 0, To: 2}}})
	if err := bad.Validate(g); err == nil {
		t.Error("non-edge transmission accepted")
	}
}

func TestMapView(t *testing.T) {
	v := NewMapView(1, []byte{42})
	l := channel.Link{From: 0, To: 1}
	v.Record(l, 1)
	v.Record(l, 0)
	if v.Self() != 1 || v.Input()[0] != 42 {
		t.Error("identity accessors wrong")
	}
	if v.Observed(l, 0) != 1 || v.Observed(l, 1) != 0 {
		t.Error("recorded observations wrong")
	}
	if v.Observed(l, 2) != 2 || v.Observed(l, -1) != 2 {
		t.Error("out-of-range must read Silence")
	}
}

func TestRunReferenceDeterministic(t *testing.T) {
	g := graph.Ring(5)
	p1 := NewRandom(g, 40, 0.4, 7, nil)
	p2 := NewRandom(g, 40, 0.4, 7, nil)
	r1 := RunReference(p1)
	r2 := RunReference(p2)
	for i := range r1.Outputs {
		if !bytes.Equal(r1.Outputs[i], r2.Outputs[i]) {
			t.Fatalf("outputs differ for party %d across identical runs", i)
		}
	}
}

func TestRandomScheduleNonEmptyRounds(t *testing.T) {
	g := graph.Line(4)
	p := NewRandom(g, 30, 0.05, 3, nil)
	for r := 0; r < p.Schedule().Rounds(); r++ {
		if len(p.Schedule().At(r)) == 0 {
			t.Fatalf("round %d has no transmissions", r)
		}
	}
	if err := p.Schedule().Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestRandomInputSensitivity(t *testing.T) {
	g := graph.Line(4)
	in1 := DefaultInputs(4, 4, 1)
	in2 := DefaultInputs(4, 4, 2)
	p1 := NewRandom(g, 40, 0.5, 9, in1)
	p2 := NewRandom(g, 40, 0.5, 9, in2)
	r1 := RunReference(p1)
	r2 := RunReference(p2)
	same := 0
	for i := range r1.Outputs {
		if bytes.Equal(r1.Outputs[i], r2.Outputs[i]) {
			same++
		}
	}
	if same == len(r1.Outputs) {
		t.Error("outputs identical for different inputs: content not input-dependent")
	}
}

func TestTreeSumComputesSum(t *testing.T) {
	g := graph.BalancedTree(7, 2)
	inputs := [][]byte{{5}, {1}, {2}, {3}, {4}, {6}, {7}}
	p := NewTreeSum(g, 2, 8, inputs)
	ref := RunReference(p)
	var want uint64 = 5 + 1 + 2 + 3 + 4 + 6 + 7
	for i, out := range ref.Outputs {
		var got uint64
		for j := 0; j < 8 && j < len(out); j++ {
			got |= uint64(out[j]) << uint(8*j)
		}
		if got != want {
			t.Fatalf("party %d output %d, want %d", i, got, want)
		}
	}
}

func TestTreeSumOnNonTreeGraph(t *testing.T) {
	g := graph.Clique(5)
	p := NewTreeSum(g, 1, 8, [][]byte{{1}, {1}, {1}, {1}, {1}})
	ref := RunReference(p)
	for i, out := range ref.Outputs {
		if out[0] != 5 {
			t.Fatalf("party %d sum = %d, want 5", i, out[0])
		}
	}
}

func TestTokenRingAgreesAcrossParties(t *testing.T) {
	p, err := NewTokenRing(5, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Schedule().Validate(p.Graph()); err != nil {
		t.Fatal(err)
	}
	ref := RunReference(p)
	if len(ref.Outputs) != 5 {
		t.Fatal("wrong party count")
	}
	// Every round exactly one transmission.
	if p.Schedule().TotalBits() != 15 {
		t.Errorf("TotalBits = %d, want 15", p.Schedule().TotalBits())
	}
}

func TestTokenRingRejectsTiny(t *testing.T) {
	if _, err := NewTokenRing(2, 1, nil); err == nil {
		t.Error("n=2 accepted")
	}
}

func TestPipelinedLine(t *testing.T) {
	p, err := NewPipelinedLine(5, 3, 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Schedule().Validate(p.Graph()); err != nil {
		t.Fatal(err)
	}
	// Per block: n-1 relays + chatter bits.
	want := 3 * ((5 - 1) + 6)
	if p.Schedule().TotalBits() != want {
		t.Errorf("TotalBits = %d, want %d", p.Schedule().TotalBits(), want)
	}
	RunReference(p) // must not panic
	if _, err := NewPipelinedLine(2, 1, 1, nil); err == nil {
		t.Error("n=2 accepted")
	}
}

func TestChunkingCoversSchedule(t *testing.T) {
	g := graph.Line(4)
	p := NewRandom(g, 50, 0.6, 5, nil)
	ch := NewChunking(p, 15)
	total := 0
	for i, spec := range ch.Specs {
		if spec.Index != i+1 {
			t.Fatalf("chunk %d has Index %d", i, spec.Index)
		}
		if spec.Bits > 15 && spec.Rounds() > 1 {
			t.Fatalf("chunk %d overflows budget with %d bits", i, spec.Bits)
		}
		total += spec.Bits
	}
	if total != p.Schedule().TotalBits() {
		t.Fatalf("chunks cover %d bits, schedule has %d", total, p.Schedule().TotalBits())
	}
	// Chunks tile the rounds contiguously.
	if ch.Specs[0].StartRound != 0 {
		t.Error("first chunk does not start at round 0")
	}
	for i := 1; i < len(ch.Specs); i++ {
		if ch.Specs[i].StartRound != ch.Specs[i-1].EndRound {
			t.Fatal("chunks not contiguous")
		}
	}
	if ch.Specs[len(ch.Specs)-1].EndRound != p.Schedule().Rounds() {
		t.Error("last chunk does not end at the final round")
	}
}

func TestChunkingLocate(t *testing.T) {
	g := graph.Line(3)
	p := NewRandom(g, 30, 0.7, 2, nil)
	ch := NewChunking(p, 10)
	// Walk the schedule and verify Locate round-trips through LinkSlots.
	seq := map[channel.Link]int{}
	for r := 0; r < p.Schedule().Rounds(); r++ {
		for _, tx := range p.Schedule().At(r) {
			l := tx.Link()
			loc, ok := ch.Locate(l, seq[l])
			if !ok {
				t.Fatalf("Locate failed for %v seq %d", l, seq[l])
			}
			spec := ch.Spec(loc.Chunk)
			e := graph.Edge{U: tx.From, V: tx.To}.Canonical()
			slot := spec.LinkSlots[e][loc.Pos]
			if slot.Tx != tx || slot.Seq != seq[l] {
				t.Fatalf("Locate mismatch for %v seq %d: got %+v", l, seq[l], slot)
			}
			if spec.StartRound+slot.RelRound != r {
				t.Fatalf("round mismatch: %d vs %d", spec.StartRound+slot.RelRound, r)
			}
			seq[l]++
		}
	}
	if _, ok := ch.Locate(channel.Link{From: 0, To: 1}, 9999); ok {
		t.Error("Locate accepted out-of-range seq")
	}
}

func TestChunkingDummySpec(t *testing.T) {
	g := graph.Line(3)
	p := NewRandom(g, 20, 0.5, 2, nil)
	ch := NewChunking(p, 10)
	n := ch.NumChunks()
	d := ch.Spec(n + 5)
	if !ch.IsDummy(n + 5) {
		t.Error("IsDummy false for padding index")
	}
	if ch.IsDummy(1) {
		t.Error("IsDummy true for real chunk")
	}
	if d.Index != n+5 {
		t.Errorf("dummy Index = %d, want %d", d.Index, n+5)
	}
	if d.Bits != 2*g.M() {
		t.Errorf("dummy Bits = %d, want %d", d.Bits, 2*g.M())
	}
	for _, e := range g.Edges() {
		if len(d.LinkSlots[e]) != 2 {
			t.Fatal("dummy chunk must have one slot per direction per link")
		}
	}
}

func TestSlotAt(t *testing.T) {
	g := graph.Line(3)
	p := NewRandom(g, 30, 0.7, 2, nil)
	ch := NewChunking(p, 10)
	for _, spec := range ch.Specs {
		for e, slots := range spec.LinkSlots {
			for i, s := range slots {
				if got := spec.SlotAt(e, s.RelRound, s.Tx.From); got != i {
					t.Fatalf("SlotAt(%v,%d,%d) = %d, want %d", e, s.RelRound, s.Tx.From, got, i)
				}
			}
		}
		if spec.SlotAt(graph.Edge{U: 0, V: 1}, 9999, 0) != -1 {
			t.Fatal("SlotAt must return -1 for unscheduled rounds")
		}
	}
}

func TestPadInputs(t *testing.T) {
	in := padInputs([][]byte{{1}, nil}, 3)
	if len(in) != 3 {
		t.Fatal("wrong length")
	}
	if in[0][0] != 1 {
		t.Error("provided input overwritten")
	}
	if len(in[1]) == 0 || len(in[2]) == 0 {
		t.Error("missing inputs not derived")
	}
}

func TestDefaultInputsDeterministic(t *testing.T) {
	a := DefaultInputs(3, 4, 9)
	b := DefaultInputs(3, 4, 9)
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatal("DefaultInputs not deterministic")
		}
	}
}
