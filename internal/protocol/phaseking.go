package protocol

import (
	"mpic/internal/channel"
	"mpic/internal/graph"
)

// PhaseKing is the classic phase-king agreement pattern over a clique:
// in each phase every party broadcasts its current bit, counts the
// votes, and — unless its majority was overwhelming — adopts the bit the
// phase's king broadcasts. After `phases` ≥ 1 phases all parties hold a
// common bit. As a workload it exercises dense all-to-all rounds
// followed by sparse one-to-all rounds, with content that depends on
// everything received so far — the opposite communication shape from the
// line workloads.
type PhaseKing struct {
	g      *graph.Graph
	sched  *Schedule
	inputs [][]byte
	phases int
}

var _ Protocol = (*PhaseKing)(nil)

// NewPhaseKing builds the workload on a clique of n ≥ 3 parties.
func NewPhaseKing(n, phases int, inputs [][]byte) *PhaseKing {
	g := graph.Clique(n)
	var sch [][]Transmission
	for ph := 0; ph < phases; ph++ {
		// Vote round: everyone tells everyone its current bit.
		var all []Transmission
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j {
					all = append(all, Transmission{From: graph.Node(i), To: graph.Node(j)})
				}
			}
		}
		sch = append(sch, all)
		// King round: party (ph mod n) broadcasts.
		king := graph.Node(ph % n)
		var kb []Transmission
		for j := 0; j < n; j++ {
			if graph.Node(j) != king {
				kb = append(kb, Transmission{From: king, To: graph.Node(j)})
			}
		}
		sch = append(sch, kb)
	}
	return &PhaseKing{g: g, sched: NewSchedule(sch), inputs: padInputs(inputs, n), phases: phases}
}

// Name implements Protocol.
func (p *PhaseKing) Name() string { return "phase-king" }

// Graph implements Protocol.
func (p *PhaseKing) Graph() *graph.Graph { return p.g }

// Schedule implements Protocol.
func (p *PhaseKing) Schedule() *Schedule { return p.sched }

// Input implements Protocol.
func (p *PhaseKing) Input(n graph.Node) []byte { return p.inputs[n] }

// valueAt replays the party's state machine from its observations: its
// bit entering phase `upTo` (0 = initial input parity).
func (p *PhaseKing) valueAt(v View, upTo int) byte {
	n := p.g.N()
	self := v.Self()
	val := parityOf(v.Input())
	for ph := 0; ph < upTo; ph++ {
		// Count votes observed in phase ph's vote round (own bit counts).
		ones := int(val)
		for j := 0; j < n; j++ {
			if graph.Node(j) == self {
				continue
			}
			if p.voteOf(v, graph.Node(j), ph) == 1 {
				ones++
			}
		}
		maj := byte(0)
		if 2*ones > n {
			maj = 1
		}
		count := ones
		if maj == 0 {
			count = n - ones
		}
		// Strong majority keeps its own decision; otherwise follow the
		// king.
		if 3*count > 2*n {
			val = maj
			continue
		}
		king := graph.Node(ph % n)
		if king == self {
			val = maj
		} else {
			val = p.kingBitOf(v, king, ph)
		}
	}
	return val
}

// voteOf reads the bit party j sent to self in phase ph's vote round.
func (p *PhaseKing) voteOf(v View, j graph.Node, ph int) byte {
	// Link j→self carries one vote per phase, plus king broadcasts in the
	// phases where j was king (which come after the vote in the same
	// phase). Compute the sequence index by counting.
	seq := 0
	n := p.g.N()
	for q := 0; q < ph; q++ {
		seq++ // vote of phase q
		if graph.Node(q%n) == j {
			seq++ // king broadcast of phase q
		}
	}
	return v.Observed(channel.Link{From: j, To: v.Self()}, seq).Bit()
}

// kingBitOf reads the king's broadcast to self in phase ph.
func (p *PhaseKing) kingBitOf(v View, king graph.Node, ph int) byte {
	n := p.g.N()
	seq := 0
	for q := 0; q <= ph; q++ {
		seq++ // vote of phase q
		if q < ph && graph.Node(q%n) == king {
			seq++
		}
	}
	// seq now indexes the king broadcast of phase ph on link king→self.
	return v.Observed(channel.Link{From: king, To: v.Self()}, seq).Bit()
}

// SendBit implements Protocol.
func (p *PhaseKing) SendBit(v View, r int, tx Transmission, _ int) byte {
	ph := r / 2
	if r%2 == 0 {
		// Vote round: current value entering this phase.
		return p.valueAt(v, ph)
	}
	// King round: the king sends its updated majority for this phase.
	return p.kingDecision(v, ph)
}

// kingDecision is the king's freshly computed majority in phase ph.
func (p *PhaseKing) kingDecision(v View, ph int) byte {
	n := p.g.N()
	self := v.Self()
	val := p.valueAt(v, ph)
	ones := int(val)
	for j := 0; j < n; j++ {
		if graph.Node(j) == self {
			continue
		}
		if p.voteOf(v, graph.Node(j), ph) == 1 {
			ones++
		}
	}
	if 2*ones > n {
		return 1
	}
	return 0
}

// Output implements Protocol: the party's bit after the last phase.
func (p *PhaseKing) Output(v View) []byte {
	return []byte{p.valueAt(v, p.phases)}
}
