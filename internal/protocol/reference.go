package protocol

import (
	"mpic/internal/bitstring"
	"mpic/internal/channel"
	"mpic/internal/graph"
)

// MapView is a concrete View backed by per-link symbol slices. It is used
// for noiseless reference executions and in tests.
type MapView struct {
	self  graph.Node
	input []byte
	obs   map[channel.Link][]bitstring.Symbol
}

// NewMapView returns an empty view for party self with the given input.
func NewMapView(self graph.Node, input []byte) *MapView {
	return &MapView{self: self, input: input, obs: make(map[channel.Link][]bitstring.Symbol)}
}

// Self implements View.
func (v *MapView) Self() graph.Node { return v.self }

// Input implements View.
func (v *MapView) Input() []byte { return v.input }

// Observed implements View.
func (v *MapView) Observed(l channel.Link, seq int) bitstring.Symbol {
	syms := v.obs[l]
	if seq < 0 || seq >= len(syms) {
		return bitstring.Silence
	}
	return syms[seq]
}

// Record appends an observation for directed link l.
func (v *MapView) Record(l channel.Link, s bitstring.Symbol) {
	v.obs[l] = append(v.obs[l], s)
}

// Reference is the result of a noiseless execution of Π.
type Reference struct {
	// Outputs holds each party's output.
	Outputs [][]byte
	// LinkBits holds, per directed link, the bits transmitted in schedule
	// order.
	LinkBits map[channel.Link][]byte
	// Views holds each party's complete noiseless view.
	Views []*MapView
}

// RunReference executes Π over a noiseless network and returns every
// party's view and output — the ground truth the coded simulations are
// judged against.
func RunReference(p Protocol) *Reference {
	g := p.Graph()
	sched := p.Schedule()
	views := make([]*MapView, g.N())
	for i := 0; i < g.N(); i++ {
		views[i] = NewMapView(graph.Node(i), p.Input(graph.Node(i)))
	}
	ref := &Reference{
		LinkBits: make(map[channel.Link][]byte),
		Views:    views,
	}
	seq := make(map[channel.Link]int)
	for r := 0; r < sched.Rounds(); r++ {
		txs := sched.At(r)
		// Synchronous semantics: compute all of this round's bits from
		// strictly earlier observations, then commit.
		bits := make([]byte, len(txs))
		for i, tx := range txs {
			bits[i] = p.SendBit(views[tx.From], r, tx, seq[tx.Link()]) & 1
			seq[tx.Link()]++
		}
		for i, tx := range txs {
			l := tx.Link()
			sym := bitstring.SymbolFromBit(bits[i])
			views[tx.From].Record(l, sym)
			views[tx.To].Record(l, sym)
			ref.LinkBits[l] = append(ref.LinkBits[l], bits[i])
		}
	}
	ref.Outputs = make([][]byte, g.N())
	for i := 0; i < g.N(); i++ {
		ref.Outputs[i] = p.Output(views[i])
	}
	return ref
}
