package protocol

import (
	"bytes"
	"testing"
	"testing/quick"

	"mpic/internal/graph"
)

func TestPhaseKingAgreement(t *testing.T) {
	for _, n := range []int{3, 4, 5, 7} {
		p := NewPhaseKing(n, n, DefaultInputs(n, 4, int64(n)))
		ref := RunReference(p)
		first := ref.Outputs[0]
		if len(first) != 1 {
			t.Fatalf("n=%d: output width %d, want 1", n, len(first))
		}
		for i, out := range ref.Outputs {
			if !bytes.Equal(out, first) {
				t.Fatalf("n=%d: party %d decided %v, party 0 decided %v", n, i, out, first)
			}
		}
	}
}

func TestPhaseKingUnanimityPreserved(t *testing.T) {
	// If all parties start with the same bit, the decision must be that
	// bit (validity).
	n := 5
	ones := make([][]byte, n)
	zeros := make([][]byte, n)
	for i := range ones {
		ones[i] = []byte{1} // parity 1
		zeros[i] = []byte{0}
	}
	if got := RunReference(NewPhaseKing(n, n, ones)).Outputs[0][0]; got != 1 {
		t.Errorf("unanimous 1 decided %d", got)
	}
	if got := RunReference(NewPhaseKing(n, n, zeros)).Outputs[0][0]; got != 0 {
		t.Errorf("unanimous 0 decided %d", got)
	}
}

// Property: phase king always reaches agreement regardless of inputs.
func TestPhaseKingAgreementProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%5 + 3
		p := NewPhaseKing(n, n, DefaultInputs(n, 3, seed))
		ref := RunReference(p)
		for _, out := range ref.Outputs {
			if !bytes.Equal(out, ref.Outputs[0]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPhaseKingScheduleShape(t *testing.T) {
	n, phases := 4, 3
	p := NewPhaseKing(n, phases, nil)
	if p.Schedule().Rounds() != 2*phases {
		t.Fatalf("rounds = %d, want %d", p.Schedule().Rounds(), 2*phases)
	}
	want := phases * (n*(n-1) + (n - 1))
	if p.Schedule().TotalBits() != want {
		t.Fatalf("TotalBits = %d, want %d", p.Schedule().TotalBits(), want)
	}
	if err := p.Schedule().Validate(p.Graph()); err != nil {
		t.Fatal(err)
	}
}

func TestFullyUtilizedSchedule(t *testing.T) {
	g := graph.Line(4)
	inner := NewRandom(g, 20, 0.3, 1, nil)
	fu := NewFullyUtilized(inner)
	if fu.Schedule().Rounds() != inner.Schedule().Rounds() {
		t.Fatal("round count changed")
	}
	want := inner.Schedule().Rounds() * 2 * g.M()
	if fu.Schedule().TotalBits() != want {
		t.Fatalf("TotalBits = %d, want %d (every link both ways every round)", fu.Schedule().TotalBits(), want)
	}
	if err := fu.Schedule().Validate(g); err != nil {
		t.Fatal(err)
	}
}

// TestFullyUtilizedPreservesSemantics: the wrapped protocol computes the
// same outputs as the original.
func TestFullyUtilizedPreservesSemantics(t *testing.T) {
	g := graph.Ring(4)
	inner := NewRandom(g, 25, 0.4, 9, DefaultInputs(4, 4, 9))
	fu := NewFullyUtilized(inner)
	refInner := RunReference(inner)
	refFU := RunReference(fu)
	for i := range refInner.Outputs {
		if !bytes.Equal(refInner.Outputs[i], refFU.Outputs[i]) {
			t.Fatalf("party %d: fully-utilized output differs from original", i)
		}
	}
	if fu.Name() == inner.Name() {
		t.Error("wrapper should rename the protocol")
	}
	if !bytes.Equal(fu.Input(1), inner.Input(1)) {
		t.Error("inputs must pass through")
	}
}

// TestFullyUtilizedInflation: on sparse protocols the conversion costs
// close to a factor of 2m/(avg transmissions per round) — the Section 1
// observation that motivates the relaxed model.
func TestFullyUtilizedInflation(t *testing.T) {
	ring := mustTokenRing(t, 8, 3) // ring of 8: m = 8, 1 bit per round
	fuRing := NewFullyUtilized(ring)
	innerBits := ring.Schedule().TotalBits()
	fuBits := fuRing.Schedule().TotalBits()
	// Token ring sends 1 bit per round; fully-utilized sends 2m = 16.
	if fuBits != 16*innerBits {
		t.Fatalf("inflation = %d/%d, want factor 16", fuBits, innerBits)
	}
}

func mustTokenRing(t *testing.T, n, laps int) *TokenRing {
	t.Helper()
	p, err := NewTokenRing(n, laps, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
