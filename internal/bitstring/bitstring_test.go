package bitstring

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitVecAppendGet(t *testing.T) {
	tests := []struct {
		name string
		bits []byte
	}{
		{name: "empty", bits: nil},
		{name: "single zero", bits: []byte{0}},
		{name: "single one", bits: []byte{1}},
		{name: "byte boundary", bits: []byte{1, 0, 1, 1, 0, 0, 1, 0}},
		{name: "word boundary", bits: pattern(64)},
		{name: "across words", bits: pattern(130)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			v := NewBitVec(0)
			for _, b := range tt.bits {
				v.Append(b)
			}
			if v.Len() != len(tt.bits) {
				t.Fatalf("Len() = %d, want %d", v.Len(), len(tt.bits))
			}
			for i, b := range tt.bits {
				if got := v.Get(i); got != b {
					t.Errorf("Get(%d) = %d, want %d", i, got, b)
				}
			}
		})
	}
}

func pattern(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte((i * 7 / 3) & 1)
	}
	return out
}

func TestBitVecAppendUint(t *testing.T) {
	v := NewBitVec(0)
	v.AppendUint(0b1011, 4)
	want := []byte{1, 1, 0, 1} // least-significant first
	for i, b := range want {
		if v.Get(i) != b {
			t.Errorf("bit %d = %d, want %d", i, v.Get(i), b)
		}
	}
	if v.Len() != 4 {
		t.Fatalf("Len() = %d, want 4", v.Len())
	}
}

func TestBitVecTruncate(t *testing.T) {
	v := FromBits(pattern(100))
	v.Truncate(37)
	if v.Len() != 37 {
		t.Fatalf("Len() = %d, want 37", v.Len())
	}
	for i := 0; i < 37; i++ {
		if v.Get(i) != pattern(100)[i] {
			t.Fatalf("bit %d changed by truncate", i)
		}
	}
	// Appending after truncate must not resurrect stale bits.
	v.Append(0)
	if v.Get(37) != 0 {
		t.Error("stale bit visible after truncate+append")
	}
}

func TestBitVecTruncatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on truncate beyond length")
		}
	}()
	v := FromBits([]byte{1, 0})
	v.Truncate(3)
}

func TestBitVecGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range Get")
		}
	}()
	v := FromBits([]byte{1})
	v.Get(1)
}

func TestBitVecEqualClone(t *testing.T) {
	a := FromBits(pattern(77))
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal to original")
	}
	b.Append(1)
	if a.Equal(b) {
		t.Fatal("length-differing vectors compare equal")
	}
	c := a.Clone()
	c.Truncate(76)
	c.Append(1 - a.Get(76))
	if a.Equal(c) {
		t.Fatal("content-differing vectors compare equal")
	}
}

func TestBitVecWordMasksTail(t *testing.T) {
	v := NewBitVec(0)
	for i := 0; i < 70; i++ {
		v.Append(1)
	}
	v.Truncate(65)
	if got := v.Word(1); got != 1 {
		t.Fatalf("Word(1) = %#x, want 1 (tail must be masked)", got)
	}
	if got := v.Word(5); got != 0 {
		t.Fatalf("Word(5) = %#x, want 0 for out-of-range word", got)
	}
}

func TestBitVecString(t *testing.T) {
	v := FromBits([]byte{0, 1, 1, 0})
	if got := v.String(); got != "0110" {
		t.Fatalf("String() = %q, want %q", got, "0110")
	}
}

// Property: truncate(append-many) round trips.
func TestBitVecTruncateProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, cutRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%200 + 1
		bits := make([]byte, n)
		for i := range bits {
			bits[i] = byte(rng.Intn(2))
		}
		cut := int(cutRaw) % (n + 1)
		v := FromBits(bits)
		v.Truncate(cut)
		if v.Len() != cut {
			return false
		}
		for i := 0; i < cut; i++ {
			if v.Get(i) != bits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSymbolAdd(t *testing.T) {
	tests := []struct {
		s    Symbol
		e    uint8
		want Symbol
	}{
		{Sym0, 0, Sym0},
		{Sym1, 0, Sym1},
		{Silence, 0, Silence},
		{Sym0, 1, Sym1},    // substitution
		{Sym1, 1, Silence}, // deletion
		{Silence, 1, Sym0}, // insertion
		{Sym0, 2, Silence}, // deletion
		{Sym1, 2, Sym0},    // substitution
		{Silence, 2, Sym1}, // insertion
	}
	for _, tt := range tests {
		if got := tt.s.Add(tt.e); got != tt.want {
			t.Errorf("%v.Add(%d) = %v, want %v", tt.s, tt.e, got, tt.want)
		}
	}
}

// Property: Add is a bijection for each e, and Add(0) is identity.
func TestSymbolAddProperty(t *testing.T) {
	for e := uint8(0); e < 3; e++ {
		seen := map[Symbol]bool{}
		for s := Symbol(0); s < 3; s++ {
			r := s.Add(e)
			if seen[r] {
				t.Fatalf("Add(%d) not a bijection", e)
			}
			seen[r] = true
			if e == 0 && r != s {
				t.Fatalf("Add(0) changed %v to %v", s, r)
			}
		}
	}
}

func TestSymbolHelpers(t *testing.T) {
	if !Sym0.IsBit() || !Sym1.IsBit() || Silence.IsBit() {
		t.Error("IsBit misclassifies")
	}
	if Sym1.Bit() != 1 || Sym0.Bit() != 0 || Silence.Bit() != 0 {
		t.Error("Bit() wrong")
	}
	if SymbolFromBit(1) != Sym1 || SymbolFromBit(0) != Sym0 {
		t.Error("SymbolFromBit wrong")
	}
	if Silence.String() != "*" || Sym0.String() != "0" || Sym1.String() != "1" {
		t.Error("String() wrong")
	}
	if Symbol(9).String() != "?" {
		t.Error("String() on invalid symbol")
	}
}

func TestAppendSymbol(t *testing.T) {
	v := NewBitVec(0)
	v.AppendSymbol(Silence) // 2 = binary 10, LSB first: 0,1
	if v.Len() != 2 || v.Get(0) != 0 || v.Get(1) != 1 {
		t.Fatalf("AppendSymbol(Silence) produced %s", v.String())
	}
}

// TestAppendUintMatchesBitAppend cross-checks the word-level AppendUint
// against the bit-at-a-time definition at every starting alignment.
func TestAppendUintMatchesBitAppend(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		pre := rng.Intn(130)
		width := rng.Intn(80)
		v := rng.Uint64()
		fast := NewBitVec(0)
		slow := NewBitVec(0)
		for i := 0; i < pre; i++ {
			bit := byte(rng.Intn(2))
			fast.Append(bit)
			slow.Append(bit)
		}
		fast.AppendUint(v, width)
		for j := 0; j < width; j++ {
			slow.Append(byte(v >> uint(j) & 1))
		}
		if !fast.Equal(slow) {
			t.Fatalf("trial %d: pre=%d width=%d v=%#x: word-level AppendUint diverges", trial, pre, width, v)
		}
		// The raw-words invariant: bits at positions >= Len() are zero.
		for i, w := range fast.RawWords() {
			if w != fast.Word(i) {
				t.Fatalf("trial %d: raw word %d has bits beyond Len()", trial, i)
			}
		}
	}
}

// TestFromBitsMatchesAppend cross-checks the word-packing FromBits.
func TestFromBitsMatchesAppend(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 200} {
		bits := make([]byte, n)
		for i := range bits {
			bits[i] = byte(rng.Intn(2))
		}
		got := FromBits(bits)
		want := NewBitVec(n)
		for _, b := range bits {
			want.Append(b)
		}
		if !got.Equal(want) {
			t.Fatalf("FromBits(%d bits) diverges from Append", n)
		}
	}
}

// TestRawWordsAfterTruncate checks the zero-tail invariant survives
// truncation followed by regrowth.
func TestRawWordsAfterTruncate(t *testing.T) {
	v := NewBitVec(0)
	for i := 0; i < 130; i++ {
		v.Append(1)
	}
	v.Truncate(70)
	v.AppendUint(0xffffffffffffffff, 10)
	for i, w := range v.RawWords() {
		if w != v.Word(i) {
			t.Fatalf("raw word %d has bits beyond Len() after truncate+append", i)
		}
	}
	if v.Len() != 80 {
		t.Fatalf("Len() = %d, want 80", v.Len())
	}
}
