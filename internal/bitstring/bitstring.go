// Package bitstring provides compact bit vectors and the ternary channel
// alphabet used throughout the interactive-coding simulator.
//
// The paper's channel alphabet is {0, 1, ∗} where ∗ means "no message"
// (silence). Transcripts are ternary strings which are hashed after the
// natural 2-bits-per-symbol binary conversion (paper, Section 2.3).
package bitstring

import (
	"fmt"
	"strings"
)

// BitVec is an append-only compact vector of bits.
//
// The zero value is an empty vector ready for use.
type BitVec struct {
	words []uint64
	n     int
	// gen counts mutations (Append, AppendUint, Truncate). Derived
	// structures that cache per-prefix state (the incremental hash
	// checkpoints) compare generations to detect that the vector changed
	// underneath them, instead of trusting callers to report every
	// mutation.
	gen uint64
	// wms are the attached truncation watermarks; Truncate lowers each
	// one to the smallest length the vector has had since the observer
	// last synced. Appends never lower a watermark: bits below an
	// existing length are immutable under append.
	wms []*Watermark
}

// Gen returns the mutation generation: it changes (strictly increases)
// whenever the vector is mutated. Equal generations imply the vector —
// length and content — is unchanged.
func (b *BitVec) Gen() uint64 { return b.gen }

// Watermark tracks, for one observer, the minimum length its BitVec has
// had since the observer last called Take. Cached prefix state (hash
// checkpoints, partial accumulators) stays valid exactly up to that
// minimum: bits below it were never discarded, while anything above may
// have been truncated and rewritten.
type Watermark struct {
	b   *BitVec
	low int
}

// AttachWatermark registers and returns a new truncation watermark,
// initialized to the current length. The watermark stays attached for the
// life of the vector; attaching is O(1) and each Truncate updates every
// attached watermark (observer counts are small — one per derived cache).
func (b *BitVec) AttachWatermark() *Watermark {
	w := &Watermark{b: b, low: b.n}
	b.wms = append(b.wms, w)
	return w
}

// Take returns the minimum length the attached vector has had since the
// previous Take (or since AttachWatermark), and resets the watermark to
// the current length. A return value equal to the observer's last synced
// length means no truncation touched the observer's prefix.
func (w *Watermark) Take() int {
	low := w.low
	w.low = w.b.n
	return low
}

// NewBitVec returns an empty bit vector with capacity for n bits.
func NewBitVec(n int) *BitVec {
	if n < 0 {
		n = 0
	}
	return &BitVec{words: make([]uint64, 0, (n+63)/64)}
}

// Len returns the number of bits stored.
func (b *BitVec) Len() int { return b.n }

// Append adds a single bit (0 or 1; any nonzero byte counts as 1).
func (b *BitVec) Append(bit byte) {
	i := b.n >> 6
	if i == len(b.words) {
		b.words = append(b.words, 0)
	}
	if bit != 0 {
		b.words[i] |= 1 << uint(b.n&63)
	}
	b.n++
	b.gen++
}

// AppendUint appends the width low-order bits of v, least-significant
// first. Widths beyond 64 append zero bits past the value, matching the
// bit-at-a-time semantics (v >> j is 0 for j >= 64). The append is
// word-level: at most two word merges plus capacity growth, which keeps
// transcript extension off the bit-loop path.
func (b *BitVec) AppendUint(v uint64, width int) {
	if width <= 0 {
		return
	}
	if width < 64 {
		v &= 1<<uint(width) - 1
	}
	n := b.n + width
	for nw := (n + 63) / 64; len(b.words) < nw; {
		b.words = append(b.words, 0)
	}
	i := b.n >> 6
	sh := uint(b.n & 63)
	b.words[i] |= v << sh
	if sh != 0 && int(sh)+width > 64 {
		b.words[i+1] |= v >> (64 - sh)
	}
	b.n = n
	b.gen++
}

// Get returns bit i. It panics if i is out of range, matching slice
// semantics.
func (b *BitVec) Get(i int) byte {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("bitstring: index %d out of range [0,%d)", i, b.n))
	}
	return byte(b.words[i>>6] >> uint(i&63) & 1)
}

// Word returns the i-th 64-bit word. Bits past Len() are zero.
func (b *BitVec) Word(i int) uint64 {
	if i < 0 || i >= len(b.words) {
		return 0
	}
	w := b.words[i]
	// Mask off bits beyond n in the last word so equality and folding are
	// well defined.
	if (i+1)*64 > b.n {
		valid := uint(b.n - i*64)
		if valid == 0 {
			return 0
		}
		w &= (1 << valid) - 1
	}
	return w
}

// Words returns the number of 64-bit words needed to hold Len() bits.
func (b *BitVec) Words() int { return (b.n + 63) / 64 }

// RawWords exposes the backing words for read-only scanning by hot loops
// (the hash kernel), bypassing the per-word masking of Word. The invariant
// that bits at positions >= Len() are zero is maintained by every mutator
// (Append and AppendUint only set bits below the new length; Truncate
// masks the tail), so callers may use the words directly. The slice
// aliases internal storage: it must not be written, and it is invalidated
// by the next mutation.
func (b *BitVec) RawWords() []uint64 { return b.words }

// Truncate shortens the vector to n bits, lowering every attached
// watermark that sits above n. It panics if n is negative or exceeds
// Len() (nothing is mutated in that case).
func (b *BitVec) Truncate(n int) {
	if n < 0 || n > b.n {
		panic(fmt.Sprintf("bitstring: truncate to %d out of range [0,%d]", n, b.n))
	}
	for _, w := range b.wms {
		if n < w.low {
			w.low = n
		}
	}
	b.gen++
	b.n = n
	nw := (n + 63) / 64
	b.words = b.words[:nw]
	if nw > 0 {
		valid := uint(n - (nw-1)*64)
		if valid < 64 {
			b.words[nw-1] &= (1 << valid) - 1
		}
	}
}

// Clone returns an independent copy. Watermarks and the mutation
// generation do not carry over: the copy starts with no observers.
func (b *BitVec) Clone() *BitVec {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return &BitVec{words: w, n: b.n}
}

// Equal reports whether two vectors hold identical bits.
func (b *BitVec) Equal(o *BitVec) bool {
	if b.n != o.n {
		return false
	}
	for i := 0; i < b.Words(); i++ {
		if b.Word(i) != o.Word(i) {
			return false
		}
	}
	return true
}

// String renders the bits most-recent last, e.g. "0110".
func (b *BitVec) String() string {
	var sb strings.Builder
	sb.Grow(b.n)
	for i := 0; i < b.n; i++ {
		sb.WriteByte('0' + b.Get(i))
	}
	return sb.String()
}

// FromBits builds a vector from a slice of 0/1 bytes (any nonzero byte
// counts as 1), packing a word at a time.
func FromBits(bits []byte) *BitVec {
	v := NewBitVec(len(bits))
	var w uint64
	for i, bit := range bits {
		if bit != 0 {
			w |= 1 << uint(i&63)
		}
		if i&63 == 63 {
			v.words = append(v.words, w)
			w = 0
		}
	}
	if len(bits)&63 != 0 {
		v.words = append(v.words, w)
	}
	v.n = len(bits)
	return v
}
