package bitstring

// Symbol is one channel symbol from the ternary alphabet {0, 1, ∗}.
//
// The paper models a transmission as Ch : Σ ∪ {∗} → Σ ∪ {∗} with Σ = {0,1}.
// Silence (∗) is encoded as 2 so that the oblivious additive adversary of
// Section 2.1 is literally "received = sent + e mod 3".
type Symbol uint8

const (
	// Sym0 is the bit 0.
	Sym0 Symbol = 0
	// Sym1 is the bit 1.
	Sym1 Symbol = 1
	// Silence is the "no message" symbol ∗.
	Silence Symbol = 2
)

// SymbolFromBit converts a 0/1 byte to a Symbol.
func SymbolFromBit(b byte) Symbol {
	if b != 0 {
		return Sym1
	}
	return Sym0
}

// Add applies an additive noise value e in {0,1,2} to the symbol, modulo 3.
// Add(0) is the identity (no corruption).
func (s Symbol) Add(e uint8) Symbol {
	return Symbol((uint8(s) + e) % 3)
}

// IsBit reports whether the symbol is a data bit rather than silence.
func (s Symbol) IsBit() bool { return s == Sym0 || s == Sym1 }

// Bit returns the symbol as a 0/1 byte; Silence decodes to 0. The caller
// should check IsBit when the distinction matters.
func (s Symbol) Bit() byte {
	if s == Sym1 {
		return 1
	}
	return 0
}

// String implements fmt.Stringer.
func (s Symbol) String() string {
	switch s {
	case Sym0:
		return "0"
	case Sym1:
		return "1"
	case Silence:
		return "*"
	default:
		return "?"
	}
}

// AppendSymbol appends the 2-bit binary encoding of a ternary symbol, the
// "natural manner" conversion of Section 2.3 used before hashing.
func (b *BitVec) AppendSymbol(s Symbol) {
	b.AppendUint(uint64(s), 2)
}
