package bitstring

import "testing"

func TestGenChangesOnEveryMutation(t *testing.T) {
	b := NewBitVec(0)
	g := b.Gen()
	b.Append(1)
	if b.Gen() == g {
		t.Fatal("Append did not change the generation")
	}
	g = b.Gen()
	b.AppendUint(0xff, 8)
	if b.Gen() == g {
		t.Fatal("AppendUint did not change the generation")
	}
	g = b.Gen()
	b.Truncate(4)
	if b.Gen() == g {
		t.Fatal("Truncate did not change the generation")
	}
	g = b.Gen()
	_ = b.Word(0)
	_ = b.Get(0)
	_ = b.RawWords()
	if b.Gen() != g {
		t.Fatal("read-only accessors changed the generation")
	}
}

func TestWatermarkTracksMinimumLength(t *testing.T) {
	b := NewBitVec(0)
	b.AppendUint(0, 100)
	w := b.AttachWatermark()
	if got := w.Take(); got != 100 {
		t.Fatalf("initial Take = %d, want current length 100", got)
	}
	// Grow, shrink below, regrow above: the watermark reports the valley.
	b.AppendUint(0, 60) // 160
	b.Truncate(70)
	b.AppendUint(0, 200) // 270
	if got := w.Take(); got != 70 {
		t.Fatalf("Take after dip to 70 = %d, want 70", got)
	}
	// Immediately after a Take the watermark sits at the current length.
	if got := w.Take(); got != 270 {
		t.Fatalf("repeated Take = %d, want 270", got)
	}
	// Append-only activity never lowers it.
	b.AppendUint(0, 10)
	if got := w.Take(); got != 270 {
		t.Fatalf("Take after pure appends = %d, want 270", got)
	}
}

func TestWatermarkObserversIndependent(t *testing.T) {
	b := NewBitVec(0)
	b.AppendUint(0, 128)
	w1 := b.AttachWatermark()
	w2 := b.AttachWatermark()
	b.Truncate(50)
	b.AppendUint(0, 100) // 150
	if got := w1.Take(); got != 50 {
		t.Fatalf("w1.Take = %d, want 50", got)
	}
	// w1's Take must not reset w2's view of the dip.
	b.Truncate(120)
	if got := w2.Take(); got != 50 {
		t.Fatalf("w2.Take = %d, want 50 (its own valley)", got)
	}
	if got := w1.Take(); got != 120 {
		t.Fatalf("w1 second Take = %d, want 120", got)
	}
}

func TestTruncatePanicsWithoutMutating(t *testing.T) {
	b := NewBitVec(0)
	b.AppendUint(0xabc, 12)
	w := b.AttachWatermark()
	g := b.Gen()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Truncate(-1) did not panic")
			}
		}()
		b.Truncate(-1)
	}()
	if b.Gen() != g || b.Len() != 12 {
		t.Fatal("failed Truncate mutated the vector")
	}
	if got := w.Take(); got != 12 {
		t.Fatalf("failed Truncate moved the watermark: Take = %d, want 12", got)
	}
}
