// Package meeting implements the meeting-points mechanism of Appendix A
// (adapted from Haeupler, FOCS 2014) at chunk granularity: the rollback
// protocol two adjacent parties run to find the longest prefix of their
// pairwise transcripts on which they agree, using only O(1) hashes per
// consistency-check phase.
//
// Per step the parties exchange three hashes — H(k) of the step counter
// and H(T≤mp1), H(T≤mp2) of two candidate prefixes — where
// k̃ = 2^⌈log₂k⌉, mp1 = k̃·⌊|T|/k̃⌋ and mp2 = max(mp1 − k̃, 0). Matching
// votes accumulate in mpc1/mpc2; at scale boundaries (k = k̃) a party
// rolls back to the best-voted meeting point, or restarts if counter
// desynchronization dominates (2E ≥ k). The exact constants below are a
// reconstruction (the appendix is not in the available text), preserving
// the contract the main-text analysis uses: agreement implies status
// "simulate"; disagreement triggers rollback within O(B) steps; every
// corrupted step causes only O(1) damage.
package meeting

// Status says whether a link endpoint believes the pairwise transcript is
// consistent.
type Status int

const (
	// StatusSimulate means the endpoint is willing to extend the
	// transcript (the paper's "simulate").
	StatusSimulate Status = iota + 1
	// StatusMeetingPoints means the endpoint is searching for a common
	// prefix and must not simulate or accept rewinds on this link.
	StatusMeetingPoints
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusSimulate:
		return "simulate"
	case StatusMeetingPoints:
		return "meeting-points"
	default:
		return "unknown"
	}
}

// KWidth is the bit width used when hashing the step counter k.
const KWidth = 32

// State is one endpoint's meeting-points state for one link: the counters
// (k, E, mpc1, mpc2) of Algorithm 2's InitializeState.
type State struct {
	K, E       int
	MPC1, MPC2 int
	Status     Status
}

// NewState returns the initial state ("simulate", all counters zero).
func NewState() *State {
	return &State{Status: StatusSimulate}
}

// Reset zeroes the counters (the paper's k, E, mpc1, mpc2 ← 0).
func (s *State) Reset() {
	s.K, s.E, s.MPC1, s.MPC2 = 0, 0, 0, 0
}

// Message is the triple of hash values exchanged per step.
type Message struct {
	// HK is the hash of the sender's step counter k.
	HK uint64
	// H1 and H2 are hashes of the sender's transcript prefixes at its
	// meeting points mp1 and mp2.
	H1, H2 uint64
}

// Hasher provides the hash evaluations a step needs. Implementations hash
// with seeds shared by both endpoints, so equal values mean (up to hash
// collisions) equal inputs.
//
// Contract: within one meeting-points step, repeated evaluations of the
// same (input, slot) must return the same value, and both endpoints'
// hashers must use the same seed block per slot. Across iterations the
// seed block per slot may either be refreshed (the paper's CRS draw —
// collisions are independent across checks) or rewind-stable (the
// incremental checkpointed evaluator — Θ(growth) per check but a
// colliding prefix pair persists until a rollback moves the meeting
// points). Implementations are free to cache per-prefix state across
// calls: the mechanism only ever extends or truncates the transcript
// between steps, and never mutates it during one.
type Hasher interface {
	// HashK hashes the counter value k.
	HashK(k int) uint64
	// HashPrefix hashes the transcript prefix of the given chunk length
	// with the seed block for the given slot (1 or 2).
	HashPrefix(chunks int, slot int) uint64
}

// scale returns k̃ = 2^⌈log₂ k⌉ for k >= 1.
func scale(k int) int {
	kt := 1
	for kt < k {
		kt <<= 1
	}
	return kt
}

// MeetingPoints returns (mp1, mp2) for counter k and transcript length
// chunks.
func MeetingPoints(k, chunks int) (int, int) {
	kt := scale(k)
	mp1 := kt * (chunks / kt)
	mp2 := mp1 - kt
	if mp2 < 0 {
		mp2 = 0
	}
	return mp1, mp2
}

// Outgoing computes the message this endpoint sends for the upcoming step
// (with counter k+1), given the current transcript length.
func (s *State) Outgoing(h Hasher, chunks int) Message {
	k := s.K + 1
	mp1, mp2 := MeetingPoints(k, chunks)
	return Message{
		HK: h.HashK(k),
		H1: h.HashPrefix(mp1, 1),
		H2: h.HashPrefix(mp2, 2),
	}
}

// Action is what the endpoint must do after a step.
type Action struct {
	// TruncateTo, if >= 0, is the chunk count the transcript must be
	// rolled back to.
	TruncateTo int
}

// Step advances the state by one meeting-points exchange: the endpoint
// sent Outgoing() earlier in the phase and now processes the neighbor's
// (possibly corrupted) message. own is the message Outgoing returned for
// this step — the transcript and counter cannot change mid-phase, so
// Outgoing's hashes are exactly the endpoint's side of the comparison and
// re-evaluating them here would double the consistency check's hash cost.
// chunks is the current transcript length.
func (s *State) Step(own Message, chunks int, recv Message) Action {
	s.K++
	k := s.K
	kt := scale(k)
	mp1, mp2 := MeetingPoints(k, chunks)
	act := Action{TruncateTo: -1}

	myHK := own.HK
	myH1 := own.H1
	myH2 := own.H2

	switch {
	case recv.HK != myHK:
		// Counter desync (or channel noise on the k-hash): count it; too
		// many desyncs force a restart at the scale boundary.
		s.E++
	case k == 1 && mp1 == chunks && recv.H1 == myH1:
		// Full-transcript agreement: verified consistent.
		s.Reset()
		s.Status = StatusSimulate
		return act
	default:
		if myH1 == recv.H1 || myH1 == recv.H2 {
			s.MPC1++
		}
		if myH2 == recv.H1 || myH2 == recv.H2 {
			s.MPC2++
		}
	}

	s.Status = StatusMeetingPoints

	if k == kt { // scale boundary: decision time
		switch {
		case 2*s.E >= k:
			s.Reset()
		case 2*s.MPC1 >= kt:
			act.TruncateTo = mp1
			s.Reset()
		case 2*s.MPC2 >= kt:
			act.TruncateTo = mp2
			s.Reset()
		default:
			s.MPC1, s.MPC2 = 0, 0
		}
	}
	return act
}
