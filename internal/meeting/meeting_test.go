package meeting

import (
	"testing"
	"testing/quick"
)

// fakeHasher hashes by identity over a synthetic "transcript" of chunk
// contents: two endpoints agree on a prefix iff their contents agree.
// HashK returns k itself; HashPrefix returns a fingerprint of the first
// n chunk values.
type fakeHasher struct {
	content []uint64 // chunk contents
}

func (f fakeHasher) HashK(k int) uint64 { return uint64(k) }

func (f fakeHasher) HashPrefix(chunks int, slot int) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < chunks && i < len(f.content); i++ {
		h ^= f.content[i]
		h *= 1099511628211
	}
	// Slot does not change the value for the fake (a real hash uses
	// different seeds per slot, but equality semantics are what matter).
	return h ^ uint64(chunks)<<32
}

// endpoint pairs a state with its synthetic transcript.
type endpoint struct {
	st      *State
	content []uint64
}

func (e *endpoint) hasher() fakeHasher { return fakeHasher{content: e.content} }

func (e *endpoint) len() int { return len(e.content) }

// exchange performs one noiseless meeting-points step between two
// endpoints, applying truncations.
func exchange(a, b *endpoint) {
	ma := a.st.Outgoing(a.hasher(), a.len())
	mb := b.st.Outgoing(b.hasher(), b.len())
	actA := a.st.Step(ma, a.len(), mb)
	actB := b.st.Step(mb, b.len(), ma)
	if actA.TruncateTo >= 0 && actA.TruncateTo < a.len() {
		a.content = a.content[:actA.TruncateTo]
	}
	if actB.TruncateTo >= 0 && actB.TruncateTo < b.len() {
		b.content = b.content[:actB.TruncateTo]
	}
}

func mkEndpoint(content ...uint64) *endpoint {
	return &endpoint{st: NewState(), content: content}
}

func TestScale(t *testing.T) {
	tests := []struct{ k, want int }{
		{1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {8, 8}, {9, 16}, {16, 16},
	}
	for _, tt := range tests {
		if got := scale(tt.k); got != tt.want {
			t.Errorf("scale(%d) = %d, want %d", tt.k, got, tt.want)
		}
	}
}

func TestMeetingPointsPositions(t *testing.T) {
	tests := []struct {
		k, chunks int
		mp1, mp2  int
	}{
		{1, 10, 10, 9},
		{2, 10, 10, 8},
		{3, 10, 8, 4},
		{4, 10, 8, 4},
		{5, 10, 8, 0},
		{1, 0, 0, 0},
		{8, 3, 0, 0},
	}
	for _, tt := range tests {
		mp1, mp2 := MeetingPoints(tt.k, tt.chunks)
		if mp1 != tt.mp1 || mp2 != tt.mp2 {
			t.Errorf("MeetingPoints(%d,%d) = (%d,%d), want (%d,%d)",
				tt.k, tt.chunks, mp1, mp2, tt.mp1, tt.mp2)
		}
	}
}

func TestAgreementVerifiesImmediately(t *testing.T) {
	a := mkEndpoint(1, 2, 3)
	b := mkEndpoint(1, 2, 3)
	exchange(a, b)
	if a.st.Status != StatusSimulate || b.st.Status != StatusSimulate {
		t.Fatalf("statuses = %v/%v, want simulate", a.st.Status, b.st.Status)
	}
	if a.st.K != 0 || b.st.K != 0 {
		t.Error("counters not reset on agreement")
	}
	if a.len() != 3 || b.len() != 3 {
		t.Error("agreement must not truncate")
	}
}

func TestMismatchEntersMeetingPoints(t *testing.T) {
	a := mkEndpoint(1, 2, 3)
	b := mkEndpoint(1, 2, 9)
	exchange(a, b)
	if a.st.Status != StatusMeetingPoints && b.st.Status != StatusMeetingPoints {
		t.Fatal("neither endpoint detected the mismatch")
	}
}

// TestResolvesDivergence checks the core guarantee: two endpoints whose
// transcripts share a prefix converge onto a common prefix within O(B)
// noiseless steps, without rolling back (much) more than the divergence.
func TestResolvesDivergence(t *testing.T) {
	tests := []struct {
		name string
		a, b []uint64
	}{
		{"b one ahead", []uint64{1, 2, 3}, []uint64{1, 2, 3, 4}},
		{"b five ahead", []uint64{1, 2, 3}, []uint64{1, 2, 3, 4, 5, 6, 7, 8}},
		{"diverge at 2", []uint64{1, 2, 30, 40}, []uint64{1, 2, 31, 41}},
		{"diverge at 0", []uint64{9, 9, 9}, []uint64{7, 7, 7}},
		{"unequal diverge", []uint64{1, 2, 3, 4, 5, 6}, []uint64{1, 2, 99}},
		{"long common, short tail", mkSeq(1, 64), append(mkSeq(1, 60), 1000, 1001)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			a := mkEndpoint(tt.a...)
			b := mkEndpoint(tt.b...)
			common := commonPrefix(tt.a, tt.b)
			budget := 20 * (len(tt.a) + len(tt.b) + 2)
			steps := 0
			for ; steps < budget; steps++ {
				exchange(a, b)
				if a.st.Status == StatusSimulate && b.st.Status == StatusSimulate {
					break
				}
			}
			if a.st.Status != StatusSimulate || b.st.Status != StatusSimulate {
				t.Fatalf("no convergence after %d steps (len %d vs %d)", steps, a.len(), b.len())
			}
			if a.len() != b.len() {
				t.Fatalf("converged to different lengths %d vs %d", a.len(), b.len())
			}
			for i := 0; i < a.len(); i++ {
				if a.content[i] != b.content[i] {
					t.Fatalf("converged but contents differ at %d", i)
				}
			}
			if a.len() > common {
				t.Fatalf("converged to %d chunks > true common prefix %d", a.len(), common)
			}
		})
	}
}

func mkSeq(start uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = start + uint64(i)
	}
	return out
}

func commonPrefix(a, b []uint64) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestDesyncRecovers: if one endpoint's counter is ahead (as after a
// missed truncation), the HK mismatch path eventually resets both.
func TestDesyncRecovers(t *testing.T) {
	a := mkEndpoint(1, 2)
	b := mkEndpoint(1, 2)
	a.st.K = 5 // force desync
	for i := 0; i < 100; i++ {
		exchange(a, b)
		if a.st.Status == StatusSimulate && b.st.Status == StatusSimulate {
			return
		}
	}
	t.Fatalf("desynced endpoints never re-verified: K=%d/%d E=%d/%d",
		a.st.K, b.st.K, a.st.E, b.st.E)
}

// TestCorruptedMessagesBoundedDamage: garbage messages never make a state
// truncate below the true common prefix by more than the mechanism's
// rollback quantum, and never panic.
func TestCorruptedMessagesBoundedDamage(t *testing.T) {
	a := mkEndpoint(1, 2, 3, 4)
	garbage := Message{HK: 0xffff, H1: 0xaaaa, H2: 0x5555}
	for i := 0; i < 50; i++ {
		act := a.st.Step(a.st.Outgoing(a.hasher(), a.len()), a.len(), garbage)
		if act.TruncateTo >= 0 {
			t.Fatalf("pure HK-garbage caused truncation at step %d", i)
		}
	}
	// E-dominated state must have reset at scale boundaries.
	if a.st.K > 64 {
		t.Errorf("K grew unboundedly under garbage: %d", a.st.K)
	}
}

func TestStatusString(t *testing.T) {
	if StatusSimulate.String() != "simulate" ||
		StatusMeetingPoints.String() != "meeting-points" ||
		Status(0).String() != "unknown" {
		t.Error("Status.String wrong")
	}
}

// TestStepLockstepCounters: in noiseless operation both endpoints keep
// identical k, so HK always matches.
func TestStepLockstepCounters(t *testing.T) {
	a := mkEndpoint(1, 2, 3, 4, 5)
	b := mkEndpoint(1, 9, 9, 9)
	for i := 0; i < 40; i++ {
		exchange(a, b)
		if a.st.E != 0 || b.st.E != 0 {
			t.Fatalf("spurious counter desync at step %d: E=%d/%d", i, a.st.E, b.st.E)
		}
		if a.st.Status == StatusSimulate && b.st.Status == StatusSimulate {
			return
		}
	}
	t.Fatal("no convergence")
}

// TestRandomDivergenceProperty: random pairs of transcripts with a
// common prefix and arbitrary divergent tails always converge onto a
// common prefix, within a budget linear in the divergence (times the
// log-scale overhead), never past the true common prefix.
func TestRandomDivergenceProperty(t *testing.T) {
	f := func(seed int64, commonRaw, tailARaw, tailBRaw uint8) bool {
		common := int(commonRaw) % 40
		tailA := int(tailARaw) % 20
		tailB := int(tailBRaw) % 20
		base := mkSeq(uint64(seed&0xffff)+2, common)
		ca := append(append([]uint64{}, base...), mkSeq(1e6, tailA)...)
		cb := append(append([]uint64{}, base...), mkSeq(2e6, tailB)...)
		a := &endpoint{st: NewState(), content: ca}
		b := &endpoint{st: NewState(), content: cb}
		budget := 30 * (tailA + tailB + 2)
		for i := 0; i < budget; i++ {
			exchange(a, b)
			if a.st.Status == StatusSimulate && b.st.Status == StatusSimulate {
				break
			}
		}
		if a.st.Status != StatusSimulate || b.st.Status != StatusSimulate {
			t.Logf("seed %d common=%d tails=%d/%d: no convergence", seed, common, tailA, tailB)
			return false
		}
		if a.len() != b.len() || a.len() > common {
			t.Logf("seed %d: converged to %d/%d, common %d", seed, a.len(), b.len(), common)
			return false
		}
		for i := 0; i < a.len(); i++ {
			if a.content[i] != b.content[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
