package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"mpic"
	"mpic/internal/core"
	"mpic/internal/graph"
	"mpic/internal/stats"
)

// TestSweepReproducesExperimentTable is the acceptance check for the
// Runner.Sweep migration: building the CC-vs-noise grid (E-F3) directly
// through the public mpic.Sweep API reproduces the table the experiment
// harness produces, cell for cell.
func TestSweepReproducesExperimentTable(t *testing.T) {
	cfg := Config{Trials: 2, Seed: 3, Quick: true}
	table, err := CCVsNoise(cfg)
	if err != nil {
		t.Fatal(err)
	}

	g := graph.Line(5)
	m := float64(g.M())
	runner := mpic.NewRunner()
	defer runner.Close()
	for i, mult := range []float64{0, 0.002, 0.005, 0.01, 0.02} {
		var noise mpic.NoiseSpec
		if mult > 0 {
			noise = mpic.RandomNoise(mult / m)
		}
		cells, err := runner.Sweep(context.Background(), mpic.Sweep{
			Base: mpic.Scenario{
				Topology:   mpic.GraphTopology(g),
				Workload:   workloadSpec(g.N(), cfg.Quick),
				Scheme:     core.AlgA,
				Noise:      noise,
				Seed:       cfg.Seed,
				IterFactor: iterBudget(cfg),
				HashMode:   mpic.HashLegacy, // the tables pin the paper-faithful path
			},
			Trials:   cfg.trials(),
			SeedStep: trialSeedStep,
		})
		if err != nil {
			t.Fatal(err)
		}
		c := cells[0]
		want := []string{
			fmt.Sprintf("%.3f", mult),
			fmt.Sprintf("%d/%d", c.Successes, c.Trials),
			fmt.Sprintf("%.1f", stats.Summarize(c.Blowups).Mean),
			fmt.Sprintf("%.0f", stats.Summarize(c.Iterations).Mean),
			fmt.Sprint(c.Corruptions),
		}
		got := table.Rows[i]
		for j := range want {
			if got[j] != want[j] {
				t.Errorf("row %d col %d: table %q != direct sweep %q", i, j, got[j], want[j])
			}
		}
	}
}

// sessionFiles lists the primary session files in a checkpoint dir,
// skipping the .bak last-good-state copies and the .lock concurrency
// sidecars the store keeps beside them.
func sessionFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".bak") && !strings.HasSuffix(e.Name(), ".lock") {
			names = append(names, e.Name())
		}
	}
	return names
}

// TestExperimentCheckpointResume pins the harness's durable sessions: a
// checkpointed table renders the same rows as an uncheckpointed one, an
// interrupted session (simulated by truncating the persisted cells)
// resumes to identical rows, and a fully persisted session replays
// without re-running anything.
func TestExperimentCheckpointResume(t *testing.T) {
	cfg := Config{Trials: 2, Seed: 3, Quick: true}
	fresh, err := CCVsNoise(cfg)
	if err != nil {
		t.Fatal(err)
	}

	cfg.Checkpoint = t.TempDir()
	first, err := CCVsNoise(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Rows, fresh.Rows) {
		t.Fatalf("checkpointed rows differ from fresh:\n%v\n%v", first.Rows, fresh.Rows)
	}
	sessions := sessionFiles(t, cfg.Checkpoint)
	if len(sessions) != 1 {
		t.Fatalf("checkpoint dir holds %d session files, want 1", len(sessions))
	}

	// Simulate an interruption: drop the last two persisted cells. The
	// rewrite must go through the store API — the checksummed format
	// correctly treats hand-edited checkpoint JSON as corruption.
	path := filepath.Join(cfg.Checkpoint, sessions[0])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var state struct {
		Spec string
	}
	if err := json.Unmarshal(data, &state); err != nil {
		t.Fatal(err)
	}
	store := mpic.NewFileGridStore(path)
	cells, err := store.Load(state.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 5 {
		t.Fatalf("session holds %d cells, want 5", len(cells))
	}
	if err := store.Save(state.Spec, cells[:3]); err != nil {
		t.Fatal(err)
	}
	resumed, err := CCVsNoise(cfg)
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	if !reflect.DeepEqual(resumed.Rows, fresh.Rows) {
		t.Fatalf("resumed rows differ from fresh:\n%v\n%v", resumed.Rows, fresh.Rows)
	}

	// Fully persisted: the table replays from the store alone.
	replayed, err := CCVsNoise(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(replayed.Rows, fresh.Rows) {
		t.Fatalf("replayed rows differ from fresh:\n%v\n%v", replayed.Rows, fresh.Rows)
	}

	// A different Config must open a different session, not poison this
	// one (per-grid files are fingerprint-named).
	other := cfg
	other.Seed = 4
	if _, err := CCVsNoise(other); err != nil {
		t.Fatalf("different config in the same checkpoint dir: %v", err)
	}
	if n := len(sessionFiles(t, cfg.Checkpoint)); n != 2 {
		t.Fatalf("checkpoint dir holds %d session files after a second config, want 2", n)
	}

	// Trajectory experiments (KeepResults grids) persist per-trial
	// Results too: a second run replays the table from the store alone
	// and must render identical rows.
	traj, err := PotentialGrowth(cfg)
	if err != nil {
		t.Fatalf("KeepResults experiment under checkpointing: %v", err)
	}
	trajReplayed, err := PotentialGrowth(cfg)
	if err != nil {
		t.Fatalf("KeepResults replay: %v", err)
	}
	if !reflect.DeepEqual(trajReplayed.Rows, traj.Rows) {
		t.Fatalf("replayed trajectory rows differ from fresh:\n%v\n%v", trajReplayed.Rows, traj.Rows)
	}
}

// TestRegistryComplete ensures every experiment of DESIGN.md §4 is
// registered.
func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "noise-sweep", "rate-size", "cc-noise", "rewind-wave",
		"potential", "collisions", "ablation", "delta-bias", "seed-attack",
		"rounds", "fully-utilized", "collision-attack", "delay-overhead",
	}
	for _, name := range want {
		if _, ok := Registry[name]; !ok {
			t.Errorf("experiment %q missing from registry", name)
		}
	}
	if len(Registry) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(Registry), len(want))
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nope", Config{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestAllExperimentsQuick executes every experiment end to end in quick
// mode: the assertions are structural (tables render, rows exist); the
// quantitative shape is recorded in EXPERIMENTS.md from full-mode runs.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment sweep still costs seconds")
	}
	cfg := Config{Trials: 2, Seed: 3, Quick: true}
	tables, err := RunAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != len(Registry) {
		t.Fatalf("got %d tables, want %d", len(tables), len(Registry))
	}
	for _, tab := range tables {
		if len(tab.Rows) == 0 {
			t.Errorf("%s: no rows", tab.ID)
		}
		md := tab.Markdown()
		if !strings.Contains(md, tab.Title) {
			t.Errorf("%s: markdown missing title", tab.ID)
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Header) {
				t.Errorf("%s: row width %d != header %d", tab.ID, len(row), len(tab.Header))
			}
		}
		t.Log("\n" + md)
	}
}

func TestMarkdownFormat(t *testing.T) {
	tab := &Table{
		ID: "X", Title: "demo",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}},
		Notes:  []string{"note"},
	}
	md := tab.Markdown()
	for _, want := range []string{"### X — demo", "| a | b |", "| 1 | 2 |", "*note*"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}
