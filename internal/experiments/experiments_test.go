package experiments

import (
	"strings"
	"testing"
)

// TestRegistryComplete ensures every experiment of DESIGN.md §4 is
// registered.
func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "noise-sweep", "rate-size", "cc-noise", "rewind-wave",
		"potential", "collisions", "ablation", "delta-bias", "seed-attack",
		"rounds", "fully-utilized", "collision-attack",
	}
	for _, name := range want {
		if _, ok := Registry[name]; !ok {
			t.Errorf("experiment %q missing from registry", name)
		}
	}
	if len(Registry) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(Registry), len(want))
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nope", Config{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestAllExperimentsQuick executes every experiment end to end in quick
// mode: the assertions are structural (tables render, rows exist); the
// quantitative shape is recorded in EXPERIMENTS.md from full-mode runs.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiment sweep still costs seconds")
	}
	cfg := Config{Trials: 2, Seed: 3, Quick: true}
	tables, err := RunAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != len(Registry) {
		t.Fatalf("got %d tables, want %d", len(tables), len(Registry))
	}
	for _, tab := range tables {
		if len(tab.Rows) == 0 {
			t.Errorf("%s: no rows", tab.ID)
		}
		md := tab.Markdown()
		if !strings.Contains(md, tab.Title) {
			t.Errorf("%s: markdown missing title", tab.ID)
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Header) {
				t.Errorf("%s: row width %d != header %d", tab.ID, len(row), len(tab.Header))
			}
		}
		t.Log("\n" + md)
	}
}

func TestMarkdownFormat(t *testing.T) {
	tab := &Table{
		ID: "X", Title: "demo",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}},
		Notes:  []string{"note"},
	}
	md := tab.Markdown()
	for _, want := range []string{"### X — demo", "| a | b |", "| 1 | 2 |", "*note*"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}
