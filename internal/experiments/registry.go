package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"time"
)

// Runner produces one experiment table.
type Runner func(Config) (*Table, error)

// Registry maps experiment IDs to runners; cmd/mpicbench iterates it.
var Registry = map[string]Runner{
	"table1":           Table1,
	"noise-sweep":      NoiseSweep,
	"rate-size":        RateVsSize,
	"cc-noise":         CCVsNoise,
	"rewind-wave":      RewindWave,
	"potential":        PotentialGrowth,
	"collisions":       Collisions,
	"ablation":         Ablation,
	"delta-bias":       DeltaBias,
	"seed-attack":      SeedAttack,
	"rounds":           Rounds,
	"fully-utilized":   FullyUtilizedCost,
	"collision-attack": CollisionAttack,
	"delay-overhead":   DelayOverhead,
}

// Names returns the registered experiment names, sorted.
func Names() []string {
	out := make([]string, 0, len(Registry))
	for name := range Registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Run executes one named experiment, stamping the table with the
// registry key, its wall-clock cost, and its heap-allocation count.
func Run(name string, cfg Config) (*Table, error) {
	r, ok := Registry[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	mallocs := ms.Mallocs
	start := time.Now()
	t, err := r(cfg)
	if err != nil {
		return nil, err
	}
	t.Name = name
	t.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	runtime.ReadMemStats(&ms)
	t.Allocs = ms.Mallocs - mallocs
	return t, nil
}

// RunAll executes every experiment in name order.
func RunAll(cfg Config) ([]*Table, error) {
	var out []*Table
	for _, name := range Names() {
		t, err := Run(name, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiment %s: %w", name, err)
		}
		out = append(out, t)
	}
	return out, nil
}
