// Package experiments defines the reproduction experiments of DESIGN.md
// §4: the empirical regeneration of the paper's Table 1 and the
// figure-style experiments validating Theorems 1.1/1.2 and the key lemmas
// (potential growth, hash-collision bounds, rewind-wave latency,
// δ-biased seeding, randomness-exchange protection).
package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"mpic/internal/adversary"
	"mpic/internal/channel"
	"mpic/internal/core"
	"mpic/internal/graph"
	"mpic/internal/protocol"
)

// Config scopes an experiment run.
type Config struct {
	// Trials is the number of repetitions per measured cell.
	Trials int
	// Seed makes runs reproducible.
	Seed int64
	// Quick shrinks sizes and trial counts for use inside benchmarks.
	Quick bool
}

// DefaultConfig returns the configuration used to produce EXPERIMENTS.md.
func DefaultConfig() Config { return Config{Trials: 10, Seed: 1} }

func (c Config) trials() int {
	if c.Trials <= 0 {
		return 5
	}
	if c.Quick && c.Trials > 3 {
		return 3
	}
	return c.Trials
}

// Table is a formatted experiment result.
type Table struct {
	ID string
	// Name is the registry key that produced the table (set by Run and
	// RunAll), so artefact consumers can re-run a single experiment.
	Name   string `json:",omitempty"`
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	// ElapsedMS is the wall-clock cost of producing the table (set by Run
	// and RunAll). Successive BENCH_PR<n>.json artefacts carry it so
	// `mpicbench -compare` can report per-experiment speedups and catch
	// performance regressions between PRs.
	ElapsedMS float64 `json:",omitempty"`
}

// Markdown renders the table as GitHub markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String()
}

// workload builds the standard generic workload for an experiment: the
// Random protocol over the given topology with enough rounds to yield a
// meaningful number of chunks.
func workload(g *graph.Graph, seed int64, quick bool) protocol.Protocol {
	rounds := 40 * g.N()
	if quick {
		rounds = 12 * g.N()
	}
	return protocol.NewRandom(g, rounds, 0.5, seed, nil)
}

// noiseFor builds the adversary for a scheme/noise pairing. rate is the
// corruption budget as a fraction of CC.
func noiseFor(kind string, rate float64, links []channel.Link, rng *rand.Rand) (adversary.Adversary, func(info core.RunInfo) adversary.Adversary) {
	switch kind {
	case "none", "":
		return adversary.None{}, nil
	case "random":
		return adversary.NewRandomRate(rate, rng), nil
	case "burst":
		l := links[rng.Intn(len(links))]
		return adversary.NewBurst(l, 0, 1<<30, rate), nil
	case "adaptive":
		seed := rng.Int63()
		return nil, func(info core.RunInfo) adversary.Adversary {
			return adversary.NewAdaptive(info.Links, info.PhaseOracle, 3 /* trace.PhaseSimulation */, rate, rand.New(rand.NewSource(seed)))
		}
	default:
		return adversary.None{}, nil
	}
}

// adversaryRate is a small alias used by the baseline comparisons.
func adversaryRate(rate float64, rng *rand.Rand) adversary.Adversary {
	return adversary.NewRandomRate(rate, rng)
}

// burstOn builds a banked-budget burst on link (u, v) that fires from
// one-third into the run.
func burstOn(u, v graph.Node, schedRounds int, rate float64) adversary.Adversary {
	return adversary.NewBurst(channel.Link{From: u, To: v}, schedRounds, 1<<30, rate)
}

// runCell executes `trials` runs of a scheme under the given noise and
// aggregates success and blowup.
type cell struct {
	Successes   int
	Trials      int
	Blowups     []float64
	Iters       []float64
	Collisions  int64
	Corruptions int64
}

func runCell(scheme core.Scheme, g *graph.Graph, noiseKind string, rate float64, cfg Config, iterFactor int) (cell, error) {
	var out cell
	trials := cfg.trials()
	var links []channel.Link
	for _, e := range g.Edges() {
		links = append(links, channel.Link{From: e.U, To: e.V}, channel.Link{From: e.V, To: e.U})
	}
	for trial := 0; trial < trials; trial++ {
		seed := cfg.Seed + int64(trial)*7907
		proto := workload(g, seed, cfg.Quick)
		params := core.ParamsFor(scheme, g)
		params.CRSKey = seed
		params.IterFactor = iterFactor
		rng := rand.New(rand.NewSource(seed * 31))
		adv, factory := noiseFor(noiseKind, rate, links, rng)
		res, err := core.Run(core.Options{
			Protocol:         proto,
			Params:           params,
			Adversary:        adv,
			AdversaryFactory: factory,
		})
		if err != nil {
			return out, err
		}
		out.Trials++
		if res.Success {
			out.Successes++
		}
		out.Blowups = append(out.Blowups, res.Blowup)
		out.Iters = append(out.Iters, float64(res.Iterations))
		out.Collisions += res.Metrics.HashCollisions
		out.Corruptions += res.Metrics.TotalCorruptions()
	}
	return out, nil
}
