// Package experiments defines the reproduction experiments of DESIGN.md
// §4: the empirical regeneration of the paper's Table 1 and the
// figure-style experiments validating Theorems 1.1/1.2 and the key lemmas
// (potential growth, hash-collision bounds, rewind-wave latency,
// δ-biased seeding, randomness-exchange protection).
//
// Every coded run goes through the public Scenario/Runner API: each
// experiment declares its measured cells as mpic.GridCell specs and a
// single package-wide mpic.Runner executes them through the streaming
// parallel grid engine (Runner.RunGrid) — the same code path external
// users batch experiments with. One arena serves the whole package, so
// successive tables reuse the per-link hash buffers, and per-figure code
// reduces to cell specs plus row formatting.
package experiments

import (
	"context"
	"crypto/sha256"
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"

	"mpic"
	"mpic/internal/adversary"
	"mpic/internal/channel"
	"mpic/internal/core"
	"mpic/internal/graph"
	"mpic/internal/protocol"
)

// Config scopes an experiment run.
type Config struct {
	// Trials is the number of repetitions per measured cell.
	Trials int
	// Seed makes runs reproducible.
	Seed int64
	// Quick shrinks sizes and trial counts for use inside benchmarks.
	Quick bool
	// Checkpoint, when non-empty, is a directory of durable grid
	// sessions: every experiment grid persists its completed cells there
	// (one fingerprint-named file per grid, see mpic.FileGridStore) and
	// restores them on the next run with the same Config — an
	// interrupted `-experiment all` resumes the tables it finished
	// instead of restarting from zero. Restored cells are bit-identical
	// to re-run ones (the engine's determinism guarantee), so
	// checkpointed and fresh tables render the same rows. Grids that
	// keep per-trial trajectories (KeepResults) persist those too, so
	// the rewind-wave/potential/rounds tables resume like the rest.
	Checkpoint string
	// Retries gives every failed grid cell that many extra attempts
	// under the engine's deterministic backoff (see mpic.RetryPolicy);
	// retried cells are bit-identical to first-try ones, so the tables
	// are unaffected. Experiments always fail fast once the budget is
	// spent — a table with quarantined holes would not be a table.
	Retries int
}

// DefaultConfig returns the configuration used to produce EXPERIMENTS.md.
func DefaultConfig() Config { return Config{Trials: 10, Seed: 1} }

func (c Config) trials() int {
	if c.Trials <= 0 {
		return 5
	}
	if c.Quick && c.Trials > 3 {
		return 3
	}
	return c.Trials
}

// sharedRunner executes every experiment cell; one arena for the whole
// package amortizes per-run seed materialization across tables.
var sharedRunner = mpic.NewRunner()

// trialSeedStep is the historical per-trial seed stride of the harness.
const trialSeedStep = 7907

// Table is a formatted experiment result.
type Table struct {
	ID string
	// Name is the registry key that produced the table (set by Run and
	// RunAll), so artefact consumers can re-run a single experiment.
	Name   string `json:",omitempty"`
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	// ElapsedMS is the wall-clock cost of producing the table (set by Run
	// and RunAll). Successive BENCH_PR<n>.json artefacts carry it so
	// `mpicbench -compare` can report per-experiment speedups and catch
	// performance regressions between PRs.
	ElapsedMS float64 `json:",omitempty"`
	// Allocs is the number of heap allocations made while producing the
	// table (set by Run and RunAll from the runtime's cumulative malloc
	// counter; the experiment harness pins Workers to 1, so the delta is
	// attributable). Unlike ElapsedMS it is near-deterministic, which
	// makes it the sharper `-compare` gate: an allocation regression
	// shows up at count precision long before it costs measurable wall
	// clock. Artefacts from before the field existed compare as "n/a".
	Allocs uint64 `json:",omitempty"`
}

// Markdown renders the table as GitHub markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String()
}

// workload builds the standard generic workload for an experiment: the
// Random protocol over the given topology with enough rounds to yield a
// meaningful number of chunks.
func workload(g *graph.Graph, seed int64, quick bool) protocol.Protocol {
	rounds := workloadRounds(g.N(), quick)
	return protocol.NewRandom(g, rounds, 0.5, seed, nil)
}

func workloadRounds(n int, quick bool) int {
	if quick {
		return 12 * n
	}
	return 40 * n
}

// workloadSpec is workload as a scenario spec: the builder receives each
// trial's seed from the sweep, reproducing the per-trial protocols the
// harness has always measured.
func workloadSpec(n int, quick bool) mpic.WorkloadSpec {
	return mpic.WorkloadSpec{
		Rounds: workloadRounds(n, quick),
		Build: func(g *mpic.Graph, rounds int, seed int64) (mpic.Protocol, error) {
			return protocol.NewRandom(g, rounds, 0.5, seed, nil), nil
		},
	}
}

// cellScenario is the base scenario of a measured cell. The tables pin
// HashMode to the paper-faithful legacy path: they exist to validate the
// paper's claims, and those claims lean on Lemma 2.3's fresh
// per-iteration seeds — under the stable-seed modes a landed collision
// persists up to EpochRefresh checks, which visibly strengthens the
// seed-aware E-F12 attacker and shifts every noisy trajectory. Pinning
// keeps the rows comparable across the artefact history; the epoch
// default's own numbers live in the Go benchmarks (PERF.md PR 9).
func cellScenario(scheme core.Scheme, g *graph.Graph, noise mpic.NoiseSpec, cfg Config, iterFactor int) mpic.Scenario {
	return mpic.Scenario{
		Topology:   mpic.GraphTopology(g),
		Workload:   workloadSpec(g.N(), cfg.Quick),
		Scheme:     scheme,
		Noise:      noise,
		Seed:       cfg.Seed,
		IterFactor: iterFactor,
		HashMode:   mpic.HashLegacy,
	}
}

// adversaryRate is a small alias used by the baseline comparisons.
func adversaryRate(rate float64, rng *rand.Rand) adversary.Adversary {
	return adversary.NewRandomRate(rate, rng)
}

// burstOn builds a banked-budget burst on link (u, v) that fires from
// one-third into the run.
func burstOn(u, v graph.Node, schedRounds int, rate float64) adversary.Adversary {
	return adversary.NewBurst(channel.Link{From: u, To: v}, schedRounds, 1<<30, rate)
}

// cell aggregates the trials of one measured grid point.
type cell struct {
	Successes   int
	Trials      int
	Blowups     []float64
	Iters       []float64
	Collisions  int64
	Corruptions int64
}

// fromSweep converts a Runner.Sweep cell into the harness's aggregate.
func fromSweep(c mpic.SweepCell) cell {
	return cell{
		Successes:   c.Successes,
		Trials:      c.Trials,
		Blowups:     c.Blowups,
		Iters:       c.Iterations,
		Collisions:  c.Collisions,
		Corruptions: c.Corruptions,
	}
}

// gridCell wraps a scenario as one measured grid point: cfg.trials()
// seeds at the harness's historical per-trial stride.
func gridCell(base mpic.Scenario, cfg Config) mpic.GridCell {
	return mpic.GridCell{Scenario: base, Trials: cfg.trials(), SeedStep: trialSeedStep}
}

// oneShot wraps a scenario as a single-run grid point (trial 0 only) —
// the cells of experiments that inspect one run's trajectory.
func oneShot(base mpic.Scenario) mpic.GridCell {
	return mpic.GridCell{Scenario: base, Trials: 1, SeedStep: trialSeedStep}
}

// noiseCell builds the standard measured cell — a scheme over a topology
// under a registered noise model at a rate.
func noiseCell(scheme core.Scheme, g *graph.Graph, noiseKind string, rate float64, cfg Config, iterFactor int) (mpic.GridCell, error) {
	noise, err := mpic.Noise(noiseKind, rate)
	if err != nil {
		return mpic.GridCell{}, err
	}
	return gridCell(cellScenario(scheme, g, noise, cfg, iterFactor), cfg), nil
}

// runGrid executes an experiment's cells as one durable grid session on
// the shared runner's streaming engine and returns the completed cells
// in definition order. keep retains each trial's full result (for
// experiments that read per-run trajectories such as the potential or
// the round count); with a checkpoint those trials persist as
// StoredResults and restored cells stream them back, so trajectory
// tables resume too.
//
// salt is the experiment's own contribution to the session identity: at
// least the table ID, plus every parameter the grid fingerprint cannot
// see because it lives in a closure — Tune variants (ablation, seed
// kinds, hash widths), NoiseFunc rates, UseProtocol shapes. It is folded
// into Grid.Spec and the session file name, so editing those parameters
// opens a fresh session instead of silently restoring stale cells under
// an unchanged fingerprint.
//
// With cfg.Checkpoint set, the grid persists each completed cell into a
// per-grid file, so re-running the same experiment under the same Config
// resumes instead of restarting — Workers stays 1, which also makes the
// saved completion order the definition order (duplicate-key cells, e.g.
// ablation variants, resume exactly).
//
// Workers is pinned to 1: the tables' ElapsedMS feeds the `-compare`
// wall-clock regression gate, and parallel cell execution would make
// those timings incomparable across artefacts (a real per-run slowdown
// could hide behind a multicore speedup). The engine's parallelism is
// exercised by the CLIs and the grid tests; lifting this pin needs the
// artefact to record its worker count first (see ROADMAP).
func runGrid(cfg Config, salt string, cells []mpic.GridCell, keep bool) ([]mpic.GridCellResult, error) {
	g := mpic.Grid{Cells: cells, Workers: 1, KeepResults: keep}
	if cfg.Retries > 0 {
		g.Retry = mpic.RetryPolicy{MaxAttempts: cfg.Retries + 1, JitterSeed: cfg.Seed}
	}
	if cfg.Checkpoint != "" {
		g.Spec = salt + " " + g.Fingerprint()
		sum := sha256.Sum256([]byte(g.Spec))
		g.Store = mpic.NewFileGridStore(filepath.Join(cfg.Checkpoint,
			fmt.Sprintf("%s-%x.json", fileToken(salt), sum[:8])))
	}
	return sharedRunner.CollectGrid(context.Background(), g)
}

// fileToken reduces a session salt to a readable file-name prefix: its
// first field (the table ID by convention), stripped to portable
// characters.
func fileToken(salt string) string {
	token, _, _ := strings.Cut(salt, " ")
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '.':
			return r
		default:
			return '_'
		}
	}, token)
}

// runCells is runGrid for experiments that only need the per-cell
// aggregates.
func runCells(cfg Config, salt string, cells []mpic.GridCell) ([]cell, error) {
	results, err := runGrid(cfg, salt, cells, false)
	if err != nil {
		return nil, err
	}
	out := make([]cell, len(results))
	for i, r := range results {
		out[i] = fromSweep(r.Cell)
	}
	return out, nil
}
