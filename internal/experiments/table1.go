package experiments

import (
	"fmt"
	"math/rand"

	"mpic"
	"mpic/internal/baseline"
	"mpic/internal/core"
	"mpic/internal/graph"
	"mpic/internal/stats"
)

// Table1 regenerates the paper's Table 1 empirically: each scheme is run
// at its nominal noise level (ε at the paper's scaling in m) on an
// arbitrary topology and reports measured success rate and communication
// blowup. The baselines show what the schemes improve on: uncoded
// execution collapses under the same noise, and naive repetition FEC
// fails under a concentrated burst.
//
// The paper's rows for prior work (RS94, JKL15, HS16) relied on tree
// codes with no efficient construction; their stand-ins here are the
// baselines (see DESIGN.md §3.6).
func Table1(cfg Config) (*Table, error) {
	n := 8
	if cfg.Quick {
		n = 5
	}
	g, err := graph.ByName("random", n)
	if err != nil {
		return nil, err
	}
	m := float64(g.M())
	// ε is chosen so that ε·CC(Π)/m is several absolute corruptions at
	// this workload scale: inside the schemes' empirical tolerance (the
	// E-F1 sweep shows full success through 0.01), fatal for the
	// baselines.
	eps := 0.01
	logm := float64(core.Log2Ceil(g.M()))
	if logm < 1 {
		logm = 1
	}
	loglogm := float64(core.Log2Ceil(int(logm) + 1))
	if loglogm < 1 {
		loglogm = 1
	}

	t := &Table{
		ID:     "E-T1",
		Title:  "Table 1 regeneration: schemes at nominal noise, arbitrary topology",
		Header: []string{"scheme", "noise level", "noise type", "success", "blowup (mean CC/CC(Π))", "efficient"},
	}
	type row struct {
		scheme    core.Scheme
		noiseKind string
		rate      float64
		level     string
		ntype     string
	}
	rows := []row{
		{core.AlgA, "random", eps / m, "ε/m", "oblivious ins+del+sub"},
		{core.AlgB, "adaptive", eps / (m * logm), "ε/(m log m)", "non-oblivious ins+del+sub"},
		{core.AlgC, "adaptive", eps / (m * loglogm), "ε/(m log log m)", "non-oblivious ins+del+sub (CRS)"},
	}
	iterFactor := 100
	if cfg.Quick {
		iterFactor = 30
	}
	cells := make([]mpic.GridCell, len(rows))
	for i, r := range rows {
		c, err := noiseCell(r.scheme, g, r.noiseKind, r.rate, cfg, iterFactor)
		if err != nil {
			return nil, err
		}
		cells[i] = c
	}
	measured, err := runCells(cfg, "E-T1", cells)
	if err != nil {
		return nil, err
	}
	for i, r := range rows {
		c := measured[i]
		t.Rows = append(t.Rows, []string{
			r.scheme.String(), r.level, r.ntype,
			fmt.Sprintf("%d/%d", c.Successes, c.Trials),
			fmt.Sprintf("%.1f", stats.Summarize(c.Blowups).Mean),
			"yes",
		})
	}

	// Baselines under the oblivious ε/m noise of Algorithm A.
	ubRow, err := baselineRow("uncoded", g, eps/m, cfg)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, ubRow)
	fbRow, err := baselineRow("naive-fec", g, eps/m, cfg)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, fbRow)

	t.Notes = append(t.Notes,
		fmt.Sprintf("topology: random connected, n=%d, m=%d; workload: generic random protocol; ε=%.3f", g.N(), g.M(), eps),
		"paper's shape: all three schemes succeed w.h.p. at constant rate; baselines without interactive coding fail under insertion/deletion noise",
	)
	return t, nil
}

func baselineRow(kind string, g *graph.Graph, rate float64, cfg Config) ([]string, error) {
	succ, trials := 0, cfg.trials()
	var blowups []float64
	for trial := 0; trial < trials; trial++ {
		seed := cfg.Seed + int64(trial)*104729
		proto := workload(g, seed, cfg.Quick)
		rng := rand.New(rand.NewSource(seed))
		var res *baseline.Result
		var err error
		switch kind {
		case "uncoded":
			res, err = baseline.RunUncoded(proto, adversaryRate(rate, rng))
		default:
			// Bursts are the adversarial placement FEC cannot counter;
			// same total budget as the random noise the coded schemes get.
			links := g.Edges()
			e := links[rng.Intn(len(links))]
			adv := burstOn(e.U, e.V, proto.Schedule().Rounds(), rate)
			res, err = baseline.RunNaiveFEC(proto, adv, 3)
		}
		if err != nil {
			return nil, err
		}
		if res.Success {
			succ++
		}
		blowups = append(blowups, res.Blowup)
	}
	name := "uncoded Π"
	level := "ε/m"
	ntype := "oblivious ins+del+sub"
	if kind != "uncoded" {
		name = "naive FEC (3x repetition)"
		ntype = "burst (same budget)"
	}
	return []string{
		name, level, ntype,
		fmt.Sprintf("%d/%d", succ, trials),
		fmt.Sprintf("%.1f", stats.Summarize(blowups).Mean),
		"yes (but not noise-resilient)",
	}, nil
}
