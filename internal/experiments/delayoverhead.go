package experiments

import (
	"fmt"

	"mpic"
	"mpic/internal/core"
	"mpic/internal/graph"
	"mpic/internal/stats"
)

// DelayOverhead (E-D1) measures the coding overhead against the delay
// distribution: the same noisy scenario run under the virtual-time
// network's delay models, from lockstep through heavy-tailed lognormal
// timing. The paper's analysis is round-synchronous; this table pins
// how the simulation degrades — late symbols become insdel noise, so
// the blowup and iteration count grow with the tail weight of the
// delay distribution while the success rate should hold until the
// late-symbol rate overwhelms the noise budget.
func DelayOverhead(cfg Config) (*Table, error) {
	n := 6
	if cfg.Quick {
		n = 4
	}
	g := graph.Line(n)
	t := &Table{
		ID:    "E-D1",
		Title: "Coding overhead vs delay distribution (Algorithm A, line topology, ε/m random noise)",
		Header: []string{"delay", "success", "mean blowup", "mean iterations",
			"makespan", "late symbols", "erasures", "worst p99 delay"},
	}
	models := []string{"unit", "jitter:0.3", "jitter:0.5", "jitter:0.8",
		"lognormal:0.15", "lognormal:0.25", "lognormal:0.35", "bands:0.25"}
	if cfg.Quick {
		models = []string{"unit", "jitter:0.5", "lognormal:0.25"}
	}
	rate := 0.005 / float64(g.M())
	var cells []mpic.GridCell
	for _, model := range models {
		c, err := noiseCell(core.AlgA, g, "random", rate, cfg, iterBudget(cfg))
		if err != nil {
			return nil, err
		}
		if c.Scenario.Delay, err = mpic.ParseDelay(model); err != nil {
			return nil, err
		}
		cells = append(cells, c)
	}
	// KeepResults: the network metrics live in each trial's result, not
	// the aggregate. Restored sessions stream them back as
	// StoredResults, so this table resumes under -checkpoint too.
	measured, err := runGrid(cfg, "E-D1", cells, true)
	if err != nil {
		return nil, err
	}
	for i, res := range measured {
		c := fromSweep(res.Cell)
		var makespan, p99 float64
		var late, erasures int64
		withNet := 0
		for _, r := range res.Results {
			if r == nil || r.Metrics.Net == nil {
				continue
			}
			withNet++
			makespan += r.Metrics.Net.Makespan
			late += r.Metrics.Net.LateSymbols
			erasures += r.Metrics.Net.Erasures
			if q := r.Metrics.Net.MaxP99(); q > p99 {
				p99 = q
			}
		}
		netCols := []string{"—", "—", "—", "—"}
		if withNet > 0 {
			netCols = []string{
				fmt.Sprintf("%.1f", makespan/float64(withNet)),
				fmt.Sprintf("%.1f", float64(late)/float64(withNet)),
				fmt.Sprintf("%.1f", float64(erasures)/float64(withNet)),
				fmt.Sprintf("%.2f", p99),
			}
		}
		t.Rows = append(t.Rows, append([]string{
			models[i],
			fmt.Sprintf("%.2f", stats.Rate(c.Successes, c.Trials)),
			fmt.Sprintf("%.1f", stats.Summarize(c.Blowups).Mean),
			fmt.Sprintf("%.0f", stats.Summarize(c.Iters).Mean),
		}, netCols...))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("n=%d, m=%d, rate %.5f; the unit row runs the synchronous lockstep executor, so it reports no network metrics", n, g.M(), rate),
		"late symbols surface as insdel noise: heavier delay tails raise the blowup before they dent the success rate")
	return t, nil
}
