package experiments

import (
	"fmt"

	"mpic"
	"mpic/internal/graph"
	"mpic/internal/protocol"
	"mpic/internal/stats"
)

// FullyUtilizedCost (E-F11) quantifies the Section 1 observation that
// motivates the paper's communication model: forcing a sparse protocol
// into the fully-utilized model (as RS94/HS16/ABE+16 require) inflates
// CC(Π) by up to a factor of m, which no constant-rate coding on top can
// recover. The table compares CC of the raw protocol, its fully-utilized
// conversion, and the coded simulation of each.
func FullyUtilizedCost(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E-F11",
		Title: "Cost of the fully-utilized model conversion (token ring workload)",
		Header: []string{"n (ring)", "m", "CC(Π)", "CC(fully-utilized Π)", "inflation",
			"coded blowup (sparse)", "coded blowup (fully-utilized)"},
	}
	sizes := []int{4, 6, 8, 12}
	if cfg.Quick {
		sizes = []int{4, 6}
	}
	for _, n := range sizes {
		laps := 6
		ring, err := protocol.NewTokenRing(n, laps, protocol.DefaultInputs(n, 4, cfg.Seed))
		if err != nil {
			return nil, err
		}
		fu := protocol.NewFullyUtilized(ring)
		sparseBits := ring.Schedule().TotalBits()
		fuBits := fu.Schedule().TotalBits()

		// Blowups relative to the ORIGINAL sparse protocol: the
		// fully-utilized conversion's padding is pure overhead, so the fu
		// cell's CC/CC(fu) blowup is rescaled by CC(fu)/CC(Π).
		var sparseBlow, fuBlow []float64
		for i, proto := range []protocol.Protocol{ring, fu} {
			base := mpic.Scenario{
				Workload:   mpic.UseProtocol(proto),
				Scheme:     mpic.AlgorithmA,
				Seed:       cfg.Seed,
				IterFactor: iterBudget(cfg),
			}
			c, err := sweepCell(base, cfg)
			if err != nil {
				return nil, err
			}
			if c.Successes < c.Trials {
				t.Notes = append(t.Notes, fmt.Sprintf("n=%d variant %d: %d/%d trials FAILED", n, i, c.Trials-c.Successes, c.Trials))
			}
			scale := 1.0
			if i == 1 {
				scale = float64(fuBits) / float64(sparseBits)
			}
			for _, blow := range c.Blowups {
				if i == 0 {
					sparseBlow = append(sparseBlow, blow*scale)
				} else {
					fuBlow = append(fuBlow, blow*scale)
				}
			}
		}
		g := graph.Ring(n)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(g.M()),
			fmt.Sprint(sparseBits), fmt.Sprint(fuBits),
			fmt.Sprintf("%.0fx", float64(fuBits)/float64(sparseBits)),
			fmt.Sprintf("%.1f", stats.Summarize(sparseBlow).Mean),
			fmt.Sprintf("%.1f", stats.Summarize(fuBlow).Mean),
		})
	}
	t.Notes = append(t.Notes,
		"Section 1: the fully-utilized conversion costs a factor 2m on this 1-bit-per-round workload, and the coded run inherits it — the relaxed model is what makes constant rate possible for sparse protocols")
	return t, nil
}
