package experiments

import (
	"fmt"

	"mpic"
	"mpic/internal/graph"
	"mpic/internal/protocol"
	"mpic/internal/stats"
)

// FullyUtilizedCost (E-F11) quantifies the Section 1 observation that
// motivates the paper's communication model: forcing a sparse protocol
// into the fully-utilized model (as RS94/HS16/ABE+16 require) inflates
// CC(Π) by up to a factor of m, which no constant-rate coding on top can
// recover. The table compares CC of the raw protocol, its fully-utilized
// conversion, and the coded simulation of each.
func FullyUtilizedCost(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E-F11",
		Title: "Cost of the fully-utilized model conversion (token ring workload)",
		Header: []string{"n (ring)", "m", "CC(Π)", "CC(fully-utilized Π)", "inflation",
			"coded blowup (sparse)", "coded blowup (fully-utilized)"},
	}
	sizes := []int{4, 6, 8, 12}
	if cfg.Quick {
		sizes = []int{4, 6}
	}
	// The grid: per ring size, the sparse protocol and its fully-utilized
	// conversion, coded by the same scheme.
	type rowSpec struct {
		n          int
		sparseBits int
		fuBits     int
	}
	var rows []rowSpec
	var cells []mpic.GridCell
	const laps, inputBits = 6, 4
	for _, n := range sizes {
		ring, err := protocol.NewTokenRing(n, laps, protocol.DefaultInputs(n, inputBits, cfg.Seed))
		if err != nil {
			return nil, err
		}
		fu := protocol.NewFullyUtilized(ring)
		rows = append(rows, rowSpec{n: n, sparseBits: ring.Schedule().TotalBits(), fuBits: fu.Schedule().TotalBits()})
		for _, proto := range []protocol.Protocol{ring, fu} {
			cells = append(cells, gridCell(mpic.Scenario{
				Workload:   mpic.UseProtocol(proto),
				Scheme:     mpic.AlgorithmA,
				Seed:       cfg.Seed,
				IterFactor: iterBudget(cfg),
				HashMode:   mpic.HashLegacy, // paper-faithful, like cellScenario
			}, cfg))
		}
	}
	// The protocols ride UseProtocol closures the grid fingerprint cannot
	// see; the salt carries their shaping parameters.
	measured, err := runCells(cfg, fmt.Sprintf("E-F11 sizes=%v laps=%d inputs=%d", sizes, laps, inputBits), cells)
	if err != nil {
		return nil, err
	}
	for i, r := range rows {
		// Blowups relative to the ORIGINAL sparse protocol: the
		// fully-utilized conversion's padding is pure overhead, so the fu
		// cell's CC/CC(fu) blowup is rescaled by CC(fu)/CC(Π).
		var sparseBlow, fuBlow []float64
		for v, c := range []cell{measured[2*i], measured[2*i+1]} {
			if c.Successes < c.Trials {
				t.Notes = append(t.Notes, fmt.Sprintf("n=%d variant %d: %d/%d trials FAILED", r.n, v, c.Trials-c.Successes, c.Trials))
			}
			scale := 1.0
			if v == 1 {
				scale = float64(r.fuBits) / float64(r.sparseBits)
			}
			for _, blow := range c.Blowups {
				if v == 0 {
					sparseBlow = append(sparseBlow, blow*scale)
				} else {
					fuBlow = append(fuBlow, blow*scale)
				}
			}
		}
		g := graph.Ring(r.n)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(r.n), fmt.Sprint(g.M()),
			fmt.Sprint(r.sparseBits), fmt.Sprint(r.fuBits),
			fmt.Sprintf("%.0fx", float64(r.fuBits)/float64(r.sparseBits)),
			fmt.Sprintf("%.1f", stats.Summarize(sparseBlow).Mean),
			fmt.Sprintf("%.1f", stats.Summarize(fuBlow).Mean),
		})
	}
	t.Notes = append(t.Notes,
		"Section 1: the fully-utilized conversion costs a factor 2m on this 1-bit-per-round workload, and the coded run inherits it — the relaxed model is what makes constant rate possible for sparse protocols")
	return t, nil
}
