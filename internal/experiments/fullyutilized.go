package experiments

import (
	"fmt"

	"mpic/internal/core"
	"mpic/internal/graph"
	"mpic/internal/protocol"
	"mpic/internal/stats"
)

// FullyUtilizedCost (E-F11) quantifies the Section 1 observation that
// motivates the paper's communication model: forcing a sparse protocol
// into the fully-utilized model (as RS94/HS16/ABE+16 require) inflates
// CC(Π) by up to a factor of m, which no constant-rate coding on top can
// recover. The table compares CC of the raw protocol, its fully-utilized
// conversion, and the coded simulation of each.
func FullyUtilizedCost(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E-F11",
		Title: "Cost of the fully-utilized model conversion (token ring workload)",
		Header: []string{"n (ring)", "m", "CC(Π)", "CC(fully-utilized Π)", "inflation",
			"coded blowup (sparse)", "coded blowup (fully-utilized)"},
	}
	sizes := []int{4, 6, 8, 12}
	if cfg.Quick {
		sizes = []int{4, 6}
	}
	for _, n := range sizes {
		laps := 6
		ring, err := protocol.NewTokenRing(n, laps, protocol.DefaultInputs(n, 4, cfg.Seed))
		if err != nil {
			return nil, err
		}
		fu := protocol.NewFullyUtilized(ring)
		sparseBits := ring.Schedule().TotalBits()
		fuBits := fu.Schedule().TotalBits()

		var sparseBlow, fuBlow []float64
		trials := cfg.trials()
		for trial := 0; trial < trials; trial++ {
			seed := cfg.Seed + int64(trial)*7907
			for i, proto := range []protocol.Protocol{ring, fu} {
				params := core.ParamsFor(core.AlgA, proto.Graph())
				params.CRSKey = seed
				params.IterFactor = iterBudget(cfg)
				res, err := core.Run(core.Options{Protocol: proto, Params: params})
				if err != nil {
					return nil, err
				}
				if !res.Success {
					t.Notes = append(t.Notes, fmt.Sprintf("n=%d variant %d trial %d FAILED", n, i, trial))
				}
				// Blowup relative to the ORIGINAL sparse protocol: the
				// fully-utilized conversion's padding is pure overhead.
				blow := float64(res.Metrics.CC) / float64(sparseBits)
				if i == 0 {
					sparseBlow = append(sparseBlow, blow)
				} else {
					fuBlow = append(fuBlow, blow)
				}
			}
		}
		g := graph.Ring(n)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(g.M()),
			fmt.Sprint(sparseBits), fmt.Sprint(fuBits),
			fmt.Sprintf("%.0fx", float64(fuBits)/float64(sparseBits)),
			fmt.Sprintf("%.1f", stats.Summarize(sparseBlow).Mean),
			fmt.Sprintf("%.1f", stats.Summarize(fuBlow).Mean),
		})
	}
	t.Notes = append(t.Notes,
		"Section 1: the fully-utilized conversion costs a factor 2m on this 1-bit-per-round workload, and the coded run inherits it — the relaxed model is what makes constant rate possible for sparse protocols")
	return t, nil
}
