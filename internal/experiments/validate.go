package experiments

import (
	"fmt"

	"mpic"
	"mpic/internal/adversary"
	"mpic/internal/bitstring"
	"mpic/internal/channel"
	"mpic/internal/core"
	"mpic/internal/graph"
	"mpic/internal/stats"
	"mpic/internal/trace"
)

// simBitDeleter deletes the first `cap` payload bits on one link during
// simulation phases — a minimal, surgically placed attack.
type simBitDeleter struct {
	oracle adversary.PhaseOracle
	target channel.Link
	cap    int
	used   int
}

// Corrupt implements adversary.Adversary.
func (d *simBitDeleter) Corrupt(round int, link channel.Link, sent bitstring.Symbol) bitstring.Symbol {
	if d.used >= d.cap || link != d.target || sent == bitstring.Silence {
		return sent
	}
	if ph, _ := d.oracle(round); ph != int(trace.PhaseSimulation) {
		return sent
	}
	d.used++
	return bitstring.Silence
}

// RewindWave (E-F4) validates Claim 4.7: after an error near one end of
// a line, the rewind wave crosses the network at one hop per rewind
// round, so full recovery needs only O(1) extra iterations regardless of
// line length — the property the rewind phase exists to provide.
func RewindWave(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "E-F4",
		Title:  "Recovery latency after a single early corruption vs line length",
		Header: []string{"n", "|Π| chunks", "iterations (clean)", "iterations (1 deletion)", "extra"},
	}
	sizes := []int{4, 6, 8, 10}
	if cfg.Quick {
		sizes = []int{4, 6}
	}
	// The grid: per line length, one clean and one single-deletion run.
	var cells []mpic.GridCell
	for _, n := range sizes {
		base := cellScenario(core.AlgA, graph.Line(n), nil, cfg, iterBudget(cfg))
		noisy := base
		noisy.Noise = mpic.NoiseFunc("sim-bit-deleter", func(env mpic.NoiseEnv) (mpic.WiredNoise, error) {
			return mpic.WiredNoise{Factory: func(info mpic.RunInfo) mpic.Adversary {
				return &simBitDeleter{oracle: info.PhaseOracle, target: channel.Link{From: 0, To: 1}, cap: 1}
			}}, nil
		})
		cells = append(cells, oneShot(base), oneShot(noisy))
	}
	results, err := runGrid(cfg, "E-F4", cells, true)
	if err != nil {
		return nil, err
	}
	for i, n := range sizes {
		clean := results[2*i].Results[0]
		noisyRes := results[2*i+1].Results[0]
		status := ""
		if !noisyRes.Success {
			status = " FAILED"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n),
			fmt.Sprint(noisyRes.NumChunks),
			fmt.Sprint(clean.Iterations),
			fmt.Sprintf("%d%s", noisyRes.Iterations, status),
			fmt.Sprint(noisyRes.Iterations - clean.Iterations),
		})
	}
	t.Notes = append(t.Notes, "Claim 4.7: the extra-iterations column should stay O(1) as n grows (the rewind wave crosses the line within one rewind phase)")
	return t, nil
}

// PotentialGrowth (E-F5) validates Lemma 4.2's direction of travel: the
// potential φ increases every iteration, by at least K in the noiseless
// case; iterations touched by noise may move more (the EHC term pays for
// the damage).
func PotentialGrowth(cfg Config) (*Table, error) {
	g := graph.Line(5)
	m := float64(g.M())
	t := &Table{
		ID:     "E-F5",
		Title:  "Per-iteration potential change (Algorithm A, line n=5)",
		Header: []string{"noise ×(1/m)", "iterations", "min Δφ/K", "mean Δφ/K", "fraction Δφ ≥ K"},
	}
	multipliers := []float64{0, 0.005, 0.02}
	cells := make([]mpic.GridCell, len(multipliers))
	for i, mult := range multipliers {
		kind := "random"
		if mult == 0 {
			kind = "none"
		}
		noise, err := mpic.Noise(kind, mult/m)
		if err != nil {
			return nil, err
		}
		cells[i] = oneShot(cellScenario(core.AlgA, g, noise, cfg, iterBudget(cfg)))
	}
	// The potential trajectory lives on the per-run result: keep them.
	results, err := runGrid(cfg, "E-F5", cells, true)
	if err != nil {
		return nil, err
	}
	for i, mult := range multipliers {
		res := results[i].Results[0]
		k := float64(core.ParamsFor(core.AlgA, g).ChunkBits) / 5
		var deltas []float64
		atLeastK := 0
		var prev float64
		for j, snap := range res.Potential {
			if j > 0 {
				d := (snap.Phi - prev) / k
				deltas = append(deltas, d)
				if d >= 1-1e-9 {
					atLeastK++
				}
			}
			prev = snap.Phi
		}
		if len(deltas) == 0 {
			deltas = []float64{0}
		}
		s := stats.Summarize(deltas)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.3f", mult),
			fmt.Sprint(res.Iterations),
			fmt.Sprintf("%.2f", s.Min),
			fmt.Sprintf("%.2f", s.Mean),
			fmt.Sprintf("%.2f", float64(atLeastK)/float64(len(deltas))),
		})
	}
	t.Notes = append(t.Notes, "Lemma 4.2: every noiseless iteration gains at least K; noisy iterations are paid for by the C7·K·EHC term")
	return t, nil
}

// Collisions (E-F6) compares oracle-observed hash collisions with the
// Lemma 4.10 envelope O(ε·|Π|): collisions only happen on divergent
// links, and their count stays proportional to the error budget.
func Collisions(cfg Config) (*Table, error) {
	g := graph.Line(5)
	m := float64(g.M())
	t := &Table{
		ID:     "E-F6",
		Title:  "Observed hash collisions vs the O(ε·|Π|) envelope (Algorithm A)",
		Header: []string{"noise ×(1/m)", "corruptions", "collisions (oracle)", "|Π| chunks", "collisions/|Π|"},
	}
	multipliers := []float64{0, 0.005, 0.02, 0.05}
	cells := make([]mpic.GridCell, len(multipliers))
	for i, mult := range multipliers {
		kind := "random"
		if mult == 0 {
			kind = "none"
		}
		c, err := noiseCell(core.AlgA, g, kind, mult/m, cfg, iterBudget(cfg))
		if err != nil {
			return nil, err
		}
		cells[i] = c
	}
	measured, err := runCells(cfg, "E-F6", cells)
	if err != nil {
		return nil, err
	}
	for i, mult := range multipliers {
		c := measured[i]
		proto := workload(g, cfg.Seed, cfg.Quick)
		params := core.ParamsFor(core.AlgA, g)
		chunks := proto.Schedule().TotalBits()/params.ChunkBits + 1
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.3f", mult),
			fmt.Sprint(c.Corruptions),
			fmt.Sprint(c.Collisions),
			fmt.Sprint(chunks),
			fmt.Sprintf("%.3f", float64(c.Collisions)/float64(chunks*c.Trials)),
		})
	}
	t.Notes = append(t.Notes, "Lemma 4.10: zero noise ⇒ zero collisions (they require divergent transcripts); under noise the count scales with the budget, far below |Π|")
	return t, nil
}

// Ablation (E-F7) removes the flag-passing and rewind phases in turn,
// demonstrating the design motivations of Section 1.2: without flag
// passing, desynchronized parties burn communication simulating useless
// chunks; without the rewind phase, length mismatches must be repaired by
// the much slower per-link meeting-points path.
func Ablation(cfg Config) (*Table, error) {
	g := graph.Line(6)
	if cfg.Quick {
		g = graph.Line(4)
	}
	m := float64(g.M())
	rate := 0.01 / m
	t := &Table{
		ID:     "E-F7",
		Title:  "Phase ablations under ε/m oblivious noise (Algorithm A, line)",
		Header: []string{"variant", "success", "mean blowup", "mean iterations"},
	}
	variants := []struct {
		name             string
		noFlag, noRewind bool
	}{
		{"full scheme", false, false},
		{"no flag passing", true, false},
		{"no rewind phase", false, true},
	}
	cells := make([]mpic.GridCell, len(variants))
	for i, v := range variants {
		v := v
		base := cellScenario(core.AlgA, g, mpic.RandomNoise(rate), cfg, iterBudget(cfg))
		base.Tune = func(p *mpic.Params) {
			p.DisableFlagPassing = v.noFlag
			p.DisableRewind = v.noRewind
		}
		cells[i] = gridCell(base, cfg)
	}
	// The variants live in Tune closures the grid fingerprint cannot
	// see; name them in the session salt so editing them opens a fresh
	// session instead of restoring stale cells.
	salt := "E-F7"
	for _, v := range variants {
		salt += fmt.Sprintf(" %s(noFlag=%t,noRewind=%t)", v.name, v.noFlag, v.noRewind)
	}
	measured, err := runCells(cfg, salt, cells)
	if err != nil {
		return nil, err
	}
	for i, v := range variants {
		c := measured[i]
		t.Rows = append(t.Rows, []string{
			v.name,
			fmt.Sprintf("%d/%d", c.Successes, c.Trials),
			fmt.Sprintf("%.1f", stats.Summarize(c.Blowups).Mean),
			fmt.Sprintf("%.0f", stats.Summarize(c.Iters).Mean),
		})
	}
	t.Notes = append(t.Notes, "ablated variants should need more iterations/communication (or fail outright) at the same noise budget")
	return t, nil
}

// DeltaBias (E-F8) swaps the PRF seed expansion for the paper-faithful
// δ-biased AGHP generator and checks Lemma 5.2's message: δ-biased seeds
// behave like uniform ones for the hash-collision statistics.
func DeltaBias(cfg Config) (*Table, error) {
	g := graph.Line(4)
	m := float64(g.M())
	t := &Table{
		ID:     "E-F8",
		Title:  "δ-biased (AGHP) vs PRF seed expansion (Algorithm A, line n=4)",
		Header: []string{"seed expansion", "noise ×(1/m)", "success", "collisions", "mean blowup"},
	}
	type rowSpec struct {
		name string
		mult float64
	}
	var rows []rowSpec
	var cells []mpic.GridCell
	for _, seedKind := range []core.SeedKind{core.SeedPRF, core.SeedAGHP} {
		name := "PRF"
		if seedKind == core.SeedAGHP {
			name = "AGHP δ-biased"
		}
		for _, mult := range []float64{0, 0.01} {
			seedKind := seedKind
			var noise mpic.NoiseSpec
			if mult > 0 {
				noise = mpic.RandomNoise(mult / m)
			}
			base := cellScenario(core.AlgA, g, noise, cfg, iterBudget(cfg))
			base.Workload = workloadSpec(g.N(), true /* keep AGHP runs small */)
			base.Tune = func(p *mpic.Params) { p.SeedKind = seedKind }
			rows = append(rows, rowSpec{name, mult})
			cells = append(cells, gridCell(base, cfg))
		}
	}
	// The seed kinds live in Tune closures the grid fingerprint cannot
	// see; derive the salt from the measured variants themselves.
	salt := "E-F8 quick-workload"
	for _, r := range rows {
		salt += fmt.Sprintf(" %s/%g", r.name, r.mult)
	}
	measured, err := runCells(cfg, salt, cells)
	if err != nil {
		return nil, err
	}
	for i, r := range rows {
		c := measured[i]
		t.Rows = append(t.Rows, []string{
			r.name, fmt.Sprintf("%.3f", r.mult),
			fmt.Sprintf("%d/%d", c.Successes, c.Trials),
			fmt.Sprint(c.Collisions),
			fmt.Sprintf("%.1f", stats.Summarize(c.Blowups).Mean),
		})
	}
	t.Notes = append(t.Notes, "Lemma 5.2's message: the two seed expansions should be statistically indistinguishable at this scale")
	return t, nil
}

// SeedAttack (E-F9) validates Claim 5.16: corrupting the randomness
// exchange on even one link costs Θ(|Π|) errors because of the
// error-correcting code, so a budget-constrained attacker cannot break
// any link's seed; given enough (over-budget) corruption it can, and the
// link is then lost.
func SeedAttack(cfg Config) (*Table, error) {
	g := graph.Line(4)
	t := &Table{
		ID:     "E-F9",
		Title:  "Randomness-exchange attack (Algorithm A): broken seed links vs attack rate",
		Header: []string{"attack rate", "corruptions", "broken links", "success"},
	}
	target := channel.Link{From: 0, To: 1}
	rates := []float64{0.001, 0.01, 0.1, 0.5}
	cells := make([]mpic.GridCell, len(rates))
	for i, rate := range rates {
		rate := rate
		noise := mpic.NoiseFunc("seed-attack", func(env mpic.NoiseEnv) (mpic.WiredNoise, error) {
			return mpic.WiredNoise{
				Adversary: adversary.NewSeedAttacker([]channel.Link{target}, 1<<20, rate, env.Rng),
			}, nil
		})
		cells[i] = gridCell(cellScenario(core.AlgA, g, noise, cfg, iterBudget(cfg)), cfg)
	}
	results, err := runGrid(cfg, fmt.Sprintf("E-F9 rates=%v", rates), cells, false)
	if err != nil {
		return nil, err
	}
	for i, rate := range rates {
		c := results[i].Cell
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.3f", rate),
			fmt.Sprint(c.Corruptions),
			fmt.Sprintf("%d/%d", c.BrokenSeedLinks, c.Trials),
			fmt.Sprintf("%d/%d", c.Successes, c.Trials),
		})
	}
	t.Notes = append(t.Notes,
		"Claim 5.16: at protocol-level rates (ε/m ≈ 0.001) the ECC absorbs the attack and no seed breaks",
		"the window covers the whole exchange; the attack rate is relative to total CC")
	return t, nil
}
