package experiments

import (
	"fmt"

	"mpic"
	"mpic/internal/core"
	"mpic/internal/graph"
	"mpic/internal/stats"
)

// NoiseSweep (E-F1) measures success probability against the noise
// fraction for each scheme, validating the resilience claims of
// Theorems 1.1 and 1.2: Algorithm A holds up at Θ(ε/m) oblivious noise,
// Algorithm B at the smaller Θ(ε/(m log m)) budget against an adaptive
// attacker, with Algorithm C between them.
func NoiseSweep(cfg Config) (*Table, error) {
	n := 6
	if cfg.Quick {
		n = 4
	}
	g := graph.Line(n)
	m := float64(g.M())
	t := &Table{
		ID:     "E-F1",
		Title:  "Success probability vs noise fraction (line topology)",
		Header: []string{"scheme", "adversary", "noise ×(1/m)", "success rate", "mean blowup"},
	}
	multipliers := []float64{0, 0.002, 0.005, 0.01, 0.02, 0.05}
	if cfg.Quick {
		multipliers = []float64{0, 0.005, 0.02}
	}
	// The grid: schemes × multipliers, one row per cell.
	type rowSpec struct {
		scheme core.Scheme
		kind   string
		mult   float64
	}
	var rows []rowSpec
	var cells []mpic.GridCell
	for _, sw := range []struct {
		scheme core.Scheme
		noise  string
	}{{core.AlgA, "random"}, {core.AlgB, "adaptive"}, {core.AlgC, "adaptive"}} {
		for _, mult := range multipliers {
			kind := sw.noise
			if mult == 0 {
				kind = "none"
			}
			c, err := noiseCell(sw.scheme, g, kind, mult/m, cfg, iterBudget(cfg))
			if err != nil {
				return nil, err
			}
			rows = append(rows, rowSpec{sw.scheme, kind, mult})
			cells = append(cells, c)
		}
	}
	measured, err := runCells(cfg, "E-F1", cells)
	if err != nil {
		return nil, err
	}
	for i, r := range rows {
		c := measured[i]
		t.Rows = append(t.Rows, []string{
			r.scheme.String(), r.kind,
			fmt.Sprintf("%.3f", r.mult),
			fmt.Sprintf("%.2f", stats.Rate(c.Successes, c.Trials)),
			fmt.Sprintf("%.1f", stats.Summarize(c.Blowups).Mean),
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("n=%d, m=%d; success should stay high for small multipliers and degrade as ε grows", n, g.M()))
	return t, nil
}

// RateVsSize (E-F2) measures the communication blowup CC/CC(Π) as the
// network grows, across topology families — the constant-rate claim. The
// paper's Θ(1) rate predicts a blowup that does not grow with n or m
// (for fixed per-link workload density).
func RateVsSize(cfg Config) (*Table, error) {
	sizes := []int{4, 6, 8, 12, 16}
	if cfg.Quick {
		sizes = []int{4, 6, 8}
	}
	t := &Table{
		ID:     "E-F2",
		Title:  "Communication blowup vs network size (Algorithm A, noiseless and ε/m noise)",
		Header: []string{"topology", "n", "m", "CC(Π)", "blowup noiseless", "blowup at ε/m"},
	}
	// The grid: (topology, n) × {noiseless, ε/m}, two cells per row.
	type rowSpec struct {
		topo string
		n    int
		g    *graph.Graph
	}
	var rows []rowSpec
	var cells []mpic.GridCell
	for _, topo := range []string{"line", "ring", "star", "clique", "random"} {
		for _, n := range sizes {
			if topo == "clique" && n > 8 && cfg.Quick {
				continue
			}
			g, err := graph.ByName(topo, n)
			if err != nil {
				return nil, err
			}
			quiet, err := noiseCell(core.AlgA, g, "none", 0, cfg, iterBudget(cfg))
			if err != nil {
				return nil, err
			}
			noisy, err := noiseCell(core.AlgA, g, "random", 0.005/float64(g.M()), cfg, iterBudget(cfg))
			if err != nil {
				return nil, err
			}
			rows = append(rows, rowSpec{topo, n, g})
			cells = append(cells, quiet, noisy)
		}
	}
	measured, err := runCells(cfg, "E-F2", cells)
	if err != nil {
		return nil, err
	}
	for i, r := range rows {
		quiet, noisy := measured[2*i], measured[2*i+1]
		proto := workload(r.g, cfg.Seed, cfg.Quick)
		t.Rows = append(t.Rows, []string{
			r.topo, fmt.Sprint(r.n), fmt.Sprint(r.g.M()),
			fmt.Sprint(proto.Schedule().TotalBits()),
			fmt.Sprintf("%.1f", stats.Summarize(quiet.Blowups).Mean),
			fmt.Sprintf("%.1f", stats.Summarize(noisy.Blowups).Mean),
		})
	}
	t.Notes = append(t.Notes, "constant rate: the blowup column should not trend upward with n")
	return t, nil
}

// CCVsNoise (E-F3) measures how total communication reacts to growing
// noise — the adaptive-budget effect of Section 4.4 (noise stretches the
// run, which grows the adversary's budget). The scheme's guarantee is
// that the blowup stays bounded while noise is under the tolerance.
func CCVsNoise(cfg Config) (*Table, error) {
	g := graph.Line(5)
	m := float64(g.M())
	t := &Table{
		ID:     "E-F3",
		Title:  "Communication blowup vs noise rate (Algorithm A, line n=5)",
		Header: []string{"noise ×(1/m)", "success", "mean blowup", "mean iterations", "corruptions"},
	}
	multipliers := []float64{0, 0.002, 0.005, 0.01, 0.02}
	cells := make([]mpic.GridCell, len(multipliers))
	for i, mult := range multipliers {
		kind := "random"
		if mult == 0 {
			kind = "none"
		}
		c, err := noiseCell(core.AlgA, g, kind, mult/m, cfg, iterBudget(cfg))
		if err != nil {
			return nil, err
		}
		cells[i] = c
	}
	measured, err := runCells(cfg, "E-F3", cells)
	if err != nil {
		return nil, err
	}
	for i, mult := range multipliers {
		c := measured[i]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.3f", mult),
			fmt.Sprintf("%d/%d", c.Successes, c.Trials),
			fmt.Sprintf("%.1f", stats.Summarize(c.Blowups).Mean),
			fmt.Sprintf("%.0f", stats.Summarize(c.Iters).Mean),
			fmt.Sprint(c.Corruptions),
		})
	}
	return t, nil
}

// Rounds (E-F10) measures the round-complexity blowup, which the paper
// explicitly does not bound by a constant (Section 1, "it may blow up the
// number of rounds of communication by more than a constant factor").
func Rounds(cfg Config) (*Table, error) {
	g := graph.Line(5)
	m := float64(g.M())
	t := &Table{
		ID:     "E-F10",
		Title:  "Round blowup vs noise (Algorithm A, line n=5)",
		Header: []string{"noise ×(1/m)", "RC(Π)", "mean rounds", "round blowup"},
	}
	proto := workload(g, cfg.Seed, cfg.Quick)
	rc := proto.Schedule().Rounds()
	multipliers := []float64{0, 0.005, 0.02}
	cells := make([]mpic.GridCell, len(multipliers))
	for i, mult := range multipliers {
		kind := "random"
		if mult == 0 {
			kind = "none"
		}
		c, err := noiseCell(core.AlgA, g, kind, mult/m, cfg, iterBudget(cfg))
		if err != nil {
			return nil, err
		}
		cells[i] = c
	}
	// The round count lives on the per-trial results, not the aggregate:
	// keep them.
	results, err := runGrid(cfg, "E-F10", cells, true)
	if err != nil {
		return nil, err
	}
	for i, mult := range multipliers {
		var rounds []float64
		for _, res := range results[i].Results {
			rounds = append(rounds, float64(res.Metrics.Rounds))
		}
		mean := stats.Summarize(rounds).Mean
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.3f", mult),
			fmt.Sprint(rc),
			fmt.Sprintf("%.0f", mean),
			fmt.Sprintf("%.1f", mean/float64(rc)),
		})
	}
	t.Notes = append(t.Notes, "round blowup exceeds the communication blowup: the coded protocol idles links that Π would use in parallel")
	return t, nil
}

// iterBudget picks the iteration multiplier for sweep experiments.
func iterBudget(cfg Config) int {
	if cfg.Quick {
		return 30
	}
	return 100
}
