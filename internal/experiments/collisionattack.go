package experiments

import (
	"fmt"

	"mpic/internal/core"
	"mpic/internal/graph"
	"mpic/internal/stats"
)

// CollisionAttack (E-F12) stages the Section 6.1 attack: a seed-aware
// (non-oblivious) adversary corrupts a chunk only when it can verify the
// damaged transcripts will hash equal at the next consistency check.
// With constant hash length the attacker lands corruptions regularly —
// each one buying undetected divergence — while τ = Θ(log m) shrinks its
// hit rate like 2^-τ. This is exactly why Algorithm B pays for longer
// hashes (and larger chunks to keep the rate constant).
func CollisionAttack(cfg Config) (*Table, error) {
	g := graph.Line(5)
	t := &Table{
		ID:    "E-F12",
		Title: "Seed-aware collision attack (§6.1) vs hash length τ",
		Header: []string{"τ (hash bits)", "slots inspected", "collisions landed",
			"hit rate", "success", "mean blowup"},
	}
	for _, tau := range []int{2, 4, 8, 16} {
		var tried, landed int
		succ := 0
		var blowups []float64
		trials := cfg.trials()
		for trial := 0; trial < trials; trial++ {
			seed := cfg.Seed + int64(trial)*7907
			proto := workload(g, seed, cfg.Quick)
			params := core.ParamsFor(core.Alg1, g)
			params.CRSKey = seed
			params.HashBits = tau
			params.IterFactor = iterBudget(cfg)
			res, err := core.Run(core.Options{
				Protocol:     proto,
				Params:       params,
				WhiteBoxRate: 0.02,
			})
			if err != nil {
				return nil, err
			}
			if res.Success {
				succ++
			}
			blowups = append(blowups, res.Blowup)
			if res.WhiteBox != nil {
				tried += res.WhiteBox.Tried
				landed += res.WhiteBox.Landed
			}
		}
		rate := 0.0
		if tried > 0 {
			rate = float64(landed) / float64(tried)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(tau),
			fmt.Sprint(tried),
			fmt.Sprint(landed),
			fmt.Sprintf("%.4f (2^-τ = %.4f)", rate, pow2neg(tau)),
			fmt.Sprintf("%d/%d", succ, trials),
			fmt.Sprintf("%.1f", stats.Summarize(blowups).Mean),
		})
	}
	t.Notes = append(t.Notes,
		"the attacker fires only on guaranteed collisions; its hit rate tracks ~2·2^-τ (two candidate corruptions per slot)",
		"Section 6.1's conclusion: constant τ leaves a non-oblivious adversary steady ammunition, Θ(log m) starves it — the design difference between Algorithms A and B")
	return t, nil
}

func pow2neg(tau int) float64 {
	out := 1.0
	for i := 0; i < tau; i++ {
		out /= 2
	}
	return out
}
