package experiments

import (
	"fmt"

	"mpic"
	"mpic/internal/core"
	"mpic/internal/graph"
	"mpic/internal/stats"
)

// CollisionAttack (E-F12) stages the Section 6.1 attack: a seed-aware
// (non-oblivious) adversary corrupts a chunk only when it can verify the
// damaged transcripts will hash equal at the next consistency check.
// With constant hash length the attacker lands corruptions regularly —
// each one buying undetected divergence — while τ = Θ(log m) shrinks its
// hit rate like 2^-τ. This is exactly why Algorithm B pays for longer
// hashes (and larger chunks to keep the rate constant).
func CollisionAttack(cfg Config) (*Table, error) {
	g := graph.Line(5)
	t := &Table{
		ID:    "E-F12",
		Title: "Seed-aware collision attack (§6.1) vs hash length τ",
		Header: []string{"τ (hash bits)", "slots inspected", "collisions landed",
			"hit rate", "success", "mean blowup"},
	}
	taus := []int{2, 4, 8, 16}
	cells := make([]mpic.GridCell, len(taus))
	for i, tau := range taus {
		tau := tau
		base := cellScenario(core.Alg1, g, nil, cfg, iterBudget(cfg))
		base.WhiteBoxRate = 0.02
		base.Tune = func(p *mpic.Params) { p.HashBits = tau }
		cells[i] = gridCell(base, cfg)
	}
	results, err := runGrid(cfg, fmt.Sprintf("E-F12 taus=%v wb=0.02", taus), cells, false)
	if err != nil {
		return nil, err
	}
	for i, tau := range taus {
		c := results[i].Cell
		rate := 0.0
		if c.WhiteBox.Tried > 0 {
			rate = float64(c.WhiteBox.Landed) / float64(c.WhiteBox.Tried)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(tau),
			fmt.Sprint(c.WhiteBox.Tried),
			fmt.Sprint(c.WhiteBox.Landed),
			fmt.Sprintf("%.4f (2^-τ = %.4f)", rate, pow2neg(tau)),
			fmt.Sprintf("%d/%d", c.Successes, c.Trials),
			fmt.Sprintf("%.1f", stats.Summarize(c.Blowups).Mean),
		})
	}
	t.Notes = append(t.Notes,
		"the attacker fires only on guaranteed collisions; its hit rate tracks ~2·2^-τ (two candidate corruptions per slot)",
		"Section 6.1's conclusion: constant τ leaves a non-oblivious adversary steady ammunition, Θ(log m) starves it — the design difference between Algorithms A and B")
	return t, nil
}

func pow2neg(tau int) float64 {
	out := 1.0
	for i := 0; i < tau; i++ {
		out /= 2
	}
	return out
}
