package trace

import (
	"testing"

	"mpic/internal/channel"
)

func TestMetricsAccounting(t *testing.T) {
	var m Metrics
	m.AddTransmission(PhaseSimulation)
	m.AddTransmission(PhaseSimulation)
	m.AddTransmission(PhaseRewind)
	m.AddTransmission(Phase(-1)) // unattributed still counts toward CC
	if m.CC != 4 {
		t.Errorf("CC = %d, want 4", m.CC)
	}
	if m.CCPhase[PhaseSimulation] != 2 || m.CCPhase[PhaseRewind] != 1 {
		t.Error("phase attribution wrong")
	}
	m.AddCorruption(channel.KindDeletion)
	m.AddCorruption(channel.KindInsertion)
	m.AddCorruption(channel.KindSubstitution)
	if m.TotalCorruptions() != 3 {
		t.Errorf("TotalCorruptions = %d, want 3", m.TotalCorruptions())
	}
	if got := m.NoiseFraction(); got != 0.75 {
		t.Errorf("NoiseFraction = %f, want 0.75", got)
	}
}

func TestNoiseFractionEmptyRun(t *testing.T) {
	var m Metrics
	if m.NoiseFraction() != 0 {
		t.Error("empty run should have zero noise fraction")
	}
}

func TestPhaseString(t *testing.T) {
	for p, want := range map[Phase]string{
		PhaseExchange: "exchange", PhaseMeetingPoints: "meeting-points",
		PhaseFlagPassing: "flag-passing", PhaseSimulation: "simulation",
		PhaseRewind: "rewind", Phase(99): "unknown",
	} {
		if p.String() != want {
			t.Errorf("Phase(%d).String() = %q, want %q", p, p.String(), want)
		}
	}
}
