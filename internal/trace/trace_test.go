package trace

import (
	"testing"

	"mpic/internal/channel"
)

func TestMetricsAccounting(t *testing.T) {
	var m Metrics
	m.AddTransmission(PhaseSimulation)
	m.AddTransmission(PhaseSimulation)
	m.AddTransmission(PhaseRewind)
	m.AddTransmission(Phase(-1)) // unattributed still counts toward CC
	if m.CC != 4 {
		t.Errorf("CC = %d, want 4", m.CC)
	}
	if m.CCPhase[PhaseSimulation] != 2 || m.CCPhase[PhaseRewind] != 1 {
		t.Error("phase attribution wrong")
	}
	m.AddCorruption(channel.KindDeletion)
	m.AddCorruption(channel.KindInsertion)
	m.AddCorruption(channel.KindSubstitution)
	if m.TotalCorruptions() != 3 {
		t.Errorf("TotalCorruptions = %d, want 3", m.TotalCorruptions())
	}
	if got := m.NoiseFraction(); got != 0.75 {
		t.Errorf("NoiseFraction = %f, want 0.75", got)
	}
}

func TestNoiseFractionEmptyRun(t *testing.T) {
	var m Metrics
	if m.NoiseFraction() != 0 {
		t.Error("empty run should have zero noise fraction")
	}
}

func TestDelayHist(t *testing.T) {
	var h DelayHist
	if h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram should read as zero")
	}
	// 99 delays at 0.5 and one straggler at 2.0.
	for i := 0; i < 99; i++ {
		h.Observe(0.5)
	}
	h.Observe(2.0)
	if h.Count != 100 {
		t.Fatalf("Count = %d, want 100", h.Count)
	}
	if got, want := h.Mean(), (99*0.5+2.0)/100; got != want {
		t.Errorf("Mean = %g, want %g", got, want)
	}
	if h.Max != 2.0 {
		t.Errorf("Max = %g, want 2", h.Max)
	}
	// p50 lands in the [0.5, 0.5625) bucket → midpoint 0.53125.
	if got := h.P50(); got < 0.5 || got >= 0.5625 {
		t.Errorf("P50 = %g, want inside [0.5, 0.5625)", got)
	}
	// p99 is the 99th observation — the straggler's bucket, clamped to Max.
	if got := h.P99(); got != 2.0 {
		t.Errorf("P99 = %g, want 2 (bucket midpoint clamped to Max)", got)
	}
	// Out-of-range observations clamp into the end buckets.
	var wide DelayHist
	wide.Observe(-1)
	wide.Observe(100)
	if wide.Buckets[0] != 1 || wide.Buckets[delayHistBuckets-1] != 1 {
		t.Error("out-of-range delays not clamped into the end buckets")
	}

	stats := NetStats{Links: []LinkDelay{{From: 0, To: 1, Hist: h}, {From: 1, To: 0}}}
	if stats.MaxP99() != 2.0 {
		t.Errorf("MaxP99 = %g, want 2", stats.MaxP99())
	}
	var empty NetStats
	if empty.MaxP99() != 0 {
		t.Error("MaxP99 of an empty NetStats should be 0")
	}
}

func TestPhaseString(t *testing.T) {
	for p, want := range map[Phase]string{
		PhaseExchange: "exchange", PhaseMeetingPoints: "meeting-points",
		PhaseFlagPassing: "flag-passing", PhaseSimulation: "simulation",
		PhaseRewind: "rewind", Phase(99): "unknown",
	} {
		if p.String() != want {
			t.Errorf("Phase(%d).String() = %q, want %q", p, p.String(), want)
		}
	}
}
