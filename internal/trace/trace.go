// Package trace collects the accounting every experiment reads off a run:
// communication per phase, corruption counts by kind, hash-collision
// oracle counts, and per-iteration snapshots when requested.
package trace

import "mpic/internal/channel"

// Phase identifies which part of the coding scheme a round belongs to.
type Phase int

const (
	// PhaseExchange is the randomness-exchange preamble (Algorithm 5).
	PhaseExchange Phase = iota
	// PhaseMeetingPoints is the consistency-check phase.
	PhaseMeetingPoints
	// PhaseFlagPassing is the spanning-tree flag phase (Algorithm 3).
	PhaseFlagPassing
	// PhaseSimulation is the chunk-simulation phase.
	PhaseSimulation
	// PhaseRewind is the rewind-request phase.
	PhaseRewind
	// NumPhases is the number of distinct phases.
	NumPhases
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseExchange:
		return "exchange"
	case PhaseMeetingPoints:
		return "meeting-points"
	case PhaseFlagPassing:
		return "flag-passing"
	case PhaseSimulation:
		return "simulation"
	case PhaseRewind:
		return "rewind"
	default:
		return "unknown"
	}
}

// Metrics accumulates counters over one run. The zero value is ready to
// use.
type Metrics struct {
	// CC is the total number of symbols transmitted by parties (the
	// paper's communication complexity; insertions do not count).
	CC int64
	// CCPhase breaks CC down by phase.
	CCPhase [NumPhases]int64
	// Rounds is the number of network rounds executed.
	Rounds int
	// Corruptions counts noise events by kind (substitution, deletion,
	// insertion — indexed by channel.Kind).
	Corruptions [4]int64
	// HashCollisions counts oracle-detected true hash collisions: hash
	// comparisons that matched while the underlying transcripts differed.
	HashCollisions int64
	// HashComparisons counts all oracle-checked hash comparisons.
	HashComparisons int64
	// Iterations is the number of scheme iterations executed.
	Iterations int
	// IdleIterations counts iterations where the network flag was "idle".
	IdleIterations int
}

// TotalCorruptions returns the number of corrupted transmissions.
func (m *Metrics) TotalCorruptions() int64 {
	return m.Corruptions[channel.KindSubstitution] +
		m.Corruptions[channel.KindDeletion] +
		m.Corruptions[channel.KindInsertion]
}

// NoiseFraction returns corruptions divided by CC, the paper's noise
// fraction µ. Returns 0 for an empty run.
func (m *Metrics) NoiseFraction() float64 {
	if m.CC == 0 {
		return 0
	}
	return float64(m.TotalCorruptions()) / float64(m.CC)
}

// AddTransmission records one party transmission in the given phase.
func (m *Metrics) AddTransmission(p Phase) {
	m.CC++
	if p >= 0 && p < NumPhases {
		m.CCPhase[p]++
	}
}

// AddCorruption records one noise event.
func (m *Metrics) AddCorruption(k channel.Kind) {
	m.Corruptions[k]++
}
