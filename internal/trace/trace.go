// Package trace collects the accounting every experiment reads off a run:
// communication per phase, corruption counts by kind, hash-collision
// oracle counts, and per-iteration snapshots when requested.
package trace

import "mpic/internal/channel"

// Phase identifies which part of the coding scheme a round belongs to.
type Phase int

const (
	// PhaseExchange is the randomness-exchange preamble (Algorithm 5).
	PhaseExchange Phase = iota
	// PhaseMeetingPoints is the consistency-check phase.
	PhaseMeetingPoints
	// PhaseFlagPassing is the spanning-tree flag phase (Algorithm 3).
	PhaseFlagPassing
	// PhaseSimulation is the chunk-simulation phase.
	PhaseSimulation
	// PhaseRewind is the rewind-request phase.
	PhaseRewind
	// NumPhases is the number of distinct phases.
	NumPhases
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseExchange:
		return "exchange"
	case PhaseMeetingPoints:
		return "meeting-points"
	case PhaseFlagPassing:
		return "flag-passing"
	case PhaseSimulation:
		return "simulation"
	case PhaseRewind:
		return "rewind"
	default:
		return "unknown"
	}
}

// Metrics accumulates counters over one run. The zero value is ready to
// use.
type Metrics struct {
	// CC is the total number of symbols transmitted by parties (the
	// paper's communication complexity; insertions do not count).
	CC int64
	// CCPhase breaks CC down by phase.
	CCPhase [NumPhases]int64
	// Rounds is the number of network rounds executed.
	Rounds int
	// Corruptions counts noise events by kind (substitution, deletion,
	// insertion — indexed by channel.Kind).
	Corruptions [4]int64
	// HashCollisions counts oracle-detected true hash collisions: hash
	// comparisons that matched while the underlying transcripts differed.
	HashCollisions int64
	// HashComparisons counts all oracle-checked hash comparisons.
	HashComparisons int64
	// Iterations is the number of scheme iterations executed.
	Iterations int
	// IdleIterations counts iterations where the network flag was "idle".
	IdleIterations int
	// Net holds the virtual-time accounting of a timed run (delay
	// distributions, makespan, late-symbol counts); nil for lockstep
	// runs, so the zero Metrics value — and every result pinned before
	// virtual time existed — is unchanged.
	Net *NetStats `json:",omitempty"`
}

// NetStats is the virtual-time accounting of a timed run — present on
// Metrics only when the network executed under a delay model (see
// internal/network's DES core); lockstep runs leave Net nil, so every
// pre-existing fixed-seed pin sees an unchanged Metrics value.
type NetStats struct {
	// Makespan is the virtual time at which the last executed round
	// closed, in round-periods. Under the unit model it equals Rounds;
	// under heavy-tailed delay models it is the wall-clock story the
	// round counter cannot tell.
	Makespan float64
	// LateSymbols counts symbols that missed their round deadline — each
	// was recorded as a deletion at the deadline (the paper's insdel
	// mapping of a timing fault).
	LateSymbols int64
	// LateDelivered counts late symbols that later landed in a silent
	// slot and were recorded as out-of-band insertions.
	LateDelivered int64
	// LateDropped counts late symbols that found their slot occupied (or
	// their receiver crashed) when they arrived and were discarded; their
	// deadline deletion is their only trace.
	LateDropped int64
	// Erasures counts symbols erased in transit by the fault schedule —
	// link outages and crashed endpoints — each recorded as a deletion.
	Erasures int64
	// Links holds one delay histogram per directed link, in the engine's
	// deterministic link order.
	Links []LinkDelay `json:",omitempty"`
}

// LinkDelay is one directed link's flight-delay distribution.
type LinkDelay struct {
	// From and To identify the directed link (party indices).
	From, To int
	// Hist is the delay histogram; quantiles via Hist.Quantile.
	Hist DelayHist
}

// delayHistBuckets and delayHistWidth size the fixed delay histogram:
// 64 linear buckets of 1/16 round cover flight times up to 4 rounds
// (anything beyond lands in the open-ended last bucket). Memory per
// link is constant, so per-link stats never scale with run length.
const (
	delayHistBuckets = 64
	delayHistWidth   = 1.0 / 16
)

// DelayHist is a fixed-size histogram of per-symbol flight delays,
// measured in round-periods. The zero value is ready to use.
type DelayHist struct {
	// Count, Sum, and Max summarize all observed delays exactly.
	Count int64
	Sum   float64
	Max   float64
	// Buckets[i] counts delays in [i/16, (i+1)/16) rounds; the last
	// bucket is open-ended.
	Buckets [delayHistBuckets]int64
}

// Observe records one flight delay.
func (h *DelayHist) Observe(d float64) {
	h.Count++
	h.Sum += d
	if d > h.Max {
		h.Max = d
	}
	i := int(d / delayHistWidth)
	if i < 0 {
		i = 0
	}
	if i >= delayHistBuckets {
		i = delayHistBuckets - 1
	}
	h.Buckets[i]++
}

// Mean returns the exact mean delay (0 for an empty histogram).
func (h *DelayHist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile returns the q-quantile (q in [0,1]) at bucket resolution: the
// midpoint of the bucket holding the q-th observation, clamped to the
// exact Max so the tail never overshoots reality. Returns 0 for an empty
// histogram.
func (h *DelayHist) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	rank := int64(q * float64(h.Count))
	if rank >= h.Count {
		rank = h.Count - 1
	}
	var seen int64
	for i, c := range h.Buckets {
		seen += c
		if seen > rank {
			mid := (float64(i) + 0.5) * delayHistWidth
			if mid > h.Max {
				return h.Max
			}
			return mid
		}
	}
	return h.Max
}

// P50 is the median flight delay.
func (h *DelayHist) P50() float64 { return h.Quantile(0.50) }

// P99 is the 99th-percentile flight delay.
func (h *DelayHist) P99() float64 { return h.Quantile(0.99) }

// MaxP99 returns the worst per-link p99 delay — the one-number summary
// CLIs print.
func (s *NetStats) MaxP99() float64 {
	worst := 0.0
	for i := range s.Links {
		if p := s.Links[i].Hist.P99(); p > worst {
			worst = p
		}
	}
	return worst
}

// TotalCorruptions returns the number of corrupted transmissions.
func (m *Metrics) TotalCorruptions() int64 {
	return m.Corruptions[channel.KindSubstitution] +
		m.Corruptions[channel.KindDeletion] +
		m.Corruptions[channel.KindInsertion]
}

// NoiseFraction returns corruptions divided by CC, the paper's noise
// fraction µ. Returns 0 for an empty run.
func (m *Metrics) NoiseFraction() float64 {
	if m.CC == 0 {
		return 0
	}
	return float64(m.TotalCorruptions()) / float64(m.CC)
}

// AddTransmission records one party transmission in the given phase.
func (m *Metrics) AddTransmission(p Phase) {
	m.CC++
	if p >= 0 && p < NumPhases {
		m.CCPhase[p]++
	}
}

// AddCorruption records one noise event.
func (m *Metrics) AddCorruption(k channel.Kind) {
	m.Corruptions[k]++
}
