package channel

import (
	"testing"

	"mpic/internal/bitstring"
)

func TestClassify(t *testing.T) {
	tests := []struct {
		sent, recv bitstring.Symbol
		want       Kind
	}{
		{bitstring.Sym0, bitstring.Sym0, KindNone},
		{bitstring.Silence, bitstring.Silence, KindNone},
		{bitstring.Sym0, bitstring.Sym1, KindSubstitution},
		{bitstring.Sym1, bitstring.Sym0, KindSubstitution},
		{bitstring.Sym0, bitstring.Silence, KindDeletion},
		{bitstring.Sym1, bitstring.Silence, KindDeletion},
		{bitstring.Silence, bitstring.Sym0, KindInsertion},
		{bitstring.Silence, bitstring.Sym1, KindInsertion},
	}
	for _, tt := range tests {
		if got := Classify(tt.sent, tt.recv); got != tt.want {
			t.Errorf("Classify(%v,%v) = %v, want %v", tt.sent, tt.recv, got, tt.want)
		}
	}
}

func TestLinkReverseAndString(t *testing.T) {
	l := Link{From: 3, To: 7}
	if l.Reverse() != (Link{From: 7, To: 3}) {
		t.Error("Reverse wrong")
	}
	if l.String() != "3->7" {
		t.Errorf("String() = %q", l.String())
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindNone: "none", KindSubstitution: "substitution",
		KindDeletion: "deletion", KindInsertion: "insertion", Kind(9): "unknown",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}
