// Package channel defines directed links and the classification of noise
// events on them. A corruption is any transmission where the delivered
// symbol differs from the sent one; following Section 2.1, a substitution
// turns one bit into another, a deletion turns a bit into silence, and an
// insertion turns silence into a bit.
package channel

import (
	"fmt"

	"mpic/internal/bitstring"
	"mpic/internal/graph"
)

// Link is a directed communication link From → To.
type Link struct {
	From, To graph.Node
}

// Reverse returns the link in the opposite direction.
func (l Link) Reverse() Link { return Link{From: l.To, To: l.From} }

// String implements fmt.Stringer.
func (l Link) String() string { return fmt.Sprintf("%d->%d", l.From, l.To) }

// Kind classifies a noise event.
type Kind int

const (
	// KindNone means the transmission was delivered unchanged.
	KindNone Kind = iota
	// KindSubstitution flips a bit into the other bit.
	KindSubstitution
	// KindDeletion removes a transmitted bit.
	KindDeletion
	// KindInsertion injects a bit where none was sent.
	KindInsertion
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindSubstitution:
		return "substitution"
	case KindDeletion:
		return "deletion"
	case KindInsertion:
		return "insertion"
	default:
		return "unknown"
	}
}

// Classify reports what kind of noise turned sent into recv.
func Classify(sent, recv bitstring.Symbol) Kind {
	switch {
	case sent == recv:
		return KindNone
	case sent == bitstring.Silence:
		return KindInsertion
	case recv == bitstring.Silence:
		return KindDeletion
	default:
		return KindSubstitution
	}
}
