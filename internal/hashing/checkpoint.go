package hashing

import (
	"mpic/internal/bitstring"
)

// DefaultCheckpointSpacing is the checkpoint interval in 64-bit words.
// Eight words (512 transcript bits) keeps the per-evaluation resume sweep
// a few cache lines long while storing one τ-word snapshot per 8·τ seed
// words — a 12.5% memory overhead on the materialized seed rows. Smaller
// spacings buy nothing once the resume sweep is already cheaper than the
// hash's fixed costs (fold + bookkeeping); larger ones make every
// evaluation re-sweep a longer tail for no memory that matters. See
// PERF.md ("checkpoint spacing") for the measurements behind the default.
const DefaultCheckpointSpacing = 8

// Checkpointed evaluates prefix hashes of one growing, rewindable bit
// vector against one fixed seed block, in time proportional to the growth
// since the previous evaluation rather than to the prefix length.
//
// It maintains the τ per-row partial accumulators of the inner-product
// kernel, snapshotted every spacing words: checkpoint i stores the
// accumulator state over words [0, i·spacing) of x. HashPrefix resumes
// from the highest valid checkpoint at or below the requested prefix,
// sweeps only the remaining tail, and pushes new checkpoints as it
// crosses boundaries. Because the meeting-points mechanism only ever
// extends or truncates the transcript, successive evaluations touch
// Θ(growth + spacing) words instead of re-sweeping from word 0.
//
// Invalidation contract: checkpoints cache a pure function of x's prefix
// content, so they are invalidated structurally, not by caller
// convention. The store attaches a bitstring.Watermark to x at
// construction; whenever x's mutation generation changes, the store takes
// the watermark — the minimum length x has had since the last evaluation
// — and discards every checkpoint covering words at or above that low
// point before hashing. Callers therefore never notify the store of
// truncations (Transcript.TruncateTo simply truncates the vector); a
// checkpoint can only be consulted after any rollback below it has been
// observed. Appends never invalidate: bits below a previous length are
// immutable under append, which is exactly the access pattern
// (truncate-or-extend) the meeting points of Braverman–Gelles–Mao–
// Ostrovsky guarantee.
//
// The output is bit-identical to
// InnerProductHash.HashPrefix(x, nbits, src, base) — the golden fuzz test
// pins this under randomized append/truncate/hash schedules — so both
// endpoints of a link agree as long as they use the same base offset,
// which SeedLayout.StableOffset provides. A Checkpointed is owned by one
// link endpoint and is not safe for concurrent use.
type Checkpointed struct {
	h *InnerProductHash
	x *bitstring.BitVec
	c *BlockCache // seed rows of the fixed block at base
	w *bitstring.Watermark

	spacing int
	fine    int      // dense spacing inside the rewind band (spacing/4, min 1)
	gen     uint64   // x.Gen() at the last sync
	ck      []uint64 // ck[(i-1)·τ + j]: row-j accumulator of checkpoint i
	ckw     []int    // ckw[i-1]: words covered by checkpoint i (ascending)
	nck     int      // highest valid checkpoint index (0 = none)

	lastLen int // x.Len() at the last sync — rewind depths measure from here
	band    int // decaying max observed rewind depth in bits (0 = no rewind yet)
}

// NewCheckpointed returns an incremental prefix hasher for x over the
// seed block of src starting at base (normally SeedLayout.StableOffset).
// hintWords pre-sizes the seed rows and the checkpoint store for row
// prefixes of that many words, so steady-state hashing allocates nothing;
// spacing is the checkpoint interval in words (≤ 0 selects
// DefaultCheckpointSpacing).
func NewCheckpointed(h *InnerProductHash, src SeedSource, base uint64, x *bitstring.BitVec, hintWords, spacing int) *Checkpointed {
	return NewCheckpointedIn(nil, h, src, base, x, hintWords, spacing)
}

// NewCheckpointedIn is NewCheckpointed drawing the seed-row and
// checkpoint buffers from pool (nil behaves like NewCheckpointed). Hand
// the buffers back with Release when the run is over so the next run can
// reuse them — this is what keeps IncrementalHash sweeps from paying the
// accumulator/checkpoint allocations per run.
func NewCheckpointedIn(pool *BufferPool, h *InnerProductHash, src SeedSource, base uint64, x *bitstring.BitVec, hintWords, spacing int) *Checkpointed {
	if spacing <= 0 {
		spacing = DefaultCheckpointSpacing
	}
	fine := spacing / 4
	if fine < 1 {
		fine = 1
	}
	s := &Checkpointed{
		h:       h,
		x:       x,
		c:       NewBlockCacheIn(pool, h, src, hintWords),
		w:       x.AttachWatermark(),
		spacing: spacing,
		fine:    fine,
		gen:     x.Gen(),
		lastLen: x.Len(),
	}
	s.c.SetBlock(base)
	if maxRow := int(h.wordsPerRow()); hintWords > maxRow {
		hintWords = maxRow
	}
	if hintWords > 0 {
		need := hintWords/spacing + 1
		if pool != nil {
			s.ck = pool.Get(need * h.Tau)
		} else {
			s.ck = make([]uint64, 0, need*h.Tau)
		}
		s.ckw = make([]int, 0, need)
	}
	return s
}

// SetBlock re-points the store at a new seed block — the epoch-refresh
// primitive. Every checkpoint is discarded (the accumulators cache inner
// products against the old block's rows) and the seed-row cache is
// rebased, both keeping their allocations; the next HashPrefix re-sweeps
// the whole prefix against the fresh block. Callers that refresh every R
// iterations therefore pay one Θ(|T|) sweep per epoch — amortized
// Θ(|T|/R) per iteration — in exchange for bounding how long a colliding
// prefix pair can persist (see the package doc's union-bound discussion).
// Re-pointing at the current block is a no-op.
func (s *Checkpointed) SetBlock(base uint64) {
	if s.c.haveSet && s.c.base == base {
		return
	}
	s.c.SetBlock(base)
	s.nck = 0
}

// Base returns the first stream word of the current seed block.
func (s *Checkpointed) Base() uint64 { return s.c.base }

// Release hands the store's buffers back to pool (nil is a no-op) and
// empties the store; it must not be used afterwards. Checkpoint contents
// never leak between runs: a fresh store starts with zero valid
// checkpoints and rebuilds every accumulator from its own transcript and
// seed block before any read.
func (s *Checkpointed) Release(pool *BufferPool) {
	if s == nil || pool == nil {
		return
	}
	s.c.Release(pool)
	pool.Put(s.ck)
	s.ck = nil
	s.ckw = nil
	s.nck = 0
}

// Source returns the underlying seed source.
func (s *Checkpointed) Source() SeedSource { return s.c.Source() }

// Spacing returns the checkpoint interval in words.
func (s *Checkpointed) Spacing() int { return s.spacing }

// Checkpoints returns the number of currently valid checkpoints (test and
// instrumentation hook).
func (s *Checkpointed) Checkpoints() int {
	s.sync()
	return s.nck
}

// sync discards checkpoints that a rollback of x may have invalidated.
// The generation check makes the no-mutation case one comparison; after
// any mutation the watermark yields the lowest bit length x reached, and
// every checkpoint covering words at or beyond that point is dropped.
// Observed rewinds also feed the adaptive-spacing band: the depth of the
// deepest recent truncation (as a decaying maximum) sizes the region
// below the live frontier that gets denser checkpoints, so the next
// truncation of similar depth lands near a checkpoint instead of forcing
// a long re-sweep from a sparse one.
func (s *Checkpointed) sync() {
	g := s.x.Gen()
	if g == s.gen {
		return
	}
	low := s.w.Take()
	if depth := s.lastLen - low; depth > 0 {
		s.band -= s.band >> 2
		if depth > s.band {
			s.band = depth
		}
	}
	s.lastLen = s.x.Len()
	// Binary search for the number of checkpoints whose covered words all
	// lie strictly below the low-water word (ckw is ascending).
	lw := low >> 6
	lo, hi := 0, s.nck
	for lo < hi {
		mid := (lo + hi) / 2
		if s.ckw[mid] <= lw {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < s.nck {
		s.nck = lo
	}
	s.gen = g
}

// RewindBand returns the current adaptive-spacing band in bits: the
// decaying maximum truncation depth observed so far (0 until the first
// rewind — fixed-spacing behavior is bit-for-bit unchanged until then).
// Test and instrumentation hook.
func (s *Checkpointed) RewindBand() int {
	s.sync()
	return s.band
}

// HashPrefix evaluates the hash on the first nbits bits of x, resuming
// from the highest valid checkpoint at or below the prefix. Output is
// bit-identical to the reference evaluator on the same seed block;
// steady-state evaluation allocates nothing.
func (s *Checkpointed) HashPrefix(nbits int) uint64 {
	if nbits > s.x.Len() {
		nbits = s.x.Len()
	}
	if nbits < 0 {
		nbits = 0
	}
	s.sync()
	xw := s.x.RawWords()
	nw, tailMask := s.h.sweepBounds(nbits, len(xw))
	if nw == 0 {
		return 0
	}
	s.c.ensure(nw)
	tau := s.h.Tau
	buf := s.c.buf
	// Resume. The final word of the sweep is tail-masked, so a checkpoint
	// is usable only if every word it covers lies strictly before nw-1:
	// binary-search the highest checkpoint with ckw ≤ nw-1.
	k := 0
	{
		lo, hi := 0, s.nck
		for lo < hi {
			mid := (lo + hi) / 2
			if s.ckw[mid] <= nw-1 {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		k = lo
	}
	var acc [64]uint64
	start := 0
	if k > 0 {
		copy(acc[:tau], s.ck[(k-1)*tau:k*tau])
		start = s.ckw[k-1]
	}
	// Adaptive spacing: inside the band of recently observed truncation
	// depths below the live frontier, checkpoints go down every fine
	// words instead of every spacing words; bandStart stays past nw when
	// no rewind has been seen, reproducing the fixed grid exactly.
	frontier := 0
	if s.nck > 0 {
		frontier = s.ckw[s.nck-1]
	}
	bandStart := nw // band empty unless a rewind has been observed
	if s.band > 0 {
		bandStart = (s.x.Len() - s.band) >> 6
		if bandStart < 0 {
			bandStart = 0
		}
	}
	// Segmented sweep: run whole checkpoint-free stretches through the
	// dispatched τ-row kernel (see kernel.go) and snapshot only at the
	// segment boundaries. nextPush gives the first word at or past which
	// the per-word schedule would have snapshotted — frontier+spacing on
	// the sparse grid, with the dense interval taking over at bandStart —
	// so the checkpoint positions are bit-for-bit the ones the original
	// word-at-a-time loop produced (the spacing pin tests hold this).
	for i := start; i < nw; {
		p := s.nextPush(frontier, bandStart)
		if p < nw {
			// acc after the sweep covers exactly words [0, p) of x, all of
			// them complete (p ≤ nw-1 < ⌈Len/64⌉) and unmasked: snapshot.
			kernelSweep(&acc, xw[i:p], buf[i*tau:], tau)
			s.pushCheckpoint(acc[:tau], p)
			frontier = p
			i = p
			continue
		}
		// Final segment: kernel over the complete words, then the
		// tail-masked last word (kernels only ever see complete words).
		kernelSweep(&acc, xw[i:nw-1], buf[i*tau:], tau)
		w := xw[nw-1] & tailMask
		for j, sw := range buf[(nw-1)*tau : nw*tau] {
			acc[j] ^= w & sw
		}
		break
	}
	return foldParity(acc[:tau])
}

// nextPush returns the first word index at which the checkpoint schedule
// snapshots, given the current frontier: the next sparse-grid point
// frontier+spacing, unless that lands at or past the rewind band's start,
// where the dense interval takes over — the first dense point at or past
// bandStart. This is exactly the first i > frontier satisfying the
// per-word trigger i >= frontier + (fine if i >= bandStart else spacing),
// and it is always strictly past the frontier (fine >= 1), so the
// segmented sweep makes progress.
func (s *Checkpointed) nextPush(frontier, bandStart int) int {
	p := frontier + s.spacing
	if p >= bandStart {
		p = frontier + s.fine
		if p < bandStart {
			p = bandStart
		}
	}
	return p
}

// pushCheckpoint appends the next checkpoint snapshot, covering words
// [0, words), after the live frontier (entries past nck·τ are stale
// after an invalidation and are overwritten in place; append's geometric
// growth keeps steady-state extension allocation-free once warm).
func (s *Checkpointed) pushCheckpoint(acc []uint64, words int) {
	s.ck = append(s.ck[:s.nck*len(acc)], acc...)
	s.ckw = append(s.ckw[:s.nck], words)
	s.nck++
}
