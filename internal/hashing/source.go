package hashing

// SeedSource yields an unbounded stream of seed bits, addressed by 64-bit
// word index. Two parties holding the same source parameters derive exactly
// the same stream, which is how a CRS or an exchanged seed turns into the
// per-iteration hash seeds of Algorithm 1 / Algorithm A.
type SeedSource interface {
	// Word returns the i-th 64-bit word of the stream.
	Word(i uint64) uint64
}

// BulkSeedSource is a SeedSource that can materialize a contiguous run of
// stream words in one call. Bulk fills amortize per-word setup (for the
// AGHP source, the gfPow that positions the powering sequence) and avoid
// interface dispatch per word, which is what the BlockCache fast path
// needs.
type BulkSeedSource interface {
	SeedSource
	// Fill sets dst[i] = Word(off + i) for every i.
	Fill(dst []uint64, off uint64)
}

// PRFSource derives seed words from a 128-bit key by strong integer mixing
// (splitmix64-style). It stands in for the uniformly random CRS of
// Algorithm 1: both endpoints derive identical words, and the oblivious
// adversary fixes its noise without seeing the key.
type PRFSource struct {
	k0, k1 uint64
}

// NewPRFSource returns a PRF-backed seed source for the given key halves.
func NewPRFSource(k0, k1 uint64) *PRFSource {
	return &PRFSource{k0: k0, k1: k1}
}

// Fill implements BulkSeedSource. The mixing function is small enough to
// inline, so the loop runs with no per-word call overhead.
func (p *PRFSource) Fill(dst []uint64, off uint64) {
	for i := range dst {
		dst[i] = p.Word(off + uint64(i))
	}
}

// Word implements SeedSource.
func (p *PRFSource) Word(i uint64) uint64 {
	x := i + 0x9e3779b97f4a7c15 + p.k0
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= p.k1
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// AGHPSource is the δ-biased string generator of Lemma 2.5, using the
// Alon–Goldreich–Håstad–Peralta "powering" construction over GF(2^64):
// bit i of the stream is ⟨a^(i+1), b⟩ over GF(2). A stream of N bits has
// bias at most N/2^64, far below any δ = 2^-Θ(|Π|K/m) needed at
// simulation scale, while the seed is just (a, b): 128 uniform bits —
// exactly the short-seed/long-output trade the paper's randomness
// exchange relies on.
//
// Multiplication by the fixed generator a is table-driven (one 8×256
// lookup table built at construction), and sequential word access reuses
// the running power, so hashing sweeps cost ~64 table multiplications per
// word. The source is not safe for concurrent use; every party holds its
// own instance.
type AGHPSource struct {
	a, b uint64
	tbl  [8][256]uint64
	// Sequential-access memo: the power a^(64·nextIdx+1).
	nextIdx uint64
	nextCur uint64
	hasMemo bool
}

// NewAGHPSource builds a δ-biased source from a 128-bit seed. A zero `a`
// would give a constant stream, so it is remapped to a fixed nonzero
// element.
func NewAGHPSource(a, b uint64) *AGHPSource {
	if a == 0 {
		a = 0x9d39247e33776d41
	}
	s := &AGHPSource{a: a, b: b}
	// mulByA is linear over GF(2), so precompute per-byte contributions.
	for i := 0; i < 8; i++ {
		for v := 0; v < 256; v++ {
			s.tbl[i][v] = gfMul64(uint64(v)<<uint(8*i), a)
		}
	}
	return s
}

// mulByA multiplies x by the fixed generator via byte-table lookups.
func (s *AGHPSource) mulByA(x uint64) uint64 {
	return s.tbl[0][x&0xff] ^
		s.tbl[1][x>>8&0xff] ^
		s.tbl[2][x>>16&0xff] ^
		s.tbl[3][x>>24&0xff] ^
		s.tbl[4][x>>32&0xff] ^
		s.tbl[5][x>>40&0xff] ^
		s.tbl[6][x>>48&0xff] ^
		s.tbl[7][x>>56&0xff]
}

// Word implements SeedSource: 64 consecutive stream bits packed into one
// word.
func (s *AGHPSource) Word(i uint64) uint64 {
	var w [1]uint64
	s.Fill(w[:], i)
	return w[0]
}

// Fill implements BulkSeedSource: one gfPow positions the powering
// sequence (skipped entirely when the fill continues the previous one),
// then the whole run is swept with 64 table multiplications per word.
// Sequential fills are therefore ~64× cheaper per word than random
// single-word access.
func (s *AGHPSource) Fill(dst []uint64, off uint64) {
	if len(dst) == 0 {
		return
	}
	var cur uint64
	if s.hasMemo && s.nextIdx == off {
		cur = s.nextCur
	} else {
		// Bits 64·off+1 .. 64·off+64 of the powering sequence.
		cur = gfPow64(s.a, 64*off+1)
	}
	for k := range dst {
		var w uint64
		for j := 0; j < 64; j++ {
			w |= parity64(cur, s.b) << uint(j)
			cur = s.mulByA(cur)
		}
		dst[k] = w
	}
	s.nextIdx = off + uint64(len(dst))
	s.nextCur = cur
	s.hasMemo = true
}
