package hashing

import (
	"math/rand"
	"testing"

	"mpic/internal/bitstring"
)

// TestPooledBlockCacheEquivalence pins the arena-safety property: a
// BlockCache drawing recycled (dirty) buffers from a pool produces
// exactly the hashes of a freshly allocated one, across block switches
// and prefix growth.
func TestPooledBlockCacheEquivalence(t *testing.T) {
	h := NewInnerProductHash(8, 4096)
	pool := &BufferPool{}
	// Poison the pool with dirty buffers so reuse of stale words would
	// show up as a hash mismatch.
	for i := 0; i < 4; i++ {
		dirty := make([]uint64, 0, 512)
		dirty = dirty[:cap(dirty)]
		for j := range dirty {
			dirty[j] = 0xdeadbeefdeadbeef
		}
		pool.Put(dirty)
	}
	rng := rand.New(rand.NewSource(7))
	x := bitstring.NewBitVec(2048)
	for i := 0; i < 2048; i++ {
		x.Append(byte(rng.Intn(2)))
	}
	for round := 0; round < 3; round++ {
		src := NewPRFSource(uint64(round+1), uint64(round*13+5))
		fresh := NewBlockCache(h, src, 32)
		pooled := NewBlockCacheIn(pool, h, src, 32)
		for _, base := range []uint64{0, 3 * h.SeedWords(), 7 * h.SeedWords()} {
			fresh.SetBlock(base)
			pooled.SetBlock(base)
			for _, nbits := range []int{0, 13, 64, 700, 2048} {
				want := h.HashPrefixCached(x, nbits, fresh)
				got := h.HashPrefixCached(x, nbits, pooled)
				if got != want {
					t.Fatalf("round=%d base=%d nbits=%d: pooled %#x != fresh %#x", round, base, nbits, got, want)
				}
			}
		}
		pooled.Release(pool)
	}
}

// TestBufferPoolRecycles pins the pooling mechanics: released buffers
// come back on capacity match, and Reset drops them.
func TestBufferPoolRecycles(t *testing.T) {
	pool := &BufferPool{}
	if got := pool.Get(100); cap(got) < 100 {
		t.Fatalf("Get(100) cap %d", cap(got))
	}
	big := make([]uint64, 0, 1000)
	pool.Put(big)
	pool.Put(make([]uint64, 0)) // zero-cap: dropped
	if pool.Len() != 1 {
		t.Fatalf("pool holds %d buffers, want 1", pool.Len())
	}
	got := pool.Get(500)
	if cap(got) != 1000 {
		t.Fatalf("Get(500) did not reuse the 1000-cap buffer (cap %d)", cap(got))
	}
	if pool.Len() != 0 {
		t.Fatalf("pool holds %d buffers after reuse, want 0", pool.Len())
	}
	pool.Put(got)
	pool.Reset()
	if pool.Len() != 0 {
		t.Fatal("Reset left buffers pooled")
	}
	// Release is idempotent-ish: a released cache hands both buffers back.
	h := NewInnerProductHash(4, 1024)
	c := NewBlockCacheIn(pool, h, NewPRFSource(1, 2), 8)
	c.Release(pool)
	if pool.Len() != 2 {
		t.Fatalf("Release returned %d buffers, want 2 (buf + stage)", pool.Len())
	}
	var nilCache *BlockCache
	nilCache.Release(pool) // must not panic
}
