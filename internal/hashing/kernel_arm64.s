//go:build arm64 && !purego

#include "textflag.h"

// func sweepNEON(acc *[64]uint64, xw *uint64, n int, buf *uint64, tau int)
//
// τ-row accumulate over n complete input words against the interleaved
// seed buffer (buf[i*tau+j] = word i of row j). Rows go four at a time:
// two 128-bit accumulators stay register-resident across the whole word
// sweep, each input word is broadcast across both lanes once, and the
// four seed words for the row block sit contiguously at every stride
// step. A two-row block and a scalar final row mop up tau % 4. The
// caller masks the final partial word before calling, so every word
// here is complete; acc rows at index >= tau are never loaded or
// stored.
//
// Register plan: R0 acc cursor, R1 xw base, R2 n, R3 buf row-block
// cursor, R5 row stride in bytes (tau*8), R6 rows remaining; the word
// loops run on R10 (xw cursor), R9 (buf cursor), R11 (countdown).
TEXT ·sweepNEON(SB), NOSPLIT, $0-40
	MOVD acc+0(FP), R0
	MOVD xw+8(FP), R1
	MOVD n+16(FP), R2
	MOVD buf+24(FP), R3
	MOVD tau+32(FP), R6
	CBZ  R2, done
	LSL  $3, R6, R5          // stride = tau*8 bytes

block4:
	CMP  $4, R6
	BLT  block2
	VLD1 (R0), [V0.D2, V1.D2] // acc[j0..j0+3]
	MOVD R1, R10
	MOVD R3, R9
	MOVD R2, R11

words4:
	MOVD.P 8(R10), R12
	VDUP   R12, V4.D2        // input word in both lanes
	VLD1   (R9), [V5.D2, V6.D2]
	VAND   V4.B16, V5.B16, V5.B16
	VEOR   V5.B16, V0.B16, V0.B16
	VAND   V4.B16, V6.B16, V6.B16
	VEOR   V6.B16, V1.B16, V1.B16
	ADD    R5, R9
	SUB    $1, R11
	CBNZ   R11, words4

	VST1 [V0.D2, V1.D2], (R0)
	ADD  $32, R0
	ADD  $32, R3
	SUB  $4, R6
	B    block4

block2:
	CMP  $2, R6
	BLT  row1
	VLD1 (R0), [V0.D2]
	MOVD R1, R10
	MOVD R3, R9
	MOVD R2, R11

words2:
	MOVD.P 8(R10), R12
	VDUP   R12, V4.D2
	VLD1   (R9), [V5.D2]
	VAND   V4.B16, V5.B16, V5.B16
	VEOR   V5.B16, V0.B16, V0.B16
	ADD    R5, R9
	SUB    $1, R11
	CBNZ   R11, words2

	VST1 [V0.D2], (R0)
	ADD  $16, R0
	ADD  $16, R3
	SUB  $2, R6

row1:
	CBZ  R6, done
	MOVD (R0), R12
	MOVD R1, R10
	MOVD R3, R9
	MOVD R2, R11

words1:
	MOVD.P 8(R10), R13
	MOVD   (R9), R14
	AND    R14, R13
	EOR    R13, R12
	ADD    R5, R9
	SUB    $1, R11
	CBNZ   R11, words1

	MOVD R12, (R0)

done:
	RET
