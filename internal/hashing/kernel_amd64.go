//go:build amd64 && !purego

package hashing

// sweepAVX2 is the AVX2 τ-row accumulate: rows are processed in blocks
// of eight (two 256-bit register-resident accumulators), each input word
// broadcast across the lanes once and ANDed against the interleaved seed
// stride. Implemented in kernel_amd64.s; requires hasAVX2().
//
//go:noescape
func sweepAVX2(acc *[64]uint64, xw *uint64, n int, buf *uint64, tau int)

// cpuid executes CPUID with the given leaf/subleaf (kernel_amd64.s).
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads extended control register XCR0 (kernel_amd64.s). Only
// valid once CPUID has reported OSXSAVE.
func xgetbv0() (eax, edx uint32)

// hasAVX2 reports whether both the CPU and the OS support AVX2: OSXSAVE
// and AVX in leaf 1 ECX, XMM+YMM state enabled in XCR0, and AVX2 in
// leaf 7 EBX. The XCR0 check matters — a kernel that does not save YMM
// state makes VEX instructions fault even on AVX2 silicon.
func hasAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c1, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if c1&osxsave == 0 || c1&avx == 0 {
		return false
	}
	xcr0, _ := xgetbv0()
	if xcr0&0x6 != 0x6 { // XMM and YMM state both OS-managed
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	return b7&(1<<5) != 0
}

// archKernels returns the amd64 vector kernels usable on this CPU.
func archKernels() []kernelImpl {
	if !hasAVX2() {
		return nil
	}
	return []kernelImpl{{"avx2", kernelArch}}
}

// archSweep is the kernelArch dispatch target on amd64.
func archSweep(acc *[64]uint64, xw []uint64, buf []uint64, tau int) {
	sweepAVX2(acc, &xw[0], len(xw), &buf[0], tau)
}
