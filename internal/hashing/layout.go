package hashing

// Slot identifies which of the per-iteration hash evaluations a seed block
// feeds. The meeting-points step of Algorithm 7 exchanges three hashes per
// iteration: one of the counter k and two of transcript prefixes.
type Slot int

const (
	// SlotK seeds the hash of the meeting-point counter k.
	SlotK Slot = iota
	// SlotMP1 seeds the hash of the prefix at meeting point 1.
	SlotMP1
	// SlotMP2 seeds the hash of the prefix at meeting point 2.
	SlotMP2
	// numSlots is the number of seed blocks consumed per link-iteration.
	numSlots
)

// SeedLayout computes non-overlapping seed-word offsets for every
// (iteration, slot) pair on one link. Both endpoints of a link construct
// the same layout over the same source, so their hash evaluations agree —
// the shared-randomness invariant the consistency checks need.
type SeedLayout struct {
	hash *InnerProductHash
}

// NewSeedLayout returns the layout for one link's seed stream.
func NewSeedLayout(h *InnerProductHash) *SeedLayout {
	return &SeedLayout{hash: h}
}

// Offset returns the first seed word of the block for iteration it and
// slot s.
func (l *SeedLayout) Offset(it int, s Slot) uint64 {
	block := l.hash.SeedWords()
	return (uint64(it)*uint64(numSlots) + uint64(s)) * block
}
