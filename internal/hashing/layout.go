package hashing

// Slot identifies which of the per-iteration hash evaluations a seed block
// feeds. The meeting-points step of Algorithm 7 exchanges three hashes per
// iteration: one of the counter k and two of transcript prefixes.
type Slot int

const (
	// SlotK seeds the hash of the meeting-point counter k.
	SlotK Slot = iota
	// SlotMP1 seeds the hash of the prefix at meeting point 1.
	SlotMP1
	// SlotMP2 seeds the hash of the prefix at meeting point 2.
	SlotMP2
	// numSlots is the number of seed blocks consumed per link-iteration.
	numSlots
)

// SeedLayout computes non-overlapping seed-word offsets for every
// (iteration, slot) pair on one link. Both endpoints of a link construct
// the same layout over the same source, so their hash evaluations agree —
// the shared-randomness invariant the consistency checks need.
type SeedLayout struct {
	hash *InnerProductHash
}

// NewSeedLayout returns the layout for one link's seed stream.
func NewSeedLayout(h *InnerProductHash) *SeedLayout {
	return &SeedLayout{hash: h}
}

// Offset returns the first seed word of the block for iteration it and
// slot s.
func (l *SeedLayout) Offset(it int, s Slot) uint64 {
	block := l.hash.SeedWords()
	return (uint64(it)*uint64(numSlots) + uint64(s)) * block
}

// stableBase is the first seed word of the rewind-stable region: the
// per-slot seed blocks that do not change between iterations, used by the
// incremental prefix-hash checkpoints. Two constraints pull in opposite
// directions. The per-iteration region of Offset grows upward from word 0
// and must stay below it: realistic budgets top out around 10^8–10^9
// seed words (iterations × 3 slots × SeedWords), an order of magnitude
// and more of headroom — and RegionsDisjoint makes an overrun a loud
// construction-time error, not a silent overlap. Pulling downward, the
// AGHP source's bias grows with the highest stream position consumed
// (δ ≤ N/2^64 for N stream bits, Lemma 2.5): at 2^34 words the stable
// blocks sit near bit 2^40, keeping δ ≤ 2^-24 — below any per-check
// collision probability 2^-τ the schemes configure — where a lavish
// base like 2^50 would have floored δ at 2^-8 regardless of τ.
const stableBase uint64 = 1 << 34

// StableOffset returns the first seed word of the iteration-independent
// block for slot s. Both endpoints of a link compute the same offsets over
// the same stream, so — exactly as with Offset — their hash evaluations
// agree. Unlike Offset, the returned block is fixed for the whole run:
// hashing a transcript prefix against it yields the same value in every
// iteration, which is what lets checkpointed partial accumulators survive
// across iterations and rewinds (see Checkpointed).
func (l *SeedLayout) StableOffset(s Slot) uint64 {
	return stableBase + uint64(s)*l.hash.SeedWords()
}

// RegionsDisjoint reports whether the per-iteration region for the given
// iteration budget stays clear of the stable region — construction-time
// validation for configurations beyond the documented headroom.
func (l *SeedLayout) RegionsDisjoint(iters int) bool {
	if iters < 0 {
		return true
	}
	return l.Offset(iters, SlotK) <= stableBase
}

// EpochOffset returns the first seed word of the refresh block for slot s
// in epoch e. Epoch-refresh hashing (see Checkpointed.SetBlock and the
// package doc's union-bound discussion) re-derives the prefix-hash seed
// block every R iterations; each epoch gets its own numSlots-wide block
// laid out contiguously above stableBase, so epoch 0 coincides exactly
// with StableOffset — a run whose budget fits inside one epoch hashes
// bit-identically to the always-stable layout. As with Offset and
// StableOffset, both endpoints of a link compute the same offsets over
// the same stream, so their per-epoch hash evaluations agree.
func (l *SeedLayout) EpochOffset(s Slot, epoch int) uint64 {
	if epoch < 0 {
		epoch = 0
	}
	block := l.hash.SeedWords()
	return stableBase + (uint64(epoch)*uint64(numSlots)+uint64(s))*block
}

// EpochsFit reports whether epochs refresh epochs keep the epoch region
// within its bias budget. The region may extend to 4·stableBase = 2^36
// words (stream bit ~2^42): the AGHP source's bias there is
// δ ≤ 2^42/2^64 = 2^-22, still below every per-check collision
// probability 2^-τ the schemes configure, by the same argument that
// sized stableBase itself. Like RegionsDisjoint, this turns an
// over-budget configuration into a loud construction-time error instead
// of a silent bias regression.
func (l *SeedLayout) EpochsFit(epochs int) bool {
	if epochs < 1 {
		return true
	}
	return uint64(epochs)*uint64(numSlots)*l.hash.SeedWords() <= 3*stableBase
}
