//go:build amd64 && !purego

#include "textflag.h"

// func sweepAVX2(acc *[64]uint64, xw *uint64, n int, buf *uint64, tau int)
//
// τ-row accumulate over n complete input words against the interleaved
// seed buffer (buf[i*tau+j] = word i of row j). Rows go eight at a time:
// two 256-bit accumulators stay register-resident across the whole word
// sweep, each input word is broadcast across the lanes once, and the
// eight seed words for the row block sit contiguously at every stride
// step — the access pattern PR 1's interleaved layout was designed for.
// A four-row block and a scalar row loop mop up tau % 8. The caller
// masks the final partial word before calling, so every word here is
// complete; acc rows at index >= tau are never loaded or stored.
//
// Register plan: DI acc cursor, SI xw base, CX n, BX buf row-block
// cursor, R8 row stride in bytes (tau*8), R9 rows remaining; the word
// loops run on R12 (xw cursor), R11 (buf cursor), R13 (countdown).
TEXT ·sweepAVX2(SB), NOSPLIT, $0-40
	MOVQ  acc+0(FP), DI
	MOVQ  xw+8(FP), SI
	MOVQ  n+16(FP), CX
	MOVQ  buf+24(FP), BX
	MOVQ  tau+32(FP), R9
	TESTQ CX, CX
	JE    done
	MOVQ  R9, R8
	SHLQ  $3, R8             // stride = tau*8 bytes

block8:
	CMPQ    R9, $8
	JLT     block4
	VMOVDQU (DI), Y0         // acc[j0..j0+3]
	VMOVDQU 32(DI), Y1       // acc[j0+4..j0+7]
	MOVQ    SI, R12
	MOVQ    BX, R11
	MOVQ    CX, R13

words8:
	VPBROADCASTQ (R12), Y2   // input word in all four lanes
	VPAND        (R11), Y2, Y3
	VPXOR        Y3, Y0, Y0
	VPAND        32(R11), Y2, Y3
	VPXOR        Y3, Y1, Y1
	ADDQ         $8, R12
	ADDQ         R8, R11
	DECQ         R13
	JNZ          words8

	VMOVDQU Y0, (DI)
	VMOVDQU Y1, 32(DI)
	ADDQ    $64, DI
	ADDQ    $64, BX
	SUBQ    $8, R9
	JMP     block8

block4:
	CMPQ    R9, $4
	JLT     rows1
	VMOVDQU (DI), Y0
	MOVQ    SI, R12
	MOVQ    BX, R11
	MOVQ    CX, R13

words4:
	VPBROADCASTQ (R12), Y2
	VPAND        (R11), Y2, Y3
	VPXOR        Y3, Y0, Y0
	ADDQ         $8, R12
	ADDQ         R8, R11
	DECQ         R13
	JNZ          words4

	VMOVDQU Y0, (DI)
	ADDQ    $32, DI
	ADDQ    $32, BX
	SUBQ    $4, R9

rows1:
	TESTQ R9, R9
	JE    done
	MOVQ  (DI), R10
	MOVQ  SI, R12
	MOVQ  BX, R11
	MOVQ  CX, R13

words1:
	MOVQ (R12), AX
	ANDQ (R11), AX
	XORQ AX, R10
	ADDQ $8, R12
	ADDQ R8, R11
	DECQ R13
	JNZ  words1

	MOVQ R10, (DI)
	ADDQ $8, DI
	ADDQ $8, BX
	DECQ R9
	JMP  rows1

done:
	VZEROUPPER
	RET

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
//
// Reads XCR0. Callers must have verified OSXSAVE via CPUID first or this
// instruction faults.
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
