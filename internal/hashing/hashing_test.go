package hashing

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mpic/internal/bitstring"
)

func TestGFMulIdentityAndZero(t *testing.T) {
	xs := []uint64{1, 2, 3, 0xdeadbeef, 1 << 63, ^uint64(0)}
	for _, x := range xs {
		if gfMul64(x, 1) != x || gfMul64(1, x) != x {
			t.Errorf("1 is not multiplicative identity for %#x", x)
		}
		if gfMul64(x, 0) != 0 || gfMul64(0, x) != 0 {
			t.Errorf("0 not absorbing for %#x", x)
		}
	}
}

func TestGFMulCommutativeAssociativeDistributive(t *testing.T) {
	f := func(a, b, c uint64) bool {
		if gfMul64(a, b) != gfMul64(b, a) {
			return false
		}
		if gfMul64(gfMul64(a, b), c) != gfMul64(a, gfMul64(b, c)) {
			return false
		}
		return gfMul64(a, b^c) == gfMul64(a, b)^gfMul64(a, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGFPow(t *testing.T) {
	if gfPow64(5, 0) != 1 {
		t.Error("a^0 != 1")
	}
	if gfPow64(5, 1) != 5 {
		t.Error("a^1 != a")
	}
	// a^(i+j) == a^i * a^j
	f := func(a uint64, i, j uint16) bool {
		return gfPow64(a, uint64(i)+uint64(j)) == gfMul64(gfPow64(a, uint64(i)), gfPow64(a, uint64(j)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPRFSourceDeterministicAndSpread(t *testing.T) {
	s1 := NewPRFSource(1, 2)
	s2 := NewPRFSource(1, 2)
	s3 := NewPRFSource(1, 3)
	same, diff := 0, 0
	for i := uint64(0); i < 100; i++ {
		if s1.Word(i) != s2.Word(i) {
			t.Fatal("same key produced different streams")
		}
		if s1.Word(i) == s3.Word(i) {
			same++
		} else {
			diff++
		}
	}
	if same > 2 {
		t.Errorf("different keys collide on %d/100 words", same)
	}
	// Output should look balanced: count ones over many words.
	ones := 0
	for i := uint64(0); i < 1000; i++ {
		w := s1.Word(i)
		for j := 0; j < 64; j++ {
			ones += int(w >> uint(j) & 1)
		}
	}
	total := 1000 * 64
	if ones < total*45/100 || ones > total*55/100 {
		t.Errorf("PRF bit balance %d/%d outside [45%%,55%%]", ones, total)
	}
}

func TestAGHPSourceSequentialMatchesRandomAccess(t *testing.T) {
	src := NewAGHPSource(0x123456789abcdef, 0xfedcba987654321)
	// Word(i) must be consistent with recomputing from scratch.
	for _, i := range []uint64{0, 1, 2, 17, 100} {
		w1 := src.Word(i)
		w2 := src.Word(i)
		if w1 != w2 {
			t.Fatalf("Word(%d) not deterministic", i)
		}
	}
	// Adjacent words come from a contiguous powering sequence: verify by
	// direct recomputation of one bit.
	i := uint64(3)
	w := src.Word(i)
	cur := gfPow64(src.a, 64*i+1)
	for j := 0; j < 64; j++ {
		want := parity64(cur, src.b)
		if (w>>uint(j))&1 != want {
			t.Fatalf("bit %d of word %d mismatch", j, i)
		}
		cur = gfMul64(cur, src.a)
	}
}

func TestAGHPZeroARemapped(t *testing.T) {
	src := NewAGHPSource(0, 7)
	if src.a == 0 {
		t.Fatal("zero multiplier not remapped")
	}
	// Stream must not be constant.
	w0, w1 := src.Word(0), src.Word(1)
	if w0 == w1 && w0 == src.Word(2) {
		t.Error("suspiciously constant stream")
	}
}

func TestAGHPBalance(t *testing.T) {
	src := NewAGHPSource(0xabcdef12345678, 0x1122334455667788)
	ones, total := 0, 0
	for i := uint64(0); i < 200; i++ {
		w := src.Word(i)
		for j := 0; j < 64; j++ {
			ones += int(w >> uint(j) & 1)
			total++
		}
	}
	if ones < total*45/100 || ones > total*55/100 {
		t.Errorf("AGHP bit balance %d/%d outside [45%%,55%%]", ones, total)
	}
}

func TestBulkFillMatchesWord(t *testing.T) {
	sources := map[string]BulkSeedSource{
		"prf":  NewPRFSource(5, 9),
		"aghp": NewAGHPSource(5, 9),
	}
	for name, src := range sources {
		t.Run(name, func(t *testing.T) {
			// An independent instance for Word: the AGHP sequential memo
			// must not let Fill and Word feed each other.
			var ref SeedSource
			if name == "prf" {
				ref = NewPRFSource(5, 9)
			} else {
				ref = NewAGHPSource(5, 9)
			}
			for _, tc := range []struct {
				off uint64
				n   int
			}{{0, 1}, {0, 10}, {7, 5}, {100, 1}, {3, 64}, {12, 3}} {
				dst := make([]uint64, tc.n)
				src.Fill(dst, tc.off)
				for i, w := range dst {
					if want := ref.Word(tc.off + uint64(i)); w != want {
						t.Fatalf("Fill(off=%d)[%d] = %#x, want %#x", tc.off, i, w, want)
					}
				}
			}
			// Non-sequential jumps (backwards, with gaps) after a fill.
			dst := make([]uint64, 4)
			src.Fill(dst, 2)
			for i, w := range dst {
				if want := ref.Word(2 + uint64(i)); w != want {
					t.Fatalf("re-Fill(off=2)[%d] = %#x, want %#x", i, w, want)
				}
			}
		})
	}
}

// TestBlockCacheGoldenEquivalence is the golden test for the kernel
// rewrite: across random transcripts, prefix lengths, seeds, sources, and
// τ ∈ {1..64}, the cached transposed kernel must agree bit-for-bit with
// the reference interface-dispatch evaluator — the shared-randomness
// invariant that keeps both endpoints' hashes equal.
func TestBlockCacheGoldenEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 300; trial++ {
		tau := 1 + rng.Intn(64)
		maxLen := 1 + rng.Intn(700)
		h := NewInnerProductHash(tau, maxLen)
		var src, srcRef SeedSource
		a, b := rng.Uint64(), rng.Uint64()
		if trial%2 == 0 {
			src, srcRef = NewPRFSource(a, b), NewPRFSource(a, b)
		} else {
			src, srcRef = NewAGHPSource(a, b), NewAGHPSource(a, b)
		}
		x := randomBits(rng, rng.Intn(2*maxLen))
		c := NewBlockCache(h, src, rng.Intn(8))
		lay := NewSeedLayout(h)
		for step := 0; step < 6; step++ {
			it := rng.Intn(5)
			slot := Slot(rng.Intn(int(numSlots)))
			off := lay.Offset(it, slot)
			c.SetBlock(off)
			// Several prefix lengths per block, in random order, to
			// exercise cache growth and reuse.
			for k := 0; k < 3; k++ {
				nbits := rng.Intn(x.Len() + 1)
				got := h.HashPrefixCached(x, nbits, c)
				want := h.HashPrefix(x, nbits, srcRef, off)
				if got != want {
					t.Fatalf("trial %d: τ=%d maxLen=%d nbits=%d off=%d: cached %#x != reference %#x",
						trial, tau, maxLen, nbits, off, got, want)
				}
			}
			v := rng.Uint64()
			width := 1 + rng.Intn(64)
			if got, want := h.HashWordCached(v, width, c), h.HashUint(v, width, srcRef, off); got != want {
				t.Fatalf("trial %d: HashWordCached(%#x, %d) = %#x, want %#x", trial, v, width, got, want)
			}
		}
	}
}

// TestBlockCacheSteadyStateAllocs pins the zero-allocation contract of the
// cached hash path: once a block's rows are materialized, re-evaluation
// (and re-pointing at an already-sized block) allocates nothing.
func TestBlockCacheSteadyStateAllocs(t *testing.T) {
	h := NewInnerProductHash(8, 4096)
	src := NewPRFSource(1, 2)
	c := NewBlockCache(h, src, int(h.wordsPerRow()))
	x := randomBits(rand.New(rand.NewSource(3)), 4000)
	lay := NewSeedLayout(h)
	// Warm both blocks once.
	c.SetBlock(lay.Offset(0, SlotMP1))
	h.HashPrefixCached(x, x.Len(), c)
	c.SetBlock(lay.Offset(1, SlotMP1))
	h.HashPrefixCached(x, x.Len(), c)
	allocs := testing.AllocsPerRun(100, func() {
		c.SetBlock(lay.Offset(0, SlotMP1))
		if h.HashPrefixCached(x, x.Len(), c) == 0 {
			// Use the result so the call cannot be elided.
			_ = x.Len()
		}
		_ = h.HashWordCached(42, 32, c)
		c.SetBlock(lay.Offset(1, SlotMP1))
		_ = h.HashPrefixCached(x, 1000, c)
	})
	if allocs != 0 {
		t.Fatalf("cached hash path allocates %.1f times per iteration, want 0", allocs)
	}
}

func TestHashPaddingProperty(t *testing.T) {
	// h(x) == h(x ◦ 0^k): the property footnote 11 relies on.
	h := NewInnerProductHash(16, 512)
	src := NewPRFSource(11, 22)
	x := bitstring.FromBits([]byte{1, 0, 1, 1, 0, 1})
	hx := h.Hash(x, src, 0)
	y := x.Clone()
	for i := 0; i < 100; i++ {
		y.Append(0)
	}
	if got := h.Hash(y, src, 0); got != hx {
		t.Fatalf("h(x◦0^100) = %#x != h(x) = %#x", got, hx)
	}
}

func TestHashDistinguishesInputs(t *testing.T) {
	h := NewInnerProductHash(32, 256)
	src := NewPRFSource(3, 4)
	rng := rand.New(rand.NewSource(7))
	collisions := 0
	const trials = 300
	for i := 0; i < trials; i++ {
		a := randomBits(rng, 100)
		b := randomBits(rng, 100)
		if a.Equal(b) {
			continue
		}
		if h.Hash(a, src, 0) == h.Hash(b, src, 0) {
			collisions++
		}
	}
	// With 32-bit outputs, any collision in 300 trials is overwhelming
	// evidence of a bug.
	if collisions != 0 {
		t.Errorf("%d collisions in %d trials with 32-bit hash", collisions, trials)
	}
}

func TestHashSeedOffsetsIndependent(t *testing.T) {
	h := NewInnerProductHash(16, 128)
	src := NewPRFSource(3, 4)
	x := randomBits(rand.New(rand.NewSource(1)), 100)
	h1 := h.Hash(x, src, 0)
	h2 := h.Hash(x, src, h.SeedWords())
	if h1 == h2 {
		t.Error("different seed blocks produced identical hash (suspicious)")
	}
}

func TestHashEmptyInputIsZero(t *testing.T) {
	h := NewInnerProductHash(8, 64)
	src := NewPRFSource(0, 0)
	empty := bitstring.NewBitVec(0)
	if got := h.Hash(empty, src, 0); got != 0 {
		t.Errorf("hash of empty input = %#x, want 0 (inner product with nothing)", got)
	}
}

func TestHashUintWidth(t *testing.T) {
	h := NewInnerProductHash(16, 64)
	src := NewPRFSource(9, 9)
	if h.HashUint(5, 32, src, 0) != h.HashUint(5, 32, src, 0) {
		t.Error("HashUint not deterministic")
	}
	if h.HashUint(5, 32, src, 0) == h.HashUint(6, 32, src, 0) {
		t.Error("HashUint(5) == HashUint(6): suspicious for 16-bit output")
	}
}

func TestHashClamps(t *testing.T) {
	h := NewInnerProductHash(0, 0)
	if h.Tau != 1 || h.MaxLen != 1 {
		t.Errorf("clamping failed: tau=%d maxLen=%d", h.Tau, h.MaxLen)
	}
	h = NewInnerProductHash(100, 10)
	if h.Tau != 64 {
		t.Errorf("tau not clamped to 64: %d", h.Tau)
	}
}

func TestHashCollisionRateMatchesTau(t *testing.T) {
	// With τ output bits the collision probability for distinct inputs is
	// 2^-τ (Lemma 2.3). Empirically check τ=4: expect ≈ 1/16.
	h := NewInnerProductHash(4, 64)
	rng := rand.New(rand.NewSource(99))
	collisions, trials := 0, 2000
	for i := 0; i < trials; i++ {
		src := NewPRFSource(rng.Uint64(), rng.Uint64())
		a := randomBits(rng, 40)
		b := randomBits(rng, 40)
		if a.Equal(b) {
			continue
		}
		if h.Hash(a, src, 0) == h.Hash(b, src, 0) {
			collisions++
		}
	}
	rate := float64(collisions) / float64(trials)
	if rate < 0.02 || rate > 0.15 {
		t.Errorf("collision rate %.4f, want around 1/16 = 0.0625", rate)
	}
}

func TestSeedLayoutNonOverlapping(t *testing.T) {
	h := NewInnerProductHash(8, 256)
	l := NewSeedLayout(h)
	seen := map[uint64]bool{}
	for it := 0; it < 5; it++ {
		for s := SlotK; s < numSlots; s++ {
			off := l.Offset(it, s)
			if seen[off] {
				t.Fatalf("offset %d reused at it=%d slot=%d", off, it, s)
			}
			seen[off] = true
		}
	}
	// Blocks must be spaced at least SeedWords apart.
	if l.Offset(0, SlotMP1)-l.Offset(0, SlotK) < h.SeedWords() {
		t.Error("seed blocks overlap")
	}
}

func randomBits(rng *rand.Rand, n int) *bitstring.BitVec {
	v := bitstring.NewBitVec(n)
	for i := 0; i < n; i++ {
		v.Append(byte(rng.Intn(2)))
	}
	return v
}
