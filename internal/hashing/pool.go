package hashing

import "sync"

// BufferPool recycles the backing arrays of BlockCaches across runs. A
// coding-scheme run builds two large seed buffers per link endpoint (the
// mp1/mp2 prefix blocks, seedHint·τ words each) plus a small counter
// block; on an n-party clique that is Θ(n²) short-lived allocations per
// run. Batch drivers (Runner.Sweep, the experiment harness) run hundreds
// of simulations back to back, so handing the buffers back to a pool
// turns the per-run cost into a one-time warm-up — the ROADMAP's
// "amortize seed materialization across links".
//
// Buffers are matched by capacity with a best-fit scan (see Get for why
// first-fit would defeat the pool); the free list is small (a few
// entries per link endpoint of the largest run seen), so the scan is
// cheap next to the hash work the buffers feed. Get and Put are safe for
// concurrent use; the pool never retains more than maxPooled buffers, so
// a pathological caller cannot leak unbounded memory through it.
type BufferPool struct {
	mu    sync.Mutex
	free  [][]uint64
	stats PoolStats
}

// PoolStats counts a pool's traffic: Hits and Misses split the Get calls
// into those served from the free list and those that had to allocate,
// and WordsReused totals the capacity (in 64-bit words) of the reused
// buffers. The counters are cumulative over the pool's lifetime (Reset
// clears them) and are what makes the maxPooled bound and the best-fit
// scan tunable from measurements instead of guesses: a steady Miss rate
// on a warmed-up pool means the bound is too small (or the fit too
// coarse) for the topology being swept.
type PoolStats struct {
	Hits        uint64
	Misses      uint64
	WordsReused uint64
}

// Sub returns the stats accumulated since the earlier snapshot prev.
func (s PoolStats) Sub(prev PoolStats) PoolStats {
	return PoolStats{
		Hits:        s.Hits - prev.Hits,
		Misses:      s.Misses - prev.Misses,
		WordsReused: s.WordsReused - prev.WordsReused,
	}
}

// Stats returns a snapshot of the pool's cumulative counters.
func (p *BufferPool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// maxPooled bounds the free list. 4096 covers two prefix buffers plus a
// counter block per endpoint of a 26-clique (m=325, 650 endpoints).
const maxPooled = 4096

// Get returns a zero-length buffer with capacity at least minCap, reusing
// the best-fitting pooled array when one fits. Best fit matters: each
// link endpoint requests one tiny counter block before its two large
// prefix blocks, and a first-fit scan would let the tiny request claim a
// recycled prefix buffer, forcing the large requests that follow to
// allocate fresh — the exact churn the pool exists to remove.
func (p *BufferPool) Get(minCap int) []uint64 {
	if minCap < 1 {
		minCap = 1
	}
	p.mu.Lock()
	best := -1
	for i, b := range p.free {
		if cap(b) >= minCap && (best < 0 || cap(b) < cap(p.free[best])) {
			best = i
		}
	}
	if best >= 0 {
		b := p.free[best]
		last := len(p.free) - 1
		p.free[best] = p.free[last]
		p.free[last] = nil
		p.free = p.free[:last]
		p.stats.Hits++
		p.stats.WordsReused += uint64(cap(b))
		p.mu.Unlock()
		return b[:0]
	}
	p.stats.Misses++
	p.mu.Unlock()
	return make([]uint64, 0, minCap)
}

// Put hands a buffer back to the pool. Zero-capacity slices and overflow
// beyond the pool bound are dropped.
func (p *BufferPool) Put(buf []uint64) {
	if cap(buf) == 0 {
		return
	}
	p.mu.Lock()
	if len(p.free) < maxPooled {
		p.free = append(p.free, buf[:0])
	}
	p.mu.Unlock()
}

// Reset drops every pooled buffer, releasing the memory to the garbage
// collector, and clears the traffic counters.
func (p *BufferPool) Reset() {
	p.mu.Lock()
	p.free = nil
	p.stats = PoolStats{}
	p.mu.Unlock()
}

// Len reports how many buffers the pool currently holds.
func (p *BufferPool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}
