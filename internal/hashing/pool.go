package hashing

import (
	"math/bits"
	"sync"
)

// BufferPool recycles the backing arrays of BlockCaches across runs. A
// coding-scheme run builds two large seed buffers per link endpoint (the
// mp1/mp2 prefix blocks, seedHint·τ words each) plus a small counter
// block; on an n-party clique that is Θ(n²) short-lived allocations per
// run. Batch drivers (Runner.Sweep, the experiment harness) run hundreds
// of simulations back to back, so handing the buffers back to a pool
// turns the per-run cost into a one-time warm-up — the ROADMAP's
// "amortize seed materialization across links".
//
// Buffers are matched by capacity. The free list is segregated into
// power-of-two capacity classes (class k holds capacities in
// [2^(k-1), 2^k)): a request scans only its own class best-fit — a few
// entries, since one run's buffers concentrate in two or three classes —
// and falls through to the smallest-capacity buffer of the next
// non-empty class above, every member of which is guaranteed to fit.
// This keeps the former global best-fit semantics (a tiny counter-block
// request cannot claim a recycled prefix buffer while same-class buffers
// exist — see Get for why first-fit would defeat the pool) while
// replacing the O(pool) scan per Get with an O(class) one: the flat scan
// was measurable once n≥64 cliques pushed the pool to tens of thousands
// of buffers. Get and Put are safe for concurrent use; the pool never
// retains more than maxPooled buffers, so a pathological caller cannot
// leak unbounded memory through it.
type BufferPool struct {
	mu      sync.Mutex
	classes [numClasses][][]uint64
	n       int // total pooled buffers across classes
	stats   PoolStats
}

// numClasses covers every possible slice capacity (bits.Len of a
// positive int is at most 63 on 64-bit platforms, plus class 0 unused).
const numClasses = 64

// capClass maps a capacity to its class: bits.Len(c), so class k holds
// capacities in [2^(k-1), 2^k). Every buffer in any class above
// capClass(minCap) has capacity ≥ 2^capClass(minCap) > minCap.
func capClass(c int) int {
	return bits.Len(uint(c))
}

// PoolStats counts a pool's traffic: Hits and Misses split the Get calls
// into those served from the free list and those that had to allocate,
// and WordsReused totals the capacity (in 64-bit words) of the reused
// buffers. The counters are cumulative over the pool's lifetime (Reset
// clears them) and are what makes the maxPooled bound and the class
// structure tunable from measurements instead of guesses: a steady Miss
// rate on a warmed-up pool means the bound is too small (or the fit too
// coarse) for the topology being swept.
type PoolStats struct {
	Hits        uint64
	Misses      uint64
	WordsReused uint64
}

// Sub returns the stats accumulated since the earlier snapshot prev.
func (s PoolStats) Sub(prev PoolStats) PoolStats {
	return PoolStats{
		Hits:        s.Hits - prev.Hits,
		Misses:      s.Misses - prev.Misses,
		WordsReused: s.WordsReused - prev.WordsReused,
	}
}

// Stats returns a snapshot of the pool's cumulative counters.
func (p *BufferPool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// maxPooled bounds the free list. 32768 covers the roughly eight pooled
// buffers per link endpoint (two block caches plus a checkpoint store
// for each prefix slot, and the counter block) of a 64-clique (m=2016,
// 4032 endpoints) — the telemetry-driven raise from the former 4096,
// which capped out at a 26-clique and turned every n≥64 sweep into a
// steady miss stream (PERF.md, "arena tuning").
const maxPooled = 32768

// Get returns a zero-length buffer with capacity at least minCap, reusing
// the best-fitting pooled array in minCap's capacity class, or the
// smallest buffer of the next non-empty class above it. Fit quality
// matters: each link endpoint requests one tiny counter block before its
// two large prefix blocks, and a first-fit policy would let the tiny
// request claim a recycled prefix buffer, forcing the large requests
// that follow to allocate fresh — the exact churn the pool exists to
// remove.
func (p *BufferPool) Get(minCap int) []uint64 {
	if minCap < 1 {
		minCap = 1
	}
	p.mu.Lock()
	// Best fit within the request's own class (capacities here straddle
	// minCap, so each candidate must be checked).
	cls := capClass(minCap)
	best := -1
	free := p.classes[cls]
	for i, b := range free {
		if cap(b) >= minCap && (best < 0 || cap(b) < cap(free[best])) {
			best = i
		}
	}
	if best < 0 {
		// Fall through to the smallest buffer of the first non-empty
		// class above: every buffer there fits by construction.
		for c := cls + 1; c < numClasses; c++ {
			if len(p.classes[c]) == 0 {
				continue
			}
			free = p.classes[c]
			cls = c
			best = 0
			for i, b := range free {
				if cap(b) < cap(free[best]) {
					best = i
				}
			}
			break
		}
	}
	if best >= 0 {
		b := free[best]
		last := len(free) - 1
		free[best] = free[last]
		free[last] = nil
		p.classes[cls] = free[:last]
		p.n--
		p.stats.Hits++
		p.stats.WordsReused += uint64(cap(b))
		p.mu.Unlock()
		return b[:0]
	}
	p.stats.Misses++
	p.mu.Unlock()
	return make([]uint64, 0, minCap)
}

// Put hands a buffer back to the pool. Zero-capacity slices and overflow
// beyond the pool bound are dropped.
func (p *BufferPool) Put(buf []uint64) {
	if cap(buf) == 0 {
		return
	}
	p.mu.Lock()
	if p.n < maxPooled {
		cls := capClass(cap(buf))
		p.classes[cls] = append(p.classes[cls], buf[:0])
		p.n++
	}
	p.mu.Unlock()
}

// Reset drops every pooled buffer, releasing the memory to the garbage
// collector, and clears the traffic counters.
func (p *BufferPool) Reset() {
	p.mu.Lock()
	p.classes = [numClasses][][]uint64{}
	p.n = 0
	p.stats = PoolStats{}
	p.mu.Unlock()
}

// Len reports how many buffers the pool currently holds.
func (p *BufferPool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.n
}
