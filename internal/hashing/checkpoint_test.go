package hashing

import (
	"math/rand"
	"strconv"
	"testing"

	"mpic/internal/bitstring"
)

// TestCheckpointedGoldenEquivalence is the golden test for the incremental
// prefix hasher: under randomized append/truncate/hash schedules — the
// exact access pattern the meeting-points mechanism produces — every
// evaluation must agree bit-for-bit with the reference interface-dispatch
// evaluator on the same fixed seed block, for τ ∈ {1..64} and both seed
// sources. This is the invariant that keeps both endpoints of a link in
// agreement when one of them runs the checkpointed path.
func TestCheckpointedGoldenEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(20262))
	for trial := 0; trial < 320; trial++ {
		tau := 1 + rng.Intn(64)
		maxLen := 1 + rng.Intn(900)
		h := NewInnerProductHash(tau, maxLen)
		var src, srcRef SeedSource
		a, b := rng.Uint64(), rng.Uint64()
		if trial%2 == 0 {
			src, srcRef = NewPRFSource(a, b), NewPRFSource(a, b)
		} else {
			src, srcRef = NewAGHPSource(a, b), NewAGHPSource(a, b)
		}
		lay := NewSeedLayout(h)
		base := lay.StableOffset(Slot(rng.Intn(int(numSlots))))
		x := bitstring.NewBitVec(0)
		spacing := rng.Intn(12) // 0 selects the default
		s := NewCheckpointed(h, src, base, x, rng.Intn(10), spacing)
		for step := 0; step < 40; step++ {
			switch op := rng.Intn(10); {
			case op < 5: // append a short run of bits
				w := 1 + rng.Intn(64)
				x.AppendUint(rng.Uint64(), w)
			case op < 7 && x.Len() > 0: // rewind
				x.Truncate(rng.Intn(x.Len() + 1))
			default: // consistency check at a random prefix
				nbits := rng.Intn(x.Len() + 1)
				if rng.Intn(4) == 0 {
					nbits = x.Len() // full transcript, the common case
				}
				got := s.HashPrefix(nbits)
				want := h.HashPrefix(x, nbits, srcRef, base)
				if got != want {
					t.Fatalf("trial %d step %d: τ=%d maxLen=%d len=%d nbits=%d spacing=%d: incremental %#x != reference %#x",
						trial, step, tau, maxLen, x.Len(), nbits, s.Spacing(), got, want)
				}
			}
		}
	}
}

// TestCheckpointedEpochGoldenEquivalence extends the golden fuzz with the
// epoch-refresh primitive: randomized append/truncate/hash schedules now
// interleave SetBlock rebases onto other epochs' seed blocks — including
// refreshes immediately after a truncation, and repeated rebases with no
// mutation in between — and every evaluation must still agree
// bit-for-bit with the reference evaluator on the *current* block, for
// τ ∈ {1..64} and both seed sources. This is the exact access pattern of
// HashEpoch mode: the store's checkpoints must never survive a rebase,
// and a no-op rebase (same block) must never discard them.
func TestCheckpointedEpochGoldenEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(90817))
	for trial := 0; trial < 240; trial++ {
		tau := 1 + rng.Intn(64)
		maxLen := 1 + rng.Intn(900)
		h := NewInnerProductHash(tau, maxLen)
		var src, srcRef SeedSource
		a, b := rng.Uint64(), rng.Uint64()
		if trial%2 == 0 {
			src, srcRef = NewPRFSource(a, b), NewPRFSource(a, b)
		} else {
			src, srcRef = NewAGHPSource(a, b), NewAGHPSource(a, b)
		}
		lay := NewSeedLayout(h)
		slot := Slot(rng.Intn(int(numSlots)))
		base := lay.EpochOffset(slot, 0)
		x := bitstring.NewBitVec(0)
		s := NewCheckpointed(h, src, base, x, rng.Intn(10), rng.Intn(12))
		for step := 0; step < 48; step++ {
			switch op := rng.Intn(12); {
			case op < 5: // append a short run of bits
				x.AppendUint(rng.Uint64(), 1+rng.Intn(64))
			case op < 7 && x.Len() > 0: // rewind
				x.Truncate(rng.Intn(x.Len() + 1))
			case op < 9: // epoch refresh (sometimes to the current epoch: no-op)
				base = lay.EpochOffset(slot, rng.Intn(5))
				s.SetBlock(base)
				if s.Base() != base {
					t.Fatalf("trial %d step %d: Base() = %#x after SetBlock(%#x)", trial, step, s.Base(), base)
				}
			default: // consistency check at a random prefix
				nbits := rng.Intn(x.Len() + 1)
				if rng.Intn(4) == 0 {
					nbits = x.Len()
				}
				got := s.HashPrefix(nbits)
				want := h.HashPrefix(x, nbits, srcRef, base)
				if got != want {
					t.Fatalf("trial %d step %d: τ=%d len=%d nbits=%d base=%#x: epoch store %#x != reference %#x",
						trial, step, tau, x.Len(), nbits, base, got, want)
				}
			}
		}
	}
}

// TestCheckpointedSetBlockLifecycle pins the rebase semantics directly:
// a rebase to a different block discards every checkpoint and the next
// evaluation rebuilds them against the new block; a rebase to the current
// block keeps them (the no-op that makes per-iteration SetBlock calls in
// epoch mode free inside an epoch).
func TestCheckpointedSetBlockLifecycle(t *testing.T) {
	h := NewInnerProductHash(8, 1<<14)
	src, ref := NewPRFSource(3, 4), NewPRFSource(3, 4)
	lay := NewSeedLayout(h)
	x := bitstring.NewBitVec(0)
	s := NewCheckpointed(h, src, lay.EpochOffset(SlotMP1, 0), x, 0, 4)
	for i := 0; i < 64; i++ {
		x.AppendUint(rand.New(rand.NewSource(int64(i))).Uint64(), 64)
	}
	s.HashPrefix(x.Len())
	n := s.Checkpoints()
	if n == 0 {
		t.Fatal("no checkpoints built")
	}
	// No-op rebase: same block, checkpoints survive.
	s.SetBlock(lay.EpochOffset(SlotMP1, 0))
	if got := s.Checkpoints(); got != n {
		t.Fatalf("no-op SetBlock dropped checkpoints: %d -> %d", n, got)
	}
	// Real rebase: all checkpoints gone, next hash matches the reference
	// on the new block and rebuilds the store.
	next := lay.EpochOffset(SlotMP1, 1)
	s.SetBlock(next)
	if got := s.Checkpoints(); got != 0 {
		t.Fatalf("SetBlock to a new block kept %d checkpoints", got)
	}
	if got, want := s.HashPrefix(x.Len()), h.HashPrefix(x, x.Len(), ref, next); got != want {
		t.Fatalf("post-rebase hash %#x != reference %#x", got, want)
	}
	if got := s.Checkpoints(); got != n {
		t.Fatalf("post-rebase rebuild has %d checkpoints, want %d", got, n)
	}
}

// TestCheckpointedAdaptiveSpacing pins the rewind-band mechanics: before
// any truncation the store lays the fixed grid (bit-for-bit the pre-band
// behavior); a deep truncation opens a band of that depth, and regrowth
// through the band lays checkpoints at the dense interval, so the next
// same-depth truncation resumes from a nearby checkpoint; shallower
// subsequent rewinds decay the band. Hash values are unaffected
// throughout (the golden fuzz already proves that under random
// schedules; here the band accessor itself is pinned).
func TestCheckpointedAdaptiveSpacing(t *testing.T) {
	h := NewInnerProductHash(8, 1<<14)
	src, ref := NewPRFSource(11, 12), NewPRFSource(11, 12)
	lay := NewSeedLayout(h)
	base := lay.StableOffset(SlotMP1)
	x := bitstring.NewBitVec(0)
	s := NewCheckpointed(h, src, base, x, 0, 8) // fine interval = 2 words
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 64; i++ {
		x.AppendUint(rng.Uint64(), 64)
	}
	s.HashPrefix(x.Len())
	if got := s.RewindBand(); got != 0 {
		t.Fatalf("band %d before any rewind, want 0", got)
	}
	// 64 words at spacing 8 with the masked final word: fixed grid lays
	// checkpoints covering 8..56 words.
	fixed := s.Checkpoints()
	if fixed != 7 {
		t.Fatalf("fixed-grid checkpoints = %d, want 7", fixed)
	}
	// Truncate 16 words deep, then regrow to the same length: the band
	// opens at 1024 bits and the regrown tail gets the dense interval.
	x.Truncate(48 * 64)
	if got := s.RewindBand(); got != 16*64 {
		t.Fatalf("band after 16-word truncation = %d, want %d", got, 16*64)
	}
	for i := 0; i < 16; i++ {
		x.AppendUint(rng.Uint64(), 64)
	}
	if got, want := s.HashPrefix(x.Len()), h.HashPrefix(x, x.Len(), ref, base); got != want {
		t.Fatalf("post-regrow hash %#x != reference %#x", got, want)
	}
	dense := s.Checkpoints()
	if dense <= fixed {
		t.Fatalf("adaptive spacing laid %d checkpoints, want more than the fixed grid's %d", dense, fixed)
	}
	// A truncation landing inside the band resumes from a dense
	// checkpoint: the surviving count must exceed what the fixed grid
	// would keep at the same cut (6 checkpoints cover ≤ 50 words).
	x.Truncate(51 * 64)
	if got := s.Checkpoints(); got <= 6 {
		t.Fatalf("surviving checkpoints after in-band truncation = %d, want > 6", got)
	}
	if got, want := s.HashPrefix(x.Len()), h.HashPrefix(x, x.Len(), ref, base); got != want {
		t.Fatalf("post-in-band-truncation hash %#x != reference %#x", got, want)
	}
	// Shallow rewinds decay the band toward the recent depth regime.
	before := s.RewindBand()
	for i := 0; i < 4; i++ {
		x.Truncate(x.Len() - 64)
		x.AppendUint(rng.Uint64(), 64)
		s.HashPrefix(x.Len())
	}
	if got := s.RewindBand(); got >= before {
		t.Fatalf("band did not decay under shallow rewinds: %d -> %d", before, got)
	}
}

// TestCheckpointedResumesAndInvalidates pins the checkpoint lifecycle:
// evaluations extend the checkpoint frontier as the vector grows, a
// truncation drops exactly the checkpoints above the rollback point, and
// hashing after the rollback still matches the reference.
func TestCheckpointedResumesAndInvalidates(t *testing.T) {
	h := NewInnerProductHash(8, 1<<14)
	src, ref := NewPRFSource(3, 4), NewPRFSource(3, 4)
	lay := NewSeedLayout(h)
	base := lay.StableOffset(SlotMP1)
	x := bitstring.NewBitVec(0)
	s := NewCheckpointed(h, src, base, x, 0, 4)
	for i := 0; i < 64; i++ {
		x.AppendUint(rand.New(rand.NewSource(int64(i))).Uint64(), 64)
	}
	s.HashPrefix(x.Len())
	// 64 words at spacing 4: the masked final word keeps the frontier one
	// word short of the end, so checkpoints 1..15 (covering 4..60 words).
	if got := s.Checkpoints(); got != 15 {
		t.Fatalf("checkpoints after 64 words = %d, want 15", got)
	}
	// Truncating into word 22 keeps words 0..21 intact: checkpoints
	// covering up to 20 words (index 5) survive.
	x.Truncate(22*64 + 7)
	if got := s.Checkpoints(); got != 5 {
		t.Fatalf("checkpoints after truncate to word 22 = %d, want 5", got)
	}
	if got, want := s.HashPrefix(x.Len()), h.HashPrefix(x, x.Len(), ref, base); got != want {
		t.Fatalf("post-truncation hash %#x != reference %#x", got, want)
	}
	// Regrow with different content: checkpoints must not resurrect.
	for i := 0; i < 64; i++ {
		x.AppendUint(^uint64(i), 64)
	}
	if got, want := s.HashPrefix(x.Len()), h.HashPrefix(x, x.Len(), ref, base); got != want {
		t.Fatalf("post-regrow hash %#x != reference %#x", got, want)
	}
}

// TestCheckpointedSteadyStateAllocs pins the zero-allocation contract of
// the incremental path under the protocol's real access pattern: grow,
// hash, rewind, hash. Once the seed rows and the checkpoint store are
// warm, none of it allocates.
func TestCheckpointedSteadyStateAllocs(t *testing.T) {
	h := NewInnerProductHash(8, 1<<13)
	src := NewPRFSource(1, 2)
	lay := NewSeedLayout(h)
	x := bitstring.NewBitVec(1 << 13)
	s := NewCheckpointed(h, src, lay.StableOffset(SlotMP1), x, (1<<13)/64, 0)
	rng := rand.New(rand.NewSource(9))
	for x.Len() < 6000 {
		x.AppendUint(rng.Uint64(), 37)
	}
	s.HashPrefix(x.Len())
	allocs := testing.AllocsPerRun(100, func() {
		x.AppendUint(0xdeadbeef, 37)
		_ = s.HashPrefix(x.Len())
		x.Truncate(x.Len() - 37)
		_ = s.HashPrefix(x.Len())
		_ = s.HashPrefix(x.Len() / 2)
	})
	if allocs != 0 {
		t.Fatalf("incremental hash path allocates %.1f times in steady state, want 0", allocs)
	}
}

// BenchmarkCheckpointedSpacing measures the steady-state protocol access
// pattern — append a chunk's worth of bits, hash the full prefix, and
// every few cycles rewind one chunk — across checkpoint spacings, on a
// long transcript (~16k bits). This is the measurement behind
// DefaultCheckpointSpacing: once the resume sweep is shorter than the
// hash's fixed costs, tightening the spacing only costs memory.
func BenchmarkCheckpointedSpacing(b *testing.B) {
	for _, spacing := range []int{2, 8, 32, 128} {
		b.Run("spacing="+strconv.Itoa(spacing), func(b *testing.B) {
			h := NewInnerProductHash(8, 1<<18)
			src := NewPRFSource(1, 2)
			lay := NewSeedLayout(h)
			x := bitstring.NewBitVec(1 << 15)
			s := NewCheckpointed(h, src, lay.StableOffset(SlotMP1), x, (1<<15)/64, spacing)
			rng := rand.New(rand.NewSource(7))
			for x.Len() < 1<<14 {
				x.AppendUint(rng.Uint64(), 42)
			}
			s.HashPrefix(x.Len())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				x.AppendUint(rng.Uint64(), 42)
				_ = s.HashPrefix(x.Len())
				if i%4 == 3 {
					x.Truncate(x.Len() - 3*42)
					_ = s.HashPrefix(x.Len())
				}
			}
		})
	}
}

// TestStableOffsetsDisjoint: the rewind-stable blocks must not collide
// with each other or with any realistic per-iteration block.
func TestStableOffsetsDisjoint(t *testing.T) {
	h := NewInnerProductHash(16, 1<<18)
	l := NewSeedLayout(h)
	for s := SlotK; s < numSlots; s++ {
		for q := s + 1; q < numSlots; q++ {
			lo, hi := l.StableOffset(s), l.StableOffset(q)
			if hi-lo < h.SeedWords() {
				t.Fatalf("stable blocks for slots %d and %d overlap", s, q)
			}
		}
	}
	// A budget far beyond any configured run (tens of thousands of
	// iterations at a quarter-million-bit MaxLen) still stays below the
	// stable region; absurd budgets must trip the guard loudly.
	if !l.RegionsDisjoint(1 << 16) {
		t.Fatal("per-iteration region reaches the stable region at 2^16 iterations")
	}
	if l.RegionsDisjoint(1 << 40) {
		t.Fatal("RegionsDisjoint must eventually report overlap for absurd budgets")
	}
}

// TestCheckpointedPooledEquivalence pins the pooled variant of the
// incremental store: buffers drawn from a shared BufferPool produce
// bit-identical hashes to the private-buffer path, Release hands the
// seed rows and checkpoint snapshots back for reuse, and a second store
// built from the warmed pool allocates nothing fresh (all hits).
func TestCheckpointedPooledEquivalence(t *testing.T) {
	h := NewInnerProductHash(8, 1<<13)
	lay := NewSeedLayout(h)
	base := lay.StableOffset(SlotMP1)
	pool := &BufferPool{}
	rng := rand.New(rand.NewSource(99))

	run := func(s *Checkpointed, x *bitstring.BitVec, ref SeedSource) {
		t.Helper()
		for step := 0; step < 30; step++ {
			switch op := rng.Intn(8); {
			case op < 4:
				x.AppendUint(rng.Uint64(), 1+rng.Intn(64))
			case op < 5 && x.Len() > 0:
				x.Truncate(rng.Intn(x.Len() + 1))
			default:
				if got, want := s.HashPrefix(x.Len()), h.HashPrefix(x, x.Len(), ref, base); got != want {
					t.Fatalf("step %d: pooled %#x != reference %#x", step, got, want)
				}
			}
		}
	}

	x1 := bitstring.NewBitVec(0)
	s1 := NewCheckpointedIn(pool, h, NewPRFSource(5, 6), base, x1, 64, 0)
	run(s1, x1, NewPRFSource(5, 6))
	if st := pool.Stats(); st.Hits != 0 || st.Misses == 0 {
		t.Fatalf("cold pooled store stats %+v, want only misses", st)
	}
	s1.Release(pool)
	if pool.Len() == 0 {
		t.Fatal("Release returned no buffers to the pool")
	}

	before := pool.Stats()
	x2 := bitstring.NewBitVec(0)
	s2 := NewCheckpointedIn(pool, h, NewPRFSource(7, 8), base, x2, 64, 0)
	run(s2, x2, NewPRFSource(7, 8))
	delta := pool.Stats().Sub(before)
	if delta.Misses != 0 || delta.Hits == 0 || delta.WordsReused == 0 {
		t.Fatalf("warm pooled store stats %+v, want all hits", delta)
	}
	s2.Release(pool)

	// A nil pool degrades to the private-buffer constructor.
	x3 := bitstring.NewBitVec(0)
	s3 := NewCheckpointedIn(nil, h, NewPRFSource(9, 10), base, x3, 64, 0)
	run(s3, x3, NewPRFSource(9, 10))
	s3.Release(nil) // no-op
}
