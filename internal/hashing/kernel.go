package hashing

import (
	"fmt"
	"os"
)

// A kernel is a τ-row accumulate: XOR every word of xw, masked by the
// matching interleaved seed words, into the τ row accumulators. buf
// holds the interleaved rows (buf[i*tau+j] is word i of row j) for at
// least len(xw) words; every word of xw is complete — the caller masks
// the sweep's final partial word itself, so kernels never see a tail
// mask. acc[tau:] is never touched.
//
// Dispatch is a switch over a small id rather than a function pointer:
// an indirect call would force the caller's stack-resident accumulator
// array to escape (one heap allocation per hash), while direct calls
// behind the switch keep the zero-steady-state-allocation pins intact.
type kernelID int

const (
	kernelReference kernelID = iota
	kernelBatched
	kernelArch // the GOARCH vector kernel (avx2 / neon), when available
)

// kernelImpl pairs a kernel id with its dispatch name.
type kernelImpl struct {
	name string
	id   kernelID
}

// kernels lists the kernels compiled into this binary and usable on this
// CPU, best first: the arch-specific vector kernel (when the build and
// the CPU both support it), then the portable word-batched kernel, then
// the reference scalar sweep.
var kernels []kernelImpl

// activeKernel is the kernel every cached evaluator dispatches through.
// Selected once at init (overridable via MPIC_HASH_KERNEL or SetKernel);
// not synchronized — see SetKernel.
var activeKernel kernelImpl

func init() {
	kernels = append(archKernels(),
		kernelImpl{"batched", kernelBatched},
		kernelImpl{"reference", kernelReference},
	)
	activeKernel = kernels[0]
	if name := os.Getenv("MPIC_HASH_KERNEL"); name != "" {
		// Best effort: an unknown or unavailable name keeps the detected
		// kernel rather than failing a process that may not even hash.
		_ = SetKernel(name)
	}
}

// Kernels returns the dispatch names of every hash kernel available in
// this binary on this CPU, preferred first. The first entry is the
// default selection.
func Kernels() []string {
	out := make([]string, len(kernels))
	for i, k := range kernels {
		out[i] = k.name
	}
	return out
}

// Kernel returns the name of the kernel currently in use.
func Kernel() string { return activeKernel.name }

// SetKernel selects the τ-row accumulate kernel by name ("avx2", "neon",
// "batched", "reference" — see Kernels for what this binary offers).
// Every kernel is bit-identical on every input; the switch exists for
// debugging (force "reference" to take the golden oracle's exact path)
// and benchmarking. Not safe to call concurrently with hashing — switch
// kernels between runs, not during them. The MPIC_HASH_KERNEL
// environment variable applies the same selection at process start.
func SetKernel(name string) error {
	for _, k := range kernels {
		if k.name == name {
			activeKernel = k
			return nil
		}
	}
	return fmt.Errorf("hashing: unknown kernel %q (available: %v)", name, Kernels())
}

// kernelSweep dispatches a full-word sweep through the active kernel.
func kernelSweep(acc *[64]uint64, xw []uint64, buf []uint64, tau int) {
	if len(xw) == 0 {
		return
	}
	switch activeKernel.id {
	case kernelArch:
		archSweep(acc, xw, buf, tau)
	case kernelBatched:
		sweepBatched(acc, xw, buf, tau)
	default:
		sweepReference(acc, xw, buf, tau)
	}
}

// sweepReference is the scalar kernel every PR before this one shipped:
// one input word at a time, one row at a time. It is the dispatchable
// twin of the per-word loop the golden oracle (HashPrefix) runs and the
// baseline the kernel micro-benchmarks measure against.
func sweepReference(acc *[64]uint64, xw []uint64, buf []uint64, tau int) {
	for i, w := range xw {
		for j, sw := range buf[i*tau : i*tau+tau] {
			acc[j] ^= w & sw
		}
	}
}

// sweepBatched is the portable word-batched kernel: four input words per
// pass, their four seed rows combined into the accumulators in one
// traversal. The row accumulators are loaded and stored once per four
// words instead of once per word, which is where the scalar kernel burns
// its time at small τ; the four AND/XOR chains are independent, so the
// compiler can keep them in flight together. This is the best kernel on
// builds without the arch-specific assembly (purego, or GOARCHes without
// an implementation).
func sweepBatched(acc *[64]uint64, xw []uint64, buf []uint64, tau int) {
	a := acc[:tau]
	i := 0
	for ; i+4 <= len(xw); i += 4 {
		w0, w1, w2, w3 := xw[i], xw[i+1], xw[i+2], xw[i+3]
		base := i * tau
		r0 := buf[base : base+tau]
		r1 := buf[base+tau : base+2*tau]
		r2 := buf[base+2*tau : base+3*tau]
		r3 := buf[base+3*tau : base+4*tau]
		for j := range a {
			a[j] ^= w0&r0[j] ^ w1&r1[j] ^ w2&r2[j] ^ w3&r3[j]
		}
	}
	for ; i < len(xw); i++ {
		w := xw[i]
		for j, sw := range buf[i*tau : i*tau+tau] {
			a[j] ^= w & sw
		}
	}
}
