// Package hashing implements the randomness substrates of the coding
// schemes: the inner-product hash family of Definition 2.2, δ-biased
// pseudorandom strings in the style of Naor–Naor / AGHP (Lemma 2.5), and
// seed streams addressing per-(iteration, link, slot) seed blocks.
package hashing

import "math/bits"

// gf64Poly is the reduction polynomial x^64 + x^4 + x^3 + x + 1 for
// GF(2^64), represented by its low 64 bits.
const gf64Poly uint64 = 0x1b

// gfMul64 multiplies two elements of GF(2^64) (carry-less multiplication
// followed by reduction).
func gfMul64(a, b uint64) uint64 {
	var lo, hi uint64
	for i := 0; i < 64; i += 8 {
		// Process 8 bits of b at a time for speed.
		chunk := (b >> uint(i)) & 0xff
		for j := 0; j < 8; j++ {
			if chunk>>uint(j)&1 == 1 {
				sh := uint(i + j)
				lo ^= a << sh
				if sh != 0 {
					hi ^= a >> (64 - sh)
				}
			}
		}
	}
	// Reduce the 128-bit product modulo x^64 + x^4 + x^3 + x + 1. Folding
	// the high half twice suffices because the reduction polynomial's
	// non-leading part fits in 5 bits.
	for hi != 0 {
		h := hi
		hi = 0
		lo ^= h ^ (h << 1) ^ (h << 3) ^ (h << 4)
		hi ^= (h >> 63) ^ (h >> 61) ^ (h >> 60)
	}
	return lo
}

// gfPow64 raises a to the k-th power in GF(2^64) by square-and-multiply.
func gfPow64(a uint64, k uint64) uint64 {
	result := uint64(1)
	base := a
	for k > 0 {
		if k&1 == 1 {
			result = gfMul64(result, base)
		}
		base = gfMul64(base, base)
		k >>= 1
	}
	return result
}

// parity64 returns the GF(2) inner product of x and y packed in words.
func parity64(x, y uint64) uint64 {
	return uint64(bits.OnesCount64(x&y) & 1)
}
