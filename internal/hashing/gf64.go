// Package hashing implements the randomness substrates of the coding
// schemes: the inner-product hash family of Definition 2.2, δ-biased
// pseudorandom strings in the style of Naor–Naor / AGHP (Lemma 2.5), and
// seed streams addressing per-(iteration, link, slot) seed blocks.
//
// # Collision bounds under seed reuse (Lemma 2.3 and epoch refresh)
//
// With fresh seeds every iteration (SeedLayout.Offset, the paper's
// layout), each of the C = iterations × links × 3 hash comparisons
// collides on unequal inputs independently with probability at most
// 2^-τ + δ, so a union bound — Lemma 2.3 — caps the probability of any
// spurious agreement during the run at C·(2^-τ + δ).
//
// The incremental evaluator (Checkpointed) reuses one rewind-stable seed
// block (SeedLayout.StableOffset) for the prefix slots across all
// iterations, which is what lets partial accumulators survive between
// checks. The price is persistence: a pair of divergent prefixes that
// collides under the stable seed collides at *every* subsequent check
// until one side's prefix changes, so collision events are no longer
// independent across iterations and the union bound degrades from "per
// check" to "per distinct compared pair" — a weaker guarantee when the
// meeting-points counters revisit the same pair many times.
//
// Epoch refresh restores a quantitative bound. Re-deriving the stable
// block every R iterations (SeedLayout.EpochOffset; Checkpointed.SetBlock
// rebases the store at Θ(|T|) for one post-refresh sweep, amortized
// Θ(|T|/R) per iteration) makes any colliding pair persist for at most R
// consecutive checks: within an epoch the seed is fixed, across epochs
// the seeds are distinct blocks of the δ-biased stream, so collisions in
// different epochs are (δ-close to) independent. Grouping the C checks
// into ⌈C/R⌉ epoch-pair classes, the probability that any class ever
// collides is at most C·(2^-τ + δ) exactly as in Lemma 2.3 — but a
// single bad event now taints at most R checks instead of the whole run,
// so the expected number of corrupted checks is bounded by
// R·C·(2^-τ + δ). Equivalently: to recover the fresh-seed bound on
// corrupted checks, grow the output length from τ to τ + log₂R. The
// perf-optimal default R = 256 (see core.DefaultEpochRefresh) spends
// log₂256 = 8 bits — as much as Alg1/A's default τ, so at default
// parameters the refresh acts as a persistence cap (collisions self-heal
// within R checks instead of surviving the run) rather than a restored
// union bound; R ≤ 2^(τ-3), or Algorithm B's τ = Θ(log m), keeps the
// quantitative bound too. The parameters are exposed (τ via
// InnerProductHash.Tau, R via the caller's refresh interval, δ via the
// AGHP source's stream extent — see EpochsFit) so harnesses can check
// the bound for their own configurations.
//
// # Kernel dispatch
//
// The cached evaluators (HashPrefixCached, HashWordCached, Checkpointed)
// sweep the interleaved seed buffer through a dispatched τ-row kernel
// selected once at process start: the best vector kernel the CPU
// supports ("avx2" on amd64 — detected at runtime via CPUID/XGETBV, so
// the same binary runs on pre-AVX2 silicon; "neon" on arm64, where
// AdvSIMD is baseline), falling back to the portable 4-way word-batched
// Go kernel ("batched") and the scalar sweep ("reference"). All kernels
// are bit-identical on every input — the golden fuzz tests pin each one
// against the reference evaluator — so dispatch never affects protocol
// transcripts, only throughput.
//
// Two escape hatches exist. Building with -tags purego excludes the
// assembly entirely (auditing, or a GOASM-hostile toolchain); the
// batched Go kernel is then the default. At runtime, SetKernel (or the
// MPIC_HASH_KERNEL environment variable, e.g. MPIC_HASH_KERNEL=reference)
// forces a specific kernel — forcing "reference" makes the cached path
// take the exact arithmetic of the golden oracle, the first thing to try
// when debugging a suspected kernel miscompare. Kernels reports what the
// running binary offers.
package hashing

import "math/bits"

// gf64Poly is the reduction polynomial x^64 + x^4 + x^3 + x + 1 for
// GF(2^64), represented by its low 64 bits.
const gf64Poly uint64 = 0x1b

// gfMul64 multiplies two elements of GF(2^64) (carry-less multiplication
// followed by reduction).
func gfMul64(a, b uint64) uint64 {
	var lo, hi uint64
	for i := 0; i < 64; i += 8 {
		// Process 8 bits of b at a time for speed.
		chunk := (b >> uint(i)) & 0xff
		for j := 0; j < 8; j++ {
			if chunk>>uint(j)&1 == 1 {
				sh := uint(i + j)
				lo ^= a << sh
				if sh != 0 {
					hi ^= a >> (64 - sh)
				}
			}
		}
	}
	// Reduce the 128-bit product modulo x^64 + x^4 + x^3 + x + 1. Folding
	// the high half twice suffices because the reduction polynomial's
	// non-leading part fits in 5 bits.
	for hi != 0 {
		h := hi
		hi = 0
		lo ^= h ^ (h << 1) ^ (h << 3) ^ (h << 4)
		hi ^= (h >> 63) ^ (h >> 61) ^ (h >> 60)
	}
	return lo
}

// gfPow64 raises a to the k-th power in GF(2^64) by square-and-multiply.
func gfPow64(a uint64, k uint64) uint64 {
	result := uint64(1)
	base := a
	for k > 0 {
		if k&1 == 1 {
			result = gfMul64(result, base)
		}
		base = gfMul64(base, base)
		k >>= 1
	}
	return result
}

// parity64 returns the GF(2) inner product of x and y packed in words.
func parity64(x, y uint64) uint64 {
	return uint64(bits.OnesCount64(x&y) & 1)
}
