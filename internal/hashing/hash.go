package hashing

import (
	"math/bits"

	"mpic/internal/bitstring"
)

// InnerProductHash is the hash family of Definition 2.2: for input x of
// length L and seed s of length τ·L, output bit j is the GF(2) inner
// product ⟨x, s[jL+1 .. (j+1)L]⟩. Because unused input positions are zero,
// the family satisfies h(x) = h(x ◦ 0^k) — the padding property the paper
// relies on when parties hash prefixes of different lengths (footnote 11).
//
// MaxLen fixes L (in bits) for the whole protocol so that both endpoints
// slice identical seed regions; Tau is the output length τ in bits
// (Tau <= 64 so an output packs into a uint64).
type InnerProductHash struct {
	Tau    int
	MaxLen int // L, in bits; rounded up to a multiple of 64 internally
}

// NewInnerProductHash returns a hash with output length tau (1..64 bits)
// over inputs of at most maxLen bits.
func NewInnerProductHash(tau, maxLen int) *InnerProductHash {
	if tau < 1 {
		tau = 1
	}
	if tau > 64 {
		tau = 64
	}
	if maxLen < 1 {
		maxLen = 1
	}
	return &InnerProductHash{Tau: tau, MaxLen: maxLen}
}

// wordsPerRow is the number of 64-bit seed words per output bit.
func (h *InnerProductHash) wordsPerRow() uint64 {
	return uint64((h.MaxLen + 63) / 64)
}

// SeedWords returns the total number of seed words one hash evaluation
// consumes; seed blocks for distinct (iteration, link, slot) triples are
// spaced this far apart.
func (h *InnerProductHash) SeedWords() uint64 {
	return uint64(h.Tau) * h.wordsPerRow()
}

// Hash evaluates the hash on x (padded with zeros up to MaxLen) using the
// seed words src.Word(off), src.Word(off+1), ... Bits of x beyond MaxLen
// are ignored; callers size MaxLen so that never happens.
func (h *InnerProductHash) Hash(x *bitstring.BitVec, src SeedSource, off uint64) uint64 {
	return h.HashPrefix(x, x.Len(), src, off)
}

// HashPrefix evaluates the hash on the first nbits bits of x (then padded
// with zeros up to MaxLen). It lets transcript prefixes be hashed without
// copying.
//
// This is the reference evaluator: it pulls seed words through the
// SeedSource interface one at a time. The protocol's hot path goes through
// HashPrefixCached, whose output is bit-identical (a property the golden
// equivalence tests pin down); this path remains for one-shot evaluations
// such as the white-box attacker's lookahead, and as the independent
// oracle those tests compare against.
func (h *InnerProductHash) HashPrefix(x *bitstring.BitVec, nbits int, src SeedSource, off uint64) uint64 {
	if nbits > x.Len() {
		nbits = x.Len()
	}
	if nbits < 0 {
		nbits = 0
	}
	row := h.wordsPerRow()
	nw := uint64((nbits + 63) / 64)
	if nw > row {
		nw = row
	}
	var tailMask uint64 = ^uint64(0)
	if r := uint(nbits & 63); r != 0 {
		tailMask = (uint64(1) << r) - 1
	}
	var out uint64
	for j := uint64(0); j < uint64(h.Tau); j++ {
		base := off + j*row
		var acc uint64
		for i := uint64(0); i < nw; i++ {
			w := x.Word(int(i))
			if i == nw-1 {
				w &= tailMask
			}
			acc ^= w & src.Word(base+i)
		}
		// Fold the 64 accumulated bit-products into one parity bit.
		acc ^= acc >> 32
		acc ^= acc >> 16
		acc ^= acc >> 8
		acc ^= acc >> 4
		acc ^= acc >> 2
		acc ^= acc >> 1
		out |= (acc & 1) << j
	}
	return out
}

// HashUint hashes a fixed-width unsigned value (used for the meeting-point
// counter k, which the parties compare by hash; see Section 3.1). Like
// HashPrefix this is the reference evaluator; HashWordCached is the
// allocation-free equivalent on the hot path.
func (h *InnerProductHash) HashUint(v uint64, width int, src SeedSource, off uint64) uint64 {
	x := bitstring.NewBitVec(width)
	x.AppendUint(v, width)
	return h.Hash(x, src, off)
}

// HashPrefixCached evaluates the hash on the first nbits bits of x using
// the seed block materialized in c, which must point (via SetBlock) at the
// offset the equivalent HashPrefix call would receive. Output is
// bit-identical to the reference evaluator; steady-state evaluation
// performs zero allocations and no per-word interface calls.
func (h *InnerProductHash) HashPrefixCached(x *bitstring.BitVec, nbits int, c *BlockCache) uint64 {
	if nbits > x.Len() {
		nbits = x.Len()
	}
	if nbits < 0 {
		nbits = 0
	}
	return h.hashWords(x.RawWords(), nbits, c)
}

// HashWordCached hashes the width low-order bits of v — the counter-hash
// fast path, equivalent to HashUint without building a BitVec. width must
// be at most 64.
func (h *InnerProductHash) HashWordCached(v uint64, width int, c *BlockCache) uint64 {
	if width <= 0 {
		return 0
	}
	if width < 64 {
		v &= 1<<uint(width) - 1
	} else {
		width = 64
	}
	xw := [1]uint64{v}
	return h.hashWords(xw[:], width, c)
}

// sweepBounds fixes the geometry every prefix sweep shares (the cached
// kernel here and the checkpointed incremental evaluator): the number of
// input words a sweep of nbits bits covers — clamped to the row length
// and the words actually present; missing trailing words are zero and
// contribute nothing — and the mask applied to the sweep's final word.
// Single-sourcing this is what keeps the evaluators bit-identical (the
// golden-equivalence contract) when masking or clamping rules change.
func (h *InnerProductHash) sweepBounds(nbits, words int) (nw int, tailMask uint64) {
	nw = (nbits + 63) / 64
	if row := int(h.wordsPerRow()); nw > row {
		nw = row
	}
	if nw > words {
		nw = words
	}
	tailMask = ^uint64(0)
	if r := uint(nbits & 63); r != 0 {
		tailMask = 1<<r - 1
	}
	return nw, tailMask
}

// foldParity folds each row accumulator to its parity bit with a
// popcount, packing output bit j from acc[j]. Shared by every evaluator
// for the same reason as sweepBounds.
func foldParity(acc []uint64) uint64 {
	var out uint64
	for j, a := range acc {
		out |= uint64(bits.OnesCount64(a)&1) << j
	}
	return out
}

// hashWords is the devirtualized inner-product sweep: all complete input
// words go through the dispatched τ-row kernel (see kernel.go), the final
// word is tail-masked and accumulated here so the kernels only ever see
// complete words, and each accumulator folds to its parity bit. Words of
// xw at positions >= ⌈nbits/64⌉ are ignored and missing trailing words
// are treated as zero (they contribute nothing to any inner product).
func (h *InnerProductHash) hashWords(xw []uint64, nbits int, c *BlockCache) uint64 {
	nw, tailMask := h.sweepBounds(nbits, len(xw))
	if nw == 0 {
		return 0
	}
	c.ensure(nw)
	tau := h.Tau
	buf := c.buf
	var acc [64]uint64
	kernelSweep(&acc, xw[:nw-1], buf, tau)
	w := xw[nw-1] & tailMask
	for j, sw := range buf[(nw-1)*tau : nw*tau] {
		acc[j] ^= w & sw
	}
	return foldParity(acc[:tau])
}
