//go:build purego || (!amd64 && !arm64)

package hashing

// archKernels returns no vector kernels: either the build excluded the
// assembly (the purego tag — the debugging and auditing escape hatch) or
// this GOARCH has no implementation yet. The portable word-batched
// kernel is the best available on these builds.
func archKernels() []kernelImpl { return nil }

// archSweep is never selected on these builds (archKernels registers no
// kernelArch entry); the batched kernel stands in so dispatch compiles.
func archSweep(acc *[64]uint64, xw []uint64, buf []uint64, tau int) {
	sweepBatched(acc, xw, buf, tau)
}
