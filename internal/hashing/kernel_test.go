package hashing

import (
	"fmt"
	"math/rand"
	"testing"

	"mpic/internal/bitstring"
)

// TestKernelDispatch pins the dispatch surface: every binary offers the
// batched and reference kernels (vector kernels are a bonus the CPU
// decides), the default selection is the first listed, SetKernel
// round-trips every advertised name, and unknown names are rejected
// without changing the selection.
func TestKernelDispatch(t *testing.T) {
	names := Kernels()
	if len(names) < 2 {
		t.Fatalf("Kernels() = %v, want at least batched+reference", names)
	}
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	if !have["batched"] || !have["reference"] {
		t.Fatalf("Kernels() = %v, missing batched or reference", names)
	}
	orig := Kernel()
	defer func() {
		if err := SetKernel(orig); err != nil {
			t.Fatal(err)
		}
	}()
	if !have[orig] {
		t.Fatalf("active kernel %q not in Kernels() = %v", orig, names)
	}
	for _, n := range names {
		if err := SetKernel(n); err != nil {
			t.Fatalf("SetKernel(%q): %v", n, err)
		}
		if Kernel() != n {
			t.Fatalf("Kernel() = %q after SetKernel(%q)", Kernel(), n)
		}
	}
	if err := SetKernel("no-such-kernel"); err == nil {
		t.Fatal("SetKernel of unknown name succeeded")
	}
	if Kernel() != names[len(names)-1] {
		t.Fatalf("failed SetKernel changed the selection to %q", Kernel())
	}
}

// TestKernelGoldenEquivalence is the golden fuzz for the dispatched
// kernels: every kernel this binary offers (reference, batched, and the
// vector kernel when the CPU has one) must agree bit-for-bit with the
// reference evaluator, through both cached evaluators — the one-shot
// BlockCache path and the checkpointed incremental path — across
// τ = 1..64, ragged word counts (maxLen and prefix lengths off the word
// grid), watermark-clamped tails after truncations, both seed sources
// (PRF and AGHP), and epoch rebases mid-schedule. This mirrors
// TestCheckpointedEpochGoldenEquivalence with the kernel as an extra
// fuzz axis; it is what lets dispatch vary by CPU without protocol
// transcripts varying with it.
func TestKernelGoldenEquivalence(t *testing.T) {
	orig := Kernel()
	defer func() {
		if err := SetKernel(orig); err != nil {
			t.Fatal(err)
		}
	}()
	for _, name := range Kernels() {
		t.Run(name, func(t *testing.T) {
			if err := SetKernel(name); err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(41017))
			for trial := 0; trial < 140; trial++ {
				tau := 1 + rng.Intn(64)
				maxLen := 1 + rng.Intn(900)
				h := NewInnerProductHash(tau, maxLen)
				var src, srcRef SeedSource
				a, b := rng.Uint64(), rng.Uint64()
				if trial%2 == 0 {
					src, srcRef = NewPRFSource(a, b), NewPRFSource(a, b)
				} else {
					src, srcRef = NewAGHPSource(a, b), NewAGHPSource(a, b)
				}
				lay := NewSeedLayout(h)
				slot := Slot(rng.Intn(int(numSlots)))
				base := lay.EpochOffset(slot, 0)
				x := bitstring.NewBitVec(0)
				s := NewCheckpointed(h, src, base, x, rng.Intn(10), rng.Intn(12))
				c := NewBlockCache(h, src, rng.Intn(10))
				c.SetBlock(base)
				for step := 0; step < 48; step++ {
					switch op := rng.Intn(12); {
					case op < 5: // append a short run of bits
						x.AppendUint(rng.Uint64(), 1+rng.Intn(64))
					case op < 7 && x.Len() > 0: // rewind (watermark-clamped tail)
						x.Truncate(rng.Intn(x.Len() + 1))
					case op < 9: // epoch refresh mid-schedule
						base = lay.EpochOffset(slot, rng.Intn(5))
						s.SetBlock(base)
						c.SetBlock(base)
					default: // check a random (often ragged) prefix
						nbits := rng.Intn(x.Len() + 1)
						if rng.Intn(4) == 0 {
							nbits = x.Len()
						}
						want := h.HashPrefix(x, nbits, srcRef, base)
						if got := s.HashPrefix(nbits); got != want {
							t.Fatalf("trial %d step %d: τ=%d len=%d nbits=%d: checkpointed(%s) %#x != reference %#x",
								trial, step, tau, x.Len(), nbits, name, got, want)
						}
						if got := h.HashPrefixCached(x, nbits, c); got != want {
							t.Fatalf("trial %d step %d: τ=%d len=%d nbits=%d: cached(%s) %#x != reference %#x",
								trial, step, tau, x.Len(), nbits, name, got, want)
						}
					}
				}
				// The single-word counter-hash path, at ragged widths.
				w := 1 + rng.Intn(64)
				v := rng.Uint64()
				if got, want := h.HashWordCached(v, w, c), h.HashUint(v&(^uint64(0)>>(64-uint(w))), w, srcRef, base); got != want {
					t.Fatalf("trial %d: HashWordCached(%s) %#x != HashUint %#x (width %d)", trial, name, got, want, w)
				}
			}
		})
	}
}

// TestKernelSweepAllocs pins zero steady-state allocations on every
// kernel — the dispatch switch must not make the stack-resident
// accumulator escape (an indirect call would).
func TestKernelSweepAllocs(t *testing.T) {
	orig := Kernel()
	defer func() {
		if err := SetKernel(orig); err != nil {
			t.Fatal(err)
		}
	}()
	h := NewInnerProductHash(16, 1<<13)
	src := NewPRFSource(7, 9)
	x := bitstring.NewBitVec(0)
	for i := 0; i < 100; i++ {
		x.AppendUint(rand.Uint64(), 64)
	}
	c := NewBlockCache(h, src, 110)
	c.SetBlock(NewSeedLayout(h).StableOffset(SlotK))
	for _, name := range Kernels() {
		t.Run(name, func(t *testing.T) {
			if err := SetKernel(name); err != nil {
				t.Fatal(err)
			}
			h.HashPrefixCached(x, x.Len(), c) // warm the seed rows
			allocs := testing.AllocsPerRun(100, func() {
				h.HashPrefixCached(x, x.Len(), c)
			})
			if allocs != 0 {
				t.Fatalf("kernel %s allocates %.1f times per hash in steady state, want 0", name, allocs)
			}
		})
	}
}

// BenchmarkKernelSweep is the kernel micro table behind PERF.md: the
// cached prefix hash by kernel, output width τ, and transcript length.
// The seed rows are pre-materialized, so this isolates the τ-row
// accumulate sweep itself.
func BenchmarkKernelSweep(b *testing.B) {
	orig := Kernel()
	defer func() {
		if err := SetKernel(orig); err != nil {
			b.Fatal(err)
		}
	}()
	for _, tau := range []int{8, 32, 64} {
		for _, bits := range []int{4096, 16384} {
			h := NewInnerProductHash(tau, bits)
			src := NewPRFSource(11, 13)
			x := bitstring.NewBitVec(0)
			for x.Len() < bits {
				x.AppendUint(rand.Uint64(), 64)
			}
			c := NewBlockCache(h, src, bits/64)
			c.SetBlock(NewSeedLayout(h).StableOffset(SlotK))
			h.HashPrefixCached(x, bits, c)
			for _, name := range Kernels() {
				b.Run(fmt.Sprintf("tau=%d/bits=%d/%s", tau, bits, name), func(b *testing.B) {
					if err := SetKernel(name); err != nil {
						b.Fatal(err)
					}
					b.ReportAllocs()
					var sink uint64
					for i := 0; i < b.N; i++ {
						sink ^= h.HashPrefixCached(x, bits, c)
					}
					benchSink = sink
				})
			}
		}
	}
}

var benchSink uint64
