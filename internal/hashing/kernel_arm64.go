//go:build arm64 && !purego

package hashing

// sweepNEON is the NEON τ-row accumulate: rows four at a time in two
// 128-bit register-resident accumulators, each input word broadcast
// across the lanes once. Implemented in kernel_arm64.s.
//
//go:noescape
func sweepNEON(acc *[64]uint64, xw *uint64, n int, buf *uint64, tau int)

// archKernels returns the arm64 vector kernels. AdvSIMD (NEON) is
// baseline on every AArch64 core, so no runtime feature probe is needed.
func archKernels() []kernelImpl {
	return []kernelImpl{{"neon", kernelArch}}
}

// archSweep is the kernelArch dispatch target on arm64.
func archSweep(acc *[64]uint64, xw []uint64, buf []uint64, tau int) {
	sweepNEON(acc, &xw[0], len(xw), &buf[0], tau)
}
