package hashing

// BlockCache materializes one seed block — the τ rows feeding a single
// hash evaluation for one (iteration, link, slot) triple — into a flat
// buffer the hash kernel can sweep without per-word interface dispatch.
//
// The buffer is interleaved: buf[i*τ+j] holds stream word base + j·row + i,
// i.e. the i-th seed word of every row sits contiguously. The transposed
// kernel (InnerProductHash.hashWords) then loads each transcript word once
// and XORs it into all τ row accumulators while reading buf strictly
// sequentially. This is also the layout the vector kernels (kernel.go)
// consume: one broadcast input word ANDed against 4–8 contiguous row
// words per op. Alignment contract: buf is a []uint64, so the Go
// allocator guarantees 8-byte alignment; the AVX2 and NEON kernels use
// only unaligned vector loads (VMOVDQU / VLD1), for which 8-byte
// alignment is sufficient on both architectures — no 32-byte padding is
// required, and row blocks may straddle cache lines safely.
//
// Prefix hashes only ever touch the first ⌈nbits/64⌉ words of each row, so
// the cache grows row prefixes on demand: a consistency check over a short
// transcript materializes only a short prefix of each row, and as the
// transcript grows across the phase the cache extends with one bulk Fill
// per row. Re-pointing the cache at a new block (SetBlock) resets the
// materialized length but keeps the allocation, so steady-state operation
// allocates nothing.
//
// A BlockCache is owned by one link endpoint and is not safe for
// concurrent use.
type BlockCache struct {
	h    *InnerProductHash
	src  SeedSource
	bulk BulkSeedSource // non-nil when src supports bulk fills

	base    uint64 // first stream word of the current block
	haveSet bool
	nw      int      // words materialized per row
	buf     []uint64 // interleaved seed words, len nw*τ
	stage   []uint64 // per-row staging for fills
}

// NewBlockCache returns a cache over src for hash h. hintWords, if
// positive, pre-sizes the buffer for row prefixes of that many words
// (callers derive it from the SeedLayout / expected transcript length) so
// a full run does no steady-state allocation in the hash path.
func NewBlockCache(h *InnerProductHash, src SeedSource, hintWords int) *BlockCache {
	return NewBlockCacheIn(nil, h, src, hintWords)
}

// NewBlockCacheIn is NewBlockCache drawing its buffers from pool (nil
// behaves like NewBlockCache). Hand the buffers back with Release when
// the run is over so the next run can reuse them.
func NewBlockCacheIn(pool *BufferPool, h *InnerProductHash, src SeedSource, hintWords int) *BlockCache {
	c := &BlockCache{h: h, src: src}
	c.bulk, _ = src.(BulkSeedSource)
	if maxRow := int(h.wordsPerRow()); hintWords > maxRow {
		hintWords = maxRow
	}
	if hintWords > 0 {
		if pool != nil {
			c.buf = pool.Get(hintWords * h.Tau)
			c.stage = pool.Get(hintWords)
		} else {
			c.buf = make([]uint64, 0, hintWords*h.Tau)
			c.stage = make([]uint64, 0, hintWords)
		}
	}
	return c
}

// Release returns the cache's buffers to pool and empties the cache. The
// cache must not be used afterwards. Every materialized word is
// re-derived from the seed source before any later read (SetBlock resets
// the materialized length), so recycled buffers can never leak one run's
// seed words into another's hash values.
func (c *BlockCache) Release(pool *BufferPool) {
	if c == nil || pool == nil {
		return
	}
	pool.Put(c.buf)
	pool.Put(c.stage)
	c.buf, c.stage = nil, nil
	c.nw = 0
	c.haveSet = false
}

// SetBlock points the cache at the seed block whose first stream word is
// base (a SeedLayout offset). Materialized words are kept when the block
// is unchanged and discarded — without releasing the buffer — otherwise.
func (c *BlockCache) SetBlock(base uint64) {
	if c.haveSet && c.base == base {
		return
	}
	c.base = base
	c.haveSet = true
	c.nw = 0
	c.buf = c.buf[:0]
}

// Source returns the underlying seed source (shared with the reference
// hash path and the randomness-exchange machinery).
func (c *BlockCache) Source() SeedSource { return c.src }

// ensure extends every row's materialized prefix to nw words.
func (c *BlockCache) ensure(nw int) {
	if nw <= c.nw {
		return
	}
	tau := c.h.Tau
	row := c.h.wordsPerRow()
	buf := c.buf
	if need := nw * tau; cap(buf) < need {
		// Grow geometrically: transcripts lengthen by one chunk per
		// iteration, and exact-fit growth would reallocate every iteration.
		newCap := 2 * cap(buf)
		if newCap < need {
			newCap = need
		}
		grown := make([]uint64, len(buf), newCap)
		copy(grown, buf)
		buf = grown
	}
	buf = buf[:nw*tau]
	seg := nw - c.nw
	if cap(c.stage) < seg {
		c.stage = make([]uint64, seg)
	}
	stage := c.stage[:seg]
	for j := 0; j < tau; j++ {
		off := c.base + uint64(j)*row + uint64(c.nw)
		if c.bulk != nil {
			c.bulk.Fill(stage, off)
		} else {
			for i := range stage {
				stage[i] = c.src.Word(off + uint64(i))
			}
		}
		for i, w := range stage {
			buf[(c.nw+i)*tau+j] = w
		}
	}
	c.buf = buf
	c.nw = nw
}
