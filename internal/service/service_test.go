package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"mpic"
	"mpic/internal/gridspec"
)

// smallSpec is a 2-cell grid that finishes in well under a second.
func smallSpec() gridspec.Grid {
	return gridspec.Grid{
		Workload: "random", Noise: "random",
		N: "4", Schemes: "A", Rates: "0,0.001",
		Trials: 1, Seed: 1, IterFactor: 10,
	}
}

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.DataDir == "" {
		opts.DataDir = t.TempDir()
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, ts
}

func postSpec(t *testing.T, url string, g gridspec.Grid) (sessionInfo, int) {
	t.Helper()
	body, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info sessionInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatalf("decoding response (status %d): %v", resp.StatusCode, err)
	}
	return info, resp.StatusCode
}

// waitDone polls the status endpoint until the session leaves "running".
func waitDone(t *testing.T, url, id string) sessionInfo {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/sessions/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var info sessionInfo
		err = json.NewDecoder(resp.Body).Decode(&info)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if info.State != "running" {
			return info
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("session did not finish in time")
	return sessionInfo{}
}

type resultBody struct {
	ID       string            `json:"id"`
	State    string            `json:"state"`
	Cells    int               `json:"cells"`
	Rows     []resultRow       `json:"rows"`
	Failures []mpic.FailedCell `json:"failures"`
	Complete bool              `json:"complete"`
}

func getResult(t *testing.T, url, id string) resultBody {
	t.Helper()
	resp, err := http.Get(url + "/sessions/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res resultBody
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	return res
}

// sequentialCells runs the same spec through the plain sequential
// engine — the determinism baseline every service run must match.
func sequentialCells(t *testing.T, g gridspec.Grid) []mpic.SweepCell {
	t.Helper()
	grid, err := g.Normalize().Build()
	if err != nil {
		t.Fatal(err)
	}
	grid.Workers = 1
	runner := mpic.NewRunner()
	defer runner.Close()
	cells := make([]mpic.SweepCell, len(grid.Cells))
	err = runner.RunGrid(context.Background(), grid, func(res mpic.GridCellResult) {
		cells[res.Index] = res.Cell
	})
	if err != nil {
		t.Fatal(err)
	}
	return cells
}

// TestServiceSubmitRunResult drives the primary flow: submit a grid
// over HTTP, wait for the sharded workers to finish it, and check the
// result rows are bit-identical to a sequential run of the same spec.
func TestServiceSubmitRunResult(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	info, code := postSpec(t, ts.URL, smallSpec())
	if code != http.StatusCreated {
		t.Fatalf("submit status = %d, want 201", code)
	}
	if info.ID == "" || info.Cells != 2 {
		t.Fatalf("submit response = %+v", info)
	}
	// Idempotent resubmission: the same spec attaches to the session.
	again, code := postSpec(t, ts.URL, smallSpec())
	if code != http.StatusOK || again.ID != info.ID {
		t.Fatalf("resubmit = %d %+v, want 200 with id %s", code, again, info.ID)
	}

	final := waitDone(t, ts.URL, info.ID)
	if final.State != "done" || final.Completed != 2 || final.Failed != 0 {
		t.Fatalf("final status = %+v", final)
	}
	res := getResult(t, ts.URL, info.ID)
	if !res.Complete || len(res.Rows) != 2 || len(res.Failures) != 0 {
		t.Fatalf("result = %+v", res)
	}
	want := sequentialCells(t, smallSpec())
	for _, row := range res.Rows {
		if !reflect.DeepEqual(row.Cell, want[row.Index]) {
			t.Errorf("cell %d differs from sequential run:\nservice:    %+v\nsequential: %+v",
				row.Index, row.Cell, want[row.Index])
		}
	}
	// The session drained cleanly: no leases left behind.
	if len(waitDone(t, ts.URL, info.ID).Leases) != 0 {
		t.Error("finished session still holds leases")
	}
}

// TestServiceSSEStream subscribes to a session's event stream and reads
// it to the end: progress events arrive as SSE frames, and the stream
// terminates with the "session" lifecycle event once the grid is done.
func TestServiceSSEStream(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	// A grid heavy enough that the subscriber attaches while cells are
	// still running (a 2-cell flash grid can finish before the GET).
	spec := gridspec.Grid{
		Workload: "random", Noise: "random",
		N: "5,6", Schemes: "A", Rates: "0,0.002",
		Trials: 3, Seed: 42, IterFactor: 150,
	}
	info, _ := postSpec(t, ts.URL, spec)

	resp, err := http.Get(ts.URL + "/sessions/" + info.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q, want text/event-stream", ct)
	}
	var sawStatus, sawCellDone, sawTerminal bool
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var event string
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "status":
				sawStatus = true
			case "progress":
				var ev Event
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					t.Fatalf("bad event payload %q: %v", data, err)
				}
				switch ev.Event {
				case "cell-done":
					sawCellDone = true
				case "session":
					sawTerminal = true
					if ev.State != "done" || ev.Completed != 4 {
						t.Errorf("terminal event = %+v", ev)
					}
				}
			}
		}
	}
	// The stream ends when the session finishes; reaching EOF without a
	// transport error is the "stream closed on completion" contract.
	if err := scanner.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	if !sawStatus || !sawCellDone || !sawTerminal {
		t.Fatalf("stream missing frames: status=%v cell-done=%v terminal=%v",
			sawStatus, sawCellDone, sawTerminal)
	}
	// A subscriber joining after completion gets the snapshot and EOF.
	resp, err = http.Get(ts.URL + "/sessions/" + info.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	lateBytes, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(lateBytes), `"state":"done"`) {
		t.Fatalf("late subscriber snapshot missing terminal state:\n%s", lateBytes)
	}
}

// TestServiceRestartResume stops a server mid-grid and starts a new one
// over the same data directory: the unfinished session is resumed from
// its lease store and completes with results identical to a sequential
// run. (The chaos soak covers the harsher kill-mid-cell path; this test
// pins the graceful restart-and-resume flow end to end.)
func TestServiceRestartResume(t *testing.T) {
	dataDir := t.TempDir()
	spec := gridspec.Grid{
		Workload: "random", Noise: "random",
		N: "4,5,6", Schemes: "A", Rates: "0,0.002",
		Trials: 3, Seed: 3, IterFactor: 200,
	}

	first, err := New(Options{DataDir: dataDir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(first.Handler())
	info, code := postSpec(t, ts1.URL, spec)
	if code != http.StatusCreated {
		t.Fatalf("submit status = %d", code)
	}
	// Shut down almost immediately — with 4 two-trial cells the workers
	// are still mid-grid. (If they do finish first, the resume below
	// degenerates to restoring a complete session, which must also work.)
	time.Sleep(30 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := first.Shutdown(ctx); err != nil {
		t.Fatalf("first shutdown: %v", err)
	}
	ts1.Close()

	// Graceful shutdown released every lease: the next server must not
	// wait out a TTL to reclaim cells.
	store := mpic.NewDirLeaseStore(dataDir + "/" + info.ID + "/session")
	leases, err := store.Leases(info.Print)
	if err != nil {
		t.Fatal(err)
	}
	if len(leases) != 0 {
		t.Fatalf("shutdown left %d leases: %+v", len(leases), leases)
	}
	done, err := store.Load(info.Print)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("first server completed %d of %d cells before shutdown", len(done), info.Cells)

	second, err := New(Options{DataDir: dataDir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(second.Handler())
	t.Cleanup(func() {
		ts2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := second.Shutdown(ctx); err != nil {
			t.Errorf("second shutdown: %v", err)
		}
	})
	final := waitDone(t, ts2.URL, info.ID)
	if final.State != "done" || final.Completed != info.Cells {
		t.Fatalf("resumed session final status = %+v", final)
	}
	res := getResult(t, ts2.URL, info.ID)
	if !res.Complete || len(res.Rows) != info.Cells {
		t.Fatalf("resumed result = %+v", res)
	}
	want := sequentialCells(t, spec)
	for _, row := range res.Rows {
		if !reflect.DeepEqual(row.Cell, want[row.Index]) {
			t.Errorf("cell %d differs after restart:\nservice:    %+v\nsequential: %+v",
				row.Index, row.Cell, want[row.Index])
		}
	}
}

// TestServiceBadRequests pins the HTTP error surface.
func TestServiceBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	// Malformed and unknown-field bodies are 400s, not silent defaults.
	for _, body := range []string{"{not json", `{"nope":"x"}`, `{"schemes":"Z"}`} {
		resp, err := http.Post(ts.URL+"/sessions", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %q status = %d, want 400", body, resp.StatusCode)
		}
	}
	for _, path := range []string{"/sessions/doesnotexist", "/sessions/doesnotexist/result", "/sessions/x/nope"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s status = %d, want 404", path, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", resp.StatusCode)
	}
	// DELETE on the collection is rejected loudly.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/sessions", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("DELETE /sessions = %d, want 405", resp.StatusCode)
	}
}

// TestSessionIDStability pins the content address: equal specs share a
// session, different specs do not, and normalization happens first.
func TestSessionIDStability(t *testing.T) {
	a := SessionID(smallSpec())
	if b := SessionID(smallSpec()); b != a {
		t.Fatalf("same spec hashed to %s and %s", a, b)
	}
	// A spec that differs only by omitted-vs-explicit defaults is the
	// same session.
	explicit := smallSpec()
	explicit.Workload = "random"
	if b := SessionID(explicit); b != a {
		t.Fatalf("normalized spec hashed differently: %s vs %s", a, b)
	}
	other := smallSpec()
	other.Seed = 2
	if b := SessionID(other); b == a {
		t.Fatal("different specs share a session id")
	}
}
