// Package service is the grid execution service behind cmd/mpicserve: a
// long-lived HTTP server that accepts grid specifications (the same
// gridspec.Grid struct the CLIs parse from flags), runs each as a
// lease-sharded durable session under a data directory, and streams the
// engine's fine-grained progress to any number of clients over
// Server-Sent Events.
//
// Sessions are content-addressed: the session ID is a hash of the
// grid's checkpoint fingerprint, so submitting the same spec twice
// attaches to the same session instead of re-running it, and a server
// restarted over the same data directory resumes every unfinished
// session from its lease store. Determinism makes all of this safe —
// each cell is a pure function of the spec, so resumed, re-submitted,
// or concurrently sharded sessions all converge on bit-identical
// results.
package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"mpic"
	"mpic/internal/gridspec"
)

// Options configures a Server.
type Options struct {
	// DataDir is the root of the session stores: each session lives in
	// DataDir/<id>/ as a spec.json plus a lease-store directory.
	DataDir string
	// Workers is how many lease-sharded workers each session runs with
	// (0 means 2).
	Workers int
	// LeaseTTL bounds how long a crashed worker's cells stay leased
	// (0 means 30s).
	LeaseTTL time.Duration
	// Retries gives every failed cell that many extra attempts before
	// it is quarantined (the session still finishes; failed cells are
	// reported per session).
	Retries int
	// Logf receives one line per lifecycle event (nil discards).
	Logf func(format string, args ...interface{})
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 30 * time.Second
	}
	if o.Logf == nil {
		o.Logf = func(string, ...interface{}) {}
	}
	return o
}

// Server owns the sessions and their worker pools. Create one with New,
// mount Handler on an http.Server, and stop it with Shutdown.
type Server struct {
	opts   Options
	runner *mpic.Runner

	// ctx cancels every session's workers; Shutdown cancels it and
	// waits for wg (all session supervisors and their workers).
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu       sync.Mutex
	sessions map[string]*session
}

// session is one grid run: a spec, its lease store, and the fan-out of
// progress events to SSE subscribers.
type session struct {
	id    string
	spec  gridspec.Grid // normalized submission
	print string        // checkpoint fingerprint (spec.Spec())
	dir   string
	store *mpic.DirLeaseStore
	grid  mpic.Grid

	mu        sync.Mutex
	state     string // "running", "done", "failed"
	failure   string
	completed int // cells finished (restored + executed) across workers
	failed    int // cells quarantined
	subs      map[int]chan []byte
	nextSub   int
}

// New creates a server over a data directory and resumes every
// unfinished session found in it. Call Shutdown to stop the workers.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	if opts.DataDir == "" {
		return nil, fmt.Errorf("service: Options.DataDir is required")
	}
	if err := os.MkdirAll(opts.DataDir, 0o755); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:     opts,
		runner:   mpic.NewRunner(),
		ctx:      ctx,
		cancel:   cancel,
		sessions: make(map[string]*session),
	}
	if err := s.resume(); err != nil {
		cancel()
		s.runner.Close()
		return nil, err
	}
	return s, nil
}

// resume scans the data directory for persisted specs and restarts
// their sessions. A session whose store already holds every cell drains
// immediately and lands in state "done" without re-running anything.
func (s *Server) resume() error {
	entries, err := os.ReadDir(s.opts.DataDir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		specPath := filepath.Join(s.opts.DataDir, e.Name(), "spec.json")
		data, err := os.ReadFile(specPath)
		if err != nil {
			if os.IsNotExist(err) {
				continue // not a session directory
			}
			return err
		}
		var g gridspec.Grid
		if err := json.Unmarshal(data, &g); err != nil {
			return fmt.Errorf("service: parsing %s: %w", specPath, err)
		}
		sess, _, err := s.open(g)
		if err != nil {
			return fmt.Errorf("service: resuming session %s: %w", e.Name(), err)
		}
		s.opts.Logf("service: resumed session %s (%d cells)", sess.id, len(sess.grid.Cells))
	}
	return nil
}

// SessionID derives the content address of a grid spec: a hash of its
// checkpoint fingerprint, so equal grids share a session.
func SessionID(g gridspec.Grid) string {
	sum := sha256.Sum256([]byte(g.Normalize().Spec()))
	return hex.EncodeToString(sum[:])[:16]
}

// open returns the session for a spec, creating and starting it (and
// persisting spec.json) if it does not exist yet. The bool reports
// whether the session was newly created.
func (s *Server) open(g gridspec.Grid) (*session, bool, error) {
	g = g.Normalize()
	grid, err := g.Build()
	if err != nil {
		return nil, false, err
	}
	id := SessionID(g)

	s.mu.Lock()
	defer s.mu.Unlock()
	if sess, ok := s.sessions[id]; ok {
		return sess, false, nil
	}
	dir := filepath.Join(s.opts.DataDir, id)
	store := mpic.NewDirLeaseStore(filepath.Join(dir, "session"))
	sess := &session{
		id: id, spec: g, print: g.Spec(), dir: dir,
		store: store, grid: grid,
		state: "running",
		subs:  make(map[int]chan []byte),
	}
	// Persist the spec first: a crash between here and the first cell
	// must leave a resumable directory, not an orphan.
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, false, err
	}
	specJSON, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		return nil, false, err
	}
	if err := os.WriteFile(filepath.Join(dir, "spec.json"), append(specJSON, '\n'), 0o644); err != nil {
		return nil, false, err
	}
	// Cells already in the store (a resumed session) count as completed
	// before any worker starts.
	if cells, err := store.Load(g.Spec()); err == nil {
		sess.completed = len(cells)
	}
	if failed, err := store.Failures(g.Spec()); err == nil {
		sess.failed = len(failed)
	}
	s.sessions[id] = sess
	s.start(sess)
	return sess, true, nil
}

// start launches the session's worker pool and its supervisor.
func (s *Server) start(sess *session) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		workers := s.opts.Workers
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = s.runWorker(sess, i)
			}(i)
		}
		wg.Wait()
		if s.ctx.Err() != nil {
			// Shutdown, not completion: leases were released by the
			// workers' deferred cleanup; the session resumes next start.
			s.opts.Logf("service: session %s interrupted by shutdown", sess.id)
			return
		}
		sess.finish(errs)
		st, _, _, _ := sess.status()
		s.opts.Logf("service: session %s %s", sess.id, st)
	}()
}

// runWorker is one lease-sharded worker of a session. Its grid shares
// the session's cells but carries worker-scoped progress and sink
// closures; the event hub serializes the fan-in.
func (s *Server) runWorker(sess *session, i int) error {
	worker := fmt.Sprintf("pid%d-w%d", os.Getpid(), i)
	g := sess.grid
	g.OnCellError = mpic.QuarantineCells
	if s.opts.Retries > 0 {
		g.Retry = mpic.RetryPolicy{MaxAttempts: s.opts.Retries + 1, JitterSeed: sess.spec.Seed}
	}
	g.Progress = func(p mpic.GridProgress) { sess.publish(worker, p) }
	sink := func(res mpic.GridCellResult) { sess.count(res) }
	return s.runner.RunGridSharded(s.ctx, g, sess.store, mpic.ShardOptions{
		Worker:   worker,
		LeaseTTL: s.opts.LeaseTTL,
	}, sink)
}

// Shutdown stops every worker (they release their leases on the way
// out), waits for them up to the context's deadline, and closes the
// runner. In-flight cells are abandoned mid-trial; the sessions resume
// from their last completed cell on the next start.
func (s *Server) Shutdown(ctx context.Context) error {
	s.cancel()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	s.runner.Close()
	// Closing subscriber channels ends any SSE streams still attached.
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sess := range s.sessions {
		sess.closeSubs()
	}
	return nil
}

// --- session state and events ---

// Event is the SSE wire form of one progress event. Progress streams
// are advisory and lossy (a slow client drops events rather than stall
// the engine); the session's result endpoint is the durable record.
type Event struct {
	// Event is the GridEvent name ("trial-start", "iteration",
	// "cell-done", ...) or the synthetic "session" lifecycle event.
	Event string `json:"event"`
	// Worker is the lease name of the worker that produced the event.
	Worker string `json:"worker,omitempty"`
	Cell   int    `json:"cell"`
	Cells  int    `json:"cells"`
	Key    mpic.GridKey `json:"key"`
	Trial     int    `json:"trial,omitempty"`
	Trials    int    `json:"trials,omitempty"`
	Iteration int    `json:"iteration,omitempty"`
	Attempt   int    `json:"attempt,omitempty"`
	Error     string `json:"error,omitempty"`
	// Completed/Failed are session-wide cell counters, maintained on
	// cell-done and cell-failed events; State is set on "session"
	// lifecycle events ("running", "done", "failed").
	Completed int    `json:"completed"`
	Failed    int    `json:"failed,omitempty"`
	State     string `json:"state,omitempty"`
}

// publish fans one engine progress event out to the subscribers.
func (sess *session) publish(worker string, p mpic.GridProgress) {
	ev := Event{
		Event:  p.Event.String(),
		Worker: worker,
		Cell:   p.Cell, Cells: p.Cells, Key: p.Key,
		Trial: p.Trial, Trials: p.Trials,
		Iteration: p.Iteration, Attempt: p.Attempt,
	}
	if p.Err != nil {
		ev.Error = p.Err.Error()
	}
	sess.mu.Lock()
	ev.Completed, ev.Failed = sess.completed, sess.failed
	sess.broadcastLocked(ev)
	sess.mu.Unlock()
}

// count records a finished cell from a worker's sink.
func (sess *session) count(res mpic.GridCellResult) {
	sess.mu.Lock()
	if res.Err != nil {
		sess.failed++
	} else {
		sess.completed++
	}
	sess.mu.Unlock()
}

// finish resolves the session's terminal state from its workers'
// returns and broadcasts the lifecycle event. A *mpic.GridFailure is a
// partial success — the session is "done" with failed cells reported —
// while any other error marks it "failed".
func (sess *session) finish(errs []error) {
	state, failure := "done", ""
	for _, err := range errs {
		var gf *mpic.GridFailure
		if err == nil || errors.As(err, &gf) {
			continue
		}
		state, failure = "failed", err.Error()
		break
	}
	sess.mu.Lock()
	sess.state, sess.failure = state, failure
	ev := Event{Event: "session", Cells: len(sess.grid.Cells),
		Completed: sess.completed, Failed: sess.failed, State: state}
	if failure != "" {
		ev.Error = failure
	}
	sess.broadcastLocked(ev)
	sess.closeSubsLocked()
	sess.mu.Unlock()
}

func (sess *session) status() (state, failure string, completed, failed int) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.state, sess.failure, sess.completed, sess.failed
}

// subscribe registers an SSE client. The returned channel is buffered;
// broadcast drops events for subscribers that fall behind. A nil
// channel means the session is already terminal — the caller should
// snapshot and return.
func (sess *session) subscribe() (int, <-chan []byte) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.state != "running" {
		return 0, nil
	}
	id := sess.nextSub
	sess.nextSub++
	ch := make(chan []byte, 1024)
	sess.subs[id] = ch
	return id, ch
}

func (sess *session) unsubscribe(id int) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if ch, ok := sess.subs[id]; ok {
		delete(sess.subs, id)
		close(ch)
	}
}

func (sess *session) broadcastLocked(ev Event) {
	if len(sess.subs) == 0 {
		return
	}
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	for _, ch := range sess.subs {
		select {
		case ch <- data:
		default: // slow subscriber: drop, never stall the engine
		}
	}
}

func (sess *session) closeSubs() {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	sess.closeSubsLocked()
}

func (sess *session) closeSubsLocked() {
	for id, ch := range sess.subs {
		delete(sess.subs, id)
		close(ch)
	}
}

// --- HTTP surface ---

// sessionInfo is the JSON shape of a session in list/status responses.
type sessionInfo struct {
	ID        string        `json:"id"`
	Spec      gridspec.Grid `json:"spec"`
	Print     string        `json:"fingerprint"`
	State     string        `json:"state"`
	Error     string        `json:"error,omitempty"`
	Cells     int           `json:"cells"`
	Completed int           `json:"completed"`
	Failed    int           `json:"failed,omitempty"`
	Leases    []mpic.Lease  `json:"leases,omitempty"`
}

func (s *Server) info(sess *session, withLeases bool) sessionInfo {
	state, failure, completed, failed := sess.status()
	info := sessionInfo{
		ID: sess.id, Spec: sess.spec, Print: sess.print,
		State: state, Error: failure,
		Cells: len(sess.grid.Cells), Completed: completed, Failed: failed,
	}
	if withLeases {
		if leases, err := sess.store.Leases(sess.print); err == nil {
			info.Leases = leases
		}
	}
	return info
}

// Handler returns the HTTP surface:
//
//	GET  /healthz               — liveness
//	GET  /sessions              — list sessions
//	POST /sessions              — submit a grid spec (gridspec.Grid JSON);
//	                              idempotent per spec, returns the session
//	GET  /sessions/{id}         — status, including active leases
//	GET  /sessions/{id}/result  — completed cells (and failures) so far
//	GET  /sessions/{id}/events  — SSE progress stream
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/sessions", s.handleSessions)
	mux.HandleFunc("/sessions/", s.handleSession)
	return mux
}

func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.mu.Lock()
		infos := make([]sessionInfo, 0, len(s.sessions))
		for _, sess := range s.sessions {
			infos = append(infos, s.info(sess, false))
		}
		s.mu.Unlock()
		sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
		writeJSON(w, http.StatusOK, infos)
	case http.MethodPost:
		var g gridspec.Grid
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&g); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("parsing spec: %w", err))
			return
		}
		sess, created, err := s.open(g)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		code := http.StatusOK
		if created {
			code = http.StatusCreated
			s.opts.Logf("service: created session %s (%d cells)", sess.id, len(sess.grid.Cells))
		}
		writeJSON(w, code, s.info(sess, false))
	default:
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
	}
}

func (s *Server) handleSession(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/sessions/")
	id, sub, _ := strings.Cut(rest, "/")
	s.mu.Lock()
	sess, ok := s.sessions[id]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no session %q", id))
		return
	}
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	switch sub {
	case "":
		writeJSON(w, http.StatusOK, s.info(sess, true))
	case "result":
		s.handleResult(w, sess)
	case "events":
		s.handleEvents(w, r, sess)
	default:
		httpError(w, http.StatusNotFound, fmt.Errorf("no endpoint %q", sub))
	}
}

// resultRow is one completed cell of a session's result.
type resultRow struct {
	Index int            `json:"index"`
	Key   mpic.GridKey   `json:"key"`
	Cell  mpic.SweepCell `json:"cell"`
}

// handleResult reads the durable record: every completed cell in the
// lease store (in grid order — the deterministic identity, not the
// nondeterministic completion order) plus the quarantined failures.
func (s *Server) handleResult(w http.ResponseWriter, sess *session) {
	cells, err := sess.store.Load(sess.print)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	failures, err := sess.store.Failures(sess.print)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].Index < cells[j].Index })
	rows := make([]resultRow, 0, len(cells))
	for _, c := range cells {
		rows = append(rows, resultRow{Index: c.Index, Key: c.Key, Cell: c.Cell})
	}
	state, _, _, _ := sess.status()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"id":       sess.id,
		"state":    state,
		"cells":    len(sess.grid.Cells),
		"rows":     rows,
		"failures": failures,
		"complete": len(rows)+len(failures) == len(sess.grid.Cells),
	})
}

// handleEvents streams the session's progress as Server-Sent Events:
// one "progress" event per engine callback, a final "session" event on
// completion, comment heartbeats to keep idle connections alive. The
// stream starts with a status snapshot so late subscribers know where
// the session stands; it ends when the session does.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request, sess *session) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, fmt.Errorf("response writer does not support streaming"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	writeEvent := func(name string, v interface{}) bool {
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, data); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	if !writeEvent("status", s.info(sess, false)) {
		return
	}
	subID, ch := sess.subscribe()
	if ch == nil {
		// Already terminal: the snapshot said so; close the stream.
		return
	}
	defer sess.unsubscribe(subID)

	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-heartbeat.C:
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case data, ok := <-ch:
			if !ok {
				return // session finished (terminal event was the last send)
			}
			if _, err := fmt.Fprintf(w, "event: progress\ndata: %s\n\n", data); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
