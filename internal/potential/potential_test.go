package potential

import (
	"testing"
	"testing/quick"
)

func TestEdgeStateB(t *testing.T) {
	tests := []struct {
		name string
		e    EdgeState
		want int
	}{
		{"synced", EdgeState{LenU: 5, LenV: 5, Common: 5}, 0},
		{"one ahead", EdgeState{LenU: 6, LenV: 5, Common: 5}, 1},
		{"diverged", EdgeState{LenU: 6, LenV: 6, Common: 3}, 3},
		{"empty", EdgeState{}, 0},
	}
	for _, tt := range tests {
		if got := tt.e.B(); got != tt.want {
			t.Errorf("%s: B() = %d, want %d", tt.name, got, tt.want)
		}
	}
}

func TestComputeSyncedNetwork(t *testing.T) {
	edges := []EdgeState{
		{LenU: 4, LenV: 4, Common: 4},
		{LenU: 4, LenV: 4, Common: 4},
	}
	s := Compute(7, edges, 10, 2, 0)
	if s.Iteration != 7 {
		t.Error("iteration not recorded")
	}
	if s.GStar != 4 || s.HStar != 4 || s.BStar != 0 {
		t.Errorf("G*=%d H*=%d B*=%d, want 4/4/0", s.GStar, s.HStar, s.BStar)
	}
	if s.SumG != 8 || s.SumB != 0 || s.MeetingLinks != 0 {
		t.Errorf("SumG=%d SumB=%d Meeting=%d", s.SumG, s.SumB, s.MeetingLinks)
	}
	// φ = (K/m)·ΣG = (10/2)·8 = 40 with everything else zero.
	if s.Phi != 40 {
		t.Errorf("Phi = %f, want 40", s.Phi)
	}
}

func TestComputeDivergentNetwork(t *testing.T) {
	edges := []EdgeState{
		{LenU: 6, LenV: 4, Common: 4, InMPU: true, KU: 3},
		{LenU: 5, LenV: 5, Common: 5},
	}
	s := Compute(0, edges, 10, 2, 1)
	if s.GStar != 4 {
		t.Errorf("GStar = %d, want 4", s.GStar)
	}
	if s.HStar != 6 {
		t.Errorf("HStar = %d, want 6", s.HStar)
	}
	if s.BStar != 2 {
		t.Errorf("BStar = %d, want 2", s.BStar)
	}
	if s.MeetingLinks != 1 {
		t.Errorf("MeetingLinks = %d, want 1", s.MeetingLinks)
	}
	if s.EHC != 1 {
		t.Error("EHC not carried through")
	}
}

func TestComputeEmpty(t *testing.T) {
	s := Compute(0, nil, 10, 1, 0)
	if s.GStar != 0 || s.HStar != 0 || s.BStar != 0 {
		t.Error("empty network should be all zeros")
	}
}

// Property: progress monotonicity — extending every link by one agreed
// chunk increases φ by exactly K (the Lemma 4.2 noiseless step).
func TestComputeProgressStep(t *testing.T) {
	f := func(lensRaw []uint8) bool {
		if len(lensRaw) == 0 || len(lensRaw) > 20 {
			return true
		}
		before := make([]EdgeState, len(lensRaw))
		after := make([]EdgeState, len(lensRaw))
		for i, l := range lensRaw {
			n := int(l % 50)
			before[i] = EdgeState{LenU: n, LenV: n, Common: n}
			after[i] = EdgeState{LenU: n + 1, LenV: n + 1, Common: n + 1}
		}
		k, m := 15, len(lensRaw)
		d := Compute(1, after, k, m, 0).Phi - Compute(0, before, k, m, 0).Phi
		// (K/m)·m = K exactly... up to float error.
		return d > float64(k)-1e-6 && d < float64(k)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: divergence hurts — for a fixed ΣG, any positive B* yields a
// strictly lower φ than the synchronized state.
func TestComputeDivergencePenalty(t *testing.T) {
	synced := []EdgeState{{LenU: 10, LenV: 10, Common: 10}}
	diverged := []EdgeState{{LenU: 12, LenV: 10, Common: 10}}
	if Compute(0, diverged, 10, 1, 0).Phi >= Compute(0, synced, 10, 1, 0).Phi {
		t.Error("divergence did not lower the potential")
	}
}
