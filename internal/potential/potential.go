// Package potential computes the progress measure of Section 4.1 from
// oracle snapshots of a run: per-link agreement G_{u,v}, divergence
// B_{u,v}, the global extremes G*, H*, B*, and the aggregate potential φ.
// The meeting-points term ϕ_{u,v} of Eq. (6) is replaced by a documented
// proxy (the appendix defining it is not in the available text); the
// package is instrumentation for tests and experiments, not part of the
// protocol.
package potential

// EdgeState is the oracle's view of one link at an iteration boundary.
type EdgeState struct {
	// LenU and LenV are |T_{u,v}| and |T_{v,u}| in chunks.
	LenU, LenV int
	// Common is G_{u,v}: the longest common prefix, in chunks.
	Common int
	// InMPU and InMPV report whether each endpoint is in meeting-points
	// status on this link.
	InMPU, InMPV bool
	// KU and KV are the endpoints' meeting-point counters.
	KU, KV int
}

// B returns B_{u,v} = max(|T_{u,v}|, |T_{v,u}|) − G_{u,v} (Eq. 2).
func (e EdgeState) B() int {
	m := e.LenU
	if e.LenV > m {
		m = e.LenV
	}
	return m - e.Common
}

// Constants of Eq. (6). C1 must exceed 2; C7 must dominate the per-link
// constants. The proxy uses small concrete values; only ratios matter for
// the qualitative claims the experiments check.
const (
	C1 = 2.0
	C7 = 100.0
)

// Snapshot is the potential state at one iteration boundary.
type Snapshot struct {
	Iteration int
	// GStar is min G_{u,v}: chunks the whole network agrees on.
	GStar int
	// HStar is the largest chunk count any endpoint believes.
	HStar int
	// BStar = HStar − GStar.
	BStar int
	// SumG is Σ G_{u,v} over links.
	SumG int
	// SumB is Σ B_{u,v} over links.
	SumB int
	// MeetingLinks counts links with at least one endpoint in
	// meeting-points status.
	MeetingLinks int
	// EHC is the errors-plus-hash-collisions count fed by the caller.
	EHC int64
	// Phi is the aggregate potential of Eq. (6) with the proxy ϕ term.
	Phi float64
}

// Compute derives a snapshot from per-edge states. k is the chunk
// parameter K; m the number of links; ehc the cumulative count of errors
// and oracle-detected hash collisions.
func Compute(iter int, edges []EdgeState, k, m int, ehc int64) Snapshot {
	s := Snapshot{Iteration: iter, EHC: ehc, GStar: -1}
	var phiMP float64
	for _, e := range edges {
		if s.GStar < 0 || e.Common < s.GStar {
			s.GStar = e.Common
		}
		if e.LenU > s.HStar {
			s.HStar = e.LenU
		}
		if e.LenV > s.HStar {
			s.HStar = e.LenV
		}
		s.SumG += e.Common
		s.SumB += e.B()
		if e.InMPU || e.InMPV {
			s.MeetingLinks++
		}
		// Proxy for ϕ_{u,v}: divergence plus outstanding meeting-points
		// work. Zero iff the link is fully synchronized and idle, which
		// is the property the analysis needs (Proposition A.2).
		phiMP += float64(e.B()) + float64(e.KU+e.KV)/2
	}
	if s.GStar < 0 {
		s.GStar = 0
	}
	s.BStar = s.HStar - s.GStar
	// Eq. (6): φ = Σ((K/m)·G_{u,v} − K·ϕ_{u,v}) − C1·K·B* + C7·K·EHC.
	kf := float64(k)
	s.Phi = kf/float64(m)*float64(s.SumG) - kf*phiMP - C1*kf*float64(s.BStar) + C7*kf*float64(s.EHC)
	return s
}
