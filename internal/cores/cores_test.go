package cores

import (
	"sync"
	"testing"
)

func TestBudgetBasics(t *testing.T) {
	b := NewBudget(4)
	if b.Total() != 4 {
		t.Fatalf("Total = %d, want 4", b.Total())
	}
	b.Acquire(1) // long-lived holder
	if got := b.TryAcquire(8); got != 3 {
		t.Fatalf("TryAcquire(8) = %d, want the 3 spares", got)
	}
	if got := b.TryAcquire(1); got != 0 {
		t.Fatalf("TryAcquire on an exhausted budget = %d, want 0", got)
	}
	b.Release(3)
	if got := b.TryAcquire(2); got != 2 {
		t.Fatalf("TryAcquire(2) after release = %d, want 2", got)
	}
	b.Release(2)
	b.Release(1)
	st := b.Stats()
	if st.Held != 0 || st.Total != 4 {
		t.Fatalf("final stats %+v: want all tokens home", st)
	}
	if st.Borrows != 3 || st.Granted != 5 || st.Denied != 1 {
		t.Fatalf("counters %+v: want 3 borrows, 5 granted, 1 denied", st)
	}
}

func TestBudgetNilAndClamps(t *testing.T) {
	var b *Budget
	if b.TryAcquire(4) != 0 || b.Total() != 0 {
		t.Fatal("nil budget must be inert")
	}
	b.Acquire(1) // must not panic
	b.Release(1)
	if st := b.Stats(); st != (Stats{}) {
		t.Fatalf("nil budget stats %+v, want zero", st)
	}
	if NewBudget(0).Total() != 1 {
		t.Fatal("budget must clamp to at least one core")
	}
	nb := NewBudget(2)
	if nb.TryAcquire(0) != 0 || nb.TryAcquire(-1) != 0 {
		t.Fatal("non-positive TryAcquire must return 0")
	}
}

// TestBudgetConcurrent hammers the pool from many goroutines (run under
// -race via make race): tokens must never oversubscribe and must all
// come home.
func TestBudgetConcurrent(t *testing.T) {
	b := NewBudget(8)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				got := b.TryAcquire(3)
				if got > 3 {
					t.Errorf("TryAcquire(3) granted %d", got)
					return
				}
				b.Release(got)
			}
		}()
	}
	wg.Wait()
	st := b.Stats()
	if st.Held != 0 {
		t.Fatalf("%d tokens still out after all releases", st.Held)
	}
	if st.Granted == 0 {
		t.Fatal("no tokens ever granted under contention")
	}
}
