// Package cores provides the shared core-budget token pool that lets the
// two parallel engines stop fighting over CPUs: the grid cell pool
// (Runner.RunGrid workers, one token held per live worker) and the
// round-level send pool inside each run (internal/network's Engine,
// which borrows whatever is spare for its heavy rounds and returns it
// immediately after). One Budget sized at GOMAXPROCS arbitrates a whole
// grid: while every core is busy running a cell, rounds execute
// sequentially inside each cell — exactly as fast as dedicating the
// cores to cells — and as the grid drains and cell workers exit, their
// tokens flow to the surviving cells' round pools, so the tail of the
// grid finishes on all cores instead of one. Token accounting never
// affects results: the round engine is bit-identical at any pool width,
// so the Budget only decides how fast answers arrive.
package cores

import "sync/atomic"

// Budget is a token pool over a fixed number of cores. The zero value is
// unusable; a nil *Budget is inert (every Try returns 0), which is how
// single-run paths opt out. All methods are safe for concurrent use.
type Budget struct {
	total int64
	held  atomic.Int64

	// Occupancy counters (Stats): how often spare cores were sought for a
	// heavy round, and how many flowed.
	borrows atomic.Int64
	granted atomic.Int64
	denied  atomic.Int64
}

// NewBudget returns a budget of total tokens (clamped to at least 1 —
// the caller's own core always exists).
func NewBudget(total int) *Budget {
	if total < 1 {
		total = 1
	}
	return &Budget{total: int64(total)}
}

// Total returns the budget's capacity in tokens.
func (b *Budget) Total() int {
	if b == nil {
		return 0
	}
	return int(b.total)
}

// Acquire debits n tokens unconditionally. Long-lived holders — grid
// cell workers, which each own the core they run on — use this: the
// debit may push the pool past its capacity (workers beyond GOMAXPROCS
// just mean no spare ever shows), it only ever reduces what TryAcquire
// can hand out. Nil-safe no-op.
func (b *Budget) Acquire(n int) {
	if b == nil || n <= 0 {
		return
	}
	b.held.Add(int64(n))
}

// TryAcquire grabs up to max spare tokens without blocking and returns
// how many it got (possibly 0 — the caller then proceeds on its own
// core). Short-lived borrowers — a round engine's send pool, for the
// duration of one heavy round — use this. Nil-safe: returns 0.
func (b *Budget) TryAcquire(max int) int {
	if b == nil || max <= 0 {
		return 0
	}
	b.borrows.Add(1)
	for {
		h := b.held.Load()
		spare := b.total - h
		if spare <= 0 {
			b.denied.Add(1)
			return 0
		}
		take := spare
		if take > int64(max) {
			take = int64(max)
		}
		if b.held.CompareAndSwap(h, h+take) {
			b.granted.Add(take)
			return int(take)
		}
	}
}

// Release returns n tokens to the pool. Nil-safe no-op.
func (b *Budget) Release(n int) {
	if b == nil || n <= 0 {
		return
	}
	b.held.Add(int64(-n))
}

// Stats is a point-in-time occupancy snapshot.
type Stats struct {
	// Total is the budget capacity; Held is how many tokens are out.
	Total, Held int
	// Borrows counts TryAcquire calls (heavy rounds that sought spare
	// cores), Granted the tokens they received in aggregate, and Denied
	// the calls that got nothing — the rounds that ran sequentially
	// because every core was already running a grid cell.
	Borrows, Granted, Denied int64
}

// Stats returns the budget's occupancy counters. Nil-safe: zero Stats.
func (b *Budget) Stats() Stats {
	if b == nil {
		return Stats{}
	}
	return Stats{
		Total:   int(b.total),
		Held:    int(b.held.Load()),
		Borrows: b.borrows.Load(),
		Granted: b.granted.Load(),
		Denied:  b.denied.Load(),
	}
}
