package mpic

import (
	"fmt"
	"math/rand"

	"mpic/internal/adversary"
	"mpic/internal/core"
	"mpic/internal/trace"
)

// RunInfo is the public phase layout of a run, handed to adversary
// factories and run-start observers.
type RunInfo = core.RunInfo

// AdversaryFactory builds a non-oblivious adversary once the run's phase
// layout is known.
type AdversaryFactory = func(info RunInfo) Adversary

// TopologySpec selects the communication graph of a Scenario. The zero
// value is invalid; build one with a named-family constructor (Line,
// Ring, Star, Clique, Tree, RandomTopology, Topology) or wrap an explicit
// graph with GraphTopology.
type TopologySpec struct {
	// Name is a registered topology family, instantiated at size N.
	Name string
	// N is the number of parties.
	N int
	// Graph, if non-nil, is used verbatim and Name/N/Build are ignored.
	Graph *Graph
	// Build, if non-nil, bypasses the registry (an unregistered external
	// family); N is passed through.
	Build TopologyBuilder
}

// Topology returns the spec for a registered topology family at size n.
func Topology(name string, n int) TopologySpec { return TopologySpec{Name: name, N: n} }

// Line is the path topology on n parties — the paper's running example.
func Line(n int) TopologySpec { return Topology("line", n) }

// Ring is the cycle topology on n ≥ 3 parties.
func Ring(n int) TopologySpec { return Topology("ring", n) }

// Star is the star topology with party 0 as hub.
func Star(n int) TopologySpec { return Topology("star", n) }

// Clique is the complete topology on n parties.
func Clique(n int) TopologySpec { return Topology("clique", n) }

// Tree is the balanced binary tree topology on n parties.
func Tree(n int) TopologySpec { return Topology("tree", n) }

// RandomTopology is a random connected topology on n parties,
// deterministic in n.
func RandomTopology(n int) TopologySpec { return Topology("random", n) }

// GraphTopology wraps an explicit, already-built graph as a topology
// spec.
func GraphTopology(g *Graph) TopologySpec { return TopologySpec{Graph: g} }

// isZero reports whether the spec was left empty.
func (t TopologySpec) isZero() bool {
	return t.Name == "" && t.Graph == nil && t.Build == nil
}

// label names the spec in error messages.
func (t TopologySpec) label() string {
	if t.Name != "" {
		return t.Name
	}
	return "custom"
}

// withN returns the spec resized to n parties (for sweeps over n).
func (t TopologySpec) withN(n int) (TopologySpec, error) {
	if t.Graph != nil {
		return t, fmt.Errorf("mpic: cannot resize an explicit-graph topology to n=%d", n)
	}
	t.N = n
	return t, nil
}

// size reports the number of parties the spec will produce.
func (t TopologySpec) size() int {
	if t.Graph != nil {
		return t.Graph.N()
	}
	return t.N
}

// partyCount reports the number of parties a scenario runs with under
// the given (possibly resized) topology spec, falling back to the
// workload's own protocol graph when the topology is implicit.
func (sc Scenario) partyCount(topo TopologySpec) int {
	if topo.isZero() && sc.Workload.Protocol != nil {
		return sc.Workload.Protocol.Graph().N()
	}
	return topo.size()
}

// materialize builds the graph.
func (t TopologySpec) materialize() (*Graph, error) {
	switch {
	case t.Graph != nil:
		return t.Graph, nil
	case t.Build != nil:
		return t.Build(t.N)
	case t.Name != "":
		return NewTopology(t.Name, t.N)
	default:
		return nil, fmt.Errorf("mpic: Scenario.Topology is required (e.g. mpic.Line(6))")
	}
}

// WorkloadSpec selects the protocol a Scenario simulates. The zero value
// means the "random" workload at its default scale.
type WorkloadSpec struct {
	// Name is a registered workload family ("" = "random").
	Name string
	// Rounds scales the workload; 0 means the 30·n default.
	Rounds int
	// Protocol, if non-nil, is simulated verbatim: the scenario takes its
	// topology from Protocol.Graph() and Name/Rounds/Build are ignored.
	Protocol Protocol
	// Build, if non-nil, bypasses the registry (an unregistered external
	// workload).
	Build WorkloadBuilder
}

// Workload returns the spec for a registered workload family at the
// given scale (rounds ≤ 0 selects the 30·n default).
func Workload(name string, rounds int) WorkloadSpec {
	return WorkloadSpec{Name: name, Rounds: rounds}
}

// RandomTraffic is generic pseudo-random traffic at density 1/2.
func RandomTraffic(rounds int) WorkloadSpec { return Workload("random", rounds) }

// DenseTraffic is generic pseudo-random traffic using every link every
// round.
func DenseTraffic(rounds int) WorkloadSpec { return Workload("dense", rounds) }

// PhaseKing is the phase-king consensus workload (fixed to the clique
// topology).
func PhaseKing(rounds int) WorkloadSpec { return Workload("phase-king", rounds) }

// PipelinedLine is the paper's Section 1.2 pipelined relay workload
// (fixed to the line topology).
func PipelinedLine(rounds int) WorkloadSpec { return Workload("pipelined-line", rounds) }

// TreeSum is the convergecast/broadcast aggregation workload.
func TreeSum(rounds int) WorkloadSpec { return Workload("tree-sum", rounds) }

// TokenRing is the circulating parity-token workload (fixed to the ring
// topology).
func TokenRing(rounds int) WorkloadSpec { return Workload("token-ring", rounds) }

// UseProtocol wraps a caller-built protocol as a workload spec; the
// scenario's topology is taken from the protocol itself.
func UseProtocol(p Protocol) WorkloadSpec { return WorkloadSpec{Protocol: p} }

// NoiseEnv is the deterministic context a NoiseSpec is wired in.
type NoiseEnv struct {
	// Graph is the scenario's topology.
	Graph *Graph
	// Rng is derived from the scenario seed; specs must draw all their
	// randomness from it so runs stay reproducible.
	Rng *rand.Rand
}

// Links lists all directed links of the topology.
func (e NoiseEnv) Links() []Link {
	edges := e.Graph.Edges()
	links := make([]Link, 0, 2*len(edges))
	for _, edge := range edges {
		links = append(links,
			Link{From: edge.U, To: edge.V},
			Link{From: edge.V, To: edge.U})
	}
	return links
}

// WiredNoise is a materialized noise model: either an oblivious
// adversary, or a factory for a non-oblivious one that needs the run's
// phase layout (set exactly one).
type WiredNoise struct {
	Adversary Adversary
	Factory   AdversaryFactory
}

// NoiseSpec describes a noise model abstractly; the scenario wires it to
// a concrete adversary at run time. A nil NoiseSpec means a noiseless
// channel.
type NoiseSpec interface {
	// NoiseName identifies the model in errors and tables.
	NoiseName() string
	// WithRate returns a copy of the spec at a different corruption rate
	// (used by Runner.Sweep's rate axis), or nil if the spec cannot be
	// re-rated (its rate is baked into a closure or an adversary
	// instance) — Sweep turns that nil into a loud error rather than
	// running mislabeled cells.
	WithRate(rate float64) NoiseSpec
	// Wire materializes the adversary.
	Wire(env NoiseEnv) (WiredNoise, error)
}

// RandomNoiseSpec corrupts each transmission slot independently — the
// oblivious insertion/deletion/substitution mix of Section 2.1.
type RandomNoiseSpec struct {
	// Rate is the corruption budget as a fraction of total communication.
	Rate float64
}

// RandomNoise returns the independent-corruption noise model at rate.
func RandomNoise(rate float64) RandomNoiseSpec { return RandomNoiseSpec{Rate: rate} }

// NoiseName implements NoiseSpec.
func (RandomNoiseSpec) NoiseName() string { return "random" }

// WithRate implements NoiseSpec.
func (s RandomNoiseSpec) WithRate(rate float64) NoiseSpec { s.Rate = rate; return s }

// Wire implements NoiseSpec.
func (s RandomNoiseSpec) Wire(env NoiseEnv) (WiredNoise, error) {
	return WiredNoise{Adversary: adversary.NewRandomRate(s.Rate, env.Rng)}, nil
}

// BurstSpec concentrates the whole corruption budget on one directed
// link inside a round window — the "all noise on one link" attack the
// per-link meeting-points analysis worries about. The zero values of
// Link, Start and Length reproduce the legacy behavior: a uniformly
// random link attacked for the whole run.
type BurstSpec struct {
	// Rate is the corruption budget as a fraction of total communication.
	Rate float64
	// Link is the attacked directed link; nil picks a uniformly random
	// edge and attacks its canonical (lower→higher endpoint) direction —
	// the legacy default, pinned by the Config shim's bit-identity. Set
	// Link explicitly to attack a specific direction (e.g. the reverse
	// one, which the random default never chooses).
	Link *Link
	// Start is the first round of the attack window (default 0).
	Start int
	// Length is the window length in rounds; 0 means unbounded.
	Length int
}

// BurstNoise returns the single-link burst noise model at rate, with the
// default window (a random link, the whole run).
func BurstNoise(rate float64) BurstSpec { return BurstSpec{Rate: rate} }

// NoiseName implements NoiseSpec.
func (BurstSpec) NoiseName() string { return "burst" }

// WithRate implements NoiseSpec.
func (s BurstSpec) WithRate(rate float64) NoiseSpec { s.Rate = rate; return s }

// Wire implements NoiseSpec.
func (s BurstSpec) Wire(env NoiseEnv) (WiredNoise, error) {
	target := Link{}
	if s.Link != nil {
		target = *s.Link
	} else {
		edges := env.Graph.Edges()
		e := edges[env.Rng.Intn(len(edges))]
		target = Link{From: e.U, To: e.V}
	}
	if !env.Graph.HasEdge(target.From, target.To) {
		return WiredNoise{}, fmt.Errorf("mpic: burst noise targets link %d→%d, which is not in the topology", target.From, target.To)
	}
	length := s.Length
	if length <= 0 {
		length = 1 << 30
	}
	return WiredNoise{Adversary: adversary.NewBurst(target, s.Start, s.Start+length, s.Rate)}, nil
}

// AdaptiveSpec is the non-oblivious attacker: it watches the public
// phase layout and targets simulation payload on a rotating link — the
// threat model Algorithms B and C pay for.
type AdaptiveSpec struct {
	// Rate is the corruption budget as a fraction of total communication.
	Rate float64
	// PerChunk bounds corruptions per targeted chunk (default 1).
	PerChunk int
}

// Adaptive returns the adaptive (non-oblivious) noise model at rate.
func Adaptive(rate float64) AdaptiveSpec { return AdaptiveSpec{Rate: rate} }

// NoiseName implements NoiseSpec.
func (AdaptiveSpec) NoiseName() string { return "adaptive" }

// WithRate implements NoiseSpec.
func (s AdaptiveSpec) WithRate(rate float64) NoiseSpec { s.Rate = rate; return s }

// Wire implements NoiseSpec.
func (s AdaptiveSpec) Wire(env NoiseEnv) (WiredNoise, error) {
	seed := env.Rng.Int63()
	rate := s.Rate
	perChunk := s.PerChunk
	return WiredNoise{Factory: func(info RunInfo) Adversary {
		a := adversary.NewAdaptive(info.Links, info.PhaseOracle, int(trace.PhaseSimulation), rate, rand.New(rand.NewSource(seed)))
		if perChunk > 0 {
			a.PerChunk = perChunk
		}
		return a
	}}, nil
}

// noiseFunc wraps a wiring function as a NoiseSpec.
type noiseFunc struct {
	name string
	wire func(env NoiseEnv) (WiredNoise, error)
}

func (f noiseFunc) NoiseName() string { return f.name }

// WithRate on a NoiseFunc spec returns nil: the rate is baked into the
// wiring closure, so such specs cannot ride a sweep's rate axis
// (register a NoiseFamily instead, which is parameterized by rate).
func (f noiseFunc) WithRate(float64) NoiseSpec { return nil }

func (f noiseFunc) Wire(env NoiseEnv) (WiredNoise, error) { return f.wire(env) }

// NoiseFunc builds a NoiseSpec from a wiring function — the escape hatch
// for one-off noise models that need no registry entry. The function is
// called once per run with a deterministic, seed-derived environment.
func NoiseFunc(name string, wire func(env NoiseEnv) (WiredNoise, error)) NoiseSpec {
	return noiseFunc{name: name, wire: wire}
}

// CustomNoise wraps an explicit adversary instance as a NoiseSpec. Most
// adversaries carry mutable state, so a CustomNoise spec is good for one
// run only — use NoiseFunc (or a registered family) for sweeps and
// repeated runs.
func CustomNoise(name string, adv Adversary) NoiseSpec {
	return NoiseFunc(name, func(NoiseEnv) (WiredNoise, error) {
		return WiredNoise{Adversary: adv}, nil
	})
}

// Noise instantiates a registered noise model at the given rate — the
// bridge from string-keyed configuration to a typed spec.
func Noise(name string, rate float64) (NoiseSpec, error) {
	if name == "" {
		name = "none"
	}
	family, err := noises.lookup(name)
	if err != nil {
		return nil, err
	}
	return family(rate), nil
}

// Scenario is a complete, typed description of one coded simulation:
// which workload over which topology, protected by which scheme, under
// which noise. The zero value of every field is meaningful (see the
// field docs), except Topology, which must be set unless the workload
// carries its own protocol.
type Scenario struct {
	// Topology is the communication graph.
	Topology TopologySpec
	// Workload is the protocol to simulate (zero value: "random").
	Workload WorkloadSpec
	// Scheme selects the coding scheme (default AlgorithmA).
	Scheme Scheme
	// Noise is the channel noise model; nil means noiseless.
	Noise NoiseSpec
	// Delay is the network's flight-delay model; nil means the paper's
	// lockstep network (every symbol takes exactly one round). A
	// non-lockstep model runs the virtual-time engine: late symbols
	// become insdel noise via the deadline synchronizer, and
	// Result.Metrics.Net reports the timing story.
	Delay DelaySpec
	// Faults is the network-fault schedule (link outages, delay spikes,
	// stragglers, crash-restart parties); nil means a fault-free
	// network. A schedule forces the virtual-time engine even under a
	// lockstep Delay. Faults.Seed 0 derives a default from Seed, so a
	// zero-seed schedule still replays with the scenario.
	Faults *NetFaults
	// Seed makes the run reproducible (inputs, noise, and randomness).
	Seed int64
	// IterFactor bounds iterations at IterFactor·|Π| (default 100, the
	// paper's constant).
	IterFactor int
	// Faithful disables the oracle's early stop, running all
	// IterFactor·|Π| iterations like the paper's protocol.
	Faithful bool
	// Parallel enables the concurrent network executor.
	Parallel bool
	// HashMode selects the prefix-hash seed discipline (zero value:
	// HashEpoch, the epoch-refresh fast path). HashLegacy restores the
	// paper-faithful per-iteration reseeding; HashIncremental the
	// never-refreshed incremental opt-in. See core.Params.HashMode.
	HashMode HashMode
	// EpochRefresh is the refresh interval R of HashEpoch in iterations
	// (0 selects DefaultEpochRefresh; ignored by the other modes).
	EpochRefresh int
	// IncrementalHash routes the meeting-points prefix hashes through
	// rewind-aware incremental checkpoints.
	//
	// Deprecated: set HashMode to HashIncremental instead. The bool keeps
	// working on its own; combined with a contradictory HashMode it is a
	// HashModeConflictError.
	IncrementalHash bool
	// WhiteBoxRate, if positive, replaces Noise with the seed-aware
	// collision attacker of Section 6.1 at the given rate.
	WhiteBoxRate float64
	// Tune, if set, adjusts the derived scheme parameters before the run
	// (ablations, hash-width overrides, seed-kind swaps).
	Tune func(p *Params)
	// Observers receive per-iteration callbacks during the run.
	Observers []Observer
}

// noiseRngSalt derives the noise-wiring rng from the scenario seed; the
// constant is pinned because the legacy Config shim (and therefore every
// pre-Scenario fixed-seed result) depends on the exact stream.
const noiseRngSalt = 2654435761

// materialize resolves the topology and workload into a runnable
// protocol.
func (sc Scenario) materialize() (Protocol, *Graph, error) {
	if sc.Workload.Protocol != nil {
		if !sc.Topology.isZero() {
			return nil, nil, fmt.Errorf("mpic: Scenario.Topology must be empty when Workload.Protocol is set (the protocol brings its own graph)")
		}
		return sc.Workload.Protocol, sc.Workload.Protocol.Graph(), nil
	}
	build := sc.Workload.Build
	if build == nil {
		name := sc.Workload.Name
		if name == "" {
			name = "random"
		}
		def, err := workloads.lookup(name)
		if err != nil {
			return nil, nil, err
		}
		build = def.Build
		if fixed := def.FixedTopology; fixed != "" {
			if sc.Topology.isZero() {
				return nil, nil, fmt.Errorf("mpic: workload %q needs a topology size; set Topology to mpic.Topology(%q, n)", name, fixed)
			}
			if sc.Topology.Name != fixed {
				return nil, nil, fmt.Errorf("mpic: workload %q runs only on the %q topology, got %q (fixed-topology workloads lay out their own graph, so pass mpic.Topology(%q, n) or leave the topology empty in a Config)",
					name, fixed, sc.Topology.label(), fixed)
			}
		}
	}
	g, err := sc.Topology.materialize()
	if err != nil {
		return nil, nil, err
	}
	rounds := sc.Workload.Rounds
	if rounds <= 0 {
		rounds = 30 * g.N()
	}
	proto, err := build(g, rounds, sc.Seed)
	if err != nil {
		return nil, nil, err
	}
	return proto, g, nil
}

// options compiles the scenario into core run options.
func (sc Scenario) options() (core.Options, error) {
	proto, g, err := sc.materialize()
	if err != nil {
		return core.Options{}, err
	}
	scheme := sc.Scheme
	if scheme == 0 {
		scheme = AlgorithmA
	}
	params := core.ParamsFor(scheme, g)
	params.CRSKey = sc.Seed
	if sc.IterFactor > 0 {
		params.IterFactor = sc.IterFactor
	}
	if sc.Faithful {
		params.EarlyStop = false
	}
	params.HashMode = sc.HashMode
	params.EpochRefresh = sc.EpochRefresh
	params.IncrementalHash = sc.IncrementalHash
	if sc.Tune != nil {
		sc.Tune(&params)
	}
	opts := core.Options{
		Protocol:     proto,
		Params:       params,
		Parallel:     sc.Parallel,
		WhiteBoxRate: sc.WhiteBoxRate,
		Observers:    sc.Observers,
	}
	if err := sc.wireNoise(g, &opts); err != nil {
		return core.Options{}, err
	}
	if err := sc.wireDelay(g, &opts); err != nil {
		return core.Options{}, err
	}
	return opts, nil
}

// wireDelay materializes the scenario's delay spec and fault schedule
// into the options. The delay seed and the default fault seed are
// distinct salted streams off the scenario seed, disjoint from the noise
// stream, so adding a delay model never perturbs the channel noise.
func (sc Scenario) wireDelay(g *Graph, opts *core.Options) error {
	if sc.Delay != nil {
		model, err := sc.Delay.Wire(DelayEnv{Graph: g, Seed: sc.Seed*noiseRngSalt + 2})
		if err != nil {
			return err
		}
		if model == nil {
			return fmt.Errorf("mpic: delay %q wired a nil model", sc.Delay.DelayName())
		}
		opts.Delay = model
	}
	if sc.Faults != nil {
		nf := *sc.Faults
		if nf.Seed == 0 {
			nf.Seed = sc.Seed*noiseRngSalt + 3
		}
		opts.NetFaults = &nf
	}
	return nil
}

// wireNoise materializes the scenario's noise spec into the options.
func (sc Scenario) wireNoise(g *Graph, opts *core.Options) error {
	if sc.Noise == nil {
		opts.Adversary = adversary.None{}
		return nil
	}
	env := NoiseEnv{Graph: g, Rng: rand.New(rand.NewSource(sc.Seed*noiseRngSalt + 1))}
	wn, err := sc.Noise.Wire(env)
	if err != nil {
		return err
	}
	if wn.Adversary == nil && wn.Factory == nil {
		return fmt.Errorf("mpic: noise %q wired neither an adversary nor a factory", sc.Noise.NoiseName())
	}
	opts.Adversary = wn.Adversary
	opts.AdversaryFactory = wn.Factory
	return nil
}

// baseline resolves the scenario into just the pieces an uncoded or
// naive-FEC run needs — the protocol and an oblivious adversary — without
// materializing any coding-scheme parameters or factory wiring.
func (sc Scenario) baseline() (Protocol, Adversary, error) {
	proto, g, err := sc.materialize()
	if err != nil {
		return nil, nil, err
	}
	if sc.Noise == nil {
		return proto, adversary.None{}, nil
	}
	env := NoiseEnv{Graph: g, Rng: rand.New(rand.NewSource(sc.Seed*noiseRngSalt + 1))}
	wn, err := sc.Noise.Wire(env)
	if err != nil {
		return nil, nil, err
	}
	if wn.Factory != nil {
		return nil, nil, fmt.Errorf("mpic: baseline runs do not support adaptive noise")
	}
	if wn.Adversary == nil {
		return nil, nil, fmt.Errorf("mpic: noise %q wired no adversary", sc.Noise.NoiseName())
	}
	return proto, wn.Adversary, nil
}
