package mpic

import (
	"testing"
)

func TestRunDefaultsNoiseless(t *testing.T) {
	res, err := Run(Config{Seed: 1, IterFactor: 20})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("default noiseless run failed: G*=%d/%d", res.GStar, res.NumChunks)
	}
}

func TestRunAllWorkloads(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
	}{
		{"random/line", Config{Topology: "line", N: 4, Workload: "random", Seed: 2, IterFactor: 20}},
		{"random/star", Config{Topology: "star", N: 5, Workload: "random", Seed: 2, IterFactor: 20}},
		{"pipelined-line", Config{N: 4, Workload: "pipelined-line", Seed: 3, IterFactor: 20, WorkloadRounds: 40}},
		{"tree-sum", Config{Topology: "tree", N: 6, Workload: "tree-sum", Seed: 4, IterFactor: 20, WorkloadRounds: 60}},
		{"token-ring", Config{N: 5, Workload: "token-ring", Seed: 5, IterFactor: 20, WorkloadRounds: 25}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res, err := Run(tt.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Success {
				t.Fatalf("run failed: G*=%d/%d wrong=%d", res.GStar, res.NumChunks, res.WrongParties)
			}
		})
	}
}

func TestRunAllSchemesUnderNoise(t *testing.T) {
	for _, s := range []Scheme{Algorithm1, AlgorithmA, AlgorithmB, AlgorithmC} {
		t.Run(s.String(), func(t *testing.T) {
			res, err := Run(Config{
				Topology: "line", N: 4, Scheme: s,
				Noise: "random", NoiseRate: 0.001,
				Seed: 7, IterFactor: 50,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Success {
				t.Fatalf("%v failed under light noise: G*=%d/%d", s, res.GStar, res.NumChunks)
			}
		})
	}
}

func TestRunAdaptiveNoise(t *testing.T) {
	res, err := Run(Config{
		Topology: "ring", N: 4, Scheme: AlgorithmB,
		Noise: "adaptive", NoiseRate: 0.0005,
		Seed: 11, IterFactor: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Success {
		t.Fatalf("AlgorithmB failed under adaptive noise: G*=%d/%d", res.GStar, res.NumChunks)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{Topology: "nope", N: 4}); err == nil {
		t.Error("bad topology accepted")
	}
	if _, err := Run(Config{Workload: "nope", N: 4}); err == nil {
		t.Error("bad workload accepted")
	}
	if _, err := Run(Config{Noise: "nope", N: 4}); err == nil {
		t.Error("bad noise accepted")
	}
}

func TestBaselinesViaFacade(t *testing.T) {
	cfg := Config{Topology: "line", N: 4, Seed: 9}
	ub, err := RunUncoded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !ub.Success {
		t.Error("noiseless uncoded baseline failed")
	}
	fec, err := RunNaiveFEC(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !fec.Success {
		t.Error("noiseless FEC baseline failed")
	}
	if _, err := RunNaiveFEC(cfg, 2); err == nil {
		t.Error("even repetition accepted")
	}
	cfg.Noise = "adaptive"
	if _, err := RunUncoded(cfg); err == nil {
		t.Error("adaptive baseline should be rejected")
	}
}

func TestNewTopologyAndWorkload(t *testing.T) {
	g, err := NewTopology("ring", 5)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewWorkload("random", g, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Graph().N() != 5 {
		t.Error("workload graph wrong")
	}
	if _, err := NewWorkload("nope", g, 10, 1); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestFaithfulModeRunsAllIterations(t *testing.T) {
	cfg := Config{Topology: "line", N: 3, Seed: 13, IterFactor: 5, Faithful: true, WorkloadRounds: 30}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 5*res.NumChunks {
		t.Fatalf("faithful mode ran %d iterations, want %d", res.Iterations, 5*res.NumChunks)
	}
	if !res.Success {
		t.Error("faithful noiseless run failed")
	}
}

func TestParallelExecutorMatches(t *testing.T) {
	base := Config{Topology: "clique", N: 5, Seed: 17, IterFactor: 10}
	seq, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	base.Parallel = true
	par, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Metrics.CC != par.Metrics.CC || seq.Success != par.Success || seq.Iterations != par.Iterations {
		t.Fatalf("parallel run diverged: CC %d vs %d, iters %d vs %d",
			seq.Metrics.CC, par.Metrics.CC, seq.Iterations, par.Iterations)
	}
}
